package gscalar_test

import (
	"encoding/json"
	"testing"

	"gscalar"
)

// TestResultJSONGolden pins the Result JSON encoding byte-for-byte. The
// snake_case field names are a stability contract for downstream tooling
// (dashboards, BENCH diffing, the telemetry exporters): renaming a field is
// a breaking change and must show up here.
func TestResultJSONGolden(t *testing.T) {
	res := gscalar.Result{
		Cycles:      1000,
		WarpInsts:   2000,
		ThreadInsts: 64000,
		IPC:         2,
		PowerW:      100.5,
		IPCPerW:     0.0199,
		EnergyJ:     0.125,

		ExecPowerShare: 0.25,
		RFPowerShare:   0.125,
		RFDynamicJ:     0.0625,

		FracDivergent:       0.1,
		FracDivergentScalar: 0.05,
		Eligibility: gscalar.Eligibility{
			ALU: 0.2, SFU: 0.01, Mem: 0.04, Half: 0.02, Divergent: 0.03,
		},
		RFAccess: gscalar.RFAccessDist{
			Scalar: 0.3, B3: 0.1, B2: 0.05, B1: 0.025, None: 0.4, Divergent: 0.125,
		},
		InstMix: gscalar.InstMix{
			ALU: 0.6, SFU: 0.05, Mem: 0.25, Ctrl: 0.1,
		},
		CompressionRatio: 1.5,
		MoveOverhead:     0.004,

		L1MissRate:       0.375,
		DRAMTransactions: 4096,

		PowerByComponent: map[string]float64{"exec_alu": 40.25, "static": 12.5},
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"cycles":1000,"warp_insts":2000,"thread_insts":64000,"ipc":2,` +
		`"power_w":100.5,"ipc_per_w":0.0199,"energy_j":0.125,` +
		`"exec_power_share":0.25,"rf_power_share":0.125,"rf_dynamic_j":0.0625,` +
		`"frac_divergent":0.1,"frac_divergent_scalar":0.05,` +
		`"eligibility":{"alu":0.2,"sfu":0.01,"mem":0.04,"half":0.02,"divergent":0.03},` +
		`"rf_access":{"scalar":0.3,"b3":0.1,"b2":0.05,"b1":0.025,"none":0.4,"divergent":0.125},` +
		`"inst_mix":{"alu":0.6,"sfu":0.05,"mem":0.25,"ctrl":0.1},` +
		`"compression_ratio":1.5,"move_overhead":0.004,` +
		`"l1_miss_rate":0.375,"dram_transactions":4096,` +
		`"power_by_component":{"exec_alu":40.25,"static":12.5}}`
	if string(got) != want {
		t.Errorf("Result JSON:\n%s\nwant:\n%s", got, want)
	}

	// The encoding must round-trip: the tags name every field uniquely.
	var back gscalar.Result
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != res.Cycles || back.RFAccess != res.RFAccess || back.Eligibility != res.Eligibility {
		t.Errorf("round-trip mismatch:\n%+v\nvs\n%+v", back, res)
	}
}
