package gscalar

import (
	"context"
	"testing"
)

// TestArchSemantics pins what each public architecture is allowed to
// detect: compression-only modes report no scalar eligibility, the prior
// scalar-RF reports ALU-class only, and G-Scalar-no-div reports no
// divergent or half-warp eligibility.
func TestArchSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	cfg := DefaultConfig()
	const bench = "HS" // divergent + SFU + half-free mix

	res := map[Arch]Result{}
	for _, a := range AllArchs() {
		r, err := RunWorkloadContext(context.Background(), cfg, a, bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		res[a] = r
	}

	if e := res[Baseline].Eligibility.Total(); e != 0 {
		t.Errorf("baseline eligibility = %v", e)
	}
	if e := res[WarpedCompression].Eligibility.Total(); e != 0 {
		t.Errorf("warped-compression eligibility = %v", e)
	}
	if e := res[RVCOnly].Eligibility.Total(); e != 0 {
		t.Errorf("rvc-only eligibility = %v", e)
	}
	alu := res[ALUScalar].Eligibility
	if alu.SFU != 0 || alu.Mem != 0 || alu.Half != 0 || alu.Divergent != 0 {
		t.Errorf("alu-scalar detected beyond ALU class: %+v", alu)
	}
	if alu.ALU == 0 {
		t.Error("alu-scalar detected nothing")
	}
	nod := res[GScalarNoDiv].Eligibility
	if nod.Divergent != 0 || nod.Half != 0 {
		t.Errorf("gscalar-nodiv detected divergent/half: %+v", nod)
	}
	if nod.SFU == 0 {
		t.Error("gscalar-nodiv should cover SFU")
	}
	full := res[GScalar].Eligibility
	if full.Total() <= nod.Total() {
		t.Errorf("G-Scalar (%v) must exceed no-div (%v)", full.Total(), nod.Total())
	}
	if full.Divergent == 0 {
		t.Error("G-Scalar detected no divergent scalar on HS")
	}

	// Compression stats only exist for compressing register files.
	if res[Baseline].CompressionRatio != 1 {
		t.Errorf("baseline compression ratio = %v", res[Baseline].CompressionRatio)
	}
	for _, a := range []Arch{WarpedCompression, RVCOnly, GScalar} {
		if res[a].CompressionRatio <= 1 {
			t.Errorf("%v compression ratio = %v", a, res[a].CompressionRatio)
		}
	}
	// Only compressing architectures pay the +3-cycle pipeline.
	if res[ALUScalar].Cycles >= res[GScalar].Cycles+res[GScalar].Cycles/2 {
		t.Errorf("suspicious cycle counts: alu %d vs gscalar %d",
			res[ALUScalar].Cycles, res[GScalar].Cycles)
	}
}
