package gscalar_test

import (
	"math"
	"reflect"
	"testing"

	"gscalar"
)

// The relaxed epoch-parallel loop trades bit-identity for scalability: SMs
// advance up to EpochCycles cycles on estimated memory latencies and the
// shared L2/DRAM state commits only at epoch boundaries. These constants are
// the documented accuracy envelope of that trade, measured against the
// serial oracle across the full 17-workload Table 2 suite on both
// architectures (see docs/architecture.md). TestRelaxedAccuracyEnvelope
// enforces them; tightening a bound requires re-measuring the suite,
// loosening one requires understanding what regressed.
const (
	// relaxedCycleBoundPct bounds |cycles_relaxed - cycles_serial| as a
	// percentage of the serial cycle count. Measured worst case at epoch 64
	// across the 34-point sweep is 5.5% (MM/baseline); 6% leaves a little
	// headroom without masking a real regression.
	relaxedCycleBoundPct = 6.0

	// relaxedCycleFloorCycles is the absolute slack that applies alongside
	// the relative bound: a delta within the floor passes even when the
	// percentage does not. Epoch-granularity error — over-estimated
	// latencies for lines that another SM would have warmed in L2 within
	// the same epoch — is a handful of epochs' worth of cycles regardless
	// of run length, so on short kernels it dominates the relative view
	// (worst case ST/gscalar: +322 cycles on a 2431-cycle run, 13%).
	relaxedCycleFloorCycles = 400

	// relaxedDRAMBoundPct bounds the DRAM-transaction delta relative to
	// serial. Deferring commits shifts which accesses coalesce in L2 but
	// must not change traffic materially; measured worst case is 2.2% (MV).
	relaxedDRAMBoundPct = 3.0
)

// pctDelta returns |a-b| as a percentage of b (the oracle side).
func pctDelta(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(a)-float64(b)) / float64(b) * 100
}

// runRelaxedWorkload simulates one workload on the relaxed loop.
func runRelaxedWorkload(t testing.TB, arch gscalar.Arch, abbr string, workers, epoch int) gscalar.Result {
	t.Helper()
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	cfg.EpochCycles = epoch
	res, err := runWorkloadVia(t, cfg, arch, abbr, 1)
	if err != nil {
		t.Fatalf("%s on %s (relaxed, workers=%d, epoch=%d): %v", abbr, arch, workers, epoch, err)
	}
	return res
}

// TestRelaxedAccuracyEnvelope is the differential oracle for the relaxed
// epoch-parallel loop: every Table 2 workload runs on the serial loop and on
// the relaxed loop (epoch 64, the default), and the relaxed result must stay
// inside the documented envelope:
//
//   - instruction counts (WarpInsts, ThreadInsts, MoveOverhead) exactly
//     equal — relaxation perturbs timing, never the executed program;
//   - the RF access distribution, scalar-eligibility breakdown, divergence
//     fractions and compression ratio exactly equal, for the same reason
//     (they classify instructions by operand values, not by cycle);
//   - cycles within relaxedCycleBoundPct of serial (or within the absolute
//     relaxedCycleFloorCycles slack on short kernels) and DRAM transactions
//     within relaxedDRAMBoundPct.
//
// In short mode a 3-workload subset runs on GScalar only; the full
// 17-workload × 2-architecture sweep runs without -short.
func TestRelaxedAccuracyEnvelope(t *testing.T) {
	workloadSet := gscalar.Workloads()
	archs := []gscalar.Arch{gscalar.Baseline, gscalar.GScalar}
	if testing.Short() {
		workloadSet = []string{"HS", "MQ", "SAD"}
		archs = archs[1:]
	}
	for _, arch := range archs {
		for _, abbr := range workloadSet {
			serial := runDet(t, arch, abbr, 1)
			relaxed := runRelaxedWorkload(t, arch, abbr, 4, 64)

			if relaxed.ExecMode != "relaxed" {
				t.Fatalf("%s/%s: ExecMode = %q, want relaxed", abbr, arch, relaxed.ExecMode)
			}

			if relaxed.WarpInsts != serial.WarpInsts || relaxed.ThreadInsts != serial.ThreadInsts {
				t.Errorf("%s/%s: instruction counts diverged: warp %d vs %d, thread %d vs %d",
					abbr, arch, relaxed.WarpInsts, serial.WarpInsts,
					relaxed.ThreadInsts, serial.ThreadInsts)
			}
			if relaxed.MoveOverhead != serial.MoveOverhead {
				t.Errorf("%s/%s: move overhead %v vs %v", abbr, arch,
					relaxed.MoveOverhead, serial.MoveOverhead)
			}
			if !reflect.DeepEqual(relaxed.RFAccess, serial.RFAccess) {
				t.Errorf("%s/%s: RF access distribution diverged:\n%+v\nvs serial\n%+v",
					abbr, arch, relaxed.RFAccess, serial.RFAccess)
			}
			if !reflect.DeepEqual(relaxed.Eligibility, serial.Eligibility) {
				t.Errorf("%s/%s: eligibility breakdown diverged:\n%+v\nvs serial\n%+v",
					abbr, arch, relaxed.Eligibility, serial.Eligibility)
			}
			if relaxed.FracDivergent != serial.FracDivergent ||
				relaxed.FracDivergentScalar != serial.FracDivergentScalar {
				t.Errorf("%s/%s: divergence fractions diverged", abbr, arch)
			}
			if relaxed.CompressionRatio != serial.CompressionRatio {
				t.Errorf("%s/%s: compression ratio %v vs %v", abbr, arch,
					relaxed.CompressionRatio, serial.CompressionRatio)
			}

			cycleDelta := pctDelta(relaxed.Cycles, serial.Cycles)
			absDelta := math.Abs(float64(relaxed.Cycles) - float64(serial.Cycles))
			dramDelta := pctDelta(relaxed.DRAMTransactions, serial.DRAMTransactions)
			t.Logf("%s/%s: cycles %d vs %d (%.2f%%), DRAM %d vs %d (%.2f%%)",
				abbr, arch, relaxed.Cycles, serial.Cycles, cycleDelta,
				relaxed.DRAMTransactions, serial.DRAMTransactions, dramDelta)
			if cycleDelta > relaxedCycleBoundPct && absDelta > relaxedCycleFloorCycles {
				t.Errorf("%s/%s: cycle delta %.2f%% exceeds the documented %.1f%% bound (relaxed %d vs serial %d)",
					abbr, arch, cycleDelta, relaxedCycleBoundPct, relaxed.Cycles, serial.Cycles)
			}
			if dramDelta > relaxedDRAMBoundPct {
				t.Errorf("%s/%s: DRAM delta %.2f%% exceeds the documented %.1f%% bound (relaxed %d vs serial %d)",
					abbr, arch, dramDelta, relaxedDRAMBoundPct,
					relaxed.DRAMTransactions, serial.DRAMTransactions)
			}
		}
	}
}

// TestRelaxedDeterminism pins the reproducibility contract of the relaxed
// loop: for a fixed (EpochCycles, workload) point the simulated Result is
// identical across repeated runs and across every worker count — worker
// count is pure execution parallelism, only the epoch length is a model
// parameter. (Startup-order independence of the worker pool itself is
// covered at the internal/gpu level, where the launch-order hook lives.)
func TestRelaxedDeterminism(t *testing.T) {
	workloads := []string{"HS", "PF"}
	epochs := []int{64, 256}
	if testing.Short() {
		workloads = workloads[:1]
		epochs = epochs[:1]
	}
	for _, abbr := range workloads {
		for _, epoch := range epochs {
			ref := runRelaxedWorkload(t, gscalar.GScalar, abbr, 1, epoch)
			for _, workers := range []int{2, 8} {
				got := runRelaxedWorkload(t, gscalar.GScalar, abbr, workers, epoch)
				if !reflect.DeepEqual(stripExecMeta(ref), stripExecMeta(got)) {
					t.Errorf("%s epoch=%d: workers=%d differs from workers=1:\n%+v\nvs\n%+v",
						abbr, epoch, workers, got, ref)
				}
			}
			again := runRelaxedWorkload(t, gscalar.GScalar, abbr, 8, epoch)
			repeat := runRelaxedWorkload(t, gscalar.GScalar, abbr, 8, epoch)
			if !reflect.DeepEqual(again, repeat) {
				t.Errorf("%s epoch=%d: repeated 8-worker runs differ", abbr, epoch)
			}
		}
	}
}

// TestRelaxedEpochSensitivity documents that the epoch length IS a model
// parameter: it may (and for memory-bound workloads does) move the cycle
// count, but every executed-program statistic stays pinned, and longer
// epochs stay inside the same documented envelope.
func TestRelaxedEpochSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("documentation sweep; the short envelope subset already drives the relaxed loop")
	}
	const abbr = "LBM"
	serial := runDet(t, gscalar.GScalar, abbr, 1)
	for _, epoch := range []int{64, 256, 1024} {
		relaxed := runRelaxedWorkload(t, gscalar.GScalar, abbr, 4, epoch)
		if relaxed.WarpInsts != serial.WarpInsts {
			t.Errorf("epoch=%d: warp insts %d vs serial %d", epoch, relaxed.WarpInsts, serial.WarpInsts)
		}
		cycleDelta := pctDelta(relaxed.Cycles, serial.Cycles)
		absDelta := math.Abs(float64(relaxed.Cycles) - float64(serial.Cycles))
		t.Logf("%s epoch=%d: cycles %d vs serial %d (%.2f%%)", abbr, epoch,
			relaxed.Cycles, serial.Cycles, cycleDelta)
		if cycleDelta > relaxedCycleBoundPct && absDelta > relaxedCycleFloorCycles {
			t.Errorf("epoch=%d: cycle delta %.2f%% exceeds the documented %.1f%% bound",
				epoch, cycleDelta, relaxedCycleBoundPct)
		}
	}
}
