package gscalar

import (
	"context"
	"errors"
	"fmt"

	"gscalar/internal/gpu"
	"gscalar/internal/kernel"
	"gscalar/internal/telemetry"
	"gscalar/internal/trace"
	"gscalar/internal/workloads"
)

// Progress is the point-in-time snapshot passed to a Session's Observer.
// The JSON tags are a stable serialization contract: the sweep server's
// job-status endpoint streams these snapshots to clients.
type Progress struct {
	Cycle     uint64 `json:"cycle"`      // current simulated cycle
	WarpInsts uint64 `json:"warp_insts"` // warp instructions committed chip-wide so far
	LiveSMs   int    `json:"live_sms"`   // SMs that still have resident work
}

// Session is a validated run context: one (Config, Arch) pair whose
// invariants were checked once at construction, plus the lifecycle hooks —
// progress observation and context cancellation — shared by every run
// started from it. The zero Session is not usable; construct with
// NewSession.
//
// All run methods take a context.Context. Cancellation (and context
// deadlines) are observed only at cycle-commit boundaries every
// ObserverStride simulated cycles, so a run that completes is bit-identical
// to an uncancellable one, and a cancelled run returns the partial Result
// accumulated up to the checkpoint that saw the cancellation, alongside an
// error satisfying errors.Is(err, context.Canceled) (or DeadlineExceeded).
type Session struct {
	cfg  Config
	arch Arch

	// Observer, when non-nil, receives progress snapshots at lifecycle
	// checkpoints. It runs on the simulation goroutine and must not block
	// for long or mutate simulator state; observing a run never changes its
	// result. Set it before the first run.
	Observer func(Progress)
	// ObserverStride is the simulated-cycle spacing of lifecycle checkpoints
	// (observer calls and cancellation checks). 0 means the gpu package's
	// DefaultLifecycleStride. Checkpoints land at deterministic simulated
	// cycles, which is what makes observer-triggered cancellation cut a run
	// at the same cycle on every execution.
	ObserverStride uint64
	// Telemetry configures per-run metric collection; the most recent run's
	// data is returned by Metrics. Like Observer it lives off-Config, so
	// enabling it changes neither the config hash nor any simulated result.
	// A session with telemetry enabled must not run concurrently with
	// itself (Metrics is overwritten per run).
	Telemetry TelemetryOptions
	// Capture configures trace capture: when Capture.Path is non-empty,
	// every warp-instruction execution of the next single-launch run is
	// recorded and — together with the program, launch configuration and
	// initial memory image — written to that path as a replayable trace
	// (replay with workload spec "trace:<path>"). Like Observer and
	// Telemetry it lives off-Config: enabling capture changes neither the
	// config hash nor any simulated result. Capture requires the serial
	// chip loop (Workers == 0, EpochCycles == 0) so the recorded
	// instruction order is deterministic, and is rejected for multi-launch
	// sequences; a run that fails or is cancelled writes no trace.
	Capture CaptureOptions

	metrics *Metrics // telemetry of the most recently completed run
}

// CaptureOptions configures Session trace capture.
type CaptureOptions struct {
	// Path is the destination trace file; empty disables capture. The file
	// is written atomically after a successful run (store.AtomicWrite), so
	// an interrupted capture never leaves a truncated trace behind.
	Path string
}

// NewSession normalizes and validates cfg and binds it to arch. It is the
// single entry onto the validated-config path: every package-level Run*
// helper constructs a Session internally, so an invalid configuration is
// rejected before any simulator state is built.
func NewSession(cfg Config, arch Arch) (*Session, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, arch: arch}, nil
}

// Config returns the session's normalized, validated configuration.
func (s *Session) Config() Config { return s.cfg }

// Arch returns the session's architecture.
func (s *Session) Arch() Arch { return s.arch }

// Metrics returns the telemetry collected by the session's most recent run,
// or nil when Telemetry.Enabled was false (or no run has completed). A
// cancelled run still produces metrics for its simulated prefix.
func (s *Session) Metrics() *Metrics { return s.metrics }

// lower produces the internal chip config with the session's lifecycle
// hooks attached. The observer and telemetry recorder live here — not on
// Config — so Config stays a plain serializable value (JSON round-trip,
// content hash). The returned recorder is nil when telemetry is disabled.
func (s *Session) lower() (gpu.Config, *telemetry.Recorder) {
	g := s.cfg.toGPU()
	if s.Observer != nil {
		obs := s.Observer
		g.Observer = func(p gpu.Progress) { obs(Progress(p)) }
	}
	g.ObserverStride = s.ObserverStride
	var rec *telemetry.Recorder
	if s.Telemetry.Enabled {
		rec = telemetry.NewRecorder(s.Telemetry.SampleStride)
		g.Telemetry = rec
	}
	return g, rec
}

// finishMetrics publishes a completed (or cancelled) run's telemetry.
func (s *Session) finishMetrics(rec *telemetry.Recorder, workload string) {
	if rec != nil {
		s.metrics = newMetrics(rec, s, workload)
	}
}

// wrapErr annotates an error escaping a session run with what was running
// and under which architecture, preserving the cause for errors.Is/As.
func (s *Session) wrapErr(what string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("gscalar: %s on %s: %w", what, s.arch, err)
}

// newCapture starts a trace capture for a single-launch run, or returns
// (nil, nil) when capture is disabled. It must be called before simulation
// starts: the initial memory image is snapshotted here.
func (s *Session) newCapture(workload string, scale int, prog *kernel.Program, lc *kernel.LaunchConfig, mem *kernel.Memory) (*trace.Capture, error) {
	if s.Capture.Path == "" {
		return nil, nil
	}
	if s.cfg.Workers != 0 || s.cfg.EpochCycles > 0 {
		return nil, fmt.Errorf("trace capture requires the serial chip loop (Workers=0, EpochCycles=0); got Workers=%d EpochCycles=%d", s.cfg.Workers, s.cfg.EpochCycles)
	}
	return trace.NewCapture(trace.Meta{
		Workload:   workload,
		Arch:       s.arch.String(),
		Scale:      scale,
		ConfigHash: s.cfg.Hash(),
		WarpSize:   s.cfg.WarpSize,
	}, prog, lc, mem), nil
}

// finishCapture writes the captured trace after a successful run. A failed
// or cancelled run writes nothing — a trace must represent a complete
// execution.
func (s *Session) finishCapture(cap *trace.Capture, runErr error) error {
	if cap == nil || runErr != nil {
		return runErr
	}
	return cap.WriteFile(s.Capture.Path)
}

// Run simulates an assembled program. On cancellation the returned Result
// holds the partial statistics accumulated so far (see Session).
func (s *Session) Run(ctx context.Context, prog *Program, launch Launch, mem *Memory) (Result, error) {
	lc, err := launch.toKernel()
	if err != nil {
		return Result{}, err
	}
	cap, err := s.newCapture(prog.Name(), 0, prog.p, lc, mem.m)
	if err != nil {
		return Result{}, s.wrapErr(prog.Name(), err)
	}
	g, rec := s.lower()
	if cap != nil {
		g.ExecTrace = cap.Record
	}
	r, err := gpu.RunContext(ctx, g, s.arch.model(), prog.p, lc, mem.m)
	s.finishMetrics(rec, prog.Name())
	err = s.finishCapture(cap, err)
	return resultFrom(r), s.wrapErr(prog.Name(), err)
}

// RunWorkload resolves a workload spec — a Table 2 abbreviation ("HS") or a
// captured trace ("trace:<path>") — builds it at the given scale (1 = the
// default size; trace replays ignore scale, they re-run the captured launch
// exactly) and simulates it. A builtin benchmark's functional output is
// validated against its host golden model; a validation failure is returned
// as an error. A cancelled run skips that check — the output is necessarily
// incomplete — and returns the partial Result with the cancellation error.
func (s *Session) RunWorkload(ctx context.Context, spec string, scale int) (Result, error) {
	src, err := resolveWorkload(spec)
	if err != nil {
		return Result{}, err
	}
	if scale < 1 {
		scale = 1
	}
	inst, err := src.Build(scale)
	if err != nil {
		return Result{}, s.wrapErr(spec, err)
	}
	res, err := s.runInstance(ctx, spec, scale, inst)
	if err != nil {
		return res, err
	}
	if inst.Check != nil {
		if err := inst.Check(); err != nil {
			return Result{}, s.wrapErr(spec, err)
		}
	}
	return res, nil
}

// resolveWorkload maps a spec onto a workload source, translating the
// internal unknown-name error onto the package's typed UnknownWorkloadError.
func resolveWorkload(spec string) (workloads.Source, error) {
	src, err := workloads.Resolve(spec)
	if err != nil {
		var unk *workloads.UnknownError
		if errors.As(err, &unk) {
			return nil, errUnknownWorkload(spec)
		}
		return nil, fmt.Errorf("gscalar: workload %s: %w", spec, err)
	}
	return src, nil
}

// runInstance executes a built workload instance on the timed simulator,
// without the golden-output check (sweeps that deliberately skip it reuse
// this path).
func (s *Session) runInstance(ctx context.Context, label string, scale int, inst *workloads.Instance) (Result, error) {
	cap, err := s.newCapture(label, scale, inst.Prog, inst.Launch, inst.Mem)
	if err != nil {
		return Result{}, s.wrapErr(label, err)
	}
	g, rec := s.lower()
	if cap != nil {
		g.ExecTrace = cap.Record
	}
	r, err := gpu.RunContext(ctx, g, s.arch.model(), inst.Prog, inst.Launch, inst.Mem)
	s.finishMetrics(rec, label)
	err = s.finishCapture(cap, err)
	return resultFrom(r), s.wrapErr(label, err)
}

// RunSequence simulates a dependent sequence of kernel launches sharing the
// given device memory (serialised by an implicit device barrier, as CUDA
// streams would for dependent kernels). Cycles and energy accumulate across
// the whole sequence; a cancelled sequence returns the aggregate of every
// completed launch plus the in-flight launch's partial prefix.
func (s *Session) RunSequence(ctx context.Context, mem *Memory, seq []KernelLaunch) (Result, error) {
	if s.Capture.Path != "" {
		return Result{}, s.wrapErr("sequence", fmt.Errorf("trace capture covers exactly one kernel launch; it cannot record a multi-launch sequence"))
	}
	steps := make([]gpu.Step, 0, len(seq))
	for _, kl := range seq {
		lc, err := kl.Launch.toKernel()
		if err != nil {
			return Result{}, err
		}
		steps = append(steps, gpu.Step{Prog: kl.Prog.p, Launch: lc})
	}
	g, rec := s.lower()
	r, err := gpu.RunSequenceContext(ctx, g, s.arch.model(), mem.m, steps)
	s.finishMetrics(rec, "sequence")
	return resultFrom(r), s.wrapErr("sequence", err)
}

// WarpSizeSweep reproduces Figure 10: the fraction of instructions eligible
// for 16-thread-granularity ("half-scalar"; "quarter-scalar" at warp size
// 64) scalar execution, for each warp size. The same workload is rebuilt per
// point so thread counts stay constant while warps widen; each point derives
// a per-warp-size session from this one (same architecture, observer, and
// telemetry options, with MaxWarpsPerSM rescaled to keep resident-thread
// capacity constant). Cancelling ctx aborts the sweep at the in-flight
// point's next lifecycle checkpoint.
func (s *Session) WarpSizeSweep(ctx context.Context, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	src, err := resolveWorkload(abbr)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	out := make([]WarpSizeSweepResult, 0, len(warpSizes))
	for _, ws := range warpSizes {
		inst, err := src.Build(scale)
		if err != nil {
			return nil, err
		}
		c := s.cfg
		c.WarpSize = ws
		// Keep resident-thread capacity constant as warps widen.
		c.MaxWarpsPerSM = DefaultConfig().MaxWarpsPerSM * DefaultConfig().WarpSize / ws
		p, err := NewSession(c, s.arch)
		if err != nil {
			return nil, fmt.Errorf("gscalar: warp-size sweep at %d: %w", ws, err)
		}
		p.Observer = s.Observer
		p.ObserverStride = s.ObserverStride
		p.Telemetry = s.Telemetry
		// Capture is deliberately not inherited: one trace file cannot hold
		// a whole sweep of runs.
		r, err := p.runInstance(ctx, abbr, scale, inst)
		if err != nil {
			return nil, fmt.Errorf("gscalar: warp-size sweep at %d: %w", ws, err)
		}
		out = append(out, WarpSizeSweepResult{
			WarpSize:  ws,
			HalfFrac:  r.Eligibility.Half,
			TotalFrac: r.Eligibility.Total(),
		})
	}
	return out, nil
}

// runVia is the single construction path behind every package-level Run*
// helper: validate once through NewSession, then delegate to the session
// method. It keeps the free functions thin, documented wrappers with
// identical validation and error-wrapping behaviour.
func runVia(cfg Config, arch Arch, f func(*Session) (Result, error)) (Result, error) {
	s, err := NewSession(cfg, arch)
	if err != nil {
		return Result{}, err
	}
	return f(s)
}

// RunContext is Session.Run as a free function: it constructs a one-shot
// Session (via runVia) and runs prog on it. Use a Session directly to reuse
// the validated config, observe progress, or collect telemetry.
func RunContext(ctx context.Context, cfg Config, arch Arch, prog *Program, launch Launch, mem *Memory) (Result, error) {
	return runVia(cfg, arch, func(s *Session) (Result, error) {
		return s.Run(ctx, prog, launch, mem)
	})
}

// RunWorkloadContext is Session.RunWorkload as a free function over a
// one-shot Session (via runVia); see RunContext.
func RunWorkloadContext(ctx context.Context, cfg Config, arch Arch, abbr string, scale int) (Result, error) {
	return runVia(cfg, arch, func(s *Session) (Result, error) {
		return s.RunWorkload(ctx, abbr, scale)
	})
}

// RunSequenceContext is Session.RunSequence as a free function over a
// one-shot Session (via runVia); see RunContext.
func RunSequenceContext(ctx context.Context, cfg Config, arch Arch, mem *Memory, seq []KernelLaunch) (Result, error) {
	return runVia(cfg, arch, func(s *Session) (Result, error) {
		return s.RunSequence(ctx, mem, seq)
	})
}
