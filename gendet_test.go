package gscalar_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"gscalar"
	"gscalar/internal/gen"
	"gscalar/internal/workloads"
)

// The gendet suite holds the synthetic generator's calibration contract:
// the *measured* telemetry of a generated kernel lands within tolerance of
// its dial vector. Share dials (div, sfu, mem) are asserted on every
// architecture; the RF read-class mix only exists on compressing
// architectures (the baseline never classifies reads), so it is asserted
// on G-Scalar.
//
// Tolerances: one slot out of the ~33 instructions per arm execution is
// ~0.03 of the total, and rounding in the divergent-iteration count moves
// shares by a similar amount, so 0.05 (shares) / 0.06 (read classes) give
// the solver one quantum of slack without letting a mis-calibration pass.
const (
	genTolShare = 0.05
	genTolRF    = 0.06
)

// genGrid is the dial-accuracy grid. Every point is chosen feasible: the
// template has structural reads (a ~0.14 scalar floor from the loop
// counter arithmetic, forced 3-byte reads from coalesced address registers,
// forced 1-byte reads from scatter addresses) and high divergence shrinks
// the convergent executions that carry true-class reads — so points with
// heavy memory traffic request matching read classes, and the div=0.6
// point requests the small mix that remains reachable. All points run at
// low occupancy to keep the suite fast; occupancy only scales the grid.
var genGrid = []string{
	"occ=0.2",
	"div=0.15,occ=0.2",
	"div=0.3,occ=0.2",
	"div=0.45,occ=0.2",
	"div=0.6,rs=0.1,r3=0.05,occ=0.2",
	"sfu=0.15,occ=0.2",
	"sfu=0.3,occ=0.2",
	"sfu=0.4,mem=0.1,occ=0.2",
	"sfu=0,mem=0,occ=0.2",
	"mem=0.2,r3=0.2,occ=0.2",
	"mem=0.3,r3=0.25,rs=0.25,occ=0.2",
	"mem=0.3,coal=0.5,r3=0.2,r1=0.1,occ=0.2",
	"mem=0.45,coal=0,r1=0.3,rs=0.2,r3=0.1,occ=0.2",
	"rs=0.5,r3=0.1,r2=0.1,r1=0.1,occ=0.2",
	"rs=0.1,r3=0.3,r2=0.1,r1=0.1,occ=0.2",
	"rs=0.15,r3=0.1,r2=0.1,r1=0.1,occ=0.2",
	"div=0.3,sfu=0.2,mem=0.2,coal=0.5,r3=0.18,r1=0.1,occ=0.2",
	"div=0.2,sfu=0.1,mem=0.15,rs=0.35,occ=0.2",
	"div=0.3,sfu=0.2,mem=0.2,coal=0.5,r3=0.18,r1=0.1,seed=7,occ=0.2",
	"seed=123,occ=0.2",
	"div=0.3,sfu=0.25,occ=0.1",
	"mem=0.25,r3=0.22,occ=0.3",
}

func genParams(t *testing.T, spec string) gen.Params {
	t.Helper()
	ps, err := workloads.ParseSpec("gen:" + spec)
	if err != nil {
		t.Fatal(err)
	}
	return ps.Gen
}

// TestGenDialAccuracy drives every grid point through a real simulation on
// both architectures and checks the measured shares against the dials.
func TestGenDialAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := gscalar.DefaultConfig()
	grid := genGrid
	archs := []gscalar.Arch{gscalar.Baseline, gscalar.GScalar}
	for _, spec := range grid {
		p := genParams(t, spec)
		for _, arch := range archs {
			arch := arch
			t.Run(fmt.Sprintf("%s/%s", arch, spec), func(t *testing.T) {
				t.Parallel()
				res, err := gscalar.RunWorkloadContext(context.Background(), cfg, arch, "gen:"+spec, 1)
				if err != nil {
					t.Fatal(err)
				}
				checkShare := func(name string, got, want float64) {
					if math.Abs(got-want) > genTolShare {
						t.Errorf("%s = %.3f, dial requests %.3f (tol %.2f)", name, got, want, genTolShare)
					}
				}
				checkShare("frac_divergent", res.FracDivergent, p.Div)
				checkShare("inst_mix.sfu", res.InstMix.SFU, p.SFU)
				checkShare("inst_mix.mem", res.InstMix.Mem, p.Mem)
				if arch == gscalar.Baseline {
					// No compression hardware ⇒ no read classification.
					if res.RFAccess != (gscalar.RFAccessDist{}) {
						t.Errorf("baseline classified RF reads: %+v", res.RFAccess)
					}
					return
				}
				d := res.RFAccess
				for _, c := range []struct {
					name      string
					got, want float64
				}{
					{"rf.scalar", d.Scalar, p.Scalar},
					{"rf.b3", d.B3, p.B3},
					{"rf.b2", d.B2, p.B2},
					{"rf.b1", d.B1, p.B1},
				} {
					if math.Abs(c.got-c.want) > genTolRF {
						t.Errorf("%s = %.3f, dial requests %.3f (tol %.2f)", c.name, c.got, c.want, genTolRF)
					}
				}
			})
		}
	}
}

// stripPower clears the power/energy aggregates, whose floating-point
// summation order differs between the serial and phased chip loops. Every
// simulated counter and counter-derived share must still match exactly.
func stripPower(r gscalar.Result) gscalar.Result {
	r.PowerW, r.IPCPerW, r.EnergyJ = 0, 0, 0
	r.ExecPowerShare, r.RFPowerShare, r.RFDynamicJ = 0, 0, 0
	r.PowerByComponent = nil
	return r
}

// TestGenPhasedMatchesSerial: a generated workload is as deterministic as a
// builtin — the phased parallel loop reproduces every simulated counter of
// the serial loop exactly (so the dials hold on both loops), and phased
// runs are bit-identical across worker counts, power floats included.
func TestGenPhasedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	specs := []string{
		"gen:div=0.3,occ=0.2",
		"gen:div=0.3,sfu=0.2,mem=0.2,coal=0.5,r3=0.18,r1=0.1,occ=0.2",
		"gen:mem=0.3,r3=0.25,rs=0.25,seed=42,occ=0.2",
	}
	run := func(spec string, workers int) gscalar.Result {
		t.Helper()
		cfg := gscalar.DefaultConfig()
		cfg.Workers = workers
		res, err := gscalar.RunWorkloadContext(context.Background(), cfg, gscalar.GScalar, spec, 1)
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", spec, workers, err)
		}
		return res
	}
	for _, spec := range specs {
		serial := run(spec, 0)
		phased := run(spec, 4)
		if !reflect.DeepEqual(stripPower(stripExecMeta(serial)), stripPower(stripExecMeta(phased))) {
			t.Errorf("%s: phased loop diverged from serial:\nserial: %+v\nphased: %+v",
				spec, stripPower(serial), stripPower(phased))
		}
		one := run(spec, 1)
		if !reflect.DeepEqual(stripExecMeta(one), stripExecMeta(phased)) {
			t.Errorf("%s: phased results differ between 1 and 4 workers", spec)
		}
	}
}

// TestGenDeterminismGate is the generator's reproducibility gate: the same
// spec yields a byte-identical program, a byte-identical memory image and
// the same content key on every build, at every GOMAXPROCS — which is what
// makes "gen:" specs safe to key the content-addressed result store.
func TestGenDeterminismGate(t *testing.T) {
	const spec = "div=0.3,sfu=0.2,mem=0.25,coal=0.5,seed=9,occ=0.2"
	p := genParams(t, spec)

	type build struct {
		gasm  string
		key   string
		next  uint32
		pages []byte
	}
	buildOnce := func() build {
		t.Helper()
		src, err := workloads.Resolve("gen:" + spec)
		if err != nil {
			t.Fatal(err)
		}
		_, lc, mem, err := gen.Build(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if lc.Grid.X <= 0 {
			t.Fatal("empty grid")
		}
		next, pages := mem.Snapshot()
		var flat bytes.Buffer
		for _, pg := range pages {
			fmt.Fprintf(&flat, "%d:", pg.ID)
			flat.Write(pg.Data)
		}
		return build{gasm: gen.Render(p), key: src.Key(), next: next, pages: flat.Bytes()}
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first build
	for i, procs := range []int{prev, 1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		b := buildOnce()
		if i == 0 {
			first = b
			if b.key != "gen:"+p.Canonical() {
				t.Fatalf("key = %q, want canonical gen:%s", b.key, p.Canonical())
			}
			continue
		}
		if b.gasm != first.gasm {
			t.Errorf("GOMAXPROCS=%d: program text differs", procs)
		}
		if b.key != first.key {
			t.Errorf("GOMAXPROCS=%d: key %q != %q", procs, b.key, first.key)
		}
		if b.next != first.next || !bytes.Equal(b.pages, first.pages) {
			t.Errorf("GOMAXPROCS=%d: memory image differs", procs)
		}
	}
}

// TestGenSpecCanonicalKeysAgree: every spelling of one dial vector shares a
// canonical workload key, so sweeps and the serve store never simulate the
// same synthetic point twice.
func TestGenSpecCanonicalKeysAgree(t *testing.T) {
	spellings := []string{
		"gen:div=0.30,sfu=0.2,seed=07",
		"gen:seed=7,sfu=0.20,div=0.3",
		"gen:div=0.3,sfu=0.2,seed=7,mem=0.1,coal=1",
	}
	want := ""
	for i, s := range spellings {
		key, err := gscalar.CanonicalWorkloadKey(s)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = key
			continue
		}
		if key != want {
			t.Errorf("key(%q) = %q, want %q", s, key, want)
		}
	}
	if want != "gen:div=0.3,seed=7,sfu=0.2" {
		t.Errorf("canonical key = %q", want)
	}
}
