package gscalar_test

import (
	"context"
	"reflect"
	"testing"

	"gscalar"
)

// runWorkloadVia simulates one workload through a fresh Session — the
// supported entry path now that the context-less free functions are
// deprecated shims. Shared by the determinism, idle-skip, cancellation and
// benchmark tests of this package.
func runWorkloadVia(t testing.TB, cfg gscalar.Config, arch gscalar.Arch, abbr string, scale int) (gscalar.Result, error) {
	t.Helper()
	s, err := gscalar.NewSession(cfg, arch)
	if err != nil {
		t.Fatal(err)
	}
	return s.RunWorkload(context.Background(), abbr, scale)
}

// runDet simulates one (arch, workload) point with the given worker count.
func runDet(t *testing.T, arch gscalar.Arch, abbr string, workers int) gscalar.Result {
	t.Helper()
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	res, err := runWorkloadVia(t, cfg, arch, abbr, 1)
	if err != nil {
		t.Fatalf("%s on %s (workers=%d): %v", abbr, arch, workers, err)
	}
	return res
}

// stripExecMeta clears the fields that record how a run executed (chip loop
// and resolved worker count) rather than what it simulated, so results from
// different execution modes can be compared for simulation identity.
func stripExecMeta(r gscalar.Result) gscalar.Result {
	r.ExecMode = ""
	r.ResolvedWorkers = 0
	return r
}

// assertIdentical compares two results bit-for-bit: cycles, every
// statistic, and the floating-point energy/power numbers, which must match
// exactly — not within a tolerance — for the phased loop to count as
// deterministic. The execution metadata (ExecMode, ResolvedWorkers) is
// excluded: it legitimately differs between the runs whose simulated
// outputs must not.
func assertIdentical(t *testing.T, abbr string, arch gscalar.Arch, a, b gscalar.Result) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Errorf("%s/%s: cycles %d vs %d", abbr, arch, a.Cycles, b.Cycles)
	}
	if a.EnergyJ != b.EnergyJ {
		t.Errorf("%s/%s: energy %v vs %v", abbr, arch, a.EnergyJ, b.EnergyJ)
	}
	if !reflect.DeepEqual(stripExecMeta(a), stripExecMeta(b)) {
		t.Errorf("%s/%s: results differ beyond cycles/energy:\n%+v\nvs\n%+v", abbr, arch, a, b)
	}
}

// TestWorkerCountDeterminism runs the same (config, workload) with one and
// with eight phased workers and requires bit-identical Results. In short
// mode a 3-workload × 2-architecture subset runs; the full 17-workload
// registry (the PR's acceptance bar) runs without -short.
func TestWorkerCountDeterminism(t *testing.T) {
	workloadSet := gscalar.Workloads()
	if testing.Short() {
		workloadSet = []string{"HS", "MQ", "SAD"}
	}
	for _, arch := range []gscalar.Arch{gscalar.Baseline, gscalar.GScalar} {
		for _, abbr := range workloadSet {
			one := runDet(t, arch, abbr, 1)
			eight := runDet(t, arch, abbr, 8)
			assertIdentical(t, abbr, arch, one, eight)
		}
	}
}

// TestWorkerCountDeterminismRepeat guards against run-to-run nondeterminism
// of the parallel loop itself (two 8-worker runs must also agree).
func TestWorkerCountDeterminismRepeat(t *testing.T) {
	for _, abbr := range []string{"HS", "PF"} {
		a := runDet(t, gscalar.GScalar, abbr, 8)
		b := runDet(t, gscalar.GScalar, abbr, 8)
		assertIdentical(t, abbr, gscalar.GScalar, a, b)
	}
}
