package gscalar_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (§5). Each Benchmark* target prints the corresponding
// table (paper reference values are annotated in the headers) and reports
// the headline number as a benchmark metric.
//
//	go test -bench Fig11 -benchmem               # one figure
//	go test -bench . -benchmem -timeout 0        # everything (an hour-plus)
//	go test -bench Fig9 -workloads BP,LBM        # a subset of Table 2
//
// Absolute cycles and Watts come from this repository's simulator, not the
// authors' GPGPU-Sim/GPUWattch setup; EXPERIMENTS.md records the
// paper-vs-measured comparison for every target below.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"gscalar"
	"gscalar/internal/experiments"
)

var (
	benchWorkloads = flag.String("workloads", "", "comma-separated Table 2 subset for benches (default: all)")
	benchScale     = flag.Int("benchscale", 1, "workload scale factor for benches")
)

func benchSuite() *experiments.Suite {
	o := experiments.Options{Config: gscalar.DefaultConfig(), Scale: *benchScale}
	if *benchWorkloads != "" {
		o.Workloads = strings.Split(*benchWorkloads, ",")
	}
	return experiments.NewSuite(o)
}

// BenchmarkFig1DivergentFraction regenerates Figure 1: the fraction of
// divergent and divergent-scalar instructions (paper: 28 % divergent, 45 %
// of those divergent-scalar).
func BenchmarkFig1DivergentFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig1(rows))
			var d, ds float64
			for _, r := range rows {
				d += r.Divergent
				ds += r.DivergentScalar
			}
			b.ReportMetric(100*d/float64(len(rows)), "%divergent")
			b.ReportMetric(100*ds/float64(len(rows)), "%div-scalar")
		}
	}
}

// BenchmarkFig8RFAccessDistribution regenerates Figure 8: the register-file
// access distribution by value similarity (paper means: scalar 36 %, 3-byte
// 17 %, 2-byte 4 %, 1-byte 7 %).
func BenchmarkFig8RFAccessDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig8(rows))
			var sc float64
			for _, r := range rows {
				sc += r.Dist.Scalar
			}
			b.ReportMetric(100*sc/float64(len(rows)), "%scalar-reads")
		}
	}
}

// BenchmarkFig9ScalarEligibility regenerates Figure 9: instructions
// eligible for scalar execution, stacked by mechanism (paper means: ALU
// 22 % + SFU/mem 7 % + half 2 % + divergent 9 % = 40 %).
func BenchmarkFig9ScalarEligibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig9(rows))
			var tot float64
			for _, r := range rows {
				tot += r.E.Total()
			}
			b.ReportMetric(100*tot/float64(len(rows)), "%eligible")
		}
	}
}

// BenchmarkFig10WarpSizeSweep regenerates Figure 10: 16-thread-granularity
// scalar eligibility at warp sizes 32 and 64 (paper: the mean rises to ~5 %
// at warp size 64).
func BenchmarkFig10WarpSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig10(rows))
			var h64 float64
			for _, r := range rows {
				h64 += r.Half64
			}
			b.ReportMetric(100*h64/float64(len(rows)), "%quarter@64")
		}
	}
}

// BenchmarkFig11PowerEfficiency regenerates Figure 11: normalized IPC/W for
// ALU-scalar, G-Scalar w/o divergent, and G-Scalar, plus G-Scalar's IPC
// (paper: 1.24x vs baseline, 1.15x vs ALU-scalar, IPC -1.7 %; BP highest).
func BenchmarkFig11PowerEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig11(rows))
			var g, ipc float64
			for _, r := range rows {
				g += r.GScalar
				ipc += r.GScalarIPC
			}
			b.ReportMetric(g/float64(len(rows)), "xIPC/W")
			b.ReportMetric(ipc/float64(len(rows)), "xIPC")
		}
	}
}

// BenchmarkFig12RFPower regenerates Figure 12: normalized register-file
// dynamic power for the scalar-only RF, Warped-Compression (BDI) and the
// paper's byte-wise compression (paper: 0.63 / ~0.5 / 0.46; compression
// ratios 2.13 vs 2.17).
func BenchmarkFig12RFPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatFig12(rows))
			var ours float64
			for _, r := range rows {
				ours += r.Ours
			}
			b.ReportMetric(ours/float64(len(rows)), "xRFpower")
		}
	}
}

// BenchmarkTable1Config prints the simulator configuration against Table 1.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.FormatTable1(gscalar.DefaultConfig())
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkTable2Workloads prints the benchmark roster against Table 2.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.FormatTable2()
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkTable3CodecCost prints the codec synthesis numbers (Table 3) and
// the derived per-SM cost (paper: +0.32 W / 1.6 %, +0.16 mm² / 0.7 %).
func BenchmarkTable3CodecCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.FormatTable3()
		if i == 0 {
			fmt.Println(out)
			c := experiments.CodecCost()
			b.ReportMetric(c.TotalPowerWPerSM, "W/SM")
			b.ReportMetric(c.TotalAreaMM2PerSM*1000, "mm2/SM(milli)")
		}
	}
}

// BenchmarkAblationMoveOverhead measures §3.3's injected decompress-move
// overhead (paper: ~2 % dynamic instructions for the hardware-assisted
// technique).
func BenchmarkAblationMoveOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.MoveOverhead()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatMoveOverhead(rows))
			var hw, ca float64
			for _, r := range rows {
				hw += r.Hardware
				ca += r.CompilerAssisted
			}
			b.ReportMetric(100*hw/float64(len(rows)), "%moves-hw")
			b.ReportMetric(100*ca/float64(len(rows)), "%moves-ca")
		}
	}
}

// BenchmarkAblationCompilerScalar measures §6's compile-time-only
// scalarization gap (paper: a compiler-assisted method captured 24 % fewer
// scalar instructions, mostly because loaded-value uniformity is invisible
// statically).
func BenchmarkAblationCompilerScalar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.CompilerScalar()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatCompilerScalar(rows))
		}
	}
}

// BenchmarkAblationHalfWarpScalar measures §4.3's half-warp scalar
// execution value against its 3 %→7 % register-file area cost.
func BenchmarkAblationHalfWarpScalar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.HalfAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatHalfAblation(rows))
		}
	}
}

// BenchmarkAblationScalarBank measures §4.1's single-scalar-bank burst
// bottleneck in the prior architecture, which G-Scalar's 16 per-bank BVR
// arrays avoid.
func BenchmarkAblationScalarBank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.ScalarBankAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(experiments.FormatScalarBank(rows))
		}
	}
}

// timedRun simulates one workload point and reports the wall-clock seconds
// it took alongside the Result.
func timedRun(b *testing.B, abbr string, workers int, disableSkip bool) (gscalar.Result, float64) {
	b.Helper()
	cfg := benchCfg(workers, disableSkip)
	t0 := time.Now()
	res, err := runWorkloadVia(b, cfg, gscalar.GScalar, abbr, *benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return res, time.Since(t0).Seconds()
}

// benchCfg is the exact configuration a timedRun point simulates; its
// canonical Hash is recorded in each snapshot row so a BENCH file can be
// matched unambiguously to the configuration that produced it.
func benchCfg(workers int, disableSkip bool) gscalar.Config {
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	cfg.DisableIdleSkip = disableSkip
	return cfg
}

// parallelSnapshot is one row of BENCH_parallel.json: one parallel loop
// (phased per-cycle, or relaxed at a given epoch length) at one worker
// count, measured against the legacy serial loop on the same workload.
// host_cores matters — on a single-core host no loop can beat the serial
// one and speedup_vs_serial ~1/overhead is expected; the multi-worker rows
// exist so a multi-core host's numbers land in review without editing the
// harness. cycle_delta_pct (relaxed rows only) is the simulated-cycle
// deviation from the serial oracle; identical_results asserts bit-identity
// with the loop's own workers=1 run, which holds for every mode — for the
// relaxed loop worker count is pure execution parallelism and only
// EpochCycles is a model parameter.
type parallelSnapshot struct {
	Workload         string  `json:"workload"`
	Arch             string  `json:"arch"`
	ConfigHash       string  `json:"config_hash"`
	Scale            int     `json:"scale"`
	HostCores        int     `json:"host_cores"`
	Mode             string  `json:"mode"`
	EpochCycles      int     `json:"epoch_cycles,omitempty"`
	Workers          int     `json:"workers"`
	Cycles           uint64  `json:"cycles"`
	SerialSeconds    float64 `json:"serial_seconds"`
	ParallelSeconds  float64 `json:"parallel_seconds"`
	SpeedupVsSerial  float64 `json:"speedup_vs_serial"`
	CycleDeltaPct    float64 `json:"cycle_delta_pct,omitempty"`
	IdenticalResults bool    `json:"identical_results"`
}

// parallelBench is the BENCH_parallel.json document: a context note plus the
// measured rows.
type parallelBench struct {
	Note string             `json:"note"`
	Rows []parallelSnapshot `json:"rows"`
}

// timedRunEpoch is timedRun on the relaxed loop at the given epoch length.
func timedRunEpoch(b *testing.B, abbr string, workers, epoch int) (gscalar.Result, float64) {
	b.Helper()
	cfg := benchCfg(workers, false)
	cfg.EpochCycles = epoch
	t0 := time.Now()
	res, err := runWorkloadVia(b, cfg, gscalar.GScalar, abbr, *benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return res, time.Since(t0).Seconds()
}

// BenchmarkParallelSpeedup measures, for the three largest workloads (HS,
// LBM, MG), the legacy serial loop against the phased per-cycle loop and
// the relaxed epoch loop (epochs 64 and 256) at worker counts 1, 2, 4, 8,
// checks each loop's worker-count determinism on the way, records the
// relaxed rows' cycle deviation from the serial oracle, and writes every
// point to BENCH_parallel.json:
//
//	go test -bench ParallelSpeedup -benchtime 1x -run '^$'
//
// Idle skipping stays at its default (on) for every row, so this file
// isolates the loop-structure comparison; BENCH_core.json carries the
// skip-on/off comparison.
func BenchmarkParallelSpeedup(b *testing.B) {
	workloads := []string{"HS", "LBM", "MG"}
	epochs := []int{64, 256}
	cores := runtime.GOMAXPROCS(0)
	workerPoints := []int{1, 2, 4, 8}

	var snaps []parallelSnapshot
	var bestRelaxed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps = snaps[:0]
		bestRelaxed = 0
		for _, abbr := range workloads {
			serial, serialSec := timedRun(b, abbr, 0, false)
			row := func(mode string, epoch, workers int, res gscalar.Result, sec float64, hash string) parallelSnapshot {
				snap := parallelSnapshot{
					Workload:        abbr,
					Arch:            gscalar.GScalar.String(),
					ConfigHash:      hash,
					Scale:           *benchScale,
					HostCores:       cores,
					Mode:            mode,
					EpochCycles:     epoch,
					Workers:         workers,
					Cycles:          res.Cycles,
					SerialSeconds:   serialSec,
					ParallelSeconds: sec,
					SpeedupVsSerial: serialSec / sec,
				}
				if mode == "relaxed" {
					snap.CycleDeltaPct = math.Abs(float64(res.Cycles)-float64(serial.Cycles)) /
						float64(serial.Cycles) * 100
				}
				return snap
			}
			// Each loop's workers=1 run is its determinism reference; the
			// serial loop is a different machine (stores become visible
			// within the issuing cycle) and serves as the timing oracle.
			var phasedRef gscalar.Result
			relaxedRef := map[int]gscalar.Result{}
			for wi, workers := range workerPoints {
				par, parSec := timedRun(b, abbr, workers, false)
				if wi == 0 {
					phasedRef = par
				} else if !reflect.DeepEqual(stripExecMeta(phasedRef), stripExecMeta(par)) {
					b.Fatalf("%s: phased loop nondeterministic: workers=%d differs from workers=%d",
						abbr, workers, workerPoints[0])
				}
				snap := row("phased", 0, workers, par, parSec, benchCfg(workers, false).Hash())
				snap.IdenticalResults = true
				snaps = append(snaps, snap)

				for _, epoch := range epochs {
					rel, relSec := timedRunEpoch(b, abbr, workers, epoch)
					if wi == 0 {
						relaxedRef[epoch] = rel
					} else if !reflect.DeepEqual(stripExecMeta(relaxedRef[epoch]), stripExecMeta(rel)) {
						b.Fatalf("%s: relaxed loop (epoch=%d) nondeterministic: workers=%d differs from workers=%d",
							abbr, epoch, workers, workerPoints[0])
					}
					cfg := benchCfg(workers, false)
					cfg.EpochCycles = epoch
					snap := row("relaxed", epoch, workers, rel, relSec, cfg.Hash())
					snap.IdenticalResults = true
					snaps = append(snaps, snap)
					if snap.SpeedupVsSerial > bestRelaxed {
						bestRelaxed = snap.SpeedupVsSerial
					}
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(bestRelaxed, "best-relaxed-speedup")
	b.ReportMetric(float64(cores), "cores")
	doc := parallelBench{
		Note: "speedup_vs_serial is wall-clock of the legacy serial loop over the row's loop " +
			"on the same workload. host_cores=1 on this container: every loop shares one core, " +
			"so all speedups measure coordination overhead only (~1x is the ceiling) — the " +
			"workers=2/4/8 rows exist so a multi-core host's numbers land by rerunning " +
			"`make bench-parallel`, where the relaxed loop's once-per-epoch barrier is " +
			"designed to scale and the phased loop's per-cycle barrier is the contrast. " +
			"identical_results is bit-identity with the same loop at workers=1 (worker count " +
			"never changes simulation output in either mode); relaxed rows additionally " +
			"record cycle_delta_pct, the simulated-cycle deviation from the serial oracle " +
			"(bounded by the envelope asserted in relaxed_test.go).",
		Rows: snaps,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// coreSnapshot is one row of BENCH_core.json: a single (workload, mode)
// simulator-performance measurement. speedup is relative to the
// serial-noskip baseline row of the same workload.
type coreSnapshot struct {
	Workload   string  `json:"workload"`
	Arch       string  `json:"arch"`
	ConfigHash string  `json:"config_hash"`
	Scale      int     `json:"scale"`
	HostCores  int     `json:"host_cores"`
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	IdleSkip   bool    `json:"idle_skip"`
	Cycles     uint64  `json:"cycles"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup"`
	// SpeedupVsPrev is this row's wall-clock against the same workload on
	// the tree before the SoA/branchless execution rework (soaBaseline),
	// measured on the same host with the serial skip-enabled loop.
	SpeedupVsPrev float64 `json:"speedup_vs_prev,omitempty"`
}

// soaBaseline records per-workload serial-loop (idle skip on) wall-clock
// seconds measured once on this host against the tree as it stood before the
// SoA/branchless warp-execution rework (commit 46c53c6), best of three runs.
// The rework is structural — flat register slices, per-predicate lane masks,
// cached coalesced-line lists — so no flag can restore the old cost.
var soaBaseline = map[string]float64{
	"BT": 0.0903, "BP": 0.1502, "HW": 0.0375, "HS": 0.1025,
	"LC": 0.0701, "PF": 0.1196, "SR1": 0.0489, "SR2": 0.0291,
	"CC": 0.1848, "LBM": 0.4849, "MG": 0.5211, "MQ": 0.3162,
	"SAD": 0.0827, "MM": 0.1787, "MV": 2.7960, "ST": 0.0516,
	"ACF": 0.2158,
}

// preReworkReference records the one measurement `make bench` cannot
// reproduce: wall-clock against the simulator as it stood before the
// event-driven core rework (commit a165751). The hot-path changes —
// incremental ready lists, per-PC metadata, zero-allocation cycles — are
// structural, so the -noskip flag cannot restore the old cost; these
// numbers were measured once by building both trees on the same host.
type preReworkReference struct {
	Commit      string             `json:"commit"`
	Host        string             `json:"host"`
	Note        string             `json:"note"`
	SuiteBefore float64            `json:"suite_seconds_before"`
	SuiteAfter  float64            `json:"suite_seconds_after"`
	Workloads   map[string]refMeas `json:"workloads"`
}

type refMeas struct {
	SecondsBefore float64 `json:"seconds_before"`
	SecondsAfter  float64 `json:"seconds_after"`
	Speedup       float64 `json:"speedup"`
}

// traceReplayReference records the execution-trace frontend's cost on a few
// representative workloads, regenerated live by `make bench`: capturing a
// run (serial loop with the trace hook installed, plus the atomic file
// write) and replaying the captured file (decode + reassemble + re-execute
// through the normal pipeline), each against a plain live serial run.
// Replay re-simulates from the trace's embedded input, so replay ≈ live is
// the expectation; capture pays the per-instruction record encode.
type traceReplayReference struct {
	Note      string                `json:"note"`
	Workloads map[string]replayMeas `json:"workloads"`
}

type replayMeas struct {
	LiveSeconds     float64 `json:"live_seconds"`
	CaptureSeconds  float64 `json:"capture_seconds"`
	ReplaySeconds   float64 `json:"replay_seconds"`
	TraceBytes      int64   `json:"trace_bytes"`
	CaptureOverhead float64 `json:"capture_overhead"` // capture/live
	ReplayOverhead  float64 `json:"replay_overhead"`  // replay/live
}

// coreBench is the BENCH_core.json document: the fixed pre-rework
// reference, the SoA-rework reference (fixed "before" column, live "after"
// column), the trace capture/replay overhead block, plus live rows
// regenerated by `make bench`.
type coreBench struct {
	PreRework   preReworkReference   `json:"pre_rework_reference"`
	SoARework   preReworkReference   `json:"soa_rework_reference"`
	TraceReplay traceReplayReference `json:"trace_replay_reference"`
	Rows        []coreSnapshot       `json:"rows"`
}

// BenchmarkCoreSpeedup measures the SM core loop's simulator performance
// across the full Table 2 suite: every workload runs on the serial loop with
// idle skipping disabled (the closest reproducible stand-in for the old
// per-cycle full-scan loop) and then with skipping enabled on the serial and
// phased loops. All modes must produce bit-identical Results — the speedup
// is free. Each row also carries speedup_vs_prev: wall-clock against the
// tree before the SoA/branchless execution rework (see soaBaseline), whose
// suite total the soa_rework_reference block summarises. Regenerate with:
//
//	go test -bench CoreSpeedup -benchtime 1x -run '^$'
//
// or `make bench`.
func BenchmarkCoreSpeedup(b *testing.B) {
	workloads := gscalar.Workloads()
	cores := runtime.GOMAXPROCS(0)
	var snaps []coreSnapshot
	var lbmSpeedup float64
	soaWl := make(map[string]refMeas, len(workloads))
	var suiteBefore, suiteAfter float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps = snaps[:0]
		soaWl = map[string]refMeas{}
		suiteBefore, suiteAfter = 0, 0
		for _, abbr := range workloads {
			prev := soaBaseline[abbr]
			base, baseSec := timedRun(b, abbr, 0, true)
			add := func(mode string, workers int, skip bool, res gscalar.Result, sec float64) {
				snap := coreSnapshot{
					Workload: abbr, Arch: gscalar.GScalar.String(),
					ConfigHash: benchCfg(workers, !skip).Hash(), Scale: *benchScale,
					HostCores: cores, Mode: mode, Workers: workers, IdleSkip: skip,
					Cycles: res.Cycles, Seconds: sec, Speedup: baseSec / sec,
				}
				if prev > 0 && *benchScale == 1 {
					snap.SpeedupVsPrev = prev / sec
				}
				snaps = append(snaps, snap)
			}
			add("serial-noskip", 0, false, base, baseSec)
			res, sec := timedRun(b, abbr, 0, false)
			// Skipping must be invisible in the results: bit-identical to
			// the same loop run cycle by cycle.
			if !reflect.DeepEqual(base, res) {
				b.Fatalf("%s: serial skip-enabled result differs from skip-disabled", abbr)
			}
			add("serial-skip", 0, true, res, sec)
			if prev > 0 {
				suiteBefore += prev
				suiteAfter += sec
				soaWl[abbr] = refMeas{
					SecondsBefore: prev, SecondsAfter: sec, Speedup: prev / sec,
				}
			}
			if abbr == "LBM" {
				lbmSpeedup = baseSec / sec
			}
			phased1, sec1 := timedRun(b, abbr, 1, false)
			add("phased-skip", 1, true, phased1, sec1)
			if cores > 1 {
				phasedN, secN := timedRun(b, abbr, cores, false)
				// Phased runs must agree with each other across worker
				// counts (the serial loop differs in same-cycle store
				// visibility, so it is the timing baseline, not the
				// phased reference).
				if !reflect.DeepEqual(stripExecMeta(phased1), stripExecMeta(phasedN)) {
					b.Fatalf("%s: phased loop nondeterministic across worker counts", abbr)
				}
				add("phased-skip", cores, true, phasedN, secN)
			}
		}
	}
	// Trace capture/replay overhead on three representative workloads:
	// divergence-heavy (HS), memory-bound (LBM), loop/gather-heavy (MV).
	replayWl := map[string]replayMeas{}
	for _, abbr := range []string{"HS", "LBM", "MV"} {
		liveRes, liveSec := timedRun(b, abbr, 0, false)
		path := filepath.Join(b.TempDir(), abbr+".gstr")
		s, err := gscalar.NewSession(benchCfg(0, false), gscalar.GScalar)
		if err != nil {
			b.Fatal(err)
		}
		s.Capture.Path = path
		t0 := time.Now()
		if _, err := s.RunWorkload(context.Background(), abbr, *benchScale); err != nil {
			b.Fatal(err)
		}
		capSec := time.Since(t0).Seconds()
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		t0 = time.Now()
		repRes, err := runWorkloadVia(b, benchCfg(0, false), gscalar.GScalar, "trace:"+path, *benchScale)
		if err != nil {
			b.Fatal(err)
		}
		repSec := time.Since(t0).Seconds()
		// Replay is re-execution: byte-identical to the live serial run.
		if !reflect.DeepEqual(liveRes, repRes) {
			b.Fatalf("%s: replayed result differs from live serial run", abbr)
		}
		replayWl[abbr] = replayMeas{
			LiveSeconds: liveSec, CaptureSeconds: capSec, ReplaySeconds: repSec,
			TraceBytes:      fi.Size(),
			CaptureOverhead: capSec / liveSec, ReplayOverhead: repSec / liveSec,
		}
	}

	b.StopTimer()
	b.ReportMetric(lbmSpeedup, "LBM-skip-speedup")
	b.ReportMetric(suiteAfter, "suite-s")
	doc := coreBench{
		SoARework: preReworkReference{
			Commit: "46c53c6",
			Host:   "GOMAXPROCS=1 container host",
			Note: "seconds_before measured once against the pre-SoA tree " +
				"(serial loop, idle skip on, best of 3); seconds_after is " +
				"this run's serial-skip row",
			SuiteBefore: suiteBefore,
			SuiteAfter:  suiteAfter,
			Workloads:   soaWl,
		},
		PreRework: preReworkReference{
			Commit: "a165751",
			Host:   "Intel Xeon @ 2.10GHz, GOMAXPROCS=1",
			Note: "measured once against the pre-rework tree; " +
				"`make bench` regenerates only the rows below",
			SuiteBefore: 55.7,
			SuiteAfter:  11.3,
			Workloads: map[string]refMeas{
				"LBM": {SecondsBefore: 1.72, SecondsAfter: 0.55, Speedup: 3.1},
				"HS":  {SecondsBefore: 0.35, SecondsAfter: 0.13, Speedup: 2.7},
			},
		},
		TraceReplay: traceReplayReference{
			Note: "serial loop, GScalar arch; capture = live run with the " +
				"trace hook + atomic .gstr write; replay = decode + " +
				"re-execution via -workload trace:<file>, asserted " +
				"bit-identical to the live run",
			Workloads: replayWl,
		},
		Rows: snaps,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles per wall second) on one benchmark — a performance regression
// guard for the simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := gscalar.DefaultConfig()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := runWorkloadVia(b, cfg, gscalar.GScalar, "HS", 1)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
