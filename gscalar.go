// Package gscalar is a cycle-level GPU simulator reproducing "G-Scalar:
// Cost-Effective Generalized Scalar Execution Architecture for
// Power-Efficient GPUs" (Liu, Gilani, Annavaram, Kim — HPCA 2017).
//
// It models a GTX-480-class GPU (15 SMs, 16-bank register file, 2×16-lane
// ALU + 16-lane memory + 4-lane SFU pipelines) with an event-energy power
// model, and implements the paper's byte-wise register value compression
// and generalized scalar execution (including divergent and half-warp
// scalar), alongside the prior-work comparators it is evaluated against:
// the scalar-register-file architecture (Gilani et al., HPCA'13) and
// BDI-based Warped-Compression (Lee et al., ISCA'15).
//
// Quick start:
//
//	cfg := gscalar.DefaultConfig()
//	s, err := gscalar.NewSession(cfg, gscalar.GScalar)
//	res, err := s.RunWorkload(ctx, "BP", 1)
//	fmt.Printf("IPC/W improvement: %.2fx\n", res.IPCPerW/base.IPCPerW)
//
// A Session is the single entry point: it validates the (config,
// architecture) pair once and carries the run-scoped options — progress
// observation (Observer), metric collection (Telemetry, exported through
// Metrics as JSON, CSV, or a Chrome trace), and context cancellation. The
// RunContext / RunWorkloadContext / RunSequenceContext free functions wrap
// a one-shot Session over the same path.
//
// Workload specs accept three forms everywhere a workload is named: a
// Table 2 builtin abbreviation ("BP"), a captured trace ("trace:<path>"),
// or a calibrated synthetic kernel ("gen:div=0.3,sfu=0.2,...").
//
// Custom kernels are written in .gasm assembly (see package documentation
// of internal/asm for the grammar) and run via Assemble / NewMemory /
// Session.Run.
package gscalar

import (
	"fmt"

	"gscalar/internal/core"
	"gscalar/internal/gpu"
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
	"gscalar/internal/power"
	"gscalar/internal/sm"
)

// Arch selects the simulated architecture.
type Arch int

// Architectures, in the order the paper's figures present them.
const (
	// Baseline is the unmodified GTX-480-like GPU.
	Baseline Arch = iota
	// ALUScalar is the prior scalar-register-file architecture (Gilani et
	// al. [3]): scalar execution of non-divergent arithmetic/logic
	// instructions only, with a single dedicated scalar bank.
	ALUScalar
	// WarpedCompression is BDI register compression (Lee et al. [4]),
	// Figure 12's "W-C" — no scalar execution.
	WarpedCompression
	// RVCOnly is the paper's byte-wise register value compression without
	// scalar execution (Figure 12's "ours").
	RVCOnly
	// GScalarNoDiv is G-Scalar without divergent/half-warp scalar
	// execution (Figure 11's "G-Scalar w/o divergent").
	GScalarNoDiv
	// GScalar is the full architecture: compression + scalar execution of
	// ALU, SFU and memory instructions, half-warp scalar, and divergent
	// scalar.
	GScalar
)

// archTable is the single registry tying each Arch to everything derived
// from it: its short name and its SM-level architecture overlay. Adding an
// architecture means adding exactly one entry here (plus the constant
// above), so the name, the model, AllArchs, and ArchByName can never
// desynchronize.
var archTable = [...]struct {
	name  string
	model func() sm.Arch
}{
	Baseline:          {"baseline", sm.Baseline},
	ALUScalar:         {"alu-scalar", sm.PriorScalarRF},
	WarpedCompression: {"warped-compression", sm.WarpedCompression},
	RVCOnly:           {"rvc-only", sm.RVCOnly},
	GScalarNoDiv:      {"gscalar-nodiv", sm.GScalarNoDiv},
	GScalar:           {"gscalar", sm.GScalar},
}

// String returns the architecture's short name.
func (a Arch) String() string {
	if a >= 0 && int(a) < len(archTable) {
		return archTable[a].name
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// AllArchs lists every architecture in presentation order.
func AllArchs() []Arch {
	out := make([]Arch, len(archTable))
	for i := range archTable {
		out[i] = Arch(i)
	}
	return out
}

// ArchByName resolves an architecture's short name (as produced by String),
// for CLI flags and config files.
func ArchByName(name string) (Arch, bool) {
	for i := range archTable {
		if archTable[i].name == name {
			return Arch(i), true
		}
	}
	return 0, false
}

// ArchNames lists the short names in presentation order.
func ArchNames() []string {
	out := make([]string, len(archTable))
	for i := range archTable {
		out[i] = archTable[i].name
	}
	return out
}

// model maps the public Arch to the SM-level architecture overlay.
func (a Arch) model() sm.Arch {
	if a >= 0 && int(a) < len(archTable) {
		return archTable[a].model()
	}
	return sm.Baseline()
}

// Config is the simulated chip configuration (Table 1 of the paper).
type Config struct {
	NumSMs          int     // streaming multiprocessors (Table 1: 15)
	CoreClockHz     float64 // SM clock (Table 1: 1.4 GHz)
	WarpSize        int     // threads per warp (Table 1: 32)
	SchedulersPerSM int     // warp schedulers (Table 1: 2)
	MaxWarpsPerSM   int     // resident warps (Table 1: 1536 threads / 32)
	MaxCTAsPerSM    int     // resident CTAs (Table 1: 8)
	RegFileKB       int     // register file per SM (Table 1: 128 KB)
	RegFileBanks    int     // register-file banks (Table 1: 16)
	CollectorsPerSM int     // operand collectors (Table 1: 16)
	SIMTWidth       int     // execution-pipeline width (Table 1: 16)
	L1Bytes         int     // L1 data cache per SM (Table 1: 16 KB)
	L2Bytes         int     // shared L2 (Table 1: 768 KB)
	MemChannels     int     // DRAM channels (Table 1: 6)
	MaxCycles       uint64  // abort bound; 0 = default
	// Workers selects the simulation loop. 0 (default) is the legacy
	// serial loop. Any other value runs the deterministic phased loop with
	// that many host compute workers (negative = one per host core); every
	// non-zero value produces bit-identical results, so Workers only trades
	// wall-clock time. See docs/architecture.md, "Parallel execution
	// model".
	Workers int
	// Relaxed selects the epoch-based relaxed-synchronization loop: workers
	// advance their SMs up to EpochCycles simulated cycles between
	// rendezvous over the shared L2/DRAM system instead of barriering every
	// cycle, which is what lets multi-worker simulation actually scale.
	// Unlike the phased loop its results are not bit-identical to the serial
	// oracle — they carry a small, measured timing delta (see
	// docs/architecture.md, "Relaxed epoch-parallel execution") — but a
	// fixed EpochCycles value is deterministic across repeated runs and
	// every worker count.
	Relaxed bool
	// EpochCycles is the relaxed loop's epoch length in simulated cycles.
	// 0 with Relaxed set takes DefaultEpochCycles; a positive value implies
	// Relaxed (Normalize canonicalizes the pair); 0 without Relaxed keeps
	// the per-cycle loops selected by Workers. Shorter epochs track the
	// serial oracle more closely, longer ones synchronize less often.
	EpochCycles int
	// DisableIdleSkip turns off event-driven idle-cycle skipping (on by
	// default). Skipping never changes simulated results — it fast-forwards
	// over cycles in which no SM could mutate any state — so the flag only
	// exists for benchmarking and validation. See docs/architecture.md,
	// "Performance".
	DisableIdleSkip bool
}

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		NumSMs:          15,
		CoreClockHz:     1.4e9,
		WarpSize:        32,
		SchedulersPerSM: 2,
		MaxWarpsPerSM:   48,
		MaxCTAsPerSM:    8,
		RegFileKB:       128,
		RegFileBanks:    16,
		CollectorsPerSM: 16,
		SIMTWidth:       16,
		L1Bytes:         16 << 10,
		L2Bytes:         768 << 10,
		MemChannels:     6,
	}
}

// toGPU lowers the public config to the internal chip config.
func (c Config) toGPU() gpu.Config {
	g := gpu.DefaultConfig()
	g.NumSMs = c.NumSMs
	g.CoreClockHz = c.CoreClockHz
	g.L2Bytes = c.L2Bytes
	g.MaxCycles = c.MaxCycles
	g.Workers = c.Workers
	if c.Relaxed {
		g.EpochCycles = c.EpochCycles
		if g.EpochCycles == 0 {
			g.EpochCycles = DefaultEpochCycles
		}
	}
	g.DisableIdleSkip = c.DisableIdleSkip
	g.MemTiming.NumChannels = c.MemChannels
	g.SM.WarpSize = c.WarpSize
	g.SM.Schedulers = c.SchedulersPerSM
	g.SM.MaxWarps = c.MaxWarpsPerSM
	g.SM.MaxCTAs = c.MaxCTAsPerSM
	g.SM.NumBanks = c.RegFileBanks
	g.SM.RegFileBytes = c.RegFileKB << 10
	g.SM.NumCollectors = c.CollectorsPerSM
	g.SM.ALUWidth = c.SIMTWidth
	g.SM.MemWidth = c.SIMTWidth
	g.SM.L1Bytes = c.L1Bytes
	return g
}

// Eligibility is the Figure 9 decomposition: fractions of committed
// instructions eligible for each kind of scalar execution.
type Eligibility struct {
	ALU       float64 `json:"alu"`       // non-divergent arithmetic/logic ("ALU scalar")
	SFU       float64 `json:"sfu"`       // special-function, atop ALU scalar
	Mem       float64 `json:"mem"`       // memory, atop ALU scalar
	Half      float64 `json:"half"`      // half-warp scalar (§4.3)
	Divergent float64 `json:"divergent"` // divergent scalar (§4.2)
}

// Total returns the overall scalar-eligible fraction.
func (e Eligibility) Total() float64 { return e.ALU + e.SFU + e.Mem + e.Half + e.Divergent }

// InstMix is the committed warp-instruction class mix: what fraction of
// instructions executed on each pipeline. Drives the SFU-share and
// memory-intensity calibration of generated workloads and the figure
// inputs that bucket instructions by class.
type InstMix struct {
	ALU  float64 `json:"alu"`
	SFU  float64 `json:"sfu"`
	Mem  float64 `json:"mem"`
	Ctrl float64 `json:"ctrl"`
}

// RFAccessDist is the Figure 8 register-file read-class distribution.
type RFAccessDist struct {
	Scalar    float64 `json:"scalar"`
	B3        float64 `json:"b3"`
	B2        float64 `json:"b2"`
	B1        float64 `json:"b1"`
	None      float64 `json:"none"`
	Divergent float64 `json:"divergent"`
}

// Result summarises one simulated launch. The JSON struct tags are a stable
// serialization contract shared by the telemetry exporters and the CLIs'
// machine-readable output; fields may be added, but existing tags do not
// change.
type Result struct {
	Cycles      uint64  `json:"cycles"`
	WarpInsts   uint64  `json:"warp_insts"`
	ThreadInsts uint64  `json:"thread_insts"`
	IPC         float64 `json:"ipc"` // warp instructions per cycle, chip-wide
	PowerW      float64 `json:"power_w"`
	IPCPerW     float64 `json:"ipc_per_w"` // the paper's power-efficiency metric
	EnergyJ     float64 `json:"energy_j"`

	ExecPowerShare float64 `json:"exec_power_share"` // execution-unit share of chip power
	RFPowerShare   float64 `json:"rf_power_share"`   // register-file aggregate share of chip power
	RFDynamicJ     float64 `json:"rf_dynamic_j"`     // RF dynamic energy (Figure 12's metric)

	FracDivergent       float64      `json:"frac_divergent"`        // Figure 1: divergent instructions / total
	FracDivergentScalar float64      `json:"frac_divergent_scalar"` // Figure 1: value-uniform divergent / total
	Eligibility         Eligibility  `json:"eligibility"`
	RFAccess            RFAccessDist `json:"rf_access"`
	InstMix             InstMix      `json:"inst_mix"`
	CompressionRatio    float64      `json:"compression_ratio"`
	MoveOverhead        float64      `json:"move_overhead"` // §3.3 injected decompress moves / total

	L1MissRate       float64 `json:"l1_miss_rate"`
	DRAMTransactions uint64  `json:"dram_transactions"`

	// PowerByComponent maps component names ("exec_alu", "rf_array",
	// "dram", "static", ...) to watts.
	PowerByComponent map[string]float64 `json:"power_by_component"`

	// ExecMode ("serial", "phased", or "relaxed") and ResolvedWorkers record
	// how the run actually executed — the chip loop and the compute-worker
	// count after the crossover heuristics — so benches and callers can
	// assert what ran rather than what was requested. They describe the
	// execution, not the simulated machine: serial, phased, and every phased
	// worker count produce bit-identical simulation outputs.
	ExecMode        string `json:"exec_mode,omitempty"`
	ResolvedWorkers int    `json:"resolved_workers,omitempty"`
}

// resultFrom converts an internal run result.
func resultFrom(r gpu.Result) Result {
	st := &r.Stats
	total := float64(st.WarpInsts)
	if total == 0 {
		total = 1
	}
	out := Result{
		Cycles:      r.Cycles,
		WarpInsts:   st.WarpInsts,
		ThreadInsts: st.ThreadInsts,
		IPC:         r.IPC,
		PowerW:      r.Power.AvgPowerW,
		IPCPerW:     r.IPCPerW,
		EnergyJ:     r.EnergyJ,

		ExecPowerShare: r.Power.ExecShare(),
		RFPowerShare:   r.Power.RFShare(),
		RFDynamicJ: (r.Power.PerComp[power.CompRFArray] +
			r.Power.PerComp[power.CompRFCrossbar] +
			r.Power.PerComp[power.CompRFBVR] +
			r.Power.PerComp[power.CompRFScalarBank] +
			r.Power.PerComp[power.CompCodec]) * r.Power.Seconds,

		FracDivergent:       st.FracDivergent(),
		FracDivergentScalar: st.FracDivergentScalar(),
		Eligibility: Eligibility{
			ALU:       float64(st.EligFullALU) / total,
			SFU:       float64(st.EligFullSFU) / total,
			Mem:       float64(st.EligFullMem) / total,
			Half:      float64(st.EligHalf) / total,
			Divergent: float64(st.EligDiv) / total,
		},
		RFAccess: RFAccessDist{
			Scalar:    st.RFReadFrac(core.AccessScalar),
			B3:        st.RFReadFrac(core.Access3Byte),
			B2:        st.RFReadFrac(core.Access2Byte),
			B1:        st.RFReadFrac(core.Access1Byte),
			None:      st.RFReadFrac(core.AccessNone),
			Divergent: st.RFReadFrac(core.AccessDivergent),
		},
		InstMix: InstMix{
			ALU:  float64(st.ByClass[isa.ClassALU]) / total,
			SFU:  float64(st.ByClass[isa.ClassSFU]) / total,
			Mem:  float64(st.ByClass[isa.ClassMem]) / total,
			Ctrl: float64(st.ByClass[isa.ClassCtrl]) / total,
		},
		CompressionRatio: st.CompressionRatio(),
		MoveOverhead:     st.MoveOverhead(),
		DRAMTransactions: st.DRAMTransactions,
		ExecMode:         r.ExecMode,
		ResolvedWorkers:  r.Workers,
	}
	if st.L1Accesses > 0 {
		out.L1MissRate = float64(st.L1Misses) / float64(st.L1Accesses)
	}
	out.PowerByComponent = make(map[string]float64, power.NumComponents)
	for c := power.Component(0); c < power.NumComponents; c++ {
		out.PowerByComponent[c.String()] = r.Power.PerComp[c]
	}
	return out
}

// kernelLaunch adapts Launch to the internal type.
func (l Launch) toKernel() (*kernel.LaunchConfig, error) {
	if l.GridY == 0 {
		l.GridY = 1
	}
	if l.BlockY == 0 {
		l.BlockY = 1
	}
	lc := &kernel.LaunchConfig{
		Grid:        kernel.Dim{X: l.GridX, Y: l.GridY},
		Block:       kernel.Dim{X: l.BlockX, Y: l.BlockY},
		SharedBytes: l.SharedBytes,
	}
	if len(l.Params) > len(lc.Params) {
		return nil, fmt.Errorf("gscalar: %d params exceeds limit %d", len(l.Params), len(lc.Params))
	}
	copy(lc.Params[:], l.Params)
	return lc, nil
}
