package gscalar_test

import (
	"testing"

	"gscalar"
)

// runSkip simulates one (arch, workload) point with the given worker count
// and idle-skip setting.
func runSkip(t *testing.T, arch gscalar.Arch, abbr string, workers int, disableSkip bool) gscalar.Result {
	t.Helper()
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	cfg.DisableIdleSkip = disableSkip
	res, err := runWorkloadVia(t, cfg, arch, abbr, 1)
	if err != nil {
		t.Fatalf("%s on %s (workers=%d, noskip=%v): %v", abbr, arch, workers, disableSkip, err)
	}
	return res
}

// TestIdleSkipDeterminism is the acceptance bar for event-driven idle
// skipping: with skipping enabled (the default) every workload must produce
// a Result bit-identical — cycles, every statistic, and exact floating-
// point energy/power — to a skip-disabled run, in both the legacy serial
// loop (Workers=0) and the phased loop (Workers=8). Skipped cycles mutate
// no state, so even transient-internal-state-derived numbers must agree.
// In short mode a 3-workload subset runs; the full 17-workload registry
// runs without -short (the skip-disabled serial runs are the slow part —
// they are the very cycles skipping eliminates).
func TestIdleSkipDeterminism(t *testing.T) {
	workloadSet := gscalar.Workloads()
	archSet := []gscalar.Arch{gscalar.Baseline, gscalar.GScalar}
	if testing.Short() {
		workloadSet = []string{"HS", "MQ", "SAD"}
	}
	for _, arch := range archSet {
		for _, abbr := range workloadSet {
			for _, workers := range []int{0, 8} {
				skip := runSkip(t, arch, abbr, workers, false)
				noskip := runSkip(t, arch, abbr, workers, true)
				assertIdentical(t, abbr, arch, skip, noskip)
			}
		}
	}
}
