package gscalar_test

import (
	"context"
	"testing"
	"time"

	"gscalar"
)

// hsCeiling is the perf-smoke wall-clock budget for one HS run on the
// serial loop. HS simulates in well under 0.2 s on a modest single core;
// the ceiling is deliberately generous (slow CI hosts, race detector) so
// only a pathological simulator-performance regression — a hot path turned
// quadratic, allocation storms, re-coalescing per stall cycle — trips it.
const hsCeiling = 3 * time.Second * raceMultiplier

// TestPerfSmokeHS is the `make check` simulator-performance guard: it fails
// when the HS workload exceeds a generous wall-clock ceiling. It runs in
// short mode on purpose — the point is to catch order-of-magnitude
// regressions on every checkin, not to benchmark (BENCH_core.json rows are
// the measurements).
func TestPerfSmokeHS(t *testing.T) {
	cfg := gscalar.DefaultConfig()
	t0 := time.Now()
	if _, err := gscalar.RunWorkloadContext(context.Background(), cfg, gscalar.GScalar, "HS", 1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > hsCeiling {
		t.Fatalf("HS took %v, ceiling %v — simulator performance regression", el, hsCeiling)
	}
}
