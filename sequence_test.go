package gscalar

import (
	"context"
	"testing"
)

// newSessionT builds a Session or fails the test.
func newSessionT(t *testing.T, cfg Config, arch Arch) *Session {
	t.Helper()
	s, err := NewSession(cfg, arch)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunSequence runs a producer kernel followed by a dependent consumer
// kernel over shared memory — the shape of real multi-kernel applications
// (e.g. srad's two passes).
func TestRunSequence(t *testing.T) {
	producer, err := Assemble(`
.kernel producer
	mov  r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	imul r3, r2, 3
	shl  r4, r2, 2
	iadd r5, $0, r4
	stg  [r5], r3
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := Assemble(`
.kernel consumer
	mov  r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl  r3, r2, 2
	iadd r4, $0, r3
	ldg  r5, [r4]
	iadd r5, r5, 100
	iadd r6, $1, r3
	stg  [r6], r5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}

	const n = 1024
	mem := NewMemory()
	mid := mem.Alloc(n * 4)
	out := mem.Alloc(n * 4)
	seq := []KernelLaunch{
		{producer, Launch{GridX: n / 128, BlockX: 128, Params: []uint32{mid}}},
		{consumer, Launch{GridX: n / 128, BlockX: 128, Params: []uint32{mid, out}}},
	}
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	res, err := newSessionT(t, cfg, GScalar).RunSequence(context.Background(), mem, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range mem.ReadU32(out, n) {
		if v != uint32(i*3+100) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3+100)
		}
	}

	// The sequence totals must exceed either launch alone.
	soloMem := NewMemory()
	soloMid := soloMem.Alloc(n * 4)
	solo, err := newSessionT(t, cfg, GScalar).Run(context.Background(), producer,
		Launch{GridX: n / 128, BlockX: 128, Params: []uint32{soloMid}}, soloMem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= solo.Cycles {
		t.Errorf("sequence cycles %d not greater than solo %d", res.Cycles, solo.Cycles)
	}
	if res.WarpInsts != uint64((n/32)*(7+9)) { // producer 7 + consumer 9 instructions per warp
		t.Errorf("sequence warp insts = %d, want %d", res.WarpInsts, (n/32)*(7+9))
	}
	if res.EnergyJ <= solo.EnergyJ {
		t.Errorf("sequence energy %v not greater than solo %v", res.EnergyJ, solo.EnergyJ)
	}
}

func TestRunSequenceEmpty(t *testing.T) {
	s := newSessionT(t, DefaultConfig(), Baseline)
	if _, err := s.RunSequence(context.Background(), NewMemory(), nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
}
