package gscalar

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

// TestValidateInvalid exercises the Table 1 structural invariants with one
// violation per case and checks the offending field is named.
func TestValidateInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }, "NumSMs"},
		{"negative clock", func(c *Config) { c.CoreClockHz = -1 }, "CoreClockHz"},
		{"zero warp size", func(c *Config) { c.WarpSize = 0 }, "WarpSize"},
		{"warp size over 64", func(c *Config) { c.WarpSize = 128 }, "WarpSize"},
		{"zero schedulers", func(c *Config) { c.SchedulersPerSM = 0 }, "SchedulersPerSM"},
		{"zero warps", func(c *Config) { c.MaxWarpsPerSM = 0 }, "MaxWarpsPerSM"},
		{"zero CTAs", func(c *Config) { c.MaxCTAsPerSM = 0 }, "MaxCTAsPerSM"},
		{"zero banks", func(c *Config) { c.RegFileBanks = 0 }, "RegFileBanks"},
		{"zero collectors", func(c *Config) { c.CollectorsPerSM = 0 }, "CollectorsPerSM"},
		{"banks below collectors", func(c *Config) { c.RegFileBanks = 8; c.CollectorsPerSM = 16 }, "RegFileBanks"},
		{"width over warp size", func(c *Config) { c.SIMTWidth = 64 }, "SIMTWidth"},
		{"register file too small for warps", func(c *Config) { c.RegFileKB = 1 }, "RegFileKB"},
		{"zero L1", func(c *Config) { c.L1Bytes = -1 }, "L1Bytes"},
		{"zero L2", func(c *Config) { c.L2Bytes = -1 }, "L2Bytes"},
		{"zero channels", func(c *Config) { c.MemChannels = -1 }, "MemChannels"},
		{"negative epoch", func(c *Config) { c.EpochCycles = -64 }, "EpochCycles"},
		{"relaxed without epoch", func(c *Config) { c.Relaxed = true }, "EpochCycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("blamed field %q, want %q (%v)", ce.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("message %q does not name the field", err)
			}
		})
	}
}

// TestValidateAcceptsSweepConfigs pins that the configurations the existing
// sweeps construct — warp size 64 with halved resident warps (Fig 10) and
// non-divisor SIMT widths (the §5.3 width sweep) — stay valid.
func TestValidateAcceptsSweepConfigs(t *testing.T) {
	ws64 := DefaultConfig()
	ws64.WarpSize = 64
	ws64.MaxWarpsPerSM = 24
	if err := ws64.Validate(); err != nil {
		t.Errorf("warp-size-64 sweep config rejected: %v", err)
	}
	for _, w := range []int{8, 16, 24, 32} {
		cfg := DefaultConfig()
		cfg.SIMTWidth = w
		if err := cfg.Validate(); err != nil {
			t.Errorf("SIMTWidth=%d rejected: %v", w, err)
		}
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	var c Config
	c.NumSMs = 7
	c.Normalize()
	want := DefaultConfig()
	want.NumSMs = 7
	if c != want {
		t.Errorf("Normalize() = %+v, want %+v", c, want)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("normalized sparse config invalid: %v", err)
	}

	// Zero stays meaningful for the non-structural fields.
	if c.MaxCycles != 0 || c.Workers != 0 || c.DisableIdleSkip {
		t.Error("Normalize touched MaxCycles/Workers/DisableIdleSkip")
	}

	full := DefaultConfig()
	full.Normalize()
	if full != DefaultConfig() {
		t.Error("Normalize changed an already-complete config")
	}
}

// TestNormalizeEpochCycles pins the canonicalization of the relaxed-mode
// pair: a positive EpochCycles implies Relaxed, Relaxed without an epoch
// length takes DefaultEpochCycles, and the two spellings of the same mode
// hash identically after Normalize. EpochCycles=0 without Relaxed must stay
// zero (phased/serial selection is untouched).
func TestNormalizeEpochCycles(t *testing.T) {
	c := DefaultConfig()
	c.EpochCycles = 128
	c.Normalize()
	if !c.Relaxed {
		t.Error("positive EpochCycles did not imply Relaxed")
	}

	c = DefaultConfig()
	c.Relaxed = true
	c.Normalize()
	if c.EpochCycles != DefaultEpochCycles {
		t.Errorf("Relaxed without epoch normalized to EpochCycles=%d, want %d",
			c.EpochCycles, DefaultEpochCycles)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("normalized relaxed config invalid: %v", err)
	}

	c = DefaultConfig()
	c.Normalize()
	if c.Relaxed || c.EpochCycles != 0 {
		t.Error("Normalize turned on relaxed mode for a default config")
	}

	implicit := DefaultConfig()
	implicit.EpochCycles = 128
	implicit.Normalize()
	explicit := DefaultConfig()
	explicit.EpochCycles = 128
	explicit.Relaxed = true
	explicit.Normalize()
	if implicit.Hash() != explicit.Hash() {
		t.Error("the two spellings of relaxed epoch=128 hash differently after Normalize")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.Workers = 3
	cfg.DisableIdleSkip = true
	cfg.Relaxed = true
	cfg.EpochCycles = 256
	blob, err := cfg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ConfigFromJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip: got %+v, want %+v", got, cfg)
	}
}

func TestConfigFromJSONSparse(t *testing.T) {
	got, err := ConfigFromJSON([]byte(`{"NumSMs": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	want.NumSMs = 3
	if got != want {
		t.Errorf("sparse decode = %+v, want Table 1 defaults with NumSMs=3", got)
	}
}

func TestConfigFromJSONRejects(t *testing.T) {
	if _, err := ConfigFromJSON([]byte(`{"NumSM": 3}`)); err == nil {
		t.Error("unknown field (typo) accepted")
	}
	if _, err := ConfigFromJSON([]byte(`{"WarpSize": 128}`)); err == nil {
		t.Error("invalid config accepted")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("invalid JSON config error %T is not a *ConfigError", err)
		}
	}
	if _, err := ConfigFromJSON([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// defaultConfigHash is the canonical content hash of the Table 1
// configuration. It is a compatibility contract: the experiment cache and
// the BENCH snapshot files key on it, so it must change only when a Table 1
// value (or the canonicalisation scheme itself) changes — never when Config
// gains a new field whose zero value this config keeps.
const defaultConfigHash = "95581456d13790536ceade439ff5847cc92ce9938a169f7753de36b71a204696"

func TestConfigHashGolden(t *testing.T) {
	if h := DefaultConfig().Hash(); h != defaultConfigHash {
		t.Errorf("DefaultConfig().Hash() = %s, want %s\n(if a Table 1 value deliberately changed, update the golden constant and regenerate the BENCH snapshots)", h, defaultConfigHash)
	}
}

func TestConfigHashProperties(t *testing.T) {
	base := DefaultConfig()
	if base.Hash() != base.Hash() {
		t.Fatal("hash is not deterministic")
	}

	// Every meaningful mutation moves the hash.
	mut := base
	mut.NumSMs = 14
	if mut.Hash() == base.Hash() {
		t.Error("NumSMs change kept the hash")
	}
	mut = base
	mut.DisableIdleSkip = true
	if mut.Hash() == base.Hash() {
		t.Error("DisableIdleSkip change kept the hash")
	}
	mut = base
	mut.MaxCycles = 100
	if mut.Hash() == base.Hash() {
		t.Error("MaxCycles change kept the hash")
	}
	mut = base
	mut.EpochCycles = 128
	if mut.Hash() == base.Hash() {
		t.Error("EpochCycles change kept the hash")
	}

	// Zero-valued fields are omitted from the canonical form, so a config
	// hashes the same whether a zero field is "absent" or explicitly zero —
	// the stability-under-field-addition guarantee.
	sparse := Config{NumSMs: 5}
	explicitZero := Config{NumSMs: 5, Workers: 0, MaxCycles: 0}
	if sparse.Hash() != explicitZero.Hash() {
		t.Error("explicit zero fields changed the hash")
	}
}

func TestNewSessionValidates(t *testing.T) {
	bad := DefaultConfig()
	// A zero field would be repaired by Normalize; a bad non-zero value must
	// be rejected.
	bad.WarpSize = 77
	if _, err := NewSession(bad, GScalar); err == nil {
		t.Fatal("NewSession accepted an invalid config")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("NewSession error %T is not a *ConfigError", err)
		}
	}

	s, err := NewSession(Config{}, GScalar)
	if err != nil {
		t.Fatalf("NewSession rejected the zero config: %v", err)
	}
	if s.Config() != DefaultConfig() {
		t.Errorf("session config = %+v, want normalized Table 1 defaults", s.Config())
	}
	if s.Arch() != GScalar {
		t.Errorf("session arch = %v", s.Arch())
	}
}
