package gscalar

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file makes Config the single validated source of truth for a run:
// Normalize fills Table 1 defaults into unset fields, Validate enforces the
// structural invariants every layer below assumes, JSON round-tripping backs
// the CLIs' -config/-dump-config flags, and Hash provides the canonical
// content identity the experiment cache and benchmark snapshots key on.

// DefaultEpochCycles is the relaxed loop's epoch length when Relaxed is set
// without an explicit EpochCycles.
const DefaultEpochCycles = 64

// Normalize fills zero-valued structural fields with their Table 1 defaults
// (DefaultConfig values), so a sparse configuration — e.g. a JSON file that
// only overrides NumSMs — denotes "Table 1 with these changes". MaxCycles,
// Workers, and DisableIdleSkip keep their zero values: zero is meaningful
// for all three (default bound, legacy serial loop, skipping enabled). The
// relaxed-mode pair is canonicalized: a positive EpochCycles implies
// Relaxed, and Relaxed without an epoch length takes DefaultEpochCycles, so
// the two spellings of the same simulation hash identically.
func (c *Config) Normalize() {
	d := DefaultConfig()
	if c.EpochCycles > 0 {
		c.Relaxed = true
	}
	if c.Relaxed && c.EpochCycles == 0 {
		c.EpochCycles = DefaultEpochCycles
	}
	if c.NumSMs == 0 {
		c.NumSMs = d.NumSMs
	}
	if c.CoreClockHz == 0 {
		c.CoreClockHz = d.CoreClockHz
	}
	if c.WarpSize == 0 {
		c.WarpSize = d.WarpSize
	}
	if c.SchedulersPerSM == 0 {
		c.SchedulersPerSM = d.SchedulersPerSM
	}
	if c.MaxWarpsPerSM == 0 {
		c.MaxWarpsPerSM = d.MaxWarpsPerSM
	}
	if c.MaxCTAsPerSM == 0 {
		c.MaxCTAsPerSM = d.MaxCTAsPerSM
	}
	if c.RegFileKB == 0 {
		c.RegFileKB = d.RegFileKB
	}
	if c.RegFileBanks == 0 {
		c.RegFileBanks = d.RegFileBanks
	}
	if c.CollectorsPerSM == 0 {
		c.CollectorsPerSM = d.CollectorsPerSM
	}
	if c.SIMTWidth == 0 {
		c.SIMTWidth = d.SIMTWidth
	}
	if c.L1Bytes == 0 {
		c.L1Bytes = d.L1Bytes
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = d.L2Bytes
	}
	if c.MemChannels == 0 {
		c.MemChannels = d.MemChannels
	}
}

// ConfigError reports one violated configuration invariant.
type ConfigError struct {
	Field  string // the offending Config field
	Reason string
}

func (e *ConfigError) Error() string {
	return "gscalar: invalid config: " + e.Field + ": " + e.Reason
}

// Validate checks the structural invariants of the Table 1 configuration
// space that the simulator layers below assume. It validates the config as
// given — call Normalize first to fill defaults into a sparse config.
func (c Config) Validate() error {
	bad := func(field, format string, args ...any) error {
		return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
	}
	if c.NumSMs < 1 {
		return bad("NumSMs", "need at least 1 SM, got %d", c.NumSMs)
	}
	if c.CoreClockHz <= 0 {
		return bad("CoreClockHz", "clock must be positive, got %g", c.CoreClockHz)
	}
	if c.WarpSize < 1 || c.WarpSize > 64 {
		return bad("WarpSize", "warp size must be in [1, 64] (active masks are 64-bit), got %d", c.WarpSize)
	}
	if c.SchedulersPerSM < 1 {
		return bad("SchedulersPerSM", "need at least 1 warp scheduler, got %d", c.SchedulersPerSM)
	}
	if c.MaxWarpsPerSM < 1 {
		return bad("MaxWarpsPerSM", "need at least 1 resident warp, got %d", c.MaxWarpsPerSM)
	}
	if c.MaxCTAsPerSM < 1 {
		return bad("MaxCTAsPerSM", "need at least 1 resident CTA, got %d", c.MaxCTAsPerSM)
	}
	if c.RegFileBanks < 1 {
		return bad("RegFileBanks", "need at least 1 register-file bank, got %d", c.RegFileBanks)
	}
	if c.CollectorsPerSM < 1 {
		return bad("CollectorsPerSM", "need at least 1 operand collector, got %d", c.CollectorsPerSM)
	}
	if c.RegFileBanks < c.CollectorsPerSM {
		return bad("RegFileBanks", "%d banks cannot feed %d operand collectors (Table 1 pairs them 1:1; banks must be >= collectors)",
			c.RegFileBanks, c.CollectorsPerSM)
	}
	if c.SIMTWidth < 1 || c.SIMTWidth > c.WarpSize {
		return bad("SIMTWidth", "pipeline width must be in [1, WarpSize=%d], got %d", c.WarpSize, c.SIMTWidth)
	}
	if c.RegFileKB < 1 {
		return bad("RegFileKB", "need a non-empty register file, got %d KB", c.RegFileKB)
	}
	if minBytes := c.MaxWarpsPerSM * c.WarpSize * 4; c.RegFileKB<<10 < minBytes {
		return bad("RegFileKB", "%d KB cannot hold one 32-bit register for each of %d warps x %d lanes (need >= %d bytes)",
			c.RegFileKB, c.MaxWarpsPerSM, c.WarpSize, minBytes)
	}
	if c.L1Bytes < 1 {
		return bad("L1Bytes", "need a non-empty L1, got %d", c.L1Bytes)
	}
	if c.L2Bytes < 1 {
		return bad("L2Bytes", "need a non-empty L2, got %d", c.L2Bytes)
	}
	if c.MemChannels < 1 {
		return bad("MemChannels", "need at least 1 DRAM channel, got %d", c.MemChannels)
	}
	if c.EpochCycles < 0 {
		return bad("EpochCycles", "epoch length cannot be negative, got %d", c.EpochCycles)
	}
	if c.Relaxed && c.EpochCycles < 1 {
		return bad("EpochCycles", "relaxed mode needs a positive epoch length (Normalize fills the default), got %d", c.EpochCycles)
	}
	return nil
}

// JSON renders the config as indented JSON, the format ConfigFromJSON
// accepts and the CLIs' -dump-config prints.
func (c Config) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// ConfigFromJSON parses, normalizes, and validates a JSON configuration.
// Unknown fields are rejected (they are almost always typos that would
// otherwise silently fall back to defaults); absent fields take their
// Table 1 defaults via Normalize.
func ConfigFromJSON(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("gscalar: parsing config JSON: %w", err)
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Hash returns the canonical content hash of the configuration: the
// hex-encoded SHA-256 of its canonical form. The canonical form is the
// JSON object with keys sorted and zero-valued fields omitted, so the hash
// is independent of Go field declaration order and stable when new Config
// fields are added later (a config that does not use a new field keeps its
// identity). Two configs hash equal iff they denote the same simulation
// input, which is what the experiment cache and the BENCH snapshots key on.
func (c Config) Hash() string {
	blob, err := json.Marshal(c)
	if err != nil {
		// Config is a struct of scalars; Marshal cannot fail.
		panic("gscalar: config hash: " + err.Error())
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		panic("gscalar: config hash: " + err.Error())
	}
	for k, v := range m {
		switch x := v.(type) {
		case float64:
			if x == 0 {
				delete(m, k)
			}
		case bool:
			if !x {
				delete(m, k)
			}
		case nil:
			delete(m, k)
		}
	}
	canon, err := json.Marshal(m) // map keys marshal sorted
	if err != nil {
		panic("gscalar: config hash: " + err.Error())
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}
