package gscalar

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func errorsAs(err error, target any) bool { return errors.As(err, target) }

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"NumSMs", c.NumSMs, 15},
		{"CoreClockHz", c.CoreClockHz, 1.4e9},
		{"WarpSize", c.WarpSize, 32},
		{"SchedulersPerSM", c.SchedulersPerSM, 2},
		{"threads per SM", c.MaxWarpsPerSM * c.WarpSize, 1536},
		{"MaxCTAsPerSM", c.MaxCTAsPerSM, 8},
		{"RegFileBanks", c.RegFileBanks, 16},
		{"CollectorsPerSM", c.CollectorsPerSM, 16},
		{"SIMTWidth", c.SIMTWidth, 16},
		{"L1Bytes", c.L1Bytes, 16 << 10},
		{"L2Bytes", c.L2Bytes, 768 << 10},
		{"MemChannels", c.MemChannels, 6},
		// 128 KB of registers per SM: 1024 vector registers × 128 B.
		{"registers per SM (KB)", c.RegFileKB, 128},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v (Table 1)", ck.name, ck.got, ck.want)
		}
	}
}

func TestArchNames(t *testing.T) {
	want := map[Arch]string{
		Baseline: "baseline", ALUScalar: "alu-scalar",
		WarpedCompression: "warped-compression", RVCOnly: "rvc-only",
		GScalarNoDiv: "gscalar-nodiv", GScalar: "gscalar",
	}
	for a, n := range want {
		if a.String() != n {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), n)
		}
	}
	if len(AllArchs()) != 6 {
		t.Errorf("AllArchs() = %v", AllArchs())
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	_, err := RunWorkloadContext(context.Background(), DefaultConfig(), GScalar, "NOPE", 1)
	if err == nil {
		t.Fatal("expected error")
	}
	var uw *UnknownWorkloadError
	if !errorsAs(err, &uw) {
		t.Errorf("error %T is not UnknownWorkloadError", err)
	}
	if !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error %q does not name the workload", err)
	}
}

func TestWorkloadsTable2(t *testing.T) {
	ws := Workloads()
	if len(ws) != 17 {
		t.Fatalf("workloads = %d, want 17 (Table 2)", len(ws))
	}
	rodinia, parboil := 0, 0
	for _, abbr := range ws {
		info, ok := WorkloadByAbbr(abbr)
		if !ok {
			t.Fatalf("ByAbbr(%q) failed", abbr)
		}
		switch info.Suite {
		case "Rodinia":
			rodinia++
		case "Parboil":
			parboil++
		default:
			t.Errorf("%s: unknown suite %q", abbr, info.Suite)
		}
	}
	if rodinia != 8 || parboil != 9 {
		t.Errorf("suite split = %d/%d, want 8/9", rodinia, parboil)
	}
}

func TestAssembleAndRunCustomKernel(t *testing.T) {
	prog, err := Assemble(`
.kernel double
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	ldg r5, [r4]
	imul r5, r5, 2
	stg [r4], r5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "double" || prog.Len() != 8 {
		t.Fatalf("prog = %s/%d", prog.Name(), prog.Len())
	}
	if !strings.Contains(prog.Disassemble(), "imul") {
		t.Error("disassembly missing instruction")
	}

	const n = 512
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	mem := NewMemory()
	base := mem.AllocU32(vals)
	launch := Launch{GridX: n / 128, BlockX: 128, Params: []uint32{base}}

	cfg := DefaultConfig()
	cfg.NumSMs = 2
	res, err := RunContext(context.Background(), cfg, GScalar, prog, launch, mem)
	if err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(base, n)
	for i, v := range got {
		if v != uint32(2*i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if res.IPC <= 0 || res.PowerW <= 0 || res.IPCPerW <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunFunctionalMatchesTimed(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	and r3, r2, 7
	imul r4, r3, r3
	shl r5, r2, 2
	iadd r6, $0, r5
	stg [r6], r4
	exit
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	launchFor := func(m *Memory) Launch {
		return Launch{GridX: 2, BlockX: 128, Params: []uint32{m.Alloc(n * 4)}}
	}
	m1 := NewMemory()
	l1 := launchFor(m1)
	if err := RunFunctional(prog, l1, m1); err != nil {
		t.Fatal(err)
	}
	m2 := NewMemory()
	l2 := launchFor(m2)
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	if _, err := RunContext(context.Background(), cfg, Baseline, prog, l2, m2); err != nil {
		t.Fatal(err)
	}
	a := m1.ReadU32(l1.Params[0], n)
	b := m2.ReadU32(l2.Params[0], n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("functional/timed mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTooManyParams(t *testing.T) {
	prog, err := Assemble("exit")
	if err != nil {
		t.Fatal(err)
	}
	launch := Launch{GridX: 1, BlockX: 32, Params: make([]uint32, 17)}
	if _, err := RunContext(context.Background(), DefaultConfig(), Baseline, prog, launch, NewMemory()); err == nil {
		t.Fatal("expected params-limit error")
	}
}

// TestPowerCalibration pins the component shares the relative results are
// anchored on: on a compute-intensive benchmark, execution units and the
// register file must be the two dominant dynamic consumers with shares in
// the ranges the paper quotes (exec ≈24 %, RF ≈16 % on average; higher for
// compute-intensive codes), and static power must not dominate.
func TestPowerCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	cfg := DefaultConfig()
	res, err := RunWorkloadContext(context.Background(), cfg, Baseline, "MM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecPowerShare < 0.10 || res.ExecPowerShare > 0.50 {
		t.Errorf("MM exec share = %.2f, want 0.10..0.50", res.ExecPowerShare)
	}
	if res.RFPowerShare < 0.08 || res.RFPowerShare > 0.35 {
		t.Errorf("MM RF share = %.2f, want 0.08..0.35", res.RFPowerShare)
	}
	// BP: the paper reports >100 W total and SFU-dominated execution.
	bp, err := RunWorkloadContext(context.Background(), cfg, Baseline, "BP", 1)
	if err != nil {
		t.Fatal(err)
	}
	if bp.PowerW < 100 {
		t.Errorf("BP baseline power = %.1f W, paper reports >100 W", bp.PowerW)
	}
	if bp.ExecPowerShare < 0.30 {
		t.Errorf("BP exec share = %.2f, want SFU-dominated (>0.30)", bp.ExecPowerShare)
	}
}

// TestHeadlineResults asserts the paper's headline claims hold in shape:
// G-Scalar beats both the baseline and the prior scalar architecture on
// power efficiency, roughly doubles scalar-eligible instructions, and pays
// only a small IPC penalty.
func TestHeadlineResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	cfg := DefaultConfig()
	// A representative subset to keep runtime in check.
	benches := []string{"BP", "HS", "LBM", "MQ", "SAD"}
	var base, alu, full, ipcBase, ipcFull float64
	var aluElig, fullElig float64
	for _, b := range benches {
		rb, err := RunWorkloadContext(context.Background(), cfg, Baseline, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunWorkloadContext(context.Background(), cfg, ALUScalar, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := RunWorkloadContext(context.Background(), cfg, GScalar, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		base += rb.IPCPerW
		alu += ra.IPCPerW / rb.IPCPerW
		full += rg.IPCPerW / rb.IPCPerW
		ipcBase += rb.IPC
		ipcFull += rg.IPC / rb.IPC
		aluElig += ra.Eligibility.Total()
		fullElig += rg.Eligibility.Total()
	}
	n := float64(len(benches))
	alu, full, ipcFull = alu/n, full/n, ipcFull/n
	aluElig, fullElig = aluElig/n, fullElig/n

	if full <= 1.0 {
		t.Errorf("G-Scalar IPC/W vs baseline = %.3f, want > 1", full)
	}
	if full <= alu {
		t.Errorf("G-Scalar (%.3f) must beat ALU-scalar (%.3f)", full, alu)
	}
	if fullElig < 1.5*aluElig {
		t.Errorf("eligibility %.1f%% vs ALU-only %.1f%%: paper says G-Scalar ~doubles it",
			100*fullElig, 100*aluElig)
	}
	if ipcFull < 0.90 || ipcFull > 1.02 {
		t.Errorf("G-Scalar IPC ratio = %.3f, want small degradation (paper: -1.7%%)", ipcFull)
	}
}

func TestResultDerivedFields(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	res, err := RunWorkloadContext(context.Background(), DefaultConfig(), GScalar, "ST", 1)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Eligibility
	sum := e.ALU + e.SFU + e.Mem + e.Half + e.Divergent
	if math.Abs(sum-e.Total()) > 1e-12 {
		t.Errorf("eligibility total mismatch")
	}
	d := res.RFAccess
	total := d.Scalar + d.B3 + d.B2 + d.B1 + d.None + d.Divergent
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("RF access classes sum to %v, want 1", total)
	}
	if res.CompressionRatio <= 1 {
		t.Errorf("compression ratio = %v", res.CompressionRatio)
	}
}
