package workloads

import (
	"math"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// ---------------------------------------------------------------------------
// CC — cutcp (Parboil). Cutoff Coulomb potential: atom data streams in
// through warp-uniform addresses (scalar loads); the cutoff test splits the
// warp and the in-range path runs vector rsqrt.
// ---------------------------------------------------------------------------

const ccSrc = `
.kernel cutcp
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // grid point
	and   r3, r2, 63                  // px
	shr   r4, r2, 6                   // py
	i2f   r5, r3                      // x (per thread)
	i2f   r6, r4                      // y (per thread)
	mov   r7, 0                       // atom index
	mov   r8, $1                      // atoms (uniform)
	mov   r9, $0                      // atom array base (uniform)
	mov   r10, 0                      // potential acc
	mov   r11, $2                     // cutoff^2 (uniform)
ATOM:
	shl   r12, r7, 4                  // atom*16               .. scalar
	iadd  r13, r9, r12                //                       .. scalar
	ldg   r14, [r13]                  // ax  (scalar load)
	ldg   r15, [r13+4]                // ay  (scalar load)
	ldg   r16, [r13+8]                // charge (scalar load)
	fmul  r24, r16, r16               // dielectric screen     .. scalar
	fadd  r24, r24, 1.0               //                       .. scalar
	rcp   r25, r24                    // scalar SFU
	fmul  r26, r16, r25               // effective charge      .. scalar
	fsub  r17, r5, r14                // dx                    .. vector
	fsub  r18, r6, r15                // dy
	fmul  r19, r17, r17
	ffma  r19, r18, r18, r19          // r2
	fsetp.gt p0, r19, r11             // outside cutoff?
	@p0 bra SKIP
	fadd  r20, r19, 0.01              //                       .. divergent vector
	rsqrt r21, r20                    // 1/r   vector SFU (divergent)
	fmul  r27, r26, 1.5               // in-range boost        .. divergent scalar
	fadd  r27, r27, r26               //                       .. divergent scalar
	ffma  r10, r27, r21, r10          // acc += q_boost/r
SKIP:
	iadd  r7, r7, 1                   //                       .. scalar
	isetp.lt p0, r7, r8               //                       .. scalar
	@p0 bra ATOM
	shl   r22, r2, 2
	iadd  r23, $3, r22
	stg   [r23], r10
	exit
`

func init() {
	register(Workload{
		Abbr: "CC", Name: "cutcup", Suite: "Parboil",
		Desc:  "cutoff Coulomb potential; scalar atom loads, divergent rsqrt",
		Build: buildCC,
	})
}

func buildCC(scale int) (*Instance, error) {
	prog, err := asm.Assemble(ccSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const atoms = 20
	ctas := 50 * scale
	n := ctas * threadsPerCTA

	r := newRNG(31)
	atomData := make([]float32, atoms*4) // ax, ay, q, pad
	for a := 0; a < atoms; a++ {
		atomData[a*4+0] = r.floatRange(0, 64)
		atomData[a*4+1] = r.floatRange(0, float32(n/64))
		atomData[a*4+2] = r.floatRange(-1, 1)
	}
	mem := kernel.NewMemory()
	aB := mem.AllocF32(atomData)
	oB := mem.Alloc(n * 4)

	const cutoff2 = float32(900)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = aB
	lc.Params[1] = atoms
	lc.Params[2] = math.Float32bits(cutoff2)
	lc.Params[3] = oB

	check := func() error {
		got := mem.ReadF32(oB, n)
		for i := 0; i < n; i++ {
			x := float32(i % 64)
			y := float32(i / 64)
			var acc float32
			for a := 0; a < atoms; a++ {
				q := atomData[a*4+2]
				qeff := q * rcpf(q*q+1)
				dx := x - atomData[a*4]
				dy := y - atomData[a*4+1]
				r2 := ffma(dy, dy, dx*dx)
				if r2 > cutoff2 {
					continue
				}
				rinv := float32(1 / math.Sqrt(float64(r2+0.01)))
				qboost := qeff*1.5 + qeff
				acc = ffma(qboost, rinv, acc)
			}
			if got[i] != acc {
				return errf("CC: out[%d] = %v, want %v", i, got[i], acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// LBM — lbm (Parboil). Lattice-Boltzmann collide/stream step: memory-
// intensive (five distribution loads and stores per cell, sized to overflow
// the L2) and heavily divergent — roughly half the executed instructions
// sit on one side of the obstacle test, and both sides carry uniform
// relaxation-constant chains, the paper's prime divergent-scalar case
// (≈30 % of LBM's instructions).
// ---------------------------------------------------------------------------

const lbmSrc = `
.kernel lbm
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // cell
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // obstacle flag
	mov   r6, $2                      // N*4 (plane stride, uniform)
	iadd  r7, $1, r3                  // &f0[cell]
	ldg   r8, [r7]                    // f0
	iadd  r9, r7, r6
	ldg   r10, [r9]                   // f1
	iadd  r11, r9, r6
	ldg   r12, [r11]                  // f2
	iadd  r13, r11, r6
	ldg   r14, [r13]                  // f3
	iadd  r15, r13, r6
	ldg   r16, [r15]                  // f4
	mov   r17, $3                     // omega (uniform)
	rsqrt r4, r17                     // viscosity correction  .. scalar SFU
	fmul  r4, r4, 0.05                //                       .. scalar
	fadd  r17, r17, r4                // effective omega       .. scalar
	isetp.eq p0, r5, 1
	@p0 bra OBSTACLE
	// fluid: BGK collision                              .. divergent mixed
	fadd  r18, r8, r10
	fadd  r19, r12, r14
	fadd  r18, r18, r19
	fadd  r18, r18, r16               // rho
	fmul  r20, r17, 0.2               // omega/5              .. divergent scalar
	fadd  r21, r20, 0.01              //                      .. divergent scalar
	fmul  r29, r20, r20               // relaxation schedule  .. divergent scalar
	ffma  r30, r29, 0.5, r21          //                      .. divergent scalar
	fadd  r31, r30, r20               //                      .. divergent scalar
	fmul  r21, r31, 0.9               //                      .. divergent scalar
	fadd  r29, r21, r20               //                      .. divergent scalar
	fmul  r21, r29, 0.8               //                      .. divergent scalar
	fmul  r22, r18, r21               // feq
	fsub  r23, r22, r8
	ffma  r8, r23, r17, r8
	fsub  r23, r22, r10
	ffma  r10, r23, r17, r10
	fsub  r23, r22, r12
	ffma  r12, r23, r17, r12
	fsub  r23, r22, r14
	ffma  r14, r23, r17, r14
	fsub  r23, r22, r16
	ffma  r16, r23, r17, r16
	bra STORE
OBSTACLE:
	// bounce-back with uniform reflection factors       .. divergent scalar
	fmul  r24, r17, 0.5               //                      .. divergent scalar
	fadd  r25, r24, 1.0               //                      .. divergent scalar
	fmul  r26, r25, r24               //                      .. divergent scalar
	fadd  r27, r26, r25               //                      .. divergent scalar
	ffma  r26, r27, 0.125, r24        //                      .. divergent scalar
	fadd  r27, r26, r27               //                      .. divergent scalar
	fmul  r29, r27, r24               //                      .. divergent scalar
	fadd  r27, r29, r27               //                      .. divergent scalar
	fmul  r28, r10, r27               // scale swapped pair
	fmul  r10, r12, r27
	mov   r12, r28
	fmul  r28, r14, r27
	fmul  r14, r16, r27
	mov   r16, r28
STORE:
	stg   [r7], r8
	stg   [r9], r10
	stg   [r11], r12
	stg   [r13], r14
	stg   [r15], r16
	exit
`

func init() {
	register(Workload{
		Abbr: "LBM", Name: "lbm", Suite: "Parboil",
		Desc:  "lattice-Boltzmann step; memory-bound, ~half divergent",
		Build: buildLBM,
	})
}

func buildLBM(scale int) (*Instance, error) {
	prog, err := asm.Assemble(lbmSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 192 * scale // large grid: the working set must overflow the L2
	n := ctas * threadsPerCTA

	r := newRNG(32)
	flags := make([]uint32, n)
	for i := range flags {
		if r.uint32n(100) < 35 {
			flags[i] = 1
		}
	}
	f := make([]float32, 5*n)
	for i := range f {
		f[i] = r.floatRange(0.1, 1.1)
	}
	mem := kernel.NewMemory()
	flB := mem.AllocU32(flags)
	fB := mem.AllocF32(f)

	const omega = float32(0.6)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = flB
	lc.Params[1] = fB
	lc.Params[2] = uint32(n * 4)
	lc.Params[3] = math.Float32bits(omega)

	check := func() error {
		got := mem.ReadF32(fB, 5*n)
		omegaEff := omega + float32(1/math.Sqrt(float64(omega)))*0.05
		for i := 0; i < n; i++ {
			fs := [5]float32{f[i], f[n+i], f[2*n+i], f[3*n+i], f[4*n+i]}
			if flags[i] == 1 {
				r24 := omegaEff * 0.5
				r25 := r24 + 1
				r26 := r25 * r24
				r27 := r26 + r25
				r26 = ffma(r27, 0.125, r24)
				r27 = r26 + r27
				r29 := r27 * r24
				r27 = r29 + r27
				f1, f2, f3, f4 := fs[1], fs[2], fs[3], fs[4]
				fs[1] = f2 * r27
				fs[2] = f1 * r27
				fs[3] = f4 * r27
				fs[4] = f3 * r27
			} else {
				rho := ((fs[0] + fs[1]) + (fs[2] + fs[3])) + fs[4]
				r20 := omegaEff * 0.2
				r21 := r20 + 0.01
				r29 := r20 * r20
				r30 := ffma(r29, 0.5, r21)
				r31 := r30 + r20
				coef := r31 * 0.9
				coef = (coef + r20) * 0.8
				feq := rho * coef
				for k := 0; k < 5; k++ {
					fs[k] = ffma(feq-fs[k], omegaEff, fs[k])
				}
			}
			for k := 0; k < 5; k++ {
				if got[k*n+i] != fs[k] {
					return errf("LBM: f%d[%d] = %v, want %v", k, i, got[k*n+i], fs[k])
				}
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// MG — mri-grid (Parboil). Gridding scatter: integer cell/offset arithmetic
// over mid-sized index ranges, so operand vectors share only their upper
// two or three bytes — the paper singles MG out (with MV) as a benchmark
// where byte-wise compression beats the scalar-only register file by >40 %.
// ---------------------------------------------------------------------------

const mgSrc = `
.kernel mrigrid
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // sample
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // sample coordinate (fixed point)
	mov   r6, 0                       // tap
	mov   r7, 0                       // acc
TAP:
	imul  r19, r6, 5                  // tap coefficient       .. scalar
	iadd  r20, r19, 3                 //                       .. scalar
	and   r21, r20, 7                 //                       .. scalar
	imad  r8, r6, 37, r5              // neighbour code (2-byte-similar)
	shr   r9, r8, 3                   // cell (2-byte-similar)
	and   r10, r9, 4095
	and   r11, r8, 7                  // sub-cell offset (3-byte: 0..7)
	imul  r12, r11, r11               // weight numerator
	iadd  r13, r12, 1
	imad  r14, r10, 9, r13            // contribution
	iadd  r14, r14, r21               // + tap coefficient
	iadd  r7, r7, r14
	shl   r15, r10, 2
	iadd  r16, $1, r15
	ldg   r17, [r16]                  // grid density (gather, 2-byte addrs)
	iadd  r7, r7, r17
	iadd  r6, r6, 1                   //                      .. scalar
	isetp.lt p0, r6, 4                //                      .. scalar
	@p0 bra TAP
	iadd  r18, $2, r3
	stg   [r18], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "MG", Name: "mri-grid", Suite: "Parboil",
		Desc:  "gridding scatter; 2/3-byte-similar index arithmetic",
		Build: buildMG,
	})
}

func buildMG(scale int) (*Instance, error) {
	prog, err := asm.Assemble(mgSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 60 * scale
	n := ctas * threadsPerCTA

	r := newRNG(33)
	samples := make([]uint32, n)
	for i := range samples {
		// Mid-range values: vectors across a warp share the top ~2 bytes.
		samples[i] = 0x6000 + r.uint32n(0x4000)
	}
	density := make([]uint32, 4096)
	for i := range density {
		density[i] = r.uint32n(1000)
	}
	mem := kernel.NewMemory()
	sB := mem.AllocU32(samples)
	dB := mem.AllocU32(density)
	oB := mem.Alloc(n * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = sB
	lc.Params[1] = dB
	lc.Params[2] = oB

	check := func() error {
		got := mem.ReadU32(oB, n)
		for i := 0; i < n; i++ {
			var acc int32
			for tap := 0; tap < 4; tap++ {
				coeff := (int32(tap)*5 + 3) & 7
				code := int32(tap)*37 + int32(samples[i])
				cell := (code >> 3) & 4095
				off := code & 7
				w := off*off + 1
				acc += cell*9 + w + coeff
				acc += int32(density[cell])
			}
			if got[i] != uint32(acc) {
				return errf("MG: out[%d] = %d, want %d", i, int32(got[i]), acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// SAD — sad (Parboil). Sum-of-absolute-differences block matching; a search-
// window boundary test sends part of each warp down a uniform penalty path
// (paper: 19 % divergent-scalar instructions).
// ---------------------------------------------------------------------------

const sadSrc = `
.kernel sad
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // block position
	and   r3, r2, 31                  // search offset within row
	shl   r4, r2, 2
	iadd  r5, $0, r4
	ldg   r6, [r5]                    // cur pixel group (per thread)
	mov   r7, 0                       // sad acc
	mov   r8, 0                       // k
	mov   r9, $3                      // window edge (uniform)
	shr   r20, r1, 5                  // warp phase: uniform per 32 threads
	imul  r21, r20, 9                 // (full-scalar at warp 32; quarter-
	iadd  r21, r21, 1                 //  scalar at warp 64, Figure 10)
PIX:
	imad  r22, r21, 3, r8             // warp-phased weight   .. scalar@32
	iadd  r7, r7, r22
	isetp.ge p0, r3, r9               // outside search window?
	@p0 bra PENALTY
	imad  r10, r8, 64, r2             //                      .. divergent mixed
	and   r10, r10, 8191
	shl   r11, r10, 2
	iadd  r12, $1, r11
	ldg   r13, [r12]                  // ref pixel (gather)
	isub  r14, r6, r13
	iabs  r14, r14
	iadd  r7, r7, r14
	bra NEXT
PENALTY:
	mov   r15, $4                     // uniform penalty      .. divergent scalar
	imul  r16, r15, 3                 //                      .. divergent scalar
	iadd  r17, r16, r15               //                      .. divergent scalar
	shl   r19, r15, 1                 //                      .. divergent scalar
	iadd  r17, r17, r19               //                      .. divergent scalar
	iadd  r7, r7, r17                 //                      .. divergent mixed
NEXT:
	iadd  r8, r8, 1                   //                      .. scalar
	isetp.lt p0, r8, 8                //                      .. scalar
	@p0 bra PIX
	iadd  r7, r7, r21                 // + warp-phase bias
	iadd  r18, $2, r4
	stg   [r18], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "SAD", Name: "sad", Suite: "Parboil",
		Desc:  "block matching; uniform penalty path under divergence",
		Build: buildSAD,
	})
}

func buildSAD(scale int) (*Instance, error) {
	prog, err := asm.Assemble(sadSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 50 * scale
	n := ctas * threadsPerCTA

	r := newRNG(34)
	cur := make([]uint32, n)
	for i := range cur {
		cur[i] = r.uint32n(256)
	}
	ref := make([]uint32, 8192)
	for i := range ref {
		ref[i] = r.uint32n(256)
	}
	mem := kernel.NewMemory()
	cB := mem.AllocU32(cur)
	rB := mem.AllocU32(ref)
	oB := mem.Alloc(n * 4)

	const edge = 24
	const penalty = 7
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = cB
	lc.Params[1] = rB
	lc.Params[2] = oB
	lc.Params[3] = edge
	lc.Params[4] = penalty

	check := func() error {
		got := mem.ReadU32(oB, n)
		for i := 0; i < n; i++ {
			off := i % 32
			wp := int32((i%threadsPerCTA)>>5)*9 + 1
			acc := wp
			for k := 0; k < 8; k++ {
				acc += wp*3 + int32(k)
				if off >= edge {
					acc += penalty*3 + penalty + penalty*2
					continue
				}
				idx := (k*64 + i) & 8191
				d := int32(cur[i]) - int32(ref[idx])
				if d < 0 {
					d = -d
				}
				acc += d
			}
			if got[i] != uint32(acc) {
				return errf("SAD: out[%d] = %d, want %d", i, int32(got[i]), acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// MV — spmv (Parboil). CSR sparse matrix-vector product: per-row trip
// counts differ, so lanes drain out of the inner loop one by one (loop
// divergence); column/value gathers give 2/3-byte-similar operands and few
// scalars.
// ---------------------------------------------------------------------------

const mvSrc = `
.kernel spmv
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // row
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // rowptr[row]
	ldg   r6, [r4+4]                  // rowptr[row+1]
	mov   r7, 0                       // acc
LOOP:
	isetp.ge p0, r5, r6               // row exhausted?
	@p0 bra DONE
	shl   r8, r5, 2                   //                      .. divergent vector
	iadd  r9, $1, r8
	ldg   r10, [r9]                   // colidx (gather)
	iadd  r11, $2, r8
	ldg   r12, [r11]                  // value (gather)
	shl   r13, r10, 2
	iadd  r14, $3, r13
	ldg   r15, [r14]                  // x[col] (gather)
	fmul  r16, r12, r15
	fadd  r7, r7, r16
	iadd  r5, r5, 1
	bra LOOP
DONE:
	iadd  r17, $4, r3
	stg   [r17], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "MV", Name: "spmv", Suite: "Parboil",
		Desc:  "CSR sparse matrix-vector product with loop divergence",
		Build: buildMV,
	})
}

func buildMV(scale int) (*Instance, error) {
	prog, err := asm.Assemble(mvSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 40 * scale
	rows := ctas * threadsPerCTA

	r := newRNG(35)
	rowptr := make([]uint32, rows+1)
	var nnz uint32
	for i := 0; i < rows; i++ {
		rowptr[i] = nnz
		// Nearly balanced rows: little loop divergence, and row pointers /
		// loop counters across a warp stay within a 2-byte span, giving MV
		// the paper's "many 3-byte and 2-byte accesses, few scalars" mix.
		nnz += 6 + r.uint32n(3)
	}
	rowptr[rows] = nnz
	colidx := make([]uint32, nnz)
	vals := make([]float32, nnz)
	xs := make([]float32, rows)
	for i := range colidx {
		colidx[i] = r.uint32n(uint32(rows))
		vals[i] = r.floatRange(-1, 1)
	}
	for i := range xs {
		xs[i] = r.floatRange(-1, 1)
	}
	mem := kernel.NewMemory()
	rpB := mem.AllocU32(rowptr)
	ciB := mem.AllocU32(colidx)
	vB := mem.AllocF32(vals)
	xB := mem.AllocF32(xs)
	oB := mem.Alloc(rows * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = rpB
	lc.Params[1] = ciB
	lc.Params[2] = vB
	lc.Params[3] = xB
	lc.Params[4] = oB

	check := func() error {
		got := mem.ReadF32(oB, rows)
		for row := 0; row < rows; row++ {
			var acc float32
			for k := rowptr[row]; k < rowptr[row+1]; k++ {
				acc += vals[k] * xs[colidx[k]]
			}
			if got[row] != acc {
				return errf("MV: out[%d] = %v, want %v", row, got[row], acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// ACF — tpacf (Parboil). Angular correlation: point pairs stream through
// warp-uniform loads, distances go through vector sqrt/lg2, and histogram
// binning is a chain of divergent comparisons against uniform bin edges.
// ---------------------------------------------------------------------------

const acfSrc = `
.kernel tpacf
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // point i
	shl   r3, r2, 3
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // xi
	ldg   r6, [r4+4]                  // yi
	mov   r7, 0                       // j
	mov   r8, $1                      // npoints (uniform)
	mov   r9, $2                      // points base (uniform)
	mov   r10, 0                      // bin0 count
	mov   r11, 0                      // bin1 count
	mov   r12, 0                      // bin2 count
PAIR:
	shl   r13, r7, 3                  //                      .. scalar
	iadd  r14, r9, r13                //                      .. scalar
	ldg   r15, [r14]                  // xj (scalar load)
	ldg   r16, [r14+4]                // yj (scalar load)
	fmul  r24, r15, r15               // |pj|^2 norm          .. scalar
	ffma  r24, r16, r16, r24          //                      .. scalar
	fadd  r24, r24, 1.0               //                      .. scalar
	rsqrt r25, r24                    // scalar SFU
	fmul  r17, r5, r15
	ffma  r17, r6, r16, r17           // dot
	fmul  r17, r17, r25               // normalised dot
	fsub  r18, 1.0, r17
	fabs  r18, r18
	fadd  r18, r18, 0.001
	sqrt  r19, r18                    // angular distance  vector SFU
	lg2   r20, r19                    // log distance      vector SFU
	and   r26, r7, 3                  // pair weight          .. scalar
	iadd  r26, r26, 1                 //                      .. scalar
	fsetp.lt p0, r20, $3              // < edge0?
	@p0 bra BIN0
	fsetp.lt p0, r20, $4              // < edge1?           .. divergent
	@p0 bra BIN1
	imul  r27, r26, 3                 //                      .. divergent scalar
	iadd  r12, r12, r27               //                      .. divergent scalar
	bra BINNED
BIN0:
	shl   r27, r26, 1                 //                      .. divergent scalar
	iadd  r10, r10, r27               //                      .. divergent scalar
	bra BINNED
BIN1:
	iadd  r27, r26, 2                 //                      .. divergent scalar
	iadd  r11, r11, r27               //                      .. divergent scalar
BINNED:
	iadd  r7, r7, 1                   //                      .. scalar
	isetp.lt p0, r7, r8               //                      .. scalar
	@p0 bra PAIR
	shl   r21, r2, 2
	iadd  r22, $5, r21
	imad  r23, r11, 1000, r10
	imad  r23, r12, 1000000, r23      // pack the three bins
	stg   [r22], r23
	exit
`

func init() {
	register(Workload{
		Abbr: "ACF", Name: "tpacf", Suite: "Parboil",
		Desc:  "angular correlation; divergent histogram binning",
		Build: buildACF,
	})
}

func buildACF(scale int) (*Instance, error) {
	prog, err := asm.Assemble(acfSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const npoints = 16
	ctas := 40 * scale
	n := ctas * threadsPerCTA

	r := newRNG(36)
	pts := make([]float32, 2*(n+npoints))
	for i := range pts {
		pts[i] = r.floatRange(-1, 1)
	}
	mem := kernel.NewMemory()
	pB := mem.AllocF32(pts)
	refB := pB // the first npoints pairs double as the reference set
	oB := mem.Alloc(n * 4)

	const edge0 = float32(-1.5)
	const edge1 = float32(-0.25)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = pB
	lc.Params[1] = npoints
	lc.Params[2] = refB
	lc.Params[3] = math.Float32bits(edge0)
	lc.Params[4] = math.Float32bits(edge1)
	lc.Params[5] = oB

	check := func() error {
		got := mem.ReadU32(oB, n)
		for i := 0; i < n; i++ {
			xi, yi := pts[2*i], pts[2*i+1]
			var b0, b1, b2 uint32
			for j := 0; j < npoints; j++ {
				xj, yj := pts[2*j], pts[2*j+1]
				norm := ffma(yj, yj, xj*xj) + 1
				rn := float32(1 / math.Sqrt(float64(norm)))
				dot := ffma(yi, yj, xi*xj) * rn
				d := float32(math.Abs(float64(1 - dot)))
				dist := float32(math.Sqrt(float64(d + 0.001)))
				lg := float32(math.Log2(float64(dist)))
				w := uint32(j&3) + 1
				switch {
				case lg < edge0:
					b0 += 2 * w
				case lg < edge1:
					b1 += w + 2
				default:
					b2 += 3 * w
				}
			}
			want := b2*1000000 + b1*1000 + b0
			if got[i] != want {
				return errf("ACF: out[%d] = %d, want %d", i, got[i], want)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}
