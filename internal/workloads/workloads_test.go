package workloads

import (
	"testing"

	"gscalar/internal/warp"
)

// TestAllWorkloadsFunctional runs every registered workload through the
// functional golden-model interpreter and validates its output against the
// host-computed result.
func TestAllWorkloadsFunctional(t *testing.T) {
	ws := All()
	if len(ws) == 0 {
		t.Fatal("no workloads registered")
	}
	for _, w := range ws {
		t.Run(w.Abbr, func(t *testing.T) {
			inst, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := warp.FuncRun(inst.Prog, inst.Launch, inst.Mem, 32, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.WarpInsts == 0 {
				t.Fatal("no instructions executed")
			}
			if inst.Check != nil {
				if err := inst.Check(); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("%s: %d warp-insts, %d thread-insts, %.1f%% divergent",
				w.Abbr, res.WarpInsts, res.ThreadInsts,
				100*float64(res.DivergentInsts)/float64(res.WarpInsts))
		})
	}
}

// TestWorkloadRegistry checks Table 2 completeness once all benchmarks are
// registered.
func TestWorkloadRegistry(t *testing.T) {
	want := []string{"BT", "BP", "HW", "HS", "LC", "PF", "SR1", "SR2",
		"CC", "LBM", "MG", "MQ", "SAD", "MM", "MV", "ST", "ACF"}
	missing := 0
	for _, abbr := range want {
		if _, ok := ByAbbr(abbr); !ok {
			t.Logf("missing workload %s", abbr)
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d Table 2 workloads missing", missing, len(want))
	}
}
