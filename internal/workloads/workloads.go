// Package workloads provides the 17 benchmark kernels of the paper's
// evaluation (Table 2): synthetic re-creations of the Rodinia and Parboil
// workloads, hand-written in .gasm assembly and paired with deterministic
// input generators. Each kernel is written to reproduce the dynamic
// properties the paper reports for its namesake — divergence fraction
// (Fig 1), register value-similarity mix (Fig 8), SFU share, warp occupancy
// and memory intensity — since those properties are what drive every
// result in Figures 8–12.
package workloads

import (
	"fmt"
	"sort"

	"gscalar/internal/kernel"
)

// Instance is a ready-to-run kernel launch.
type Instance struct {
	Prog   *kernel.Program
	Launch *kernel.LaunchConfig
	Mem    *kernel.Memory
	// Check validates the kernel's output against a host-computed golden
	// result; nil means the workload has no cheap independent check.
	Check func() error
}

// Workload is one benchmark of Table 2.
type Workload struct {
	Abbr  string // the paper's abbreviation (BT, BP, …)
	Name  string // benchmark name (b+tree, backprop, …)
	Suite string // "Rodinia" or "Parboil"
	Desc  string
	// Build constructs an instance. scale >= 1 grows the grid (tests use 1;
	// benches can use more).
	Build func(scale int) (*Instance, error)
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Abbr]; dup {
		panic("workloads: duplicate " + w.Abbr)
	}
	registry[w.Abbr] = w
}

// ByAbbr looks a workload up by its Table 2 abbreviation.
func ByAbbr(abbr string) (Workload, bool) {
	w, ok := registry[abbr]
	return w, ok
}

// All returns every workload in Table 2 order (Rodinia first, then
// Parboil, alphabetical within each suite, matching the paper's table).
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite > out[j].Suite // Rodinia before Parboil
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Abbrs returns the abbreviations in All() order.
func Abbrs() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Abbr
	}
	return out
}

// rng is a small deterministic xorshift PRNG for input generation
// (math/rand would work too; this keeps inputs stable across Go versions).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*2685821657736338717 + 1} }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// uint32n returns a value in [0, n).
func (r *rng) uint32n(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(r.next() % uint64(n))
}

// float01 returns a float32 in [0, 1).
func (r *rng) float01() float32 {
	return float32(r.next()%(1<<24)) / (1 << 24)
}

// floatRange returns a float32 in [lo, hi).
func (r *rng) floatRange(lo, hi float32) float32 {
	return lo + (hi-lo)*r.float01()
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
