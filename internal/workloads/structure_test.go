package workloads

import (
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/isa"
)

// TestWorkloadProgramStructure pins static well-formedness of every
// benchmark kernel: valid reconvergence PCs, a register budget that allows
// multi-CTA residency under the 128 KB register file, and clean results
// from the compile-time analyses.
func TestWorkloadProgramStructure(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Abbr, func(t *testing.T) {
			inst, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			p := inst.Prog

			// Register budget: a 256-thread CTA must fit at least 3x into
			// the 128 KB register file (i.e. <= ~42 regs/thread) so the
			// timing results aren't occupancy-starved artifacts.
			if p.NumRegs > 42 {
				t.Errorf("uses %d registers; occupancy would collapse", p.NumRegs)
			}

			// Every branch target and RPC in range; backward branches form
			// loops with a valid reconvergence after them.
			for pc := 0; pc < p.Len(); pc++ {
				in := p.At(pc)
				if in.Op != isa.OpBra {
					continue
				}
				if in.Target < 0 || in.Target >= p.Len() {
					t.Errorf("pc %d: branch target %d out of range", pc, in.Target)
				}
				if in.RPC >= 0 && (in.RPC > p.Len()) {
					t.Errorf("pc %d: RPC %d out of range", pc, in.RPC)
				}
			}

			// The last instruction must be an unguarded exit (the assembler
			// enforces it; re-check workload sources directly).
			last := p.At(p.Len() - 1)
			if last.Op != isa.OpExit || last.Guard.On {
				t.Errorf("program does not end in an unguarded exit: %v", last)
			}

			// The static analyses must succeed and be self-consistent.
			a := asm.Analyze(p)
			dead := asm.DeadOnWrite(p)
			if len(a.UniformInst) != p.Len() || len(dead) != p.Len() {
				t.Fatal("analysis length mismatch")
			}
			for pc := 0; pc < p.Len(); pc++ {
				if a.UniformInst[pc] && a.Divergent[pc] {
					t.Errorf("pc %d both uniform and divergent", pc)
				}
			}

			// The launch must be valid for the Table 1 limits and shared
			// memory must fit a Fermi SM.
			if err := inst.Launch.Validate(1536); err != nil {
				t.Error(err)
			}
			if inst.Launch.SharedBytes > 48<<10 {
				t.Errorf("shared memory %d exceeds 48 KB", inst.Launch.SharedBytes)
			}
			// Grids are sized to keep all 15 SMs busy.
			if ctas := inst.Launch.Grid.Count(); ctas < 15 {
				t.Errorf("only %d CTAs; SMs would idle", ctas)
			}
		})
	}
}

// TestWorkloadDeterminism ensures two builds of the same workload produce
// identical inputs (the PRNG is seeded per workload).
func TestWorkloadDeterminism(t *testing.T) {
	for _, abbr := range []string{"BP", "LBM", "MV"} {
		w, _ := ByAbbr(abbr)
		a, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Launch.Params != b.Launch.Params {
			t.Errorf("%s: params differ across builds", abbr)
		}
		// Compare a slab of initialised device memory.
		pa := a.Mem.ReadU32(a.Launch.Params[0], 64)
		pb := b.Mem.ReadU32(b.Launch.Params[0], 64)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("%s: memory differs at %d", abbr, i)
				break
			}
		}
	}
}

// TestScaleGrowsWork verifies the scale knob actually grows the launch.
func TestScaleGrowsWork(t *testing.T) {
	for _, abbr := range []string{"BP", "MM", "ST"} {
		w, _ := ByAbbr(abbr)
		s1, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := w.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Launch.Threads() <= s1.Launch.Threads() {
			t.Errorf("%s: scale 2 (%d threads) not larger than scale 1 (%d)",
				abbr, s2.Launch.Threads(), s1.Launch.Threads())
		}
	}
}
