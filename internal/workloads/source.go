package workloads

import (
	"fmt"
	"strings"
	"sync"

	"gscalar/internal/gen"
	"gscalar/internal/trace"
)

// Source is the workload-source abstraction: anything that can materialise a
// runnable Instance. The builtin Table 2 registry and trace files both
// implement it, so every layer above (Session, experiments, serve, CLIs)
// resolves one spec syntax and never cares where instructions come from.
type Source interface {
	// Key is the canonical cache identity of the workload: the Table 2
	// abbreviation for builtins, "trace:" + the trace's content hash for
	// trace files. Two specs with equal Keys build identical instances, so
	// Key (together with config hash, arch and scale) is safe to use as a
	// result-store key.
	Key() string
	// Describe is a one-line human description.
	Describe() string
	// Build constructs a fresh Instance. scale >= 1 grows builtin grids;
	// trace sources replay the captured launch exactly and ignore it.
	Build(scale int) (*Instance, error)
}

// TracePrefix marks a workload spec as a trace-file path: "trace:<path>".
const TracePrefix = "trace:"

// UnknownError reports a workload spec that names neither a builtin
// benchmark nor a trace file nor a generated kernel.
type UnknownError struct {
	Spec  string
	Valid []string // builtin abbreviations, Table 2 order
}

func (e *UnknownError) Error() string {
	return fmt.Sprintf("unknown workload %q (valid: %s; or %s<path> to replay a captured trace; or %s<dials> for a synthetic kernel)",
		e.Spec, strings.Join(e.Valid, " "), TracePrefix, GenPrefix)
}

// Resolve turns a workload spec into a Source. The grammar is ParseSpec's:
// a builtin Table 2 abbreviation ("HS"), a trace-file reference
// ("trace:<path>"), or a generated synthetic kernel ("gen:div=0.3,...").
// Trace files are decoded at resolve time — a missing, truncated or
// version-mismatched file fails here with the trace package's typed errors —
// and cached per path, so resolving the same trace across a sweep's points
// decodes it once. Gen dial errors (*gen.DialError) also surface here, so
// a bad spec fails before any simulation is attempted.
func Resolve(spec string) (Source, error) {
	ps, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	switch ps.Kind {
	case SpecTrace:
		t, err := loadTrace(ps.Path)
		if err != nil {
			return nil, err
		}
		return &traceSource{t: t}, nil
	case SpecGen:
		return &genSource{p: ps.Gen}, nil
	}
	w, ok := ByAbbr(ps.Abbr)
	if !ok {
		return nil, &UnknownError{Spec: spec, Valid: Abbrs()}
	}
	return builtinSource{w: w}, nil
}

// builtinSource adapts a registry Workload to the Source interface.
type builtinSource struct{ w Workload }

func (b builtinSource) Key() string { return b.w.Abbr }
func (b builtinSource) Describe() string {
	return fmt.Sprintf("%s (%s, %s)", b.w.Name, b.w.Abbr, b.w.Suite)
}
func (b builtinSource) Build(scale int) (*Instance, error) { return b.w.Build(scale) }

// traceSource replays a captured trace: the Instance is rebuilt from the
// trace's static sections (program shared, launch and memory fresh per
// build), so concurrent replays from one Source never share mutable state.
// There is no golden-output check — the capture's provenance is the trace
// itself.
type traceSource struct{ t *trace.Trace }

func (s *traceSource) Key() string { return TracePrefix + s.t.Hash }

func (s *traceSource) Describe() string {
	m := s.t.Meta
	label := m.Workload
	if label == "" {
		label = "unnamed capture"
	}
	desc := fmt.Sprintf("trace replay of %s", label)
	if m.Arch != "" {
		desc += " (captured on " + m.Arch + ")"
	}
	return desc
}

// Build materialises a replayable Instance. The captured launch is replayed
// exactly, so scale is ignored — a trace is one concrete run, not a
// parameterized generator.
func (s *traceSource) Build(scale int) (*Instance, error) {
	prog, err := s.t.Program()
	if err != nil {
		return nil, err
	}
	return &Instance{
		Prog:   prog,
		Launch: s.t.Launch(),
		Mem:    s.t.NewMemory(),
	}, nil
}

// genSource materialises synthetic kernels from a parsed dial vector.
// The Key is the canonical "gen:" spec — two spellings of the same dials
// share it — and every Build renders, assembles and fills memory afresh
// (deterministically), so concurrent builds never share mutable state.
type genSource struct{ p gen.Params }

func (g *genSource) Key() string      { return GenPrefix + g.p.Canonical() }
func (g *genSource) Describe() string { return g.p.Describe() }

// Build renders the synthetic kernel. There is no golden-output check:
// the workload's contract is its measured dynamic properties (held by the
// gendet property suite), not a functional result.
func (g *genSource) Build(scale int) (*Instance, error) {
	prog, lc, mem, err := gen.Build(g.p, scale)
	if err != nil {
		return nil, err
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem}, nil
}

// GenParamsOf returns the dial vector behind src when it is a generated
// workload.
func GenParamsOf(src Source) (gen.Params, bool) {
	gs, ok := src.(*genSource)
	if !ok {
		return gen.Params{}, false
	}
	return gs.p, true
}

// Trace exposes the decoded trace behind a trace-backed Source (nil for
// builtins); callers use it for metadata like the content hash.
func (s *traceSource) Trace() *trace.Trace { return s.t }

// TraceOf returns the decoded trace behind src when src replays one.
func TraceOf(src Source) (*trace.Trace, bool) {
	ts, ok := src.(*traceSource)
	if !ok {
		return nil, false
	}
	return ts.t, true
}

// traceCache memoizes successful trace decodes per path. Failures are not
// cached: a capture may legitimately appear at the path later (the atomic
// writer renames the finished file into place).
var traceCache = struct {
	sync.Mutex
	m map[string]*trace.Trace
}{m: map[string]*trace.Trace{}}

func loadTrace(path string) (*trace.Trace, error) {
	traceCache.Lock()
	t, ok := traceCache.m[path]
	traceCache.Unlock()
	if ok {
		return t, nil
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	traceCache.Lock()
	if prev, ok := traceCache.m[path]; ok {
		t = prev // another goroutine won the decode race; share its Trace
	} else {
		traceCache.m[path] = t
	}
	traceCache.Unlock()
	return t, nil
}
