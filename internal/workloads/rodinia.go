package workloads

import (
	"math"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// ---------------------------------------------------------------------------
// BT — b+tree (Rodinia). Per-thread key lookups walking a binary index:
// gather loads, per-lane comparison-driven child selection, and a rarely
// taken divergent early-out. Moderate divergence, mostly vector work.
// ---------------------------------------------------------------------------

const btSrc = `
.kernel btree
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // query id
	shl   r3, r2, 2
	iadd  r4, $1, r3
	ldg   r5, [r4]                    // target key (per thread)
	mov   r6, 0                       // node index
	mov   r7, 0                       // depth
	mov   r8, $3                      // depth limit (uniform)
	mov   r9, 0                       // result
	shr   r17, r1, 5                  // warp phase: uniform per 32 threads
	imul  r18, r17, 3                 // (Figure 10 quarter-scalar source)
LOOP:
	shl   r10, r6, 2
	iadd  r11, $0, r10
	ldg   r12, [r11]                  // node key (gather)
	isetp.eq p1, r12, r5
	@p1 bra FOUND                     // divergent early-out
	isetp.lt p0, r5, r12
	shl   r13, r6, 1
	iadd  r14, r13, 1                 // left child
	iadd  r15, r13, 2                 // right child
	selp  r6, r14, r15, p0
	iadd  r7, r7, 1                   //                    .. scalar
	isetp.lt p0, r7, r8               //                    .. scalar
	@p0 bra LOOP
	mov   r9, -1                      // not found
	bra STORE
FOUND:
	iadd  r9, r6, 1                   // found at node
STORE:
	iadd  r9, r9, r18                 // + warp-phase bias
	iadd  r16, $2, r3
	stg   [r16], r9
	exit
`

func init() {
	register(Workload{
		Abbr: "BT", Name: "b+tree", Suite: "Rodinia",
		Desc:  "index lookups with gather loads and divergent early-out",
		Build: buildBT,
	})
}

func buildBT(scale int) (*Instance, error) {
	prog, err := asm.Assemble(btSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const depth = 10
	ctas := 50 * scale
	n := ctas * threadsPerCTA
	nodes := 1<<(depth+1) - 1

	r := newRNG(21)
	tree := make([]uint32, nodes)
	for i := range tree {
		tree[i] = r.uint32n(1 << 16)
	}
	queries := make([]uint32, n)
	for i := range queries {
		queries[i] = r.uint32n(1 << 16)
	}
	mem := kernel.NewMemory()
	treeB := mem.AllocU32(tree)
	qB := mem.AllocU32(queries)
	outB := mem.Alloc(n * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = treeB
	lc.Params[1] = qB
	lc.Params[2] = outB
	lc.Params[3] = depth

	check := func() error {
		got := mem.ReadU32(outB, n)
		for i := 0; i < n; i++ {
			node := 0
			res := int32(-1)
			for d := 0; d < depth; d++ {
				key := tree[node]
				if key == queries[i] {
					res = int32(node) + 1
					break
				}
				if int32(queries[i]) < int32(key) {
					node = 2*node + 1
				} else {
					node = 2*node + 2
				}
			}
			res += int32((i%threadsPerCTA)>>5) * 3
			if got[i] != uint32(res) {
				return errf("BT: out[%d] = %d, want %d", i, int32(got[i]), res)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// HS — hotspot (Rodinia). Thermal stencil over time steps; a border band of
// each warp takes the ambient-clamp path, whose arithmetic runs entirely on
// uniform constants — the divergent-scalar pattern (paper: 17 % of HS's
// instructions are divergent scalar).
// ---------------------------------------------------------------------------

const hsSrc = `
.kernel hotspot
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // cell
	and   r3, r2, 63                  // col (W = 64)
	shl   r5, r2, 2
	iadd  r6, $0, r5
	ldg   r7, [r6]                    // temp (per thread)
	iadd  r8, $1, r5
	ldg   r9, [r8]                    // power (per thread)
	mov   r10, $2                     // ambient (uniform)
	mov   r11, $3                     // conduction coef (uniform)
	ldg   r13, [r6+4]                 // east
	ldg   r14, [r6-4]                 // west
	mov   r20, 0                      // step
	mov   r21, $5                     // steps (uniform)
	mov   r22, 0                      // acc
	shr   r27, r1, 5                  // warp phase: uniform per 32 threads
	imul  r28, r27, 5                 // (full-scalar at warp 32; quarter-
	iadd  r28, r28, 2                 //  scalar at warp 64, Figure 10)
	i2f   r29, r28
STEP:
	iadd  r30, r28, r20               // warp-phased schedule .. scalar@32
	i2f   r24, r30                    //                      .. scalar@32
	fmul  r25, r24, 0.1               //                      .. scalar@32
	ex2   r26, r25                    // decay      SFU, scalar@32/quarter@64
	isetp.lt p0, r3, 8
	@p0 bra BORDER
	isetp.ge p0, r3, 56
	@p0 bra BORDER
	fadd  r15, r13, r14               // neighbour sum        .. divergent vector
	fmul  r16, r15, r11
	ffma  r17, r7, 0.8, r16
	ffma  r17, r9, 0.05, r17
	bra JOIN
BORDER:
	fmul  r18, r10, r11               // uniform chain        .. divergent scalar
	fadd  r19, r18, r10               //                      .. divergent scalar
	fmul  r18, r19, 0.5               //                      .. divergent scalar
	ffma  r17, r19, 0.125, r18        //                      .. divergent scalar
JOIN:
	ffma  r22, r17, r26, r22          // acc += step * decay
	iadd  r20, r20, 1                 //                      .. scalar
	isetp.lt p0, r20, r21             //                      .. scalar
	@p0 bra STEP
	fadd  r22, r22, r29               // + warp-phase bias
	iadd  r23, $4, r5
	stg   [r23], r22
	exit
`

func init() {
	register(Workload{
		Abbr: "HS", Name: "hotspot", Suite: "Rodinia",
		Desc:  "thermal stencil; border lanes run a uniform ambient-clamp path",
		Build: buildHS,
	})
}

func buildHS(scale int) (*Instance, error) {
	prog, err := asm.Assemble(hsSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const steps = 8
	ctas := 50 * scale
	n := ctas * threadsPerCTA

	r := newRNG(22)
	// temp is padded by one cell on each side: the kernel reads [r6±4], so
	// cell 0's west and cell n-1's east land in the pads.
	temp := make([]float32, n+2)
	pw := make([]float32, n)
	for i := range temp {
		temp[i] = r.floatRange(300, 340)
	}
	for i := range pw {
		pw[i] = r.floatRange(0, 2)
	}
	mem := kernel.NewMemory()
	tPad := mem.AllocF32(temp)
	tB := tPad + 4 // &temp[1]: kernel cell i is temp[i+1]
	pB := mem.AllocF32(pw)
	oB := mem.Alloc(n * 4)

	const ambient = float32(320)
	const coef = float32(0.25)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = tB
	lc.Params[1] = pB
	lc.Params[2] = math.Float32bits(ambient)
	lc.Params[3] = math.Float32bits(coef)
	lc.Params[4] = oB
	lc.Params[5] = steps

	check := func() error {
		got := mem.ReadF32(oB, n)
		for i := 0; i < n; i++ {
			col := i % 64
			var acc float32
			wp := ((i%threadsPerCTA)>>5)*5 + 2
			for s := 0; s < steps; s++ {
				decay := ex2f(float32(s+wp) * 0.1)
				var r17 float32
				if col < 8 || col >= 56 {
					r18 := ambient * coef
					r19 := r18 + ambient
					r18b := r19 * 0.5
					r17 = ffma(r19, 0.125, r18b)
				} else {
					r15 := temp[i+2] + temp[i] // east + west around temp[i+1]
					r16 := r15 * coef
					r17 = ffma(temp[i+1], 0.8, r16)
					r17 = ffma(pw[i], 0.05, r17)
				}
				acc = ffma(r17, decay, acc)
			}
			acc += float32(wp)
			if got[i] != acc {
				return errf("HS: out[%d] = %v, want %v", i, got[i], acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// HW — heartwall (Rodinia). Image tracking: a data-dependent ROI test
// splits each warp, and the ROI path loops over a template fetched through
// warp-uniform addresses — divergent scalar loads and arithmetic. Roughly
// half of HW's instructions are divergent (paper §4.2).
// ---------------------------------------------------------------------------

const hwSrc = `
.kernel heartwall
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // pixel
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // pixel value (per thread)
	mov   r6, $2                      // threshold (uniform)
	mov   r7, 0                       // acc
	fmul  r20, r6, r6                 // uniform gain chain   .. scalar
	fadd  r21, r20, 0.5               //                      .. scalar
	rcp   r22, r21                    // scalar SFU
	fsetp.gt p0, r5, r6               // in ROI?
	@!p0 bra OUTSIDE
	mov   r8, 0                       // t
	mov   r9, $3                      // template base (uniform)
TMPL:
	shl   r10, r8, 2                  //                      .. divergent scalar
	iadd  r11, r9, r10                //                      .. divergent scalar
	ldg   r12, [r11]                  // template[t]          .. divergent scalar load
	fsub  r13, r5, r12                //                      .. divergent vector
	fabs  r14, r13
	fadd  r7, r7, r14
	iadd  r8, r8, 1                   //                      .. divergent scalar
	isetp.lt p1, r8, 4                //                      .. divergent scalar
	@p1 bra TMPL
	bra SMOOTH
OUTSIDE:
	fmul  r7, r5, 0.0625              // decay                .. divergent vector
SMOOTH:
	mov   r15, 0                      // smoothing step
POST:
	fmul  r16, r7, r22                // gain                 .. vector
	ffma  r7, r16, 0.125, r7          //                      .. vector
	iadd  r15, r15, 1                 //                      .. scalar
	isetp.lt p1, r15, 3               //                      .. scalar
	@p1 bra POST
	iadd  r17, $1, r3
	stg   [r17], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "HW", Name: "heartwall", Suite: "Rodinia",
		Desc:  "ROI tracking; template loop under a divergent mask",
		Build: buildHW,
	})
}

func buildHW(scale int) (*Instance, error) {
	prog, err := asm.Assemble(hwSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 50 * scale
	n := ctas * threadsPerCTA

	r := newRNG(23)
	img := make([]float32, n)
	for i := range img {
		img[i] = r.floatRange(0, 1)
	}
	tmpl := make([]float32, 8)
	for i := range tmpl {
		tmpl[i] = r.floatRange(0.4, 0.9)
	}
	mem := kernel.NewMemory()
	iB := mem.AllocF32(img)
	oB := mem.Alloc(n * 4)
	tB := mem.AllocF32(tmpl)

	const threshold = float32(0.5)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = iB
	lc.Params[1] = oB
	lc.Params[2] = math.Float32bits(threshold)
	lc.Params[3] = tB

	check := func() error {
		got := mem.ReadF32(oB, n)
		gain := rcpf(threshold*threshold + 0.5)
		for i := 0; i < n; i++ {
			var acc float32
			if img[i] > threshold {
				for t := 0; t < 4; t++ {
					d := img[i] - tmpl[t]
					acc += float32(math.Abs(float64(d)))
				}
			} else {
				acc = img[i] * 0.0625
			}
			for s := 0; s < 3; s++ {
				acc = ffma(acc*gain, 0.125, acc)
			}
			if got[i] != acc {
				return errf("HW: out[%d] = %v, want %v", i, got[i], acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// LC — leukocyte (Rodinia). Cell detection with long-latency integer
// divides in its inner loop and too few resident warps to hide latency —
// the paper's worst case for the +3-cycle G-Scalar pipeline.
// ---------------------------------------------------------------------------

const lcSrc = `
.kernel leukocyte
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // cell candidate
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // seed position (per thread)
	mov   r6, 0                       // iter
	mov   r7, $2                      // iters (uniform)
	mov   r8, 0                       // acc
	mov   r9, $3                      // image width (uniform)
LOOP:
	imad  r10, r5, 17, r6             // candidate offset
	iabs  r10, r10
	idiv  r11, r10, r9                // row  (long-latency divide)
	irem  r12, r10, r9                // col
	isetp.lt p0, r12, 4               // near left membrane?
	@p0 bra EDGE
	imul  r19, r6, 7                  // window schedule      .. divergent scalar
	iadd  r20, r19, 3                 //                      .. divergent scalar
	and   r20, r20, 15                //                      .. divergent scalar
	imad  r13, r11, r9, r12
	and   r13, r13, 8191
	shl   r14, r13, 2
	iadd  r15, $1, r14
	ldg   r16, [r15]                  // image pixel (gather)
	iadd  r8, r8, r16
	iadd  r8, r8, r20
	bra NEXT
EDGE:
	mov   r21, $5                     // membrane penalty     .. divergent scalar
	imul  r22, r21, 5                 //                      .. divergent scalar
	iadd  r22, r22, r21               //                      .. divergent scalar
	imul  r17, r11, 3                 //                      .. divergent
	iadd  r17, r17, r22
	iadd  r8, r8, r17
NEXT:
	iadd  r5, r5, r11                 // drift
	iadd  r6, r6, 1                   //                      .. scalar
	isetp.lt p0, r6, r7               //                      .. scalar
	@p0 bra LOOP
	iadd  r18, $4, r3
	stg   [r18], r8
	exit
`

func init() {
	register(Workload{
		Abbr: "LC", Name: "leukocyte", Suite: "Rodinia",
		Desc:  "cell tracking; integer divides, few resident warps",
		Build: buildLC,
	})
}

func buildLC(scale int) (*Instance, error) {
	prog, err := asm.Assemble(lcSrc)
	if err != nil {
		return nil, err
	}
	// Deliberately few warps per SM: small CTAs spread across all SMs, so
	// latency hiding is poor everywhere (the paper: LC lacks warps to hide
	// its long-latency divides, making it most sensitive to the +3 cycles).
	const threadsPerCTA = 64
	const iters = 24
	const width = 37
	const penalty = 2
	ctas := 30 * scale
	n := ctas * threadsPerCTA

	r := newRNG(24)
	seeds := make([]uint32, n)
	for i := range seeds {
		seeds[i] = r.uint32n(1 << 12)
	}
	img := make([]uint32, 8192)
	for i := range img {
		img[i] = r.uint32n(256)
	}
	mem := kernel.NewMemory()
	sB := mem.AllocU32(seeds)
	iB := mem.AllocU32(img)
	oB := mem.Alloc(n * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = sB
	lc.Params[1] = iB
	lc.Params[2] = iters
	lc.Params[3] = width
	lc.Params[4] = oB
	lc.Params[5] = penalty

	check := func() error {
		got := mem.ReadU32(oB, n)
		for i := 0; i < n; i++ {
			pos := int32(seeds[i])
			var acc int32
			for it := 0; it < iters; it++ {
				off := pos*17 + int32(it)
				if off < 0 {
					off = -off
				}
				row := off / width
				col := off % width
				if col < 4 {
					acc += row*3 + penalty*5 + penalty
				} else {
					idx := (row*width + col) & 8191
					acc += int32(img[idx]) + ((int32(it)*7 + 3) & 15)
				}
				pos += row
			}
			if got[i] != uint32(acc) {
				return errf("LC: out[%d] = %d, want %d", i, int32(got[i]), acc)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// PF — pathfinder (Rodinia). Row-by-row dynamic programming through shared
// memory with a barrier per row; the strip edges take a divergent clamp
// branch. Warp-uniform row bookkeeping provides scalar work.
// ---------------------------------------------------------------------------

const pfSrc = `
.kernel pathfinder
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // column
	shl   r3, r1, 2                   // shared offset of this thread
	shl   r4, r2, 2
	iadd  r5, $0, r4
	ldg   r6, [r5]                    // first row cost
	sts   [r3], r6
	bar
	mov   r7, 1                       // row
	mov   r8, $3                      // rows (uniform)
	mov   r9, $4                      // row stride bytes (uniform)
ROW:
	lds   r10, [r3]                   // centre
	isetp.eq p0, r1, 0
	@p0 bra LEFTEDGE
	lds   r11, [r3-4]                 // left
	bra LDONE
LEFTEDGE:
	mov   r11, r10                    //                      .. divergent
LDONE:
	mov   r12, %ntid.x
	iadd  r12, r12, -1
	isetp.eq p0, r1, r12
	@p0 bra RIGHTEDGE
	lds   r13, [r3+4]                 // right
	bra RDONE
RIGHTEDGE:
	mov   r13, r10                    //                      .. divergent
RDONE:
	imin  r14, r11, r13
	imin  r14, r14, r10
	imad  r15, r7, r9, r4             // &cost[row][col]      .. mixed
	iadd  r16, $0, r15
	ldg   r17, [r16]
	imul  r21, r7, 3                  // row hazard weight    .. scalar
	iadd  r21, r21, 1                 //                      .. scalar
	and   r21, r21, 15                //                      .. scalar
	iadd  r23, r21, 1                 // detour scale         .. scalar
	i2f   r23, r23                    //                      .. scalar
	rcp   r24, r23                    // scalar SFU
	fmul  r24, r24, 64.0              //                      .. scalar
	f2i   r25, r24                    //                      .. scalar
	iadd  r18, r14, r17               // new value
	iadd  r18, r18, r21               // + hazard weight
	iadd  r18, r18, r25               // + detour scale
	bar
	sts   [r3], r18
	bar
	iadd  r7, r7, 1                   //                      .. scalar
	isetp.lt p0, r7, r8               //                      .. scalar
	@p0 bra ROW
	lds   r19, [r3]
	iadd  r20, $1, r4
	stg   [r20], r19
	exit
`

func init() {
	register(Workload{
		Abbr: "PF", Name: "pathfinder", Suite: "Rodinia",
		Desc:  "grid DP with barriers and divergent edge clamping",
		Build: buildPF,
	})
}

func buildPF(scale int) (*Instance, error) {
	prog, err := asm.Assemble(pfSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const rows = 12
	ctas := 40 * scale
	cols := ctas * threadsPerCTA

	r := newRNG(25)
	cost := make([]uint32, rows*cols)
	for i := range cost {
		cost[i] = r.uint32n(10)
	}
	mem := kernel.NewMemory()
	cB := mem.AllocU32(cost)
	oB := mem.Alloc(cols * 4)

	lc := &kernel.LaunchConfig{
		Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1},
		SharedBytes: threadsPerCTA * 4,
	}
	lc.Params[0] = cB
	lc.Params[1] = oB
	lc.Params[3] = rows
	lc.Params[4] = uint32(cols * 4)

	check := func() error {
		got := mem.ReadU32(oB, cols)
		// DP with per-CTA strips: the clamp is at CTA boundaries.
		cur := make([]int32, cols)
		for c := 0; c < cols; c++ {
			cur[c] = int32(cost[c])
		}
		next := make([]int32, cols)
		for row := 1; row < rows; row++ {
			for c := 0; c < cols; c++ {
				tid := c % threadsPerCTA
				l, rr := cur[c], cur[c]
				if tid > 0 {
					l = cur[c-1]
				}
				if tid < threadsPerCTA-1 {
					rr = cur[c+1]
				}
				m := min3(l, rr, cur[c])
				weight := (int32(row)*3 + 1) & 15
				detour := int32(rcpf(float32(weight+1)) * 64)
				next[c] = m + int32(cost[row*cols+c]) + weight + detour
			}
			cur, next = next, cur
		}
		for c := 0; c < cols; c++ {
			if got[c] != uint32(cur[c]) {
				return errf("PF: out[%d] = %d, want %d", c, int32(got[c]), cur[c])
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

func min3(a, b, c int32) int32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// ---------------------------------------------------------------------------
// SR1 — srad_1 (Rodinia). Diffusion-coefficient pass: per-thread gradient
// work with vector SFU (rsqrt/rcp) and uniform lambda bookkeeping; almost
// non-divergent.
// ---------------------------------------------------------------------------

const sr1Src = `
.kernel srad1
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // J centre
	ldg   r6, [r4+4]                  // east
	ldg   r7, [r4-4]                  // west
	mov   r8, $2                      // lambda (uniform)
	mov   r9, $3                      // q0 (uniform)
	fsub  r10, r6, r5                 // dE
	fsub  r11, r7, r5                 // dW
	fmul  r12, r10, r10
	ffma  r12, r11, r11, r12          // grad^2
	fadd  r13, r12, 0.0001
	rsqrt r14, r13                    // vector SFU
	fmul  r15, r12, r14               // normalised gradient
	fmul  r16, r9, r8                 // uniform               .. scalar
	fadd  r17, r16, 1.0               //                       .. scalar
	fmul  r22, r16, 0.5               // lambda schedule       .. scalar
	ffma  r17, r22, 0.25, r17         //                       .. scalar
	rsqrt r23, r17                    // contrast norm   scalar SFU
	fmul  r24, r23, 0.0625            //                       .. scalar
	fadd  r17, r17, r24               //                       .. scalar
	fadd  r18, r15, r17
	rcp   r19, r18                    // c = 1/(1+q)  vector SFU
	fmul  r20, r19, r5
	iadd  r21, $1, r3
	stg   [r21], r20
	exit
`

func init() {
	register(Workload{
		Abbr: "SR1", Name: "srad_1", Suite: "Rodinia",
		Desc:  "SRAD diffusion coefficients; vector rsqrt/rcp",
		Build: buildSR1,
	})
}

func buildSR1(scale int) (*Instance, error) {
	prog, err := asm.Assemble(sr1Src)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 70 * scale
	n := ctas * threadsPerCTA

	r := newRNG(26)
	// Padded on both sides: kernel cell i is j[i+1].
	j := make([]float32, n+2)
	for i := range j {
		j[i] = r.floatRange(1, 2)
	}
	mem := kernel.NewMemory()
	jPad := mem.AllocF32(j)
	jB := jPad + 4
	oB := mem.Alloc(n * 4)

	const lambda = float32(0.5)
	const q0 = float32(0.25)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = jB
	lc.Params[1] = oB
	lc.Params[2] = math.Float32bits(lambda)
	lc.Params[3] = math.Float32bits(q0)

	check := func() error {
		got := mem.ReadF32(oB, n)
		for i := 0; i < n; i++ {
			centre := j[i+1]
			dE := j[i+2] - centre
			dW := j[i] - centre
			g2 := ffma(dW, dW, dE*dE)
			r14 := float32(1 / math.Sqrt(float64(g2+0.0001)))
			r15 := g2 * r14
			r16 := q0 * lambda
			r17 := r16 + 1
			r17 = ffma(r16*0.5, 0.25, r17)
			r23 := float32(1 / math.Sqrt(float64(r17)))
			r17 += r23 * 0.0625
			c := rcpf(r15 + r17)
			want := c * centre
			if got[i] != want {
				return errf("SR1: out[%d] = %v, want %v", i, got[i], want)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// SR2 — srad_2 (Rodinia). Update pass with a data-dependent threshold
// branch; the saturate path computes from uniform constants (divergent
// scalar).
// ---------------------------------------------------------------------------

const sr2Src = `
.kernel srad2
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // c (per thread)
	iadd  r6, $1, r3
	ldg   r7, [r6]                    // J (per thread)
	mov   r8, $2                      // lambda (uniform)
	mov   r9, $3                      // cap (uniform)
	fsetp.gt p0, r5, r9               // saturated?
	@p0 bra SATURATE
	fmul  r10, r5, r8                 //                      .. divergent vector
	ffma  r11, r10, r7, r7
	bra STORE
SATURATE:
	fmul  r12, r9, r8                 // uniform              .. divergent scalar
	fadd  r13, r12, r9                //                      .. divergent scalar
	fmul  r14, r13, 0.5               //                      .. divergent scalar
	ffma  r11, r14, 0.25, r13         //                      .. divergent scalar
STORE:
	iadd  r15, $4, r3
	stg   [r15], r11
	exit
`

func init() {
	register(Workload{
		Abbr: "SR2", Name: "srad_2", Suite: "Rodinia",
		Desc:  "SRAD update; uniform saturate path under divergence",
		Build: buildSR2,
	})
}

func buildSR2(scale int) (*Instance, error) {
	prog, err := asm.Assemble(sr2Src)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	ctas := 70 * scale
	n := ctas * threadsPerCTA

	r := newRNG(27)
	c := make([]float32, n)
	j := make([]float32, n)
	for i := range c {
		c[i] = r.floatRange(0, 1)
		j[i] = r.floatRange(1, 2)
	}
	mem := kernel.NewMemory()
	cB := mem.AllocF32(c)
	jB := mem.AllocF32(j)
	oB := mem.Alloc(n * 4)

	const lambda = float32(0.5)
	const cap = float32(0.7)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = cB
	lc.Params[1] = jB
	lc.Params[2] = math.Float32bits(lambda)
	lc.Params[3] = math.Float32bits(cap)
	lc.Params[4] = oB

	check := func() error {
		got := mem.ReadF32(oB, n)
		for i := 0; i < n; i++ {
			var want float32
			if c[i] > cap {
				r12 := cap * lambda
				r13 := r12 + cap
				r14 := r13 * 0.5
				want = ffma(r14, 0.25, r13)
			} else {
				r10 := c[i] * lambda
				want = ffma(r10, j[i], j[i])
			}
			if got[i] != want {
				return errf("SR2: out[%d] = %v, want %v", i, got[i], want)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}
