package workloads

import (
	"testing"
	"time"

	"gscalar/internal/core"
	"gscalar/internal/gpu"
	"gscalar/internal/sm"
)

// shape records the dynamic character each benchmark was built to have
// (the properties that drive Figures 1 and 8–12). Ranges are generous —
// they pin the *shape*, not exact numbers — but tight enough that a
// regression in divergence handling, detection or workload structure
// trips them.
type shape struct {
	divLo, divHi   float64 // divergent-instruction fraction
	eligLo, eligHi float64 // scalar-eligible fraction under G-Scalar
	divScalarMin   float64 // divergent-scalar eligibility (Fig 9 category)
	halfMin        float64 // half-warp scalar eligibility
}

var shapes = map[string]shape{
	"BT":  {0.00, 0.20, 0.10, 0.40, 0, 0},
	"BP":  {0.00, 0.05, 0.40, 0.70, 0, 0.05},
	"HW":  {0.35, 0.70, 0.30, 0.65, 0.15, 0},
	"HS":  {0.25, 0.60, 0.25, 0.60, 0.10, 0},
	"LC":  {0.30, 0.70, 0.05, 0.35, 0, 0},
	"PF":  {0.02, 0.30, 0.15, 0.50, 0, 0},
	"SR1": {0.00, 0.05, 0.15, 0.45, 0, 0},
	"SR2": {0.20, 0.55, 0.15, 0.45, 0.08, 0},
	"CC":  {0.05, 0.35, 0.40, 0.80, 0, 0},
	"LBM": {0.35, 0.70, 0.15, 0.45, 0.15, 0},
	"MG":  {0.00, 0.10, 0.10, 0.45, 0, 0},
	"MQ":  {0.00, 0.05, 0.40, 0.75, 0, 0},
	"SAD": {0.40, 0.80, 0.15, 0.50, 0.10, 0},
	"MM":  {0.00, 0.05, 0.30, 0.65, 0, 0.10},
	"MV":  {0.15, 0.50, 0.00, 0.10, 0, 0},
	"ST":  {0.00, 0.10, 0.30, 0.65, 0, 0},
	"ACF": {0.10, 0.45, 0.20, 0.55, 0, 0},
}

// TestAllWorkloadsTimed runs every workload through the timed simulator
// under the full G-Scalar architecture, validates functional output against
// the host golden model, and pins each benchmark's dynamic character.
func TestAllWorkloadsTimed(t *testing.T) {
	if testing.Short() {
		t.Skip("full timed runs")
	}
	cfg := gpu.DefaultConfig()
	for _, w := range All() {
		t.Run(w.Abbr, func(t *testing.T) {
			inst, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			res, err := gpu.Run(cfg, sm.GScalar(), inst.Prog, inst.Launch, inst.Mem)
			if err != nil {
				t.Fatal(err)
			}
			if inst.Check != nil {
				if err := inst.Check(); err != nil {
					t.Fatal(err)
				}
			}
			st := &res.Stats
			total := float64(st.WarpInsts)
			div := float64(st.Divergent) / total
			elig := float64(st.EligibleTotal()) / total
			divScalar := float64(st.EligDiv) / total
			half := float64(st.EligHalf) / total

			sh, ok := shapes[w.Abbr]
			if !ok {
				t.Fatalf("no shape entry for %s", w.Abbr)
			}
			// Figure 8 spot checks for the benchmarks the paper singles
			// out: CC/MQ scalar-rich reads; MG/MV partial-byte-rich with
			// few scalars; LBM's reads dominated by divergent accesses.
			switch w.Abbr {
			case "CC", "MQ":
				if f := st.RFReadFrac(core.AccessScalar); f < 0.4 {
					t.Errorf("scalar reads = %.2f, want >= 0.4", f)
				}
			case "MG", "MV":
				partial := st.RFReadFrac(core.Access3Byte) + st.RFReadFrac(core.Access2Byte)
				if partial < 0.3 {
					t.Errorf("2/3-byte reads = %.2f, want >= 0.3", partial)
				}
				if f := st.RFReadFrac(core.AccessScalar); f > 0.35 {
					t.Errorf("scalar reads = %.2f, want few (< 0.35)", f)
				}
			case "LBM":
				if f := st.RFReadFrac(core.AccessDivergent); f < 0.4 {
					t.Errorf("divergent-class reads = %.2f, want >= 0.4", f)
				}
			}
			if div < sh.divLo || div > sh.divHi {
				t.Errorf("divergent = %.2f, want [%.2f, %.2f]", div, sh.divLo, sh.divHi)
			}
			if elig < sh.eligLo || elig > sh.eligHi {
				t.Errorf("eligible = %.2f, want [%.2f, %.2f]", elig, sh.eligLo, sh.eligHi)
			}
			if divScalar < sh.divScalarMin {
				t.Errorf("divergent-scalar = %.2f, want >= %.2f", divScalar, sh.divScalarMin)
			}
			if half < sh.halfMin {
				t.Errorf("half-scalar = %.2f, want >= %.2f", half, sh.halfMin)
			}
			t.Logf("%s: cycles=%d warpinsts=%d IPC=%.2f P=%.1fW elig=%.1f%% div=%.1f%% wall=%v",
				w.Abbr, res.Cycles, st.WarpInsts, res.IPC, res.Power.AvgPowerW,
				100*elig, 100*div, time.Since(start).Round(time.Millisecond))
		})
	}
}
