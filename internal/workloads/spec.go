package workloads

import (
	"fmt"
	"strings"

	"gscalar/internal/gen"
)

// SpecKind says which branch of the workload-spec grammar a spec took.
type SpecKind uint8

const (
	SpecBuiltin SpecKind = iota // a Table 2 abbreviation ("HS")
	SpecTrace                   // "trace:<path>" — replay a captured trace
	SpecGen                     // "gen:<dials>" — synthetic generated kernel
)

func (k SpecKind) String() string {
	switch k {
	case SpecTrace:
		return "trace"
	case SpecGen:
		return "gen"
	}
	return "builtin"
}

// GenPrefix marks a workload spec as a generated synthetic kernel:
// "gen:div=0.3,sfu=0.15,..." (see internal/gen for the dial schema).
const GenPrefix = "gen:"

// Spec is a parsed workload spec — the single grammar shared by every
// layer that accepts a workload string (Session, the experiment suite,
// the serve submit API, both CLIs). Exactly one of Abbr / Path / Gen is
// meaningful, selected by Kind.
type Spec struct {
	Kind SpecKind
	Abbr string     // SpecBuiltin: the (not yet registry-checked) name
	Path string     // SpecTrace: trace file path
	Gen  gen.Params // SpecGen: parsed, validated dial vector
}

// ParseSpec parses a workload spec string. It is the only spec parser:
// Resolve, canonical workload keys, and serve submission validation are
// all built on it.
//
// Grammar:
//
//	spec    = builtin | trace | gen
//	builtin = <Table 2 abbreviation>          (registry-checked by Resolve)
//	trace   = "trace:" path
//	gen     = "gen:" [dial ("," dial)*]       dial = name "=" value
//
// Gen dials are validated here — unknown names, malformed or out-of-range
// values and cross-dial constraint violations fail with a typed
// *gen.DialError identifying the parameter. Builtin names are checked
// against the registry at Resolve time so the error can list what is
// valid.
func ParseSpec(spec string) (Spec, error) {
	switch {
	case strings.HasPrefix(spec, TracePrefix):
		return Spec{Kind: SpecTrace, Path: spec[len(TracePrefix):]}, nil
	case strings.HasPrefix(spec, GenPrefix):
		p, err := gen.ParseDials(spec[len(GenPrefix):])
		if err != nil {
			return Spec{}, fmt.Errorf("workload spec %q: %w", spec, err)
		}
		return Spec{Kind: SpecGen, Gen: p}, nil
	}
	return Spec{Kind: SpecBuiltin, Abbr: spec}, nil
}

// Canonical renders the spec in canonical form: parse(canonical(s)) is a
// fixed point. Builtin and trace specs are identity (a trace's content
// canonicalization — the file hash — happens at Source.Key, after the
// file is read); gen specs normalize the dial list (defaults dropped,
// name-sorted, shortest number formatting), so every spelling of the same
// dial vector shares one canonical string and therefore one cache key.
func (s Spec) Canonical() string {
	switch s.Kind {
	case SpecTrace:
		return TracePrefix + s.Path
	case SpecGen:
		return GenPrefix + s.Gen.Canonical()
	}
	return s.Abbr
}

// String returns the canonical form.
func (s Spec) String() string { return s.Canonical() }

// SplitList splits a comma-separated list of workload specs, keeping
// gen specs — whose dial lists themselves contain commas — intact:
// "HS,gen:div=0.3,occ=0.2,LBM" is three specs, not four. After a "gen:"
// element, a token of the form name=value continues that element's dial
// list; anything else (an abbreviation, a trace:<path>, another gen:)
// starts the next spec. Empty tokens between separators are dropped.
func SplitList(s string) []string {
	var specs []string
	inGen := false
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if inGen && isDialToken(tok) {
			specs[len(specs)-1] += "," + tok
			continue
		}
		specs = append(specs, tok)
		inGen = strings.HasPrefix(tok, GenPrefix)
	}
	return specs
}

// isDialToken reports whether tok looks like a name=value gen dial
// ("div=0.3") rather than the start of a new spec. Dial names are
// lowercase alphanumerics; builtin abbreviations and the trace:/gen:
// prefixes never contain '='.
func isDialToken(tok string) bool {
	name, _, ok := strings.Cut(tok, "=")
	if !ok || name == "" {
		return false
	}
	for _, c := range name {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}
