package workloads

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"gscalar/internal/gen"
)

// TestParseSpec walks the three branches of the spec grammar and the
// canonical forms they produce.
func TestParseSpec(t *testing.T) {
	cases := []struct {
		in    string
		kind  SpecKind
		canon string
	}{
		{"HS", SpecBuiltin, "HS"},
		{"NOPE", SpecBuiltin, "NOPE"}, // registry check is Resolve's job
		{"trace:/tmp/x.gstr", SpecTrace, "trace:/tmp/x.gstr"},
		{"trace:", SpecTrace, "trace:"},
		{"gen:", SpecGen, "gen:"},
		{"gen:div=0.30,sfu=0.05", SpecGen, "gen:div=0.3"}, // defaults dropped, shortest formatting
		{"gen:seed=7,div=0.3", SpecGen, "gen:div=0.3,seed=7"},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if s.Kind != c.kind {
			t.Errorf("ParseSpec(%q).Kind = %v, want %v", c.in, s.Kind, c.kind)
		}
		if got := s.Canonical(); got != c.canon {
			t.Errorf("ParseSpec(%q).Canonical() = %q, want %q", c.in, got, c.canon)
		}
	}
}

// TestParseSpecGenErrors: bad dials fail at parse time with the typed
// *gen.DialError threaded through, and the message names the full spec.
func TestParseSpecGenErrors(t *testing.T) {
	for _, in := range []string{"gen:bogus=1", "gen:div=2", "gen:sfu=0.4,mem=0.4"} {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error", in)
			continue
		}
		var de *gen.DialError
		if !errors.As(err, &de) {
			t.Errorf("ParseSpec(%q): %v does not wrap *gen.DialError", in, err)
		}
		if !strings.Contains(err.Error(), in) {
			t.Errorf("ParseSpec(%q) error %q does not name the spec", in, err)
		}
	}
}

// TestResolveGen: a gen spec resolves to a Source whose Key is the
// canonical spelling — two spellings of one dial vector share a cache
// identity — and whose Build yields a runnable instance.
func TestResolveGen(t *testing.T) {
	a, err := Resolve("gen:div=0.30,seed=07,sfu=0.05")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve("gen:seed=7,div=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("equivalent specs got keys %q and %q", a.Key(), b.Key())
	}
	if a.Key() != "gen:div=0.3,seed=7" {
		t.Errorf("key = %q", a.Key())
	}
	if _, ok := GenParamsOf(a); !ok {
		t.Error("GenParamsOf failed on a gen source")
	}
	inst, err := a.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Prog == nil || inst.Launch == nil || inst.Mem == nil {
		t.Fatalf("incomplete instance: %+v", inst)
	}
}

// FuzzParseSpec holds the two grammar invariants under arbitrary input:
// the parser never panics, and parse → canonical → parse is a fixed point
// (the canonical form parses to a spec with the same canonical form).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"HS", "", "trace:a/b.gstr", "gen:", "gen:div=0.3,sfu=0.2",
		"gen:seed=4294967295", "gen:div=0.1,div=0.2", "gen:x=",
		"gen:div=1e-3", "gen:occ=0.05,coal=0,mem=0.45", "trace:", "gen:=,=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		canon := s.Canonical()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if got := s2.Canonical(); got != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		if s2.Kind != s.Kind {
			t.Fatalf("kind changed across canonicalization: %v -> %v", s.Kind, s2.Kind)
		}
	})
}

// TestSplitList: comma-separated spec lists keep gen dial lists intact —
// the CLI -bench splitter must not chop "gen:div=0.3,occ=0.2" into two
// bogus specs.
func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"HS", []string{"HS"}},
		{"HS,LBM,MG", []string{"HS", "LBM", "MG"}},
		{"gen:div=0.3,occ=0.2", []string{"gen:div=0.3,occ=0.2"}},
		{"HS,gen:div=0.3,occ=0.2,LBM", []string{"HS", "gen:div=0.3,occ=0.2", "LBM"}},
		{"gen:div=0.3,gen:sfu=0.2", []string{"gen:div=0.3", "gen:sfu=0.2"}},
		{"gen:div=0.3,trace:a.gstr", []string{"gen:div=0.3", "trace:a.gstr"}},
		{"gen:,HS", []string{"gen:", "HS"}},
		{" HS , LBM ,", []string{"HS", "LBM"}},
		{"gen:seed=7,r1=0.1,SR1", []string{"gen:seed=7,r1=0.1", "SR1"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
