package workloads

import (
	"math"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// f32 helpers mirroring the simulator's FP semantics (FFMA uses a float64
// intermediate, i.e. fused), so host golden models match bit-for-bit.
func ffma(a, b, c float32) float32 { return float32(float64(a)*float64(b) + float64(c)) }
func ex2f(x float32) float32       { return float32(math.Exp2(float64(x))) }
func rcpf(x float32) float32       { return 1 / x }

// ---------------------------------------------------------------------------
// BP — backprop (Rodinia). Compute-intensive weight-update loop: the paper
// notes each thread repeatedly computes powers of 2.0 with uniform
// arguments, making BP's special-function instructions overwhelmingly
// scalar-eligible; BP shows the paper's largest (+79 %) efficiency gain.
// A per-half-warp neuron-group factor adds half-warp-scalar work (BP has
// the largest half-scalar share in Figure 9).
// ---------------------------------------------------------------------------

const bpSrc = `
.kernel backprop
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // gid
	shl   r3, r2, 2
	iadd  r4, $0, r3                  // &input[gid]
	iadd  r5, $1, r3                  // &weight[gid]
	ldg   r6, [r4]                    // x
	ldg   r7, [r5]                    // w
	mov   r8, 0                       // epoch
	mov   r9, $2                      // epochs (uniform)
	mov   r10, $3                     // eta (uniform)
	shr   r24, r1, 4                  // neuron group = tid/16 (half-warp uniform)
	i2f   r25, r24
LOOP:
	i2f   r11, r8                     // t = float(e)          .. scalar
	fneg  r12, r11                    //                       .. scalar
	ex2   r13, r12                    // momentum = 2^-e       .. scalar SFU
	ffma  r14, r11, r11, 1.0          // 1 + t^2               .. scalar
	rcp   r15, r14                    // lrate = 1/(1+t^2)     .. scalar SFU
	fmul  r16, r13, r10               // momentum*eta          .. scalar
	ffma  r26, r25, 0.0625, r16       // group bias            .. half-scalar
	fmul  r27, r26, r15               // bias*lrate            .. half-scalar
	fmul  r17, r7, r6                 // g = w*x               .. vector
	fabs  r18, r17
	fadd  r19, r18, 1.0
	rcp   r20, r19                    // sigma = 1/(1+|g|)     .. vector SFU
	fsub  r21, r20, 0.5               // err
	fmul  r22, r21, r27               // err * rate
	ffma  r7, r22, r6, r7             // w += delta*x          .. vector
	iadd  r8, r8, 1                   //                       .. scalar
	isetp.lt p0, r8, r9               //                       .. scalar
	@p0 bra LOOP
	stg   [r5], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "BP", Name: "backprop", Suite: "Rodinia",
		Desc:  "neural-network weight update; uniform-argument SFU loop",
		Build: buildBP,
	})
}

func buildBP(scale int) (*Instance, error) {
	prog, err := asm.Assemble(bpSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const epochs = 12
	ctas := 60 * scale
	n := ctas * threadsPerCTA

	r := newRNG(11)
	mem := kernel.NewMemory()
	xs := make([]float32, n)
	ws := make([]float32, n)
	for i := range xs {
		xs[i] = r.floatRange(-1, 1)
		ws[i] = r.floatRange(-0.25, 0.25)
	}
	xb := mem.AllocF32(xs)
	wb := mem.AllocF32(ws)
	const eta = float32(0.125)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = xb
	lc.Params[1] = wb
	lc.Params[2] = epochs
	lc.Params[3] = math.Float32bits(eta)

	check := func() error {
		got := mem.ReadF32(wb, n)
		for i := 0; i < n; i++ {
			w := ws[i]
			group := float32((i % threadsPerCTA) / 16)
			for e := 0; e < epochs; e++ {
				t := float32(e)
				momentum := ex2f(-t)
				lrate := rcpf(ffma(t, t, 1))
				rate := momentum * eta
				bias := ffma(group, 0.0625, rate)
				r27 := bias * lrate
				g := w * xs[i]
				sigma := rcpf(float32(math.Abs(float64(g))) + 1)
				errv := sigma - 0.5
				w = ffma(errv*r27, xs[i], w)
			}
			if got[i] != w {
				return errf("BP: w[%d] = %v, want %v", i, got[i], w)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// MQ — mri-q (Parboil). Non-divergent, SFU-heavy: the k-space trajectory is
// loaded through warp-uniform addresses (scalar memory instructions), the
// per-voxel phase and sin/cos are vector work.
// ---------------------------------------------------------------------------

const mqSrc = `
.kernel mriq
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // voxel
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                    // x
	iadd  r6, $1, r3
	ldg   r7, [r6]                    // y
	mov   r10, 0                      // k
	mov   r11, $4                     // K (uniform)
	mov   r12, $3                     // ktraj base (uniform)
	mov   r13, 0                      // accR
	mov   r14, 0                      // accI
LOOP:
	shl   r15, r10, 3                 // k*8                    .. scalar
	iadd  r16, r12, r15               // &ktraj[k]              .. scalar
	ldg   r17, [r16]                  // kx    (scalar load)
	ldg   r18, [r16+4]                // phi   (scalar load)
	fmul  r26, r17, r18               // sample weighting       .. scalar
	fadd  r26, r26, 2.0               //                        .. scalar
	lg2   r27, r26                    // scalar SFU
	fmul  r27, r27, r18               // weighted phi           .. scalar
	fmul  r21, r17, r5                // kx*x                   .. vector
	ffma  r21, r18, r7, r21           // phase                  .. vector
	sin   r22, r21                    // vector SFU
	cos   r23, r21                    // vector SFU
	ffma  r13, r27, r23, r13
	ffma  r14, r27, r22, r14
	iadd  r10, r10, 1                 //                        .. scalar
	isetp.lt p0, r10, r11             //                        .. scalar
	@p0 bra LOOP
	iadd  r24, $5, r3
	stg   [r24], r13
	iadd  r25, $6, r3
	stg   [r25], r14
	exit
`

func init() {
	register(Workload{
		Abbr: "MQ", Name: "mri-q", Suite: "Parboil",
		Desc:  "MRI Q computation; uniform k-space loads, vector sin/cos",
		Build: buildMQ,
	})
}

func buildMQ(scale int) (*Instance, error) {
	prog, err := asm.Assemble(mqSrc)
	if err != nil {
		return nil, err
	}
	const threadsPerCTA = 256
	const kSamples = 24
	ctas := 50 * scale
	n := ctas * threadsPerCTA

	r := newRNG(12)
	mem := kernel.NewMemory()
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = r.floatRange(-2, 2)
		ys[i] = r.floatRange(-2, 2)
	}
	ktraj := make([]float32, 2*kSamples)
	for i := range ktraj {
		ktraj[i] = r.floatRange(-1, 1)
	}
	xb := mem.AllocF32(xs)
	yb := mem.AllocF32(ys)
	kb := mem.AllocF32(ktraj)
	outR := mem.Alloc(n * 4)
	outI := mem.Alloc(n * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: threadsPerCTA, Y: 1}}
	lc.Params[0] = xb
	lc.Params[1] = yb
	lc.Params[3] = kb
	lc.Params[4] = kSamples
	lc.Params[5] = outR
	lc.Params[6] = outI

	check := func() error {
		gotR := mem.ReadF32(outR, n)
		gotI := mem.ReadF32(outI, n)
		for i := 0; i < n; i++ {
			var accR, accI float32
			for k := 0; k < kSamples; k++ {
				kx, phi := ktraj[2*k], ktraj[2*k+1]
				w := float32(math.Log2(float64(kx*phi+2))) * phi
				phase := ffma(phi, ys[i], kx*xs[i])
				sn := float32(math.Sin(float64(phase)))
				cs := float32(math.Cos(float64(phase)))
				accR = ffma(w, cs, accR)
				accI = ffma(w, sn, accI)
			}
			if gotR[i] != accR || gotI[i] != accI {
				return errf("MQ: out[%d] = (%v,%v), want (%v,%v)", i, gotR[i], gotI[i], accR, accI)
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// MM — sgemm (Parboil). Tiled dense matrix multiply with shared memory and
// barriers. Non-divergent; the A-tile shared loads use per-row (16-thread
// uniform) addresses, exercising half-warp scalar detection, and loop/tile
// bookkeeping is warp-uniform.
// ---------------------------------------------------------------------------

const mmSrc = `
.kernel sgemm
	mov   r1, %tid.x                  // tx
	mov   r2, %tid.y                  // ty
	imad  r3, %ctaid.x, 16, r1        // col
	imad  r4, %ctaid.y, 16, r2        // row
	mov   r5, $3                      // N (uniform)
	mov   r6, 0                       // k0
	mov   r7, 0                       // acc
	imad  r8, r2, 16, r1              // linear thread
	shl   r9, r8, 2                   // As offset
	iadd  r10, r9, 1024               // Bs offset
TILE:
	iadd  r11, r6, r1                 // k0+tx
	imad  r12, r4, r5, r11            // row*N + k0+tx
	shl   r13, r12, 2
	iadd  r14, $0, r13
	ldg   r15, [r14]                  // A[row, k0+tx]
	sts   [r9], r15
	iadd  r16, r6, r2                 // k0+ty (16-thread uniform)
	imad  r17, r16, r5, r3
	shl   r18, r17, 2
	iadd  r19, $1, r18
	ldg   r20, [r19]                  // B[k0+ty, col]
	sts   [r10], r20
	bar
	mov   r21, 0                      // kk
INNER:
	imad  r22, r2, 16, r21            // ty*16+kk (16-thread uniform)
	shl   r23, r22, 2
	lds   r24, [r23]                  // As[ty][kk] (half-warp-uniform address)
	imad  r25, r21, 16, r1            // kk*16+tx
	shl   r26, r25, 2
	lds   r27, [r26+1024]             // Bs[kk][tx]
	ffma  r7, r24, r27, r7
	iadd  r21, r21, 1
	isetp.lt p0, r21, 16
	@p0 bra INNER
	bar
	iadd  r6, r6, 16
	isetp.lt p0, r6, r5
	@p0 bra TILE
	imad  r28, r4, r5, r3
	shl   r29, r28, 2
	iadd  r30, $2, r29
	stg   [r30], r7
	exit
`

func init() {
	register(Workload{
		Abbr: "MM", Name: "sgemm", Suite: "Parboil",
		Desc:  "tiled dense matrix multiply with shared memory",
		Build: buildMM,
	})
}

func buildMM(scale int) (*Instance, error) {
	prog, err := asm.Assemble(mmSrc)
	if err != nil {
		return nil, err
	}
	n := 80 // matrix dim; tiles of 16
	if scale > 1 {
		n = 16 * (5 + 2*scale) // grows with scale
	}
	r := newRNG(13)
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = r.floatRange(-1, 1)
		b[i] = r.floatRange(-1, 1)
	}
	mem := kernel.NewMemory()
	ab := mem.AllocF32(a)
	bb := mem.AllocF32(b)
	cb := mem.Alloc(n * n * 4)

	lc := &kernel.LaunchConfig{
		Grid:        kernel.Dim{X: n / 16, Y: n / 16},
		Block:       kernel.Dim{X: 16, Y: 16},
		SharedBytes: 2048,
	}
	lc.Params[0] = ab
	lc.Params[1] = bb
	lc.Params[2] = cb
	lc.Params[3] = uint32(n)

	check := func() error {
		got := mem.ReadF32(cb, n*n)
		for row := 0; row < n; row++ {
			for col := 0; col < n; col++ {
				var acc float32
				for k := 0; k < n; k++ {
					acc = ffma(a[row*n+k], b[k*n+col], acc)
				}
				if g := got[row*n+col]; g != acc {
					return errf("MM: C[%d,%d] = %v, want %v", row, col, g, acc)
				}
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}

// ---------------------------------------------------------------------------
// ST — stencil (Parboil). Non-divergent 5-point Jacobi sweep with a small
// uniform coefficient-schedule loop; neighbour addresses share their upper
// bytes (the 3-byte RF access class).
// ---------------------------------------------------------------------------

const stSrc = `
.kernel stencil
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // gid
	shr   r5, r2, 7                   // row (W=128)
	// Top/bottom rows exit as whole warps (W is a warp multiple), so the
	// exits are non-divergent; edge columns compute unused values into
	// their own output slot rather than diverging.
	isetp.eq p0, r5, 0
	@p0 exit
	mov   r30, $3                     // H (uniform)
	iadd  r7, r30, -1
	isetp.eq p0, r5, r7
	@p0 exit
	shl   r8, r2, 2
	iadd  r9, $0, r8
	ldg   r10, [r9]                   // centre
	ldg   r11, [r9+4]                 // east
	ldg   r12, [r9-4]                 // west
	ldg   r13, [r9+512]               // south
	ldg   r14, [r9-512]               // north
	mov   r15, $4                     // c0 (uniform)
	mov   r16, $5                     // c1 (uniform)
	fadd  r17, r11, r12
	fadd  r18, r13, r14
	fadd  r17, r17, r18               // neighbour sum
	mov   r19, 0                      // acc
	mov   r20, 0                      // step
LOOP:
	i2f   r21, r20                    //                 .. scalar
	ffma  r22, r21, 0.0078125, r16    // c1 + step/128   .. scalar
	fadd  r25, r21, 2.0               //                 .. scalar
	rcp   r26, r25                    // damping   scalar SFU
	ffma  r22, r26, 0.03125, r22      //                 .. scalar
	fmul  r23, r17, r22               //                 .. vector
	ffma  r23, r10, r15, r23          //                 .. vector
	fadd  r19, r19, r23
	iadd  r20, r20, 1                 //                 .. scalar
	isetp.lt p0, r20, 4               //                 .. scalar
	@p0 bra LOOP
	iadd  r24, $1, r8
	stg   [r24], r19
	exit
`

func init() {
	register(Workload{
		Abbr: "ST", Name: "stencil", Suite: "Parboil",
		Desc:  "5-point Jacobi stencil with uniform coefficient schedule",
		Build: buildST,
	})
}

func buildST(scale int) (*Instance, error) {
	prog, err := asm.Assemble(stSrc)
	if err != nil {
		return nil, err
	}
	const w = 128
	h := 96 * scale
	n := w * h
	r := newRNG(14)
	in := make([]float32, n)
	for i := range in {
		in[i] = r.floatRange(0, 100)
	}
	mem := kernel.NewMemory()
	inB := mem.AllocF32(in)
	outB := mem.Alloc(n * 4)

	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: n / 128, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
	lc.Params[0] = inB
	lc.Params[1] = outB
	lc.Params[3] = uint32(h)
	lc.Params[4] = math.Float32bits(0.6)
	lc.Params[5] = math.Float32bits(0.1)

	check := func() error {
		got := mem.ReadF32(outB, n)
		for row := 1; row < h-1; row++ {
			for col := 1; col < w-1; col++ {
				i := row*w + col
				sum := (in[i+1] + in[i-1]) + (in[i+w] + in[i-w])
				var acc float32
				for step := 0; step < 4; step++ {
					c1 := ffma(float32(step), 0.0078125, 0.1)
					c1 = ffma(rcpf(float32(step)+2), 0.03125, c1)
					acc += ffma(in[i], 0.6, sum*c1)
				}
				if got[i] != acc {
					return errf("ST: out[%d,%d] = %v, want %v", row, col, got[i], acc)
				}
			}
		}
		return nil
	}
	return &Instance{Prog: prog, Launch: lc, Mem: mem, Check: check}, nil
}
