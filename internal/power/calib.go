package power

// Energies is the event-energy calibration table, in picojoules per event
// unless noted. The defaults (DefaultEnergies) are chosen so the baseline
// GTX-480-like configuration reproduces the component power shares the
// paper and GPUWattch report; the paper's conclusions are about *ratios*
// between architectures, which these shares anchor. A calibration test
// (internal/power + the facade's calibration test) pins the shares.
type Energies struct {
	// Front end, per issued warp instruction.
	FrontEndPerInst float64
	// Operand collector, per vector operand collected.
	OCPerOperand float64

	// Register file. A bank holds 8×128-bit single-port arrays; a full
	// vector-register access activates all 8.
	RFArrayAccess float64 // one 128-bit array activation
	// BVR/EBR small-array access: the paper measured 5.2 % of a full
	// 1024-bit bank access (§5.1).
	RFBVRAccess    float64
	RFCrossbarByte float64 // per byte moved through the crossbar
	// Dedicated scalar-bank access of the Gilani baseline (comparable to a
	// BVR access).
	RFScalarBankAccess float64

	// Execution, per active lane per operation.
	LaneInt float64
	LaneFP  float64
	LaneSFU float64 // special-function op (3–24× an ALU op, per [2])
	LaneDiv float64 // long-latency integer divide

	// Compressor/decompressor, per use (Table 3: ~16 mW at 1.4 GHz ≈ 11.6
	// pJ per cycle per instance; one compression or decompression is one
	// cycle of activity).
	CompressorUse   float64
	DecompressorUse float64
	// BDI comparator codec (Warped-Compression): the paper reports our
	// codec+wires consume only 19–30 % of prior work's, so the BDI codec
	// costs a multiple of ours.
	BDICodecUse float64

	// Memory system.
	AGUPerLane   float64 // address generation per active lane
	SharedAccess float64 // per 128-byte shared-memory access
	L1Access     float64 // per 128-byte L1 transaction
	L2Access     float64
	NoCPerByte   float64
	DRAMPerByte  float64

	// Static power (watts).
	StaticPerSM  float64 // leakage + clock per SM
	StaticUncore float64 // L2, NoC, memory controllers, DRAM background
	// Added static of the G-Scalar codec structures per SM (paper: the
	// codec adds 0.32 W / 1.6 % per SM total; a slice of that is leakage).
	CodecStaticPerSM float64
	// Added static of the BVR/EBR arrays per SM (the RF grows ~3 %).
	BVRStaticPerSM float64
}

// DefaultEnergies returns the calibrated 40 nm-class table.
func DefaultEnergies() Energies {
	return Energies{
		FrontEndPerInst: 300,
		OCPerOperand:    60,

		RFArrayAccess:      38,
		RFBVRAccess:        15.8, // 5.2 % of 8×38 pJ
		RFCrossbarByte:     1.3,
		RFScalarBankAccess: 15.8,

		LaneInt: 40,
		LaneFP:  70,
		LaneSFU: 700, // ~10–18× an ALU lane op, within the paper's 3-24x band
		LaneDiv: 240,

		CompressorUse:   11.6, // Table 3 synthesis numbers
		DecompressorUse: 11.3,
		BDICodecUse:     42, // ours is ~19–30 % of W-C's codec+wires

		AGUPerLane:   15,
		SharedAccess: 45,
		L1Access:     80,
		L2Access:     220,
		NoCPerByte:   1.0,
		DRAMPerByte:  18,

		StaticPerSM:      1.45,
		StaticUncore:     21,
		CodecStaticPerSM: 0.05,
		BVRStaticPerSM:   0.06,
	}
}

// StaticW returns the total static power of a chip with numSMs SMs.
// withCodec adds the G-Scalar codec and BVR/EBR array leakage.
func (e Energies) StaticW(numSMs int, withCodec bool) float64 {
	w := e.StaticUncore + float64(numSMs)*e.StaticPerSM
	if withCodec {
		w += float64(numSMs) * (e.CodecStaticPerSM + e.BVRStaticPerSM)
	}
	return w
}
