package power

import (
	"math"
	"strings"
	"testing"
)

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.Add(CompExecALU, 100)
	m.AddN(CompExecALU, 3, 50)
	if got := m.Energy(CompExecALU); got != 250 {
		t.Fatalf("energy = %v", got)
	}
	m.Add(CompRFArray, 40)
	m.Add(CompRFCrossbar, 10)
	m.Add(CompRFBVR, 5)
	m.Add(CompCodec, 5)
	if got := m.RFDynamic(); got != 60 {
		t.Fatalf("RF dynamic = %v", got)
	}
	if got := m.TotalDynamic(); got != 310 {
		t.Fatalf("total dynamic = %v", got)
	}
}

func TestFinishPowerMath(t *testing.T) {
	var m Meter
	// 1e12 pJ = 1 J of dynamic energy over 1e9 cycles at 1 GHz = 1 s.
	m.Add(CompExecALU, 1e12)
	b := m.Finish(1e9, 1e9, 50)
	if math.Abs(b.Seconds-1) > 1e-12 {
		t.Fatalf("seconds = %v", b.Seconds)
	}
	if math.Abs(b.AvgPowerW-51) > 1e-9 {
		t.Fatalf("power = %v, want 51", b.AvgPowerW)
	}
	if math.Abs(b.PerComp[CompStatic]-50) > 1e-9 {
		t.Fatalf("static = %v", b.PerComp[CompStatic])
	}
	if math.Abs(b.Share(CompExecALU)-1.0/51) > 1e-9 {
		t.Fatalf("share = %v", b.Share(CompExecALU))
	}
}

func TestBreakdownString(t *testing.T) {
	var m Meter
	m.Add(CompExecSFU, 5e11)
	b := m.Finish(1e9, 1e9, 10)
	s := b.String()
	if !strings.Contains(s, "exec_sfu") || !strings.Contains(s, "static") {
		t.Fatalf("breakdown string missing components:\n%s", s)
	}
}

func TestDefaultEnergiesSanity(t *testing.T) {
	e := DefaultEnergies()
	// SFU lane energy must sit inside the paper's 3-24x band over ALU ops.
	ratio := e.LaneSFU / e.LaneFP
	if ratio < 3 || ratio > 24 {
		t.Errorf("SFU/FP ratio %.1f outside the paper's 3-24x band", ratio)
	}
	// BVR access = 5.2% of a full 8-array bank access (§5.1).
	frac := e.RFBVRAccess / (8 * e.RFArrayAccess)
	if math.Abs(frac-BVREBRAccessFrac) > 0.005 {
		t.Errorf("BVR access fraction %.3f, want %.3f", frac, BVREBRAccessFrac)
	}
	// Our codec energy is 19-30% of the BDI comparator's (§5.1).
	cfrac := e.CompressorUse / e.BDICodecUse
	if cfrac < 0.19 || cfrac > 0.30 {
		t.Errorf("codec ratio %.2f outside 0.19..0.30", cfrac)
	}
	// Memory hierarchy energies must be ordered.
	if !(e.L1Access < e.L2Access && e.L2Access < e.DRAMPerByte*128) {
		t.Error("memory hierarchy energies not ordered L1 < L2 < DRAM")
	}
}

func TestStaticW(t *testing.T) {
	e := DefaultEnergies()
	base := e.StaticW(15, false)
	with := e.StaticW(15, true)
	if with <= base {
		t.Fatal("codec static not added")
	}
	if d := with - base; math.Abs(d-15*(e.CodecStaticPerSM+e.BVRStaticPerSM)) > 1e-9 {
		t.Fatalf("codec static delta = %v", d)
	}
}

func TestTable3Cost(t *testing.T) {
	c := Table3Cost()
	// The paper: 16 decompressors + 4 compressors per SM cost ~0.32 W and
	// ~0.16 mm².
	if math.Abs(c.TotalPowerWPerSM-0.3186) > 0.01 {
		t.Errorf("codec power = %v W, want ~0.32", c.TotalPowerWPerSM)
	}
	if math.Abs(c.TotalAreaMM2PerSM-0.1638) > 0.01 {
		t.Errorf("codec area = %v mm2, want ~0.16", c.TotalAreaMM2PerSM)
	}
	if c.DecompressorsPerSM != 16 || c.CompressorsPerSM != 4 {
		t.Errorf("instances = %d/%d", c.DecompressorsPerSM, c.CompressorsPerSM)
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Component(0); c < NumComponents; c++ {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "component(") {
			t.Errorf("component %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
