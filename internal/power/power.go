// Package power implements the event-energy accounting model that stands in
// for GPUWattch: every microarchitectural event (an SRAM array access, an
// execution-lane operation, a DRAM transaction, …) deposits energy into a
// per-component accumulator, and static power integrates over simulated
// time. The absolute calibration (calib.go) is chosen so the *baseline*
// architecture reproduces the component shares the paper quotes (execution
// units ≈24 % and register file ≈16 % of chip power on compute-intensive
// workloads; SFU ops cost 3–24× an ALU op), which is what anchors the
// paper's relative results.
package power

import (
	"fmt"
	"sort"
	"strings"

	"gscalar/internal/telemetry"
)

// Component identifies one energy-accounting bucket.
type Component int

// Components. RF-related buckets are split so Figure 12 (RF dynamic power)
// can be reported exactly: CompRFArray + CompRFCrossbar + CompRFBVR +
// CompRFScalarBank + CompCodec form the "register file" aggregate.
const (
	CompFrontEnd Component = iota // fetch, decode, schedule, scoreboard
	CompOperandCollector
	CompRFArray    // main SRAM array accesses
	CompRFCrossbar // bytes moved between banks and collectors
	CompRFBVR      // base-value/encoding-bit small-array accesses
	CompRFScalarBank
	CompCodec // compressor + decompressor dynamic
	CompExecALU
	CompExecSFU
	CompLSU // address generation + memory pipeline
	CompSharedMem
	CompL1
	CompL2
	CompNoC
	CompDRAM
	CompStatic
	NumComponents
)

var componentNames = [NumComponents]string{
	"frontend", "opcollector", "rf_array", "rf_crossbar", "rf_bvr",
	"rf_scalarbank", "codec", "exec_alu", "exec_sfu", "lsu",
	"sharedmem", "l1", "l2", "noc", "dram", "static",
}

// String returns the component's short name.
func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// ComponentNames returns the short names of every component in index order,
// for labelling per-component exports.
func ComponentNames() []string {
	names := make([]string, NumComponents)
	copy(names, componentNames[:])
	return names
}

// Meter accumulates energy per component. The zero value is ready to use.
type Meter struct {
	pJ [NumComponents]float64
}

// Add deposits pJ picojoules into component c.
func (m *Meter) Add(c Component, pJ float64) { m.pJ[c] += pJ }

// AddN deposits n × pJPerUnit into component c.
func (m *Meter) AddN(c Component, n int, pJPerUnit float64) {
	m.pJ[c] += float64(n) * pJPerUnit
}

// Merge adds every component total of o into m. The phased simulation gives
// each SM a private meter (so the hot loop is contention-free) and merges
// them in ascending SM-id order at the end of a launch; a fixed merge order
// keeps the floating-point sums bit-identical for any worker count.
func (m *Meter) Merge(o *Meter) {
	for c := Component(0); c < NumComponents; c++ {
		m.pJ[c] += o.pJ[c]
	}
}

// Energy returns the accumulated energy of component c in picojoules.
func (m *Meter) Energy(c Component) float64 { return m.pJ[c] }

// RegisterTelemetry registers one energy gauge per component. Gauges are
// last-wins across a sequence's launches, so registering the same cumulative
// meter every launch reports the end-of-run totals; reading after Finish
// includes the static bucket.
func (m *Meter) RegisterTelemetry(reg *telemetry.Registry, instance int) {
	for c := Component(0); c < NumComponents; c++ {
		comp := c
		reg.Gauge("power."+comp.String()+"_pj", instance, func() float64 { return m.pJ[comp] })
	}
}

// TotalDynamic returns total accumulated dynamic energy in picojoules
// (everything except CompStatic).
func (m *Meter) TotalDynamic() float64 {
	var t float64
	for c := Component(0); c < NumComponents; c++ {
		if c != CompStatic {
			t += m.pJ[c]
		}
	}
	return t
}

// RFDynamic returns the register-file dynamic energy aggregate used by
// Figure 12: arrays + crossbar + BVR/EBR + scalar bank + codec.
func (m *Meter) RFDynamic() float64 {
	return m.pJ[CompRFArray] + m.pJ[CompRFCrossbar] + m.pJ[CompRFBVR] +
		m.pJ[CompRFScalarBank] + m.pJ[CompCodec]
}

// ExecDynamic returns the execution-unit dynamic energy aggregate.
func (m *Meter) ExecDynamic() float64 { return m.pJ[CompExecALU] + m.pJ[CompExecSFU] }

// Breakdown is a finished power report for one simulation.
type Breakdown struct {
	Seconds   float64
	EnergyJ   float64 // total energy including static
	AvgPowerW float64
	PerComp   [NumComponents]float64 // watts per component
}

// Finish converts accumulated energy plus static power over the elapsed
// cycles into a Breakdown. staticW is the total static+constant power of
// the modelled chip configuration.
func (m *Meter) Finish(cycles uint64, freqHz float64, staticW float64) Breakdown {
	secs := float64(cycles) / freqHz
	if secs <= 0 {
		secs = 1e-12
	}
	m.pJ[CompStatic] = staticW * secs * 1e12
	var b Breakdown
	b.Seconds = secs
	for c := Component(0); c < NumComponents; c++ {
		b.PerComp[c] = m.pJ[c] * 1e-12 / secs
		b.EnergyJ += m.pJ[c] * 1e-12
	}
	b.AvgPowerW = b.EnergyJ / secs
	return b
}

// Share returns component c's fraction of average power.
func (b Breakdown) Share(c Component) float64 {
	if b.AvgPowerW == 0 {
		return 0
	}
	return b.PerComp[c] / b.AvgPowerW
}

// ExecShare returns the execution-unit (ALU+SFU) share of average power.
func (b Breakdown) ExecShare() float64 {
	return b.Share(CompExecALU) + b.Share(CompExecSFU)
}

// RFDynamicW returns the register-file aggregate dynamic power in watts.
func (b Breakdown) RFDynamicW() float64 {
	return b.PerComp[CompRFArray] + b.PerComp[CompRFCrossbar] + b.PerComp[CompRFBVR] +
		b.PerComp[CompRFScalarBank] + b.PerComp[CompCodec]
}

// RFShare returns the register-file aggregate share of average power.
func (b Breakdown) RFShare() float64 {
	return b.Share(CompRFArray) + b.Share(CompRFCrossbar) + b.Share(CompRFBVR) +
		b.Share(CompRFScalarBank) + b.Share(CompCodec)
}

// String renders the breakdown as a table sorted by power.
func (b Breakdown) String() string {
	type row struct {
		name string
		w    float64
	}
	rows := make([]row, 0, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		rows = append(rows, row{c.String(), b.PerComp[c]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].w > rows[j].w })
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %.2f W over %.3g s\n", b.AvgPowerW, b.Seconds)
	for _, r := range rows {
		if r.w == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-14s %8.3f W  (%4.1f%%)\n", r.name, r.w, 100*r.w/b.AvgPowerW)
	}
	return sb.String()
}
