package power

// Table 3 of the paper: synthesis results for the compressor and
// decompressor with a commercial 40 nm standard-cell library at 1.4 GHz,
// including the 1024-bit pipeline registers. These are consumed as model
// inputs, exactly as GPUWattch consumes McPAT/compiler outputs.
const (
	// DecompressorAreaUM2 is the decompressor area in µm².
	DecompressorAreaUM2 = 7332.0
	// CompressorAreaUM2 is the compressor area in µm² (includes the
	// broadcasting logic of Figure 7).
	CompressorAreaUM2 = 11624.0
	// DecompressorDelayNS / CompressorDelayNS are critical-path delays.
	DecompressorDelayNS = 0.35
	CompressorDelayNS   = 0.67
	// DecompressorPowerMW / CompressorPowerMW at 1.4 GHz.
	DecompressorPowerMW = 15.86
	CompressorPowerMW   = 16.22

	// DecompressorsPerSM: one per operand collector (16 OCs per SM).
	DecompressorsPerSM = 16
	// CompressorsPerSM: one per SIMT execution pipeline (2 ALU + 1 MEM +
	// 1 SFU).
	CompressorsPerSM = 4

	// BVREBRAccessFrac: accessing one 38-bit BVR/EBR entry costs 5.2 % of
	// accessing an entire 1024-bit vector register in a bank (§5.1).
	BVREBRAccessFrac = 0.052

	// RFAreaGrowthFrac: the BVR/EBR array grows the register file by ~3 %
	// (7 % with the second half-register set, §4.3).
	RFAreaGrowthFrac     = 0.03
	RFAreaGrowthHalfFrac = 0.07

	// Chip-level codec cost relative to a baseline SM (§5.1).
	CodecPowerPerSMW  = 0.32
	CodecPowerFrac    = 0.016
	CodecAreaPerSMMM2 = 0.16
	CodecAreaFrac     = 0.007

	// ExtraPipelineCycles is the added pipeline depth: one cycle each for
	// reading the EBR, decompressing, and compressing (§5.1).
	ExtraPipelineCycles = 3
)

// CodecChipCost summarises Table 3 scaled to a whole SM/chip, for the
// Table 3 regeneration target.
type CodecChipCost struct {
	DecompressorsPerSM, CompressorsPerSM int
	TotalAreaMM2PerSM                    float64
	TotalPowerWPerSM                     float64
	AreaFracOfSM, PowerFracOfSM          float64
}

// Table3Cost derives the per-SM codec cost from the Table 3 constants.
func Table3Cost() CodecChipCost {
	areaUM2 := DecompressorsPerSM*DecompressorAreaUM2 + CompressorsPerSM*CompressorAreaUM2
	powerMW := DecompressorsPerSM*DecompressorPowerMW + CompressorsPerSM*CompressorPowerMW
	return CodecChipCost{
		DecompressorsPerSM: DecompressorsPerSM,
		CompressorsPerSM:   CompressorsPerSM,
		TotalAreaMM2PerSM:  areaUM2 * 1e-6,
		TotalPowerWPerSM:   powerMW * 1e-3,
		AreaFracOfSM:       CodecAreaFrac,
		PowerFracOfSM:      CodecPowerFrac,
	}
}
