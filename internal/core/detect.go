package core

import (
	"gscalar/internal/isa"
	"gscalar/internal/warp"
)

// Eligibility is the scalar-execution classification of one dynamic
// instruction.
type Eligibility uint8

// Eligibility values.
const (
	NotEligible Eligibility = iota
	// EligibleFull: all source values are warp-uniform; the instruction
	// executes on a single lane for the whole warp.
	EligibleFull
	// EligibleHalf: each 16-lane group's sources are uniform within the
	// group (with at least two distinct group values); one lane executes
	// per group (§4.3).
	EligibleHalf
	// EligibleDivergent: a divergent instruction whose source values are
	// uniform across its active lanes, detected via the mask-matching
	// mechanism of §4.2.
	EligibleDivergent
)

// String returns a short label.
func (e Eligibility) String() string {
	switch e {
	case EligibleFull:
		return "full-scalar"
	case EligibleHalf:
		return "half-scalar"
	case EligibleDivergent:
		return "divergent-scalar"
	}
	return "vector"
}

// classEnabled reports whether scalar execution is enabled for the
// instruction's pipeline class.
func classEnabled(f Features, in *isa.Instruction) bool {
	switch in.Class() {
	case isa.ClassALU:
		return f.ScalarALU
	case isa.ClassSFU:
		return f.ScalarSFU
	case isa.ClassMem:
		return f.ScalarMem
	}
	return false
}

// Detect classifies the instruction about to execute under active, using
// only information the hardware has: the EBR/BVR metadata, the D flags and
// stored masks, and the operand kinds. It must be called before the
// instruction's writeback updates the metadata.
//
// live is the warp's launched-lane mask: an instruction is divergent when
// its active mask differs from it (the paper's definition).
func (wr *WarpRegs) Detect(in *isa.Instruction, active warp.Mask, f Features) Eligibility {
	if !classEnabled(f, in) {
		return NotEligible
	}
	if in.Dst.Kind == isa.OpdNone && !in.IsStore() {
		return NotEligible // nothing to produce (nop, control)
	}
	// Any per-lane non-register source (%tid.x, %laneid) forces vector
	// execution.
	if in.HasNonUniformNonRegSource() {
		return NotEligible
	}
	// The selecting predicate of selp must be uniform under the current
	// mask; predicates written by scalar comparisons are tracked.
	if in.Op == isa.OpSelP {
		pm := wr.preds[in.Srcs[2].Reg]
		if !pm.Uniform || !maskCovered(pm.Mask, active, wr.Live) {
			return NotEligible
		}
	}

	if active == wr.Live {
		return wr.detectNonDivergent(in, f)
	}
	if !f.DivergentScalar {
		return NotEligible
	}
	return wr.detectDivergent(in, active)
}

func (wr *WarpRegs) detectNonDivergent(in *isa.Instruction, f Features) Eligibility {
	full := true
	half := f.HalfScalar && f.HalfCompression
	anyReg := false
	for i := uint8(0); i < in.NSrc; i++ {
		s := in.Srcs[i]
		if s.Kind != isa.OpdReg {
			continue
		}
		anyReg = true
		m := &wr.regs[s.Reg]
		if m.D {
			// Divergently-written register: enc bits are valid only for the
			// stored mask, which cannot equal the full live mask.
			return NotEligible
		}
		if m.Enc != 4 {
			full = false
		}
		if half {
			for g := 0; g < wr.groups; g++ {
				if m.GEnc[g] != 4 {
					half = false
					break
				}
			}
		}
	}
	_ = anyReg // zero-register-source instructions are trivially scalar
	if full {
		return EligibleFull
	}
	if half {
		return EligibleHalf
	}
	return NotEligible
}

func (wr *WarpRegs) detectDivergent(in *isa.Instruction, active warp.Mask) Eligibility {
	for i := uint8(0); i < in.NSrc; i++ {
		s := in.Srcs[i]
		if s.Kind != isa.OpdReg {
			continue
		}
		m := &wr.regs[s.Reg]
		switch {
		case !m.D && m.Enc == 4:
			// A compressed full-scalar register is uniform under any mask.
		case m.D && m.Enc == 4 && m.DMask == active:
			// Divergent scalar: the stored mask matches the current active
			// mask (Figure 7(b)); the enc bits are valid for these lanes.
		default:
			return NotEligible
		}
	}
	return EligibleDivergent
}

// maskCovered reports whether uniformity established under wrote is valid
// for a read under active: either the write was non-divergent (covers all
// live lanes) or the masks match exactly.
func maskCovered(wrote, active, live warp.Mask) bool {
	return wrote == live || wrote == active
}

// SourcesScalarForPred reports whether every register source of a
// predicate-writing instruction was scalar under active — the condition
// under which the written predicate is uniform. It mirrors Detect's source
// checks without the class gating.
func (wr *WarpRegs) SourcesScalarForPred(in *isa.Instruction, active warp.Mask) bool {
	if in.HasNonUniformNonRegSource() {
		return false
	}
	for i := uint8(0); i < in.NSrc; i++ {
		s := in.Srcs[i]
		if s.Kind != isa.OpdReg {
			continue
		}
		m := &wr.regs[s.Reg]
		switch {
		case !m.D && m.Enc == 4:
		case m.D && m.Enc == 4 && m.DMask == active:
		default:
			return false
		}
	}
	return true
}

// ValueScalarOracle reports whether the instruction's register sources are
// value-uniform across the active lanes — the application-characterisation
// metric of Figure 1, which is independent of any detection mechanism. It
// must be called before the instruction executes (sources may alias the
// destination). srcVec returns the current value vector of a register.
func ValueScalarOracle(in *isa.Instruction, active warp.Mask, srcVec func(r uint8) []uint32) bool {
	if in.HasNonUniformNonRegSource() {
		return false
	}
	if in.Op == isa.OpSelP {
		// The oracle cannot cheaply prove predicate uniformity; treat selp
		// conservatively as non-scalar.
		return false
	}
	for i := uint8(0); i < in.NSrc; i++ {
		s := in.Srcs[i]
		if s.Kind != isa.OpdReg {
			continue
		}
		if !IsScalar(srcVec(s.Reg), active) {
			return false
		}
	}
	return true
}
