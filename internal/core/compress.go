// Package core implements the paper's primary contribution: the byte-wise
// register value compression technique (§3) and the G-Scalar generalized
// scalar execution architecture built on top of it (§4).
//
// The compression scheme compares all 4-byte values of a vector register
// byte by byte, most-significant byte first. If the first n MSBs are
// identical across lanes, those n bytes become the base value (taken from
// op[0]) stored in the Base Value Register (BVR), the remaining bytes are
// the per-lane deltas kept in the SRAM byte-plane arrays, and the encoding
// bits enc[3:0] (here: the count of equal MSBs, 0..4) are stored in the
// Encoding Bit Register (EBR). Registers written by divergent instructions
// are not compressed; instead their EBR records whether the *active* lanes
// were uniform and their BVR stores the writing instruction's active mask,
// enabling scalar execution of subsequent divergent instructions (§4.2).
package core

import (
	"math/bits"

	"gscalar/internal/warp"
)

// GroupSize is the value-checking granularity in threads. The paper checks
// 16-thread halves of a 32-thread warp (§3.2, §4.3) and keeps the same
// 16-thread granularity for the warp-size-64 sweep (Figure 10).
const GroupSize = 16

// WordBits and WordBytes describe one register element.
const (
	WordBytes = 4
	WordBits  = 32
)

// Groups returns the number of GroupSize-lane groups of a warp of the given
// width (at least 1).
func Groups(width int) int {
	g := (width + GroupSize - 1) / GroupSize
	if g == 0 {
		g = 1
	}
	return g
}

// SameMSBBytes returns how many most-significant bytes are identical across
// the lanes of vec selected by mask (0..4). A mask with zero or one active
// lane yields 4 (a single value is trivially uniform). This models the
// comparison logic of Figure 3(2) with the broadcast adaptation of Figure
// 7(a): inactive lanes receive a value from an active lane, so they never
// break the comparison chain.
func SameMSBBytes(vec []uint32, mask warp.Mask) uint8 {
	m := mask
	if len(vec) < 64 {
		m &= 1<<uint(len(vec)) - 1
	}
	if m == 0 {
		return 4
	}
	base := vec[bits.TrailingZeros64(m)]
	var diff uint32
	for m &= m - 1; m != 0; m &= m - 1 {
		diff |= base ^ vec[bits.TrailingZeros64(m)]
	}
	if diff == 0 {
		return 4
	}
	// The number of identical MSBs is the whole leading-zero bytes of the
	// accumulated difference.
	return uint8(bits.LeadingZeros32(diff) >> 3)
}

// IsScalar reports whether all lanes of vec selected by mask hold the same
// value.
func IsScalar(vec []uint32, mask warp.Mask) bool { return SameMSBBytes(vec, mask) == 4 }

// EncBits renders the same-MSB count as the paper's enc[3:0] pattern
// (0 -> 0b0000, 1 -> 0b1000, 2 -> 0b1100, 3 -> 0b1110, 4 -> 0b1111).
func EncBits(same uint8) uint8 {
	return [5]uint8{0b0000, 0b1000, 0b1100, 0b1110, 0b1111}[same]
}

// BaseValue returns the base value of a compressed register: the value of
// the first active lane (the paper always uses op[0] of the group for
// simplicity; for divergently-written registers the first *active* lane,
// since that is the lane the broadcast network sources).
func BaseValue(vec []uint32, mask warp.Mask) uint32 {
	m := mask
	if len(vec) < 64 {
		m &= 1<<uint(len(vec)) - 1
	}
	if m == 0 {
		return 0
	}
	return vec[bits.TrailingZeros64(m)]
}

// Compressed is the stored form of one compressed lane group, used by the
// codec round-trip (tests and the compression-ratio accounting).
type Compressed struct {
	Same   uint8    // number of identical MSBs (0..4)
	Base   uint32   // base value (the Same MSBs are significant)
	Deltas [][]byte // Deltas[i] = the (4-Same) low bytes of lane i, LSB first
	Lanes  int
}

// Compress encodes the lanes of vec selected by mask. Inactive lanes are
// recorded with zero deltas (hardware never reads them back).
func Compress(vec []uint32, mask warp.Mask) Compressed {
	same := SameMSBBytes(vec, mask)
	c := Compressed{
		Same:  same,
		Base:  BaseValue(vec, mask),
		Lanes: len(vec),
	}
	nd := int(WordBytes - same)
	c.Deltas = make([][]byte, len(vec))
	for lane := range vec {
		d := make([]byte, nd)
		if mask&(1<<lane) != 0 {
			for b := 0; b < nd; b++ {
				d[b] = byte(vec[lane] >> (8 * b))
			}
		}
		c.Deltas[lane] = d
	}
	return c
}

// Decompress reconstructs the lane values selected by mask. It is the model
// of the decompression logic in Figure 5: delta bytes come from the SRAM
// arrays, the remaining MSBs from the BVR.
func (c Compressed) Decompress(mask warp.Mask) []uint32 {
	out := make([]uint32, c.Lanes)
	nd := WordBytes - int(c.Same)
	baseMask := ^uint32(0)
	if nd < 4 {
		baseMask <<= uint(8 * nd)
	} else {
		baseMask = 0
	}
	for lane := 0; lane < c.Lanes; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		v := c.Base & baseMask
		for b := 0; b < nd; b++ {
			v |= uint32(c.Deltas[lane][b]) << (8 * b)
		}
		out[lane] = v
	}
	return out
}

// StoredBits returns the storage footprint of the compressed register in
// bits: the delta byte-planes that remain in SRAM plus the BVR (32b) and
// EBR (4b) entry. This is the numerator of the paper's compression-ratio
// metric (ours: 2.17 average).
func (c Compressed) StoredBits() int {
	return (WordBytes-int(c.Same))*8*c.Lanes + 32 + 4
}
