package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gscalar/internal/warp"
)

func full32() warp.Mask { return warp.FullMask(32) }

func TestSameMSBBytesPaperExample(t *testing.T) {
	// The §2.2/§3.1 example: C04039C0, C04039C8, ..., C04039F8 — the first
	// three MSBs are identical, byte[0] differs.
	vec := make([]uint32, 8)
	for i := range vec {
		vec[i] = 0xC04039C0 + uint32(i)*8
	}
	if got := SameMSBBytes(vec, warp.FullMask(8)); got != 3 {
		t.Fatalf("same = %d, want 3", got)
	}
	if got := EncBits(3); got != 0b1110 {
		t.Fatalf("enc = %04b, want 1110", got)
	}
	if got := BaseValue(vec, warp.FullMask(8)); got != 0xC04039C0 {
		t.Fatalf("base = %08x", got)
	}
}

func TestSameMSBBytesCases(t *testing.T) {
	cases := []struct {
		name string
		vec  []uint32
		mask warp.Mask
		want uint8
	}{
		{"scalar", []uint32{5, 5, 5, 5}, 0xF, 4},
		{"all differ", []uint32{0x11000000, 0x22000000}, 0x3, 0},
		{"byte3 same", []uint32{0xAA000000, 0xAA110000}, 0x3, 1},
		{"byte3:2 same", []uint32{0xAABB0000, 0xAABB1100}, 0x3, 2},
		{"byte3:1 same", []uint32{0xAABBCC00, 0xAABBCC11}, 0x3, 3},
		{"single lane", []uint32{1, 2, 3, 4}, 0x4, 4},
		{"masked uniform", []uint32{7, 99, 7, 99}, 0b0101, 4},
		{"masked divergent", []uint32{7, 99, 8, 99}, 0b0101, 3},
		{"empty-ish one lane", []uint32{42}, 1, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := SameMSBBytes(c.vec, c.mask); got != c.want {
				t.Fatalf("same = %d, want %d", got, c.want)
			}
		})
	}
}

func TestEncBitsTable(t *testing.T) {
	want := []uint8{0b0000, 0b1000, 0b1100, 0b1110, 0b1111}
	for i, w := range want {
		if got := EncBits(uint8(i)); got != w {
			t.Errorf("EncBits(%d) = %04b, want %04b", i, got, w)
		}
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	patterns := []func() uint32{
		func() uint32 { return rng.Uint32() },                   // random
		func() uint32 { return 0xC0400000 | rng.Uint32()&0xFF }, // 3-byte similar
		func() uint32 { return 0x1234 },                         // scalar
		func() uint32 { return rng.Uint32() & 0xFFFF },          // 2-byte similar
	}
	for pi, gen := range patterns {
		for trial := 0; trial < 50; trial++ {
			vec := make([]uint32, 32)
			for i := range vec {
				vec[i] = gen()
			}
			mask := warp.Mask(rng.Uint32())
			if mask == 0 {
				mask = 1
			}
			c := Compress(vec, mask)
			back := c.Decompress(mask)
			for lane := 0; lane < 32; lane++ {
				if mask&(1<<lane) == 0 {
					continue
				}
				if back[lane] != vec[lane] {
					t.Fatalf("pattern %d: lane %d: %08x != %08x (same=%d)",
						pi, lane, back[lane], vec[lane], c.Same)
				}
			}
		}
	}
}

// TestCompressRoundTripProperty is the quick-check form of the round trip.
func TestCompressRoundTripProperty(t *testing.T) {
	f := func(raw [8]uint32, mask8 uint8) bool {
		mask := warp.Mask(mask8)
		if mask == 0 {
			mask = 1
		}
		vec := raw[:]
		c := Compress(vec, mask)
		back := c.Decompress(mask)
		for lane := 0; lane < len(vec); lane++ {
			if mask&(1<<lane) != 0 && back[lane] != vec[lane] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBroadcastEquivalence checks the §4.2 observation the divergent
// comparison network relies on: comparing only active lanes is equivalent
// to broadcasting an active lane's value into inactive lanes and comparing
// all.
func TestBroadcastEquivalence(t *testing.T) {
	f := func(raw [8]uint32, mask8 uint8) bool {
		mask := warp.Mask(mask8)
		if mask == 0 {
			return true
		}
		vec := raw[:]
		direct := SameMSBBytes(vec, mask)

		// Broadcast: fill inactive lanes with the first active value.
		fill := BaseValue(vec, mask)
		bvec := make([]uint32, len(vec))
		for i := range vec {
			if mask&(1<<i) != 0 {
				bvec[i] = vec[i]
			} else {
				bvec[i] = fill
			}
		}
		broadcast := SameMSBBytes(bvec, warp.FullMask(len(vec)))
		return direct == broadcast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStoredBits(t *testing.T) {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = 7
	}
	c := Compress(vec, full32())
	// Scalar: no delta planes; only BVR(32) + EBR(4).
	if c.StoredBits() != 36 {
		t.Errorf("scalar stored = %d, want 36", c.StoredBits())
	}
	for i := range vec {
		vec[i] = uint32(i) // 3 MSBs same
	}
	c = Compress(vec, full32())
	if want := 1*8*32 + 36; c.StoredBits() != want {
		t.Errorf("3-byte stored = %d, want %d", c.StoredBits(), want)
	}
}

func TestIsScalar(t *testing.T) {
	if !IsScalar([]uint32{3, 3, 3}, 0b111) {
		t.Error("uniform not detected")
	}
	if IsScalar([]uint32{3, 4, 3}, 0b111) {
		t.Error("non-uniform detected as scalar")
	}
	if !IsScalar([]uint32{3, 4, 3}, 0b101) {
		t.Error("masked-uniform not detected")
	}
}

func TestGroups(t *testing.T) {
	cases := map[int]int{8: 1, 16: 1, 32: 2, 48: 3, 64: 4}
	for w, want := range cases {
		if got := Groups(w); got != want {
			t.Errorf("Groups(%d) = %d, want %d", w, got, want)
		}
	}
}
