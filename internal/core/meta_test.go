package core

import (
	"testing"

	"gscalar/internal/warp"
)

func newWR() *WarpRegs { return NewWarpRegs(16, 8, 32, warp.FullMask(32)) }

func uniformVec(v uint32) []uint32 {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = v
	}
	return vec
}

func rampVec(base uint32) []uint32 {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = base + uint32(i)
	}
	return vec
}

func gsFeatures() Features { return GScalarFeatures() }

func TestOnWriteScalar(t *testing.T) {
	wr := newWR()
	wb := wr.OnWrite(1, uniformVec(0xABCD), warp.FullMask(32), gsFeatures(), false)
	if wb.Divergent || wb.Enc != 4 || wb.ArraysWritten != 0 || !wb.BVREBRWritten {
		t.Fatalf("wb = %+v", wb)
	}
	m := wr.Meta(1)
	if m.D || m.Enc != 4 || !m.FS || m.Base != 0xABCD {
		t.Fatalf("meta = %+v", m)
	}
	// Compressed size: 2 groups × 38 metadata bits.
	if wb.CompressedBits != 76 {
		t.Errorf("compressed bits = %d, want 76", wb.CompressedBits)
	}
}

func TestOnWrite3Byte(t *testing.T) {
	wr := newWR()
	wb := wr.OnWrite(2, rampVec(0xC0403900), warp.FullMask(32), gsFeatures(), false)
	if wb.Enc != 3 {
		t.Fatalf("enc = %d, want 3", wb.Enc)
	}
	// One delta byte-plane per 16-lane group.
	if wb.ArraysWritten != 2 {
		t.Fatalf("arrays = %d, want 2", wb.ArraysWritten)
	}
}

func TestOnWriteDivergent(t *testing.T) {
	wr := newWR()
	mask := warp.Mask(0x0000FF00)
	wb := wr.OnWrite(3, uniformVec(7), mask, gsFeatures(), false)
	if !wb.Divergent {
		t.Fatal("not flagged divergent")
	}
	// Divergent writes are stored uncompressed: all 8 arrays activated.
	if wb.ArraysWritten != 8 {
		t.Fatalf("arrays = %d, want 8", wb.ArraysWritten)
	}
	m := wr.Meta(3)
	if !m.D || m.DMask != mask || m.Enc != 4 {
		t.Fatalf("meta = %+v", m)
	}
}

func TestOnWriteBaselineArrays(t *testing.T) {
	wr := newWR()
	// Baseline (no compression): full write touches all 8 arrays.
	wb := wr.OnWrite(4, nil, warp.FullMask(32), Features{}, false)
	if wb.ArraysWritten != 8 {
		t.Fatalf("full arrays = %d, want 8", wb.ArraysWritten)
	}
	// Partial write to lanes 0..3 touches one 4-lane array.
	wb = wr.OnWrite(4, nil, 0xF, Features{}, false)
	if wb.ArraysWritten != 1 {
		t.Fatalf("partial arrays = %d, want 1", wb.ArraysWritten)
	}
	// Lanes 0 and 31 touch two arrays.
	wb = wr.OnWrite(4, nil, 1|1<<31, Features{}, false)
	if wb.ArraysWritten != 2 {
		t.Fatalf("spread arrays = %d, want 2", wb.ArraysWritten)
	}
}

func TestOnReadCompressed(t *testing.T) {
	wr := newWR()
	f := gsFeatures()
	wr.OnWrite(1, uniformVec(9), warp.FullMask(32), f, false)
	rc := wr.OnRead(1, warp.FullMask(32), f, false)
	if rc.ArraysRead != 0 || !rc.BVREBRRead || rc.Class != AccessScalar {
		t.Fatalf("scalar read = %+v", rc)
	}
	if rc.CrossbarBytes != 0 {
		t.Errorf("scalar read moves %d bytes over crossbar", rc.CrossbarBytes)
	}

	wr.OnWrite(2, rampVec(0x11223300), warp.FullMask(32), f, false)
	rc = wr.OnRead(2, warp.FullMask(32), f, false)
	if rc.ArraysRead != 2 || rc.Class != Access3Byte || !rc.Decompress {
		t.Fatalf("3-byte read = %+v", rc)
	}
	if rc.CrossbarBytes != 32 {
		t.Errorf("3-byte read crossbar = %d, want 32", rc.CrossbarBytes)
	}
}

func TestOnReadDivergentRegister(t *testing.T) {
	wr := newWR()
	f := gsFeatures()
	wr.OnWrite(5, uniformVec(1), 0xFF, f, false) // divergent write
	rc := wr.OnRead(5, warp.FullMask(32), f, false)
	if rc.ArraysRead != 8 || rc.Class != AccessNone {
		t.Fatalf("read of divergently-written reg = %+v", rc)
	}
	// A divergent reader is classified in the "divergent" Figure 8 class.
	rc = wr.OnRead(5, 0xFF, f, true)
	if rc.Class != AccessDivergent {
		t.Fatalf("divergent reader class = %v", rc.Class)
	}
}

func TestOnReadBaseline(t *testing.T) {
	wr := newWR()
	rc := wr.OnRead(1, warp.FullMask(32), Features{}, false)
	if rc.ArraysRead != 8 || rc.BVREBRRead || rc.CrossbarBytes != 128 {
		t.Fatalf("baseline read = %+v", rc)
	}
}

func TestHalfCompression(t *testing.T) {
	wr := newWR()
	f := gsFeatures()
	// First half scalar A, second half scalar B.
	vec := make([]uint32, 32)
	for i := 0; i < 16; i++ {
		vec[i] = 0x100
	}
	for i := 16; i < 32; i++ {
		vec[i] = 0x200
	}
	wb := wr.OnWrite(1, vec, warp.FullMask(32), f, false)
	m := wr.Meta(1)
	if m.GEnc[0] != 4 || m.GEnc[1] != 4 {
		t.Fatalf("group encs = %v", m.GEnc)
	}
	if m.GBase[0] != 0x100 || m.GBase[1] != 0x200 {
		t.Fatalf("group bases = %v", m.GBase)
	}
	if m.FS {
		t.Error("FS set for two distinct scalars")
	}
	if wb.ArraysWritten != 0 {
		t.Errorf("arrays = %d, want 0 (both halves scalar)", wb.ArraysWritten)
	}
	// Warp-level enc: the two values differ in byte 1 (0x100 vs 0x200).
	if m.Enc != 2 {
		t.Errorf("warp enc = %d, want 2", m.Enc)
	}

	// Without half-compression the same value costs delta planes.
	wr2 := newWR()
	f2 := f
	f2.HalfCompression = false
	wb2 := wr2.OnWrite(1, vec, warp.FullMask(32), f2, false)
	if wb2.ArraysWritten != 4 { // (4-2) deltas × 2 groups
		t.Errorf("no-half arrays = %d, want 4", wb2.ArraysWritten)
	}
}

func TestNeedsDecompressMove(t *testing.T) {
	wr := newWR()
	f := gsFeatures()
	if wr.NeedsDecompressMove(1, f) {
		t.Error("fresh register should not need a move")
	}
	wr.OnWrite(1, uniformVec(5), warp.FullMask(32), f, false)
	if !wr.NeedsDecompressMove(1, f) {
		t.Error("compressed register needs a move before a partial write")
	}
	wr.DecompressInPlace(1)
	if wr.NeedsDecompressMove(1, f) {
		t.Error("decompressed register should not need a move")
	}
	// Divergently-written registers are stored uncompressed already.
	wr.OnWrite(2, uniformVec(5), 0xFF, f, false)
	if wr.NeedsDecompressMove(2, f) {
		t.Error("divergently-written register should not need a move")
	}
	// Fully-random (incompressible) registers need no move either.
	vec := rampVec(0)
	for i := range vec {
		vec[i] = uint32(i) * 0x01010101
	}
	wr.OnWrite(3, vec, warp.FullMask(32), f, false)
	if wr.NeedsDecompressMove(3, f) {
		t.Error("uncompressed register should not need a move")
	}
	// Baseline never injects moves.
	if wr.NeedsDecompressMove(1, Features{}) {
		t.Error("baseline should never need moves")
	}
}

func TestPredTracking(t *testing.T) {
	wr := newWR()
	wr.OnPredWrite(2, warp.FullMask(32), true)
	if pm := wr.Pred(2); !pm.Uniform || pm.Mask != warp.FullMask(32) {
		t.Fatalf("pred meta = %+v", pm)
	}
	wr.OnPredWrite(2, 0xFF, false)
	if pm := wr.Pred(2); pm.Uniform {
		t.Fatal("pred should be non-uniform")
	}
}

func TestTailWarpGroupMask(t *testing.T) {
	// A 20-lane warp: group 1 has only 4 live lanes; uniform values across
	// live lanes must still compress to scalar.
	wr := NewWarpRegs(8, 8, 32, warp.FullMask(20))
	wb := wr.OnWrite(1, uniformVec(3), warp.FullMask(20), gsFeatures(), false)
	if wb.Enc != 4 || wb.ArraysWritten != 0 {
		t.Fatalf("tail-warp scalar write = %+v", wb)
	}
}
