package core

import (
	"testing"

	"gscalar/internal/isa"
	"gscalar/internal/warp"
)

func inst(op isa.Opcode, dst isa.Operand, srcs ...isa.Operand) *isa.Instruction {
	in := &isa.Instruction{Op: op, Dst: dst, Target: -1, RPC: -1}
	copy(in.Srcs[:], srcs)
	in.NSrc = uint8(len(srcs))
	return in
}

func TestDetectFullScalar(t *testing.T) {
	wr := newWR()
	f := gsFeatures()
	full := warp.FullMask(32)
	wr.OnWrite(1, uniformVec(5), full, f, false)
	wr.OnWrite(2, uniformVec(9), full, f, false)

	in := inst(isa.OpIAdd, isa.Reg(3), isa.Reg(1), isa.Reg(2))
	if e := wr.Detect(in, full, f); e != EligibleFull {
		t.Fatalf("scalar+scalar = %v", e)
	}

	// One vector source kills eligibility.
	wr.OnWrite(4, rampVec(0), full, f, false)
	in = inst(isa.OpIAdd, isa.Reg(3), isa.Reg(1), isa.Reg(4))
	if e := wr.Detect(in, full, f); e != NotEligible {
		t.Fatalf("scalar+vector = %v", e)
	}

	// Immediate-only sources are trivially scalar.
	in = inst(isa.OpMov, isa.Reg(3), isa.Imm(7))
	if e := wr.Detect(in, full, f); e != EligibleFull {
		t.Fatalf("imm-only = %v", e)
	}

	// A per-lane special source forces vector execution.
	in = inst(isa.OpMov, isa.Reg(3), isa.Spec(isa.SpecTidX))
	if e := wr.Detect(in, full, f); e != NotEligible {
		t.Fatalf("tid source = %v", e)
	}

	// Warp-uniform specials are fine.
	in = inst(isa.OpMov, isa.Reg(3), isa.Spec(isa.SpecCtaIDX))
	if e := wr.Detect(in, full, f); e != EligibleFull {
		t.Fatalf("ctaid source = %v", e)
	}
}

func TestDetectClassGating(t *testing.T) {
	full := warp.FullMask(32)
	wr := newWR()
	f := gsFeatures()
	wr.OnWrite(1, uniformVec(5), full, f, false)

	sfu := inst(isa.OpSin, isa.Reg(2), isa.Reg(1))
	mem := inst(isa.OpLdGlobal, isa.Reg(2), isa.Reg(1))
	if e := wr.Detect(sfu, full, f); e != EligibleFull {
		t.Errorf("SFU under G-Scalar = %v", e)
	}
	if e := wr.Detect(mem, full, f); e != EligibleFull {
		t.Errorf("mem under G-Scalar = %v", e)
	}

	// The prior-work feature set (ALU only) rejects SFU and memory.
	alu := Features{Compression: true, ScalarALU: true}
	if e := wr.Detect(sfu, full, alu); e != NotEligible {
		t.Errorf("SFU under ALU-only = %v", e)
	}
	if e := wr.Detect(mem, full, alu); e != NotEligible {
		t.Errorf("mem under ALU-only = %v", e)
	}
	add := inst(isa.OpIAdd, isa.Reg(2), isa.Reg(1), isa.Imm(1))
	if e := wr.Detect(add, full, alu); e != EligibleFull {
		t.Errorf("ALU under ALU-only = %v", e)
	}
}

func TestDetectHalfScalar(t *testing.T) {
	full := warp.FullMask(32)
	wr := newWR()
	f := gsFeatures()
	vec := make([]uint32, 32)
	for i := range vec {
		if i < 16 {
			vec[i] = 0xA
		} else {
			vec[i] = 0xB
		}
	}
	wr.OnWrite(1, vec, full, f, false)
	in := inst(isa.OpIAdd, isa.Reg(2), isa.Reg(1), isa.Imm(1))
	if e := wr.Detect(in, full, f); e != EligibleHalf {
		t.Fatalf("half-scalar = %v", e)
	}
	// With half-scalar disabled it is not eligible.
	f2 := f
	f2.HalfScalar = false
	if e := wr.Detect(in, full, f2); e != NotEligible {
		t.Fatalf("half disabled = %v", e)
	}
	// Half-scalar is only for non-divergent instructions (§4.3).
	if e := wr.Detect(in, 0xFFFF, f); e != NotEligible {
		t.Fatalf("divergent half = %v", e)
	}
}

func TestDetectDivergentScalar(t *testing.T) {
	full := warp.FullMask(32)
	maskA := warp.Mask(0x0000F00F)
	wr := newWR()
	f := gsFeatures()

	// r1 written divergently with a uniform value under maskA.
	wr.OnWrite(1, uniformVec(7), maskA, f, false)
	in := inst(isa.OpIAdd, isa.Reg(2), isa.Reg(1), isa.Imm(1))

	// Same mask: eligible (the Figure 7(b) mask match).
	if e := wr.Detect(in, maskA, f); e != EligibleDivergent {
		t.Fatalf("same-mask divergent = %v", e)
	}
	// Different mask: the enc bits are invalid — not eligible.
	if e := wr.Detect(in, 0x0FF0, f); e != NotEligible {
		t.Fatalf("other-mask divergent = %v", e)
	}
	// Full-mask reader of a divergently-written register: not eligible.
	if e := wr.Detect(in, full, f); e != NotEligible {
		t.Fatalf("full-mask reader = %v", e)
	}
	// A compressed full-scalar register is valid under ANY divergent mask.
	wr.OnWrite(3, uniformVec(9), full, f, false)
	in = inst(isa.OpIAdd, isa.Reg(2), isa.Reg(3), isa.Imm(1))
	if e := wr.Detect(in, maskA, f); e != EligibleDivergent {
		t.Fatalf("compressed-scalar under divergence = %v", e)
	}
	// Divergent scalar disabled (G-Scalar w/o divergent).
	f2 := GScalarNoDivFeatures()
	if e := wr.Detect(in, maskA, f2); e != NotEligible {
		t.Fatalf("divergent disabled = %v", e)
	}
}

func TestDetectPaperFigure7Example(t *testing.T) {
	// Figure 7(b): r2 = r2*2 writes a divergent scalar under M=10001111;
	// r1 = abs(r2) on the other path (M=01110000) must NOT be eligible.
	wr := NewWarpRegs(8, 8, 8, warp.FullMask(8))
	f := gsFeatures()
	maskThen := warp.Mask(0b10001111)
	maskElse := warp.Mask(0b01110000)

	vec := []uint32{4, 4, 4, 4, 0, 0, 0, 4}
	wr.OnWrite(2, vec, maskThen, f, false)
	if m := wr.Meta(2); !m.D || m.Enc != 4 || m.DMask != maskThen {
		t.Fatalf("meta after divergent scalar write = %+v", m)
	}

	abs := inst(isa.OpIAbs, isa.Reg(1), isa.Reg(2))
	if e := wr.Detect(abs, maskElse, f); e != NotEligible {
		t.Fatalf("other-path read = %v, want NotEligible", e)
	}
	if e := wr.Detect(abs, maskThen, f); e != EligibleDivergent {
		t.Fatalf("same-path read = %v, want EligibleDivergent", e)
	}
}

func TestDetectSelpPredicate(t *testing.T) {
	full := warp.FullMask(32)
	wr := newWR()
	f := gsFeatures()
	wr.OnWrite(1, uniformVec(5), full, f, false)
	wr.OnWrite(2, uniformVec(6), full, f, false)

	selp := inst(isa.OpSelP, isa.Reg(3), isa.Reg(1), isa.Reg(2), isa.Pred(0))
	// Untracked predicate: not eligible.
	if e := wr.Detect(selp, full, f); e != NotEligible {
		t.Fatalf("selp untracked pred = %v", e)
	}
	wr.OnPredWrite(0, full, true)
	if e := wr.Detect(selp, full, f); e != EligibleFull {
		t.Fatalf("selp uniform pred = %v", e)
	}
	wr.OnPredWrite(0, full, false)
	if e := wr.Detect(selp, full, f); e != NotEligible {
		t.Fatalf("selp non-uniform pred = %v", e)
	}
}

func TestSourcesScalarForPred(t *testing.T) {
	full := warp.FullMask(32)
	wr := newWR()
	f := gsFeatures()
	wr.OnWrite(1, uniformVec(5), full, f, false)
	setp := inst(isa.OpISetP, isa.Pred(0), isa.Reg(1), isa.Imm(3))
	if !wr.SourcesScalarForPred(setp, full) {
		t.Error("scalar setp not detected")
	}
	wr.OnWrite(4, rampVec(0), full, f, false)
	setp = inst(isa.OpISetP, isa.Pred(0), isa.Reg(4), isa.Imm(3))
	if wr.SourcesScalarForPred(setp, full) {
		t.Error("vector setp detected as scalar")
	}
}

func TestValueScalarOracle(t *testing.T) {
	vecs := map[uint8][]uint32{
		1: uniformVec(5),
		2: rampVec(100),
	}
	src := func(r uint8) []uint32 { return vecs[r] }
	mask := warp.Mask(0xF)

	in := inst(isa.OpIAdd, isa.Reg(3), isa.Reg(1), isa.Imm(2))
	if !ValueScalarOracle(in, mask, src) {
		t.Error("uniform source not detected")
	}
	in = inst(isa.OpIAdd, isa.Reg(3), isa.Reg(2), isa.Imm(2))
	if ValueScalarOracle(in, mask, src) {
		t.Error("ramp source detected as scalar")
	}
	// But under a single-lane mask, any vector is scalar.
	if !ValueScalarOracle(in, 1<<3, src) {
		t.Error("single-lane mask should be scalar")
	}
	in = inst(isa.OpIAdd, isa.Reg(3), isa.Reg(1), isa.Spec(isa.SpecLaneID))
	if ValueScalarOracle(in, mask, src) {
		t.Error("laneid source detected as scalar")
	}
}

func TestEligibilityString(t *testing.T) {
	for e, want := range map[Eligibility]string{
		NotEligible: "vector", EligibleFull: "full-scalar",
		EligibleHalf: "half-scalar", EligibleDivergent: "divergent-scalar",
	} {
		if e.String() != want {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}
