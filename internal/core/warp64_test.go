package core

import (
	"testing"

	"gscalar/internal/isa"
	"gscalar/internal/warp"
)

// Tests of the 64-wide-warp (Figure 10) metadata paths: four 16-lane
// groups per register.

func vec64(f func(lane int) uint32) []uint32 {
	v := make([]uint32, 64)
	for i := range v {
		v[i] = f(i)
	}
	return v
}

func TestWarp64Groups(t *testing.T) {
	wr := NewWarpRegs(8, 8, 64, warp.FullMask(64))
	if wr.Groups() != 4 {
		t.Fatalf("groups = %d, want 4", wr.Groups())
	}
}

func TestWarp64QuarterScalarDetection(t *testing.T) {
	wr := NewWarpRegs(8, 8, 64, warp.FullMask(64))
	f := GScalarFeatures()
	full := warp.FullMask(64)

	// Four distinct per-group scalars: quarter-scalar eligible.
	wr.OnWrite(1, vec64(func(l int) uint32 { return uint32(l/16) * 100 }), full, f, false)
	m := wr.Meta(1)
	for g := 0; g < 4; g++ {
		if m.GEnc[g] != 4 || m.GBase[g] != uint32(g)*100 {
			t.Fatalf("group %d meta = enc %d base %d", g, m.GEnc[g], m.GBase[g])
		}
	}
	in := &isa.Instruction{Op: isa.OpIAdd, Dst: isa.Reg(2), NSrc: 2, Target: -1, RPC: -1}
	in.Srcs[0], in.Srcs[1] = isa.Reg(1), isa.Imm(1)
	if e := wr.Detect(in, full, f); e != EligibleHalf {
		t.Fatalf("quarter-scalar detection = %v", e)
	}

	// A 32-thread-uniform value is NOT full-warp scalar at width 64 but is
	// group-uniform: also the 16-thread class.
	wr.OnWrite(3, vec64(func(l int) uint32 { return uint32(l/32) + 7 }), full, f, false)
	in.Srcs[0] = isa.Reg(3)
	if e := wr.Detect(in, full, f); e != EligibleHalf {
		t.Fatalf("32-uniform at warp64 = %v", e)
	}

	// A fully uniform value is full-warp scalar.
	wr.OnWrite(4, vec64(func(int) uint32 { return 9 }), full, f, false)
	in.Srcs[0] = isa.Reg(4)
	if e := wr.Detect(in, full, f); e != EligibleFull {
		t.Fatalf("uniform at warp64 = %v", e)
	}

	// One non-uniform group spoils the quarter-scalar class.
	wr.OnWrite(5, vec64(func(l int) uint32 {
		if l < 48 {
			return uint32(l / 16)
		}
		return uint32(l) // last group varies
	}), full, f, false)
	in.Srcs[0] = isa.Reg(5)
	if e := wr.Detect(in, full, f); e != NotEligible {
		t.Fatalf("mixed groups = %v", e)
	}
}

func TestWarp64WriteCosts(t *testing.T) {
	wr := NewWarpRegs(8, 8, 64, warp.FullMask(64))
	f := GScalarFeatures()
	full := warp.FullMask(64)

	// Full-scalar write: no arrays touched.
	wb := wr.OnWrite(1, vec64(func(int) uint32 { return 5 }), full, f, false)
	if wb.ArraysWritten != 0 {
		t.Errorf("scalar arrays = %d", wb.ArraysWritten)
	}
	// Incompressible write: 4 byte planes × 4 groups = 16 arrays.
	wb = wr.OnWrite(2, vec64(func(l int) uint32 { return uint32(l) * 0x01010101 }), full, f, false)
	if wb.ArraysWritten != 16 {
		t.Errorf("incompressible arrays = %d, want 16", wb.ArraysWritten)
	}
	// Divergent write touches everything.
	wb = wr.OnWrite(3, vec64(func(int) uint32 { return 1 }), warp.FullMask(20), f, false)
	if !wb.Divergent || wb.ArraysWritten != 16 {
		t.Errorf("divergent write = %+v", wb)
	}
}

func TestWarp64DivergentScalarMaskMatch(t *testing.T) {
	wr := NewWarpRegs(8, 8, 64, warp.FullMask(64))
	f := GScalarFeatures()
	mask := warp.Mask(0x00000000FFFF0000)

	wr.OnWrite(1, vec64(func(int) uint32 { return 3 }), mask, f, false)
	in := &isa.Instruction{Op: isa.OpIMul, Dst: isa.Reg(2), NSrc: 2, Target: -1, RPC: -1}
	in.Srcs[0], in.Srcs[1] = isa.Reg(1), isa.Imm(2)
	if e := wr.Detect(in, mask, f); e != EligibleDivergent {
		t.Fatalf("same-mask = %v", e)
	}
	if e := wr.Detect(in, mask<<16, f); e != NotEligible {
		t.Fatalf("other-mask = %v", e)
	}
}

func TestCompressRoundTrip64(t *testing.T) {
	vec := vec64(func(l int) uint32 { return 0xAB000000 + uint32(l)*3 })
	mask := warp.FullMask(64)
	c := Compress(vec, mask)
	back := c.Decompress(mask)
	for i := range vec {
		if back[i] != vec[i] {
			t.Fatalf("lane %d: %08x != %08x", i, back[i], vec[i])
		}
	}
	if c.Same != 3 {
		t.Errorf("same = %d, want 3", c.Same)
	}
}
