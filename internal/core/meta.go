package core

import (
	"gscalar/internal/warp"
)

// Features selects which of the paper's mechanisms are active. The
// architecture presets in the public package map onto these.
type Features struct {
	Compression     bool // byte-wise register value compression (§3)
	HalfCompression bool // per-16-lane-group compression (§3.2 end, §4.3)
	ScalarALU       bool // scalar execution of non-divergent ALU instructions
	ScalarSFU       bool // … of special-function instructions (§4.1)
	ScalarMem       bool // … of memory instructions (§5.2)
	HalfScalar      bool // half-warp scalar execution (§4.3)
	DivergentScalar bool // scalar execution of divergent instructions (§4.2)
}

// GScalarFeatures returns the full G-Scalar feature set.
func GScalarFeatures() Features {
	return Features{
		Compression: true, HalfCompression: true,
		ScalarALU: true, ScalarSFU: true, ScalarMem: true,
		HalfScalar: true, DivergentScalar: true,
	}
}

// GScalarNoDivFeatures returns G-Scalar without divergent and half-warp
// scalar execution (Figure 11's "G-Scalar w/o divergent" bar).
func GScalarNoDivFeatures() Features {
	return Features{
		Compression: true, HalfCompression: true,
		ScalarALU: true, ScalarSFU: true, ScalarMem: true,
	}
}

// RegMeta is the compression metadata of one vector register: the encoding
// bit register (EBR: enc plus the D and FS flags) and base value register
// (BVR) contents, modelled per 16-lane group.
type RegMeta struct {
	// D is the "divergent" flag (§3.3): set when the register was last
	// written by a divergent instruction, in which case the register is
	// stored uncompressed, Enc describes only the active lanes, and the
	// BVR holds the writing instruction's active mask instead of a base.
	D bool
	// DMask is the active mask stored in the BVR when D is set.
	DMask warp.Mask
	// Enc is the warp-level count of identical MSBs (0..4). When D is set
	// it was computed over the active lanes via the broadcast network.
	Enc uint8
	// Base is the warp-level base value (valid when !D).
	Base uint32
	// GEnc/GBase are the per-group encoding and base (valid when !D and
	// half-compression is enabled; they power half-warp scalar execution).
	GEnc  []uint8
	GBase []uint32
	// FS ("full scalar", Figure 7(c)) indicates all groups hold the same
	// scalar: equivalent to Enc == 4.
	FS bool
}

// PredMeta tracks uniformity of a predicate register, mirroring the
// register mechanism: a predicate written by an instruction whose sources
// were scalar w.r.t. mask M is uniform w.r.t. M.
type PredMeta struct {
	Uniform bool
	Mask    warp.Mask // the active mask under which uniformity holds
}

// WarpRegs is the per-warp metadata file: one RegMeta per architectural
// vector register plus predicate uniformity bits. It corresponds to the
// 64×38-bit array per bank the paper synthesises (§5.1).
type WarpRegs struct {
	Width  int
	Live   warp.Mask // lanes populated at launch
	groups int
	regs   []RegMeta
	preds  []PredMeta
}

// NewWarpRegs allocates metadata for a warp of the given width. All
// registers start uncompressed (enc = 0).
func NewWarpRegs(numRegs, numPreds, width int, live warp.Mask) *WarpRegs {
	g := Groups(width)
	wr := &WarpRegs{
		Width:  width,
		Live:   live,
		groups: g,
		regs:   make([]RegMeta, numRegs),
		preds:  make([]PredMeta, numPreds),
	}
	for i := range wr.regs {
		wr.regs[i].GEnc = make([]uint8, g)
		wr.regs[i].GBase = make([]uint32, g)
	}
	return wr
}

// Meta returns the metadata of register r (read-only use).
func (wr *WarpRegs) Meta(r int) *RegMeta { return &wr.regs[r] }

// Pred returns the uniformity metadata of predicate p.
func (wr *WarpRegs) Pred(p int) PredMeta { return wr.preds[p] }

// Groups returns the number of 16-lane groups per register.
func (wr *WarpRegs) Groups() int { return wr.groups }

// groupMask returns the live lanes of group g.
func (wr *WarpRegs) groupMask(g int) warp.Mask {
	lo := g * GroupSize
	hi := lo + GroupSize
	if hi > wr.Width {
		hi = wr.Width
	}
	var m warp.Mask
	for lane := lo; lane < hi; lane++ {
		m |= 1 << lane
	}
	return m & wr.Live
}

// Writeback describes what one register writeback did to the register file,
// for the timing and energy models.
type Writeback struct {
	Divergent bool
	Enc       uint8 // warp-level enc after the write (broadcast enc when divergent)
	// ArraysWritten is the number of 128-bit SRAM arrays activated for the
	// write in the byte-plane-reordered register file.
	ArraysWritten int
	// BVREBRWritten reports whether the small BVR/EBR array was written
	// (always true when compression is on: enc bits are always generated).
	BVREBRWritten bool
	// CompressedBits / OriginalBits feed the compression-ratio statistic.
	CompressedBits int
	OriginalBits   int
}

// OnWrite updates register metadata for a write of vec under active, and
// returns the writeback cost. live distinguishes divergent writes
// (active != live) from full writes. The scalarExec flag marks writes
// performed by a scalar execution (the result is written to the BVR only,
// §4.1) — it may only be set when the write is non-divergent and uniform.
func (wr *WarpRegs) OnWrite(reg int, vec []uint32, active warp.Mask, f Features, scalarExec bool) Writeback {
	m := &wr.regs[reg]
	wb := Writeback{OriginalBits: wr.Width * WordBits}

	if !f.Compression {
		// Baseline register file: word-interleaved arrays; a partial write
		// activates only the arrays containing active lanes (§3.3).
		wb.Divergent = active != wr.Live
		wb.ArraysWritten = baselineArraysTouched(active, wr.Width, wr.Live)
		wb.CompressedBits = wb.OriginalBits
		return wb
	}

	if active != wr.Live {
		// Divergent write (§3.3): never compressed; all arrays activated
		// (each byte of a 4-byte value is spread across the byte-plane
		// arrays). Encoding bits are still generated over the active lanes
		// via the broadcast network; the BVR stores the active mask.
		same := SameMSBBytes(vec, active)
		m.D = true
		m.DMask = active
		m.Enc = same
		m.FS = false
		for g := range m.GEnc {
			m.GEnc[g] = 0
		}
		wb.Divergent = true
		wb.Enc = same
		wb.ArraysWritten = totalArrays(wr.Width)
		wb.BVREBRWritten = true
		wb.CompressedBits = wb.OriginalBits
		return wb
	}

	// Non-divergent write: compress.
	m.D = false
	m.DMask = 0
	m.Enc = SameMSBBytes(vec, wr.Live)
	m.Base = BaseValue(vec, wr.Live)
	m.FS = m.Enc == 4
	deltas := 0 // delta byte-planes stored, in array units
	if f.HalfCompression {
		for g := 0; g < wr.groups; g++ {
			gm := wr.groupMask(g)
			if gm == 0 {
				m.GEnc[g] = 4
				m.GBase[g] = 0
				continue
			}
			m.GEnc[g] = SameMSBBytes(vec, gm)
			m.GBase[g] = BaseValue(vec, gm)
			deltas += WordBytes - int(m.GEnc[g])
		}
	} else {
		for g := 0; g < wr.groups; g++ {
			m.GEnc[g] = m.Enc
			m.GBase[g] = m.Base
		}
		deltas = (WordBytes - int(m.Enc)) * wr.groups
	}

	wb.Enc = m.Enc
	wb.BVREBRWritten = true
	if scalarExec {
		// Scalar execution writes its single result to the BVR and sets
		// enc=1111; no SRAM array is touched (§4.1).
		wb.ArraysWritten = 0
	} else {
		wb.ArraysWritten = deltas
	}
	wb.CompressedBits = deltas*GroupSize*8 + wr.groups*38
	return wb
}

// OnPredWrite updates predicate uniformity: uniform reports whether the
// writing instruction's sources were all scalar w.r.t. its active mask.
func (wr *WarpRegs) OnPredWrite(p int, active warp.Mask, uniform bool) {
	wr.preds[p] = PredMeta{Uniform: uniform, Mask: active}
}

// ReadCost describes the register-file cost of reading one source register.
type ReadCost struct {
	// ArraysRead is the number of 128-bit SRAM arrays activated.
	ArraysRead int
	// BVREBRRead reports whether the small BVR/EBR array was accessed
	// (always, with compression on: enc bits gate array activation).
	BVREBRRead bool
	// CrossbarBytes is the number of bytes sent through the crossbar
	// (compressed reads skip the base bytes, §3.2).
	CrossbarBytes int
	// Decompress reports whether the decompression logic is exercised.
	Decompress bool
	// Class is the access class for the Figure 8 histogram.
	Class AccessClass
}

// AccessClass classifies an RF read for Figure 8.
type AccessClass uint8

// Access classes, in Figure 8's legend order.
const (
	AccessScalar    AccessClass = iota // all 32 operands identical
	Access3Byte                        // first 3 MSBs identical
	Access2Byte                        // first 2 MSBs identical
	Access1Byte                        // first MSB identical
	AccessNone                         // no common MSB
	AccessDivergent                    // accessed by a divergent instruction
	NumAccessClasses
)

// String returns the Figure 8 legend label.
func (c AccessClass) String() string {
	switch c {
	case AccessScalar:
		return "scalar"
	case Access3Byte:
		return "3-byte"
	case Access2Byte:
		return "2-byte"
	case Access1Byte:
		return "1-byte"
	case AccessNone:
		return "none"
	case AccessDivergent:
		return "divergent"
	}
	return "?"
}

func classOfEnc(enc uint8) AccessClass {
	switch enc {
	case 4:
		return AccessScalar
	case 3:
		return Access3Byte
	case 2:
		return Access2Byte
	case 1:
		return Access1Byte
	}
	return AccessNone
}

// OnRead returns the cost of reading register r for an instruction
// executing under active. divergentReader marks reads by divergent
// instructions (which always retrieve the full register, §4.2, and are
// reported in Figure 8's "divergent" class).
func (wr *WarpRegs) OnRead(reg int, active warp.Mask, f Features, divergentReader bool) ReadCost {
	m := &wr.regs[reg]
	full := totalArrays(wr.Width)

	if !f.Compression {
		return ReadCost{
			ArraysRead:    full,
			CrossbarBytes: wr.Width * WordBytes,
			Class:         AccessNone,
		}
	}

	rc := ReadCost{BVREBRRead: true}
	switch {
	case divergentReader:
		rc.Class = AccessDivergent
	case m.D:
		// Registers written divergently are stored uncompressed; a
		// non-divergent read sees a non-uniform register.
		rc.Class = AccessNone
	default:
		rc.Class = classOfEnc(m.Enc)
	}

	if m.D {
		// Uncompressed storage: all arrays.
		rc.ArraysRead = full
		rc.CrossbarBytes = wr.Width * WordBytes
		return rc
	}

	// Compressed storage: only delta byte-plane arrays are activated, and
	// only delta bytes traverse the crossbar; base bytes come from the BVR.
	deltas := 0
	if f.HalfCompression {
		for g := 0; g < wr.groups; g++ {
			deltas += WordBytes - int(m.GEnc[g])
		}
	} else {
		deltas = (WordBytes - int(m.Enc)) * wr.groups
	}
	rc.ArraysRead = deltas
	rc.CrossbarBytes = deltas * GroupSize
	rc.Decompress = deltas < full
	return rc
}

// NeedsDecompressMove reports whether a divergent write to reg must be
// preceded by the special decompressing move instruction (§3.3): the
// register is currently stored compressed, so a partial per-lane update
// cannot be applied in place.
func (wr *WarpRegs) NeedsDecompressMove(reg int, f Features) bool {
	if !f.Compression {
		return false
	}
	m := &wr.regs[reg]
	if m.D {
		return false // already stored uncompressed
	}
	if f.HalfCompression {
		for g := 0; g < wr.groups; g++ {
			if m.GEnc[g] > 0 {
				return true
			}
		}
		return false
	}
	return m.Enc > 0
}

// DecompressInPlace models the effect of the special move: the register is
// rewritten uncompressed (enc = 0, D = 0).
func (wr *WarpRegs) DecompressInPlace(reg int) {
	m := &wr.regs[reg]
	m.D = false
	m.DMask = 0
	m.Enc = 0
	m.FS = false
	for g := range m.GEnc {
		m.GEnc[g] = 0
	}
}

// totalArrays returns the number of 128-bit arrays holding one vector
// register: 4 byte-planes per 16-lane group (8 arrays for a 32-wide warp,
// matching the paper's 8×128-bit bank).
func totalArrays(width int) int { return Groups(width) * WordBytes }

// baselineArraysTouched models the baseline word-interleaved register file,
// where each 128-bit array holds four adjacent 4-byte lanes: a partial
// write activates the arrays containing at least one active lane.
func baselineArraysTouched(active warp.Mask, width int, live warp.Mask) int {
	if active == live {
		return totalArrays(width)
	}
	const lanesPerArray = 4
	n := 0
	for lo := 0; lo < width; lo += lanesPerArray {
		var gm warp.Mask
		for lane := lo; lane < lo+lanesPerArray && lane < width; lane++ {
			gm |= 1 << lane
		}
		if active&gm != 0 {
			n++
		}
	}
	return n
}
