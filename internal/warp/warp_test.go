package warp

import (
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// exec runs a single-warp program to completion and returns the warp plus
// per-instruction outcomes.
func exec(t *testing.T, src string, lanes int, setup func(w *Warp)) (*Warp, []Outcome, *Context) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: lanes, Y: 1}}
	ctx := &Context{
		Prog:   prog,
		Launch: lc,
		Global: kernel.NewMemory(),
		Shared: make([]uint32, 256),
	}
	w := New(0, 0, 0, 32, prog.NumRegs, FullMask(lanes))
	for l := 0; l < lanes; l++ {
		w.SetThreadCoords(l, uint32(l), 0)
	}
	if setup != nil {
		setup(w)
	}
	var outs []Outcome
	for w.Status() == StatusReady {
		out, err := w.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
		if len(outs) > 10000 {
			t.Fatal("runaway program")
		}
	}
	return w, outs, ctx
}

func TestMaskHelpers(t *testing.T) {
	if FullMask(0) != 0 || FullMask(1) != 1 || FullMask(32) != 0xFFFFFFFF || FullMask(64) != ^Mask(0) {
		t.Error("FullMask broken")
	}
	if PopCount(0) != 0 || PopCount(0xFF) != 8 || PopCount(^Mask(0)) != 64 {
		t.Error("PopCount broken")
	}
}

func TestUniformExecution(t *testing.T) {
	w, outs, _ := exec(t, `
	mov r1, 7
	iadd r2, r1, 3
	imul r3, r2, r2
	exit
`, 32, nil)
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(lane, 3); got != 100 {
			t.Fatalf("lane %d r3 = %d, want 100", lane, got)
		}
	}
	for _, o := range outs {
		if o.Divergent {
			t.Errorf("inst %v flagged divergent", o.Inst)
		}
	}
}

func TestPerLaneValues(t *testing.T) {
	w, _, _ := exec(t, `
	mov r1, %tid.x
	imul r2, r1, r1
	exit
`, 32, nil)
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(lane, 2); got != uint32(lane*lane) {
			t.Fatalf("lane %d r2 = %d, want %d", lane, got, lane*lane)
		}
	}
}

func TestDivergenceAndReconvergence(t *testing.T) {
	// Even lanes take one path, odd lanes the other; all reconverge.
	w, outs, _ := exec(t, `
	mov r1, %tid.x
	and r2, r1, 1
	isetp.eq p0, r2, 0
	@p0 bra EVEN
	imul r3, r1, 3
	bra JOIN
EVEN:
	iadd r3, r1, 100
JOIN:
	iadd r4, r3, 1
	exit
`, 32, nil)
	for lane := 0; lane < 32; lane++ {
		want := uint32(lane*3 + 1)
		if lane%2 == 0 {
			want = uint32(lane + 100 + 1)
		}
		if got := w.Reg(lane, 4); got != want {
			t.Fatalf("lane %d r4 = %d, want %d", lane, got, want)
		}
	}
	// The final iadd must have executed with the full mask (reconverged).
	last := outs[len(outs)-2] // before exit
	if last.Active != FullMask(32) {
		t.Fatalf("post-join active = %x, want full", last.Active)
	}
	if w.StackDepth() != 0 {
		t.Fatalf("stack depth = %d after completion", w.StackDepth())
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Lane l iterates l+1 times; the loop reconverges at the exit.
	w, _, _ := exec(t, `
	mov r1, %tid.x
	iadd r2, r1, 1     // trip count = lane+1
	mov r3, 0          // counter
LOOP:
	iadd r3, r3, 1
	isetp.lt p0, r3, r2
	@p0 bra LOOP
	exit
`, 32, nil)
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(lane, 3); got != uint32(lane+1) {
			t.Fatalf("lane %d counter = %d, want %d", lane, got, lane+1)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	w, _, _ := exec(t, `
	mov r1, %tid.x
	and r2, r1, 3
	isetp.lt p0, r2, 2
	@p0 bra LOW
	isetp.eq p1, r2, 2
	@p1 bra TWO
	mov r3, 33          // r2 == 3
	bra J1
TWO:
	mov r3, 22
J1:
	bra JOIN
LOW:
	isetp.eq p1, r2, 0
	@p1 bra ZERO
	mov r3, 11          // r2 == 1
	bra J2
ZERO:
	mov r3, 0
J2:
JOIN:
	iadd r4, r3, 1
	exit
`, 32, nil)
	want := []uint32{1, 12, 23, 34}
	for lane := 0; lane < 32; lane++ {
		if got := w.Reg(lane, 4); got != want[lane%4] {
			t.Fatalf("lane %d r4 = %d, want %d", lane, got, want[lane%4])
		}
	}
}

func TestGuardedExitPartial(t *testing.T) {
	// Lanes >= 16 exit early; the rest continue.
	w, outs, _ := exec(t, `
	mov r1, %tid.x
	isetp.ge p0, r1, 16
	@p0 exit
	iadd r2, r1, 5
	exit
`, 32, nil)
	for lane := 0; lane < 16; lane++ {
		if got := w.Reg(lane, 2); got != uint32(lane+5) {
			t.Fatalf("lane %d r2 = %d", lane, got)
		}
	}
	// The surviving instruction ran divergently with the low half active.
	tail := outs[len(outs)-2]
	if tail.Active != FullMask(16) {
		t.Fatalf("post-exit active = %x, want low 16", tail.Active)
	}
	if !tail.Divergent {
		t.Error("post-exit instruction should be divergent")
	}
}

func TestPredicatedInstruction(t *testing.T) {
	// A guarded non-branch executes only on predicated lanes.
	w, _, _ := exec(t, `
	mov r1, %tid.x
	mov r2, 50
	isetp.lt p0, r1, 4
	@p0 mov r2, 99
	exit
`, 32, nil)
	for lane := 0; lane < 32; lane++ {
		want := uint32(50)
		if lane < 4 {
			want = 99
		}
		if got := w.Reg(lane, 2); got != want {
			t.Fatalf("lane %d r2 = %d, want %d", lane, got, want)
		}
	}
}

func TestSelp(t *testing.T) {
	w, _, _ := exec(t, `
	mov r1, %tid.x
	isetp.lt p0, r1, 8
	selp r2, 111, 222, p0
	exit
`, 16, nil)
	for lane := 0; lane < 16; lane++ {
		want := uint32(222)
		if lane < 8 {
			want = 111
		}
		if got := w.Reg(lane, 2); got != want {
			t.Fatalf("lane %d = %d, want %d", lane, got, want)
		}
	}
}

func TestGlobalLoadStore(t *testing.T) {
	prog, err := asm.Assemble(`
	mov r1, %tid.x
	shl r2, r1, 2
	iadd r3, $0, r2
	ldg r4, [r3]
	imul r4, r4, 2
	iadd r5, $1, r2
	stg [r5], r4
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	in := mem.AllocU32([]uint32{10, 20, 30, 40, 50, 60, 70, 80})
	out := mem.Alloc(32)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 8, Y: 1}}
	lc.Params[0] = in
	lc.Params[1] = out
	if _, err := FuncRun(prog, lc, mem, 32, 0); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(out, 8)
	for i, v := range got {
		if v != uint32((i+1)*20) {
			t.Fatalf("out[%d] = %d, want %d", i, v, (i+1)*20)
		}
	}
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	// Threads write tid to shared, barrier, then read neighbour's value
	// (reversal within the CTA).
	prog, err := asm.Assemble(`
	mov r1, %tid.x
	shl r2, r1, 2
	sts [r2], r1
	bar
	mov r3, %ntid.x
	isub r4, r3, r1
	iadd r4, r4, -1       // ntid-1-tid
	shl r5, r4, 2
	lds r6, [r5]
	shl r7, r1, 2
	iadd r8, $0, r7
	stg [r8], r6
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	out := mem.Alloc(64 * 4)
	lc := &kernel.LaunchConfig{
		Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 64, Y: 1},
		SharedBytes: 64 * 4,
	}
	lc.Params[0] = out
	if _, err := FuncRun(prog, lc, mem, 32, 0); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(out, 64)
	for i, v := range got {
		if v != uint32(63-i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, 63-i)
		}
	}
}

func TestSharedOutOfBounds(t *testing.T) {
	prog, err := asm.Assemble(`
	mov r1, 4096
	lds r2, [r1]
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}, SharedBytes: 64}
	mem := kernel.NewMemory()
	if _, err := FuncRun(prog, lc, mem, 32, 0); err == nil {
		t.Fatal("expected out-of-bounds shared access error")
	}
}

func TestTailWarp(t *testing.T) {
	// 40 threads -> warp 0 full, warp 1 with 8 lanes.
	prog, err := asm.Assemble(`
	mov r1, %tid.x
	shl r2, r1, 2
	iadd r3, $0, r2
	stg [r3], r1
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	out := mem.Alloc(40 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 40, Y: 1}}
	lc.Params[0] = out
	res, err := FuncRun(prog, lc, mem, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadInsts != 40*5 {
		t.Errorf("thread insts = %d, want %d", res.ThreadInsts, 40*5)
	}
	got := mem.ReadU32(out, 40)
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestBuildCTACoords(t *testing.T) {
	prog, _ := asm.Assemble("exit")
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 3, Y: 2}, Block: kernel.Dim{X: 16, Y: 4}}
	warps := BuildCTA(prog, lc, 4, 32, 100) // CTA (1,1)
	if len(warps) != 2 {
		t.Fatalf("warps = %d, want 2", len(warps))
	}
	w := warps[1]
	if w.GlobalID != 101 || w.ID != 1 {
		t.Errorf("ids = %d/%d", w.GlobalID, w.ID)
	}
	if w.ctaidX != 1 || w.ctaidY != 1 {
		t.Errorf("cta coords = %d,%d", w.ctaidX, w.ctaidY)
	}
	// Lane 0 of warp 1 is thread 32 = (tid.x 0, tid.y 2).
	if w.tidX[0] != 0 || w.tidY[0] != 2 {
		t.Errorf("thread coords = %d,%d", w.tidX[0], w.tidY[0])
	}
}

func TestFuncRunDeadlockDetection(t *testing.T) {
	// One warp reaches the barrier; the CTA has a second warp that exited:
	// barrier must release. Then a truly divergent barrier (only some lanes)
	// is not representable here, so test the runaway guard instead.
	prog, err := asm.Assemble(`
LOOP:
	bra LOOP
`)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	if _, err := FuncRun(prog, lc, kernel.NewMemory(), 32, 1000); err == nil {
		t.Fatal("expected instruction-budget error")
	}
}

func TestPeekMatchesExecute(t *testing.T) {
	src := `
	mov r1, %tid.x
	isetp.lt p0, r1, 10
	@p0 bra A
	mov r2, 1
	bra B
A:
	mov r2, 2
B:
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	ctx := &Context{Prog: prog, Launch: lc, Global: kernel.NewMemory()}
	w := New(0, 0, 0, 32, prog.NumRegs, FullMask(32))
	for l := 0; l < 32; l++ {
		w.SetThreadCoords(l, uint32(l), 0)
	}
	for w.Status() == StatusReady {
		pc, in, active, ok := w.Peek(ctx)
		if !ok {
			break
		}
		out, err := w.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if out.PC != pc || out.Inst != in || out.Active != active {
			t.Fatalf("peek (%d,%v,%x) != execute (%d,%v,%x)",
				pc, in, active, out.PC, out.Inst, out.Active)
		}
	}
}
