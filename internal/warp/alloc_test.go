package warp

import (
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// TestExecuteSteadyStateZeroAlloc pins down the property the SoA execution
// rework relies on: once a warp's outcome address scratch is provided by the
// caller (as the SM's operand collectors do), Execute performs zero heap
// allocations per warp-instruction across ALU, predicate, memory, and branch
// paths.
func TestExecuteSteadyStateZeroAlloc(t *testing.T) {
	src := `
		mov r1, %tid.x
		shl r3, r1, 2
		iadd r4, $0, r3
		mov r5, 0
	A:
		ldg r6, [r4]
		imad r6, r6, 3, 1
		fadd r7, r6, r6
		selp r8, r6, r7, p1
		stg [r4], r6
		iadd r5, r5, 1
		isetp.lt p0, r5, 1000000
		@p0 bra A
		exit
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	gmem := kernel.NewMemory()
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	lc.Params[0] = gmem.Alloc(32 * 4)

	w := New(0, 0, 0, 32, prog.NumRegs, FullMask(32))
	for lane := 0; lane < 32; lane++ {
		w.SetThreadCoords(lane, uint32(lane), 0)
	}
	ctx := &Context{
		Prog:        prog,
		Launch:      lc,
		Global:      gmem,
		AddrScratch: make([]uint32, 32),
	}

	// Warm-up: touch the memory pages and reach the loop's steady state.
	for i := 0; i < 100; i++ {
		if _, err := w.Execute(ctx); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.Execute(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warp.Execute allocates %.2f objects/instruction in steady state, want 0", allocs)
	}
	if w.Status() != StatusReady {
		t.Fatal("kernel drained during measurement; lengthen the loop")
	}
}
