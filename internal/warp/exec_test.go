package warp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// evalOne runs a one-instruction kernel "op r3, <a>, <b>" on one lane and
// returns r3.
func evalOne(t *testing.T, op string, srcs ...uint32) uint32 {
	t.Helper()
	src := "mov r1, $0\nmov r2, $1\nmov r4, $2\n"
	switch len(srcs) {
	case 1:
		src += fmt.Sprintf("%s r3, r1\n", op)
	case 2:
		src += fmt.Sprintf("%s r3, r1, r2\n", op)
	case 3:
		src += fmt.Sprintf("%s r3, r1, r2, r4\n", op)
	}
	src += "exit\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 1, Y: 1}}
	for i, s := range srcs {
		lc.Params[i] = s
	}
	ctx := &Context{Prog: prog, Launch: lc, Global: kernel.NewMemory()}
	w := New(0, 0, 0, 32, prog.NumRegs, 1)
	for w.Status() == StatusReady {
		if _, err := w.Execute(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return w.Reg(0, 3)
}

func f32(bits uint32) float32    { return math.Float32frombits(bits) }
func testFBits(f float32) uint32 { return math.Float32bits(f) }

func TestIntegerOpSemantics(t *testing.T) {
	cases := []struct {
		op   string
		a, b uint32
		want uint32
	}{
		{"iadd", 3, 4, 7},
		{"iadd", 0xFFFFFFFF, 1, 0}, // wraparound
		{"isub", 3, 5, 0xFFFFFFFE},
		{"imul", 7, 6, 42},
		{"imul", 0x80000000, 2, 0}, // overflow wraps
		{"idiv", 42, 5, 8},
		{"idiv", uint32(0x80000000), 2, uint32(0xC0000000)}, // signed
		{"idiv", 5, 0, 0xFFFFFFFF},                          // divide by zero
		{"irem", 42, 5, 2},
		{"irem", 5, 0, 5},
		{"imin", uint32(0xFFFFFFFF), 1, 0xFFFFFFFF}, // -1 < 1 signed
		{"imax", uint32(0xFFFFFFFF), 1, 1},
		{"and", 0xF0F0, 0xFF00, 0xF000},
		{"or", 0xF0F0, 0x0F0F, 0xFFFF},
		{"xor", 0xFF, 0x0F, 0xF0},
		{"shl", 1, 5, 32},
		{"shl", 1, 37, 32}, // shift amount masked to 5 bits
		{"shr", 0x80000000, 31, 1},
		{"sra", 0x80000000, 31, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := evalOne(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryOpSemantics(t *testing.T) {
	if got := evalOne(t, "iabs", uint32(0xFFFFFFF6)); got != 10 {
		t.Errorf("iabs(-10) = %d", got)
	}
	if got := evalOne(t, "not", 0); got != 0xFFFFFFFF {
		t.Errorf("not(0) = %#x", got)
	}
	if got := evalOne(t, "fneg", testFBits(1.5)); got != testFBits(-1.5) {
		t.Errorf("fneg(1.5) = %#x", got)
	}
	if got := evalOne(t, "fabs", testFBits(-2.25)); got != testFBits(2.25) {
		t.Errorf("fabs(-2.25) = %#x", got)
	}
	if got := evalOne(t, "i2f", uint32(0xFFFFFFFF)); got != testFBits(-1) {
		t.Errorf("i2f(-1) = %#x", got)
	}
	if got := evalOne(t, "f2i", testFBits(-3.7)); got != uint32(0xFFFFFFFD) {
		t.Errorf("f2i(-3.7) = %#x, want -3", got)
	}
	if got := evalOne(t, "f2i", testFBits(float32(math.NaN()))); got != 0 {
		t.Errorf("f2i(NaN) = %#x", got)
	}
	if got := evalOne(t, "f2i", testFBits(1e30)); got != 0x7FFFFFFF {
		t.Errorf("f2i(1e30) = %#x", got)
	}
	if got := evalOne(t, "f2i", testFBits(-1e30)); got != 0x80000000 {
		t.Errorf("f2i(-1e30) = %#x", got)
	}
}

func TestFloatOpSemantics(t *testing.T) {
	if got := evalOne(t, "fadd", testFBits(1.5), testFBits(2.25)); got != testFBits(3.75) {
		t.Errorf("fadd = %#x", got)
	}
	if got := evalOne(t, "fmul", testFBits(3), testFBits(-2)); got != testFBits(-6) {
		t.Errorf("fmul = %#x", got)
	}
	// FFMA uses a fused (float64) intermediate.
	a, b, c := float32(1.0000001), float32(1.0000001), float32(-1)
	want := testFBits(float32(float64(a)*float64(b) + float64(c)))
	if got := evalOne(t, "ffma", testFBits(a), testFBits(b), testFBits(c)); got != want {
		t.Errorf("ffma fused = %#x, want %#x", got, want)
	}
	if got := evalOne(t, "fmin", testFBits(1), testFBits(-2)); got != testFBits(-2) {
		t.Errorf("fmin = %#x", got)
	}
	if got := evalOne(t, "fmax", testFBits(1), testFBits(-2)); got != testFBits(1) {
		t.Errorf("fmax = %#x", got)
	}
}

func TestSFUOpSemantics(t *testing.T) {
	if got := evalOne(t, "ex2", testFBits(3)); got != testFBits(8) {
		t.Errorf("ex2(3) = %v", f32(got))
	}
	if got := evalOne(t, "lg2", testFBits(8)); got != testFBits(3) {
		t.Errorf("lg2(8) = %v", f32(got))
	}
	if got := evalOne(t, "sqrt", testFBits(9)); got != testFBits(3) {
		t.Errorf("sqrt(9) = %v", f32(got))
	}
	if got := evalOne(t, "rsqrt", testFBits(4)); got != testFBits(0.5) {
		t.Errorf("rsqrt(4) = %v", f32(got))
	}
	if got := evalOne(t, "rcp", testFBits(4)); got != testFBits(0.25) {
		t.Errorf("rcp(4) = %v", f32(got))
	}
	if got := f32(evalOne(t, "sin", testFBits(0))); got != 0 {
		t.Errorf("sin(0) = %v", got)
	}
	if got := f32(evalOne(t, "cos", testFBits(0))); got != 1 {
		t.Errorf("cos(0) = %v", got)
	}
}

// TestALUWraparoundProperty checks add/sub inverses over random values.
func TestALUWraparoundProperty(t *testing.T) {
	prog, err := asm.Assemble(`
	mov r1, $0
	mov r2, $1
	iadd r3, r1, r2
	isub r4, r3, r2
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 1, Y: 1}}
		lc.Params[0] = a
		lc.Params[1] = b
		ctx := &Context{Prog: prog, Launch: lc, Global: kernel.NewMemory()}
		w := New(0, 0, 0, 32, prog.NumRegs, 1)
		for w.Status() == StatusReady {
			if _, err := w.Execute(ctx); err != nil {
				return false
			}
		}
		return w.Reg(0, 4) == a && w.Reg(0, 3) == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStackInvariant checks that at every step, the union of live stack
// masks equals the set of non-exited lanes, and entries never overlap with
// the lanes of entries above them being executed... specifically: the top
// entry's mask is always a subset of the warp's live lanes.
func TestStackInvariant(t *testing.T) {
	prog, err := asm.Assemble(`
	mov r1, %tid.x
	and r2, r1, 7
LOOP:
	iadd r2, r2, 1
	and r3, r2, 3
	isetp.eq p0, r3, 0
	@p0 bra SKIP
	iadd r4, r4, 1
SKIP:
	isetp.lt p1, r2, 20
	@p1 bra LOOP
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	ctx := &Context{Prog: prog, Launch: lc, Global: kernel.NewMemory()}
	w := New(0, 0, 0, 32, prog.NumRegs, FullMask(32))
	for l := 0; l < 32; l++ {
		w.SetThreadCoords(l, uint32(l), 0)
	}
	steps := 0
	for w.Status() == StatusReady {
		if top := w.TopMask(); top&^FullMask(32) != 0 {
			t.Fatalf("top mask %x outside live lanes", top)
		}
		if _, err := w.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		// Invariant: every entry's mask is a subset of the entry below it
		// (the PDOM stack nests), except immediately after a divergence,
		// where the two pushed siblings partition their parent. So checking
		// subset-of-bottom suffices, plus a generous depth bound (one
		// reconvergence layer can remain per distinct loop trip count).
		masks := w.StackMasks()
		for i := 1; i < len(masks); i++ {
			if masks[i]&^masks[0] != 0 {
				t.Fatalf("entry %d mask %x escapes root mask %x", i, masks[i], masks[0])
			}
		}
		if w.StackDepth() > 24 {
			t.Fatalf("stack depth %d: entries are leaking", w.StackDepth())
		}
		if steps++; steps > 5000 {
			t.Fatal("runaway")
		}
	}
}
