package warp

import (
	"fmt"
	"math"

	"gscalar/internal/isa"
)

// Execute functionally executes the warp's next instruction and advances the
// SIMT stack. It returns an Outcome describing the dynamic instruction for
// the timing and power models. Execute returns an error only for simulator
// bugs or malformed programs (e.g. a PC out of range), never for ordinary
// program behaviour.
func (w *Warp) Execute(ctx *Context) (Outcome, error) {
	pc, ok := w.NextPC()
	if !ok {
		return Outcome{}, fmt.Errorf("warp: execute on finished warp %s", w)
	}
	if pc < 0 || pc >= ctx.Prog.Len() {
		return Outcome{}, fmt.Errorf("warp: pc %d out of range [0,%d) in %s", pc, ctx.Prog.Len(), w)
	}
	top := &w.stack[len(w.stack)-1]
	in := ctx.Prog.At(pc)

	issued := top.Mask
	active := issued
	if in.Guard.On {
		active &= w.PredMask(in.Guard.Reg, in.Guard.Neg)
	}

	out := Outcome{
		PC:     pc,
		Inst:   in,
		Active: active,
		Issued: issued,
		DstReg: -1,
	}
	out.Divergent = active != w.LiveMask

	switch in.Op {
	case isa.OpBra:
		w.execBranch(in, top, active, &out)
		return out, nil

	case isa.OpExit:
		w.execExit(active, top, &out)
		return out, nil

	case isa.OpBar:
		top.PC = pc + 1
		w.status = StatusBarrier
		out.AtBarrier = true
		return out, nil

	case isa.OpNop, isa.OpVMov:
		top.PC = pc + 1
		return out, nil
	}

	// Value-producing and memory instructions.
	top.PC = pc + 1
	switch {
	case in.IsLoad():
		if err := w.execLoad(ctx, in, active, &out); err != nil {
			return out, err
		}
	case in.IsStore():
		if err := w.execStore(ctx, in, active, &out); err != nil {
			return out, err
		}
	case in.Dst.Kind == isa.OpdPred:
		w.execSetP(ctx, in, active)
	default:
		w.execALU(ctx, in, active, &out)
	}
	return out, nil
}

func (w *Warp) execBranch(in *isa.Instruction, top *StackEntry, taken Mask, out *Outcome) {
	pc := top.PC
	switch {
	case taken == top.Mask:
		// Uniformly taken.
		top.PC = in.Target
		out.TookBranch = true
	case taken == 0:
		// Uniformly not taken.
		top.PC = pc + 1
	default:
		// Divergent: the executing entry becomes the reconvergence entry,
		// and the two sides are pushed (not-taken below taken, matching the
		// GPGPU-Sim PDOM stack).
		out.BranchDiverged = true
		out.TookBranch = true
		top.PC = in.RPC // may be -1: both sides exit before reconverging
		w.stack = append(w.stack,
			StackEntry{PC: pc + 1, RPC: in.RPC, Mask: top.Mask &^ taken},
			StackEntry{PC: in.Target, RPC: in.RPC, Mask: taken},
		)
	}
}

func (w *Warp) execExit(active Mask, top *StackEntry, out *Outcome) {
	w.exited |= active
	// Remove exited lanes from every stack entry.
	for i := range w.stack {
		w.stack[i].Mask &^= active
	}
	if top.Mask != 0 {
		// Guarded exit with surviving lanes: they continue at pc+1.
		top.PC = out.PC + 1
	}
	if _, ok := w.NextPC(); !ok {
		out.Exited = true
	}
}

func (w *Warp) execSetP(ctx *Context, in *isa.Instruction, active Mask) {
	p := in.Dst.Reg
	for lane := 0; lane < w.Width; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		a := w.operand(ctx, in.Srcs[0], lane)
		b := w.operand(ctx, in.Srcs[1], lane)
		var v bool
		if in.Op == isa.OpISetP {
			v = in.Cmp.Eval(int32(a), int32(b))
		} else {
			v = in.Cmp.EvalF(math.Float32frombits(a), math.Float32frombits(b))
		}
		w.setPred(lane, p, v)
	}
}

func (w *Warp) execALU(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) {
	dst := in.Dst.Reg
	vec := w.RegVec(dst)
	for lane := 0; lane < w.Width; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		vec[lane] = w.evalALU(ctx, in, lane)
	}
	out.DstReg = int(dst)
	out.DstVec = vec
}

func (w *Warp) evalALU(ctx *Context, in *isa.Instruction, lane int) uint32 {
	a := uint32(0)
	if in.NSrc > 0 {
		a = w.operand(ctx, in.Srcs[0], lane)
	}
	var b, c uint32
	if in.NSrc > 1 {
		b = w.operand(ctx, in.Srcs[1], lane)
	}
	if in.NSrc > 2 && in.Op != isa.OpSelP {
		c = w.operand(ctx, in.Srcs[2], lane)
	}

	switch in.Op {
	case isa.OpMov:
		return a
	case isa.OpIAdd:
		return a + b
	case isa.OpISub:
		return a - b
	case isa.OpIMul:
		return uint32(int32(a) * int32(b))
	case isa.OpIMad:
		return uint32(int32(a)*int32(b) + int32(c))
	case isa.OpIDiv:
		if b == 0 {
			return 0xFFFFFFFF
		}
		return uint32(int32(a) / int32(b))
	case isa.OpIRem:
		if b == 0 {
			return a
		}
		return uint32(int32(a) % int32(b))
	case isa.OpIMin:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case isa.OpIMax:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case isa.OpIAbs:
		if int32(a) < 0 {
			return uint32(-int32(a))
		}
		return a
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpNot:
		return ^a
	case isa.OpShl:
		return a << (b & 31)
	case isa.OpShr:
		return a >> (b & 31)
	case isa.OpSra:
		return uint32(int32(a) >> (b & 31))
	case isa.OpSelP:
		p := in.Srcs[2].Reg
		if w.preds[lane]&(1<<p) != 0 {
			return a
		}
		return b
	case isa.OpFAdd:
		return fbits(ffrom(a) + ffrom(b))
	case isa.OpFSub:
		return fbits(ffrom(a) - ffrom(b))
	case isa.OpFMul:
		return fbits(ffrom(a) * ffrom(b))
	case isa.OpFFma:
		return fbits(float32(float64(ffrom(a))*float64(ffrom(b)) + float64(ffrom(c))))
	case isa.OpFDiv:
		return fbits(ffrom(a) / ffrom(b))
	case isa.OpFMin:
		return fbits(float32(math.Min(float64(ffrom(a)), float64(ffrom(b)))))
	case isa.OpFMax:
		return fbits(float32(math.Max(float64(ffrom(a)), float64(ffrom(b)))))
	case isa.OpFAbs:
		return a &^ 0x80000000
	case isa.OpFNeg:
		return a ^ 0x80000000
	case isa.OpI2F:
		return fbits(float32(int32(a)))
	case isa.OpF2I:
		f := ffrom(a)
		switch {
		case math.IsNaN(float64(f)):
			return 0
		case f >= math.MaxInt32:
			return uint32(math.MaxInt32)
		case f <= math.MinInt32:
			return 0x80000000 // int32 min
		}
		return uint32(int32(f))
	case isa.OpSin:
		return fbits(float32(math.Sin(float64(ffrom(a)))))
	case isa.OpCos:
		return fbits(float32(math.Cos(float64(ffrom(a)))))
	case isa.OpEx2:
		return fbits(float32(math.Exp2(float64(ffrom(a)))))
	case isa.OpLg2:
		return fbits(float32(math.Log2(float64(ffrom(a)))))
	case isa.OpRsqrt:
		return fbits(float32(1 / math.Sqrt(float64(ffrom(a)))))
	case isa.OpRcp:
		return fbits(1 / ffrom(a))
	case isa.OpSqrt:
		return fbits(float32(math.Sqrt(float64(ffrom(a)))))
	}
	return 0
}

func (w *Warp) execLoad(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) error {
	dst := in.Dst.Reg
	vec := w.RegVec(dst)
	out.Addrs = w.addrVec(ctx)
	for lane := 0; lane < w.Width; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		addr := w.operand(ctx, in.Srcs[0], lane) + uint32(in.Off)
		out.Addrs[lane] = addr
		if in.Op == isa.OpLdGlobal {
			vec[lane] = ctx.Global.Load32(addr)
		} else {
			v, err := loadShared(ctx, addr)
			if err != nil {
				return fmt.Errorf("%v at pc %d line %d", err, out.PC, in.Line)
			}
			vec[lane] = v
		}
	}
	out.DstReg = int(dst)
	out.DstVec = vec
	out.IsMem = true
	out.IsGlobal = in.Op == isa.OpLdGlobal
	return nil
}

func (w *Warp) execStore(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) error {
	out.Addrs = w.addrVec(ctx)
	for lane := 0; lane < w.Width; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		addr := w.operand(ctx, in.Srcs[0], lane) + uint32(in.Off)
		out.Addrs[lane] = addr
		v := w.operand(ctx, in.Srcs[1], lane)
		if in.Op == isa.OpStGlobal {
			if ctx.StoreBuf != nil {
				ctx.StoreBuf.Store32(addr, v)
			} else {
				ctx.Global.Store32(addr, v)
			}
		} else if err := storeShared(ctx, addr, v); err != nil {
			return fmt.Errorf("%v at pc %d line %d", err, out.PC, in.Line)
		}
	}
	out.IsMem = true
	out.IsGlobal = in.Op == isa.OpStGlobal
	out.IsStore = true
	return nil
}

// addrVec returns the per-lane address vector for a memory outcome: the
// caller-provided scratch when available, a fresh allocation otherwise.
// Inactive lanes may hold stale values; every consumer masks by Active.
func (w *Warp) addrVec(ctx *Context) []uint32 {
	if len(ctx.AddrScratch) >= w.Width {
		return ctx.AddrScratch[:w.Width]
	}
	return make([]uint32, w.Width)
}

func loadShared(ctx *Context, addr uint32) (uint32, error) {
	i := addr / 4
	if int(i) >= len(ctx.Shared) {
		return 0, fmt.Errorf("warp: shared load at %#x outside %d-byte shared memory", addr, len(ctx.Shared)*4)
	}
	return ctx.Shared[i], nil
}

func storeShared(ctx *Context, addr uint32, v uint32) error {
	i := addr / 4
	if int(i) >= len(ctx.Shared) {
		return fmt.Errorf("warp: shared store at %#x outside %d-byte shared memory", addr, len(ctx.Shared)*4)
	}
	ctx.Shared[i] = v
	return nil
}

// operand evaluates a source operand for one lane.
func (w *Warp) operand(ctx *Context, o isa.Operand, lane int) uint32 {
	switch o.Kind {
	case isa.OpdReg:
		return w.Reg(lane, o.Reg)
	case isa.OpdImm:
		return o.Imm
	case isa.OpdParam:
		return ctx.Launch.Params[o.Reg]
	case isa.OpdSpecial:
		switch o.Special {
		case isa.SpecTidX:
			return w.tidX[lane]
		case isa.SpecTidY:
			return w.tidY[lane]
		case isa.SpecCtaIDX:
			return w.ctaidX
		case isa.SpecCtaIDY:
			return w.ctaidY
		case isa.SpecNTidX:
			return uint32(ctx.Launch.Block.X)
		case isa.SpecNTidY:
			return uint32(ctx.Launch.Block.Y)
		case isa.SpecNCtaX:
			return uint32(ctx.Launch.Grid.X)
		case isa.SpecNCtaY:
			return uint32(ctx.Launch.Grid.Y)
		case isa.SpecLaneID:
			return uint32(lane)
		case isa.SpecWarpID:
			return uint32(w.ID)
		}
	}
	return 0
}

func ffrom(bits uint32) float32 { return math.Float32frombits(bits) }
func fbits(f float32) uint32    { return math.Float32bits(f) }
