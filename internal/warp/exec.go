package warp

import (
	"fmt"
	"math"
	"math/bits"

	"gscalar/internal/isa"
)

// Execute functionally executes the warp's next instruction and advances the
// SIMT stack. It returns an Outcome describing the dynamic instruction for
// the timing and power models. Execute returns an error only for simulator
// bugs or malformed programs (e.g. a PC out of range), never for ordinary
// program behaviour.
//
// The per-lane loops below are structured for speed: every source operand is
// resolved once per instruction into a flat lane vector or a uniform scalar
// (srcOp), active lanes are visited by bit-iterating the mask (inactive
// lanes cost nothing, which matters on divergent workloads), and predicated
// merges are mask selects rather than per-lane branches.
func (w *Warp) Execute(ctx *Context) (Outcome, error) {
	pc, ok := w.NextPC()
	if !ok {
		return Outcome{}, fmt.Errorf("warp: execute on finished warp %s", w)
	}
	if pc < 0 || pc >= ctx.Prog.Len() {
		return Outcome{}, fmt.Errorf("warp: pc %d out of range [0,%d) in %s", pc, ctx.Prog.Len(), w)
	}
	top := &w.stack[len(w.stack)-1]
	in := ctx.Prog.At(pc)

	issued := top.Mask
	active := issued
	if in.Guard.On {
		active &= w.PredMask(in.Guard.Reg, in.Guard.Neg)
	}

	out := Outcome{
		PC:     pc,
		Inst:   in,
		Active: active,
		Issued: issued,
		DstReg: -1,
	}
	out.Divergent = active != w.LiveMask

	switch in.Op {
	case isa.OpBra:
		w.execBranch(in, top, active, &out)
		return out, nil

	case isa.OpExit:
		w.execExit(active, top, &out)
		return out, nil

	case isa.OpBar:
		top.PC = pc + 1
		w.status = StatusBarrier
		out.AtBarrier = true
		return out, nil

	case isa.OpNop, isa.OpVMov:
		top.PC = pc + 1
		return out, nil
	}

	// Value-producing and memory instructions.
	top.PC = pc + 1
	switch {
	case in.IsLoad():
		if err := w.execLoad(ctx, in, active, &out); err != nil {
			return out, err
		}
	case in.IsStore():
		if err := w.execStore(ctx, in, active, &out); err != nil {
			return out, err
		}
	case in.Dst.Kind == isa.OpdPred:
		w.execSetP(ctx, in, active)
	default:
		w.execALU(ctx, in, active, &out)
	}
	return out, nil
}

func (w *Warp) execBranch(in *isa.Instruction, top *StackEntry, taken Mask, out *Outcome) {
	pc := top.PC
	switch {
	case taken == top.Mask:
		// Uniformly taken.
		top.PC = in.Target
		out.TookBranch = true
	case taken == 0:
		// Uniformly not taken.
		top.PC = pc + 1
	default:
		// Divergent: the executing entry becomes the reconvergence entry,
		// and the two sides are pushed (not-taken below taken, matching the
		// GPGPU-Sim PDOM stack).
		out.BranchDiverged = true
		out.TookBranch = true
		top.PC = in.RPC // may be -1: both sides exit before reconverging
		w.stack = append(w.stack,
			StackEntry{PC: pc + 1, RPC: in.RPC, Mask: top.Mask &^ taken},
			StackEntry{PC: in.Target, RPC: in.RPC, Mask: taken},
		)
	}
}

func (w *Warp) execExit(active Mask, top *StackEntry, out *Outcome) {
	w.exited |= active
	// Remove exited lanes from every stack entry.
	for i := range w.stack {
		w.stack[i].Mask &^= active
	}
	if top.Mask != 0 {
		// Guarded exit with surviving lanes: they continue at pc+1.
		top.PC = out.PC + 1
	}
	if _, ok := w.NextPC(); !ok {
		out.Exited = true
	}
}

// srcOp is a source operand resolved once per instruction: a per-lane
// vector (vec non-nil) or a warp-uniform scalar.
type srcOp struct {
	vec []uint32
	imm uint32
}

func (s srcOp) at(lane int) uint32 {
	if s.vec != nil {
		return s.vec[lane]
	}
	return s.imm
}

// resolve maps an operand to its srcOp. Per-lane specials resolve to the
// warp's resident coordinate vectors (or the shared lane-index table), so
// no per-lane switch runs inside the execution loops.
func (w *Warp) resolve(ctx *Context, o isa.Operand) srcOp {
	switch o.Kind {
	case isa.OpdReg:
		return srcOp{vec: w.RegVec(o.Reg)}
	case isa.OpdImm:
		return srcOp{imm: o.Imm}
	case isa.OpdParam:
		return srcOp{imm: ctx.Launch.Params[o.Reg]}
	case isa.OpdSpecial:
		switch o.Special {
		case isa.SpecTidX:
			return srcOp{vec: w.tidX}
		case isa.SpecTidY:
			return srcOp{vec: w.tidY}
		case isa.SpecCtaIDX:
			return srcOp{imm: w.ctaidX}
		case isa.SpecCtaIDY:
			return srcOp{imm: w.ctaidY}
		case isa.SpecNTidX:
			return srcOp{imm: uint32(ctx.Launch.Block.X)}
		case isa.SpecNTidY:
			return srcOp{imm: uint32(ctx.Launch.Block.Y)}
		case isa.SpecNCtaX:
			return srcOp{imm: uint32(ctx.Launch.Grid.X)}
		case isa.SpecNCtaY:
			return srcOp{imm: uint32(ctx.Launch.Grid.Y)}
		case isa.SpecLaneID:
			return srcOp{vec: laneIndex[:w.Width]}
		case isa.SpecWarpID:
			return srcOp{imm: uint32(w.ID)}
		}
	}
	return srcOp{}
}

func (w *Warp) execSetP(ctx *Context, in *isa.Instruction, active Mask) {
	p := in.Dst.Reg
	a := w.resolve(ctx, in.Srcs[0])
	b := w.resolve(ctx, in.Srcs[1])
	var set Mask
	if in.Op == isa.OpISetP {
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if in.Cmp.Eval(int32(a.at(lane)), int32(b.at(lane))) {
				set |= Mask(1) << lane
			}
		}
	} else {
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if in.Cmp.EvalF(math.Float32frombits(a.at(lane)), math.Float32frombits(b.at(lane))) {
				set |= Mask(1) << lane
			}
		}
	}
	// Branchless predicated merge: only active lanes take the new value.
	w.preds[p] = (w.preds[p] &^ active) | set
}

func (w *Warp) execALU(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) {
	dst := in.Dst.Reg
	vec := w.RegVec(dst)
	var a, b, c srcOp
	if in.NSrc > 0 {
		a = w.resolve(ctx, in.Srcs[0])
	}
	if in.NSrc > 1 {
		b = w.resolve(ctx, in.Srcs[1])
	}
	if in.NSrc > 2 && in.Op != isa.OpSelP {
		c = w.resolve(ctx, in.Srcs[2])
	}

	// Dedicated flat-slice loops for the hottest opcodes; everything else
	// goes through the generic per-lane evaluator (operands still hoisted).
	switch in.Op {
	case isa.OpMov:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane)
		}
	case isa.OpIAdd:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane) + b.at(lane)
		}
	case isa.OpISub:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane) - b.at(lane)
		}
	case isa.OpIMul:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = uint32(int32(a.at(lane)) * int32(b.at(lane)))
		}
	case isa.OpIMad:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = uint32(int32(a.at(lane))*int32(b.at(lane)) + int32(c.at(lane)))
		}
	case isa.OpAnd:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane) & b.at(lane)
		}
	case isa.OpShl:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane) << (b.at(lane) & 31)
		}
	case isa.OpShr:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = a.at(lane) >> (b.at(lane) & 31)
		}
	case isa.OpSelP:
		// Branchless select on the predicate's lane mask.
		pm := w.preds[in.Srcs[2].Reg]
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			av, bv := a.at(lane), b.at(lane)
			sel := uint32(-((pm >> lane) & 1))
			vec[lane] = bv ^ ((av ^ bv) & sel)
		}
	case isa.OpFAdd:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = fbits(ffrom(a.at(lane)) + ffrom(b.at(lane)))
		}
	case isa.OpFMul:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = fbits(ffrom(a.at(lane)) * ffrom(b.at(lane)))
		}
	case isa.OpFFma:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = fbits(float32(float64(ffrom(a.at(lane)))*float64(ffrom(b.at(lane))) + float64(ffrom(c.at(lane)))))
		}
	default:
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			vec[lane] = aluEval(in, a.at(lane), b.at(lane), c.at(lane))
		}
	}
	out.DstReg = int(dst)
	out.DstVec = vec
}

// aluEval evaluates one lane of a generic ALU instruction from its
// already-fetched operand values. OpSelP never reaches here (execALU handles
// it with the predicate mask).
func aluEval(in *isa.Instruction, a, b, c uint32) uint32 {
	switch in.Op {
	case isa.OpMov:
		return a
	case isa.OpIAdd:
		return a + b
	case isa.OpISub:
		return a - b
	case isa.OpIMul:
		return uint32(int32(a) * int32(b))
	case isa.OpIMad:
		return uint32(int32(a)*int32(b) + int32(c))
	case isa.OpIDiv:
		if b == 0 {
			return 0xFFFFFFFF
		}
		return uint32(int32(a) / int32(b))
	case isa.OpIRem:
		if b == 0 {
			return a
		}
		return uint32(int32(a) % int32(b))
	case isa.OpIMin:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case isa.OpIMax:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case isa.OpIAbs:
		if int32(a) < 0 {
			return uint32(-int32(a))
		}
		return a
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpNot:
		return ^a
	case isa.OpShl:
		return a << (b & 31)
	case isa.OpShr:
		return a >> (b & 31)
	case isa.OpSra:
		return uint32(int32(a) >> (b & 31))
	case isa.OpFAdd:
		return fbits(ffrom(a) + ffrom(b))
	case isa.OpFSub:
		return fbits(ffrom(a) - ffrom(b))
	case isa.OpFMul:
		return fbits(ffrom(a) * ffrom(b))
	case isa.OpFFma:
		return fbits(float32(float64(ffrom(a))*float64(ffrom(b)) + float64(ffrom(c))))
	case isa.OpFDiv:
		return fbits(ffrom(a) / ffrom(b))
	case isa.OpFMin:
		return fbits(float32(math.Min(float64(ffrom(a)), float64(ffrom(b)))))
	case isa.OpFMax:
		return fbits(float32(math.Max(float64(ffrom(a)), float64(ffrom(b)))))
	case isa.OpFAbs:
		return a &^ 0x80000000
	case isa.OpFNeg:
		return a ^ 0x80000000
	case isa.OpI2F:
		return fbits(float32(int32(a)))
	case isa.OpF2I:
		f := ffrom(a)
		switch {
		case math.IsNaN(float64(f)):
			return 0
		case f >= math.MaxInt32:
			return uint32(math.MaxInt32)
		case f <= math.MinInt32:
			return 0x80000000 // int32 min
		}
		return uint32(int32(f))
	case isa.OpSin:
		return fbits(float32(math.Sin(float64(ffrom(a)))))
	case isa.OpCos:
		return fbits(float32(math.Cos(float64(ffrom(a)))))
	case isa.OpEx2:
		return fbits(float32(math.Exp2(float64(ffrom(a)))))
	case isa.OpLg2:
		return fbits(float32(math.Log2(float64(ffrom(a)))))
	case isa.OpRsqrt:
		return fbits(float32(1 / math.Sqrt(float64(ffrom(a)))))
	case isa.OpRcp:
		return fbits(1 / ffrom(a))
	case isa.OpSqrt:
		return fbits(float32(math.Sqrt(float64(ffrom(a)))))
	}
	return 0
}

func (w *Warp) execLoad(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) error {
	dst := in.Dst.Reg
	vec := w.RegVec(dst)
	out.Addrs = w.addrVec(ctx)
	base := w.resolve(ctx, in.Srcs[0])
	off := uint32(in.Off)
	if in.Op == isa.OpLdGlobal {
		if ctx.StoreBuf.ReadThrough() {
			// Relaxed epoch mode: stores stay buffered for up to an epoch, so
			// a load must see this SM's own pending stores (same-SM RAW
			// through global memory). ReadThrough is false whenever the
			// overlay is disabled or empty, keeping the serial/phased hot
			// path below branch-free through the buffer.
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				addr := base.at(lane) + off
				out.Addrs[lane] = addr
				if v, ok := ctx.StoreBuf.Load32(addr); ok {
					vec[lane] = v
				} else {
					vec[lane] = ctx.Global.Load32(addr)
				}
			}
		} else {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				addr := base.at(lane) + off
				out.Addrs[lane] = addr
				vec[lane] = ctx.Global.Load32(addr)
			}
		}
	} else {
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			addr := base.at(lane) + off
			out.Addrs[lane] = addr
			v, err := loadShared(ctx, addr)
			if err != nil {
				return fmt.Errorf("%v at pc %d line %d", err, out.PC, in.Line)
			}
			vec[lane] = v
		}
	}
	out.DstReg = int(dst)
	out.DstVec = vec
	out.IsMem = true
	out.IsGlobal = in.Op == isa.OpLdGlobal
	return nil
}

func (w *Warp) execStore(ctx *Context, in *isa.Instruction, active Mask, out *Outcome) error {
	out.Addrs = w.addrVec(ctx)
	base := w.resolve(ctx, in.Srcs[0])
	val := w.resolve(ctx, in.Srcs[1])
	off := uint32(in.Off)
	if in.Op == isa.OpStGlobal {
		if ctx.StoreBuf != nil {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				addr := base.at(lane) + off
				out.Addrs[lane] = addr
				ctx.StoreBuf.Store32(addr, val.at(lane))
			}
		} else {
			for m := active; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				addr := base.at(lane) + off
				out.Addrs[lane] = addr
				ctx.Global.Store32(addr, val.at(lane))
			}
		}
	} else {
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			addr := base.at(lane) + off
			out.Addrs[lane] = addr
			if err := storeShared(ctx, addr, val.at(lane)); err != nil {
				return fmt.Errorf("%v at pc %d line %d", err, out.PC, in.Line)
			}
		}
	}
	out.IsMem = true
	out.IsGlobal = in.Op == isa.OpStGlobal
	out.IsStore = true
	return nil
}

// addrVec returns the per-lane address vector for a memory outcome: the
// caller-provided scratch when available, a fresh allocation otherwise.
// Inactive lanes may hold stale values; every consumer masks by Active.
func (w *Warp) addrVec(ctx *Context) []uint32 {
	if len(ctx.AddrScratch) >= w.Width {
		return ctx.AddrScratch[:w.Width]
	}
	return make([]uint32, w.Width)
}

func loadShared(ctx *Context, addr uint32) (uint32, error) {
	i := addr / 4
	if int(i) >= len(ctx.Shared) {
		return 0, fmt.Errorf("warp: shared load at %#x outside %d-byte shared memory", addr, len(ctx.Shared)*4)
	}
	return ctx.Shared[i], nil
}

func storeShared(ctx *Context, addr uint32, v uint32) error {
	i := addr / 4
	if int(i) >= len(ctx.Shared) {
		return fmt.Errorf("warp: shared store at %#x outside %d-byte shared memory", addr, len(ctx.Shared)*4)
	}
	ctx.Shared[i] = v
	return nil
}

func ffrom(bits uint32) float32 { return math.Float32frombits(bits) }
func fbits(f float32) uint32    { return math.Float32bits(f) }
