package warp

import (
	"fmt"

	"gscalar/internal/kernel"
)

// BuildCTA constructs the warps of one CTA, with thread coordinates and CTA
// coordinates filled in. ctaLinear is the CTA's linear index in the grid.
func BuildCTA(prog *kernel.Program, lc *kernel.LaunchConfig, ctaLinear, warpWidth, globalWarpBase int) []*Warp {
	return BuildCTAStored(prog, lc, ctaLinear, warpWidth, globalWarpBase, nil)
}

// BuildCTAStored is BuildCTA with lane storage drawn from alloc (e.g. a
// regfile arena's Alloc): each warp receives one StorageWords-sized zeroed
// chunk. A nil alloc self-allocates per warp.
func BuildCTAStored(prog *kernel.Program, lc *kernel.LaunchConfig, ctaLinear, warpWidth, globalWarpBase int, alloc func(words int) []uint32) []*Warp {
	threads := lc.Block.Count()
	nwarps := (threads + warpWidth - 1) / warpWidth
	ctaX := uint32(ctaLinear % lc.Grid.X)
	ctaY := uint32(ctaLinear / lc.Grid.X)

	warps := make([]*Warp, nwarps)
	for wi := 0; wi < nwarps; wi++ {
		lanes := warpWidth
		if rem := threads - wi*warpWidth; rem < lanes {
			lanes = rem
		}
		var store []uint32
		if alloc != nil {
			store = alloc(StorageWords(prog.NumRegs, warpWidth))
		}
		w := NewStored(globalWarpBase+wi, ctaLinear, wi, warpWidth, prog.NumRegs, FullMask(lanes), store)
		w.SetCTACoords(ctaX, ctaY)
		for lane := 0; lane < lanes; lane++ {
			t := wi*warpWidth + lane
			w.SetThreadCoords(lane, uint32(t%lc.Block.X), uint32(t/lc.Block.X))
		}
		warps[wi] = w
	}
	return warps
}

// FuncRunResult summarises a functional (untimed) execution.
type FuncRunResult struct {
	WarpInsts      uint64 // dynamic warp-instructions executed
	ThreadInsts    uint64 // dynamic thread-instructions (sum of active lanes)
	DivergentInsts uint64
}

// FuncRun executes the whole launch functionally, CTA by CTA, interleaving
// the warps of a CTA round-robin so barriers work. It is the golden model
// the timed simulator is checked against. maxInsts bounds runaway kernels
// (0 means a large default).
func FuncRun(prog *kernel.Program, lc *kernel.LaunchConfig, mem *kernel.Memory, warpWidth int, maxInsts uint64) (FuncRunResult, error) {
	var res FuncRunResult
	if maxInsts == 0 {
		maxInsts = 1 << 32
	}
	nCTAs := lc.Grid.Count()
	for cta := 0; cta < nCTAs; cta++ {
		warps := BuildCTA(prog, lc, cta, warpWidth, 0)
		ctx := &Context{
			Prog:   prog,
			Launch: lc,
			Global: mem,
			Shared: make([]uint32, (lc.SharedBytes+3)/4),
		}
		if err := runCTA(ctx, warps, &res, maxInsts); err != nil {
			return res, fmt.Errorf("cta %d: %w", cta, err)
		}
	}
	return res, nil
}

func runCTA(ctx *Context, warps []*Warp, res *FuncRunResult, maxInsts uint64) error {
	for {
		progress := false
		allDone := true
		atBarrier := 0
		live := 0
		for _, w := range warps {
			switch w.Status() {
			case StatusDone:
				continue
			case StatusBarrier:
				allDone = false
				atBarrier++
				live++
				continue
			}
			allDone = false
			live++
			// Run the warp until it blocks (barrier) or finishes, to keep
			// the functional model fast; round-robin only matters at
			// barriers.
			for w.Status() == StatusReady {
				out, err := w.Execute(ctx)
				if err != nil {
					return err
				}
				res.WarpInsts++
				res.ThreadInsts += uint64(PopCount(out.Active))
				if out.Divergent {
					res.DivergentInsts++
				}
				progress = true
				if res.WarpInsts > maxInsts {
					return fmt.Errorf("warp: instruction budget %d exceeded (runaway kernel?)", maxInsts)
				}
			}
		}
		if allDone {
			return nil
		}
		// Release barrier when every live warp has arrived.
		if atBarrier == live && atBarrier > 0 {
			for _, w := range warps {
				if w.Status() == StatusBarrier {
					w.ClearBarrier()
				}
			}
			progress = true
		}
		if !progress {
			return fmt.Errorf("warp: deadlock — %d/%d warps at barrier", atBarrier, live)
		}
	}
}
