// Package warp implements per-warp architectural state: thread registers,
// predicates, the PDOM SIMT reconvergence stack, and functional execution of
// every ISA instruction. The timing model (package sm) drives warps through
// this package; a standalone reference interpreter (FuncRun) executes whole
// launches functionally for cross-checking.
package warp

import (
	"fmt"
	"math/bits"

	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// Mask is an active-lane mask; bit i set means lane i is active. A 64-bit
// mask supports the paper's Figure 10 warp-size-64 sweep.
type Mask = uint64

// NumPreds is the number of per-lane predicate registers (p0..p7).
const NumPreds = 8

// FullMask returns a mask with the low n bits set.
func FullMask(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return (Mask(1) << n) - 1
}

// PopCount returns the number of set bits in m.
func PopCount(m Mask) int { return bits.OnesCount64(m) }

// laneIndex is the shared, read-only per-lane index vector backing the
// %laneid special register for every warp (lanes are capped at 64).
var laneIndex = func() [64]uint32 {
	var v [64]uint32
	for i := range v {
		v[i] = uint32(i)
	}
	return v
}()

// StackEntry is one entry of the SIMT reconvergence stack.
type StackEntry struct {
	PC   int
	RPC  int // reconvergence PC: pop when PC reaches it; -1 = never
	Mask Mask
}

// Status describes what a warp is currently doing.
type Status uint8

// Warp statuses.
const (
	StatusReady   Status = iota // has a next instruction
	StatusBarrier               // waiting at bar.sync
	StatusDone                  // all threads exited
)

// Warp holds the architectural state of one warp. Lane state is kept in
// structure-of-arrays form: registers are one flat [reg*Width + lane] slice
// (optionally carved from a shared per-SM arena, see NewStored), and the
// predicate registers are stored as per-predicate lane masks, so predicate
// reads are single mask operations instead of per-lane loops.
type Warp struct {
	ID       int  // warp index within its CTA
	CTA      int  // linear CTA index within the grid
	GlobalID int  // unique warp id across the launch
	Width    int  // threads per warp (32 default; 64 for the Fig 10 sweep)
	LiveMask Mask // lanes populated at launch (tail warps may be partial)

	regs  []uint32       // [reg*Width + lane]
	preds [NumPreds]Mask // preds[p] bit i = predicate p of lane i
	nregs int
	wmask Mask     // FullMask(Width)
	store []uint32 // the full backing chunk (regs + tid vectors)

	// Per-lane special register values, fixed at launch.
	tidX, tidY     []uint32
	ctaidX, ctaidY uint32
	exited         Mask

	stack   []StackEntry
	status  Status
	barrier bool // raised when the warp reaches a barrier; cleared by the SM
}

// StorageWords returns the number of uint32 words of backing storage one
// warp needs: the register file plus the two thread-coordinate vectors.
func StorageWords(numRegs, width int) int { return (numRegs + 2) * width }

// New creates a warp of width lanes running prog with liveMask lanes
// populated, with self-allocated lane storage.
func New(globalID, ctaID, warpInCTA, width, numRegs int, liveMask Mask) *Warp {
	return NewStored(globalID, ctaID, warpInCTA, width, numRegs, liveMask, nil)
}

// NewStored is New with caller-provided lane storage: store must be zeroed
// and at least StorageWords(numRegs, width) long (nil allocates). Backing
// the warps of an SM from one flat arena keeps their register state
// contiguous and launch-time allocation-free.
func NewStored(globalID, ctaID, warpInCTA, width, numRegs int, liveMask Mask, store []uint32) *Warp {
	need := StorageWords(numRegs, width)
	if store == nil {
		store = make([]uint32, need)
	} else if len(store) < need {
		panic(fmt.Sprintf("warp: storage %d words, need %d", len(store), need))
	}
	w := &Warp{
		ID:       warpInCTA,
		CTA:      ctaID,
		GlobalID: globalID,
		Width:    width,
		LiveMask: liveMask,
		regs:     store[:numRegs*width],
		nregs:    numRegs,
		wmask:    FullMask(width),
		store:    store[:need],
		tidX:     store[numRegs*width : (numRegs+1)*width],
		tidY:     store[(numRegs+1)*width : (numRegs+2)*width],
	}
	w.stack = append(w.stack, StackEntry{PC: 0, RPC: -1, Mask: liveMask})
	return w
}

// Storage returns the warp's backing chunk, for recycling into the arena it
// was carved from once the warp's slot is released.
func (w *Warp) Storage() []uint32 { return w.store }

// SetThreadCoords sets a lane's thread coordinates within its CTA.
func (w *Warp) SetThreadCoords(lane int, tidX, tidY uint32) {
	w.tidX[lane] = tidX
	w.tidY[lane] = tidY
}

// SetCTACoords sets the warp's CTA coordinates.
func (w *Warp) SetCTACoords(x, y uint32) { w.ctaidX, w.ctaidY = x, y }

// RegVec returns the full vector of register r (one value per lane). The
// returned slice aliases warp state; callers must not retain it across
// executions if they need a snapshot.
func (w *Warp) RegVec(r uint8) []uint32 {
	i := int(r) * w.Width
	return w.regs[i : i+w.Width]
}

// Reg returns register r of a single lane.
func (w *Warp) Reg(lane int, r uint8) uint32 { return w.regs[int(r)*w.Width+lane] }

// SetReg sets register r of a single lane.
func (w *Warp) SetReg(lane int, r uint8, v uint32) { w.regs[int(r)*w.Width+lane] = v }

// PredMask returns the set of lanes whose predicate p is set (or clear, if
// neg). With per-predicate mask storage this is a single mask select.
func (w *Warp) PredMask(p uint8, neg bool) Mask {
	m := w.preds[p]
	if neg {
		m = ^m
	}
	return m & w.wmask
}

func (w *Warp) setPred(lane int, p uint8, v bool) {
	bit := Mask(1) << lane
	if v {
		w.preds[p] |= bit
	} else {
		w.preds[p] &^= bit
	}
}

// Status returns the warp's scheduling status.
func (w *Warp) Status() Status {
	if w.status == StatusBarrier {
		return StatusBarrier
	}
	if len(w.stack) == 0 {
		return StatusDone
	}
	return StatusReady
}

// ClearBarrier releases the warp from a barrier.
func (w *Warp) ClearBarrier() { w.status = StatusReady }

// StackDepth returns the current SIMT stack depth (for tests/metrics).
func (w *Warp) StackDepth() int { return len(w.stack) }

// StackMasks returns the active masks of the stack entries, bottom first
// (for tests/metrics).
func (w *Warp) StackMasks() []Mask {
	out := make([]Mask, len(w.stack))
	for i, e := range w.stack {
		out[i] = e.Mask
	}
	return out
}

// TopMask returns the active mask of the stack top (0 when done).
func (w *Warp) TopMask() Mask {
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].Mask
}

// NextPC pops reconverged and empty stack entries and returns the PC the
// warp will execute next. ok is false if the warp has finished.
func (w *Warp) NextPC() (pc int, ok bool) {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.Mask == 0 || (top.RPC >= 0 && top.PC == top.RPC) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return top.PC, true
	}
	return 0, false
}

// Peek returns the instruction the warp will execute next and the active
// mask it will execute with (guard applied), without executing it.
// Reconverged stack entries are popped as a side effect; Execute would pop
// them anyway.
func (w *Warp) Peek(ctx *Context) (pc int, in *isa.Instruction, active Mask, ok bool) {
	pc, ok = w.NextPC()
	if !ok || pc < 0 || pc >= ctx.Prog.Len() {
		return 0, nil, 0, false
	}
	in = ctx.Prog.At(pc)
	active = w.stack[len(w.stack)-1].Mask
	if in.Guard.On {
		active &= w.PredMask(in.Guard.Reg, in.Guard.Neg)
	}
	return pc, in, active, true
}

// maskString formats a mask over width lanes for diagnostics.
func maskString(m Mask, width int) string {
	b := make([]byte, width)
	for i := 0; i < width; i++ {
		if m&(1<<i) != 0 {
			b[width-1-i] = '1'
		} else {
			b[width-1-i] = '0'
		}
	}
	return string(b)
}

// String summarises the warp for diagnostics.
func (w *Warp) String() string {
	pc, ok := -1, false
	if len(w.stack) > 0 {
		pc, ok = w.stack[len(w.stack)-1].PC, true
	}
	_ = ok
	return fmt.Sprintf("warp{cta=%d id=%d pc=%d mask=%s depth=%d}",
		w.CTA, w.ID, pc, maskString(w.TopMask(), w.Width), len(w.stack))
}

// Context carries the launch-wide state functional execution needs.
type Context struct {
	Prog   *kernel.Program
	Launch *kernel.LaunchConfig
	Global *kernel.Memory
	Shared []uint32 // per-CTA shared memory (word-addressed model)
	// StoreBuf, when non-nil, receives global stores instead of Global
	// (phased simulation: stores are buffered during the concurrent compute
	// phase and committed serially at end of cycle).
	StoreBuf *kernel.StoreBuffer
	// AddrScratch, when non-nil and at least warp-width long, backs
	// Outcome.Addrs instead of a fresh allocation. Only lanes set in
	// Outcome.Active are written; the caller owns the buffer's lifetime
	// (the SM hands each operand collector's scratch to the instruction it
	// holds, so the vector stays valid exactly until dispatch consumes it).
	AddrScratch []uint32
}

// Outcome reports what one warp-instruction execution did; the timing model
// and the G-Scalar classification logic consume it.
type Outcome struct {
	PC     int
	Inst   *isa.Instruction
	Active Mask // lanes that executed (guard applied)
	Issued Mask // lanes active at the stack top when fetched (pre-guard)

	// Register writeback, if any.
	DstReg int      // -1 if none
	DstVec []uint32 // full register vector after the (possibly partial) write
	// Memory access, if any.
	IsMem    bool
	IsGlobal bool
	IsStore  bool
	Addrs    []uint32 // per-lane byte addresses (valid where Active)

	Divergent      bool // Active != warp live mask (paper's divergence notion)
	AtBarrier      bool
	Exited         bool // warp finished after this instruction
	TookBranch     bool
	BranchDiverged bool
}
