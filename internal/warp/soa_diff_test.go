package warp

import (
	"fmt"
	"math/rand"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// This file pins the structure-of-arrays execution rework to the semantics
// it replaced: refWarp is an array-of-structures reference model — per-lane
// register arrays, per-lane boolean predicates, per-lane `if active` checks
// instead of mask iteration and branchless merges. The two models run the
// same programs in lockstep and must agree on every register, predicate,
// shared word, and global word after every instruction.

type refWarp struct {
	regs       [][]uint32       // [lane][reg] — AoS, the transposed layout
	preds      [][NumPreds]bool // [lane][p]
	tidX, tidY []uint32
}

func newRefWarp(w *Warp, numRegs int) *refWarp {
	r := &refWarp{
		regs:  make([][]uint32, w.Width),
		preds: make([][NumPreds]bool, w.Width),
		tidX:  make([]uint32, w.Width),
		tidY:  make([]uint32, w.Width),
	}
	for lane := 0; lane < w.Width; lane++ {
		r.regs[lane] = make([]uint32, numRegs)
		r.tidX[lane] = w.tidX[lane]
		r.tidY[lane] = w.tidY[lane]
	}
	return r
}

func (r *refWarp) operand(ctx *Context, w *Warp, lane int, o isa.Operand) uint32 {
	switch o.Kind {
	case isa.OpdReg:
		return r.regs[lane][o.Reg]
	case isa.OpdImm:
		return o.Imm
	case isa.OpdParam:
		return ctx.Launch.Params[o.Reg]
	case isa.OpdSpecial:
		switch o.Special {
		case isa.SpecTidX:
			return r.tidX[lane]
		case isa.SpecTidY:
			return r.tidY[lane]
		case isa.SpecCtaIDX:
			return w.ctaidX
		case isa.SpecCtaIDY:
			return w.ctaidY
		case isa.SpecNTidX:
			return uint32(ctx.Launch.Block.X)
		case isa.SpecNTidY:
			return uint32(ctx.Launch.Block.Y)
		case isa.SpecNCtaX:
			return uint32(ctx.Launch.Grid.X)
		case isa.SpecNCtaY:
			return uint32(ctx.Launch.Grid.Y)
		case isa.SpecLaneID:
			return uint32(lane)
		case isa.SpecWarpID:
			return uint32(w.ID)
		}
	}
	return 0
}

// step applies the reference (per-lane, branchy) semantics of one
// instruction. Control flow is shared with the real warp — the lockstep
// driver hands step the instruction and active mask the real warp resolved —
// so the comparison isolates the lane-state data path.
func (r *refWarp) step(ctx *Context, w *Warp, global *kernel.Memory, shared []uint32,
	in *isa.Instruction, active Mask) error {
	switch in.Op {
	case isa.OpBra, isa.OpExit, isa.OpBar, isa.OpNop, isa.OpVMov:
		return nil
	}
	off := uint32(in.Off)
	switch {
	case in.IsLoad():
		for lane := 0; lane < w.Width; lane++ {
			if active&(Mask(1)<<lane) == 0 {
				continue
			}
			addr := r.operand(ctx, w, lane, in.Srcs[0]) + off
			if in.Op == isa.OpLdGlobal {
				r.regs[lane][in.Dst.Reg] = global.Load32(addr)
			} else {
				i := addr / 4
				if int(i) >= len(shared) {
					return fmt.Errorf("ref: shared load at %#x out of range", addr)
				}
				r.regs[lane][in.Dst.Reg] = shared[i]
			}
		}
	case in.IsStore():
		for lane := 0; lane < w.Width; lane++ {
			if active&(Mask(1)<<lane) == 0 {
				continue
			}
			addr := r.operand(ctx, w, lane, in.Srcs[0]) + off
			v := r.operand(ctx, w, lane, in.Srcs[1])
			if in.Op == isa.OpStGlobal {
				global.Store32(addr, v)
			} else {
				i := addr / 4
				if int(i) >= len(shared) {
					return fmt.Errorf("ref: shared store at %#x out of range", addr)
				}
				shared[i] = v
			}
		}
	case in.Dst.Kind == isa.OpdPred:
		for lane := 0; lane < w.Width; lane++ {
			if active&(Mask(1)<<lane) == 0 {
				continue
			}
			a := r.operand(ctx, w, lane, in.Srcs[0])
			b := r.operand(ctx, w, lane, in.Srcs[1])
			if in.Op == isa.OpISetP {
				r.preds[lane][in.Dst.Reg] = in.Cmp.Eval(int32(a), int32(b))
			} else {
				r.preds[lane][in.Dst.Reg] = in.Cmp.EvalF(ffrom(a), ffrom(b))
			}
		}
	case in.Op == isa.OpSelP:
		for lane := 0; lane < w.Width; lane++ {
			if active&(Mask(1)<<lane) == 0 {
				continue
			}
			if r.preds[lane][in.Srcs[2].Reg] {
				r.regs[lane][in.Dst.Reg] = r.operand(ctx, w, lane, in.Srcs[0])
			} else {
				r.regs[lane][in.Dst.Reg] = r.operand(ctx, w, lane, in.Srcs[1])
			}
		}
	default:
		for lane := 0; lane < w.Width; lane++ {
			if active&(Mask(1)<<lane) == 0 {
				continue
			}
			var a, b, c uint32
			if in.NSrc > 0 {
				a = r.operand(ctx, w, lane, in.Srcs[0])
			}
			if in.NSrc > 1 {
				b = r.operand(ctx, w, lane, in.Srcs[1])
			}
			if in.NSrc > 2 {
				c = r.operand(ctx, w, lane, in.Srcs[2])
			}
			r.regs[lane][in.Dst.Reg] = aluEval(in, a, b, c)
		}
	}
	return nil
}

// compare checks every lane register and predicate of both models.
func (r *refWarp) compare(w *Warp, numRegs int) error {
	for lane := 0; lane < w.Width; lane++ {
		for reg := 0; reg < numRegs; reg++ {
			if got, want := w.Reg(lane, uint8(reg)), r.regs[lane][reg]; got != want {
				return fmt.Errorf("lane %d r%d: SoA %#x, AoS ref %#x", lane, reg, got, want)
			}
		}
		for p := 0; p < NumPreds; p++ {
			got := w.PredMask(uint8(p), false)&(Mask(1)<<lane) != 0
			if got != r.preds[lane][p] {
				return fmt.Errorf("lane %d p%d: SoA %v, AoS ref %v", lane, p, got, r.preds[lane][p])
			}
		}
	}
	return nil
}

// runDiff executes one program on both models in lockstep and compares full
// architectural state after every instruction, plus both global memories at
// the end.
func runDiff(t *testing.T, src string, width int, seed int64) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	const bufWords = 4096
	newLC := func(m *kernel.Memory) *kernel.LaunchConfig {
		l := &kernel.LaunchConfig{
			Grid: kernel.Dim{X: 2, Y: 1}, Block: kernel.Dim{X: width, Y: 1},
			SharedBytes: 256,
		}
		l.Params[0] = m.Alloc(bufWords * 4)
		return l
	}
	gmem := kernel.NewMemory()
	lc := newLC(gmem)
	refGlobal := kernel.NewMemory()
	refLC := newLC(refGlobal)
	if refLC.Params[0] != lc.Params[0] {
		t.Fatal("reference allocator diverged")
	}
	// Seed both memories with the same pseudo-random contents so loads
	// observe non-trivial data.
	rng := rand.New(rand.NewSource(seed))
	init := make([]uint32, bufWords)
	for i := range init {
		init[i] = rng.Uint32()
	}
	gmem.WriteU32(lc.Params[0], init)
	refGlobal.WriteU32(refLC.Params[0], init)

	w := New(0, 1, 0, width, prog.NumRegs, FullMask(width))
	w.SetCTACoords(1, 0)
	for lane := 0; lane < width; lane++ {
		w.SetThreadCoords(lane, uint32(lane), 0)
	}
	ctx := &Context{
		Prog: prog, Launch: lc, Global: gmem,
		Shared: make([]uint32, (lc.SharedBytes+3)/4),
	}
	ref := newRefWarp(w, prog.NumRegs)
	refShared := make([]uint32, len(ctx.Shared))

	for steps := 0; w.Status() == StatusReady; steps++ {
		if steps > 100_000 {
			t.Fatalf("runaway kernel\n%s", src)
		}
		_, in, active, ok := w.Peek(ctx)
		if !ok {
			break
		}
		out, err := w.Execute(ctx)
		if err != nil {
			t.Fatalf("step %d: %v\n%s", steps, err, src)
		}
		if out.Active != active {
			t.Fatalf("step %d: Peek active %x vs Execute %x", steps, active, out.Active)
		}
		if err := ref.step(ctx, w, refGlobal, refShared, in, active); err != nil {
			t.Fatalf("step %d: %v\n%s", steps, err, src)
		}
		if err := ref.compare(w, prog.NumRegs); err != nil {
			t.Fatalf("step %d pc %d (%v): %v\n%s", steps, out.PC, in.Op, err, src)
		}
	}
	for i, s := range ctx.Shared {
		if s != refShared[i] {
			t.Fatalf("shared[%d]: SoA %#x, AoS ref %#x\n%s", i, s, refShared[i], src)
		}
	}
	got := gmem.ReadU32(lc.Params[0], bufWords)
	want := refGlobal.ReadU32(refLC.Params[0], bufWords)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("global[%d]: SoA %#x, AoS ref %#x\n%s", i, got[i], want[i], src)
		}
	}
}

// genDiffKernel builds a random structured kernel exercising the reworked
// paths: mask-iterated ALU loops, branchless SetP/SelP merges, guarded
// instructions (partial-mask merges), float ops, divergent loops, and
// global + shared memory traffic.
func genDiffKernel(rng *rand.Rand) string {
	src := "\tmov r1, %tid.x\n\tmov r2, %laneid\n"
	src += "\tmov r3, 1\n\tmov r4, 2\n\tmov r5, 3\n"
	// Global pointer: lane-strided slot inside the 4096-word buffer.
	src += "\tand r9, r1, 1023\n\tshl r9, r9, 2\n\tiadd r9, $0, r9\n"
	aluOps := []string{"iadd", "isub", "imul", "and", "or", "xor", "imin",
		"imax", "shl", "shr", "sra"}
	unaryOps := []string{"iabs", "not"}
	fOps := []string{"fadd", "fsub", "fmul", "fmin", "fmax"}
	nBlocks := 2 + rng.Intn(4)
	for b := 0; b < nBlocks; b++ {
		for i := 0; i < 3+rng.Intn(5); i++ {
			dst := 3 + rng.Intn(4)
			a := 1 + rng.Intn(6)
			c := 1 + rng.Intn(6)
			switch rng.Intn(6) {
			case 0: // float chain on i2f-sanitised values
				src += fmt.Sprintf("\tand r7, r%d, 255\n\ti2f r7, r7\n", a)
				src += fmt.Sprintf("\t%s r%d, r7, r7\n", fOps[rng.Intn(len(fOps))], dst)
				src += fmt.Sprintf("\tf2i r%d, r%d\n", dst, dst)
			case 1: // predicated select
				src += fmt.Sprintf("\tisetp.%s p%d, r%d, %d\n",
					[]string{"lt", "ge", "eq", "ne", "le", "gt"}[rng.Intn(6)],
					rng.Intn(4), a, rng.Intn(16))
				src += fmt.Sprintf("\tselp r%d, r%d, r%d, p%d\n", dst, a, c, rng.Intn(4))
			case 2: // guarded op: a partial-mask merge into dst
				src += fmt.Sprintf("\tisetp.lt p%d, r%d, %d\n", rng.Intn(4), a, rng.Intn(32))
				neg := ""
				if rng.Intn(2) == 0 {
					neg = "!"
				}
				src += fmt.Sprintf("\t@%sp%d iadd r%d, r%d, %d\n",
					neg, rng.Intn(4), dst, a, rng.Intn(100))
			case 3: // global round-trip through the lane's slot
				src += fmt.Sprintf("\tstg [r9+%d], r%d\n\tldg r%d, [r9+%d]\n",
					rng.Intn(4)*4, a, dst, rng.Intn(4)*4)
			case 4: // shared round-trip (64 words)
				src += fmt.Sprintf("\tand r8, r%d, 63\n\tshl r8, r8, 2\n", a)
				src += fmt.Sprintf("\tsts [r8], r%d\n\tlds r%d, [r8]\n", a, dst)
			default:
				if rng.Intn(6) == 0 {
					src += fmt.Sprintf("\t%s r%d, r%d\n",
						unaryOps[rng.Intn(len(unaryOps))], dst, a)
				} else {
					src += fmt.Sprintf("\t%s r%d, r%d, r%d\n",
						aluOps[rng.Intn(len(aluOps))], dst, a, c)
				}
			}
		}
		// Data-dependent forward branch over the next chunk.
		src += fmt.Sprintf("\tand r6, r%d, 7\n", 3+rng.Intn(4))
		src += fmt.Sprintf("\tisetp.%s p0, r6, %d\n",
			[]string{"lt", "ge", "eq", "ne"}[rng.Intn(4)], rng.Intn(8))
		src += fmt.Sprintf("\t@p0 bra B%d\n", b)
		src += fmt.Sprintf("\tiadd r%d, r%d, %d\n", 3+rng.Intn(4), 3+rng.Intn(4), rng.Intn(100))
		src += fmt.Sprintf("B%d:\n", b)
	}
	// Divergent loop: per-lane trip count.
	src += "\tand r7, r2, 3\n\tmov r8, 0\nLOOP:\n"
	src += "\tiadd r8, r8, 1\n\tiadd r3, r3, r8\n"
	src += "\tisetp.le p1, r8, r7\n\t@p1 bra LOOP\n"
	// Store the live registers so the global comparison sees them.
	src += "\tshl r10, r1, 4\n\tiadd r10, $0, r10\n"
	for i, r := range []int{3, 4, 5} {
		src += fmt.Sprintf("\tstg [r10+%d], r%d\n", i*4, r)
	}
	src += "\texit\n"
	return src
}

// TestSoAMatchesAoSReference runs randomized kernels through the lockstep
// SoA-vs-AoS comparison at warp widths 32 and 64.
func TestSoAMatchesAoSReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 30
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		width := 32
		if trial%3 == 2 {
			width = 64
		}
		runDiff(t, genDiffKernel(rng), width, int64(trial))
	}
}

// TestSoAMatchesAoSOnFuzzCorpus replays the terminating seeds of the
// assembler fuzz corpus (internal/asm FuzzAssemble) through the same
// differential harness — tiny programs that hit operand-kind corners the
// random generator under-samples.
func TestSoAMatchesAoSOnFuzzCorpus(t *testing.T) {
	seeds := []string{
		"exit",
		".kernel k\nmov r1, %tid.x\nexit",
		"@p0 bra L\nL: exit",
		"ldg r1, [r2+4]\nexit",
		"isetp.lt p0, r1, r2\n@p0 exit\nexit",
		"mov r1, 1.5\nstg [r1-8], r2\nexit",
		"selp r1, r2, r3, p0\nexit",
		"mov r1, %nctaid.x\nimad r2, %ctaid.x, %ntid.x, r1\nexit",
	}
	for i, src := range seeds {
		runDiff(t, src, 32, int64(i))
	}
}
