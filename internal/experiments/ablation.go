package experiments

import (
	"fmt"

	"gscalar"

	"gscalar/internal/gpu"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
	"gscalar/internal/workloads"
)

// runCustomArch runs one workload under an arbitrary SM-level architecture
// (for ablations the public Arch enum does not expose). Results are
// memoized like runner.run's, keyed by the full sm.Arch value — all of its
// fields are plain values, so the rendering is a faithful content hash.
func (s *Suite) runCustomArch(abbr string, arch sm.Arch) (gpu.Result, error) {
	key := fmt.Sprintf("%s|custom:%+v/%s", configKey(s.r.o.Config, s.r.o.Scale), arch, abbr)
	if v, ok := s.r.cache.get(key); ok {
		return v.(gpu.Result), nil
	}
	w, ok := workloads.ByAbbr(abbr)
	if !ok {
		return gpu.Result{}, errUnknown(abbr)
	}
	inst, err := w.Build(s.r.o.Scale)
	if err != nil {
		return gpu.Result{}, err
	}
	cfg := gpu.DefaultConfig()
	pub := s.r.o.Config
	cfg.NumSMs = pub.NumSMs
	cfg.CoreClockHz = pub.CoreClockHz
	cfg.Workers = pub.Workers
	res, err := gpu.RunContext(s.r.ctx, cfg, arch, inst.Prog, inst.Launch, inst.Mem)
	if err != nil {
		return res, err
	}
	s.r.cache.put(key, res)
	return res, nil
}

type unknownErr string

func (e unknownErr) Error() string { return "experiments: unknown workload " + string(e) }

func errUnknown(abbr string) error { return unknownErr(abbr) }

// HalfAblationRow quantifies §4.3's design choice: half-warp scalar
// execution (and its second BVR/EBR set) versus plain G-Scalar.
type HalfAblationRow struct {
	Abbr        string
	WithHalf    float64 // IPC/W vs baseline
	WithoutHalf float64
	HalfElig    float64 // half-scalar instruction fraction
}

// HalfAblation runs G-Scalar with and without half-warp support.
func (s *Suite) HalfAblation() ([]HalfAblationRow, error) {
	noHalf := sm.GScalar()
	noHalf.F.HalfScalar = false
	noHalf.F.HalfCompression = false

	var rows []HalfAblationRow
	for _, abbr := range s.r.o.Workloads {
		base, err := s.r.run(gscalar.Baseline, abbr)
		if err != nil {
			return nil, err
		}
		with, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		without, err := s.runCustomArch(abbr, noHalf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HalfAblationRow{
			Abbr:        abbr,
			WithHalf:    with.IPCPerW / base.IPCPerW,
			WithoutHalf: without.IPCPerW / base.IPCPerW,
			HalfElig:    with.Eligibility.Half,
		})
	}
	return rows, nil
}

// FormatHalfAblation renders the §4.3 ablation table.
func FormatHalfAblation(rows []HalfAblationRow) string {
	t := stats.NewTable("bench", "with half", "without half", "half-eligible")
	var w, wo []float64
	for _, r := range rows {
		t.Row(r.Abbr,
			pctx(r.WithHalf), pctx(r.WithoutHalf), pct(r.HalfElig))
		w = append(w, r.WithHalf)
		wo = append(wo, r.WithoutHalf)
	}
	t.Row("MEAN", pctx(mean(w)), pctx(mean(wo)), "")
	return "Section 4.3 ablation: half-warp scalar execution\n" +
		"(hardware cost: second BVR/EBR set grows the RF from 3% to 7%)\n" + t.String()
}

func pctx(v float64) string { return fmt.Sprintf("%.3f", v) }

// ScalarBankRow quantifies §4.1's scalar-storage design choice: the prior
// architecture's single scalar bank serialises scalar-operand bursts, while
// G-Scalar's 16 per-bank BVR arrays do not.
type ScalarBankRow struct {
	Abbr              string
	ConflictsPerKInst float64 // ALU-scalar architecture
	GScalarConflicts  float64 // always 0 by construction
	ALUScalarIPC      float64 // vs baseline
}

// ScalarBankAblation measures the single-bank burst bottleneck.
func (s *Suite) ScalarBankAblation() ([]ScalarBankRow, error) {
	var rows []ScalarBankRow
	for _, abbr := range s.r.o.Workloads {
		base, err := s.r.run(gscalar.Baseline, abbr)
		if err != nil {
			return nil, err
		}
		alu, err := s.runCustomArch(abbr, sm.PriorScalarRF())
		if err != nil {
			return nil, err
		}
		gs, err := s.runCustomArch(abbr, sm.GScalar())
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalarBankRow{
			Abbr:              abbr,
			ConflictsPerKInst: 1000 * float64(alu.Stats.ScalarBankConflicts) / float64(alu.Stats.WarpInsts),
			GScalarConflicts:  1000 * float64(gs.Stats.ScalarBankConflicts) / float64(gs.Stats.WarpInsts),
			ALUScalarIPC:      alu.IPC / base.IPC,
		})
	}
	return rows, nil
}

// FormatScalarBank renders the §4.1 ablation table.
func FormatScalarBank(rows []ScalarBankRow) string {
	t := stats.NewTable("bench", "1-bank conflicts/kinst", "G-Scalar conflicts", "ALU-scalar IPC")
	var c []float64
	for _, r := range rows {
		t.Row(r.Abbr, r.ConflictsPerKInst, r.GScalarConflicts, r.ALUScalarIPC)
		c = append(c, r.ConflictsPerKInst)
	}
	t.Row("MEAN", mean(c), "", "")
	return "Section 4.1 ablation: single scalar bank vs per-bank BVR arrays\n" +
		"(the prior architecture's scalar bursts serialise on its one bank)\n" + t.String()
}

// CodecCost re-derives the Table 3 chip-cost numbers (used by the Table 3
// bench target).
func CodecCost() power.CodecChipCost { return power.Table3Cost() }
