package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gscalar"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache()
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.put("a", 1)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get(a) = %v, %v", v, ok)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("get(b) hit")
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 2 {
		t.Errorf("counters = %d hits, %d misses; want 1, 2", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

// TestConfigKeyInvalidation checks that every semantically meaningful
// configuration change yields a distinct key — a changed config can never
// be served a stale result — while the worker count (which never changes
// results within one loop algorithm) is normalised so those entries are
// shared.
func TestConfigKeyInvalidation(t *testing.T) {
	base := configKey(gscalar.DefaultConfig(), 1)

	mutations := map[string]func(*gscalar.Config){
		"NumSMs":      func(c *gscalar.Config) { c.NumSMs = 7 },
		"L1Bytes":     func(c *gscalar.Config) { c.L1Bytes = 32 << 10 },
		"L2Bytes":     func(c *gscalar.Config) { c.L2Bytes = 256 << 10 },
		"MemChannels": func(c *gscalar.Config) { c.MemChannels = 2 },
		"WarpSize":    func(c *gscalar.Config) { c.WarpSize = 64 },
		"MaxCycles":   func(c *gscalar.Config) { c.MaxCycles = 5 },
	}
	for name, mutate := range mutations {
		cfg := gscalar.DefaultConfig()
		mutate(&cfg)
		if k := configKey(cfg, 1); k == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	if k := configKey(gscalar.DefaultConfig(), 2); k == base {
		t.Error("changing scale did not change the cache key")
	}

	// Workers normalisation: 0 (legacy loop) is its own key; every
	// non-zero count maps to one shared key (bit-identical results).
	phased := func(n int) string {
		cfg := gscalar.DefaultConfig()
		cfg.Workers = n
		return configKey(cfg, 1)
	}
	if phased(1) != phased(8) || phased(1) != phased(-1) {
		t.Error("phased worker counts should share one cache key")
	}
	if phased(1) == base {
		t.Error("phased and legacy loops must not share a cache key")
	}
	if !strings.Contains(base, "scale=1") {
		t.Errorf("key %q lacks the scale component", base)
	}
	if !strings.HasPrefix(base, gscalar.DefaultConfig().Hash()) {
		t.Errorf("key %q is not prefixed by the config content hash", base)
	}

	// The key hashes the normalized config: a sparse config denotes "Table 1
	// with these changes" and must share the entry of its explicit form.
	sparse := gscalar.Config{NumSMs: 7}
	explicit := gscalar.DefaultConfig()
	explicit.NumSMs = 7
	if configKey(sparse, 1) != configKey(explicit, 1) {
		t.Error("sparse config and its normalized equivalent should share a cache key")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := string(rune('a' + (g+i)%4))
				if _, ok := c.get(key); !ok {
					c.put(key, g)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Errorf("len = %d, want 4", c.Len())
	}
	hits, misses := c.Counters()
	if hits+misses != 800 {
		t.Errorf("hits+misses = %d, want 800", hits+misses)
	}
}

// TestCacheDoSingleflight asserts the in-flight dedup contract at the unit
// level: concurrent Do calls of one key run fn exactly once, the joined
// waiters count as hits (not second misses), and distinct keys stay
// independent.
func TestCacheDoSingleflight(t *testing.T) {
	c := NewCache()
	keys := []string{"k0", "k1"}
	runs := map[string]*atomic.Int32{}
	gate := make(chan struct{})
	for _, k := range keys {
		runs[k] = &atomic.Int32{}
	}
	const callersPerKey = 8
	var wg sync.WaitGroup
	for _, key := range keys {
		for i := 0; i < callersPerKey; i++ {
			wg.Add(1)
			go func(key string) {
				defer wg.Done()
				<-gate
				v, err := c.Do(context.Background(), key, func() (any, error) {
					runs[key].Add(1)
					return "v:" + key, nil
				})
				if err != nil || v != "v:"+key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
				}
			}(key)
		}
	}
	close(gate)
	wg.Wait()
	for _, k := range keys {
		if n := runs[k].Load(); n != 1 {
			t.Errorf("key %s: fn ran %d times, want exactly 1", k, n)
		}
	}
	hits, misses := c.Counters()
	if misses != uint64(len(keys)) {
		t.Errorf("misses = %d, want %d (one per distinct key)", misses, len(keys))
	}
	if hits != uint64(len(keys)*(callersPerKey-1)) {
		t.Errorf("hits = %d, want %d (every joined or late caller)", hits, len(keys)*(callersPerKey-1))
	}
	if c.Len() != len(keys) {
		t.Errorf("Len = %d, want %d", c.Len(), len(keys))
	}
}

// TestCacheDoErrorNotCached: a failed computation must poison nothing — the
// error propagates and a retry runs fresh.
func TestCacheDoErrorNotCached(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	if _, err := c.Do(context.Background(), "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	v, err := c.Do(context.Background(), "k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

// TestPrewarmDedupsConcurrentIdenticalPoints is the satellite bugfix's
// regression test: under Prewarm(..., par>1), workers that miss the same key
// concurrently used to each run the full simulation; with the singleflight
// fold-in, each distinct key simulates exactly once — the misses counter
// counts real simulations — and every duplicate counts as a hit.
func TestPrewarmDedupsConcurrentIdenticalPoints(t *testing.T) {
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	s := NewSuite(Options{Config: cfg, Workloads: []string{"HW"}})
	s.r.cache = NewCache()

	// Four copies of the same point dispatched to four workers: all four
	// miss the (empty) cache near-simultaneously.
	p := Point{Arch: gscalar.GScalar, Abbr: "HW"}
	points := []Point{p, p, p, p}
	if err := s.Prewarm(points, len(points)); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.r.cache.Counters()
	if misses != 1 {
		t.Errorf("misses (= simulations) = %d, want exactly 1 for one distinct key", misses)
	}
	if hits != uint64(len(points)-1) {
		t.Errorf("hits = %d, want %d (joined waiters count as hits)", hits, len(points)-1)
	}
	if s.r.cache.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", s.r.cache.Len())
	}
}

// TestPrewarmMatchesSerial runs the same suite serially and with a
// parallel prewarm and requires identical figure rows — the ordering
// guarantee behind the -parallel flag.
func TestPrewarmMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	opts := Options{Config: cfg, Workloads: []string{"HS", "MQ", "SAD"}}

	serial := NewSuite(opts)
	serial.r.cache = NewCache()
	want, err := serial.Fig11()
	if err != nil {
		t.Fatal(err)
	}

	par := NewSuite(opts)
	par.r.cache = NewCache()
	points, err := par.Points([]string{"fig11"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4*3 {
		t.Fatalf("fig11 points = %d, want 12", len(points))
	}
	if err := par.Prewarm(points, 4); err != nil {
		t.Fatal(err)
	}
	hitsBefore, misses := par.r.cache.Counters()
	if misses != uint64(len(points)) {
		t.Errorf("prewarm misses = %d, want %d", misses, len(points))
	}
	got, err := par.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if hits, missesAfter := par.r.cache.Counters(); missesAfter != misses {
		t.Errorf("Fig11 after prewarm missed the cache (%d -> %d misses)", misses, missesAfter)
	} else if hits == hitsBefore {
		t.Error("Fig11 after prewarm recorded no cache hits")
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d differs:\nserial:  %+v\nparallel: %+v", i, want[i], got[i])
		}
	}
}

func TestPrewarmPropagatesError(t *testing.T) {
	s := NewSuite(Options{Workloads: []string{"NOPE"}})
	s.r.cache = NewCache()
	if err := s.Prewarm([]Point{{gscalar.GScalar, "NOPE"}}, 4); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestPointsDeduplicates(t *testing.T) {
	s := NewSuite(Options{Workloads: []string{"HS", "MQ"}})
	// fig1 and fig9 both need only the G-Scalar runs; the union must not
	// repeat them.
	pts, err := s.Points([]string{"fig1", "fig9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %v, want one per workload", pts)
	}
	all, err := s.Points([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Point]bool{}
	for _, p := range all {
		if seen[p] {
			t.Fatalf("duplicate point %+v", p)
		}
		seen[p] = true
	}
}

// TestPointsRejectsUnknownExperiment is the satellite bugfix's regression
// test: a typo'd experiment name ("figg11") used to index expArchs to nil
// and silently prewarm nothing; it must instead fail with an error that
// lists the valid names.
func TestPointsRejectsUnknownExperiment(t *testing.T) {
	s := NewSuite(Options{Workloads: []string{"HS"}})
	pts, err := s.Points([]string{"figg11"})
	if err == nil {
		t.Fatalf("Points(figg11) = %v, want error", pts)
	}
	for _, want := range []string{"figg11", "fig11", "table1", "width", "sched"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Experiments without prewarmable points (static tables, custom-config
	// sweeps) are still valid names — they just contribute no points.
	for _, name := range []string{"table1", "fig10", "width", "sched", "all"} {
		if !ValidExperiment(name) {
			t.Errorf("ValidExperiment(%q) = false", name)
		}
		if _, err := s.Points([]string{name}); err != nil {
			t.Errorf("Points(%q): %v", name, err)
		}
	}
	if ValidExperiment("figg11") {
		t.Error("ValidExperiment(figg11) = true")
	}
	// Every name in the registry that expArchs covers must stay consistent.
	for name := range expArchs {
		if !ValidExperiment(name) {
			t.Errorf("expArchs name %q missing from the experiment registry", name)
		}
	}
	if len(ExperimentNames()) < len(expArchs) {
		t.Error("registry smaller than expArchs")
	}
}
