package experiments

import (
	"fmt"

	"gscalar/internal/gpu"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
	"gscalar/internal/workloads"
)

// SchedRow compares warp-scheduling policies under G-Scalar. The paper's
// configuration uses GPGPU-Sim's greedy-then-oldest scheduler; this
// ablation quantifies how sensitive the G-Scalar results are to that
// choice (a robustness check, not a paper figure).
type SchedRow struct {
	Abbr   string
	GTOIPC float64
	LRRIPC float64
	// Eligibility must be scheduler-independent (it is a property of the
	// value streams): recorded to verify that invariance.
	GTOElig, LRRElig float64
}

// SchedAblation runs every benchmark under GTO and LRR scheduling.
func (s *Suite) SchedAblation() ([]SchedRow, error) {
	var rows []SchedRow
	for _, abbr := range s.r.o.Workloads {
		w, ok := workloads.ByAbbr(abbr)
		if !ok {
			return nil, errUnknown(abbr)
		}
		run := func(pol sm.SchedPolicy) (gpu.Result, error) {
			inst, err := w.Build(s.r.o.Scale)
			if err != nil {
				return gpu.Result{}, err
			}
			cfg := gpu.DefaultConfig()
			cfg.NumSMs = s.r.o.Config.NumSMs
			cfg.SM.Sched = pol
			return gpu.RunContext(s.r.ctx, cfg, sm.GScalar(), inst.Prog, inst.Launch, inst.Mem)
		}
		gto, err := run(sm.SchedGTO)
		if err != nil {
			return nil, err
		}
		lrr, err := run(sm.SchedLRR)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchedRow{
			Abbr:    abbr,
			GTOIPC:  gto.IPC,
			LRRIPC:  lrr.IPC,
			GTOElig: float64(gto.Stats.EligibleTotal()) / float64(gto.Stats.WarpInsts),
			LRRElig: float64(lrr.Stats.EligibleTotal()) / float64(lrr.Stats.WarpInsts),
		})
	}
	return rows, nil
}

// FormatSched renders the scheduler ablation table.
func FormatSched(rows []SchedRow) string {
	t := stats.NewTable("bench", "GTO IPC", "LRR IPC", "LRR/GTO", "elig GTO", "elig LRR")
	var ratio []float64
	for _, r := range rows {
		t.Row(r.Abbr,
			fmt.Sprintf("%.2f", r.GTOIPC),
			fmt.Sprintf("%.2f", r.LRRIPC),
			fmt.Sprintf("%.3f", r.LRRIPC/r.GTOIPC),
			pct(r.GTOElig), pct(r.LRRElig))
		ratio = append(ratio, r.LRRIPC/r.GTOIPC)
	}
	t.Row("MEAN", "", "", fmt.Sprintf("%.3f", mean(ratio)), "", "")
	return "Scheduler ablation: greedy-then-oldest vs loose round-robin under G-Scalar\n" +
		"(scalar eligibility is a value-stream property and must not depend on scheduling)\n" +
		t.String()
}
