package experiments

import (
	"strings"
	"testing"

	"gscalar"
)

func TestCSVEmitters(t *testing.T) {
	fig1 := Fig1CSV([]Fig1Row{{"HS", 0.5, 0.25}})
	if !strings.HasPrefix(fig1, "bench,divergent,divergent_scalar\n") ||
		!strings.Contains(fig1, "HS,0.500000,0.250000") {
		t.Errorf("fig1 csv:\n%s", fig1)
	}
	fig8 := Fig8CSV([]Fig8Row{{"X", gscalar.RFAccessDist{Scalar: 0.3, B3: 0.2, Divergent: 0.1}}})
	if lines := strings.Count(fig8, "\n"); lines != 2 {
		t.Errorf("fig8 csv lines = %d", lines)
	}
	if !strings.Contains(fig8, "X,0.300000,0.200000,0.000000,0.000000,0.000000,0.100000") {
		t.Errorf("fig8 csv:\n%s", fig8)
	}
	fig9 := Fig9CSV([]Fig9Row{{"X", gscalar.Eligibility{ALU: 0.2, Divergent: 0.1}}})
	if !strings.Contains(fig9, ",0.300000\n") { // total column
		t.Errorf("fig9 csv total missing:\n%s", fig9)
	}
	fig10 := Fig10CSV([]Fig10Row{{"X", 0.02, 0.05}})
	if !strings.Contains(fig10, "X,0.020000,0.050000") {
		t.Errorf("fig10 csv:\n%s", fig10)
	}
	fig11 := Fig11CSV([]Fig11Row{{Abbr: "X", ALUScalar: 1.1, GScalarNoDiv: 1.2, GScalar: 1.3, GScalarIPC: 0.98, BaselinePower: 100}})
	if !strings.Contains(fig11, "X,1.100000,1.200000,1.300000,0.980000,100.000000") {
		t.Errorf("fig11 csv:\n%s", fig11)
	}
	fig12 := Fig12CSV([]Fig12Row{{Abbr: "X", ScalarOnly: 0.6, WC: 0.5, Ours: 0.4, OursRatio: 2.2, WCRatio: 2.1}})
	if !strings.Contains(fig12, "X,0.600000,0.500000,0.400000,2.200000,2.100000") {
		t.Errorf("fig12 csv:\n%s", fig12)
	}
	mv := MovesCSV([]MoveOverheadRow{{"X", 0.02, 0.01}})
	if !strings.Contains(mv, "X,0.020000,0.010000") {
		t.Errorf("moves csv:\n%s", mv)
	}
	w := WidthCSV([]WidthRow{{8, 0.3, 2.5}})
	if !strings.Contains(w, "8,0.300000,2.500000") {
		t.Errorf("width csv:\n%s", w)
	}
}
