package experiments

import (
	"strings"
	"testing"

	"gscalar"
)

// smallSuite runs on a 2-SM chip over a 3-benchmark subset so the whole
// experiment path stays test-sized.
func smallSuite() *Suite {
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	return NewSuite(Options{Config: cfg, Workloads: []string{"HS", "MQ", "SAD"}})
}

func TestSuiteFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := smallSuite()
	rows, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byAbbr := map[string]Fig1Row{}
	for _, r := range rows {
		byAbbr[r.Abbr] = r
	}
	// HS and SAD have substantial divergence with a divergent-scalar
	// component; MQ is essentially non-divergent.
	if byAbbr["HS"].Divergent < 0.2 || byAbbr["HS"].DivergentScalar == 0 {
		t.Errorf("HS = %+v", byAbbr["HS"])
	}
	if byAbbr["MQ"].Divergent > 0.05 {
		t.Errorf("MQ divergent = %v", byAbbr["MQ"].Divergent)
	}
	out := FormatFig1(rows)
	if !strings.Contains(out, "MEAN") || !strings.Contains(out, "HS") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestSuiteFig9CachesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := smallSuite()
	s.r.cache = NewCache() // private cache so other tests cannot pre-warm it
	if _, err := s.Fig9(); err != nil {
		t.Fatal(err)
	}
	// The memoizing runner must serve Fig1 from the same G-Scalar runs: the
	// second call is pure cache hits and simulates nothing new.
	if s.r.cache.Len() < 3 {
		t.Fatalf("runner cache has %d entries", s.r.cache.Len())
	}
	before := s.r.cache.Len()
	_, missesBefore := s.r.cache.Counters()
	if _, err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	if s.r.cache.Len() != before {
		t.Errorf("Fig1 re-simulated despite cache (%d -> %d)", before, s.r.cache.Len())
	}
	if _, misses := s.r.cache.Counters(); misses != missesBefore {
		t.Errorf("Fig1 missed the cache (%d -> %d misses)", missesBefore, misses)
	}
}

func TestSuiteFig12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := smallSuite()
	rows, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ours <= 0 || r.Ours >= 1.2 {
			t.Errorf("%s: ours = %v, implausible", r.Abbr, r.Ours)
		}
		if r.Ours > r.ScalarOnly+0.15 {
			t.Errorf("%s: byte-wise (%v) should not lose badly to scalar-only (%v)",
				r.Abbr, r.Ours, r.ScalarOnly)
		}
		if r.OursRatio < 1 || r.WCRatio < 1 {
			t.Errorf("%s: compression ratios %v/%v below 1", r.Abbr, r.OursRatio, r.WCRatio)
		}
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	s := NewSuite(Options{Workloads: []string{"NOPE"}})
	if _, err := s.Fig1(); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestWidthSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := smallSuite()
	rows, err := s.WidthSweep([]int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Narrower data must compress better and burn less RF power.
	if rows[0].CompressionRatio <= rows[1].CompressionRatio {
		t.Errorf("8-bit ratio %v not better than 32-bit %v",
			rows[0].CompressionRatio, rows[1].CompressionRatio)
	}
	if rows[0].RFDynamicVsBase >= rows[1].RFDynamicVsBase {
		t.Errorf("8-bit RF power %v not lower than 32-bit %v",
			rows[0].RFDynamicVsBase, rows[1].RFDynamicVsBase)
	}
}

func TestFormatters(t *testing.T) {
	// Formatting must not depend on simulation: feed synthetic rows.
	f1 := FormatFig1([]Fig1Row{{"XX", 0.5, 0.25}})
	if !strings.Contains(f1, "50.0%") || !strings.Contains(f1, "25.0%") {
		t.Errorf("Fig1 formatting:\n%s", f1)
	}
	f11 := FormatFig11([]Fig11Row{{Abbr: "XX", ALUScalar: 1.1, GScalarNoDiv: 1.2, GScalar: 1.3, GScalarIPC: 0.98, BaselinePower: 100}})
	if !strings.Contains(f11, "1.300") {
		t.Errorf("Fig11 formatting:\n%s", f11)
	}
	f12 := FormatFig12([]Fig12Row{{Abbr: "XX", ScalarOnly: 0.6, WC: 0.5, Ours: 0.4, OursRatio: 2.2, WCRatio: 2.1}})
	if !strings.Contains(f12, "0.400") {
		t.Errorf("Fig12 formatting:\n%s", f12)
	}
	t1 := FormatTable1(gscalar.DefaultConfig())
	for _, want := range []string{"15", "1.4 GHz", "128 KB", "768 KB"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := FormatTable2()
	for _, abbr := range gscalar.Workloads() {
		if !strings.Contains(t2, abbr) {
			t.Errorf("Table2 missing %s", abbr)
		}
	}
	t3 := FormatTable3()
	for _, want := range []string{"7332", "11624", "0.35", "0.67", "5.2%"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestStaticUniformOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	// The compile-time analysis must run on the suite's workloads without
	// panicking, and can never exceed the dynamic hardware detection.
	s := smallSuite()
	rows, err := s.CompilerScalar()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Static > r.Dynamic+1e-9 {
			t.Errorf("%s: static %.3f exceeds dynamic %.3f", r.Abbr, r.Static, r.Dynamic)
		}
	}
}
