package experiments

import (
	"fmt"

	"gscalar"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
)

// FormatTable1 renders the simulator configuration (Table 1).
func FormatTable1(cfg gscalar.Config) string {
	t := stats.NewTable("parameter", "value", "paper (Table 1)")
	t.Row("# of SMs", cfg.NumSMs, 15)
	t.Row("SM frequency", fmt.Sprintf("%.1f GHz", cfg.CoreClockHz/1e9), "1.4 GHz")
	t.Row("registers per SM", fmt.Sprintf("%d KB", cfg.RegFileKB), "128 KB")
	t.Row("register file banks", cfg.RegFileBanks, 16)
	t.Row("operand collectors per SM", cfg.CollectorsPerSM, 16)
	t.Row("warp size", cfg.WarpSize, 32)
	t.Row("schedulers per SM", cfg.SchedulersPerSM, 2)
	t.Row("SIMT execution width", cfg.SIMTWidth, 16)
	t.Row("L1$ per SM", fmt.Sprintf("%d KB", cfg.L1Bytes/1024), "16 KB")
	t.Row("threads per SM", cfg.MaxWarpsPerSM*cfg.WarpSize, 1536)
	t.Row("CTAs per SM", cfg.MaxCTAsPerSM, 8)
	t.Row("memory channels", cfg.MemChannels, 6)
	t.Row("L2$ size", fmt.Sprintf("%d KB", cfg.L2Bytes/1024), "768 KB")
	return "Table 1: simulator configuration\n" + t.String()
}

// FormatTable2 renders the benchmark list (Table 2).
func FormatTable2() string {
	t := stats.NewTable("suite", "benchmark", "abbr", "description")
	for _, abbr := range gscalar.Workloads() {
		w, _ := gscalar.WorkloadByAbbr(abbr)
		t.Row(w.Suite, w.Name, w.Abbr, w.Desc)
	}
	return "Table 2: benchmarks\n" + t.String()
}

// FormatTable3 renders the codec synthesis results (Table 3) and the
// derived chip cost the paper quotes in §5.1.
func FormatTable3() string {
	t := stats.NewTable("", "decompressor", "compressor")
	t.Row("area (um^2)", power.DecompressorAreaUM2, power.CompressorAreaUM2)
	t.Row("delay (ns)", power.DecompressorDelayNS, power.CompressorDelayNS)
	t.Row("power (mW) @1.4GHz", power.DecompressorPowerMW, power.CompressorPowerMW)
	t.Row("instances per SM", power.DecompressorsPerSM, power.CompressorsPerSM)
	c := power.Table3Cost()
	der := stats.NewTable("derived per-SM cost", "value", "paper (§5.1)")
	der.Row("total codec power", fmt.Sprintf("%.2f W", c.TotalPowerWPerSM), "0.32 W (1.6%)")
	der.Row("total codec area", fmt.Sprintf("%.3f mm^2", c.TotalAreaMM2PerSM), "0.16 mm^2 (0.7%)")
	der.Row("BVR/EBR access energy", fmt.Sprintf("%.1f%% of full bank access", 100*power.BVREBRAccessFrac), "5.2%")
	der.Row("RF array growth", fmt.Sprintf("%.0f%% (half-reg: %.0f%%)",
		100*power.RFAreaGrowthFrac, 100*power.RFAreaGrowthHalfFrac), "3% / 7%")
	der.Row("added pipeline latency", fmt.Sprintf("%d cycles", power.ExtraPipelineCycles), "3 cycles")
	return "Table 3: encoder/decoder synthesis (40nm, paper inputs)\n" + t.String() + "\n" + der.String()
}

// MoveOverheadRow is the §3.3 decompress-move overhead measurement:
// hardware-only injection vs the compiler-assisted dead-value elision.
type MoveOverheadRow struct {
	Abbr             string
	Hardware         float64 // injected moves / committed instructions
	CompilerAssisted float64 // with dead-value elision (liveness analysis)
}

// MoveOverhead measures injected decompress-moves under full G-Scalar,
// with and without the compiler-assisted elision (paper §3.3: ~2% for the
// hardware technique, "less than 2%" with compile-time lifetime
// information).
func (s *Suite) MoveOverhead() ([]MoveOverheadRow, error) {
	var rows []MoveOverheadRow
	for _, abbr := range s.r.o.Workloads {
		res, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		ca, err := s.runCustomArch(abbr, sm.GScalarCompilerAssist())
		if err != nil {
			return nil, err
		}
		rows = append(rows, MoveOverheadRow{
			Abbr:             abbr,
			Hardware:         res.MoveOverhead,
			CompilerAssisted: ca.Stats.MoveOverhead(),
		})
	}
	return rows, nil
}

// FormatMoveOverhead renders the §3.3 overhead table.
func FormatMoveOverhead(rows []MoveOverheadRow) string {
	t := stats.NewTable("bench", "hardware", "compiler-assisted")
	var h, c []float64
	for _, r := range rows {
		t.Row(r.Abbr, pct(r.Hardware), pct(r.CompilerAssisted))
		h = append(h, r.Hardware)
		c = append(c, r.CompilerAssisted)
	}
	t.Row("MEAN", pct(mean(h)), pct(mean(c)))
	return "Section 3.3: decompress-move dynamic-instruction overhead\n" +
		"(paper: ~2% hardware-only; less than 2% with compile-time lifetime info)\n" + t.String()
}
