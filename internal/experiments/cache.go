package experiments

import (
	"context"
	"strconv"
	"sync"

	"gscalar"
	"gscalar/internal/store"
)

// Cache memoizes simulation results keyed by (chip config, scale,
// architecture, workload). The evaluation's figures overlap heavily — Fig
// 1/8/9 share the G-Scalar runs, Fig 11/12 share the baselines, and the
// benchmark harness builds a fresh Suite per figure — so one process-wide
// cache lets every consumer reuse a point that has been simulated once.
// Any change to the chip configuration (or scale) alters the key, so stale
// results can never be served. Safe for concurrent use.
//
// Concurrent misses of the same key are deduplicated in flight (Do): under
// the Prewarm fan-out — or the sweep server's worker pool — the first
// requester of a key runs the simulation and everyone else joins its
// result, so each distinct key simulates exactly once no matter how the
// requests interleave. A joined waiter counts as a hit: the cache did spare
// it a simulation, even though the entry was not filled yet when it asked.
type Cache struct {
	mu           sync.Mutex
	m            map[string]any
	hits, misses uint64

	flight store.Group
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]any)} }

// sharedCache is the process-wide default every Suite uses.
var sharedCache = NewCache()

// configKey derives the cache key prefix from the configuration's canonical
// content hash (gscalar.Config.Hash) plus the workload scale. The hash is
// computed from the canonical JSON form — sorted keys, zero-valued fields
// omitted — so it is stable under Config field reordering and additions,
// and any semantically meaningful field change yields a distinct key: a
// changed config can never be served a stale result. Workers is normalised
// to 0 (legacy serial loop) or 1 (phased loop) before hashing: every
// non-zero worker count is bit-identical by construction, so the cache
// shares those entries, while the two loop algorithms — which may differ in
// the last bits of energy sums — stay separate.
func configKey(cfg gscalar.Config, scale int) string {
	return canonicalHash(cfg) + "|scale=" + strconv.Itoa(scale)
}

// canonicalHash is the configuration component of a point key: the content
// hash of the normalized config with the phased worker count collapsed.
func canonicalHash(cfg gscalar.Config) string {
	// Hash the normalized form: the run path normalizes before simulating,
	// so a sparse config and its explicit equivalent are the same input and
	// must share one entry.
	cfg.Normalize()
	if cfg.Workers != 0 {
		cfg.Workers = 1
	}
	return cfg.Hash()
}

// PointKey is the canonical content identity of one simulation point —
// "configHash|scale=N|arch/workload" — shared by this in-process cache and
// the disk-backed result store behind gscalar-serve (internal/store). Two
// points share a key iff they denote the same simulation input, so a key
// can never be served a stale or foreign result.
//
// The workload component is canonicalized: a trace-backed spec
// ("trace:<path>") keys on "trace:" + the file's sha256 content hash, so the
// same capture is one cache entry under any path, and replacing the file
// behind a path can never be served the old file's result. A spec that
// fails to resolve (unknown name, unreadable trace) keys on its literal
// text; the simulation itself then reports the real error, and a key that
// never simulates successfully is never stored.
func PointKey(cfg gscalar.Config, scale int, arch gscalar.Arch, abbr string) string {
	if key, err := gscalar.CanonicalWorkloadKey(abbr); err == nil {
		abbr = key
	}
	return store.Key(canonicalHash(cfg), scale, arch.String(), abbr)
}

// get returns the cached value for key, counting the hit or miss.
func (c *Cache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// put stores the value for key.
func (c *Cache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Do returns the cached value for key, computing it via fn on a miss. At
// most one fn per key is in flight at a time: concurrent callers of a
// missing key join the first caller's computation instead of repeating it,
// and its successful value is cached for everyone. Accounting: a fn
// execution is a miss; a map hit or a successful join is a hit (the waiter
// was spared the work). fn's error is returned to the leader and every
// joined waiter, and nothing is cached — a later call retries. A waiter
// whose ctx expires stops waiting with ctx's error; the in-flight fn is
// unaffected (it observes its own context, e.g. at lifecycle checkpoints).
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if v, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	v, shared, err := c.flight.Do(ctx, key, func() (any, error) {
		// Re-check under the flight's exclusivity: this caller may have lost
		// a race with a leader that has already completed and filled the map
		// (flights are forgotten once done, the map is forever).
		c.mu.Lock()
		if v, ok := c.m[key]; ok {
			c.hits++
			c.mu.Unlock()
			return v, nil
		}
		c.misses++
		c.mu.Unlock()
		v, err := fn()
		if err != nil {
			return nil, err
		}
		c.put(key, v)
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	return v, nil
}

// Counters returns the accumulated hit/miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
