package experiments

import (
	"strconv"
	"sync"

	"gscalar"
)

// Cache memoizes simulation results keyed by (chip config, scale,
// architecture, workload). The evaluation's figures overlap heavily — Fig
// 1/8/9 share the G-Scalar runs, Fig 11/12 share the baselines, and the
// benchmark harness builds a fresh Suite per figure — so one process-wide
// cache lets every consumer reuse a point that has been simulated once.
// Any change to the chip configuration (or scale) alters the key, so stale
// results can never be served. Safe for concurrent use.
type Cache struct {
	mu           sync.Mutex
	m            map[string]any
	hits, misses uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]any)} }

// sharedCache is the process-wide default every Suite uses.
var sharedCache = NewCache()

// configKey derives the cache key prefix from the configuration's canonical
// content hash (gscalar.Config.Hash) plus the workload scale. The hash is
// computed from the canonical JSON form — sorted keys, zero-valued fields
// omitted — so it is stable under Config field reordering and additions,
// and any semantically meaningful field change yields a distinct key: a
// changed config can never be served a stale result. Workers is normalised
// to 0 (legacy serial loop) or 1 (phased loop) before hashing: every
// non-zero worker count is bit-identical by construction, so the cache
// shares those entries, while the two loop algorithms — which may differ in
// the last bits of energy sums — stay separate.
func configKey(cfg gscalar.Config, scale int) string {
	// Hash the normalized form: the run path normalizes before simulating,
	// so a sparse config and its explicit equivalent are the same input and
	// must share one entry.
	cfg.Normalize()
	if cfg.Workers != 0 {
		cfg.Workers = 1
	}
	return cfg.Hash() + "|scale=" + strconv.Itoa(scale)
}

// get returns the cached value for key, counting the hit or miss.
func (c *Cache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// put stores the value for key.
func (c *Cache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Counters returns the accumulated hit/miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
