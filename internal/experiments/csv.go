package experiments

import (
	"fmt"
	"strings"
)

// CSV emitters: one machine-readable record stream per figure, for external
// plotting. Fractions are emitted as decimals (not percentages).

func csvJoin(fields ...string) string { return strings.Join(fields, ",") + "\n" }

func f(v float64) string { return fmt.Sprintf("%.6f", v) }

// Fig1CSV renders Figure 1 rows as CSV.
func Fig1CSV(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "divergent", "divergent_scalar"))
	for _, r := range rows {
		b.WriteString(csvJoin(r.Abbr, f(r.Divergent), f(r.DivergentScalar)))
	}
	return b.String()
}

// Fig8CSV renders Figure 8 rows as CSV.
func Fig8CSV(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "scalar", "b3", "b2", "b1", "none", "divergent"))
	for _, r := range rows {
		d := r.Dist
		b.WriteString(csvJoin(r.Abbr, f(d.Scalar), f(d.B3), f(d.B2), f(d.B1), f(d.None), f(d.Divergent)))
	}
	return b.String()
}

// Fig9CSV renders Figure 9 rows as CSV.
func Fig9CSV(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "alu", "sfu", "mem", "half", "divergent", "total"))
	for _, r := range rows {
		e := r.E
		b.WriteString(csvJoin(r.Abbr, f(e.ALU), f(e.SFU), f(e.Mem), f(e.Half), f(e.Divergent), f(e.Total())))
	}
	return b.String()
}

// Fig10CSV renders Figure 10 rows as CSV.
func Fig10CSV(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "half_warp32", "quarter_warp64"))
	for _, r := range rows {
		b.WriteString(csvJoin(r.Abbr, f(r.Half32), f(r.Half64)))
	}
	return b.String()
}

// Fig11CSV renders Figure 11 rows as CSV.
func Fig11CSV(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "alu_scalar", "gscalar_nodiv", "gscalar", "gscalar_ipc", "baseline_watts"))
	for _, r := range rows {
		b.WriteString(csvJoin(r.Abbr, f(r.ALUScalar), f(r.GScalarNoDiv), f(r.GScalar), f(r.GScalarIPC), f(r.BaselinePower)))
	}
	return b.String()
}

// Fig12CSV renders Figure 12 rows as CSV.
func Fig12CSV(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "scalar_only", "wc", "ours", "ratio_ours", "ratio_bdi"))
	for _, r := range rows {
		b.WriteString(csvJoin(r.Abbr, f(r.ScalarOnly), f(r.WC), f(r.Ours), f(r.OursRatio), f(r.WCRatio)))
	}
	return b.String()
}

// MovesCSV renders the §3.3 overhead rows as CSV.
func MovesCSV(rows []MoveOverheadRow) string {
	var b strings.Builder
	b.WriteString(csvJoin("bench", "hardware", "compiler_assisted"))
	for _, r := range rows {
		b.WriteString(csvJoin(r.Abbr, f(r.Hardware), f(r.CompilerAssisted)))
	}
	return b.String()
}

// WidthCSV renders the §5.3 width-sweep rows as CSV.
func WidthCSV(rows []WidthRow) string {
	var b strings.Builder
	b.WriteString(csvJoin("bits", "rf_dynamic_vs_base", "compression_ratio"))
	for _, r := range rows {
		b.WriteString(csvJoin(fmt.Sprint(r.Bits), f(r.RFDynamicVsBase), f(r.CompressionRatio)))
	}
	return b.String()
}
