package experiments

import (
	"sort"
	"sync"

	"gscalar"
)

// Point identifies one (architecture, workload) simulation a figure needs.
type Point struct {
	Arch gscalar.Arch
	Abbr string
}

// expArchs maps each experiment name to the public architectures its figure
// simulates through runner.run. Experiments absent from the map either run
// no full-chip points (the static tables), sweep non-default configurations
// (fig10, width, sched), or use custom SM overlays (parts of half and
// scalarbank) — those still simulate what Prewarm cannot cover, but every
// cacheable point below is shared with them.
var expArchs = map[string][]gscalar.Arch{
	"fig1":       {gscalar.GScalar},
	"fig8":       {gscalar.GScalar},
	"fig9":       {gscalar.GScalar},
	"fig11":      {gscalar.Baseline, gscalar.ALUScalar, gscalar.GScalarNoDiv, gscalar.GScalar},
	"fig12":      {gscalar.Baseline, gscalar.ALUScalar, gscalar.WarpedCompression, gscalar.RVCOnly},
	"moves":      {gscalar.GScalar},
	"compiler":   {gscalar.GScalar},
	"half":       {gscalar.Baseline, gscalar.GScalar},
	"scalarbank": {gscalar.Baseline},
}

// Points returns the deduplicated (architecture, workload) points the named
// experiments will simulate, in a deterministic order (architecture in
// presentation order, then the suite's workload order). The name "all"
// expands to every experiment in the map.
func (s *Suite) Points(exps []string) []Point {
	archSet := map[gscalar.Arch]bool{}
	for _, e := range exps {
		if e == "all" {
			for _, archs := range expArchs {
				for _, a := range archs {
					archSet[a] = true
				}
			}
			continue
		}
		for _, a := range expArchs[e] {
			archSet[a] = true
		}
	}
	archs := make([]gscalar.Arch, 0, len(archSet))
	for a := range archSet {
		archs = append(archs, a)
	}
	sort.Slice(archs, func(i, j int) bool { return archs[i] < archs[j] })

	var pts []Point
	for _, a := range archs {
		for _, abbr := range s.r.o.Workloads {
			pts = append(pts, Point{Arch: a, Abbr: abbr})
		}
	}
	return pts
}

// Prewarm simulates the given points concurrently, at most par at a time,
// filling the suite's result cache. Figures rendered afterwards are served
// entirely from the cache, so their output is byte-identical to a serial
// run — Prewarm only changes when the simulations happen, never what they
// produce (the phased simulation loop is deterministic, and each point is
// independent). With par <= 1 the points run serially in order.
//
// All points are attempted; the error returned is the first failure in
// point order, independent of completion timing.
func (s *Suite) Prewarm(points []Point, par int) error {
	if par <= 1 || len(points) <= 1 {
		for _, p := range points {
			if _, err := s.r.run(p.Arch, p.Abbr); err != nil {
				return err
			}
		}
		return nil
	}
	if par > len(points) {
		par = len(points)
	}
	errs := make([]error, len(points))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				_, errs[i] = s.r.run(points[i].Arch, points[i].Abbr)
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
