package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gscalar"
)

// Point identifies one (architecture, workload) simulation a figure needs.
type Point struct {
	Arch gscalar.Arch
	Abbr string
}

// expArchs maps each experiment name to the public architectures its figure
// simulates through runner.run. Experiments absent from the map either run
// no full-chip points (the static tables), sweep non-default configurations
// (fig10, width, sched), or use custom SM overlays (parts of half and
// scalarbank) — those still simulate what Prewarm cannot cover, but every
// cacheable point below is shared with them.
var expArchs = map[string][]gscalar.Arch{
	"fig1":       {gscalar.GScalar},
	"fig8":       {gscalar.GScalar},
	"fig9":       {gscalar.GScalar},
	"fig11":      {gscalar.Baseline, gscalar.ALUScalar, gscalar.GScalarNoDiv, gscalar.GScalar},
	"fig12":      {gscalar.Baseline, gscalar.ALUScalar, gscalar.WarpedCompression, gscalar.RVCOnly},
	"moves":      {gscalar.GScalar},
	"compiler":   {gscalar.GScalar},
	"half":       {gscalar.Baseline, gscalar.GScalar},
	"scalarbank": {gscalar.Baseline},
}

// experimentNames is the registry of every runnable experiment, in
// presentation order: the static tables, the figures, and the ablations.
// It is the single list Points and the CLI validate -exp names against;
// expArchs above covers the subset whose full-chip points Prewarm can
// simulate ahead of time.
var experimentNames = []string{
	"table1", "table2", "table3",
	"fig1", "fig8", "fig9", "fig10", "fig11", "fig12",
	"moves", "compiler", "half", "scalarbank", "width", "sched",
}

// ExperimentNames lists every valid experiment name (excluding the "all"
// pseudo-name, which expands to all of them).
func ExperimentNames() []string {
	out := make([]string, len(experimentNames))
	copy(out, experimentNames)
	return out
}

// ValidExperiment reports whether name is a runnable experiment ("all"
// included).
func ValidExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, n := range experimentNames {
		if n == name {
			return true
		}
	}
	return false
}

// errUnknownExperiment builds the error both Points and the CLIs report for
// a name that is not in the registry, listing what would have been valid —
// a typo'd experiment must fail loudly, not silently prewarm (or render)
// nothing.
func errUnknownExperiment(name string) error {
	return fmt.Errorf("experiments: unknown experiment %q (valid: all, %s)",
		name, strings.Join(experimentNames, ", "))
}

// Points returns the deduplicated (architecture, workload) points the named
// experiments will simulate, in a deterministic order (architecture in
// presentation order, then the suite's workload order). The name "all"
// expands to every experiment. A name outside the experiment registry is an
// error naming the valid choices; registered experiments without
// prewarmable full-chip points (the static tables, the sweeps with
// non-default configurations) are valid and simply contribute none.
func (s *Suite) Points(exps []string) ([]Point, error) {
	archSet := map[gscalar.Arch]bool{}
	for _, e := range exps {
		if !ValidExperiment(e) {
			return nil, errUnknownExperiment(e)
		}
		if e == "all" {
			for _, archs := range expArchs {
				for _, a := range archs {
					archSet[a] = true
				}
			}
			continue
		}
		for _, a := range expArchs[e] {
			archSet[a] = true
		}
	}
	archs := make([]gscalar.Arch, 0, len(archSet))
	for a := range archSet {
		archs = append(archs, a)
	}
	sort.Slice(archs, func(i, j int) bool { return archs[i] < archs[j] })

	var pts []Point
	for _, a := range archs {
		for _, abbr := range s.r.o.Workloads {
			pts = append(pts, Point{Arch: a, Abbr: abbr})
		}
	}
	return pts, nil
}

// Prewarm simulates the given points under the suite's own context; see
// PrewarmContext.
func (s *Suite) Prewarm(points []Point, par int) error {
	return s.PrewarmContext(s.r.ctx, points, par)
}

// PrewarmContext simulates the given points concurrently, at most par at a
// time, filling the suite's result cache. Figures rendered afterwards are
// served entirely from the cache, so their output is byte-identical to a
// serial run — prewarming only changes when the simulations happen, never
// what they produce (the phased simulation loop is deterministic, and each
// point is independent). With par <= 1 the points run serially in order.
//
// The fan-out is fail-fast: the first failure — or a cancellation of ctx,
// e.g. by a SIGINT handler — cancels the sibling runs at their next
// lifecycle checkpoint, and points not yet started are skipped. The error
// returned is the first genuine failure in point order; if every recorded
// error is just the propagated cancellation, the first of those is returned.
// Cancellation never corrupts the cache: points that completed before it
// remain cached and reusable.
func (s *Suite) PrewarmContext(ctx context.Context, points []Point, par int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if par <= 1 || len(points) <= 1 {
		for _, p := range points {
			if _, err := s.r.runCtx(ctx, p.Arch, p.Abbr); err != nil {
				return err
			}
		}
		return nil
	}
	if par > len(points) {
		par = len(points)
	}
	errs := make([]error, len(points))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				_, errs[i] = s.r.runCtx(ctx, points[i].Arch, points[i].Abbr)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}
