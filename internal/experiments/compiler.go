package experiments

import (
	"gscalar"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/stats"
	"gscalar/internal/warp"
	"gscalar/internal/workloads"
)

// StaticUniform reports, per static instruction, whether a compile-time
// scalarizer (à la Lee et al., CGO\'13 — the paper\'s §6 comparison) could
// prove the instruction warp-uniform. It is a thin wrapper over the asm
// package\'s static uniformity/divergence analysis.
func StaticUniform(p *kernel.Program) []bool {
	return asm.Analyze(p).UniformInst
}

// CompilerScalarRow compares compile-time scalarization coverage with
// G-Scalar's dynamic detection for one benchmark.
type CompilerScalarRow struct {
	Abbr      string
	Static    float64 // dynamic instructions a compiler could scalarise
	Dynamic   float64 // instructions G-Scalar's hardware detects
	Shortfall float64 // 1 - Static/Dynamic
}

// CompilerScalar runs the §6 ablation: dynamic execution counts are
// gathered per static instruction, then weighted by the compile-time
// uniformity analysis. The paper reports a compiler-assisted method
// captured 24 % fewer scalarisable instructions than G-Scalar.
func (s *Suite) CompilerScalar() ([]CompilerScalarRow, error) {
	var rows []CompilerScalarRow
	for _, abbr := range s.r.o.Workloads {
		w, _ := workloads.ByAbbr(abbr)
		inst, err := w.Build(s.r.o.Scale)
		if err != nil {
			return nil, err
		}
		static := StaticUniform(inst.Prog)
		counts, total, err := dynamicCounts(inst)
		if err != nil {
			return nil, err
		}
		var covered uint64
		for pc, ok := range static {
			if ok {
				covered += counts[pc]
			}
		}
		res, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		row := CompilerScalarRow{
			Abbr:    abbr,
			Static:  float64(covered) / float64(total),
			Dynamic: res.Eligibility.Total(),
		}
		if row.Dynamic > 0 {
			row.Shortfall = 1 - row.Static/row.Dynamic
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// dynamicCounts executes the workload functionally, counting dynamic
// executions per static instruction.
func dynamicCounts(inst *workloads.Instance) (counts []uint64, total uint64, err error) {
	prog, lc := inst.Prog, inst.Launch
	counts = make([]uint64, prog.Len())
	for cta := 0; cta < lc.Grid.Count(); cta++ {
		warps := warp.BuildCTA(prog, lc, cta, 32, 0)
		ctx := &warp.Context{
			Prog: prog, Launch: lc, Global: inst.Mem,
			Shared: make([]uint32, (lc.SharedBytes+3)/4),
		}
		for {
			progress, allDone := false, true
			atBarrier, live := 0, 0
			for _, w := range warps {
				switch w.Status() {
				case warp.StatusDone:
					continue
				case warp.StatusBarrier:
					allDone = false
					atBarrier++
					live++
					continue
				}
				allDone = false
				live++
				for w.Status() == warp.StatusReady {
					out, e := w.Execute(ctx)
					if e != nil {
						return nil, 0, e
					}
					counts[out.PC]++
					total++
					progress = true
				}
			}
			if allDone {
				break
			}
			if atBarrier == live && atBarrier > 0 {
				for _, w := range warps {
					if w.Status() == warp.StatusBarrier {
						w.ClearBarrier()
					}
				}
				progress = true
			}
			if !progress {
				return nil, 0, errDeadlock(inst.Prog.Name)
			}
		}
	}
	return counts, total, nil
}

type deadlockError string

func (e deadlockError) Error() string { return "experiments: barrier deadlock in " + string(e) }

func errDeadlock(name string) error { return deadlockError(name) }

// FormatCompilerScalar renders the §6 ablation table.
func FormatCompilerScalar(rows []CompilerScalarRow) string {
	t := stats.NewTable("bench", "compile-time", "G-Scalar dynamic", "shortfall")
	var st, dy []float64
	for _, r := range rows {
		t.Row(r.Abbr, pct(r.Static), pct(r.Dynamic), pct(r.Shortfall))
		st = append(st, r.Static)
		dy = append(dy, r.Dynamic)
	}
	shortfall := 0.0
	if m := mean(dy); m > 0 {
		shortfall = 1 - mean(st)/m
	}
	t.Row("MEAN", pct(mean(st)), pct(mean(dy)), pct(shortfall))
	return "Section 6 ablation: compile-time vs dynamic scalar detection\n" +
		"(paper: the compiler-assisted method captured 24% fewer scalar instructions,\n" +
		" mainly because load-value uniformity is invisible at compile time)\n" + t.String()
}
