package experiments

import (
	"fmt"

	"gscalar/internal/asm"
	"gscalar/internal/gpu"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
)

// widthSrc is a synthetic streaming kernel whose loaded operand values are
// confined to a parameterised effective bit-width. Narrow (short/char-like)
// data sign/zero-extends into identical upper bytes, which byte-wise
// compression never reads or writes — the §5.3 discussion ("for data types
// smaller than 4 bytes, our scheme can at least avoid the unnecessary
// access to the sign/zero extended bytes").
const widthSrc = `
.kernel widthsweep
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                 // value of the configured width
	mov   r6, 0
	mov   r7, 0
LOOP:
	imad  r8, r5, 3, r6            // derived values stay within width+2 bits
	iadd  r9, r8, r5
	and   r9, r9, $2               // re-confine to the data width
	iadd  r7, r7, r9
	iadd  r6, r6, 1
	isetp.lt p0, r6, 8
	@p0 bra LOOP
	iadd  r10, $1, r3
	stg   [r10], r7
	exit
`

// WidthRow is one point of the §5.3 data-width sweep.
type WidthRow struct {
	Bits             int
	RFDynamicVsBase  float64
	CompressionRatio float64
}

// WidthSweep measures RF dynamic power of byte-wise compression relative to
// the baseline register file while sweeping the effective operand width.
func (s *Suite) WidthSweep(bits []int) ([]WidthRow, error) {
	prog, err := asm.Assemble(widthSrc)
	if err != nil {
		return nil, err
	}
	var rows []WidthRow
	for _, b := range bits {
		build := func() (*kernel.LaunchConfig, *kernel.Memory) {
			const ctas = 40
			n := ctas * 256
			mem := kernel.NewMemory()
			mask := uint32(1)<<uint(b) - 1
			if b >= 32 {
				mask = ^uint32(0)
			}
			vals := make([]uint32, n)
			rng := uint32(0x9E3779B9)
			for i := range vals {
				rng = rng*1664525 + 1013904223
				vals[i] = rng & mask
			}
			lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
			lc.Params[0] = mem.AllocU32(vals)
			lc.Params[1] = mem.Alloc(n * 4)
			lc.Params[2] = mask
			return lc, mem
		}
		cfg := gpu.DefaultConfig()
		cfg.NumSMs = s.r.o.Config.NumSMs

		lcB, memB := build()
		base, err := gpu.RunContext(s.r.ctx, cfg, sm.Baseline(), prog, lcB, memB)
		if err != nil {
			return nil, err
		}
		lcR, memR := build()
		rvc, err := gpu.RunContext(s.r.ctx, cfg, sm.RVCOnly(), prog, lcR, memR)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WidthRow{
			Bits:             b,
			RFDynamicVsBase:  rvc.Power.RFDynamicW() / base.Power.RFDynamicW(),
			CompressionRatio: rvc.Stats.CompressionRatio(),
		})
	}
	return rows, nil
}

// FormatWidthSweep renders the §5.3 sweep table.
func FormatWidthSweep(rows []WidthRow) string {
	t := stats.NewTable("data width", "RF dynamic vs baseline", "compression ratio")
	for _, r := range rows {
		t.Row(fmt.Sprintf("%d-bit", r.Bits),
			fmt.Sprintf("%.3f", r.RFDynamicVsBase),
			fmt.Sprintf("%.2f", r.CompressionRatio))
	}
	return "Section 5.3 extension: operand-width sweep\n" +
		"(narrower types leave sign/zero-extended upper bytes identical; byte-wise\n" +
		" compression skips them entirely, so RF power falls with data width)\n" + t.String()
}
