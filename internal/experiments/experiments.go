// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) from simulator runs. It is shared by the
// gscalar-experiments command and the repository's benchmark harness.
//
// Each FigN function returns structured rows; each FormatFigN renders the
// aligned text table, annotated with the paper's reported values where the
// paper states them.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"

	"gscalar"
	"gscalar/internal/stats"
)

// Options configures an experiment sweep.
type Options struct {
	Config    gscalar.Config
	Scale     int      // workload scale factor (1 = default)
	Workloads []string // default: all of Table 2

	// Telemetry enables per-run metric collection on every simulation the
	// suite performs. It lives off-Config (like a Session's), so enabling it
	// changes neither the memoization cache key nor any figure's numbers.
	Telemetry gscalar.TelemetryOptions
	// OnMetrics, when non-nil and Telemetry.Enabled, receives the collected
	// metrics of each freshly simulated (arch, workload) point, so the suite
	// can persist per-figure telemetry alongside its memoization cache.
	// Cache hits do not refire it (their run produced no new telemetry).
	// Under the parallel prewarm fan-out it is called concurrently and must
	// be safe for that.
	OnMetrics func(arch gscalar.Arch, abbr string, m *gscalar.Metrics)
	// CaptureDir, when non-empty, writes a replayable trace of every
	// freshly simulated point to <CaptureDir>/<arch>_<workload>.gstr (each
	// file is written atomically; replay with -workload trace:<file>).
	// Capture requires the serial chip loop, so it is incompatible with
	// Config.Workers/EpochCycles. Cache hits write no trace — their run was
	// not re-simulated.
	CaptureDir string
}

// Defaults fills unset fields.
func (o Options) defaults() Options {
	if o.Config.NumSMs == 0 {
		o.Config = gscalar.DefaultConfig()
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = gscalar.Workloads()
	}
	return o
}

// runner memoizes simulation results so figures sharing runs (Fig 1/8/9
// share the G-Scalar run; Fig 11/12 share baselines) do not re-simulate.
// Results live in a cache keyed by (config, scale, arch, workload) — by
// default the process-wide sharedCache, so independent Suites over the same
// configuration also reuse each other's runs. It is safe for concurrent
// use, which is what the Prewarm fan-out relies on.
type runner struct {
	ctx   context.Context
	o     Options
	cache *Cache
}

func newRunner(ctx context.Context, o Options) *runner {
	return &runner{ctx: ctx, o: o.defaults(), cache: sharedCache}
}

func (r *runner) run(arch gscalar.Arch, abbr string) (gscalar.Result, error) {
	return r.runCtx(r.ctx, arch, abbr)
}

func (r *runner) runCtx(ctx context.Context, arch gscalar.Arch, abbr string) (gscalar.Result, error) {
	key := PointKey(r.o.Config, r.o.Scale, arch, abbr)
	// Cache.Do memoizes and deduplicates: if another goroutine — a Prewarm
	// sibling, or another Suite over the same options — is already
	// simulating this key, this call joins that run instead of repeating
	// it, so each distinct point simulates at most once per process.
	v, err := r.cache.Do(ctx, key, func() (any, error) {
		// One Session per fresh point: the prewarm fan-out runs points
		// concurrently, and a session's telemetry is per-run state. The
		// session layer annotates escaping errors with the workload and
		// architecture; a cancelled run's partial result is never cached.
		s, err := gscalar.NewSession(r.o.Config, arch)
		if err != nil {
			return nil, err
		}
		s.Telemetry = r.o.Telemetry
		if r.o.CaptureDir != "" {
			s.Capture.Path = filepath.Join(r.o.CaptureDir, pointFileName(arch, abbr)+".gstr")
		}
		res, err := s.RunWorkload(ctx, abbr, r.o.Scale)
		if err != nil {
			return nil, err
		}
		if r.o.OnMetrics != nil {
			if m := s.Metrics(); m != nil {
				r.o.OnMetrics(arch, abbr, m)
			}
		}
		return res, nil
	})
	if err != nil {
		return gscalar.Result{}, err
	}
	return v.(gscalar.Result), nil
}

// pointFileName renders an (arch, workload-spec) pair as a safe file-name
// stem: path separators and the trace-spec colon are flattened, so a
// re-captured "trace:/dir/f.gstr" spec still lands in CaptureDir.
func pointFileName(arch gscalar.Arch, abbr string) string {
	clean := strings.NewReplacer("/", "_", "\\", "_", ":", "_").Replace(abbr)
	return arch.String() + "_" + clean
}

// Suite bundles a cached runner over one option set; create it once and
// call the figure methods.
type Suite struct{ r *runner }

// NewSuite creates an experiment suite bound to the background context. Use
// NewSuiteContext to make the suite's simulations cancellable.
func NewSuite(o Options) *Suite { return NewSuiteContext(context.Background(), o) }

// NewSuiteContext creates an experiment suite whose simulations observe ctx:
// cancelling it aborts the in-flight run at its next lifecycle checkpoint and
// fails any figure evaluated afterwards. Completed runs are unaffected —
// cancellation never corrupts the shared result cache.
func NewSuiteContext(ctx context.Context, o Options) *Suite {
	return &Suite{r: newRunner(ctx, o)}
}

// Workloads returns the benchmark list in effect.
func (s *Suite) Workloads() []string { return s.r.o.Workloads }

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var t float64
	for _, v := range vals {
		t += v
	}
	return t / float64(len(vals))
}

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }

// ---------------------------------------------------------------------------
// Figure 1 — divergent and divergent-scalar instruction fractions.
// ---------------------------------------------------------------------------

// Fig1Row is one benchmark's Figure 1 bar pair.
type Fig1Row struct {
	Abbr            string
	Divergent       float64 // divergent instructions / total
	DivergentScalar float64 // value-uniform divergent instructions / total
}

// Fig1 measures the Figure 1 characterisation on the G-Scalar run.
func (s *Suite) Fig1() ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, abbr := range s.r.o.Workloads {
		res, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{abbr, res.FracDivergent, res.FracDivergentScalar})
	}
	return rows, nil
}

// FormatFig1 renders the Figure 1 table.
func FormatFig1(rows []Fig1Row) string {
	t := stats.NewTable("bench", "divergent", "div-scalar", "div-scalar/divergent")
	var d, ds []float64
	for _, r := range rows {
		frac := 0.0
		if r.Divergent > 0 {
			frac = r.DivergentScalar / r.Divergent
		}
		t.Row(r.Abbr, pct(r.Divergent), pct(r.DivergentScalar), pct(frac))
		d = append(d, r.Divergent)
		ds = append(ds, r.DivergentScalar)
	}
	md, mds := mean(d), mean(ds)
	ratio := 0.0
	if md > 0 {
		ratio = mds / md
	}
	t.Row("MEAN", pct(md), pct(mds), pct(ratio))
	return "Figure 1: divergent instructions and divergent scalar instructions\n" +
		"(paper: 28% of instructions divergent; 45% of divergent are divergent-scalar)\n" +
		t.String()
}

// ---------------------------------------------------------------------------
// Figure 8 — RF access distribution by operand-value similarity.
// ---------------------------------------------------------------------------

// Fig8Row is one benchmark's register-read class mix.
type Fig8Row struct {
	Abbr string
	Dist gscalar.RFAccessDist
}

// Fig8 measures the register-read distribution on the byte-wise-compressed
// register file (scalar execution does not change read classes).
func (s *Suite) Fig8() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, abbr := range s.r.o.Workloads {
		res, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{abbr, res.RFAccess})
	}
	return rows, nil
}

// FormatFig8 renders the Figure 8 table.
func FormatFig8(rows []Fig8Row) string {
	t := stats.NewTable("bench", "scalar", "3-byte", "2-byte", "1-byte", "none", "divergent")
	var sc, b3, b2, b1 []float64
	for _, r := range rows {
		d := r.Dist
		t.Row(r.Abbr, pct(d.Scalar), pct(d.B3), pct(d.B2), pct(d.B1), pct(d.None), pct(d.Divergent))
		sc = append(sc, d.Scalar)
		b3 = append(b3, d.B3)
		b2 = append(b2, d.B2)
		b1 = append(b1, d.B1)
	}
	t.Row("MEAN", pct(mean(sc)), pct(mean(b3)), pct(mean(b2)), pct(mean(b1)), "", "")
	return "Figure 8: RF access distribution for operand values\n" +
		"(paper means: scalar 36%, 3-byte 17%, 2-byte 4%, 1-byte 7%)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 9 — instructions eligible for scalar execution, stacked.
// ---------------------------------------------------------------------------

// Fig9Row is one benchmark's stacked eligibility decomposition.
type Fig9Row struct {
	Abbr string
	E    gscalar.Eligibility
}

// Fig9 measures scalar-execution eligibility under full G-Scalar.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, abbr := range s.r.o.Workloads {
		res, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{abbr, res.Eligibility})
	}
	return rows, nil
}

// FormatFig9 renders the Figure 9 table.
func FormatFig9(rows []Fig9Row) string {
	t := stats.NewTable("bench", "ALU", "+SFU", "+mem", "+half", "+divergent", "total")
	var alu, sfumem, half, div, tot []float64
	for _, r := range rows {
		e := r.E
		t.Row(r.Abbr, pct(e.ALU), pct(e.SFU), pct(e.Mem), pct(e.Half), pct(e.Divergent), pct(e.Total()))
		alu = append(alu, e.ALU)
		sfumem = append(sfumem, e.SFU+e.Mem)
		half = append(half, e.Half)
		div = append(div, e.Divergent)
		tot = append(tot, e.Total())
	}
	t.Row("MEAN", pct(mean(alu)), pct(mean(sfumem)), "", pct(mean(half)), pct(mean(div)), pct(mean(tot)))
	return "Figure 9: instructions eligible for scalar execution\n" +
		"(paper means: ALU 22%, +SFU/mem 7%, +half 2%, +divergent 9% => 40%)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 10 — half-scalar eligibility vs warp size.
// ---------------------------------------------------------------------------

// Fig10Row is one benchmark's warp-size sweep.
type Fig10Row struct {
	Abbr   string
	Half32 float64 // half-scalar at warp size 32
	Half64 float64 // "quarter-scalar" at warp size 64 (16-thread checks)
}

// Fig10 sweeps warp size {32, 64} with the 16-thread checking granularity.
func (s *Suite) Fig10() ([]Fig10Row, error) {
	sess, err := gscalar.NewSession(s.r.o.Config, gscalar.GScalar)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, abbr := range s.r.o.Workloads {
		sweep, err := sess.WarpSizeSweep(s.r.ctx, abbr, []int{32, 64}, s.r.o.Scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", abbr, err)
		}
		rows = append(rows, Fig10Row{abbr, sweep[0].HalfFrac, sweep[1].HalfFrac})
	}
	return rows, nil
}

// FormatFig10 renders the Figure 10 table.
func FormatFig10(rows []Fig10Row) string {
	t := stats.NewTable("bench", "half@32", "quarter@64")
	var h32, h64 []float64
	for _, r := range rows {
		t.Row(r.Abbr, pct(r.Half32), pct(r.Half64))
		h32 = append(h32, r.Half32)
		h64 = append(h64, r.Half64)
	}
	t.Row("MEAN", pct(mean(h32)), pct(mean(h64)))
	return "Figure 10: 16-thread-granularity scalar eligibility vs warp size\n" +
		"(paper: mean rises to ~5% at warp size 64)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 11 — normalized power efficiency (IPC/W) and performance.
// ---------------------------------------------------------------------------

// Fig11Row is one benchmark's normalized efficiency across architectures.
type Fig11Row struct {
	Abbr          string
	ALUScalar     float64 // IPC/W vs baseline
	GScalarNoDiv  float64
	GScalar       float64
	GScalarIPC    float64 // IPC vs baseline (the 3-cycle latency cost)
	BaselinePower float64
}

// Fig11 runs the four Figure 11 architectures on every benchmark.
func (s *Suite) Fig11() ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, abbr := range s.r.o.Workloads {
		base, err := s.r.run(gscalar.Baseline, abbr)
		if err != nil {
			return nil, err
		}
		alu, err := s.r.run(gscalar.ALUScalar, abbr)
		if err != nil {
			return nil, err
		}
		nod, err := s.r.run(gscalar.GScalarNoDiv, abbr)
		if err != nil {
			return nil, err
		}
		full, err := s.r.run(gscalar.GScalar, abbr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Abbr:          abbr,
			ALUScalar:     alu.IPCPerW / base.IPCPerW,
			GScalarNoDiv:  nod.IPCPerW / base.IPCPerW,
			GScalar:       full.IPCPerW / base.IPCPerW,
			GScalarIPC:    full.IPC / base.IPC,
			BaselinePower: base.PowerW,
		})
	}
	return rows, nil
}

// FormatFig11 renders the Figure 11 table.
func FormatFig11(rows []Fig11Row) string {
	t := stats.NewTable("bench", "ALU-scalar", "G-Scalar w/o div", "G-Scalar", "G-Scalar IPC", "base W")
	var a, n, g, ipc []float64
	for _, r := range rows {
		t.Row(r.Abbr,
			fmt.Sprintf("%.3f", r.ALUScalar),
			fmt.Sprintf("%.3f", r.GScalarNoDiv),
			fmt.Sprintf("%.3f", r.GScalar),
			fmt.Sprintf("%.3f", r.GScalarIPC),
			fmt.Sprintf("%.1f", r.BaselinePower))
		a = append(a, r.ALUScalar)
		n = append(n, r.GScalarNoDiv)
		g = append(g, r.GScalar)
		ipc = append(ipc, r.GScalarIPC)
	}
	t.Row("MEAN",
		fmt.Sprintf("%.3f", mean(a)),
		fmt.Sprintf("%.3f", mean(n)),
		fmt.Sprintf("%.3f", mean(g)),
		fmt.Sprintf("%.3f", mean(ipc)), "")
	return "Figure 11: normalized power efficiency (IPC/W) and G-Scalar IPC\n" +
		"(paper means: G-Scalar 1.24x vs baseline, 1.15x vs ALU-scalar; IPC 0.983;\n" +
		" BP highest ~1.79x; LBM <1.20x; LC worst IPC)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Figure 12 — normalized RF dynamic power.
// ---------------------------------------------------------------------------

// Fig12Row is one benchmark's RF-power comparison.
type Fig12Row struct {
	Abbr       string
	ScalarOnly float64 // Gilani scalar RF vs baseline RF dynamic power
	WC         float64 // Warped-Compression (BDI)
	Ours       float64 // byte-wise compression
	OursRatio  float64 // compression ratio (ours)
	WCRatio    float64 // compression ratio (BDI)
}

// Fig12 compares register-file dynamic power across RF techniques.
func (s *Suite) Fig12() ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, abbr := range s.r.o.Workloads {
		base, err := s.r.run(gscalar.Baseline, abbr)
		if err != nil {
			return nil, err
		}
		alu, err := s.r.run(gscalar.ALUScalar, abbr)
		if err != nil {
			return nil, err
		}
		wc, err := s.r.run(gscalar.WarpedCompression, abbr)
		if err != nil {
			return nil, err
		}
		ours, err := s.r.run(gscalar.RVCOnly, abbr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			Abbr:       abbr,
			ScalarOnly: alu.RFDynamicJ / base.RFDynamicJ,
			WC:         wc.RFDynamicJ / base.RFDynamicJ,
			Ours:       ours.RFDynamicJ / base.RFDynamicJ,
			OursRatio:  ours.CompressionRatio,
			WCRatio:    wc.CompressionRatio,
		})
	}
	return rows, nil
}

// FormatFig12 renders the Figure 12 table.
func FormatFig12(rows []Fig12Row) string {
	t := stats.NewTable("bench", "scalar-only", "W-C", "ours", "ratio(ours)", "ratio(BDI)")
	var so, wc, ours, ro, rw []float64
	for _, r := range rows {
		t.Row(r.Abbr,
			fmt.Sprintf("%.3f", r.ScalarOnly),
			fmt.Sprintf("%.3f", r.WC),
			fmt.Sprintf("%.3f", r.Ours),
			fmt.Sprintf("%.2f", r.OursRatio),
			fmt.Sprintf("%.2f", r.WCRatio))
		so = append(so, r.ScalarOnly)
		wc = append(wc, r.WC)
		ours = append(ours, r.Ours)
		ro = append(ro, r.OursRatio)
		rw = append(rw, r.WCRatio)
	}
	t.Row("MEAN",
		fmt.Sprintf("%.3f", mean(so)),
		fmt.Sprintf("%.3f", mean(wc)),
		fmt.Sprintf("%.3f", mean(ours)),
		fmt.Sprintf("%.2f", mean(ro)),
		fmt.Sprintf("%.2f", mean(rw)))
	return "Figure 12: normalized RF dynamic power\n" +
		"(paper means: scalar-only 0.63, ours 0.46; compression ratio ours 2.17 vs BDI 2.13)\n" +
		t.String()
}

// trimRight drops trailing spaces from each line of a table for cleaner
// golden files.
func trimRight(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " ")
	}
	return strings.Join(lines, "\n")
}
