package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gscalar"
	"gscalar/internal/store"
)

// tinyConfig is a fast-but-real chip: 2 SMs instead of 15.
func tinyConfig() json.RawMessage {
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// newTestServer builds a Server over a fresh store in dir plus an
// httptest.Server for its API. The caller owns draining.
func newTestServer(t *testing.T, dir string, o Options) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Store = st
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding response: %v", url, err)
	}
	return resp
}

// submit posts the request and returns the accepted job id.
func submit(t *testing.T, base string, req map[string]any) string {
	t.Helper()
	resp, body := postJSON(t, base+"/api/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// waitState polls the job until it reaches a terminal want state.
func waitState(t *testing.T, base, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v jobView
		resp := getJSON(t, base+"/api/v1/jobs/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
		}
		if v.State == want {
			return v
		}
		switch v.State {
		case "done", "failed", "cancelled":
			t.Fatalf("job %s reached terminal state %q (counts %v), want %q", id, v.State, v.Counts, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (counts %v), want %q", id, v.State, v.Counts, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type resultsResponse struct {
	ID       string       `json:"id"`
	State    string       `json:"state"`
	Complete bool         `json:"complete"`
	Results  []resultView `json:"results"`
}

func getResults(t *testing.T, base, id string) resultsResponse {
	t.Helper()
	var rr resultsResponse
	getJSON(t, base+"/api/v1/jobs/"+id+"/result", &rr)
	return rr
}

// TestSubmitRunsAndStores drives the core loop: a fresh point simulates
// once, lands in the store, and an identical resubmission is served from the
// store with byte-identical Result bytes and zero additional simulation.
func TestSubmitRunsAndStores(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 2, Telemetry: true})
	req := map[string]any{"config": tinyConfig(), "arch": "gscalar", "workload": "HW"}

	id1 := submit(t, ts.URL, req)
	waitState(t, ts.URL, id1, "done")
	r1 := getResults(t, ts.URL, id1)
	if !r1.Complete || len(r1.Results) != 1 {
		t.Fatalf("first job: complete=%v, %d results", r1.Complete, len(r1.Results))
	}
	if len(r1.Results[0].Result) == 0 || r1.Results[0].Cached {
		t.Fatalf("first run should be fresh with a result, got %+v", r1.Results[0])
	}
	var res gscalar.Result
	if err := json.Unmarshal(r1.Results[0].Result, &res); err != nil {
		t.Fatalf("result is not a gscalar.Result: %v", err)
	}
	if res.Cycles == 0 || res.WarpInsts == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if got := s.Stats(); got.Simulations != 1 || got.StoreEntries != 1 {
		t.Fatalf("after first job: %+v", got)
	}

	// Identical resubmission: store hit, zero additional simulation,
	// byte-identical Result.
	id2 := submit(t, ts.URL, req)
	waitState(t, ts.URL, id2, "done")
	r2 := getResults(t, ts.URL, id2)
	if !r2.Results[0].Cached {
		t.Fatalf("second run should be a store hit, got %+v", r2.Results[0])
	}
	if !bytes.Equal(r1.Results[0].Result, r2.Results[0].Result) {
		t.Fatalf("resubmitted point returned different Result bytes:\n%s\nvs\n%s",
			r1.Results[0].Result, r2.Results[0].Result)
	}
	if got := s.Stats(); got.Simulations != 1 || got.StoreHits != 1 {
		t.Fatalf("after resubmission: %+v", got)
	}

	// Telemetry was enabled, so the stored entry carries a metrics blob.
	var mr struct {
		Metrics []struct {
			Key     string          `json:"key"`
			Metrics json.RawMessage `json:"metrics"`
		} `json:"metrics"`
	}
	getJSON(t, ts.URL+"/api/v1/jobs/"+id1+"/metrics", &mr)
	if len(mr.Metrics) != 1 || len(mr.Metrics[0].Metrics) == 0 {
		t.Fatalf("metrics endpoint: %+v", mr)
	}
}

// TestSweepGridExpansion submits a 2-arch x 2-workload grid and expects four
// points, four simulations, and four store entries.
func TestSweepGridExpansion(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 2})
	id := submit(t, ts.URL, map[string]any{
		"config":    tinyConfig(),
		"archs":     []string{"baseline", "gscalar"},
		"workloads": []string{"HW", "HS"},
	})
	v := waitState(t, ts.URL, id, "done")
	if v.Counts["done"] != 4 {
		t.Fatalf("grid counts: %v", v.Counts)
	}
	if got := s.Stats(); got.Simulations != 4 || got.StoreEntries != 4 {
		t.Fatalf("after grid: %+v", got)
	}
	rr := getResults(t, ts.URL, id)
	seen := map[string]bool{}
	for _, r := range rr.Results {
		seen[r.Arch+"/"+r.Workload] = true
	}
	if len(seen) != 4 {
		t.Fatalf("grid cells: %v", seen)
	}
}

// TestConcurrentDuplicateSubmissions fires many copies of the same point at
// once and requires exactly one simulation: every other point either joins
// the in-flight run or hits the store, but never re-simulates.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 4})
	req := map[string]any{"config": tinyConfig(), "arch": "gscalar", "workload": "HW"}
	const jobs = 6
	ids := make(chan string, jobs)
	for i := 0; i < jobs; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/api/v1/jobs", req)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit: status %d, body %s", resp.StatusCode, body)
				ids <- ""
				return
			}
			var out struct {
				ID string `json:"id"`
			}
			_ = json.Unmarshal(body, &out)
			ids <- out.ID
		}()
	}
	var first []byte
	for i := 0; i < jobs; i++ {
		id := <-ids
		if id == "" {
			continue
		}
		waitState(t, ts.URL, id, "done")
		rr := getResults(t, ts.URL, id)
		if first == nil {
			first = rr.Results[0].Result
		} else if !bytes.Equal(first, rr.Results[0].Result) {
			t.Fatalf("duplicate submissions disagree on Result bytes")
		}
	}
	got := s.Stats()
	if got.Simulations != 1 {
		t.Fatalf("%d duplicate submissions ran %d simulations, want exactly 1 (%+v)",
			jobs, got.Simulations, got)
	}
	if got.StoreHits+got.Joins != jobs-1 {
		t.Fatalf("dedup accounting: %d store hits + %d joins, want %d (%+v)",
			got.StoreHits, got.Joins, jobs-1, got)
	}
}

// TestCancelMidJob cancels a job while its point is mid-simulation and
// expects a well-defined partial state: status cancelled, a partial Result
// prefix reported, and nothing written to the store.
func TestCancelMidJob(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 1, ObserverStride: 64})
	progressed := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	s.testOnProgress = func(string) {
		if once.CompareAndSwap(false, true) {
			close(progressed)
			// Hold the run at this checkpoint until the cancel request has
			// been delivered; the next checkpoint then observes it. The cut
			// is in simulated time, so the partial state is deterministic.
			<-release
		}
	}
	id := submit(t, ts.URL, map[string]any{"config": tinyConfig(), "arch": "gscalar", "workload": "HS"})
	<-progressed
	resp, body := postJSON(t, ts.URL+"/api/v1/jobs/"+id+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, body)
	}
	close(release)
	v := waitState(t, ts.URL, id, "cancelled")
	if v.Counts["cancelled"] != 1 {
		t.Fatalf("counts after cancel: %v", v.Counts)
	}
	rr := getResults(t, ts.URL, id)
	p := rr.Results[0]
	if p.Status != "cancelled" || !p.Partial || len(p.Result) == 0 {
		t.Fatalf("cancelled point state: %+v", p)
	}
	var partial gscalar.Result
	if err := json.Unmarshal(p.Result, &partial); err != nil {
		t.Fatalf("partial result does not parse: %v", err)
	}
	if partial.Cycles == 0 {
		t.Fatal("partial result has no progress recorded")
	}
	got := s.Stats()
	if got.StoreEntries != 0 {
		t.Fatalf("cancelled run must not be stored: %+v", got)
	}
	if s.st.Contains(p.Key) {
		t.Fatal("store contains the cancelled point's key")
	}
}

// TestDrainPersistsAndResumes drains a server mid-sweep and restarts over
// the same store directory: completed points are re-served from disk,
// unfinished points resume, and no point simulates twice across the two
// lives.
func TestDrainPersistsAndResumes(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, dir, Options{Workers: 1})
	reached3 := make(chan struct{})
	release := make(chan struct{})
	var fresh atomic.Int32
	s1.testBeforeRun = func(PointSpec) {
		if fresh.Add(1) == 3 {
			close(reached3)
			// Hold the third simulation until the drain is underway, so it
			// aborts before cycle 0 and returns to the pending set.
			<-release
		}
	}
	workloads := []string{"HW", "HS", "PF", "BP"}
	id := submit(t, ts1.URL, map[string]any{
		"config": tinyConfig(), "arch": "gscalar", "workloads": workloads,
	})
	<-reached3 // two points fully done (single worker), third about to run

	drainDone := make(chan int, 1)
	go func() {
		n, err := s1.Drain()
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drainDone <- n
	}()
	for !s1.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	close(release)
	pending := <-drainDone
	if pending != 2 {
		t.Fatalf("drain persisted %d pending points, want 2", pending)
	}
	if got := s1.Stats(); got.StoreEntries != 2 || got.Simulations != 3 {
		t.Fatalf("after drain: %+v", got) // 3rd attempt started but aborted pre-cycle-0
	}
	// Draining servers reject new work.
	resp, _ := postJSON(t, ts1.URL+"/api/v1/jobs", map[string]any{"arch": "gscalar", "workload": "HW"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}

	// Second life over the same directory: the pending points resume
	// automatically as a recovered job.
	s2, ts2 := newTestServer(t, dir, Options{Workers: 1})
	deadline := time.Now().Add(30 * time.Second)
	for s2.Stats().StoreEntries != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered run did not complete: %+v", s2.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s2.Stats(); got.Simulations != 2 {
		t.Fatalf("second life re-simulated completed points: %+v", got)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	getJSON(t, ts2.URL+"/api/v1/jobs", &list)
	if len(list.Jobs) != 1 || !list.Jobs[0].Recovered {
		t.Fatalf("recovered job not listed: %+v", list.Jobs)
	}

	// The original full sweep resubmitted now costs zero simulations.
	id2 := submit(t, ts2.URL, map[string]any{
		"config": tinyConfig(), "arch": "gscalar", "workloads": workloads,
	})
	waitState(t, ts2.URL, id2, "done")
	if got := s2.Stats(); got.Simulations != 2 || got.StoreHits < 4 {
		t.Fatalf("warm resubmission: %+v", got)
	}
	if n, err := s2.Drain(); err != nil || n != 0 {
		t.Fatalf("clean drain: %d pending, err %v", n, err)
	}
	_ = id
}

// TestSubmitValidation exercises the 400 paths: unknown arch/workload,
// malformed body, missing fields, bad scale.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Workers: 1})
	cases := []struct {
		name string
		body any
		want string // substring of the error message
	}{
		{"unknown arch", map[string]any{"arch": "turbo", "workload": "HW"}, "unknown arch"},
		{"unknown workload", map[string]any{"arch": "gscalar", "workload": "XX"}, "unknown workload"},
		{"missing arch", map[string]any{"workload": "HW"}, "missing arch"},
		{"missing workload", map[string]any{"arch": "gscalar"}, "missing workload"},
		{"bad scale", map[string]any{"arch": "gscalar", "workload": "HW", "scale": -3}, "scale -3"},
		{"unknown field", map[string]any{"arch": "gscalar", "workload": "HW", "bogus": 1}, "unknown field"},
		{"bad config", map[string]any{"arch": "gscalar", "workload": "HW",
			"config": map[string]any{"NumSMs": -1}}, "NumSMs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/api/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("error %s does not mention %q", body, tc.want)
			}
		})
	}
	// The unknown-arch error must name the valid architectures.
	resp, body := postJSON(t, ts.URL+"/api/v1/jobs",
		map[string]any{"arch": "turbo", "workload": "HW"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "gscalar") {
		t.Fatalf("unknown-arch error should list valid names: %d %s", resp.StatusCode, body)
	}
	// Unknown job ids 404.
	var v jobView
	if resp := getJSON(t, ts.URL+"/api/v1/jobs/j999", &v); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp.StatusCode)
	}
}

// TestStatsAndHealth smoke-tests the operational endpoints.
func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Workers: 1})
	var st Stats
	if resp := getJSON(t, ts.URL+"/api/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if st.Workers != 1 || st.QueueCap != 1024 {
		t.Fatalf("stats defaults: %+v", st)
	}
	var h map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestQueueFullRejected fills a tiny queue and expects 503 without side
// effects.
func TestQueueFullRejected(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 1, QueueDepth: 2, ObserverStride: 64})
	block := make(chan struct{})
	var once atomic.Bool
	s.testOnProgress = func(string) {
		if once.CompareAndSwap(false, true) {
			<-block
		}
	}
	defer close(block)
	// First job occupies the single worker; its remaining point plus one
	// more job fill the depth-2 queue.
	submit(t, ts.URL, map[string]any{"config": tinyConfig(), "arch": "gscalar", "workloads": []string{"HS", "HW"}})
	waitQueue := time.Now().Add(5 * time.Second)
	for s.Stats().QueueLen != 1 {
		if time.Now().After(waitQueue) {
			t.Fatalf("queue never settled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	submit(t, ts.URL, map[string]any{"config": tinyConfig(), "arch": "baseline", "workload": "HW"})
	resp, body := postJSON(t, ts.URL+"/api/v1/jobs",
		map[string]any{"config": tinyConfig(), "arch": "baseline", "workload": "HS"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue is full") {
		t.Fatalf("overflow error: %s", body)
	}
	jobs := s.Stats().Jobs
	if jobs != 2 {
		t.Fatalf("rejected job leaked into the table: %d jobs", jobs)
	}
}

// TestStoreKeyMatchesExperimentsCache pins the cross-component contract:
// the server's point key equals the key the CLI in-process cache derives
// for the same input, so results are interchangeable.
func TestStoreKeyMatchesExperimentsCache(t *testing.T) {
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	spec := PointSpec{Config: cfg, Arch: gscalar.GScalar, Workload: "HW", Scale: 1}
	key := spec.Key()
	for _, frag := range []string{"|scale=1|", "gscalar/HW"} {
		if !strings.Contains(key, frag) {
			t.Fatalf("key %q lacks %q", key, frag)
		}
	}
	// Any two phased worker counts key identically: the phased loop is
	// bit-identical for every worker count (only serial Workers=0 differs).
	cfg2a, cfg2b := cfg, cfg
	cfg2a.Workers = 7
	cfg2b.Workers = 3
	k2a := PointSpec{Config: cfg2a, Arch: gscalar.GScalar, Workload: "HW", Scale: 1}.Key()
	k2b := PointSpec{Config: cfg2b, Arch: gscalar.GScalar, Workload: "HW", Scale: 1}.Key()
	if k2a != k2b {
		t.Fatalf("worker count leaked into the key:\n%s\nvs\n%s", k2a, k2b)
	}
	// A semantic config change must change the key.
	cfg3 := cfg
	cfg3.NumSMs = 3
	if got := (PointSpec{Config: cfg3, Arch: gscalar.GScalar, Workload: "HW", Scale: 1}).Key(); got == key {
		t.Fatal("distinct configs share a key")
	}
}

func ExamplePointSpec_Key() {
	cfg := gscalar.DefaultConfig()
	spec := PointSpec{Config: cfg, Arch: gscalar.GScalar, Workload: "HW", Scale: 1}
	fmt.Println(strings.Count(spec.Key(), "|"))
	// Output: 2
}
