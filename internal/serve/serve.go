// Package serve implements the gscalar sweep server: a long-lived daemon
// that accepts simulation points (config × arch × workload × scale) over
// HTTP, runs them on a bounded worker pool, and memoizes every completed
// Result in a disk-backed content-addressed store (internal/store).
//
// The server's contract is "never simulate the same point twice":
//
//   - A submitted point whose key is already in the store completes
//     instantly from disk — including points completed by an earlier
//     process that crashed or drained.
//   - Concurrent submissions of the same missing key are deduplicated in
//     flight: one simulation runs, every other point joins its result.
//   - On graceful drain (SIGINT/SIGTERM), in-flight runs stop at their next
//     lifecycle checkpoint and every unfinished point is persisted to
//     pending.json inside the store directory; a new server over the same
//     directory re-enqueues them, and whatever did complete resolves as a
//     store hit.
//
// Keys are experiments.PointKey — the same canonical identity the CLI
// in-process cache uses — so results are interchangeable across entry
// points and a key can never be served a stale or foreign result.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gscalar"
	"gscalar/internal/experiments"
	"gscalar/internal/store"
)

// Options configures a Server.
type Options struct {
	// Store is the disk-backed result store. Required.
	Store *store.Store
	// Workers is the simulation worker-pool size; <= 0 sizes it off
	// GOMAXPROCS. Each worker runs one point at a time, so this bounds the
	// number of concurrent simulations.
	Workers int
	// QueueDepth bounds the FIFO job queue (in points, not jobs); <= 0
	// defaults to 1024. Submissions that would overflow it are rejected
	// with 503 rather than blocking the HTTP handler.
	QueueDepth int
	// Telemetry enables per-run metric collection; collected metrics are
	// persisted in the store entry alongside the Result.
	Telemetry bool
	// ObserverStride is the simulated-cycle spacing of lifecycle
	// checkpoints (progress snapshots and cancellation checks) in every
	// run; 0 keeps the session default. It never alters a completed
	// Result, so it is not part of the point key.
	ObserverStride uint64
}

// PointSpec is one simulation point: the full input of a run.
type PointSpec struct {
	Config   gscalar.Config
	Arch     gscalar.Arch
	Workload string
	Scale    int
}

// Key returns the point's canonical store key.
func (p PointSpec) Key() string {
	return experiments.PointKey(p.Config, p.Scale, p.Arch, p.Workload)
}

type pointStatus int

const (
	pointQueued pointStatus = iota
	pointRunning
	pointDone
	pointFailed
	pointCancelled
)

func (s pointStatus) String() string {
	switch s {
	case pointQueued:
		return "queued"
	case pointRunning:
		return "running"
	case pointDone:
		return "done"
	case pointFailed:
		return "failed"
	case pointCancelled:
		return "cancelled"
	}
	return "unknown"
}

// pointState tracks one point of a job. All fields are guarded by Server.mu
// except spec and key, which are immutable after creation.
type pointState struct {
	spec PointSpec
	key  string

	status  pointStatus
	cached  bool // completed from the store without a fresh simulation
	joined  bool // joined an in-flight identical simulation
	partial bool // result is the partial prefix of a cancelled run
	result  json.RawMessage
	errMsg  string

	// cancelRequested marks an explicit per-job cancellation, as opposed to
	// a server drain (which re-queues the point as pending instead).
	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
}

// job is one submission: an ordered list of points.
type job struct {
	id        string
	recovered bool // re-enqueued from pending.json at startup
	points    []*pointState
}

type work struct {
	j   *job
	idx int
}

// Server owns the worker pool, the job table, and the result store.
type Server struct {
	opts Options
	st   *store.Store

	flight store.Group

	// runCtx parents every simulation; Drain cancels it so in-flight runs
	// stop at their next lifecycle checkpoint.
	runCtx  context.Context
	stopRun context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids in submission order
	nextID   int
	draining bool
	// progress holds the latest Progress snapshot of each in-flight
	// simulation, keyed by point key so joined waiters observe the
	// leader's stream.
	progress map[string]gscalar.Progress

	queue chan work
	wg    sync.WaitGroup

	sims      atomic.Uint64 // fresh simulations actually run
	storeHits atomic.Uint64 // points completed from the disk store
	joins     atomic.Uint64 // points that joined an in-flight simulation

	// Test hooks (nil in production).
	testBeforeRun  func(PointSpec)  // entered a fresh simulation
	testOnProgress func(key string) // after a progress snapshot landed
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Workers      int    `json:"workers"`
	QueueLen     int    `json:"queue_len"`
	QueueCap     int    `json:"queue_cap"`
	Jobs         int    `json:"jobs"`
	StoreDir     string `json:"store_dir"`
	StoreEntries int    `json:"store_entries"`
	Simulations  uint64 `json:"simulations"`
	StoreHits    uint64 `json:"store_hits"`
	Joins        uint64 `json:"joins"`
	Draining     bool   `json:"draining"`
}

// New builds a Server over o.Store, re-enqueues any pending points a drained
// predecessor left in the store directory, and starts the worker pool.
func New(o Options) (*Server, error) {
	if o.Store == nil {
		return nil, errors.New("serve: Options.Store is required")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	s := &Server{
		opts:     o,
		st:       o.Store,
		jobs:     make(map[string]*job),
		progress: make(map[string]gscalar.Progress),
		queue:    make(chan work, o.QueueDepth),
	}
	s.runCtx, s.stopRun = context.WithCancel(context.Background())
	if err := s.loadPending(); err != nil {
		return nil, err
	}
	s.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit registers the points as one job and enqueues them FIFO. It fails
// without side effects when the server is draining or the queue cannot hold
// the job.
func (s *Server) Submit(specs []PointSpec) (*job, error) {
	return s.submit(specs, false)
}

func (s *Server) submit(specs []PointSpec, recovered bool) (*job, error) {
	if len(specs) == 0 {
		return nil, errors.New("serve: job has no points")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	// All sends happen under mu, so len(queue) cannot grow concurrently;
	// this capacity check is exact.
	if len(s.queue)+len(specs) > cap(s.queue) {
		return nil, errQueueFull
	}
	s.nextID++
	j := &job{id: "j" + strconv.Itoa(s.nextID), recovered: recovered}
	for _, sp := range specs {
		j.points = append(j.points, &pointState{spec: sp, key: sp.Key()})
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for i := range j.points {
		s.queue <- work{j: j, idx: i}
	}
	return j, nil
}

var (
	errDraining  = errors.New("serve: server is draining")
	errQueueFull = errors.New("serve: job queue is full")
)

// CancelJob cancels a job: queued points are marked cancelled, running
// points are interrupted at their next lifecycle checkpoint and report the
// partial prefix they had completed.
func (s *Server) CancelJob(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: no job %q", id)
	}
	var cancels []context.CancelFunc
	for _, p := range j.points {
		switch p.status {
		case pointQueued:
			p.status = pointCancelled
		case pointRunning:
			p.cancelRequested = true
			if p.cancel != nil {
				cancels = append(cancels, p.cancel)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

// worker drains the FIFO queue until it is closed by Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for w := range s.queue {
		s.runPoint(w.j, w.idx)
	}
}

// runPoint drives one queued point to a terminal state (or leaves it queued
// under drain, to be persisted as pending).
func (s *Server) runPoint(j *job, idx int) {
	p := j.points[idx]
	s.mu.Lock()
	if p.status != pointQueued || s.draining {
		// Cancelled while queued, or draining: leave untouched. A still-
		// queued point under drain is persisted as pending by Drain.
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Fast path: the point was completed before — by this process, an
	// earlier run of a duplicate submission, or a previous server life
	// over the same store directory.
	if e, ok, err := s.st.Get(p.key); err != nil {
		s.finishError(p, err)
		return
	} else if ok {
		s.storeHits.Add(1)
		s.mu.Lock()
		p.status = pointDone
		p.cached = true
		p.result = e.Result
		s.mu.Unlock()
		return
	}

	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	s.mu.Lock()
	if p.status != pointQueued { // cancelled between the checks
		s.mu.Unlock()
		return
	}
	p.status = pointRunning
	p.cancel = cancel
	s.mu.Unlock()

	v, shared, err := s.flight.Do(ctx, p.key, func() (any, error) {
		return s.simulate(ctx, p)
	})

	s.mu.Lock()
	p.cancel = nil
	if err == nil {
		e := v.(store.Entry)
		p.status = pointDone
		p.result = e.Result
		p.joined = shared
		if shared {
			s.joins.Add(1)
		}
		s.mu.Unlock()
		return
	}
	if !isCancel(err) {
		p.status = pointFailed
		p.errMsg = err.Error()
		s.mu.Unlock()
		return
	}
	// Cancellation: decide why.
	switch {
	case p.cancelRequested:
		// Explicit job cancel: terminal. The leader's partial prefix (if
		// this point was the leader) was recorded by simulate.
		p.status = pointCancelled
	case s.draining:
		// Drain: back to queued so Drain persists it as pending. Drop any
		// partial prefix — the point will be re-simulated from scratch.
		p.status = pointQueued
		p.partial = false
		p.result = nil
	case shared && ctx.Err() == nil:
		// The in-flight leader we joined was cancelled, but this point was
		// not: retry by re-enqueueing (the next attempt becomes leader, or
		// hits the store).
		p.status = pointQueued
		if !s.enqueueLocked(j, idx) {
			p.status = pointFailed
			p.errMsg = "retry after leader cancellation: queue full"
		}
	default:
		p.status = pointCancelled
	}
	s.mu.Unlock()
}

// enqueueLocked re-queues a point without blocking; callers hold s.mu.
func (s *Server) enqueueLocked(j *job, idx int) bool {
	if s.draining {
		return true // stays queued; Drain persists it as pending
	}
	select {
	case s.queue <- work{j: j, idx: idx}:
		return true
	default:
		return false
	}
}

// simulate runs one fresh simulation as the flight leader for p.key, stores
// the completed entry, and returns it. On cancellation it records the
// partial prefix on p (never in the store) and returns the context error.
func (s *Server) simulate(ctx context.Context, p *pointState) (any, error) {
	// Re-check the store under the flight's per-key exclusivity: this point
	// may have lost a race with a leader that completed (and was forgotten)
	// between runPoint's store check and this flight — flights are
	// forgotten once done, the store is forever.
	if e, ok, err := s.st.Get(p.key); err != nil {
		return nil, err
	} else if ok {
		s.storeHits.Add(1)
		return e, nil
	}
	if hook := s.testBeforeRun; hook != nil {
		hook(p.spec)
	}
	s.sims.Add(1)
	sess, err := gscalar.NewSession(p.spec.Config, p.spec.Arch)
	if err != nil {
		return nil, err
	}
	if s.opts.Telemetry {
		sess.Telemetry = gscalar.TelemetryOptions{Enabled: true}
	}
	sess.ObserverStride = s.opts.ObserverStride
	key := p.key
	sess.Observer = func(pr gscalar.Progress) {
		s.mu.Lock()
		s.progress[key] = pr
		s.mu.Unlock()
		if hook := s.testOnProgress; hook != nil {
			hook(key)
		}
	}
	res, err := sess.RunWorkload(ctx, p.spec.Workload, p.spec.Scale)
	s.mu.Lock()
	delete(s.progress, key)
	s.mu.Unlock()
	if err != nil {
		if isCancel(err) {
			// A cancelled run still returns the deterministic prefix it
			// completed; surface it on the leader's own point so its
			// status can report a well-defined partial state.
			if b, mErr := json.Marshal(res); mErr == nil {
				s.mu.Lock()
				p.result = b
				p.partial = true
				s.mu.Unlock()
			}
		}
		return nil, err
	}
	resultJSON, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	e := store.Entry{
		Key:        key,
		ConfigHash: key[:strings.IndexByte(key, '|')],
		Arch:       p.spec.Arch.String(),
		Workload:   p.spec.Workload,
		Scale:      p.spec.Scale,
		Result:     resultJSON,
	}
	if m := sess.Metrics(); m != nil {
		if mb, err := m.JSON(); err == nil {
			e.Metrics = mb
		}
	}
	if err := s.st.Put(e); err != nil {
		return nil, err
	}
	return e, nil
}

func (s *Server) finishError(p *pointState, err error) {
	s.mu.Lock()
	p.status = pointFailed
	p.errMsg = err.Error()
	s.mu.Unlock()
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Drain gracefully shuts the server down: new submissions are rejected,
// in-flight simulations are cancelled (they stop at their next lifecycle
// checkpoint), the worker pool exits, and every point that did not reach a
// terminal state is persisted as pending inside the store directory. It
// returns the number of pending points written.
func (s *Server) Drain() (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, errors.New("serve: already draining")
	}
	s.draining = true
	close(s.queue) // safe: all sends happen under mu with draining checked
	s.mu.Unlock()

	s.stopRun()
	s.wg.Wait()
	return s.persistPending()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:      s.opts.Workers,
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Jobs:         len(s.jobs),
		StoreDir:     s.st.Dir(),
		StoreEntries: s.st.Len(),
		Simulations:  s.sims.Load(),
		StoreHits:    s.storeHits.Load(),
		Joins:        s.joins.Load(),
		Draining:     s.draining,
	}
}
