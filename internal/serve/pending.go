package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"gscalar"
	"gscalar/internal/store"
)

// pendingFileName is written inside the store directory on drain and read
// back on startup. It holds every point that had not reached a terminal
// state, in original FIFO order.
const pendingFileName = "pending.json"

type pendingPoint struct {
	Config   json.RawMessage `json:"config"`
	Arch     string          `json:"arch"`
	Workload string          `json:"workload"`
	Scale    int             `json:"scale"`
}

type pendingFile struct {
	Points []pendingPoint `json:"points"`
}

func (s *Server) pendingPath() string {
	return filepath.Join(s.st.Dir(), pendingFileName)
}

// persistPending writes every queued/unfinished point to pending.json (or
// removes the file when nothing is pending, so a clean drain leaves no
// residue). Called by Drain after the worker pool has exited, so point
// states are final.
func (s *Server) persistPending() (int, error) {
	s.mu.Lock()
	var pf pendingFile
	for _, id := range s.order {
		for _, p := range s.jobs[id].points {
			if p.status != pointQueued {
				continue
			}
			cfg, err := json.Marshal(p.spec.Config)
			if err != nil {
				s.mu.Unlock()
				return 0, fmt.Errorf("serve: encode pending config: %w", err)
			}
			pf.Points = append(pf.Points, pendingPoint{
				Config:   cfg,
				Arch:     p.spec.Arch.String(),
				Workload: p.spec.Workload,
				Scale:    p.spec.Scale,
			})
		}
	}
	s.mu.Unlock()
	if len(pf.Points) == 0 {
		if err := os.Remove(s.pendingPath()); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return 0, err
		}
		return 0, nil
	}
	err := store.AtomicWrite(s.pendingPath(), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(pf)
	})
	if err != nil {
		return 0, err
	}
	return len(pf.Points), nil
}

// loadPending re-enqueues the points a drained predecessor left behind, as
// one recovered job. Points that completed before the drain resolve as
// store hits, so nothing simulates twice across server lifetimes. The file
// is left in place until the next Drain rewrites or removes it; re-loading
// it after a hard kill is harmless for the same reason.
func (s *Server) loadPending() error {
	data, err := os.ReadFile(s.pendingPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var pf pendingFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("serve: corrupt %s: %w", pendingFileName, err)
	}
	if len(pf.Points) == 0 {
		return nil
	}
	specs := make([]PointSpec, 0, len(pf.Points))
	for i, pp := range pf.Points {
		spec, err := specFromParts(pp.Config, pp.Arch, pp.Workload, pp.Scale)
		if err != nil {
			return fmt.Errorf("serve: %s point %d: %w", pendingFileName, i, err)
		}
		specs = append(specs, spec)
	}
	_, err = s.submit(specs, true)
	return err
}

// specFromParts validates and assembles one point from its wire form.
func specFromParts(cfgJSON json.RawMessage, archName, workload string, scale int) (PointSpec, error) {
	var spec PointSpec
	if len(cfgJSON) == 0 || string(cfgJSON) == "null" {
		spec.Config = gscalar.DefaultConfig()
	} else {
		cfg, err := gscalar.ConfigFromJSON(cfgJSON)
		if err != nil {
			return PointSpec{}, err
		}
		spec.Config = cfg
	}
	arch, ok := gscalar.ArchByName(archName)
	if !ok {
		return PointSpec{}, fmt.Errorf("unknown arch %q (valid: %v)", archName, gscalar.ArchNames())
	}
	spec.Arch = arch
	// A workload is a spec: a builtin abbreviation or "trace:<path>".
	// CanonicalWorkloadKey resolves both — for traces it decodes the file,
	// so a submission referencing a missing or corrupt trace is rejected
	// here with the decoder's typed error instead of failing mid-sweep.
	if _, err := gscalar.CanonicalWorkloadKey(workload); err != nil {
		var unk *gscalar.UnknownWorkloadError
		if errors.As(err, &unk) {
			return PointSpec{}, fmt.Errorf("unknown workload %q (valid: %v; or trace:<path>)", workload, gscalar.Workloads())
		}
		return PointSpec{}, fmt.Errorf("workload %q: %w", workload, err)
	}
	spec.Workload = workload
	if scale == 0 {
		scale = 1
	}
	if scale < 1 {
		return PointSpec{}, fmt.Errorf("scale %d: must be >= 1", scale)
	}
	spec.Scale = scale
	return spec, nil
}
