package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gscalar"
	"gscalar/internal/gen"
	"gscalar/internal/workloads"
)

// Handler returns the server's HTTP API:
//
//	POST /api/v1/jobs              submit a point or sweep grid -> 202 {id, points}
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         job status with per-point state and progress
//	GET  /api/v1/jobs/{id}/result  completed Results (byte-identical store bytes)
//	GET  /api/v1/jobs/{id}/metrics stored telemetry blobs of completed points
//	POST /api/v1/jobs/{id}/cancel  cancel queued and running points
//	GET  /api/v1/workloads         workload catalog (builtins + trace/gen spec syntax)
//	GET  /api/v1/stats             server counters
//	GET  /healthz                  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// submitRequest is the POST /api/v1/jobs body. Singular and plural fields
// combine; the job is the cross product archs x workloads x scales, all
// sharing one config. An absent config means the Table 1 default; an absent
// scale means 1.
type submitRequest struct {
	Config    json.RawMessage `json:"config,omitempty"`
	Arch      string          `json:"arch,omitempty"`
	Archs     []string        `json:"archs,omitempty"`
	Workload  string          `json:"workload,omitempty"`
	Workloads []string        `json:"workloads,omitempty"`
	Scale     int             `json:"scale,omitempty"`
	Scales    []int           `json:"scales,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing request body: %w", err))
		return
	}
	specs, err := req.grid()
	if err != nil {
		// A bad generator dial gets the dial schema echoed alongside the
		// error, so a client can repair the spec without a second request.
		var de *gen.DialError
		if errors.As(err, &de) {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":     err.Error(),
				"generator": generatorView(),
			})
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(specs)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errDraining) || errors.Is(err, errQueueFull) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "points": len(j.points)})
}

// grid expands the request into its point list, validating every component.
func (req submitRequest) grid() ([]PointSpec, error) {
	archs := req.Archs
	if req.Arch != "" {
		archs = append([]string{req.Arch}, archs...)
	}
	if len(archs) == 0 {
		return nil, errors.New("missing arch (set \"arch\" or \"archs\")")
	}
	wls := req.Workloads
	if req.Workload != "" {
		wls = append([]string{req.Workload}, wls...)
	}
	if len(wls) == 0 {
		return nil, errors.New("missing workload (set \"workload\" or \"workloads\")")
	}
	scales := req.Scales
	if req.Scale != 0 {
		scales = append([]int{req.Scale}, scales...)
	}
	if len(scales) == 0 {
		scales = []int{1}
	}
	var specs []PointSpec
	seen := make(map[string]bool)
	for _, a := range archs {
		for _, wl := range wls {
			for _, sc := range scales {
				spec, err := specFromParts(req.Config, a, wl, sc)
				if err != nil {
					return nil, err
				}
				k := spec.Key()
				if seen[k] { // an identical grid cell, e.g. arch repeated in archs
					continue
				}
				seen[k] = true
				specs = append(specs, spec)
			}
		}
	}
	return specs, nil
}

// pointView is the wire form of one point's state.
type pointView struct {
	Arch     string            `json:"arch"`
	Workload string            `json:"workload"`
	Scale    int               `json:"scale"`
	Key      string            `json:"key"`
	Status   string            `json:"status"`
	Cached   bool              `json:"cached,omitempty"`
	Joined   bool              `json:"joined,omitempty"`
	Partial  bool              `json:"partial,omitempty"`
	Error    string            `json:"error,omitempty"`
	Progress *gscalar.Progress `json:"progress,omitempty"`
}

// jobView is the wire form of one job.
type jobView struct {
	ID        string         `json:"id"`
	State     string         `json:"state"`
	Recovered bool           `json:"recovered,omitempty"`
	Counts    map[string]int `json:"counts"`
	Points    []pointView    `json:"points,omitempty"`
}

// viewLocked renders the job; callers hold s.mu.
func (s *Server) viewLocked(j *job, withPoints bool) jobView {
	v := jobView{ID: j.id, Recovered: j.recovered, Counts: make(map[string]int)}
	anyRunning, anyQueued, anyFailed, anyCancelled := false, false, false, false
	for _, p := range j.points {
		v.Counts[p.status.String()]++
		switch p.status {
		case pointRunning:
			anyRunning = true
		case pointQueued:
			anyQueued = true
		case pointFailed:
			anyFailed = true
		case pointCancelled:
			anyCancelled = true
		}
		if withPoints {
			pv := pointView{
				Arch:     p.spec.Arch.String(),
				Workload: p.spec.Workload,
				Scale:    p.spec.Scale,
				Key:      p.key,
				Status:   p.status.String(),
				Cached:   p.cached,
				Joined:   p.joined,
				Partial:  p.partial,
				Error:    p.errMsg,
			}
			if p.status == pointRunning {
				if pr, ok := s.progress[p.key]; ok {
					pv.Progress = &pr
				}
			}
			v.Points = append(v.Points, pv)
		}
	}
	switch {
	case anyRunning:
		v.State = "running"
	case anyQueued:
		v.State = "queued"
	case anyFailed:
		v.State = "failed"
	case anyCancelled:
		v.State = "cancelled"
	default:
		v.State = "done"
	}
	return v
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.viewLocked(s.jobs[id], false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := s.viewLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// resultView pairs a point's identity with its Result bytes, verbatim from
// the store (or the partial prefix of a cancelled run).
type resultView struct {
	Arch     string          `json:"arch"`
	Workload string          `json:"workload"`
	Scale    int             `json:"scale"`
	Key      string          `json:"key"`
	Status   string          `json:"status"`
	Cached   bool            `json:"cached,omitempty"`
	Joined   bool            `json:"joined,omitempty"`
	Partial  bool            `json:"partial,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := s.viewLocked(j, false)
	results := make([]resultView, 0, len(j.points))
	for _, p := range j.points {
		results = append(results, resultView{
			Arch:     p.spec.Arch.String(),
			Workload: p.spec.Workload,
			Scale:    p.spec.Scale,
			Key:      p.key,
			Status:   p.status.String(),
			Cached:   p.cached,
			Joined:   p.joined,
			Partial:  p.partial,
			Result:   p.result,
		})
	}
	s.mu.Unlock()
	// Compact encoding: the stored Result bytes are compact, and compacting
	// compact JSON is the identity, so the response carries them verbatim —
	// an indented encoder would reformat the raw bytes instead.
	writeJSONCompact(w, http.StatusOK, map[string]any{
		"id":       j.id,
		"state":    v.State,
		"complete": v.State == "done",
		"results":  results,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	keys := make([]string, 0, len(j.points))
	for _, p := range j.points {
		if p.status == pointDone {
			keys = append(keys, p.key)
		}
	}
	s.mu.Unlock()
	type metricsView struct {
		Key     string          `json:"key"`
		Metrics json.RawMessage `json:"metrics,omitempty"`
	}
	out := make([]metricsView, 0, len(keys))
	for _, k := range keys {
		e, ok, err := s.st.Get(k)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if ok {
			out = append(out, metricsView{Key: k, Metrics: e.Metrics})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "metrics": out})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := s.CancelJob(j.id); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	v := s.viewLocked(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// workloadView is one catalog entry of GET /api/v1/workloads.
type workloadView struct {
	Abbr  string `json:"abbr"`
	Name  string `json:"name"`
	Suite string `json:"suite"`
	Desc  string `json:"desc"`
}

// handleWorkloads serves the workload catalog: every builtin benchmark in
// Table 2 order, the spec syntax for trace replays, and the synthetic
// generator's dial schema, so clients can discover valid "workload" values
// before submitting.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	abbrs := gscalar.Workloads()
	views := make([]workloadView, 0, len(abbrs))
	for _, a := range abbrs {
		info, ok := gscalar.WorkloadByAbbr(a)
		if !ok {
			continue
		}
		views = append(views, workloadView{Abbr: info.Abbr, Name: info.Name, Suite: info.Suite, Desc: info.Desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads":  views,
		"trace_spec": "trace:<path> — replay a trace captured with gscalar-sim -trace-out (the path must be readable by the server)",
		"generator":  generatorView(),
	})
}

// generatorView is the machine-readable description of the "gen:" workload
// form: the spec prefix plus the dial schema (name, type, range, default,
// description per dial). It is served in the workload catalog and echoed in
// submit errors caused by out-of-range dials.
func generatorView() map[string]any {
	return map[string]any{
		"prefix": workloads.GenPrefix,
		"syntax": workloads.GenPrefix + "name=value,name=value,... (omitted dials take their defaults)",
		"dials":  gen.Schema(),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONCompact(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
