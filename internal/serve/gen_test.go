package serve

import (
	"net/http"
	"strings"
	"testing"
)

// TestWorkloadsGeneratorSchema: the catalog advertises the synthetic
// generator — prefix, syntax and the full dial schema — so clients can
// build gen sweeps without hardcoding dial names or ranges.
func TestWorkloadsGeneratorSchema(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Workers: 1})
	var v struct {
		Generator struct {
			Prefix string `json:"prefix"`
			Syntax string `json:"syntax"`
			Dials  []struct {
				Name string  `json:"name"`
				Type string  `json:"type"`
				Min  float64 `json:"min"`
				Max  float64 `json:"max"`
				Desc string  `json:"description"`
			} `json:"dials"`
		} `json:"generator"`
	}
	if resp := getJSON(t, ts.URL+"/api/v1/workloads", &v); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	g := v.Generator
	if g.Prefix != "gen:" {
		t.Errorf("generator prefix = %q", g.Prefix)
	}
	if len(g.Dials) < 8 {
		t.Fatalf("generator schema has %d dials", len(g.Dials))
	}
	seen := map[string]bool{}
	for _, d := range g.Dials {
		seen[d.Name] = true
		if d.Desc == "" || (d.Type != "float" && d.Type != "int") {
			t.Errorf("dial %+v incomplete", d)
		}
	}
	for _, want := range []string{"div", "sfu", "mem", "coal", "rs", "r3", "occ", "seed"} {
		if !seen[want] {
			t.Errorf("schema missing dial %q", want)
		}
	}
}

// TestSubmitBadGenDialEchoesSchema: an out-of-range dial is rejected with
// 400 and the response embeds the generator schema next to the error, so a
// client can repair the spec without a second round trip.
func TestSubmitBadGenDialEchoesSchema(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Options{Workers: 1})
	for _, spec := range []string{"gen:div=2", "gen:bogus=1", "gen:sfu=0.4,mem=0.4"} {
		resp, body := postJSON(t, ts.URL+"/api/v1/jobs",
			map[string]any{"arch": "gscalar", "workload": spec})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", spec, resp.StatusCode, body)
		}
		s := string(body)
		if !strings.Contains(s, "gen dial") {
			t.Errorf("%s: error %s lacks the dial error", spec, s)
		}
		if !strings.Contains(s, `"generator"`) || !strings.Contains(s, `"dials"`) {
			t.Errorf("%s: response %s does not echo the generator schema", spec, s)
		}
	}
	// Non-gen submit errors stay schema-free.
	resp, body := postJSON(t, ts.URL+"/api/v1/jobs",
		map[string]any{"arch": "gscalar", "workload": "XX"})
	if resp.StatusCode != http.StatusBadRequest || strings.Contains(string(body), `"dials"`) {
		t.Errorf("unknown builtin: %d %s", resp.StatusCode, body)
	}
}

// TestGenWorkloadStoreCached: a gen point simulates once and is then served
// from the content-addressed store — including under a different spelling
// of the same dial vector, since the store key is the canonical spec.
func TestGenWorkloadStoreCached(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	s, ts := newTestServer(t, t.TempDir(), Options{Workers: 2})
	req := map[string]any{
		"config": tinyConfig(), "arch": "gscalar",
		"workload": "gen:div=0.30,occ=0.05,seed=3",
	}
	id1 := submit(t, ts.URL, req)
	waitState(t, ts.URL, id1, "done")
	st1 := s.Stats()
	if st1.Simulations != 1 {
		t.Fatalf("first job: %d simulations, want 1", st1.Simulations)
	}
	r1 := getResults(t, ts.URL, id1)

	// Same dials, different spelling: zero new simulations.
	req["workload"] = "gen:seed=3,occ=0.05,div=0.3,sfu=0.05"
	id2 := submit(t, ts.URL, req)
	waitState(t, ts.URL, id2, "done")
	st2 := s.Stats()
	if st2.Simulations != st1.Simulations {
		t.Errorf("resubmission simulated again: %d -> %d", st1.Simulations, st2.Simulations)
	}
	if st2.StoreHits == st1.StoreHits {
		t.Errorf("resubmission did not hit the store (hits %d)", st2.StoreHits)
	}
	r2 := getResults(t, ts.URL, id2)
	if len(r1.Results) != 1 || len(r2.Results) != 1 {
		t.Fatalf("results: %d and %d points", len(r1.Results), len(r2.Results))
	}
	if string(r1.Results[0].Result) != string(r2.Results[0].Result) {
		t.Errorf("store-served result bytes differ from the original")
	}
}
