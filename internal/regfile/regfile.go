// Package regfile models the banked register file of §2.1/§3.2: 16 banks of
// eight 128-bit single-port SRAM arrays in the byte-plane-reordered layout,
// each bank paired with a small BVR/EBR array, plus (for the prior-work
// comparator) a single dedicated scalar bank. It arbitrates per-cycle port
// grants and composes the energy cost of each access from the core
// compression model's array counts.
package regfile

import (
	"gscalar/internal/core"
	"gscalar/internal/power"
	"gscalar/internal/telemetry"
)

// Port identifies which structure a register access uses.
type Port uint8

// Ports.
const (
	// PortMain is a bank's main SRAM arrays (one access per bank per cycle;
	// the paired BVR/EBR entry rides along).
	PortMain Port = iota
	// PortBVR is a bank's base-value/encoding-bit small array alone — a
	// compressed-scalar access. It has its own port, which is why G-Scalar
	// "effectively provides 16 banks for scalar values" (§4.1).
	PortBVR
	// PortScalarBank is the Gilani baseline's single dedicated scalar bank,
	// serving one access per cycle for the whole SM.
	PortScalarBank
)

// File is the per-SM register-file arbitration state. Port grants are
// tracked as per-bank cycle generations in two flat slices: a port is busy
// when its generation equals the current one, so starting a new cycle is a
// single counter increment instead of clearing every bank flag.
type File struct {
	banks     int
	gen       uint64
	mainGen   []uint64
	bvrGen    []uint64
	scalarGen uint64

	// Port-grant telemetry counters: plain increments on the TryServe hot
	// path, never read during simulation (see package telemetry).
	mainGrants   uint64
	bvrGrants    uint64
	scalarGrants uint64
}

// New creates the arbitration state for the given bank count.
func New(banks int) *File {
	return &File{
		banks:   banks,
		gen:     1,
		mainGen: make([]uint64, banks),
		bvrGen:  make([]uint64, banks),
	}
}

// Banks returns the number of banks.
func (f *File) Banks() int { return f.banks }

// NewCycle releases all port grants for the next cycle.
func (f *File) NewCycle() { f.gen++ }

// TryServe attempts to grant the given port of the given bank this cycle.
func (f *File) TryServe(bank int, port Port) bool {
	switch port {
	case PortMain:
		if f.mainGen[bank] == f.gen {
			return false
		}
		f.mainGen[bank] = f.gen
		f.mainGrants++
	case PortBVR:
		if f.bvrGen[bank] == f.gen {
			return false
		}
		f.bvrGen[bank] = f.gen
		f.bvrGrants++
	case PortScalarBank:
		if f.scalarGen == f.gen {
			return false
		}
		f.scalarGen = f.gen
		f.scalarGrants++
	}
	return true
}

// RegisterTelemetry registers the file's port-grant counters under the given
// instance id (the owning SM's id).
func (f *File) RegisterTelemetry(reg *telemetry.Registry, instance int) {
	reg.Counter("rf.main_grants", instance, &f.mainGrants)
	reg.Counter("rf.bvr_grants", instance, &f.bvrGrants)
	reg.Counter("rf.scalarbank_grants", instance, &f.scalarGrants)
}

// BankOf maps an architectural register of a warp to its bank, using the
// register-index-plus-warp-id interleaving GPGPU-Sim uses.
func BankOf(reg uint8, warpGlobalID, banks int) int {
	return (int(reg) + warpGlobalID) % banks
}

// Access is the energy decomposition of one register-file access.
type Access struct {
	Port       Port
	Bank       int
	ArrayPJ    float64 // main SRAM array activation energy
	BVRPJ      float64 // BVR/EBR small-array energy
	XbarBytes  int     // bytes moved through the crossbar
	Decompress bool    // exercises the decompressor (Figure 5)
}

// ReadAccess composes the access for a byte-wise-compressed register read.
func ReadAccess(reg uint8, warpGlobalID int, banks int, rc core.ReadCost, en power.Energies) Access {
	a := Access{
		Bank:      BankOf(reg, warpGlobalID, banks),
		ArrayPJ:   float64(rc.ArraysRead) * en.RFArrayAccess,
		XbarBytes: rc.CrossbarBytes,
	}
	if rc.ArraysRead == 0 {
		a.Port = PortBVR
	} else {
		a.Port = PortMain
	}
	if rc.BVREBRRead {
		a.BVRPJ = en.RFBVRAccess
	}
	a.Decompress = rc.Decompress
	return a
}

// BaselineReadAccess composes a full uncompressed register read (all arrays
// of the bank, full crossbar traffic).
func BaselineReadAccess(reg uint8, warpGlobalID, banks, warpSize int, en power.Energies) Access {
	arrays := core.Groups(warpSize) * core.WordBytes
	return Access{
		Port:      PortMain,
		Bank:      BankOf(reg, warpGlobalID, banks),
		ArrayPJ:   float64(arrays) * en.RFArrayAccess,
		XbarBytes: warpSize * core.WordBytes,
	}
}

// BDIReadAccess composes a Warped-Compression (BDI) register read: arrays
// proportional to the compressed footprint, plus the BDI unpacker energy
// (booked by the caller as codec energy).
func BDIReadAccess(reg uint8, warpGlobalID, banks, compressedBytes int, en power.Energies) Access {
	arrays := (compressedBytes + 15) / 16
	return Access{
		Port:      PortMain,
		Bank:      BankOf(reg, warpGlobalID, banks),
		ArrayPJ:   float64(arrays)*en.RFArrayAccess + en.BDICodecUse,
		XbarBytes: compressedBytes,
	}
}

// ScalarBankAccess composes a read/write of the Gilani baseline's dedicated
// scalar bank.
func ScalarBankAccess(en power.Energies) Access {
	return Access{Port: PortScalarBank, ArrayPJ: en.RFScalarBankAccess}
}
