package regfile

import "testing"

// TestArbitrationZeroAlloc checks the per-cycle port-arbitration hot path:
// NewCycle is a generation bump and TryServe a pair of compares, neither may
// allocate.
func TestArbitrationZeroAlloc(t *testing.T) {
	f := New(16)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		f.NewCycle()
		f.TryServe(i%16, PortMain)
		f.TryServe(i%16, PortBVR)
		f.TryServe(0, PortScalarBank)
		i++
	})
	if allocs != 0 {
		t.Errorf("arbitration allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestArenaRecycleZeroAlloc checks that a warm arena recycles freed chunks
// without touching the heap — the property that keeps mid-run CTA launches
// allocation-free.
func TestArenaRecycleZeroAlloc(t *testing.T) {
	const words = 34 * 32
	a := NewArena(words * 4)
	// Warm: populate the free list growth.
	s := a.Alloc(words)
	a.Free(s)
	allocs := testing.AllocsPerRun(1000, func() {
		c := a.Alloc(words)
		a.Free(c)
	})
	if allocs != 0 {
		t.Errorf("arena recycle allocates %.2f objects/launch, want 0", allocs)
	}
}

// TestArenaZeroesRecycledChunks checks a recycled chunk comes back zeroed —
// new warps must see cleared registers exactly as a fresh allocation would
// provide.
func TestArenaZeroesRecycledChunks(t *testing.T) {
	a := NewArena(64)
	s := a.Alloc(16)
	for i := range s {
		s[i] = 0xDEADBEEF
	}
	a.Free(s)
	r := a.Alloc(16)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled chunk word %d = %#x, want 0", i, v)
		}
	}
}
