package regfile

// Arena is a flat backing store for per-warp lane state (registers and
// thread-coordinate vectors). One arena per SM keeps every resident warp's
// register vectors contiguous in a single slice — the structure-of-arrays
// layout the branchless execution loops stream over — and makes mid-run CTA
// launches allocation-free: chunks released by retired warps are recycled.
//
// The arena is sized for the SM's maximum resident-warp footprint, so the
// fallback heap allocation only triggers for configurations with an
// unbounded register file.
type Arena struct {
	backing []uint32
	used    int
	free    [][]uint32
}

// NewArena creates an arena of the given capacity in uint32 words.
func NewArena(words int) *Arena {
	if words < 0 {
		words = 0
	}
	return &Arena{backing: make([]uint32, words)}
}

// Alloc returns a zeroed chunk of the given word count: a recycled chunk of
// the same size when one is free, a fresh carve from the backing store
// otherwise, and a plain heap allocation only if the arena is exhausted.
func (a *Arena) Alloc(words int) []uint32 {
	for i := len(a.free) - 1; i >= 0; i-- {
		if len(a.free[i]) == words {
			s := a.free[i]
			a.free = append(a.free[:i], a.free[i+1:]...)
			clear(s)
			return s
		}
	}
	if a.used+words <= len(a.backing) {
		s := a.backing[a.used : a.used+words : a.used+words]
		a.used += words
		return s
	}
	return make([]uint32, words)
}

// Free returns a chunk to the arena for reuse. Freeing nil is a no-op.
func (a *Arena) Free(s []uint32) {
	if s == nil {
		return
	}
	a.free = append(a.free, s)
}
