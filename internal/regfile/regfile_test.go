package regfile

import (
	"testing"

	"gscalar/internal/core"
	"gscalar/internal/power"
	"gscalar/internal/warp"
)

func TestPortArbitration(t *testing.T) {
	f := New(4)
	if !f.TryServe(0, PortMain) {
		t.Fatal("fresh main port denied")
	}
	if f.TryServe(0, PortMain) {
		t.Fatal("main port double-granted in one cycle")
	}
	// The BVR array of the same bank is an independent port (§4.1).
	if !f.TryServe(0, PortBVR) {
		t.Fatal("BVR port blocked by main port")
	}
	if !f.TryServe(1, PortMain) {
		t.Fatal("other bank blocked")
	}
	// The dedicated scalar bank serves one access per cycle SM-wide.
	if !f.TryServe(0, PortScalarBank) {
		t.Fatal("scalar bank denied")
	}
	if f.TryServe(3, PortScalarBank) {
		t.Fatal("scalar bank double-granted")
	}
	f.NewCycle()
	if !f.TryServe(0, PortMain) || !f.TryServe(0, PortScalarBank) {
		t.Fatal("ports not released at cycle boundary")
	}
}

func TestBankOf(t *testing.T) {
	if BankOf(3, 0, 16) != 3 {
		t.Error("simple mapping broken")
	}
	if BankOf(3, 5, 16) != 8 {
		t.Error("warp interleave broken")
	}
	if BankOf(15, 1, 16) != 0 {
		t.Error("wraparound broken")
	}
}

func TestReadAccessComposition(t *testing.T) {
	en := power.DefaultEnergies()

	// Scalar register: BVR-only access, no arrays, no crossbar traffic.
	wr := core.NewWarpRegs(8, 8, 32, warp.FullMask(32))
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = 7
	}
	wr.OnWrite(1, vec, warp.FullMask(32), core.GScalarFeatures(), false)
	rc := wr.OnRead(1, warp.FullMask(32), core.GScalarFeatures(), false)
	a := ReadAccess(1, 0, 16, rc, en)
	if a.Port != PortBVR || a.ArrayPJ != 0 || a.XbarBytes != 0 || a.BVRPJ != en.RFBVRAccess {
		t.Fatalf("scalar access = %+v", a)
	}

	// 3-byte-similar register: one delta plane per 16-lane group.
	for i := range vec {
		vec[i] = 0xAABB0000 + uint32(i)
	}
	wr.OnWrite(2, vec, warp.FullMask(32), core.GScalarFeatures(), false)
	rc = wr.OnRead(2, warp.FullMask(32), core.GScalarFeatures(), false)
	a = ReadAccess(2, 0, 16, rc, en)
	if a.Port != PortMain || a.ArrayPJ != 2*en.RFArrayAccess || !a.Decompress {
		t.Fatalf("3-byte access = %+v", a)
	}

	// Baseline read: all 8 arrays, 128 bytes.
	b := BaselineReadAccess(2, 0, 16, 32, en)
	if b.ArrayPJ != 8*en.RFArrayAccess || b.XbarBytes != 128 {
		t.Fatalf("baseline access = %+v", b)
	}

	// BDI read: arrays scale with the compressed footprint.
	d := BDIReadAccess(2, 0, 16, 37, en)
	if d.ArrayPJ != 3*en.RFArrayAccess+en.BDICodecUse || d.XbarBytes != 37 {
		t.Fatalf("BDI access = %+v", d)
	}

	sb := ScalarBankAccess(en)
	if sb.Port != PortScalarBank || sb.ArrayPJ != en.RFScalarBankAccess {
		t.Fatalf("scalar-bank access = %+v", sb)
	}
}

// TestScalarReadsCheaperInvariant: for any register state, a compressed read
// must never cost more array energy than the baseline full read.
func TestScalarReadsCheaperInvariant(t *testing.T) {
	en := power.DefaultEnergies()
	wr := core.NewWarpRegs(8, 8, 32, warp.FullMask(32))
	patterns := [][]uint32{make([]uint32, 32), make([]uint32, 32), make([]uint32, 32)}
	for i := 0; i < 32; i++ {
		patterns[0][i] = 5
		patterns[1][i] = 0x1000 + uint32(i)
		patterns[2][i] = uint32(i) * 0x9E3779B9
	}
	base := BaselineReadAccess(1, 0, 16, 32, en)
	for pi, vec := range patterns {
		wr.OnWrite(1, vec, warp.FullMask(32), core.GScalarFeatures(), false)
		rc := wr.OnRead(1, warp.FullMask(32), core.GScalarFeatures(), false)
		a := ReadAccess(1, 0, 16, rc, en)
		if a.ArrayPJ > base.ArrayPJ {
			t.Errorf("pattern %d: compressed read (%v pJ) costs more than baseline (%v pJ)",
				pi, a.ArrayPJ, base.ArrayPJ)
		}
	}
}
