package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
	"gscalar/internal/warp"
)

const testProg = `
.kernel tracedemo
	mov r1, %tid.x
	iadd r2, r1, 5
	ldg r3, [r2]
	exit
`

// buildCapture assembles a tiny kernel, snapshots a small memory image, and
// appends a handful of synthetic records covering every field class: a plain
// ALU writeback, a divergent global load with per-lane addresses, and an
// exit with no destination.
func buildCapture(t testing.TB) (*Capture, []Record) {
	t.Helper()
	prog, err := asm.Assemble(testProg)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{
		Grid:  kernel.Dim{X: 2, Y: 1},
		Block: kernel.Dim{X: 32, Y: 1},
	}
	lc.Params[0] = 0x1234
	mem := kernel.NewMemory()
	mem.AllocU32([]uint32{7, 8, 9, 0xdeadbeef})

	meta := Meta{Workload: "HS", Arch: "gscalar", Scale: 1, ConfigHash: "abc", WarpSize: 32}
	cap := NewCapture(meta, prog, lc, mem)

	uniform := make([]uint32, 32)
	for i := range uniform {
		uniform[i] = 42
	}
	varied := make([]uint32, 32)
	for i := range varied {
		varied[i] = 0x1000 + uint32(i)
	}
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = 0x200 + 4*uint32(i)
	}

	outs := []warp.Outcome{
		{
			PC: 0, Inst: &isa.Instruction{Op: isa.OpMov},
			Issued: ^uint64(0), Active: ^uint64(0),
			DstReg: 1, DstVec: uniform,
		},
		{
			PC: 2, Inst: &isa.Instruction{Op: isa.OpLdGlobal},
			Issued: ^uint64(0), Active: 0x00000000ffff00ff,
			DstReg: 3, DstVec: varied,
			IsMem: true, IsGlobal: true, Addrs: addrs,
			Divergent: true,
		},
		{
			PC: 3, Inst: &isa.Instruction{Op: isa.OpExit},
			Issued: ^uint64(0), Active: ^uint64(0),
			DstReg: -1, Exited: true,
		},
	}
	sms := []int{0, 3, 14}
	warps := []int{0, 17, 255}
	want := make([]Record, len(outs))
	for i := range outs {
		cap.Record(sms[i], warps[i], &outs[i])
		o := &outs[i]
		r := Record{
			SM: sms[i], Warp: warps[i], PC: o.PC, Op: uint8(o.Inst.Op),
			Issued: o.Issued, Active: o.Active,
			DstReg: o.DstReg,
			IsMem:  o.IsMem, IsGlobal: o.IsGlobal, IsStore: o.IsStore,
			Divergent: o.Divergent, Exited: o.Exited, AtBarrier: o.AtBarrier,
			TookBranch: o.TookBranch, BranchDiverged: o.BranchDiverged,
		}
		if o.DstReg >= 0 {
			r.SharedMSBBytes = sharedMSBBytes(o.DstVec, o.Active)
		}
		if o.IsMem {
			for m := o.Active; m != 0; m &= m - 1 {
				lane := 0
				for ; m&(1<<lane) == 0; lane++ {
				}
				r.Addrs = append(r.Addrs, o.Addrs[lane])
			}
		}
		want[i] = r
	}
	return cap, want
}

func encode(t *testing.T, c *Capture) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	cap, want := buildCapture(t)
	data := encode(t, cap)

	tr, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta != (Meta{Workload: "HS", Arch: "gscalar", Scale: 1, ConfigHash: "abc", WarpSize: 32}) {
		t.Errorf("meta = %+v", tr.Meta)
	}
	if len(tr.Hash) != 64 {
		t.Errorf("hash = %q, want 64 hex chars", tr.Hash)
	}
	prog, err := tr.Program()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "tracedemo" || prog.Len() != 4 {
		t.Errorf("program = %q len %d", prog.Name, prog.Len())
	}
	lc := tr.Launch()
	if lc.Grid != (kernel.Dim{X: 2, Y: 1}) || lc.Block != (kernel.Dim{X: 32, Y: 1}) || lc.Params[0] != 0x1234 {
		t.Errorf("launch = %+v", lc)
	}
	// Launch hands out an independent copy.
	lc.Params[0] = 0
	if tr.Launch().Params[0] != 0x1234 {
		t.Error("Launch() aliases internal state")
	}
	mem := tr.NewMemory()
	if got := mem.ReadU32(256, 4); got[3] != 0xdeadbeef || got[0] != 7 {
		t.Errorf("memory = %v", got)
	}
	// Mutating one replay's memory must not leak into the next.
	mem.Store32(256, 99)
	if tr.NewMemory().Load32(256) != 7 {
		t.Error("NewMemory shares pages between calls")
	}

	if tr.NumRecords() != len(want) {
		t.Fatalf("NumRecords = %d, want %d", tr.NumRecords(), len(want))
	}
	recs, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		w := want[i]
		if r.SM != w.SM || r.Warp != w.Warp || r.PC != w.PC || r.Op != w.Op ||
			r.Issued != w.Issued || r.Active != w.Active ||
			r.DstReg != w.DstReg || r.SharedMSBBytes != w.SharedMSBBytes ||
			r.IsMem != w.IsMem || r.IsGlobal != w.IsGlobal || r.IsStore != w.IsStore ||
			r.Divergent != w.Divergent || r.Exited != w.Exited ||
			r.AtBarrier != w.AtBarrier || r.TookBranch != w.TookBranch ||
			r.BranchDiverged != w.BranchDiverged {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
		if len(r.Addrs) != len(w.Addrs) {
			t.Errorf("record %d addrs len = %d, want %d", i, len(r.Addrs), len(w.Addrs))
			continue
		}
		for j := range r.Addrs {
			if r.Addrs[j] != w.Addrs[j] {
				t.Errorf("record %d addr %d = %#x, want %#x", i, j, r.Addrs[j], w.Addrs[j])
			}
		}
	}

	// Encoding carries no timestamps: a second encode is byte-identical.
	if !bytes.Equal(data, encode(t, cap)) {
		t.Error("re-encoding the same capture produced different bytes")
	}
}

func TestDecodeTruncated(t *testing.T) {
	cap, _ := buildCapture(t)
	data := encode(t, cap)
	for i := 0; i < len(data); i++ {
		_, err := Decode(data[:i])
		if err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded", i, len(data))
		}
		var fe *FormatError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
			t.Fatalf("prefix %d: err = %v, want ErrTruncated or FormatError", i, err)
		}
	}
	// A clean cut just before the footer is the canonical truncation.
	if _, err := Decode(data[:len(data)-5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("footer-less trace: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	cap, _ := buildCapture(t)
	data := encode(t, cap)
	data[len(Magic)] = 2
	_, err := Decode(data)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != 2 {
		t.Fatalf("err = %v, want *VersionError{Got: 2}", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := Decode([]byte("XXXX\x01 not a trace at all........"))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FormatError", err)
	}
}

func TestDecodeCRCMismatch(t *testing.T) {
	cap, _ := buildCapture(t)
	data := encode(t, cap)
	// Flip a record payload byte: structurally valid, CRC must catch it.
	corrupt := bytes.Clone(data)
	corrupt[len(corrupt)-6] ^= 0xff
	_, err := Decode(corrupt)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("payload corruption: err = %v, want *FormatError", err)
	}
	// Flip a CRC byte itself.
	corrupt = bytes.Clone(data)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := Decode(corrupt); err == nil {
		t.Fatal("corrupted CRC accepted")
	}
}

// spliceSection inserts a section just before the footer and recomputes the
// CRC, emulating a writer that emits an extra section.
func spliceSection(data []byte, tag uint8, payload []byte) []byte {
	body := bytes.Clone(data[: len(data)-5 : len(data)-5])
	body = append(body, tag)
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)
	body = append(body, tagFooter)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func TestDecodeSkipsUnknownSections(t *testing.T) {
	cap, want := buildCapture(t)
	data := spliceSection(encode(t, cap), 200, []byte("from the future"))
	tr, err := Decode(data)
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	if tr.NumRecords() != len(want) {
		t.Errorf("NumRecords = %d, want %d", tr.NumRecords(), len(want))
	}
	if _, err := tr.Records(); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsDuplicateSections(t *testing.T) {
	cap, _ := buildCapture(t)
	data := spliceSection(encode(t, cap), tagProgram, []byte(".kernel dup\n\texit\n"))
	_, err := Decode(data)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("duplicate section: err = %v, want *FormatError", err)
	}
}

func TestDecodeTrailingData(t *testing.T) {
	cap, _ := buildCapture(t)
	data := append(encode(t, cap), 0xaa)
	_, err := Decode(data)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("trailing byte: err = %v, want *FormatError", err)
	}
}

func TestSharedMSBBytes(t *testing.T) {
	cases := []struct {
		name   string
		vec    []uint32
		active uint64
		want   uint8
	}{
		{"uniform", []uint32{5, 5, 5, 5}, 0b1111, 4},
		{"low byte differs", []uint32{0x11223344, 0x11223345}, 0b11, 3},
		{"third byte differs", []uint32{0x11220000, 0x11220100}, 0b11, 2},
		{"top byte differs", []uint32{0x01000000, 0x81000000}, 0b11, 0},
		{"inactive lanes ignored", []uint32{7, 999, 7, 999}, 0b0101, 4},
		{"single lane", []uint32{0xffffffff}, 0b1, 4},
		{"empty mask", []uint32{1, 2}, 0, 4},
	}
	for _, c := range cases {
		if got := sharedMSBBytes(c.vec, c.active); got != c.want {
			t.Errorf("%s: sharedMSBBytes = %d, want %d", c.name, got, c.want)
		}
	}
}
