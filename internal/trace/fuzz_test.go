package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode drives the trace decoder with arbitrary bytes. The contract
// under fuzzing: Decode never panics, never allocates from an unvalidated
// length, and on success every accessor — including the lazy Records
// decode — also completes without panicking.
func FuzzDecode(f *testing.F) {
	cap, _ := buildCapture(f)
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(Magic)+1])
	f.Add([]byte(Magic))
	f.Add([]byte("GSTR\x01"))
	f.Add([]byte{})
	// Version bump and one-byte corruption as seed mutations.
	bumped := bytes.Clone(valid)
	bumped[len(Magic)] = 0x7f
	f.Add(bumped)
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			var ve *VersionError
			var fe *FormatError
			if !errors.Is(err, ErrTruncated) && !errors.As(err, &ve) && !errors.As(err, &fe) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successfully decoded trace must be fully traversable.
		tr.Launch()
		tr.NewMemory()
		tr.Program() // may fail (arbitrary program text), must not panic
		if _, err := tr.Records(); err != nil {
			var fe *FormatError
			if !errors.Is(err, ErrTruncated) && !errors.As(err, &fe) {
				t.Fatalf("untyped records error: %v", err)
			}
		}
	})
}
