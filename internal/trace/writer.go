package trace

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/bits"
	"os"
	"path/filepath"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/store"
	"gscalar/internal/warp"
)

// Capture accumulates a trace during a live run. NewCapture snapshots the
// simulation input (program, launch, initial memory) *before* the run
// mutates it; Record appends one dynamic instruction per call. Capture is
// not safe for concurrent use — the capture hook is restricted to the serial
// chip loop, where warp executions are already totally ordered.
type Capture struct {
	meta     Meta
	progText string
	launch   kernel.LaunchConfig
	memNext  uint32
	memPages []kernel.MemPage

	records []byte
	count   int
}

// NewCapture starts a capture of a run about to execute prog under lc with
// initial global memory mem. The memory image is snapshotted here, so the
// caller must invoke NewCapture before simulation starts mutating it.
func NewCapture(meta Meta, prog *kernel.Program, lc *kernel.LaunchConfig, mem *kernel.Memory) *Capture {
	c := &Capture{
		meta:     meta,
		progText: asm.Disassemble(prog),
		launch:   *lc,
	}
	c.memNext, c.memPages = mem.Snapshot()
	return c
}

// Record appends one executed warp-instruction. It copies everything it
// needs out of out immediately — in particular out.Addrs, which aliases a
// collector scratch buffer the SM reuses on the next issue.
func (c *Capture) Record(smID, warpID int, out *warp.Outcome) {
	b := c.records
	b = binary.AppendUvarint(b, uint64(smID))
	b = binary.AppendUvarint(b, uint64(warpID))
	b = binary.AppendUvarint(b, uint64(out.PC))
	b = append(b, uint8(out.Inst.Op))

	var flags uint8
	if out.IsMem {
		flags |= flagMem
	}
	if out.IsGlobal {
		flags |= flagGlobal
	}
	if out.IsStore {
		flags |= flagStore
	}
	if out.Divergent {
		flags |= flagDivergent
	}
	if out.Exited {
		flags |= flagExited
	}
	if out.AtBarrier {
		flags |= flagBarrier
	}
	if out.TookBranch {
		flags |= flagTookBranch
	}
	if out.BranchDiverged {
		flags |= flagBranchDiverged
	}
	b = append(b, flags)

	b = binary.AppendUvarint(b, out.Issued)
	b = binary.AppendUvarint(b, out.Active)

	if out.DstReg >= 0 {
		b = binary.AppendUvarint(b, uint64(out.DstReg)+1)
		b = append(b, sharedMSBBytes(out.DstVec, out.Active))
	} else {
		b = binary.AppendUvarint(b, 0)
	}

	if out.IsMem {
		prev := uint32(0)
		first := true
		for m := out.Active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			addr := uint32(0)
			if lane < len(out.Addrs) {
				addr = out.Addrs[lane]
			}
			if first {
				b = binary.AppendUvarint(b, uint64(addr))
				first = false
			} else {
				b = binary.AppendVarint(b, int64(addr)-int64(prev))
			}
			prev = addr
		}
	}

	c.records = b
	c.count++
}

// NumRecords returns the number of records appended so far.
func (c *Capture) NumRecords() int { return c.count }

// sharedMSBBytes computes the destination value-class tag: the number of
// leading bytes every active lane's written value shares (4 = scalar-uniform
// vector, 0 = nothing shared). This is the same notion core.SameMSBBytes
// feeds G-Scalar's BDI compressor, recomputed here so traces carry the
// classification input without the replay pipeline needing the stream.
func sharedMSBBytes(vec []uint32, active uint64) uint8 {
	if active == 0 || len(vec) == 0 {
		return 4
	}
	firstLane := bits.TrailingZeros64(active)
	if firstLane >= len(vec) {
		return 4
	}
	first := vec[firstLane]
	var diff uint32
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		if lane < len(vec) {
			diff |= vec[lane] ^ first
		}
	}
	if diff == 0 {
		return 4
	}
	return uint8(bits.LeadingZeros32(diff) / 8)
}

// WriteFile encodes the trace to path via store.AtomicWrite: an interrupted
// write leaves either the previous file or nothing, never a truncated trace.
// The parent directory is created if missing.
func (c *Capture) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return store.AtomicWrite(path, c.Encode)
}

// Encode writes the full trace — header, sections, CRC footer — to w.
func (c *Capture) Encode(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	cw.write([]byte(Magic))
	cw.write([]byte{Version})

	metaJSON, err := encodeMetaJSON(c.meta)
	if err != nil {
		return err
	}
	cw.section(tagMeta, metaJSON)
	cw.section(tagProgram, []byte(c.progText))

	launchJSON, err := encodeLaunchJSON(&c.launch)
	if err != nil {
		return err
	}
	cw.section(tagLaunch, launchJSON)

	var memBuf []byte
	memBuf = binary.AppendUvarint(memBuf, uint64(c.memNext))
	memBuf = binary.AppendUvarint(memBuf, uint64(len(c.memPages)))
	for _, pg := range c.memPages {
		memBuf = binary.AppendUvarint(memBuf, uint64(pg.ID))
		memBuf = binary.AppendUvarint(memBuf, uint64(len(pg.Data)))
		memBuf = append(memBuf, pg.Data...)
	}
	cw.section(tagMemory, memBuf)

	// Records section: count prefix + raw record bytes, streamed without
	// concatenating into a fresh payload buffer.
	countPrefix := binary.AppendUvarint(nil, uint64(c.count))
	cw.write([]byte{tagRecords})
	cw.write(binary.AppendUvarint(nil, uint64(len(countPrefix)+len(c.records))))
	cw.write(countPrefix)
	cw.write(c.records)

	// Footer: the tag byte is covered by the CRC, the CRC itself is not.
	cw.write([]byte{tagFooter})
	if cw.err != nil {
		return cw.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], cw.crc.Sum32())
	_, err = w.Write(sum[:])
	return err
}

// crcWriter tees every write into a running CRC32 and latches the first
// error so Encode reads as straight-line code.
type crcWriter struct {
	w   io.Writer
	crc interface {
		io.Writer
		Sum32() uint32
	}
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc.Write(p)
	_, cw.err = cw.w.Write(p)
}

func (cw *crcWriter) section(tag uint8, payload []byte) {
	cw.write([]byte{tag})
	cw.write(binary.AppendUvarint(nil, uint64(len(payload))))
	cw.write(payload)
}
