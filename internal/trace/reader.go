package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"sync"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// Trace is a decoded trace file. The static sections (program, launch,
// memory image) are the full simulation input; accessors hand out fresh
// copies of the mutable parts so one Trace can back many concurrent
// replays.
type Trace struct {
	// Meta is the capture's provenance record.
	Meta Meta
	// Hash is the sha256 hex digest of the encoded file bytes — the
	// content address trace-backed experiment points key on.
	Hash string

	progText string
	launch   kernel.LaunchConfig
	memNext  uint32
	memPages []kernel.MemPage

	recData  []byte
	recCount int

	progOnce sync.Once
	prog     *kernel.Program
	progErr  error
}

// ReadFile reads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Decode parses an encoded trace. It never panics on malformed input: any
// structural problem yields ErrTruncated, *VersionError or *FormatError,
// and no allocation is sized from an unvalidated length field. The returned
// Trace aliases data's memory-image and record bytes, so the caller must
// not mutate data afterwards.
func Decode(data []byte) (*Trace, error) {
	if len(data) >= len(Magic) && string(data[:len(Magic)]) != Magic {
		return nil, &FormatError{Offset: 0, Msg: "bad magic (not a trace file)"}
	}
	if len(data) < len(Magic)+1 {
		return nil, ErrTruncated
	}
	if v := int(data[len(Magic)]); v != Version {
		return nil, &VersionError{Got: v}
	}

	t := &Trace{}
	seen := map[uint8]bool{}
	d := &decoder{data: data, off: len(Magic) + 1}
	for {
		tagOff := d.off
		tag, err := d.u8()
		if err != nil {
			return nil, err // footer never reached
		}
		if tag == tagFooter {
			// CRC covers everything up to and including the footer tag.
			if d.remaining() < 4 {
				return nil, ErrTruncated
			}
			if d.remaining() > 4 {
				return nil, &FormatError{Offset: d.off + 4, Msg: "trailing data after footer"}
			}
			want := binary.LittleEndian.Uint32(data[d.off:])
			if got := crc32.ChecksumIEEE(data[:tagOff+1]); got != want {
				return nil, &FormatError{Offset: d.off, Msg: fmt.Sprintf("crc mismatch (file %08x, computed %08x)", want, got)}
			}
			break
		}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.remaining()) {
			return nil, ErrTruncated
		}
		payload := data[d.off : d.off+int(n)]
		d.off += int(n)
		if tag <= tagRecords {
			if seen[tag] {
				return nil, &FormatError{Offset: tagOff, Msg: fmt.Sprintf("duplicate section tag %d", tag)}
			}
			seen[tag] = true
		}
		switch tag {
		case tagMeta:
			if err := json.Unmarshal(payload, &t.Meta); err != nil {
				return nil, &FormatError{Offset: tagOff, Msg: "meta section: " + err.Error()}
			}
		case tagProgram:
			t.progText = string(payload)
		case tagLaunch:
			if err := json.Unmarshal(payload, &t.launch); err != nil {
				return nil, &FormatError{Offset: tagOff, Msg: "launch section: " + err.Error()}
			}
		case tagMemory:
			if err := t.parseMemory(payload, tagOff); err != nil {
				return nil, err
			}
		case tagRecords:
			p := &decoder{data: payload}
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			// Every record occupies at least 8 bytes, so a count claiming
			// more records than payload bytes is structurally impossible —
			// reject it here rather than letting Records() size a slice
			// from it.
			if count > uint64(p.remaining()) {
				return nil, &FormatError{Offset: tagOff, Msg: fmt.Sprintf("record count %d exceeds payload size %d", count, p.remaining())}
			}
			t.recCount = int(count)
			t.recData = payload[p.off:]
		default:
			// Unknown section from a newer writer: skip (forward compat).
		}
	}

	for _, tag := range []uint8{tagProgram, tagLaunch, tagMemory} {
		if !seen[tag] {
			return nil, &FormatError{Offset: -1, Msg: fmt.Sprintf("missing required section tag %d", tag)}
		}
	}

	sum := sha256.Sum256(data)
	t.Hash = hex.EncodeToString(sum[:])
	return t, nil
}

func (t *Trace) parseMemory(payload []byte, tagOff int) error {
	d := &decoder{data: payload}
	next, err := d.uvarint()
	if err != nil {
		return err
	}
	npages, err := d.uvarint()
	if err != nil {
		return err
	}
	// A page entry is at least two varint bytes, so bound the slice size
	// by the payload before allocating.
	if npages > uint64(d.remaining()) {
		return &FormatError{Offset: tagOff, Msg: fmt.Sprintf("page count %d exceeds payload size %d", npages, d.remaining())}
	}
	t.memNext = uint32(next)
	t.memPages = make([]kernel.MemPage, 0, npages)
	for i := uint64(0); i < npages; i++ {
		id, err := d.uvarint()
		if err != nil {
			return err
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(d.remaining()) {
			return ErrTruncated
		}
		t.memPages = append(t.memPages, kernel.MemPage{ID: uint32(id), Data: d.data[d.off : d.off+int(n)]})
		d.off += int(n)
	}
	return nil
}

// Program assembles the trace's kernel. The result is built once and shared
// across callers: asm.Assemble pre-builds the per-PC metadata cache, so the
// shared Program is safe for concurrent replays.
func (t *Trace) Program() (*kernel.Program, error) {
	t.progOnce.Do(func() {
		p, err := asm.Assemble(t.progText)
		if err != nil {
			t.progErr = &FormatError{Offset: -1, Msg: "program section does not assemble: " + err.Error()}
			return
		}
		t.prog = p
	})
	return t.prog, t.progErr
}

// ProgramText returns the trace's kernel as .gasm source.
func (t *Trace) ProgramText() string { return t.progText }

// Launch returns a fresh copy of the captured launch configuration.
func (t *Trace) Launch() *kernel.LaunchConfig {
	lc := t.launch
	return &lc
}

// NewMemory materialises a fresh copy of the captured initial memory image.
// Each call returns an independent Memory, so concurrent replays never
// share mutable state.
func (t *Trace) NewMemory() *kernel.Memory {
	return kernel.NewMemoryFromSnapshot(t.memNext, t.memPages)
}

// NumRecords returns the number of dynamic instruction records without
// decoding them.
func (t *Trace) NumRecords() int { return t.recCount }

// Records decodes the dynamic instruction stream. The stream is the
// analysis payload — replay does not consume it — so it is decoded lazily,
// only when asked for.
func (t *Trace) Records() ([]Record, error) {
	d := &decoder{data: t.recData}
	recs := make([]Record, 0, t.recCount)
	for i := 0; i < t.recCount; i++ {
		r, err := decodeRecord(d)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	if d.remaining() != 0 {
		return nil, &FormatError{Offset: d.off, Msg: "trailing bytes after last record"}
	}
	return recs, nil
}

func decodeRecord(d *decoder) (Record, error) {
	var r Record
	sm, err := d.uvarint()
	if err != nil {
		return r, err
	}
	wid, err := d.uvarint()
	if err != nil {
		return r, err
	}
	pc, err := d.uvarint()
	if err != nil {
		return r, err
	}
	op, err := d.u8()
	if err != nil {
		return r, err
	}
	flags, err := d.u8()
	if err != nil {
		return r, err
	}
	issued, err := d.uvarint()
	if err != nil {
		return r, err
	}
	active, err := d.uvarint()
	if err != nil {
		return r, err
	}
	r.SM, r.Warp, r.PC, r.Op = int(sm), int(wid), int(pc), op
	r.Issued, r.Active = issued, active
	r.IsMem = flags&flagMem != 0
	r.IsGlobal = flags&flagGlobal != 0
	r.IsStore = flags&flagStore != 0
	r.Divergent = flags&flagDivergent != 0
	r.Exited = flags&flagExited != 0
	r.AtBarrier = flags&flagBarrier != 0
	r.TookBranch = flags&flagTookBranch != 0
	r.BranchDiverged = flags&flagBranchDiverged != 0

	dst, err := d.uvarint()
	if err != nil {
		return r, err
	}
	r.DstReg = int(dst) - 1
	if dst != 0 {
		cls, err := d.u8()
		if err != nil {
			return r, err
		}
		if cls > 4 {
			return r, &FormatError{Offset: d.off - 1, Msg: fmt.Sprintf("value-class tag %d out of range", cls)}
		}
		r.SharedMSBBytes = cls
	}

	if r.IsMem {
		n := bits.OnesCount64(active)
		if n > 0 {
			r.Addrs = make([]uint32, n)
			first, err := d.uvarint()
			if err != nil {
				return r, err
			}
			r.Addrs[0] = uint32(first)
			prev := int64(uint32(first))
			for i := 1; i < n; i++ {
				delta, err := d.varint()
				if err != nil {
					return r, err
				}
				prev += delta
				r.Addrs[i] = uint32(prev)
			}
		}
	}
	return r, nil
}

// decoder is a bounds-checked cursor over trace bytes.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) u8() (uint8, error) {
	if d.off >= len(d.data) {
		return 0, ErrTruncated
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, &FormatError{Offset: d.off, Msg: "varint overflows 64 bits"}
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, &FormatError{Offset: d.off, Msg: "varint overflows 64 bits"}
	}
	d.off += n
	return v, nil
}

func encodeMetaJSON(m Meta) ([]byte, error)                    { return json.Marshal(m) }
func encodeLaunchJSON(lc *kernel.LaunchConfig) ([]byte, error) { return json.Marshal(lc) }
