// Package trace defines the versioned instruction-trace format that powers
// the capture/replay workload frontend (Accel-Sim style trace-driven
// execution, ROADMAP "Scenario diversity").
//
// A trace file is self-describing: it carries the complete simulation input
// — the kernel program (as .gasm disassembly text, which reassembles
// bit-exactly), the launch configuration, and the initial global-memory
// image — plus the dynamic instruction stream observed at the warp-execute
// boundary. Replay therefore reconstructs a workloads.Instance and drives
// the *unmodified* SM pipeline, so a replayed run is byte-identical to the
// live run it was captured from, under any architecture and any chip loop.
// The record stream is the analysis payload (opcode class, per-lane active
// masks, destination value-class tags, memory addresses — enough to drive
// scalar detection, BDI compression and memory-model studies offline); it is
// not needed to re-execute.
//
// # Binary format (version 1)
//
//	magic   "GSTR"                      4 bytes
//	version 0x01                        1 byte
//	section*                            tagged, length-prefixed
//	footer  tag 0x00 + CRC32            5 bytes, must be last
//
// Each section is {tag uint8, length uvarint, payload [length]byte}. A
// decoder skips sections with tags it does not know, so future versions can
// add sections without breaking old readers; bumping the version byte is
// reserved for changes old readers would silently misread. Defined tags:
//
//	1  meta     JSON-encoded Meta (no timestamps: capturing the same run
//	            twice yields identical bytes, so traces are content-addressable)
//	2  program  .gasm disassembly text (asm.Disassemble; reassembles bit-exact)
//	3  launch   JSON-encoded kernel.LaunchConfig
//	4  memory   initial global-memory snapshot:
//	            uvarint next-alloc cursor, uvarint page count, then per page
//	            uvarint page id + uvarint byte count + raw bytes
//	            (trailing zeros trimmed; absent pages read as zero)
//	5  records  uvarint record count, then records back to back (see below)
//
// The footer is a literal 0x00 tag followed by the little-endian CRC32
// (IEEE) of every preceding byte (magic through the 0x00 tag inclusive). A
// file that ends before the footer — the only state an interrupted write
// could leave, and store.AtomicWrite prevents even that — fails decoding
// with ErrTruncated; a corrupted file fails the CRC with *FormatError.
//
// # Record encoding
//
// One record per executed warp-instruction, in commit order:
//
//	uvarint sm, uvarint warp, uvarint pc
//	uint8   opcode (isa.Opcode)
//	uint8   flags: 1 mem | 2 global | 4 store | 8 divergent | 16 exited |
//	               32 barrier | 64 took-branch | 128 branch-diverged
//	uvarint issued mask, uvarint active mask
//	uvarint dst+1 (0 = no register writeback)
//	uint8   shared-MSB-bytes value-class tag (0..4), present iff dst+1 != 0
//	uvarint first byte address, then zigzag-varint deltas — one address per
//	        set bit of the active mask, present iff the mem flag is set
package trace

import (
	"errors"
	"fmt"
)

// Format constants.
const (
	Magic   = "GSTR"
	Version = 1
)

// Section tags.
const (
	tagFooter  = 0
	tagMeta    = 1
	tagProgram = 2
	tagLaunch  = 3
	tagMemory  = 4
	tagRecords = 5
)

// Record flag bits.
const (
	flagMem            = 1 << 0
	flagGlobal         = 1 << 1
	flagStore          = 1 << 2
	flagDivergent      = 1 << 3
	flagExited         = 1 << 4
	flagBarrier        = 1 << 5
	flagTookBranch     = 1 << 6
	flagBranchDiverged = 1 << 7
)

// Meta describes where a trace came from. It deliberately carries no
// timestamps or host identifiers: capturing the same run twice must produce
// identical bytes so the content hash can serve as a cache key.
type Meta struct {
	// Workload is the builtin abbreviation the capture ran (e.g. "HS"), or
	// whatever label the capturing session chose for a custom program.
	Workload string `json:"workload,omitempty"`
	// Arch is the architecture model the capture ran under. Replay is free
	// to pick a different one — the trace carries the simulation input, and
	// the input is architecture-independent.
	Arch string `json:"arch,omitempty"`
	// Scale is the workload scale the capture was built at.
	Scale int `json:"scale,omitempty"`
	// ConfigHash is the canonical hash of the capturing run's Config.
	ConfigHash string `json:"config_hash,omitempty"`
	// WarpSize is the warp width of the capturing run; masks and address
	// vectors in the record stream are per-lane over this width.
	WarpSize int `json:"warp_size"`
}

// Record is one decoded warp-instruction execution.
type Record struct {
	SM   int
	Warp int
	PC   int
	Op   uint8 // isa.Opcode value

	Issued uint64 // lanes live at the stack top when fetched (pre-guard)
	Active uint64 // lanes that executed (guard applied)

	// DstReg is the written register, -1 if the instruction wrote none.
	DstReg int
	// SharedMSBBytes is the destination value-class tag: how many leading
	// bytes all active lanes' written values share (0..4; 4 = fully
	// uniform). Valid only when DstReg >= 0.
	SharedMSBBytes uint8

	IsMem    bool
	IsGlobal bool
	IsStore  bool
	// Addrs holds one byte address per set bit of Active (ascending lane
	// order) when IsMem; nil otherwise.
	Addrs []uint32

	Divergent      bool
	Exited         bool
	AtBarrier      bool
	TookBranch     bool
	BranchDiverged bool
}

// ErrTruncated reports a trace that ends mid-structure — the input ran out
// before the footer, as a partially transferred or hand-truncated file
// would.
var ErrTruncated = errors.New("trace: truncated trace")

// VersionError reports a trace written by an incompatible format version.
type VersionError struct {
	Got int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("trace: unsupported format version %d (this reader handles version %d)", e.Got, Version)
}

// FormatError reports structurally invalid trace bytes: bad magic, a CRC
// mismatch, malformed varints, or section payloads that fail to parse.
type FormatError struct {
	Offset int // byte offset of the problem, -1 if not byte-addressable
	Msg    string
}

func (e *FormatError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("trace: invalid trace at byte %d: %s", e.Offset, e.Msg)
	}
	return "trace: invalid trace: " + e.Msg
}
