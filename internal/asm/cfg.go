package asm

import (
	"sort"

	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// cfg is the control-flow graph of a program, with a virtual exit node.
type cfg struct {
	blockStart []int   // block -> first PC
	blockEnd   []int   // block -> one past last PC
	blockOf    []int   // PC -> block
	succs      [][]int // block -> successor blocks; exitNode has none
	exitNode   int     // virtual exit block id (== len(blockStart))
}

// buildCFG partitions the program into basic blocks and records edges.
func buildCFG(p *kernel.Program) *cfg {
	n := p.Len()
	leader := make([]bool, n)
	leader[0] = true
	for pc := range p.Code {
		in := &p.Code[pc]
		switch in.Op {
		case isa.OpBra:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpExit:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}

	c := &cfg{blockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			if len(c.blockStart) > 0 {
				c.blockEnd = append(c.blockEnd, pc)
			}
			c.blockStart = append(c.blockStart, pc)
		}
		c.blockOf[pc] = len(c.blockStart) - 1
	}
	c.blockEnd = append(c.blockEnd, n)
	nb := len(c.blockStart)
	c.exitNode = nb
	c.succs = make([][]int, nb)

	addSucc := func(b, s int) {
		for _, x := range c.succs[b] {
			if x == s {
				return
			}
		}
		c.succs[b] = append(c.succs[b], s)
	}

	for b := 0; b < nb; b++ {
		lastPC := c.blockEnd[b] - 1
		in := &p.Code[lastPC]
		switch in.Op {
		case isa.OpBra:
			addSucc(b, c.blockOf[in.Target])
			if in.Guard.On && lastPC+1 < n {
				addSucc(b, c.blockOf[lastPC+1])
			}
		case isa.OpExit:
			if in.Guard.On && lastPC+1 < n {
				// A guarded exit falls through for lanes that don't exit.
				addSucc(b, c.blockOf[lastPC+1])
			}
			addSucc(b, c.exitNode)
		default:
			if lastPC+1 < n {
				addSucc(b, c.blockOf[lastPC+1])
			} else {
				addSucc(b, c.exitNode)
			}
		}
		// A guarded exit in the middle of a block also reaches the virtual
		// exit; mid-block guarded exits don't end a block only if they were
		// not marked leaders. We made every exit end its block above, so
		// only the block-terminating case needs edges.
	}
	return c
}

// postDominators computes, for each block, the set of blocks that
// post-dominate it (including itself), using the iterative dataflow
// formulation over the reverse CFG. The virtual exit node post-dominates
// everything.
func (c *cfg) postDominators() []bitset {
	nb := len(c.blockStart)
	total := nb + 1 // + virtual exit
	pdom := make([]bitset, total)
	full := newBitset(total)
	for i := 0; i < total; i++ {
		full.set(i)
	}
	for b := 0; b < nb; b++ {
		pdom[b] = full.clone()
	}
	pdom[c.exitNode] = newBitset(total)
	pdom[c.exitNode].set(c.exitNode)

	changed := true
	for changed {
		changed = false
		// Iterate blocks in reverse order: post-dominance information flows
		// backwards, so reverse order converges quickly.
		for b := nb - 1; b >= 0; b-- {
			meet := full.clone()
			if len(c.succs[b]) == 0 {
				// Unreachable-from-exit block (e.g. infinite loop); treat as
				// post-dominated only by itself.
				meet = newBitset(total)
			}
			for i, s := range c.succs[b] {
				if i == 0 {
					meet = pdom[s].clone()
				} else {
					meet.intersect(pdom[s])
				}
			}
			meet.set(b)
			if !meet.equal(pdom[b]) {
				pdom[b] = meet
				changed = true
			}
		}
	}
	return pdom
}

// assignRPCs computes each branch's reconvergence PC: the first instruction
// of the immediate post-dominator block of the branch's block. Branches
// whose immediate post-dominator is the virtual exit get RPC = -1 (the
// diverged paths never reconverge; all lanes eventually exit).
func assignRPCs(p *kernel.Program) error {
	c := buildCFG(p)
	pdom := c.postDominators()
	nb := len(c.blockStart)

	ipdom := make([]int, nb)
	for b := 0; b < nb; b++ {
		ipdom[b] = c.exitNode
		// Candidates: post-dominators of b other than b itself. The
		// immediate post-dominator is the candidate that is post-dominated
		// by every other candidate (the "closest" one).
		var cands []int
		for q := 0; q <= nb; q++ {
			if q != b && pdom[b].has(q) {
				cands = append(cands, q)
			}
		}
		sort.Ints(cands)
		for _, cand := range cands {
			closest := true
			for _, other := range cands {
				if other != cand && !pdom[cand].has(other) {
					closest = false
					break
				}
			}
			if closest {
				ipdom[b] = cand
				break
			}
		}
	}

	for pc := range p.Code {
		in := &p.Code[pc]
		if in.Op != isa.OpBra {
			continue
		}
		b := c.blockOf[pc]
		if ipdom[b] == c.exitNode {
			in.RPC = -1
		} else {
			in.RPC = c.blockStart[ipdom[b]]
		}
	}
	return nil
}

// bitset is a simple fixed-capacity bit set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
