package asm

import (
	"testing"

	"gscalar/internal/isa"
)

func TestAnalyzeUniformity(t *testing.T) {
	p, err := Assemble(`
	mov r1, $0            // uniform: param
	mov r2, %tid.x        // non-uniform: per-lane special
	iadd r3, r1, 5        // uniform chain
	iadd r4, r2, r1       // tainted by r2
	ldg r5, [r3]          // loads never uniform
	iadd r6, r5, 1        // tainted by load
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	wantReg := map[uint8]bool{1: true, 2: false, 3: true, 4: false, 5: false, 6: false}
	for r, w := range wantReg {
		if a.UniformReg[r] != w {
			t.Errorf("UniformReg[%d] = %v, want %v", r, a.UniformReg[r], w)
		}
	}
	wantInst := []bool{true, false, true, false, true, false, false}
	// pc 4 (the load): the *access* is uniform (scalar address) even though
	// its result is not.
	for pc, w := range wantInst {
		if a.UniformInst[pc] != w {
			t.Errorf("UniformInst[%d] = %v, want %v (%v)", pc, a.UniformInst[pc], w, p.At(pc))
		}
	}
}

func TestAnalyzeDivergentRegions(t *testing.T) {
	p, err := Assemble(`
	mov r1, %tid.x
	isetp.lt p0, r1, 8     // non-uniform predicate
	@p0 bra A
	iadd r2, r2, 1         // divergent (else side)
	bra J
A:
	iadd r2, r2, 2         // divergent (then side)
J:
	iadd r3, r3, 1         // reconverged
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if !a.Divergent[3] || !a.Divergent[5] {
		t.Error("branch sides not marked divergent")
	}
	if a.Divergent[6] || a.Divergent[0] {
		t.Error("convergent code marked divergent")
	}
	// Uniform-predicate branches do not diverge.
	p2, err := Assemble(`
	mov r1, $0
	isetp.lt p0, r1, 8     // uniform predicate
	@p0 bra A
	iadd r2, r2, 1
	bra J
A:
	iadd r2, r2, 2
J:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	a2 := Analyze(p2)
	for pc := range a2.Divergent {
		if a2.Divergent[pc] {
			t.Errorf("uniform branch produced divergence at pc %d", pc)
		}
	}
}

func deadAt(t *testing.T, src string, pc int) bool {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return DeadOnWrite(p)[pc]
}

func TestDeadOnWriteTemporary(t *testing.T) {
	// r5 is a temporary used only inside the divergent block: its stale
	// bytes are never observable, the move can be elided.
	src := `
	mov r1, %tid.x
	mov r5, 7              // compressed scalar write
	isetp.lt p0, r1, 8
	@p0 bra SKIP
	mov r5, 3              // pc 4: divergent write of a dead-after value
	imul r6, r5, 2         // read inside the same region: mask subset
	iadd r7, r7, r6
SKIP:
	iadd r8, r7, 1
	exit
`
	if !deadAt(t, src, 4) {
		t.Error("in-region temporary not recognised as dead")
	}
}

func TestDeadOnWriteFig7b(t *testing.T) {
	// The paper's Figure 7(b) shape: r2 written on one divergent path and
	// read on the OTHER path — masks are complementary, the stale bytes ARE
	// observable. Elision must be refused.
	src := `
	mov r1, %tid.x
	mov r2, 5
	isetp.eq p0, r1, r2
	@p0 bra THEN
	iabs r3, r2            // pc 4: other-path read of r2
	bra J
THEN:
	imul r2, r2, 2         // pc 6: divergent write of r2
	iadd r4, r2, 1
J:
	exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dead := DeadOnWrite(p)
	// Find the imul r2 write.
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(pc)
		if in.Op == isa.OpIMul {
			if dead[pc] {
				t.Fatal("Figure 7(b) cross-path write wrongly elided")
			}
			return
		}
	}
	t.Fatal("imul not found")
}

func TestDeadOnWriteReadAfterReconvergence(t *testing.T) {
	// r5 read after the reconvergence point: the full mask observes the
	// stale lanes.
	src := `
	mov r1, %tid.x
	mov r5, 7
	isetp.lt p0, r1, 8
	@p0 bra SKIP
	mov r5, 3              // pc 4: divergent write
SKIP:
	iadd r6, r5, 1         // convergent read: observes stale lanes
	exit
`
	if deadAt(t, src, 4) {
		t.Error("post-reconvergence read wrongly treated as dead")
	}
}

func TestDeadOnWriteGuardedWrite(t *testing.T) {
	// A guarded write followed by an unguarded read in the same block: the
	// read's mask is wider than the write's — not dead.
	src := `
	mov r1, %tid.x
	isetp.lt p0, r1, 8
	mov r5, 7
	@p0 mov r5, 3          // pc 3: guarded (partial) write
	iadd r6, r5, 1         // full-mask read
	exit
`
	if deadAt(t, src, 3) {
		t.Error("guarded write with wider read wrongly treated as dead")
	}
}

func TestDeadOnWriteLoopTemporary(t *testing.T) {
	// A divergent-region temporary inside a loop: reads only in the same
	// region each iteration — elidable every time.
	src := `
	mov r1, %tid.x
	mov r9, 0
LOOP:
	isetp.lt p0, r1, 8
	@p0 bra SKIP
	mov r5, 3              // pc 4: divergent write, read only below
	imul r6, r5, 2
	iadd r9, r9, r6
SKIP:
	iadd r1, r1, 1
	isetp.lt p1, r1, 20
	@p1 bra LOOP
	exit
`
	if !deadAt(t, src, 4) {
		t.Error("loop-local divergent temporary not recognised as dead")
	}
}

func TestDominators(t *testing.T) {
	p, err := Assemble(`
	mov r1, %tid.x
	isetp.lt p0, r1, 8
	@p0 bra A
	iadd r2, r2, 1
	bra J
A:
	iadd r2, r2, 2
J:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCFG(p)
	dom := c.dominators()
	entry := c.blockOf[0]
	for b := 0; b < len(c.blockStart); b++ {
		if !dom[b].has(entry) {
			t.Errorf("entry does not dominate block %d", b)
		}
		if !dom[b].has(b) {
			t.Errorf("block %d does not dominate itself", b)
		}
	}
	// Neither branch side dominates the join.
	join := c.blockOf[p.Labels["J"]]
	then := c.blockOf[p.Labels["A"]]
	if dom[join].has(then) {
		t.Error("then-side wrongly dominates the join")
	}
}
