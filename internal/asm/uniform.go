package asm

import (
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// StaticAnalysis holds the results of the compile-time uniformity and
// divergence analysis over a program. It powers two consumers:
//
//   - the §6 comparison against compiler-assisted scalarization (Lee et
//     al., CGO'13): UniformInst marks instructions a compiler could prove
//     warp-uniform;
//   - the §3.3 compiler-assisted move elision: Divergent marks regions
//     where writes may be partial, which makes register defs non-killing
//     for liveness purposes.
type StaticAnalysis struct {
	// Divergent[pc]: the instruction may execute with a partial warp
	// (conservative over-approximation).
	Divergent []bool
	// UniformInst[pc]: every source of the instruction is provably
	// warp-uniform at compile time and the instruction is convergent.
	UniformInst []bool
	// UniformReg / UniformPred: whole-program uniformity per register
	// (a register is uniform only if every definition is).
	UniformReg  [isa.NumGPRs]bool
	UniformPred [isa.NumPreds]bool
}

// Analyze runs the path-insensitive fixed-point uniformity/divergence
// analysis. A register is uniform only if ALL its static definitions have
// uniform sources and occur in convergent code; any block between a branch
// guarded by a non-uniform predicate and its reconvergence point is
// divergent; loads are never compile-time uniform (the paper's key §6
// observation: value similarity from loaded data is invisible statically).
func Analyze(p *kernel.Program) *StaticAnalysis {
	n := p.Len()
	a := &StaticAnalysis{
		Divergent:   make([]bool, n),
		UniformInst: make([]bool, n),
	}
	for i := range a.UniformReg {
		a.UniformReg[i] = true
	}
	for i := range a.UniformPred {
		a.UniformPred[i] = true
	}

	srcUniform := func(o isa.Operand) bool {
		switch o.Kind {
		case isa.OpdImm, isa.OpdParam:
			return true
		case isa.OpdSpecial:
			return o.IsUniform()
		case isa.OpdReg:
			return a.UniformReg[o.Reg]
		case isa.OpdPred:
			return a.UniformPred[o.Reg]
		}
		return true
	}

	for iter := 0; iter < n+2; iter++ {
		changed := false

		// Divergent regions from non-uniformly-guarded branches/exits.
		newDiv := make([]bool, n)
		for pc := 0; pc < n; pc++ {
			in := p.At(pc)
			guardNonUniform := in.Guard.On && !a.UniformPred[in.Guard.Reg]
			if !guardNonUniform {
				continue
			}
			switch in.Op {
			case isa.OpBra:
				end := in.RPC
				if end < 0 || end < pc {
					end = n // loop or never-reconverging: rest of program
				}
				start := pc
				if in.Target < start {
					start = in.Target
				}
				for i := start; i < end && i < n; i++ {
					newDiv[i] = true
				}
			case isa.OpExit:
				for i := pc; i < n; i++ {
					newDiv[i] = true
				}
			}
		}
		for i := range a.Divergent {
			if a.Divergent[i] != newDiv[i] {
				a.Divergent[i] = newDiv[i]
				changed = true
			}
		}

		// Demote registers/predicates with non-uniform or divergent defs.
		for pc := 0; pc < n; pc++ {
			in := p.At(pc)
			defUniform := !a.Divergent[pc] && !in.IsLoad()
			if defUniform {
				for i := uint8(0); i < in.NSrc; i++ {
					if !srcUniform(in.Srcs[i]) {
						defUniform = false
						break
					}
				}
			}
			if defUniform {
				continue
			}
			if r, ok := in.WritesReg(); ok && a.UniformReg[r] {
				a.UniformReg[r] = false
				changed = true
			}
			if pr, ok := in.WritesPred(); ok && a.UniformPred[pr] {
				a.UniformPred[pr] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		if a.Divergent[pc] || in.Class() == isa.ClassCtrl || in.Op == isa.OpNop {
			continue
		}
		if _, writes := in.WritesReg(); !writes {
			if _, wp := in.WritesPred(); !wp && !in.IsStore() {
				continue
			}
		}
		ok := true
		for i := uint8(0); i < in.NSrc; i++ {
			if !srcUniform(in.Srcs[i]) {
				ok = false
				break
			}
		}
		a.UniformInst[pc] = ok
	}
	return a
}
