package asm

import (
	"math"
	"strings"
	"testing"

	"gscalar/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
.kernel demo
	mov r1, %tid.x
	iadd r2, r1, 5
	isetp.lt p0, r2, $0
	@p0 bra END
	fmul r3, r2, 1.5
END:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q, want demo", p.Name)
	}
	if p.Len() != 6 {
		t.Fatalf("len = %d, want 6", p.Len())
	}
	in := p.At(0)
	if in.Op != isa.OpMov || in.Srcs[0].Kind != isa.OpdSpecial || in.Srcs[0].Special != isa.SpecTidX {
		t.Errorf("inst 0 = %v", in)
	}
	in = p.At(1)
	if in.Op != isa.OpIAdd || in.Srcs[1].Imm != 5 {
		t.Errorf("inst 1 = %v", in)
	}
	in = p.At(2)
	if in.Op != isa.OpISetP || in.Cmp != isa.CmpLT || in.Dst.Kind != isa.OpdPred {
		t.Errorf("inst 2 = %v", in)
	}
	in = p.At(3)
	if !in.Guard.On || in.Guard.Reg != 0 || in.Guard.Neg {
		t.Errorf("inst 3 guard = %v", in.Guard)
	}
	if in.Target != 5 {
		t.Errorf("branch target = %d, want 5", in.Target)
	}
	in = p.At(4)
	if in.Op != isa.OpFMul || in.Srcs[1].Imm != math.Float32bits(1.5) {
		t.Errorf("float imm = %#x", in.Srcs[1].Imm)
	}
	if p.NumRegs != 4 {
		t.Errorf("NumRegs = %d, want 4", p.NumRegs)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	p, err := Assemble(`
	ldg r1, [r2+8]
	ldg r3, [r4-4]
	stg [r5], r6
	lds r7, [r8+1024]
	sts [r9-12], r10
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   isa.Opcode
		off  int32
		addr uint8
	}{
		{isa.OpLdGlobal, 8, 2},
		{isa.OpLdGlobal, -4, 4},
		{isa.OpStGlobal, 0, 5},
		{isa.OpLdShared, 1024, 8},
		{isa.OpStShared, -12, 9},
	}
	for i, c := range cases {
		in := p.At(i)
		if in.Op != c.op || in.Off != c.off || in.Srcs[0].Reg != c.addr {
			t.Errorf("inst %d = %v (off %d)", i, in, in.Off)
		}
	}
}

func TestAssembleNegativeAndHexImmediates(t *testing.T) {
	p, err := Assemble(`
	mov r1, -1
	mov r2, 0xdeadbeef
	mov r3, -2.5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).Srcs[0].Imm != 0xFFFFFFFF {
		t.Errorf("-1 = %#x", p.At(0).Srcs[0].Imm)
	}
	if p.At(1).Srcs[0].Imm != 0xdeadbeef {
		t.Errorf("hex = %#x", p.At(1).Srcs[0].Imm)
	}
	if p.At(2).Srcs[0].Imm != math.Float32bits(-2.5) {
		t.Errorf("-2.5 = %#x", p.At(2).Srcs[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty program"},
		{"unknown mnemonic", "frob r1, r2\nexit", "unknown mnemonic"},
		{"undefined label", "bra NOWHERE\nexit", "undefined label"},
		{"duplicate label", "A:\nexit\nA:\nexit", "duplicate label"},
		{"reg out of range", "mov r64, 1\nexit", "out of range"},
		{"pred out of range", "isetp.lt p9, r1, r2\nexit", "out of range"},
		{"bad param", "mov r1, $16\nexit", "bad parameter"},
		{"bad special", "mov r1, %frob\nexit", "unknown special"},
		{"missing cc", "isetp p0, r1, r2\nexit", "condition suffix"},
		{"cc on wrong op", "iadd.lt r1, r2, r3\nexit", "only valid on"},
		{"fallthrough", "mov r1, 2", "fall off the end"},
		{"guarded tail", "mov r1, 1\n@p0 exit", "fall off the end"},
		{"operand count", "iadd r1, r2\nexit", "requires 3 operands"},
		{"pred as value", "iadd r1, p0, r2\nexit", "not valid as a value"},
		{"selp needs pred", "selp r1, r2, r3, r4\nexit", "third operand must be a predicate"},
		{"setp dest", "isetp.lt r1, r2, r3\nexit", "must be a predicate"},
		{"bad mem operand", "ldg r1, r2\nexit", "must be bracketed"},
		{"store form", "stg r1, [r2]\nexit", "must be bracketed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble(`
// full-line comment
	mov r1, 1   // trailing
	mov r2, 2   # hash comment
	mov r3, 3   ; semicolon comment
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble(`
	mov r1, 0
L: iadd r1, r1, 1
	isetp.lt p0, r1, 3
	@p0 bra L
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(3).Target != 1 {
		t.Errorf("target = %d, want 1", p.At(3).Target)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.kernel round
	mov r1, %tid.x
	isetp.ge p0, r1, 16
	@p0 bra SKIP
	imul r2, r1, 3
	bra END
SKIP:
	iadd r2, r1, 100
END:
	stg [r2], r1
	exit
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, text)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("length changed: %d -> %d", p1.Len(), p2.Len())
	}
	for i := 0; i < p1.Len(); i++ {
		a, b := p1.At(i), p2.At(i)
		if a.Op != b.Op || a.Target != b.Target || a.RPC != b.RPC {
			t.Errorf("inst %d: %v vs %v", i, a, b)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("frob")
}
