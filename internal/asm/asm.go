// Package asm implements a two-pass assembler for the .gasm SIMT assembly
// language, including control-flow-graph construction and immediate
// post-dominator analysis, which assigns every branch its reconvergence PC
// (the PDOM reconvergence point used by the SIMT stack).
//
// Grammar (one instruction per line):
//
//	// comment, # comment, ; comment
//	.kernel NAME
//	LABEL:
//	[@pN | @!pN] mnemonic operands
//
// Operands: rN (vector register), pN (predicate), $N (kernel parameter),
// %tid.x etc. (special register), integer immediates (decimal, hex, negative)
// and float immediates (containing '.' or 'e', or with an 'f' suffix, stored
// as IEEE-754 bits). Memory operands are written [rN], [rN+imm] or [rN-imm].
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses src and returns a Program with resolved branch targets and
// reconvergence PCs.
func Assemble(src string) (*kernel.Program, error) {
	p := &kernel.Program{Name: "kernel", Labels: make(map[string]int)}

	type pendingBranch struct {
		pc    int
		label string
		line  int
	}
	var pending []pendingBranch

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1

		if strings.HasPrefix(line, ".kernel") {
			name := strings.TrimSpace(strings.TrimPrefix(line, ".kernel"))
			if name == "" {
				return nil, errf(ln, ".kernel requires a name")
			}
			p.Name = name
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t,[") {
				break
			}
			label := line[:colon]
			if !isIdent(label) {
				return nil, errf(ln, "invalid label %q", label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, errf(ln, "duplicate label %q", label)
			}
			p.Labels[label] = len(p.Code)
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		in, targetLabel, err := parseInstruction(line, ln)
		if err != nil {
			return nil, err
		}
		if targetLabel != "" {
			pending = append(pending, pendingBranch{pc: len(p.Code), label: targetLabel, line: ln})
		}
		p.Code = append(p.Code, in)
	}

	if len(p.Code) == 0 {
		return nil, errf(0, "empty program")
	}

	for _, pb := range pending {
		target, ok := p.Labels[pb.label]
		if !ok {
			return nil, errf(pb.line, "undefined label %q", pb.label)
		}
		if target >= len(p.Code) {
			return nil, errf(pb.line, "label %q points past end of program", pb.label)
		}
		p.Code[pb.pc].Target = target
	}

	if err := validate(p); err != nil {
		return nil, err
	}
	if err := assignRPCs(p); err != nil {
		return nil, err
	}
	p.NumRegs = maxRegUsed(p) + 1
	// Decode metadata once at assembly time, so simulations that share this
	// program across goroutines never build it concurrently.
	p.BuildMeta()
	return p, nil
}

// MustAssemble is Assemble but panics on error; intended for compiled-in
// workload sources, which are validated by tests.
func MustAssemble(src string) *kernel.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, marker := range []string{"//", "#", ";"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var mnemonics = map[string]isa.Opcode{
	"nop": isa.OpNop, "mov": isa.OpMov,
	"iadd": isa.OpIAdd, "isub": isa.OpISub, "imul": isa.OpIMul, "imad": isa.OpIMad,
	"idiv": isa.OpIDiv, "irem": isa.OpIRem, "imin": isa.OpIMin, "imax": isa.OpIMax,
	"iabs": isa.OpIAbs,
	"and":  isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor, "not": isa.OpNot,
	"shl": isa.OpShl, "shr": isa.OpShr, "sra": isa.OpSra,
	"isetp": isa.OpISetP, "selp": isa.OpSelP,
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul, "ffma": isa.OpFFma,
	"fdiv": isa.OpFDiv, "fmin": isa.OpFMin, "fmax": isa.OpFMax,
	"fabs": isa.OpFAbs, "fneg": isa.OpFNeg, "fsetp": isa.OpFSetP,
	"i2f": isa.OpI2F, "f2i": isa.OpF2I,
	"sin": isa.OpSin, "cos": isa.OpCos, "ex2": isa.OpEx2, "lg2": isa.OpLg2,
	"rsqrt": isa.OpRsqrt, "rcp": isa.OpRcp, "sqrt": isa.OpSqrt,
	"ldg": isa.OpLdGlobal, "stg": isa.OpStGlobal,
	"lds": isa.OpLdShared, "sts": isa.OpStShared,
	"bra": isa.OpBra, "exit": isa.OpExit, "bar": isa.OpBar,
}

var cmpByName = map[string]isa.CmpOp{
	"eq": isa.CmpEQ, "ne": isa.CmpNE, "lt": isa.CmpLT,
	"le": isa.CmpLE, "gt": isa.CmpGT, "ge": isa.CmpGE,
}

// srcCount gives the number of source operands per opcode (excluding the
// memory-specific encodings, handled separately).
var srcCount = map[isa.Opcode]int{
	isa.OpNop: 0, isa.OpMov: 1,
	isa.OpIAdd: 2, isa.OpISub: 2, isa.OpIMul: 2, isa.OpIMad: 3,
	isa.OpIDiv: 2, isa.OpIRem: 2, isa.OpIMin: 2, isa.OpIMax: 2, isa.OpIAbs: 1,
	isa.OpAnd: 2, isa.OpOr: 2, isa.OpXor: 2, isa.OpNot: 1,
	isa.OpShl: 2, isa.OpShr: 2, isa.OpSra: 2,
	isa.OpISetP: 2, isa.OpSelP: 3,
	isa.OpFAdd: 2, isa.OpFSub: 2, isa.OpFMul: 2, isa.OpFFma: 3,
	isa.OpFDiv: 2, isa.OpFMin: 2, isa.OpFMax: 2,
	isa.OpFAbs: 1, isa.OpFNeg: 1, isa.OpFSetP: 2,
	isa.OpI2F: 1, isa.OpF2I: 1,
	isa.OpSin: 1, isa.OpCos: 1, isa.OpEx2: 1, isa.OpLg2: 1,
	isa.OpRsqrt: 1, isa.OpRcp: 1, isa.OpSqrt: 1,
	isa.OpExit: 0, isa.OpBar: 0,
}

func parseInstruction(line string, ln int) (isa.Instruction, string, error) {
	in := isa.Instruction{Target: -1, RPC: -1, Line: ln}

	// Optional guard.
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return in, "", errf(ln, "guard with no instruction")
		}
		g := line[1:sp]
		line = strings.TrimSpace(line[sp:])
		neg := strings.HasPrefix(g, "!")
		g = strings.TrimPrefix(g, "!")
		if len(g) != 2 || g[0] != 'p' || g[1] < '0' || g[1] > '7' {
			return in, "", errf(ln, "invalid guard %q", g)
		}
		in.Guard = isa.Guard{On: true, Neg: neg, Reg: g[1] - '0'}
	}

	// Mnemonic (with optional .cc suffix for setp).
	sp := strings.IndexAny(line, " \t")
	mn := line
	rest := ""
	if sp >= 0 {
		mn = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	if dot := strings.Index(mn, "."); dot >= 0 {
		cc, ok := cmpByName[mn[dot+1:]]
		if !ok {
			return in, "", errf(ln, "unknown condition %q", mn[dot+1:])
		}
		in.Cmp = cc
		mn = mn[:dot]
		if mn != "isetp" && mn != "fsetp" {
			return in, "", errf(ln, "condition suffix only valid on isetp/fsetp")
		}
	}
	op, ok := mnemonics[mn]
	if !ok {
		return in, "", errf(ln, "unknown mnemonic %q", mn)
	}
	in.Op = op
	if (op == isa.OpISetP || op == isa.OpFSetP) && !strings.Contains(line, ".") {
		return in, "", errf(ln, "%s requires a condition suffix (e.g. %s.lt)", mn, mn)
	}

	switch op {
	case isa.OpBra:
		if rest == "" {
			return in, "", errf(ln, "bra requires a target label")
		}
		if !isIdent(rest) {
			return in, "", errf(ln, "invalid branch target %q", rest)
		}
		return in, rest, nil

	case isa.OpExit, isa.OpBar, isa.OpNop:
		if rest != "" {
			return in, "", errf(ln, "%s takes no operands", mn)
		}
		return in, "", nil

	case isa.OpLdGlobal, isa.OpLdShared:
		// ldg rd, [ra+imm]
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return in, "", errf(ln, "%s requires 'rd, [ra+imm]'", mn)
		}
		dst, err := parseOperand(parts[0], ln)
		if err != nil {
			return in, "", err
		}
		if dst.Kind != isa.OpdReg {
			return in, "", errf(ln, "load destination must be a register")
		}
		addr, off, err := parseMemOperand(parts[1], ln)
		if err != nil {
			return in, "", err
		}
		in.Dst = dst
		in.Srcs[0] = addr
		in.NSrc = 1
		in.Off = off
		return in, "", nil

	case isa.OpStGlobal, isa.OpStShared:
		// stg [ra+imm], rv
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return in, "", errf(ln, "%s requires '[ra+imm], rv'", mn)
		}
		addr, off, err := parseMemOperand(parts[0], ln)
		if err != nil {
			return in, "", err
		}
		val, err := parseOperand(parts[1], ln)
		if err != nil {
			return in, "", err
		}
		in.Srcs[0] = addr
		in.Srcs[1] = val
		in.NSrc = 2
		in.Off = off
		return in, "", nil
	}

	// Regular register-form instructions: dst, src...
	parts := splitOperands(rest)
	want, ok := srcCount[op]
	if !ok {
		return in, "", errf(ln, "internal: no operand count for %s", mn)
	}
	if len(parts) != want+1 {
		return in, "", errf(ln, "%s requires %d operands, got %d", mn, want+1, len(parts))
	}
	dst, err := parseOperand(parts[0], ln)
	if err != nil {
		return in, "", err
	}
	wantPredDst := op == isa.OpISetP || op == isa.OpFSetP
	if wantPredDst && dst.Kind != isa.OpdPred {
		return in, "", errf(ln, "%s destination must be a predicate", mn)
	}
	if !wantPredDst && dst.Kind != isa.OpdReg {
		return in, "", errf(ln, "%s destination must be a register", mn)
	}
	in.Dst = dst
	for i := 0; i < want; i++ {
		src, err := parseOperand(parts[i+1], ln)
		if err != nil {
			return in, "", err
		}
		// selp's third source is the selecting predicate; all other sources
		// must be values.
		if op == isa.OpSelP && i == 2 {
			if src.Kind != isa.OpdPred {
				return in, "", errf(ln, "selp's third operand must be a predicate")
			}
		} else if src.Kind == isa.OpdPred {
			return in, "", errf(ln, "predicate %s not valid as a value operand", parts[i+1])
		}
		in.Srcs[i] = src
	}
	in.NSrc = uint8(want)
	return in, "", nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseMemOperand(s string, ln int) (isa.Operand, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return isa.Operand{}, 0, errf(ln, "memory operand must be bracketed, got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	var off int32
	regPart := inner
	// Split on the last +/- that is not the leading sign.
	for i := len(inner) - 1; i > 0; i-- {
		if inner[i] == '+' || inner[i] == '-' {
			o, err := strconv.ParseInt(strings.TrimSpace(inner[i:]), 10, 32)
			if err != nil {
				return isa.Operand{}, 0, errf(ln, "bad address offset in %q", s)
			}
			off = int32(o)
			regPart = strings.TrimSpace(inner[:i])
			break
		}
	}
	reg, err := parseOperand(regPart, ln)
	if err != nil {
		return isa.Operand{}, 0, err
	}
	if reg.Kind != isa.OpdReg {
		return isa.Operand{}, 0, errf(ln, "address base must be a register, got %q", regPart)
	}
	return reg, off, nil
}

func parseOperand(s string, ln int) (isa.Operand, error) {
	if s == "" {
		return isa.Operand{}, errf(ln, "empty operand")
	}
	switch s[0] {
	case 'r':
		if n, err := strconv.Atoi(s[1:]); err == nil {
			if n < 0 || n >= isa.NumGPRs {
				return isa.Operand{}, errf(ln, "register %s out of range (0..%d)", s, isa.NumGPRs-1)
			}
			return isa.Reg(uint8(n)), nil
		}
	case 'p':
		if n, err := strconv.Atoi(s[1:]); err == nil {
			if n < 0 || n >= isa.NumPreds {
				return isa.Operand{}, errf(ln, "predicate %s out of range (0..%d)", s, isa.NumPreds-1)
			}
			return isa.Pred(uint8(n)), nil
		}
	case '$':
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= isa.NumParams {
			return isa.Operand{}, errf(ln, "bad parameter %q (want $0..$%d)", s, isa.NumParams-1)
		}
		return isa.Param(uint8(n)), nil
	case '%':
		sp, ok := isa.SpecialByName[s]
		if !ok {
			return isa.Operand{}, errf(ln, "unknown special register %q", s)
		}
		return isa.Spec(sp), nil
	}
	return parseImmediate(s, ln)
}

func parseImmediate(s string, ln int) (isa.Operand, error) {
	// Float immediate: has '.' or exponent, or trailing 'f'.
	isFloat := strings.ContainsAny(s, ".")
	if strings.HasSuffix(s, "f") && !strings.HasPrefix(s, "0x") {
		isFloat = true
		s = strings.TrimSuffix(s, "f")
	}
	if !isFloat && strings.ContainsAny(s, "eE") && !strings.HasPrefix(s, "0x") {
		isFloat = true
	}
	if isFloat {
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return isa.Operand{}, errf(ln, "bad float immediate %q", s)
		}
		return isa.Imm(math.Float32bits(float32(f))), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return isa.Operand{}, errf(ln, "bad operand %q", s)
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return isa.Operand{}, errf(ln, "immediate %q out of 32-bit range", s)
	}
	return isa.Imm(uint32(v)), nil
}

func maxRegUsed(p *kernel.Program) int {
	maxReg := -1
	consider := func(o isa.Operand) {
		if o.Kind == isa.OpdReg && int(o.Reg) > maxReg {
			maxReg = int(o.Reg)
		}
	}
	for i := range p.Code {
		in := &p.Code[i]
		consider(in.Dst)
		for s := uint8(0); s < in.NSrc; s++ {
			consider(in.Srcs[s])
		}
	}
	return maxReg
}

// validate enforces structural rules: the program must not fall off the end,
// and every unconditional path must terminate in exit.
func validate(p *kernel.Program) error {
	last := &p.Code[len(p.Code)-1]
	fallsThrough := !(last.Op == isa.OpExit && !last.Guard.On) &&
		!(last.Op == isa.OpBra && !last.Guard.On)
	if fallsThrough {
		return errf(last.Line, "program can fall off the end; it must end with an unguarded exit or bra")
	}
	return nil
}

// Disassemble renders the program as .gasm text with synthetic labels.
func Disassemble(p *kernel.Program) string {
	// Collect branch targets for labelling.
	targets := make(map[int]string)
	for i := range p.Code {
		if t := p.Code[i].Target; t >= 0 {
			if _, ok := targets[t]; !ok {
				targets[t] = fmt.Sprintf("L%d", t)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", p.Name)
	for pc := range p.Code {
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		in := &p.Code[pc]
		if in.Op == isa.OpBra {
			fmt.Fprintf(&b, "\t%sbra %s", in.Guard, targets[in.Target])
			if in.RPC >= 0 {
				fmt.Fprintf(&b, "\t// rpc=%d", in.RPC)
			}
			b.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&b, "\t%s\n", in.String())
	}
	return b.String()
}
