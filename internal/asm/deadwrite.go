package asm

import (
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// DeadOnWrite returns, per instruction, whether the instruction writes a
// vector register whose stale (inactive-lane) bytes can never be observed
// afterwards — the condition under which the §3.3 decompressing move can be
// elided by a compiler even though the write is divergent.
//
// A read q of register r observes the stale bytes of a divergent write W
// only if q may execute with lanes active that were inactive at W. Within
// the SIMT stack model masks only shrink along paths dominated by W until
// control reaches a reconvergence point of a branch *older than* W (such a
// reconvergence restores a mask at least as wide as W's). So q is *safe*
// (mask ⊆ W's mask) when:
//
//   - W's basic block dominates q's block, and
//   - no reconvergence point of a branch at or before W lies in (W, q].
//
// Any other read is conservatively treated as observing. The analysis then
// reports W dead iff no observing read of r is reachable from W without an
// intervening convergent (full) redefinition. This correctly refuses to
// elide the paper's Figure 7(b) pattern, where the other side of the same
// branch reads the register under a complementary mask.
func DeadOnWrite(p *kernel.Program) []bool {
	n := p.Len()
	c := buildCFG(p)
	dom := c.dominators()
	an := Analyze(p)

	// For each write W: limit = the first reconvergence point after W
	// belonging to a branch at or before W (an older reconvergence restores
	// a mask at least as wide as W's).
	limitAfter := func(pc int) int {
		limit := n
		for b := 0; b <= pc; b++ {
			in := p.At(b)
			if in.Op == isa.OpBra && in.RPC > pc && in.RPC < limit {
				limit = in.RPC
			}
		}
		return limit
	}

	dead := make([]bool, n)
	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		r, ok := in.WritesReg()
		if !ok {
			continue
		}
		limit := limitAfter(pc)
		if in.Guard.On {
			// A guarded write's active mask is narrowed by its predicate:
			// even same-region reads may see lanes the write skipped. No
			// safe zone.
			limit = pc
		}
		dead[pc] = !siblingReads(p, c, dom, an, pc, r, limit) &&
			!staleObservable(p, c, dom, pc, r, limit)
	}
	return dead
}

// siblingReads reports whether register r is read in a sibling divergent
// path of the write at wpc — i.e. inside the region of an enclosing branch
// but outside the write's safe zone. The SIMT stack executes sibling paths
// after the write even though no CFG path connects them (Figure 7(b)), so
// CFG reachability alone would miss these reads.
func siblingReads(p *kernel.Program, c *cfg, dom []bitset, an *StaticAnalysis, wpc int, r uint8, limit int) bool {
	n := p.Len()
	wblock := c.blockOf[wpc]
	for b := 0; b < wpc; b++ {
		br := p.At(b)
		if br.Op != isa.OpBra || !br.Guard.On {
			continue
		}
		end := br.RPC
		if end < 0 || end < b {
			end = n
		}
		if wpc <= b || wpc >= end {
			continue // not an enclosing region
		}
		start := b + 1
		if br.Target < start {
			start = br.Target
		}
		for q := start; q < end; q++ {
			if q < limit && dom[c.blockOf[q]].has(wblock) {
				continue // safe zone: mask subset of the write's
			}
			if readsReg(p.At(q), r) {
				return true
			}
		}
	}
	return false
}

func readsReg(in *isa.Instruction, r uint8) bool {
	for i := uint8(0); i < in.NSrc; i++ {
		if in.Srcs[i].Kind == isa.OpdReg && in.Srcs[i].Reg == r {
			return true
		}
	}
	return false
}

// flowSuccs returns the (up to two) successor PCs of pc for dataflow.
func flowSuccs(p *kernel.Program, pc int) (x, y int) {
	x, y = -1, -1
	n := p.Len()
	in := p.At(pc)
	switch in.Op {
	case isa.OpBra:
		x = in.Target
		if in.Guard.On && pc+1 < n {
			y = pc + 1
		}
	case isa.OpExit:
		if in.Guard.On && pc+1 < n {
			x = pc + 1
		}
	default:
		if pc+1 < n {
			x = pc + 1
		}
	}
	return x, y
}

// staleObservable walks the CFG forward from the write at wpc and reports
// whether an observing read of r is reachable. Reads in the safe zone
// (dominated by the write and before its limit — including re-executions
// of the dominated region in later loop iterations, which the write always
// precedes under its then-current mask) are skipped. A convergent
// unguarded redefinition fully kills the stale bytes and stops the path.
func staleObservable(p *kernel.Program, c *cfg, dom []bitset, wpc int, r uint8, limit int) bool {
	wblock := c.blockOf[wpc]
	an := Analyze(p)
	n := p.Len()
	visited := make([]bool, n)
	var stack []int
	push := func(q int) {
		if q >= 0 && q < n && !visited[q] {
			visited[q] = true
			stack = append(stack, q)
		}
	}
	x, y := flowSuccs(p, wpc)
	push(x)
	push(y)

	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := p.At(q)

		inSafeZone := q < limit && dom[c.blockOf[q]].has(wblock)
		if !inSafeZone {
			if readsReg(in, r) {
				return true
			}
			if wr, ok := in.WritesReg(); ok && wr == r && !in.Guard.On && !an.Divergent[q] {
				// Convergent full redefinition: the stale bytes are gone on
				// this path.
				continue
			}
		}
		qx, qy := flowSuccs(p, q)
		push(qx)
		push(qy)
	}
	return false
}

// dominators computes, per block, the set of blocks that dominate it
// (including itself), by iterative dataflow from the entry block.
func (c *cfg) dominators() []bitset {
	nb := len(c.blockStart)
	preds := make([][]int, nb)
	for b := 0; b < nb; b++ {
		for _, s := range c.succs[b] {
			if s < nb {
				preds[s] = append(preds[s], b)
			}
		}
	}
	full := newBitset(nb)
	for i := 0; i < nb; i++ {
		full.set(i)
	}
	dom := make([]bitset, nb)
	for b := range dom {
		dom[b] = full.clone()
	}
	entry := newBitset(nb)
	entry.set(0)
	dom[0] = entry

	changed := true
	for changed {
		changed = false
		for b := 1; b < nb; b++ {
			meet := full.clone()
			if len(preds[b]) == 0 {
				// Unreachable block: dominated by everything (vacuous).
				continue
			}
			for i, pr := range preds[b] {
				if i == 0 {
					meet = dom[pr].clone()
				} else {
					meet.intersect(dom[pr])
				}
			}
			meet.set(b)
			if !meet.equal(dom[b]) {
				dom[b] = meet
				changed = true
			}
		}
	}
	return dom
}
