package asm

import (
	"math/rand"
	"testing"
)

// FuzzAssemble: the assembler must never panic — arbitrary input either
// assembles or returns an error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"exit",
		".kernel k\nmov r1, %tid.x\nexit",
		"@p0 bra L\nL: exit",
		"ldg r1, [r2+4]\nexit",
		"isetp.lt p0, r1, r2\n@p0 exit\nexit",
		"mov r1, 1.5\nstg [r1-8], r2\nexit",
		"L: iadd r1, r1, 1\nbra L",
		"bogus nonsense @@@",
		"mov r999, $99",
		".kernel\n",
		"selp r1, r2, r3, p0\nexit",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Anything that assembles must survive the analyses and the
		// disassembler, and the disassembly must reassemble.
		_ = Analyze(p)
		_ = DeadOnWrite(p)
		text := Disassemble(p)
		if _, err := Assemble(text); err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
	})
}

// TestAnalysesNeverPanicOnRandomPrograms runs the static analyses over the
// random structured programs the postdominator property test uses.
func TestAnalysesNeverPanicOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		src := genRandomProgram(rng)
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		a := Analyze(p)
		dead := DeadOnWrite(p)
		if len(a.Divergent) != p.Len() || len(dead) != p.Len() {
			t.Fatalf("trial %d: result lengths wrong", trial)
		}
		// Sanity: an instruction can't be both provably uniform and in a
		// divergent region.
		for pc := range a.UniformInst {
			if a.UniformInst[pc] && a.Divergent[pc] {
				t.Fatalf("trial %d pc %d: uniform && divergent\n%s", trial, pc, src)
			}
		}
	}
}
