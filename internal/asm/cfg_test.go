package asm

import (
	"fmt"
	"math/rand"
	"testing"

	"gscalar/internal/isa"
	"gscalar/internal/kernel"
)

// rpcOf returns the reconvergence PC assigned to the first branch found at
// or after pc.
func rpcOf(t *testing.T, p *kernel.Program, pc int) int {
	t.Helper()
	for ; pc < p.Len(); pc++ {
		if p.At(pc).Op == isa.OpBra {
			return p.At(pc).RPC
		}
	}
	t.Fatalf("no branch at/after pc %d", pc)
	return -1
}

func TestRPCIfElse(t *testing.T) {
	p, err := Assemble(`
	isetp.lt p0, r1, r2
	@p0 bra THEN
	iadd r3, r3, 1
	bra JOIN
THEN:
	iadd r3, r3, 2
JOIN:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// The conditional branch reconverges at JOIN (pc 5).
	if got := p.At(1).RPC; got != 5 {
		t.Errorf("if/else RPC = %d, want 5", got)
	}
}

func TestRPCLoop(t *testing.T) {
	p, err := Assemble(`
	mov r1, 0
LOOP:
	iadd r1, r1, 1
	isetp.lt p0, r1, 10
	@p0 bra LOOP
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// The backward branch reconverges at the loop exit (pc 4).
	if got := p.At(3).RPC; got != 4 {
		t.Errorf("loop RPC = %d, want 4", got)
	}
}

func TestRPCNested(t *testing.T) {
	p, err := Assemble(`
	isetp.lt p0, r1, r2
	@p0 bra OUTER_ELSE
	isetp.lt p1, r3, r4
	@p1 bra INNER_ELSE
	iadd r5, r5, 1
	bra INNER_JOIN
INNER_ELSE:
	iadd r5, r5, 2
INNER_JOIN:
	bra OUTER_JOIN
OUTER_ELSE:
	iadd r5, r5, 3
OUTER_JOIN:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// Inner branch (pc 3) reconverges at INNER_JOIN (pc 7); outer branch
	// (pc 1) at OUTER_JOIN (pc 9).
	if got := p.At(3).RPC; got != 7 {
		t.Errorf("inner RPC = %d, want 7", got)
	}
	if got := p.At(1).RPC; got != 9 {
		t.Errorf("outer RPC = %d, want 9", got)
	}
}

func TestRPCBothSidesExit(t *testing.T) {
	p, err := Assemble(`
	isetp.lt p0, r1, r2
	@p0 bra B
	exit
B:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// The paths never reconverge: RPC must be -1.
	if got := p.At(1).RPC; got != -1 {
		t.Errorf("RPC = %d, want -1", got)
	}
}

func TestRPCGuardedExit(t *testing.T) {
	p, err := Assemble(`
	isetp.lt p0, r1, r2
	@p0 exit
	iadd r3, r3, 1
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// A guarded exit is not a branch; no RPC involved, but the program must
	// still assemble and build a CFG with the fallthrough edge.
	c := buildCFG(p)
	if len(c.succs[c.blockOf[1]]) != 2 {
		t.Errorf("guarded-exit block should have 2 successors, got %v", c.succs[c.blockOf[1]])
	}
}

// bruteForcePostDom computes postdominators by the definition: q
// postdominates b iff every path from b to the virtual exit passes through
// q. It enumerates reachability with q removed.
func bruteForcePostDom(c *cfg, b, q int) bool {
	if b == q {
		return true
	}
	// DFS from b avoiding q; if exit is reachable, q is not a postdominator.
	seen := make([]bool, len(c.blockStart)+1)
	var stack []int
	stack = append(stack, b)
	seen[b] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == c.exitNode {
			return false
		}
		for _, s := range c.succs[n] {
			if s != q && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// genRandomProgram builds a random structured program with branches, loops
// and exits, always ending in an unguarded exit.
func genRandomProgram(rng *rand.Rand) string {
	n := 4 + rng.Intn(12)
	src := ""
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			src += fmt.Sprintf("L%d: iadd r1, r1, %d\n", i, i)
		case 1:
			src += fmt.Sprintf("L%d: isetp.lt p0, r1, r2\n@p0 bra L%d\n", i, rng.Intn(n))
		case 2:
			src += fmt.Sprintf("L%d: @p0 exit\n", i)
		default:
			src += fmt.Sprintf("L%d: mov r2, %d\n", i, i*3)
		}
	}
	src += fmt.Sprintf("L%d: exit\n", n)
	return src
}

// TestRPCMatchesBruteForce cross-checks the iterative postdominator
// analysis against the path-based definition on random programs.
func TestRPCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		src := genRandomProgram(rng)
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		c := buildCFG(p)
		pdom := c.postDominators()
		for b := 0; b < len(c.blockStart); b++ {
			if len(c.succs[b]) == 0 {
				continue // unreachable-from-exit special case
			}
			for q := 0; q <= len(c.blockStart); q++ {
				got := pdom[b].has(q)
				want := bruteForcePostDom(c, b, q)
				if got != want {
					t.Fatalf("trial %d: pdom(%d,%d) = %v, want %v\n%s",
						trial, b, q, got, want, src)
				}
			}
		}
	}
}
