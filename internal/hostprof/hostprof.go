// Package hostprof wires command-line -cpuprofile/-memprofile flags to
// runtime/pprof for profiling the simulator itself (the host program, as
// opposed to internal/profile, which profiles simulated kernels). See
// docs/architecture.md, "Performance", for the intended workflow.
package hostprof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the in-progress profiling state of one CLI run.
type Profiles struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath and arms a heap snapshot to
// memPath; either may be empty to skip that profile. The caller must call
// Stop on every exit path (including error exits — os.Exit skips defers).
func Start(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("hostprof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("hostprof: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop finalises the profiles: it stops the CPU profile and writes the heap
// profile (after a GC, so the snapshot reflects live objects, not garbage).
// Stop is idempotent and safe on a nil receiver.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("hostprof: %w", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("hostprof: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("hostprof: %w", err)
		}
		p.memPath = ""
	}
	return nil
}
