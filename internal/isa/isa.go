// Package isa defines the SIMT instruction set executed by the simulator.
//
// The ISA is a small RISC-style, PTX-flavoured instruction set: 32-bit
// integer and floating-point ALU operations, special-function operations
// (sin, cos, ex2, lg2, rsqrt, rcp, sqrt), global/shared memory accesses,
// predicated branches, and a CTA-wide barrier. Every thread owns up to 64
// general-purpose 4-byte registers and 8 one-bit predicate registers.
//
// Instructions are classified into the three execution-pipeline classes the
// paper's baseline GPU provides (arithmetic/logic, memory, special-function)
// plus a control class handled by the front end.
package isa

import "fmt"

// Opcode enumerates every operation in the ISA.
type Opcode uint8

// Integer ALU opcodes.
const (
	OpNop Opcode = iota
	OpMov        // mov rd, a       : rd = a
	OpIAdd
	OpISub
	OpIMul
	OpIMad // imad rd, a, b, c : rd = a*b + c
	OpIDiv // long-latency integer divide
	OpIRem
	OpIMin
	OpIMax
	OpIAbs
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr   // logical shift right
	OpSra   // arithmetic shift right
	OpISetP // isetp.cc pd, a, b : pd = a cc b (signed)
	OpSelP  // selp rd, a, b, pc : rd = pc ? a : b

	// Floating-point ALU opcodes (operate on IEEE-754 single bits).
	OpFAdd
	OpFSub
	OpFMul
	OpFFma // ffma rd, a, b, c : rd = a*b + c
	OpFDiv // long-latency float divide (ALU pipe, iterative)
	OpFMin
	OpFMax
	OpFAbs
	OpFNeg
	OpFSetP
	OpI2F // signed int -> float
	OpF2I // float -> signed int (truncate)

	// Special-function opcodes (SFU pipeline).
	OpSin   // sin(a), a in radians
	OpCos   // cos(a)
	OpEx2   // 2**a
	OpLg2   // log2(a)
	OpRsqrt // 1/sqrt(a)
	OpRcp   // 1/a
	OpSqrt  // sqrt(a)

	// Memory opcodes.
	OpLdGlobal // ldg rd, [ra+imm]
	OpStGlobal // stg [ra+imm], rv
	OpLdShared // lds rd, [ra+imm]
	OpStShared // sts [ra+imm], rv

	// Control opcodes.
	OpBra  // bra TARGET (predicated for conditional branches)
	OpExit // thread exit
	OpBar  // bar.sync: CTA-wide barrier

	// OpVMov is the special register-to-register move the hardware injects
	// to decompress a compressed destination register before a divergent
	// partial update (paper §3.3). It ignores the active mask. It never
	// appears in assembled programs; the SM pipeline synthesises it.
	OpVMov

	opcodeCount
)

var opcodeNames = [...]string{
	OpNop: "nop", OpMov: "mov",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIMad: "imad",
	OpIDiv: "idiv", OpIRem: "irem", OpIMin: "imin", OpIMax: "imax", OpIAbs: "iabs",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpSra: "sra",
	OpISetP: "isetp", OpSelP: "selp",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFFma: "ffma",
	OpFDiv: "fdiv", OpFMin: "fmin", OpFMax: "fmax", OpFAbs: "fabs", OpFNeg: "fneg",
	OpFSetP: "fsetp", OpI2F: "i2f", OpF2I: "f2i",
	OpSin: "sin", OpCos: "cos", OpEx2: "ex2", OpLg2: "lg2",
	OpRsqrt: "rsqrt", OpRcp: "rcp", OpSqrt: "sqrt",
	OpLdGlobal: "ldg", OpStGlobal: "stg", OpLdShared: "lds", OpStShared: "sts",
	OpBra: "bra", OpExit: "exit", OpBar: "bar",
	OpVMov: "vmov",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class identifies the execution pipeline an instruction uses.
type Class uint8

// Pipeline classes.
const (
	ClassALU  Class = iota // integer/FP arithmetic and logic
	ClassSFU               // special-function unit
	ClassMem               // load/store pipeline
	ClassCtrl              // branches, exit, barrier (front-end handled)
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassSFU:
		return "sfu"
	case ClassMem:
		return "mem"
	case ClassCtrl:
		return "ctrl"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the execution-pipeline class of op.
func ClassOf(op Opcode) Class {
	switch {
	case op >= OpSin && op <= OpSqrt:
		return ClassSFU
	case op >= OpLdGlobal && op <= OpStShared:
		return ClassMem
	case op >= OpBra && op <= OpBar:
		return ClassCtrl
	default:
		return ClassALU
	}
}

// CmpOp is the comparison condition used by isetp/fsetp.
type CmpOp uint8

// Comparison conditions.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the condition suffix ("eq", "lt", ...).
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Eval reports whether the signed comparison a <c> b holds.
func (c CmpOp) Eval(a, b int32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// EvalF reports whether the float comparison a <c> b holds.
func (c CmpOp) EvalF(a, b float32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// Special enumerates the read-only special registers visible to threads.
type Special uint8

// Special registers.
const (
	SpecTidX Special = iota
	SpecTidY
	SpecCtaIDX
	SpecCtaIDY
	SpecNTidX  // CTA width (threads)
	SpecNTidY  // CTA height
	SpecNCtaX  // grid width (CTAs)
	SpecNCtaY  // grid height
	SpecLaneID // lane within warp
	SpecWarpID // warp within CTA

	specialCount
)

var specialNames = [...]string{
	"%tid.x", "%tid.y", "%ctaid.x", "%ctaid.y",
	"%ntid.x", "%ntid.y", "%nctaid.x", "%nctaid.y",
	"%laneid", "%warpid",
}

// String returns the assembly spelling ("%tid.x", ...).
func (s Special) String() string {
	if int(s) < len(specialNames) {
		return specialNames[s]
	}
	return fmt.Sprintf("%%spec(%d)", uint8(s))
}

// SpecialByName maps assembly spellings to Special values.
var SpecialByName = func() map[string]Special {
	m := make(map[string]Special, specialCount)
	for i := Special(0); i < specialCount; i++ {
		m[i.String()] = i
	}
	return m
}()

// OperandKind discriminates the source/destination operand forms.
type OperandKind uint8

// Operand kinds.
const (
	OpdNone    OperandKind = iota
	OpdReg                 // general-purpose vector register r0..r63
	OpdPred                // predicate register p0..p7
	OpdImm                 // 32-bit immediate (raw bits; integer or float)
	OpdSpecial             // special register (%tid.x, ...)
	OpdParam               // kernel parameter $0..$15 (uniform 32-bit value)
)

// Operand is one instruction operand.
type Operand struct {
	Kind    OperandKind
	Reg     uint8   // register or predicate index, or parameter index
	Imm     uint32  // immediate raw bits
	Special Special // valid when Kind == OpdSpecial
}

// Reg returns a vector-register operand.
func Reg(i uint8) Operand { return Operand{Kind: OpdReg, Reg: i} }

// Pred returns a predicate-register operand.
func Pred(i uint8) Operand { return Operand{Kind: OpdPred, Reg: i} }

// Imm returns an immediate operand holding the raw 32-bit pattern v.
func Imm(v uint32) Operand { return Operand{Kind: OpdImm, Imm: v} }

// Param returns a kernel-parameter operand.
func Param(i uint8) Operand { return Operand{Kind: OpdParam, Reg: i} }

// Spec returns a special-register operand.
func Spec(s Special) Operand { return Operand{Kind: OpdSpecial, Special: s} }

// IsUniform reports whether the operand necessarily holds the same value in
// every lane of a warp (immediates and kernel parameters). Special registers
// such as %tid.x vary per lane; %ctaid and %ntid are warp-uniform.
func (o Operand) IsUniform() bool {
	switch o.Kind {
	case OpdImm, OpdParam:
		return true
	case OpdSpecial:
		switch o.Special {
		case SpecCtaIDX, SpecCtaIDY, SpecNTidX, SpecNTidY, SpecNCtaX, SpecNCtaY, SpecWarpID:
			return true
		}
	}
	return false
}

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "_"
	case OpdReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OpdPred:
		return fmt.Sprintf("p%d", o.Reg)
	case OpdImm:
		return fmt.Sprintf("0x%x", o.Imm)
	case OpdSpecial:
		return o.Special.String()
	case OpdParam:
		return fmt.Sprintf("$%d", o.Reg)
	}
	return "?"
}

// Guard is the optional predicate guard of an instruction (@p0 / @!p0).
type Guard struct {
	Reg uint8
	Neg bool
	On  bool // false: instruction is unguarded
}

// String renders the guard prefix, empty if unguarded.
func (g Guard) String() string {
	if !g.On {
		return ""
	}
	if g.Neg {
		return fmt.Sprintf("@!p%d ", g.Reg)
	}
	return fmt.Sprintf("@p%d ", g.Reg)
}

// Instruction is one decoded static instruction.
type Instruction struct {
	Op    Opcode
	Cmp   CmpOp // comparison condition for isetp/fsetp
	Guard Guard

	Dst  Operand    // destination register or predicate (OpdNone if none)
	Srcs [3]Operand // source operands; Srcs[:NSrc] are valid
	NSrc uint8

	Off int32 // address offset for memory ops

	Target int // branch target PC (instruction index), -1 if none
	RPC    int // reconvergence PC for branches (immediate post-dominator), -1 if none

	Line int // 1-based source line, for diagnostics
}

// Class returns the execution-pipeline class of the instruction.
func (in *Instruction) Class() Class { return ClassOf(in.Op) }

// IsBranch reports whether the instruction is a (possibly divergent) branch.
func (in *Instruction) IsBranch() bool { return in.Op == OpBra }

// IsLoad reports whether the instruction reads memory.
func (in *Instruction) IsLoad() bool { return in.Op == OpLdGlobal || in.Op == OpLdShared }

// IsStore reports whether the instruction writes memory.
func (in *Instruction) IsStore() bool { return in.Op == OpStGlobal || in.Op == OpStShared }

// IsGlobalMem reports whether the instruction accesses global memory.
func (in *Instruction) IsGlobalMem() bool { return in.Op == OpLdGlobal || in.Op == OpStGlobal }

// WritesReg reports whether the instruction writes a vector register, and
// which one.
func (in *Instruction) WritesReg() (uint8, bool) {
	if in.Dst.Kind == OpdReg {
		return in.Dst.Reg, true
	}
	return 0, false
}

// WritesPred reports whether the instruction writes a predicate register.
func (in *Instruction) WritesPred() (uint8, bool) {
	if in.Dst.Kind == OpdPred {
		return in.Dst.Reg, true
	}
	return 0, false
}

// SourceRegs appends the vector-register indices read by the instruction to
// buf and returns the extended slice. It includes the address register of
// loads/stores and the data register of stores.
func (in *Instruction) SourceRegs(buf []uint8) []uint8 {
	for i := uint8(0); i < in.NSrc; i++ {
		if in.Srcs[i].Kind == OpdReg {
			buf = append(buf, in.Srcs[i].Reg)
		}
	}
	return buf
}

// HasVectorSources reports whether the instruction reads at least one vector
// register.
func (in *Instruction) HasVectorSources() bool {
	for i := uint8(0); i < in.NSrc; i++ {
		if in.Srcs[i].Kind == OpdReg {
			return true
		}
	}
	return false
}

// HasNonUniformNonRegSource reports whether any non-register source varies
// per lane (e.g. %tid.x). Such an instruction can never be scalar-eligible
// even if all its register sources hold scalar values. Predicate sources
// (selp) are excluded: their uniformity is tracked separately.
func (in *Instruction) HasNonUniformNonRegSource() bool {
	for i := uint8(0); i < in.NSrc; i++ {
		s := in.Srcs[i]
		if s.Kind != OpdReg && s.Kind != OpdNone && s.Kind != OpdPred && !s.IsUniform() {
			return true
		}
	}
	return false
}

// String renders the instruction in assembly syntax (without label context).
func (in *Instruction) String() string {
	s := in.Guard.String() + in.Op.String()
	if in.Op == OpISetP || in.Op == OpFSetP {
		s += "." + in.Cmp.String()
	}
	switch in.Op {
	case OpBra:
		return fmt.Sprintf("%s @%d", s, in.Target)
	case OpExit, OpBar, OpNop:
		return s
	case OpLdGlobal, OpLdShared:
		return fmt.Sprintf("%s %s, [%s%+d]", s, in.Dst, in.Srcs[0], in.Off)
	case OpStGlobal, OpStShared:
		return fmt.Sprintf("%s [%s%+d], %s", s, in.Srcs[0], in.Off, in.Srcs[1])
	}
	out := s
	if in.Dst.Kind != OpdNone {
		out += " " + in.Dst.String()
	}
	for i := uint8(0); i < in.NSrc; i++ {
		out += ", " + in.Srcs[i].String()
	}
	return out
}

// Limits of the register architecture.
const (
	NumGPRs   = 64 // vector general-purpose registers per thread
	NumPreds  = 8  // predicate registers per thread
	NumParams = 16 // kernel parameters
)

// Latency returns the execution latency of the opcode in cycles, i.e. the
// number of cycles between dispatch and result writeback on the baseline
// pipeline. These follow the Fermi-like model the paper assumes: most ALU
// ops complete in a short fixed pipeline, SFU ops and divides are long.
func Latency(op Opcode) int {
	switch op {
	case OpIDiv, OpIRem:
		return 120 // iterative integer divide (paper: LC's long-latency DIV)
	case OpFDiv:
		return 40
	case OpSin, OpCos, OpEx2, OpLg2, OpRsqrt, OpRcp, OpSqrt:
		return 20
	case OpIMul, OpIMad, OpFFma, OpFMul:
		return 8
	case OpLdGlobal, OpStGlobal, OpLdShared, OpStShared:
		return 0 // memory latency is modelled by the memory subsystem
	default:
		return 6
	}
}
