package isa

import (
	"testing"
	"testing/quick"
)

func TestClassOf(t *testing.T) {
	cases := map[Opcode]Class{
		OpIAdd: ClassALU, OpFFma: ClassALU, OpISetP: ClassALU, OpSelP: ClassALU,
		OpF2I: ClassALU, OpVMov: ClassALU,
		OpSin: ClassSFU, OpSqrt: ClassSFU, OpRcp: ClassSFU,
		OpLdGlobal: ClassMem, OpStShared: ClassMem,
		OpBra: ClassCtrl, OpExit: ClassCtrl, OpBar: ClassCtrl,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestCmpEval(t *testing.T) {
	if !CmpLT.Eval(-5, 3) {
		t.Error("signed lt broken")
	}
	if CmpLT.Eval(3, -5) {
		t.Error("signed lt inverted")
	}
	if !CmpGE.Eval(3, 3) || !CmpLE.Eval(3, 3) || !CmpEQ.Eval(3, 3) || CmpNE.Eval(3, 3) {
		t.Error("equality conditions broken")
	}
	if !CmpGT.EvalF(1.5, 1.25) || CmpGT.EvalF(1.25, 1.5) {
		t.Error("float gt broken")
	}
	// Eval and EvalF agree on trichotomy.
	f := func(a, b int32) bool {
		lt := CmpLT.Eval(a, b)
		gt := CmpGT.Eval(a, b)
		eq := CmpEQ.Eval(a, b)
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1 && CmpLE.Eval(a, b) == (lt || eq) && CmpGE.Eval(a, b) == (gt || eq) && CmpNE.Eval(a, b) == !eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperandUniformity(t *testing.T) {
	if !Imm(5).IsUniform() || !Param(2).IsUniform() {
		t.Error("imm/param must be uniform")
	}
	if Spec(SpecTidX).IsUniform() || Spec(SpecLaneID).IsUniform() {
		t.Error("per-lane specials must not be uniform")
	}
	if !Spec(SpecCtaIDX).IsUniform() || !Spec(SpecNTidX).IsUniform() {
		t.Error("warp-uniform specials must be uniform")
	}
	if Reg(3).IsUniform() {
		t.Error("register operands have unknown uniformity")
	}
}

func TestInstructionHelpers(t *testing.T) {
	ld := Instruction{Op: OpLdGlobal, Dst: Reg(1), NSrc: 1}
	ld.Srcs[0] = Reg(2)
	if !ld.IsLoad() || ld.IsStore() || !ld.IsGlobalMem() {
		t.Error("load classification broken")
	}
	if r, ok := ld.WritesReg(); !ok || r != 1 {
		t.Error("WritesReg broken")
	}
	st := Instruction{Op: OpStShared, NSrc: 2}
	if st.IsLoad() || !st.IsStore() || st.IsGlobalMem() {
		t.Error("store classification broken")
	}
	setp := Instruction{Op: OpISetP, Dst: Pred(3)}
	if p, ok := setp.WritesPred(); !ok || p != 3 {
		t.Error("WritesPred broken")
	}
	if _, ok := setp.WritesReg(); ok {
		t.Error("setp should not write a register")
	}
}

func TestSourceRegs(t *testing.T) {
	in := Instruction{Op: OpIMad, Dst: Reg(1), NSrc: 3}
	in.Srcs[0], in.Srcs[1], in.Srcs[2] = Reg(2), Imm(5), Reg(7)
	got := in.SourceRegs(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("source regs = %v", got)
	}
	if !in.HasVectorSources() {
		t.Error("HasVectorSources broken")
	}
	imm := Instruction{Op: OpMov, Dst: Reg(1), NSrc: 1}
	imm.Srcs[0] = Imm(1)
	if imm.HasVectorSources() {
		t.Error("imm-only should have no vector sources")
	}
}

func TestLatencies(t *testing.T) {
	if Latency(OpIDiv) <= Latency(OpIMul) {
		t.Error("divide should be slower than multiply")
	}
	if Latency(OpSin) <= Latency(OpIAdd) {
		t.Error("SFU should be slower than simple ALU")
	}
}

func TestStrings(t *testing.T) {
	in := Instruction{Op: OpIAdd, Dst: Reg(1), NSrc: 2}
	in.Srcs[0], in.Srcs[1] = Reg(2), Imm(0x10)
	if got := in.String(); got != "iadd r1, r2, 0x10" {
		t.Errorf("String() = %q", got)
	}
	g := Guard{On: true, Neg: true, Reg: 3}
	if g.String() != "@!p3 " {
		t.Errorf("guard = %q", g.String())
	}
	if SpecialByName["%tid.x"] != SpecTidX {
		t.Error("SpecialByName broken")
	}
}
