package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite streams emit into path atomically: the bytes land in a
// temporary file in path's directory, and only a fully written, closed file
// is renamed into place. A reader therefore never observes a truncated
// artifact — on any failure (emit error, close error, rename error) the
// destination keeps whatever it held before and the temporary file is
// removed. The rename is atomic on POSIX filesystems, which is what lets the
// result store treat every *.json file it finds on restart as complete.
func AtomicWrite(path string, emit func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	tmp := f.Name()
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic is AtomicWrite over a byte slice.
func WriteFileAtomic(path string, data []byte) error {
	return AtomicWrite(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// tmpPrefix marks in-flight temporary files so Open can both skip and sweep
// them: a crash between CreateTemp and Rename leaves only a tmpPrefix file
// behind, never a partial store entry.
const tmpPrefix = ".tmp-"
