package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAtomicWriteSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	assertNoTempFiles(t, dir)
}

// TestAtomicWriteFailureLeavesTargetIntact is the satellite bugfix's
// contract: an export that fails mid-write must neither truncate an existing
// file nor leave a partial new one behind.
func TestAtomicWriteFailureLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("render failed")
	err := AtomicWrite(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the path", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "previous" {
		t.Fatalf("target after failed write = %q, %v; want previous contents", data, err)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicWriteNewFileFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	err := AtomicWrite(path, func(w io.Writer) error { return errors.New("no") })
	if err == nil {
		t.Fatal("expected error")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write created %s", path)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Errorf("leftover temp file %s", de.Name())
		}
	}
}

func TestKeyShape(t *testing.T) {
	k := Key("abc123", 2, "gscalar", "BP")
	if k != "abc123|scale=2|gscalar/BP" {
		t.Fatalf("key = %q", k)
	}
}

func testEntry(key string) Entry {
	return Entry{
		Key:        key,
		ConfigHash: strings.SplitN(key, "|", 2)[0],
		Arch:       "gscalar",
		Workload:   "BP",
		Scale:      1,
		Result:     json.RawMessage(`{"cycles":42,"ipc":1.5}`),
		Metrics:    json.RawMessage(`{"arch":"gscalar"}`),
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("h1", 1, "gscalar", "BP")
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	want := testEntry(key)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if !ok || err != nil {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got.Key != want.Key || !bytes.Equal(got.Result, want.Result) || !bytes.Equal(got.Metrics, want.Metrics) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if s.Len() != 1 || !s.Contains(key) {
		t.Errorf("Len=%d Contains=%v", s.Len(), s.Contains(key))
	}
}

// TestStoreReopenRebuildsIndex is the crash-recovery property the sweep
// server relies on: a fresh process over the same directory serves every
// completed entry without recomputing anything.
func TestStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		Key("h1", 1, "gscalar", "BP"),
		Key("h1", 1, "baseline", "BP"),
		Key("h2", 3, "gscalar", "LBM"),
	}
	for _, k := range keys {
		if err := s.Put(testEntry(k)); err != nil {
			t.Fatal(err)
		}
	}

	// Simulate the crash debris a killed writer can leave: a temp file (the
	// only artifact an interrupted AtomicWrite produces) and a corrupt
	// foreign JSON file.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"dead-123"), []byte(`{"key":"zombie"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(keys) {
		t.Fatalf("reopened Len = %d, want %d (keys: %v)", re.Len(), len(keys), re.Keys())
	}
	for _, k := range keys {
		e, ok, err := re.Get(k)
		if !ok || err != nil {
			t.Fatalf("reopened Get(%s): ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(e.Result, testEntry(k).Result) {
			t.Errorf("reopened entry %s differs", k)
		}
	}
	if re.Contains("zombie") {
		t.Error("temp-file debris was indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"dead-123")); !os.IsNotExist(err) {
		t.Error("leftover temp file was not swept on Open")
	}
}

func TestStorePutOverwritesInPlace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("h1", 1, "gscalar", "BP")
	e := testEntry(key)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	e.Result = json.RawMessage(`{"cycles":43}`)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", s.Len())
	}
	got, _, _ := s.Get(key)
	if string(got.Result) != `{"cycles":43}` {
		t.Fatalf("overwrite not visible: %s", got.Result)
	}
}

func TestStoreRejectsKeylessEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Entry{}); err == nil {
		t.Fatal("Put of keyless entry succeeded")
	}
}

func TestGroupDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group
	var runs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	sharedCount := atomic.Int32{}
	do := func(i int) {
		defer wg.Done()
		v, shared, err := g.Do(context.Background(), "k", func() (any, error) {
			runs.Add(1)
			close(started)
			<-release
			return "value", nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		if shared {
			sharedCount.Add(1)
		}
		results[i] = v
	}
	// The leader goes first and blocks inside fn; the joiners are spawned
	// only once it is registered, and the leader is released only once every
	// joiner is counted in the flight — so exactly one fn run is guaranteed,
	// not just likely.
	wg.Add(1)
	go do(0)
	<-started
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go do(i)
	}
	for g.Waiters("k") != callers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	if sharedCount.Load() != callers-1 {
		t.Errorf("shared callers = %d, want %d", sharedCount.Load(), callers-1)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight after completion = %d", g.InFlight())
	}
}

func TestGroupWaiterObservesContext(t *testing.T) {
	var g Group
	release := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.Do(ctx, "k", func() (any, error) {
		t.Error("waiter ran fn")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: shared=%v err=%v", shared, err)
	}
	close(release)
}

func TestGroupLeaderErrorPropagates(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, shared, err := g.Do(context.Background(), "k", func() (any, error) { return nil, boom })
	if shared || !errors.Is(err, boom) {
		t.Fatalf("leader: shared=%v err=%v", shared, err)
	}
	// The failed key is forgotten: a retry runs fresh.
	v, _, err := g.Do(context.Background(), "k", func() (any, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after failure: %v, %v", v, err)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := Key("h", (g+i)%4, "gscalar", "BP")
				if _, ok, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
				} else if !ok {
					if err := s.Put(testEntry(key)); err != nil {
						t.Errorf("Put: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestFileNameIsContentAddressed(t *testing.T) {
	a, b := fileName("k1"), fileName("k2")
	if a == b {
		t.Fatal("distinct keys share a file name")
	}
	if fileName("k1") != a {
		t.Fatal("file name not deterministic")
	}
	if !strings.HasSuffix(a, entryExt) {
		t.Fatalf("file name %q lacks %s", a, entryExt)
	}
	if fmt.Sprintf("%s", a) == "k1"+entryExt {
		t.Fatal("file name must be the key's hash, not the raw key (keys contain '/')")
	}
}
