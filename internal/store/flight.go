package store

import (
	"context"
	"sync"
)

// Group deduplicates concurrent calls that share a key ("singleflight"): the
// first caller of a key becomes the leader and runs fn; callers arriving
// while the leader is in flight wait for its outcome instead of repeating
// the work. Once the leader finishes the key is forgotten, so a later call
// runs fresh — persistent memoization is the caller's concern (the
// experiment cache and the result store layer it on top).
//
// The zero Group is ready to use.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done    chan struct{} // closed when the leader finished
	waiters int           // callers that joined this flight (under Group.mu)
	val     any
	err     error
}

// Do executes fn once per key among concurrent callers. The leader's return
// values are handed to every waiter; shared reports whether this caller
// joined an in-flight leader rather than running fn itself. A waiter whose
// ctx expires stops waiting and returns ctx's error without disturbing the
// leader; the leader itself runs fn to completion regardless of ctx — fn is
// expected to observe cancellation on its own (simulation runs do, at their
// lifecycle checkpoints).
func (g *Group) Do(ctx context.Context, key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// InFlight reports the number of keys currently being computed.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// Waiters reports how many callers are currently joined to key's in-flight
// call (0 when the key is idle). It exists for tests and introspection.
func (g *Group) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
