// Package store is the disk-backed, content-addressed result store behind
// gscalar-serve (and the infrastructure it shares with the rest of the
// repository: atomic file writes and singleflight call deduplication).
//
// Each entry is one completed simulation point, addressed by the canonical
// key "configHash|scale=N|arch/workload" — the same identity the in-process
// experiment cache uses, derived from Config.Hash(), so two requests denote
// the same entry iff they denote the same simulation input. Entries are
// single JSON files named by the SHA-256 of their key, written atomically
// (temp file + rename); the in-memory index is rebuilt by scanning the
// directory on Open, so a restarted — or crashed — server re-serves every
// point that completed before it went down without re-simulating anything.
// All simulation loops are deterministic, which is what makes a stored blob
// equivalent to a fresh run: the stored Result bytes are the byte-identical
// answer a new simulation of that key would produce.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Key builds the canonical store key of one simulation point. The config
// hash must be the canonical content hash of the normalized configuration
// (gscalar.Config.Hash after Normalize); scale is the workload scale factor,
// arch and workload the short names the CLIs use.
func Key(configHash string, scale int, arch, workload string) string {
	return configHash + "|scale=" + strconv.Itoa(scale) + "|" + arch + "/" + workload
}

// Entry is one stored simulation point. Result holds the exact JSON bytes of
// the gscalar.Result — kept raw so a served repeat request is byte-identical
// to the run that produced it — and Metrics optionally holds the telemetry
// blob collected alongside it.
type Entry struct {
	Key        string          `json:"key"`
	ConfigHash string          `json:"config_hash"`
	Arch       string          `json:"arch"`
	Workload   string          `json:"workload"`
	Scale      int             `json:"scale"`
	Result     json.RawMessage `json:"result"`
	Metrics    json.RawMessage `json:"metrics,omitempty"`
}

// Store is a content-addressed collection of Entries in one directory. It is
// safe for concurrent use.
type Store struct {
	dir string

	mu    sync.RWMutex
	index map[string]string // key -> file path
}

// Open opens (creating if necessary) the store rooted at dir and rebuilds
// the key index by scanning it. Leftover temporary files from a crashed
// writer are removed; files that do not decode as entries are skipped — a
// foreign or corrupt file can hide a key but never corrupt served results,
// because entries are only ever written whole (see AtomicWrite).
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, index: make(map[string]string)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // crashed writer's leftovers
			continue
		}
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		path := filepath.Join(dir, name)
		e, err := readEntry(path)
		if err != nil || e.Key == "" {
			continue // not a store entry; leave it alone but serve nothing from it
		}
		s.index[e.Key] = path
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns the stored keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Contains reports whether key is stored, without reading the entry.
func (s *Store) Contains(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Get reads the entry stored under key. ok is false when the key is absent;
// a read or decode failure of a present key is returned as an error.
func (s *Store) Get(key string) (Entry, bool, error) {
	s.mu.RLock()
	path, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return Entry{}, false, nil
	}
	e, err := readEntry(path)
	if err != nil {
		return Entry{}, false, fmt.Errorf("store: reading %s: %w", path, err)
	}
	return e, true, nil
}

// Put stores e under e.Key, atomically: concurrent readers observe either
// the previous entry or the complete new one, never a partial file. The
// entry file is named by the SHA-256 of the key, so the layout is
// content-addressed and a re-Put of the same key overwrites in place.
func (s *Store) Put(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("store: entry has no key")
	}
	path := filepath.Join(s.dir, fileName(e.Key))
	// Plain (compact) encoding: an indenting encoder would reformat the raw
	// Result/Metrics bytes, breaking the byte-identity contract between a
	// stored blob and the marshal that produced it.
	err := AtomicWrite(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(e)
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.index[e.Key] = path
	s.mu.Unlock()
	return nil
}

// entryExt is the store entry file suffix.
const entryExt = ".json"

// fileName derives the content-addressed file name of a key.
func fileName(key string) string {
	return hashHex(key) + entryExt
}

func readEntry(path string) (Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, err
	}
	return e, nil
}
