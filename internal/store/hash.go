package store

import (
	"crypto/sha256"
	"encoding/hex"
)

// hashHex is the hex-encoded SHA-256 of s — the content address a key's
// entry file is named by.
func hashHex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
