// Package kernel defines the program, launch-configuration and device-memory
// abstractions shared by the assembler and the simulator.
package kernel

import (
	"fmt"
	"math"
	"sort"

	"gscalar/internal/isa"
)

// Program is an assembled kernel: a flat instruction vector with resolved
// branch targets and reconvergence PCs.
type Program struct {
	Name    string
	Code    []isa.Instruction
	Labels  map[string]int // label -> PC
	NumRegs int            // highest GPR index used + 1

	// meta caches per-PC decode products (class, latency, destination kind)
	// so the issue/dispatch hot path never re-derives them per dynamic
	// instruction. Built by BuildMeta; nil on hand-constructed Programs
	// until their first simulation.
	meta []InstMeta
}

// InstMeta is the decoded metadata of one static instruction, computed once
// per PC instead of per dynamic execution.
type InstMeta struct {
	Class      isa.Class
	Latency    uint16 // execution latency (isa.Latency)
	OccMul     uint8  // dispatch-occupancy multiplier (iterative divides)
	FrontEnd   bool   // completes in the front end (control ops and nop)
	WritesReg  bool
	WritesPred bool
	DstReg     uint8 // valid when WritesReg
	DstPred    uint8 // valid when WritesPred
}

// At returns the instruction at pc.
func (p *Program) At(pc int) *isa.Instruction { return &p.Code[pc] }

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// Meta returns the decoded metadata of the instruction at pc. BuildMeta
// must have run first (the assembler and the simulator entry points do).
func (p *Program) Meta(pc int) *InstMeta { return &p.meta[pc] }

// BuildMeta populates the per-PC metadata cache. It is idempotent, and NOT
// safe to call concurrently with itself or with simulation: callers that
// share one Program across goroutines (the phased chip loop, the experiment
// fan-out) must build the cache first, which the assembler and gpu.Run both
// do before any worker starts.
func (p *Program) BuildMeta() {
	if len(p.meta) == len(p.Code) && p.meta != nil {
		return
	}
	meta := make([]InstMeta, len(p.Code))
	for pc := range p.Code {
		in := &p.Code[pc]
		m := &meta[pc]
		m.Class = in.Class()
		m.Latency = uint16(isa.Latency(in.Op))
		m.OccMul = 1
		switch in.Op {
		case isa.OpIDiv, isa.OpIRem:
			m.OccMul = 8
		case isa.OpFDiv:
			m.OccMul = 4
		}
		m.FrontEnd = m.Class == isa.ClassCtrl || in.Op == isa.OpNop
		m.DstReg, m.WritesReg = in.WritesReg()
		m.DstPred, m.WritesPred = in.WritesPred()
	}
	p.meta = meta
}

// Dim is a 2-D extent (x, y).
type Dim struct{ X, Y int }

// Count returns X*Y.
func (d Dim) Count() int { return d.X * d.Y }

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	Grid        Dim                   // CTAs in the grid
	Block       Dim                   // threads per CTA
	Params      [isa.NumParams]uint32 // uniform 32-bit kernel parameters
	SharedBytes int                   // shared memory per CTA
}

// Threads returns the total number of threads launched.
func (lc LaunchConfig) Threads() int { return lc.Grid.Count() * lc.Block.Count() }

// Validate checks structural constraints of the launch.
func (lc LaunchConfig) Validate(maxThreadsPerCTA int) error {
	if lc.Grid.X <= 0 || lc.Grid.Y <= 0 {
		return fmt.Errorf("kernel: grid dims must be positive, got %dx%d", lc.Grid.X, lc.Grid.Y)
	}
	if lc.Block.X <= 0 || lc.Block.Y <= 0 {
		return fmt.Errorf("kernel: block dims must be positive, got %dx%d", lc.Block.X, lc.Block.Y)
	}
	if n := lc.Block.Count(); n > maxThreadsPerCTA {
		return fmt.Errorf("kernel: %d threads per CTA exceeds limit %d", n, maxThreadsPerCTA)
	}
	return nil
}

// Memory is the flat global device memory, addressed by 32-bit byte
// addresses. Storage is paged so sparse address usage stays cheap.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	next  uint32 // bump allocator cursor
}

const pageSize = 1 << 16

// NewMemory returns an empty device memory. Address 0 is reserved (the bump
// allocator starts at 256) so that a zero pointer is distinguishable.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte), next: 256}
}

// AddrSpaceError is the typed panic value raised by Memory allocation or
// bulk access beyond the 32-bit device address space. Address arithmetic
// used to wrap around silently, corrupting low memory; exhaustion is a host
// programming error (like indexing past a slice), so it panics rather than
// threading an error through every workload builder.
type AddrSpaceError struct {
	Op    string // "alloc", "read", or "write"
	Base  uint32 // allocation cursor or access base address
	Bytes int64  // requested size in bytes
}

func (e *AddrSpaceError) Error() string {
	return fmt.Sprintf("kernel: %s of %d bytes at %#x exceeds the 32-bit device address space",
		e.Op, e.Bytes, e.Base)
}

// Alloc reserves n bytes and returns the base address, 256-byte aligned. It
// panics with a *AddrSpaceError when the request does not fit in the
// remaining 32-bit address space.
func (m *Memory) Alloc(n int) uint32 {
	const align = 256
	base := (m.next + align - 1) &^ (align - 1)
	// base < m.next catches the alignment step itself wrapping around.
	if n < 0 || base < m.next || uint64(base)+uint64(n) > 1<<32 {
		panic(&AddrSpaceError{Op: "alloc", Base: m.next, Bytes: int64(n)})
	}
	m.next = base + uint32(n)
	return base
}

// checkRange panics with a *AddrSpaceError when an n-word access at base
// would run past the end of the 32-bit address space (and previously wrapped
// around to low memory).
func checkRange(op string, base uint32, n int) {
	if n < 0 || uint64(base)+4*uint64(n) > 1<<32 {
		panic(&AddrSpaceError{Op: op, Base: base, Bytes: 4 * int64(n)})
	}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	id := addr / pageSize
	p := m.pages[id]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[id] = p
	}
	return p
}

// readPage returns the page containing addr without allocating, or nil when
// the page has never been written (its bytes are all zero). Loads must use
// this path: it keeps reads free of map mutation, so any number of SMs may
// load concurrently while stores are deferred to a serial commit phase.
func (m *Memory) readPage(addr uint32) *[pageSize]byte {
	return m.pages[addr/pageSize]
}

// Load32 reads the 4-byte little-endian word at addr.
func (m *Memory) Load32(addr uint32) uint32 {
	off := addr % pageSize
	if off <= pageSize-4 {
		p := m.readPage(addr)
		if p == nil {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.load8(addr+i)) << (8 * i)
	}
	return v
}

// Store32 writes the 4-byte little-endian word v at addr.
func (m *Memory) Store32(addr uint32, v uint32) {
	off := addr % pageSize
	if off <= pageSize-4 {
		p := m.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.store8(addr+i, byte(v>>(8*i)))
	}
}

func (m *Memory) load8(addr uint32) byte {
	p := m.readPage(addr)
	if p == nil {
		return 0
	}
	return p[addr%pageSize]
}
func (m *Memory) store8(addr uint32, b byte) { m.page(addr)[addr%pageSize] = b }

// MemPage is one page of a Memory snapshot: the page id (byte address /
// pageSize) and its contents with trailing zero bytes trimmed.
type MemPage struct {
	ID   uint32
	Data []byte
}

// Snapshot captures the memory's full observable state: the bump-allocator
// cursor and every page holding a non-zero byte, in ascending page-id order
// with trailing zeros trimmed. Restoring it via NewMemoryFromSnapshot yields
// a Memory whose every Load32 returns the same value and whose next Alloc
// lands at the same address — absent pages and trimmed tails read as zero,
// which is exactly how the paged storage treats them. The page data is
// copied, so the snapshot stays valid while the source memory keeps
// mutating.
func (m *Memory) Snapshot() (next uint32, pages []MemPage) {
	ids := make([]uint32, 0, len(m.pages))
	for id := range m.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := m.pages[id]
		n := pageSize
		for n > 0 && p[n-1] == 0 {
			n--
		}
		if n == 0 {
			continue
		}
		data := make([]byte, n)
		copy(data, p[:n])
		pages = append(pages, MemPage{ID: id, Data: data})
	}
	return m.next, pages
}

// NewMemoryFromSnapshot materialises a fresh Memory from a Snapshot. Page
// data longer than a page is truncated (a well-formed snapshot never
// produces one), so a hostile snapshot cannot write out of bounds.
func NewMemoryFromSnapshot(next uint32, pages []MemPage) *Memory {
	m := NewMemory()
	m.next = next
	for _, pg := range pages {
		p := new([pageSize]byte)
		copy(p[:], pg.Data)
		m.pages[pg.ID] = p
	}
	return m
}

// StoreBuffer defers global-memory stores for the phased (parallel)
// simulation mode: during the concurrent compute phase each SM's warps
// append their stores here instead of writing Memory directly, and the
// serial commit phase flushes the buffers in ascending SM-id order. All
// loads of a cycle therefore observe memory as of the end of the previous
// cycle, independent of worker scheduling, which is what makes the phased
// mode deterministic for any worker count.
type StoreBuffer struct {
	ops []storeOp
	// overlay, when enabled, tracks the latest buffered value per address so
	// loads can read through the buffer. The relaxed epoch mode needs it:
	// stores stay buffered for up to a whole epoch there, and a warp reading
	// back its own SM's recent global store must see the value a serial
	// simulation would have made visible within a cycle. The phased mode
	// leaves the overlay disabled — its buffers flush every cycle, so loads
	// reading memory as of the previous cycle is already the contract.
	overlay map[uint32]uint32
}

type storeOp struct {
	addr, val uint32
}

// EnableOverlay switches the buffer into read-through mode (see overlay).
func (b *StoreBuffer) EnableOverlay() {
	b.overlay = make(map[uint32]uint32)
}

// Store32 records a deferred 4-byte store.
func (b *StoreBuffer) Store32(addr, val uint32) {
	b.ops = append(b.ops, storeOp{addr, val})
	if b.overlay != nil {
		b.overlay[addr] = val
	}
}

// Len returns the number of buffered stores.
func (b *StoreBuffer) Len() int { return len(b.ops) }

// ReadThrough reports whether loads must consult the buffer before global
// memory: the overlay is enabled and at least one store is pending. It is
// nil-safe so the warp execution hot path can branch on it once per
// instruction.
func (b *StoreBuffer) ReadThrough() bool {
	return b != nil && len(b.overlay) > 0
}

// Load32 returns the latest buffered value for addr, if any. Valid only
// with the overlay enabled.
func (b *StoreBuffer) Load32(addr uint32) (uint32, bool) {
	v, ok := b.overlay[addr]
	return v, ok
}

// Flush applies the buffered stores to m in insertion order and empties the
// buffer. Flushed values are visible in m itself, so the overlay empties
// too.
func (b *StoreBuffer) Flush(m *Memory) {
	for _, op := range b.ops {
		m.Store32(op.addr, op.val)
	}
	b.ops = b.ops[:0]
	if len(b.overlay) > 0 {
		clear(b.overlay)
	}
}

// WriteU32 stores the slice of words starting at base. It panics with a
// *AddrSpaceError when the range exceeds the address space.
func (m *Memory) WriteU32(base uint32, vals []uint32) {
	checkRange("write", base, len(vals))
	for i, v := range vals {
		m.Store32(base+uint32(i)*4, v)
	}
}

// ReadU32 loads n words starting at base. It panics with a *AddrSpaceError
// when the range exceeds the address space.
func (m *Memory) ReadU32(base uint32, n int) []uint32 {
	checkRange("read", base, n)
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.Load32(base + uint32(i)*4)
	}
	return out
}

// WriteF32 stores float32 values starting at base. It panics with a
// *AddrSpaceError when the range exceeds the address space.
func (m *Memory) WriteF32(base uint32, vals []float32) {
	checkRange("write", base, len(vals))
	for i, v := range vals {
		m.Store32(base+uint32(i)*4, math.Float32bits(v))
	}
}

// ReadF32 loads n float32 values starting at base. It panics with a
// *AddrSpaceError when the range exceeds the address space.
func (m *Memory) ReadF32(base uint32, n int) []float32 {
	checkRange("read", base, n)
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(m.Load32(base + uint32(i)*4))
	}
	return out
}

// AllocU32 allocates and initialises a word buffer, returning its base.
func (m *Memory) AllocU32(vals []uint32) uint32 {
	base := m.Alloc(len(vals) * 4)
	m.WriteU32(base, vals)
	return base
}

// AllocF32 allocates and initialises a float buffer, returning its base.
func (m *Memory) AllocF32(vals []float32) uint32 {
	base := m.Alloc(len(vals) * 4)
	m.WriteF32(base, vals)
	return base
}
