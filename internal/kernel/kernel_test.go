package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store32(0x1000, 0xDEADBEEF)
	if got := m.Load32(0x1000); got != 0xDEADBEEF {
		t.Fatalf("load = %#x", got)
	}
	// Little-endian byte order.
	if got := m.Load32(0x1001); got != 0x00DEADBE {
		t.Fatalf("offset load = %#x", got)
	}
}

func TestMemoryPageBoundary(t *testing.T) {
	const edge = 1<<16 - 2 // straddles two pages
	m := NewMemory()
	m.Store32(edge, 0x11223344)
	if got := m.Load32(edge); got != 0x11223344 {
		t.Fatalf("straddle load = %#x", got)
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		m.Store32(addr, v)
		return m.Load32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllocAlignmentAndSeparation(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(100)
	b := m.Alloc(10)
	if a%256 != 0 || b%256 != 0 {
		t.Fatalf("allocations not 256-aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
	if a == 0 {
		t.Fatal("address 0 must be reserved")
	}
}

func TestSliceHelpers(t *testing.T) {
	m := NewMemory()
	u := []uint32{1, 2, 3, 4, 5}
	base := m.AllocU32(u)
	got := m.ReadU32(base, len(u))
	for i := range u {
		if got[i] != u[i] {
			t.Fatalf("u32[%d] = %d", i, got[i])
		}
	}
	f := []float32{1.5, -2.25, float32(math.Inf(1))}
	fb := m.AllocF32(f)
	gf := m.ReadF32(fb, len(f))
	for i := range f {
		if gf[i] != f[i] && !(math.IsNaN(float64(gf[i])) && math.IsNaN(float64(f[i]))) {
			t.Fatalf("f32[%d] = %v", i, gf[i])
		}
	}
}

func TestLaunchValidate(t *testing.T) {
	ok := LaunchConfig{Grid: Dim{X: 2, Y: 2}, Block: Dim{X: 16, Y: 8}}
	if err := ok.Validate(1536); err != nil {
		t.Fatalf("valid launch rejected: %v", err)
	}
	bad := LaunchConfig{Grid: Dim{X: 0, Y: 1}, Block: Dim{X: 16, Y: 1}}
	if err := bad.Validate(1536); err == nil {
		t.Fatal("zero grid accepted")
	}
	big := LaunchConfig{Grid: Dim{X: 1, Y: 1}, Block: Dim{X: 2048, Y: 1}}
	if err := big.Validate(1536); err == nil {
		t.Fatal("oversized CTA accepted")
	}
	if ok.Threads() != 4*128 {
		t.Fatalf("threads = %d", ok.Threads())
	}
}

// wantAddrSpacePanic runs f and requires it to panic with a *AddrSpaceError
// naming the given operation.
func wantAddrSpacePanic(t *testing.T, op string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s beyond the address space did not panic", op)
		}
		e, ok := r.(*AddrSpaceError)
		if !ok {
			t.Fatalf("panic value %T (%v), want *AddrSpaceError", r, r)
		}
		if e.Op != op {
			t.Errorf("AddrSpaceError.Op = %q, want %q", e.Op, op)
		}
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}()
	f()
}

// TestAllocExhaustionPanics is the regression test for the silent 32-bit
// wrap: allocations past the end of the address space used to hand out
// wrapped (low, already-allocated) base addresses and corrupt memory; they
// must panic instead.
func TestAllocExhaustionPanics(t *testing.T) {
	m := NewMemory()
	// One allocation can never exceed the space...
	wantAddrSpacePanic(t, "alloc", func() { m.Alloc(1 << 33) })
	// ...nor a negative size slip through.
	wantAddrSpacePanic(t, "alloc", func() { m.Alloc(-1) })

	// Fill almost the whole space, then overflow by allocation sequence:
	// the failed attempts above must not have moved the cursor.
	base := m.Alloc(1<<32 - 4096)
	if base != 256 {
		t.Fatalf("first alloc base = %#x, want 0x100", base)
	}
	wantAddrSpacePanic(t, "alloc", func() { m.Alloc(8192) })

	// The remaining tail is still allocatable after the failures.
	if got := m.Alloc(16); got == 0 {
		t.Fatal("tail allocation failed")
	}
}

// TestBulkAccessRangePanics checks the slice helpers: a read or write whose
// word range runs past the 32-bit address space used to wrap around and
// touch low memory; it must panic with the typed error.
func TestBulkAccessRangePanics(t *testing.T) {
	m := NewMemory()
	const nearEnd = uint32(1<<32 - 8)
	wantAddrSpacePanic(t, "read", func() { m.ReadU32(nearEnd, 3) })
	wantAddrSpacePanic(t, "read", func() { m.ReadF32(nearEnd, 3) })
	wantAddrSpacePanic(t, "write", func() { m.WriteU32(nearEnd, make([]uint32, 3)) })
	wantAddrSpacePanic(t, "write", func() { m.WriteF32(nearEnd, make([]float32, 3)) })

	// The last two words of the space remain addressable.
	m.WriteU32(nearEnd, []uint32{7, 9})
	if got := m.ReadU32(nearEnd, 2); got[0] != 7 || got[1] != 9 {
		t.Fatalf("end-of-space round trip = %v, want [7 9]", got)
	}
}
