package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store32(0x1000, 0xDEADBEEF)
	if got := m.Load32(0x1000); got != 0xDEADBEEF {
		t.Fatalf("load = %#x", got)
	}
	// Little-endian byte order.
	if got := m.Load32(0x1001); got != 0x00DEADBE {
		t.Fatalf("offset load = %#x", got)
	}
}

func TestMemoryPageBoundary(t *testing.T) {
	const edge = 1<<16 - 2 // straddles two pages
	m := NewMemory()
	m.Store32(edge, 0x11223344)
	if got := m.Load32(edge); got != 0x11223344 {
		t.Fatalf("straddle load = %#x", got)
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		m.Store32(addr, v)
		return m.Load32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllocAlignmentAndSeparation(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(100)
	b := m.Alloc(10)
	if a%256 != 0 || b%256 != 0 {
		t.Fatalf("allocations not 256-aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
	if a == 0 {
		t.Fatal("address 0 must be reserved")
	}
}

func TestSliceHelpers(t *testing.T) {
	m := NewMemory()
	u := []uint32{1, 2, 3, 4, 5}
	base := m.AllocU32(u)
	got := m.ReadU32(base, len(u))
	for i := range u {
		if got[i] != u[i] {
			t.Fatalf("u32[%d] = %d", i, got[i])
		}
	}
	f := []float32{1.5, -2.25, float32(math.Inf(1))}
	fb := m.AllocF32(f)
	gf := m.ReadF32(fb, len(f))
	for i := range f {
		if gf[i] != f[i] && !(math.IsNaN(float64(gf[i])) && math.IsNaN(float64(f[i]))) {
			t.Fatalf("f32[%d] = %v", i, gf[i])
		}
	}
}

func TestLaunchValidate(t *testing.T) {
	ok := LaunchConfig{Grid: Dim{X: 2, Y: 2}, Block: Dim{X: 16, Y: 8}}
	if err := ok.Validate(1536); err != nil {
		t.Fatalf("valid launch rejected: %v", err)
	}
	bad := LaunchConfig{Grid: Dim{X: 0, Y: 1}, Block: Dim{X: 16, Y: 1}}
	if err := bad.Validate(1536); err == nil {
		t.Fatal("zero grid accepted")
	}
	big := LaunchConfig{Grid: Dim{X: 1, Y: 1}, Block: Dim{X: 2048, Y: 1}}
	if err := big.Validate(1536); err == nil {
		t.Fatal("oversized CTA accepted")
	}
	if ok.Threads() != 4*128 {
		t.Fatalf("threads = %d", ok.Threads())
	}
}
