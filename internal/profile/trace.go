package profile

import (
	"fmt"
	"io"

	"gscalar/internal/kernel"
	"gscalar/internal/warp"
)

// TraceOptions filters the instruction trace.
type TraceOptions struct {
	MaxEvents int  // stop after this many trace lines (0 = 10000)
	OnlyCTA   int  // trace only this CTA (-1 = all)
	OnlyWarp  int  // trace only this warp within its CTA (-1 = all)
	Divergent bool // trace only divergent instructions
}

// Trace functionally executes the launch, writing one line per dynamic
// warp instruction to w:
//
//	cta warp pc | active-mask | instruction | dst=value(s)
//
// Uniform destination vectors print once; non-uniform ones print the first
// few lanes. Trace is the instruction-level companion to the aggregate
// profiler and is intended for debugging kernels and the simulator itself.
func Trace(out io.Writer, prog *kernel.Program, lc *kernel.LaunchConfig, mem *kernel.Memory, opt TraceOptions) error {
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 10000
	}
	events := 0
	for cta := 0; cta < lc.Grid.Count(); cta++ {
		if opt.OnlyCTA >= 0 && cta != opt.OnlyCTA {
			continue
		}
		warps := warp.BuildCTA(prog, lc, cta, 32, 0)
		ctx := &warp.Context{
			Prog: prog, Launch: lc, Global: mem,
			Shared: make([]uint32, (lc.SharedBytes+3)/4),
		}
		for {
			progress, allDone := false, true
			atBarrier, live := 0, 0
			for _, w := range warps {
				switch w.Status() {
				case warp.StatusDone:
					continue
				case warp.StatusBarrier:
					allDone = false
					atBarrier++
					live++
					continue
				}
				allDone = false
				live++
				for w.Status() == warp.StatusReady {
					o, err := w.Execute(ctx)
					if err != nil {
						return err
					}
					progress = true
					if opt.OnlyWarp >= 0 && w.ID != opt.OnlyWarp {
						continue
					}
					if opt.Divergent && !o.Divergent {
						continue
					}
					writeEvent(out, cta, w, &o)
					if events++; events >= opt.MaxEvents {
						fmt.Fprintf(out, "... trace truncated at %d events\n", opt.MaxEvents)
						return nil
					}
				}
			}
			if allDone {
				break
			}
			if atBarrier == live && atBarrier > 0 {
				for _, w := range warps {
					if w.Status() == warp.StatusBarrier {
						w.ClearBarrier()
					}
				}
				progress = true
			}
			if !progress {
				return fmt.Errorf("profile: barrier deadlock in %s", prog.Name)
			}
		}
	}
	return nil
}

func writeEvent(out io.Writer, cta int, w *warp.Warp, o *warp.Outcome) {
	div := " "
	if o.Divergent {
		div = "D"
	}
	fmt.Fprintf(out, "cta%-3d w%-2d pc%-4d %s %s  %-30s", cta, w.ID, o.PC, div,
		maskBrief(o.Active, w.Width), o.Inst.String())
	if o.DstReg >= 0 {
		fmt.Fprintf(out, "  r%d=%s", o.DstReg, vecBrief(o.DstVec, o.Active))
	}
	fmt.Fprintln(out)
}

// maskBrief renders an active mask compactly: "full", a count, or hex.
func maskBrief(m warp.Mask, width int) string {
	if m == warp.FullMask(width) {
		return "[full]"
	}
	return fmt.Sprintf("[%2d/%d %0*x]", warp.PopCount(m), width, (width+3)/4, m)
}

// vecBrief renders a destination vector: a single value if uniform over the
// active lanes, else the first active lanes.
func vecBrief(vec []uint32, active warp.Mask) string {
	var first uint32
	uniform := true
	n := 0
	for lane := 0; lane < len(vec); lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		if n == 0 {
			first = vec[lane]
		} else if vec[lane] != first {
			uniform = false
		}
		n++
	}
	if n == 0 {
		return "(no lanes)"
	}
	if uniform {
		return fmt.Sprintf("%#x (uniform)", first)
	}
	s := ""
	shown := 0
	for lane := 0; lane < len(vec) && shown < 4; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		if shown > 0 {
			s += ","
		}
		s += fmt.Sprintf("%#x", vec[lane])
		shown++
	}
	return s + ",..."
}
