package profile

import (
	"strings"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

const traceSrc = `
.kernel t
	mov r1, %tid.x
	isetp.lt p0, r1, 16
	@p0 bra A
	mov r2, 5
	bra J
A:
	mov r2, 9
J:
	iadd r3, r2, 1
	exit
`

func traceSetup(t *testing.T) (*kernel.Program, *kernel.LaunchConfig, *kernel.Memory) {
	t.Helper()
	prog, err := asm.Assemble(traceSrc)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 2, Y: 1}, Block: kernel.Dim{X: 64, Y: 1}}
	return prog, lc, kernel.NewMemory()
}

func TestTraceBasic(t *testing.T) {
	prog, lc, mem := traceSetup(t)
	var b strings.Builder
	if err := Trace(&b, prog, lc, mem, TraceOptions{OnlyCTA: -1, OnlyWarp: -1}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[full]") {
		t.Error("no full-mask events")
	}
	if !strings.Contains(out, "D [16/32") {
		t.Errorf("no divergent 16-lane events:\n%s", firstLines(out, 12))
	}
	// Uniform destination rendering.
	if !strings.Contains(out, "(uniform)") {
		t.Error("no uniform destination annotation")
	}
	// Both CTAs appear.
	if !strings.Contains(out, "cta0") || !strings.Contains(out, "cta1") {
		t.Error("missing CTA coverage")
	}
}

func TestTraceFilters(t *testing.T) {
	prog, lc, mem := traceSetup(t)
	var b strings.Builder
	if err := Trace(&b, prog, lc, mem, TraceOptions{OnlyCTA: 1, OnlyWarp: 0, Divergent: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "cta0") {
		t.Error("CTA filter leaked")
	}
	if strings.Contains(out, " w1 ") {
		t.Error("warp filter leaked")
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(line, " D ") {
			t.Errorf("non-divergent line under Divergent filter: %q", line)
		}
	}
}

func TestTraceTruncation(t *testing.T) {
	prog, lc, mem := traceSetup(t)
	var b strings.Builder
	if err := Trace(&b, prog, lc, mem, TraceOptions{MaxEvents: 5, OnlyCTA: -1, OnlyWarp: -1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "truncated at 5") {
		t.Errorf("no truncation marker:\n%s", b.String())
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
