// Package profile provides a functional (untimed) kernel profiler: per-PC
// dynamic execution counts, lane-activity, value-uniformity sampling and
// static classification, rendered as an annotated listing. It is the
// debugging companion to the timing simulator — fast enough to run on every
// kernel iteration while tuning workloads.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"gscalar/internal/asm"
	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
	"gscalar/internal/warp"
)

// PC aggregates the dynamic behaviour of one static instruction.
type PC struct {
	Execs        uint64 // dynamic executions (warp instructions)
	Lanes        uint64 // sum of active lanes
	Divergent    uint64 // executions with a partial warp
	ValueUniform uint64 // executions whose register sources were value-uniform
}

// Profile is the result of profiling one launch.
type Profile struct {
	Prog        *kernel.Program
	PCs         []PC
	WarpInsts   uint64
	ThreadInsts uint64
	Static      *asm.StaticAnalysis
}

// Run executes the launch functionally, collecting per-PC statistics.
// maxInsts bounds runaway kernels (0 = large default).
func Run(prog *kernel.Program, lc *kernel.LaunchConfig, mem *kernel.Memory, maxInsts uint64) (*Profile, error) {
	if maxInsts == 0 {
		maxInsts = 1 << 32
	}
	p := &Profile{
		Prog:   prog,
		PCs:    make([]PC, prog.Len()),
		Static: asm.Analyze(prog),
	}
	for cta := 0; cta < lc.Grid.Count(); cta++ {
		warps := warp.BuildCTA(prog, lc, cta, 32, 0)
		ctx := &warp.Context{
			Prog: prog, Launch: lc, Global: mem,
			Shared: make([]uint32, (lc.SharedBytes+3)/4),
		}
		if err := p.runCTA(ctx, warps, maxInsts); err != nil {
			return nil, fmt.Errorf("profile: cta %d: %w", cta, err)
		}
	}
	return p, nil
}

func (p *Profile) runCTA(ctx *warp.Context, warps []*warp.Warp, maxInsts uint64) error {
	for {
		progress, allDone := false, true
		atBarrier, live := 0, 0
		for _, w := range warps {
			switch w.Status() {
			case warp.StatusDone:
				continue
			case warp.StatusBarrier:
				allDone = false
				atBarrier++
				live++
				continue
			}
			allDone = false
			live++
			for w.Status() == warp.StatusReady {
				pc, in, active, ok := w.Peek(ctx)
				if !ok {
					break
				}
				uniform := false
				if in.Class() != isa.ClassCtrl {
					uniform = core.ValueScalarOracle(in, active, func(r uint8) []uint32 {
						return w.RegVec(r)
					})
				}
				out, err := w.Execute(ctx)
				if err != nil {
					return err
				}
				rec := &p.PCs[pc]
				rec.Execs++
				rec.Lanes += uint64(warp.PopCount(out.Active))
				if out.Divergent {
					rec.Divergent++
				}
				if uniform {
					rec.ValueUniform++
				}
				p.WarpInsts++
				p.ThreadInsts += uint64(warp.PopCount(out.Active))
				if p.WarpInsts > maxInsts {
					return fmt.Errorf("instruction budget %d exceeded", maxInsts)
				}
				progress = true
			}
		}
		if allDone {
			return nil
		}
		if atBarrier == live && atBarrier > 0 {
			for _, w := range warps {
				if w.Status() == warp.StatusBarrier {
					w.ClearBarrier()
				}
			}
			progress = true
		}
		if !progress {
			return fmt.Errorf("barrier deadlock (%d/%d warps waiting)", atBarrier, live)
		}
	}
}

// Hot returns the n most-executed PCs, descending.
func (p *Profile) Hot(n int) []int {
	idx := make([]int, len(p.PCs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.PCs[idx[a]].Execs > p.PCs[idx[b]].Execs })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// Listing renders an annotated assembly listing: execution count, average
// active lanes, divergence and value-uniformity fractions, and the static
// analysis verdict per instruction.
func (p *Profile) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d warp-insts, %d thread-insts\n", p.Prog.Name, p.WarpInsts, p.ThreadInsts)
	fmt.Fprintf(&b, "%5s  %10s  %5s  %5s  %5s  %-6s  %s\n",
		"pc", "execs", "lanes", "div%", "uni%", "static", "instruction")
	for pc := 0; pc < p.Prog.Len(); pc++ {
		rec := p.PCs[pc]
		lanes, div, uni := 0.0, 0.0, 0.0
		if rec.Execs > 0 {
			lanes = float64(rec.Lanes) / float64(rec.Execs)
			div = 100 * float64(rec.Divergent) / float64(rec.Execs)
			uni = 100 * float64(rec.ValueUniform) / float64(rec.Execs)
		}
		static := "-"
		switch {
		case p.Static.UniformInst[pc]:
			static = "unif"
		case p.Static.Divergent[pc]:
			static = "div"
		}
		fmt.Fprintf(&b, "%5d  %10d  %5.1f  %4.0f%%  %4.0f%%  %-6s  %s\n",
			pc, rec.Execs, lanes, div, uni, static, p.Prog.At(pc).String())
	}
	return b.String()
}

// Summary returns aggregate fractions matching the Figure 1/9 metrics.
type Summary struct {
	FracDivergent     float64
	FracValueUniform  float64
	FracStaticUniform float64 // dynamic instructions a compiler could scalarise
}

// Summarise computes the aggregate metrics.
func (p *Profile) Summarise() Summary {
	var div, uni, stat uint64
	for pc, rec := range p.PCs {
		div += rec.Divergent
		uni += rec.ValueUniform
		if p.Static.UniformInst[pc] {
			stat += rec.Execs
		}
	}
	t := float64(p.WarpInsts)
	if t == 0 {
		t = 1
	}
	return Summary{
		FracDivergent:     float64(div) / t,
		FracValueUniform:  float64(uni) / t,
		FracStaticUniform: float64(stat) / t,
	}
}
