package profile

import (
	"strings"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

func TestProfileCountsAndListing(t *testing.T) {
	prog, err := asm.Assemble(`
.kernel prof
	mov r1, %tid.x
	mov r2, 0
LOOP:
	iadd r2, r2, 1
	isetp.lt p0, r2, 4
	@p0 bra LOOP
	and r3, r1, 1
	isetp.eq p1, r3, 0
	@p1 bra EVEN
	imul r4, r1, 3
	bra J
EVEN:
	iadd r4, r1, 7
J:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 2, Y: 1}, Block: kernel.Dim{X: 64, Y: 1}}
	p, err := Run(prog, lc, kernel.NewMemory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 warps total; the loop body executes 4x per warp.
	if got := p.PCs[2].Execs; got != 16 {
		t.Errorf("loop body execs = %d, want 16", got)
	}
	// The loop counter increments are value-uniform.
	if p.PCs[2].ValueUniform != p.PCs[2].Execs {
		t.Errorf("loop counter not value-uniform: %+v", p.PCs[2])
	}
	// The even/odd sides run divergently with 32 of 64... lanes split per
	// warp of 32: 16 active each.
	if p.PCs[8].Divergent != p.PCs[8].Execs {
		t.Errorf("branch side not divergent: %+v", p.PCs[8])
	}
	if lanes := float64(p.PCs[8].Lanes) / float64(p.PCs[8].Execs); lanes != 16 {
		t.Errorf("branch side lanes = %v, want 16", lanes)
	}

	lst := p.Listing()
	if !strings.Contains(lst, "prof") || !strings.Contains(lst, "imul") {
		t.Errorf("listing incomplete:\n%s", lst)
	}

	sum := p.Summarise()
	if sum.FracDivergent <= 0 || sum.FracDivergent >= 1 {
		t.Errorf("divergent frac = %v", sum.FracDivergent)
	}
	if sum.FracValueUniform <= 0 {
		t.Errorf("uniform frac = %v", sum.FracValueUniform)
	}
	// The static analysis can only claim a subset of the dynamic truth.
	if sum.FracStaticUniform > sum.FracValueUniform+1e-9 {
		t.Errorf("static %v exceeds dynamic %v", sum.FracStaticUniform, sum.FracValueUniform)
	}

	hot := p.Hot(3)
	if len(hot) != 3 || p.PCs[hot[0]].Execs < p.PCs[hot[1]].Execs {
		t.Errorf("hot list broken: %v", hot)
	}
}

func TestProfileRunawayGuard(t *testing.T) {
	prog, err := asm.Assemble("LOOP:\nbra LOOP\n")
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	if _, err := Run(prog, lc, kernel.NewMemory(), 100); err == nil {
		t.Fatal("expected budget error")
	}
}
