// Package sm implements the streaming-multiprocessor timing model: dual
// greedy-then-oldest warp schedulers, a scoreboard (no data bypassing),
// operand collectors arbitrating over 16 register banks, the three SIMT
// execution pipelines (2×16-lane ALU, 16-lane MEM, 4-lane SFU), the
// writeback stage with the compression encoder, and the architecture
// overlays the paper evaluates (baseline, prior scalar-RF, Warped-
// Compression/BDI, and G-Scalar).
package sm

import (
	"gscalar/internal/core"
	"gscalar/internal/power"
)

// RVCKind selects the register-value-compression scheme.
type RVCKind uint8

// Compression schemes.
const (
	RVCNone     RVCKind = iota
	RVCByteWise         // the paper's byte-wise technique (§3)
	RVCBDI              // Warped-Compression's BDI (Figure 12 "W-C")
)

// ScalarKind selects the scalar-execution mechanism.
type ScalarKind uint8

// Scalar mechanisms.
const (
	ScalarNone    ScalarKind = iota
	ScalarPriorRF            // Gilani et al.: non-divergent ALU only, single scalar bank
	ScalarGS                 // G-Scalar, parameterised by core.Features
)

// Arch is the architecture overlay an SM simulates.
type Arch struct {
	RVC    RVCKind
	Scalar ScalarKind
	F      core.Features // compression/scalar feature detail for RVCByteWise/ScalarGS
	// ExtraLatency is the added pipeline depth (3 cycles for compressing
	// architectures, §5.1).
	ExtraLatency int
	// CompilerMoveElision enables §3.3's compiler-assisted optimisation:
	// decompressing moves are not injected before divergent writes whose
	// previous register value is provably dead (liveness analysis at
	// assembly time). The paper estimates this lowers the ~2 % move
	// overhead further.
	CompilerMoveElision bool
}

// HasCodec reports whether the architecture carries the compressor/
// decompressor structures (for static power).
func (a Arch) HasCodec() bool { return a.RVC != RVCNone }

// Baseline returns the unmodified GPU.
func Baseline() Arch { return Arch{} }

// PriorScalarRF returns the "ALU scalar" comparator: scalar register file,
// non-divergent ALU scalar execution only, no compression, no added
// latency.
func PriorScalarRF() Arch { return Arch{Scalar: ScalarPriorRF} }

// WarpedCompression returns the BDI register-compression comparator
// (no scalar execution).
func WarpedCompression() Arch {
	return Arch{RVC: RVCBDI, ExtraLatency: power.ExtraPipelineCycles}
}

// RVCOnly returns the paper's byte-wise compression without scalar
// execution (the Figure 12 "ours" RF technique).
func RVCOnly() Arch {
	return Arch{
		RVC:          RVCByteWise,
		F:            core.Features{Compression: true, HalfCompression: true},
		ExtraLatency: power.ExtraPipelineCycles,
	}
}

// GScalar returns the full G-Scalar architecture.
func GScalar() Arch {
	return Arch{
		RVC:          RVCByteWise,
		Scalar:       ScalarGS,
		F:            core.GScalarFeatures(),
		ExtraLatency: power.ExtraPipelineCycles,
	}
}

// GScalarCompilerAssist returns G-Scalar with the §3.3 compiler-assisted
// dead-value move elision enabled.
func GScalarCompilerAssist() Arch {
	a := GScalar()
	a.CompilerMoveElision = true
	return a
}

// GScalarNoDiv returns G-Scalar without divergent/half-warp scalar
// execution (Figure 11 "G-Scalar w/o divergent").
func GScalarNoDiv() Arch {
	return Arch{
		RVC:          RVCByteWise,
		Scalar:       ScalarGS,
		F:            core.GScalarNoDivFeatures(),
		ExtraLatency: power.ExtraPipelineCycles,
	}
}

// SchedPolicy selects the warp-scheduling policy.
type SchedPolicy uint8

// Scheduling policies.
const (
	// SchedGTO is greedy-then-oldest (the GPGPU-Sim default the paper's
	// configuration uses): keep issuing from the last warp, fall back to
	// the oldest ready warp.
	SchedGTO SchedPolicy = iota
	// SchedLRR is loose round-robin: rotate through ready warps.
	SchedLRR
)

// Config holds the SM's structural parameters (Table 1).
type Config struct {
	WarpSize      int // threads per warp
	Schedulers    int // warp schedulers per SM
	MaxWarps      int // resident warps per SM
	MaxCTAs       int // resident CTAs per SM
	NumBanks      int // register-file banks
	NumCollectors int // operand collectors
	ALUUnits      int // number of ALU pipelines
	ALUWidth      int // lanes per ALU pipeline
	MemWidth      int // lanes of the memory pipeline
	SFUWidth      int // lanes of the SFU pipeline
	L1Bytes       int
	L1Assoc       int
	MaxMSHRs      int // outstanding global transactions per SM
	// Sched selects the warp scheduling policy (default: GTO).
	Sched SchedPolicy
	// RegFileBytes caps resident warps by register usage, like real
	// hardware: a CTA only launches if its warps' architectural registers
	// fit (Table 1: 128 KB per SM).
	RegFileBytes int
}

// DefaultConfig returns the GTX-480-like SM of Table 1.
func DefaultConfig() Config {
	return Config{
		WarpSize:      32,
		Schedulers:    2,
		MaxWarps:      48,
		MaxCTAs:       8,
		NumBanks:      16,
		NumCollectors: 16,
		ALUUnits:      2,
		ALUWidth:      16,
		MemWidth:      16,
		SFUWidth:      4,
		L1Bytes:       16 << 10,
		L1Assoc:       4,
		MaxMSHRs:      48,
		RegFileBytes:  128 << 10,
	}
}
