package sm

import (
	"fmt"

	"gscalar/internal/asm"
	"gscalar/internal/baseline"
	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/regfile"
	"gscalar/internal/stats"
	"gscalar/internal/warp"
)

// basePipeDepth is the issue-to-writeback overhead of the baseline pipeline
// in cycles, on top of the per-opcode execution latency.
const basePipeDepth = 6

// NoEvent is returned by NextEventCycle when the SM is idle and places no
// constraint on how far the chip loop may fast-forward.
const NoEvent = ^uint64(0)

// collectorEntry is one operand collector: an issued instruction gathering
// its source operands. class/latency/occMul are copied from the program's
// per-PC metadata at issue so dispatch never re-decodes the instruction;
// addrBuf is the collector's resident address scratch — the warp's
// address-generation stage writes into it via Context.AddrScratch, and it
// stays valid until dispatch coalesces it. lines is the entry's resident
// coalesced-transaction buffer: the line list is computed once on the first
// dispatch attempt (linesOK), so retry cycles — unit busy, MSHRs full — do
// not re-coalesce the access.
type collectorEntry struct {
	valid       bool
	linesOK     bool
	wi          int
	out         warp.Outcome
	elig        core.Eligibility
	srfScalar   bool
	isMove      bool
	moveReg     uint8
	predUniform bool
	class       isa.Class
	latency     uint16
	occMul      uint8
	reads       []regfile.Access
	addrBuf     []uint32
	lines       []uint32
}

// wbEvent is a scheduled completion (writeback) of a dispatched instruction.
type wbEvent struct {
	done        uint64
	wi          int
	out         warp.Outcome
	elig        core.Eligibility
	srfScalar   bool
	isMove      bool
	moveReg     uint8
	predUniform bool
	mshrs       int // outstanding-load transactions to release
}

// ctaSlot tracks one resident CTA. arrived counts its live warps currently
// waiting at bar.sync, maintained incrementally at barrier arrival and
// release so the per-cycle release check is a comparison, not a scan.
type ctaSlot struct {
	active    bool
	ctaID     int
	shared    []uint32
	warpSlots []int
	liveWarps int
	arrived   int
}

// warpCtx bundles a warp with its per-architecture register state.
type warpCtx struct {
	valid     bool
	done      bool
	w         *warp.Warp
	ctx       warp.Context
	meta      *core.WarpRegs
	srf       *baseline.ScalarRF
	bdi       *baseline.BDIRegFile
	pendRegs  uint64
	pendPreds uint8
	ctaSlot   int
	// freeWhenDrained marks a slot whose CTA finished while writebacks were
	// still in flight; the slot is recycled once they drain.
	freeWhenDrained bool
	// ready mirrors "this warp might issue": valid, not done, not at a
	// barrier, not scoreboard-stalled. The SM counts ready warps so the
	// issue stage can be skipped entirely on stall-only cycles.
	ready bool
	// scoreStalled records a scoreboard (RAW/WAW) stall. A warp's hazard
	// state depends only on its own pending registers and its static next
	// instruction, so the stall can only clear when one of the warp's own
	// writebacks completes — which is exactly where it is cleared.
	scoreStalled bool
	// regVec is w.RegVec bound once at launch, so the divergence oracle
	// does not allocate a closure per divergent instruction.
	regVec func(uint8) []uint32
}

// lineFill tracks one in-flight L1 line fill (see SM.fills).
type lineFill struct {
	line uint32
	done uint64
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	cfg  Config
	arch Arch
	en   power.Energies

	prog   *kernel.Program
	launch *kernel.LaunchConfig
	gmem   *kernel.Memory
	msys   *mem.System
	l1     *mem.Cache
	meter  *power.Meter
	st     stats.Sim

	warps      []warpCtx
	ctas       []ctaSlot
	collectors []collectorEntry
	// collFree tracks free operand collectors as a bitmask (bit i = entry i
	// free) for the first 64 entries, so allocation is a trailing-zero count
	// instead of a scan; rarer larger configurations fall back to scanning.
	collFree uint64
	// Unit indices: 0..ALUUnits-1 are ALU pipelines, then MEM, then SFU.
	unitBusy []uint64
	events   []wbEvent
	// regArena backs every resident warp's lane storage (registers + thread
	// coordinates) in one flat per-SM slice; chunks are recycled when warp
	// slots are released, so mid-run CTA launches allocate nothing. laneAlloc
	// is regArena.Alloc bound once so launches do not allocate a closure.
	regArena  *regfile.Arena
	laneAlloc func(words int) []uint32

	// Phased (parallel) mode: Cycle defers every access to shared chip
	// state — L2/DRAM transactions and global-memory stores — into pending
	// and storeBuf, and CommitShared drains them serially. phased is false
	// in the legacy serial mode, where Cycle touches msys and gmem directly.
	phased   bool
	pending  []pendingAccess
	storeBuf *kernel.StoreBuffer
	// txBuf backs the deferred transactions of all pendingAccess entries of
	// the current cycle (each holds an index range), so deferral allocates
	// nothing in steady state.
	txBuf []pendingTx

	// Relaxed (epoch) mode: dispatchMem estimates beyond-L1 completion times
	// against the frozen shared memory system (mem.System.EstimateAccess) and
	// defers the actual transactions into epochTx; CommitEpoch applies them —
	// and flushes the store buffer — at the epoch rendezvous, serially in
	// ascending SM-id order across the chip. commitTx is the per-transaction
	// stats/energy callback bound once at EnableRelaxed so commits do not
	// allocate a closure per epoch.
	relaxed  bool
	epochTx  mem.TxBuffer
	commitTx func(mem.AccessKind)

	outstanding   int
	regBytesInUse int
	deadOnWrite   []bool // §3.3 compiler-assisted elision table
	// fills tracks in-flight L1 line fills so that a second access to a
	// line already being fetched merges into the outstanding fill (MSHR
	// merging) instead of observing an instant hit. It is a small linear
	// slice (bounded by the MSHR count once landed fills are pruned), which
	// beats a map both in scan cost and in iteration determinism.
	fills      []lineFill
	lastIssued []int
	liveWarps  int
	now        uint64

	// Incremental occupancy counters: each pipeline stage is skipped when
	// its counter says it has no work, which is what makes stall-heavy
	// cycles cheap and lets NextEventCycle recognise quiescence in O(1).
	liveCollectors int  // valid operand-collector entries
	readyWarps     int  // warps with ready set
	barrierCheck   bool // a barrier arrival/retire may have released a CTA
	nextWb         uint64
	// nextWb caches min(events[i].done) (NoEvent when none) so writeback
	// processing — and the chip loop's idle-skip target — needs no scan.

	wbScratch   []wbEvent // processWritebacks reuse
	candScratch []int     // issueFrom candidate snapshot reuse

	// schedWarps[sched] lists the valid, not-done warp slots of scheduler
	// sched in ascending warp GlobalID order — the GTO age order — so the
	// issue stage walks a pre-sorted list instead of sorting per cycle.
	schedWarps [][]int

	rf *regfile.File // per-cycle bank/port arbitration

	// execTrace, when non-nil, observes every warp-instruction execution
	// (trace capture). The hot path pays only a nil check; the hook itself
	// runs off-path and may allocate. Serial chip loop only — the phased and
	// relaxed loops never set it, so warp executions reaching the hook are
	// totally ordered.
	execTrace func(smID, warpGlobalID int, out *warp.Outcome)

	err error
}

// SetExecTrace installs (or clears, with nil) the per-instruction execution
// observer. It must be set before the first Cycle and never changed mid-run.
func (s *SM) SetExecTrace(fn func(smID, warpGlobalID int, out *warp.Outcome)) {
	s.execTrace = fn
}

// New constructs an SM.
func New(id int, cfg Config, arch Arch, en power.Energies, prog *kernel.Program,
	launch *kernel.LaunchConfig, gmem *kernel.Memory, msys *mem.System, meter *power.Meter) *SM {
	s := &SM{
		ID:     id,
		cfg:    cfg,
		arch:   arch,
		en:     en,
		prog:   prog,
		launch: launch,
		gmem:   gmem,
		msys:   msys,
		l1:     mem.NewCache(cfg.L1Bytes, cfg.L1Assoc),
		meter:  meter,
		nextWb: NoEvent,
	}
	// Assembled programs arrive with the per-PC decode cache built; hand-
	// constructed ones get it here. New always runs before any concurrent
	// phase, so this is safe for the parallel loop too.
	prog.BuildMeta()
	s.warps = make([]warpCtx, cfg.MaxWarps)
	s.ctas = make([]ctaSlot, cfg.MaxCTAs)
	s.collectors = make([]collectorEntry, cfg.NumCollectors)
	for i := range s.collectors {
		s.collectors[i].addrBuf = make([]uint32, cfg.WarpSize)
	}
	if cfg.NumCollectors >= 64 {
		s.collFree = ^uint64(0)
	} else {
		s.collFree = (uint64(1) << cfg.NumCollectors) - 1
	}
	s.regArena = regfile.NewArena(cfg.MaxWarps * warp.StorageWords(prog.NumRegs, cfg.WarpSize))
	s.laneAlloc = s.regArena.Alloc
	s.unitBusy = make([]uint64, cfg.ALUUnits+2)
	s.lastIssued = make([]int, cfg.Schedulers)
	for i := range s.lastIssued {
		s.lastIssued[i] = -1
	}
	s.schedWarps = make([][]int, cfg.Schedulers)
	s.rf = regfile.New(cfg.NumBanks)
	if arch.CompilerMoveElision && arch.RVC == RVCByteWise {
		s.deadOnWrite = asm.DeadOnWrite(prog)
	}
	return s
}

// EnablePhased switches the SM into phased mode for parallel simulation:
// Cycle becomes a pure compute phase free of shared-state writes, and the
// caller must invoke CommitShared after each cycle (serially, in ascending
// SM-id order across the chip) to apply deferred L2/DRAM transactions and
// global stores. Must be called before the first LaunchCTA.
func (s *SM) EnablePhased() {
	s.phased = true
	s.storeBuf = &kernel.StoreBuffer{}
}

// EnableRelaxed switches the SM into relaxed epoch mode for epoch-parallel
// simulation: Cycle runs against a frozen shared memory system (estimated
// beyond-L1 latencies, deferred transactions, buffered global stores with a
// read-through overlay for same-SM visibility), and the caller must invoke
// CommitEpoch at each epoch rendezvous (serially, in ascending SM-id order
// across the chip). Must be called before the first LaunchCTA.
func (s *SM) EnableRelaxed() {
	s.relaxed = true
	s.storeBuf = &kernel.StoreBuffer{}
	s.storeBuf.EnableOverlay()
	s.commitTx = func(kind mem.AccessKind) {
		s.st.L2Accesses++
		s.meter.AddN(power.CompNoC, mem.LineSize, s.en.NoCPerByte)
		s.meter.Add(power.CompL2, s.en.L2Access)
		if kind == mem.AccessDRAM {
			s.st.L2Misses++
			s.st.DRAMTransactions++
			s.meter.AddN(power.CompDRAM, mem.LineSize, s.en.DRAMPerByte)
		}
	}
}

// RunEpoch advances the SM from cycle start up to (but not including) end,
// skipping idle stretches locally via the NextEventCycle contract, and
// returns the SM's stop cycle: one past the last cycle it actually stepped
// (start if it stepped none). The chip loop takes the max stop cycle of the
// final epoch as the run's cycle count, so epoch rounding never inflates it.
// A deadlocked SM (NextEventCycle refuses to skip with no events pending)
// steps its cheap no-op cycles one by one, so the chip-level MaxCycles bound
// trips exactly as it would cycle by cycle.
func (s *SM) RunEpoch(start, end uint64) uint64 {
	stop := start
	for c := start; c < end; {
		if s.err != nil {
			return stop
		}
		if next, ok := s.NextEventCycle(); ok {
			if next >= end { // covers NoEvent
				return stop
			}
			if next > c {
				c = next
			}
		}
		s.Cycle(c)
		c++
		stop = c
	}
	return stop
}

// CommitEpoch is the serial phase of the relaxed mode: it applies the
// epoch's deferred L2/DRAM transactions to the shared memory system (in
// issue order, accounting stats and energy per transaction) and flushes
// buffered global stores into device memory. Unlike the phased mode's
// CommitShared, completion times are not fed back into writeback events —
// the SM already ran ahead on estimates; the commit's job is to evolve the
// shared state deterministically for the next epoch.
func (s *SM) CommitEpoch() {
	if s.epochTx.Len() > 0 {
		s.msys.CommitDeferred(&s.epochTx, s.commitTx)
	}
	if s.storeBuf.Len() > 0 {
		s.storeBuf.Flush(s.gmem)
	}
}

// Stats returns the SM's statistics accumulator.
func (s *SM) Stats() *stats.Sim { return &s.st }

// Retired returns the warp instructions this SM has committed so far. It is
// the chip loops' progress-observer sample: a plain counter read with no
// aggregation cost, safe to call between cycles (serially, or after the
// phased loop's barrier) without disturbing simulation state.
func (s *SM) Retired() uint64 { return s.st.WarpInsts }

// Err returns the first simulation error encountered, if any.
func (s *SM) Err() error { return s.err }

func (s *SM) unitMem() int { return s.cfg.ALUUnits }
func (s *SM) unitSFU() int { return s.cfg.ALUUnits + 1 }

// warpsPerCTA returns warps needed per CTA for the current launch.
func (s *SM) warpsPerCTA() int {
	return (s.launch.Block.Count() + s.cfg.WarpSize - 1) / s.cfg.WarpSize
}

// ctaRegBytes returns the register-file footprint of one CTA of the
// current launch.
func (s *SM) ctaRegBytes() int {
	return s.warpsPerCTA() * s.cfg.WarpSize * s.prog.NumRegs * 4
}

// CanTakeCTA reports whether a new CTA fits: a free CTA slot, enough warp
// slots, and enough register-file capacity.
func (s *SM) CanTakeCTA() bool {
	freeSlot := false
	for i := range s.ctas {
		if !s.ctas[i].active {
			freeSlot = true
			break
		}
	}
	if !freeSlot {
		return false
	}
	if s.cfg.RegFileBytes > 0 && s.regBytesInUse+s.ctaRegBytes() > s.cfg.RegFileBytes {
		return false
	}
	free := 0
	for i := range s.warps {
		if !s.warps[i].valid {
			free++
		}
	}
	return free >= s.warpsPerCTA()
}

// LaunchCTA instantiates CTA ctaLinear on this SM.
func (s *SM) LaunchCTA(ctaLinear int) {
	slot := -1
	for i := range s.ctas {
		if !s.ctas[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		s.fail(fmt.Errorf("sm%d: LaunchCTA with no free slot", s.ID))
		return
	}
	wpc := s.warpsPerCTA()
	ws := warp.BuildCTAStored(s.prog, s.launch, ctaLinear, s.cfg.WarpSize, ctaLinear*wpc, s.laneAlloc)
	shared := make([]uint32, (s.launch.SharedBytes+3)/4)
	cs := &s.ctas[slot]
	*cs = ctaSlot{active: true, ctaID: ctaLinear, shared: shared, liveWarps: len(ws)}
	s.regBytesInUse += s.ctaRegBytes()
	for _, w := range ws {
		wi := -1
		for i := range s.warps {
			if !s.warps[i].valid {
				wi = i
				break
			}
		}
		if wi < 0 {
			s.fail(fmt.Errorf("sm%d: no free warp slot", s.ID))
			return
		}
		wc := &s.warps[wi]
		*wc = warpCtx{
			valid: true,
			w:     w,
			ctx: warp.Context{
				Prog:     s.prog,
				Launch:   s.launch,
				Global:   s.gmem,
				Shared:   shared,
				StoreBuf: s.storeBuf,
			},
			ctaSlot: slot,
		}
		wc.meta = core.NewWarpRegs(s.prog.NumRegs, 8, s.cfg.WarpSize, w.LiveMask)
		switch {
		case s.arch.Scalar == ScalarPriorRF:
			wc.srf = baseline.NewScalarRF(s.prog.NumRegs, s.cfg.WarpSize, w.LiveMask)
		case s.arch.RVC == RVCBDI:
			wc.bdi = baseline.NewBDIRegFile(s.prog.NumRegs, s.cfg.WarpSize)
		}
		wc.regVec = w.RegVec
		wc.ready = true
		s.readyWarps++
		s.schedInsert(wi)
		cs.warpSlots = append(cs.warpSlots, wi)
		s.liveWarps++
	}
}

// Busy reports whether the SM still has work.
func (s *SM) Busy() bool {
	return s.liveWarps > 0 || len(s.events) > 0
}

// NextEventCycle reports the earliest future cycle at which this SM's
// observable state can change, for the chip loop's idle skipping. ok is
// false when the SM must be stepped cycle by cycle: a warp is ready or an
// operand collector is live (progress every cycle), or the SM is in an
// error/deadlock state the cycle-by-cycle loop is responsible for
// surfacing. Otherwise the SM is stalled waiting for writebacks — nothing
// it does before nextWb can change any state — or fully idle, in which
// case it returns NoEvent and places no constraint on the skip target.
func (s *SM) NextEventCycle() (uint64, bool) {
	if s.err != nil || s.readyWarps > 0 || s.liveCollectors > 0 {
		return 0, false
	}
	if len(s.events) == 0 {
		if s.liveWarps > 0 {
			// Live warps but no ready work and no pending writebacks: a
			// barrier deadlock. Refuse to skip so the loop's MaxCycles
			// bound trips exactly as it would cycle by cycle.
			return 0, false
		}
		return NoEvent, true
	}
	return s.nextWb, true
}

func (s *SM) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// markReady flags a warp as issuable and maintains the ready count. Warps
// that are done or parked at a barrier stay unready; barrier release is the
// one place a barrier warp becomes ready again.
func (s *SM) markReady(wi int) {
	wc := &s.warps[wi]
	if wc.ready || !wc.valid || wc.done || wc.w.Status() != warp.StatusReady {
		return
	}
	wc.ready = true
	s.readyWarps++
}

// markUnready clears a warp's ready flag and maintains the ready count.
func (s *SM) markUnready(wi int) {
	wc := &s.warps[wi]
	if wc.ready {
		wc.ready = false
		s.readyWarps--
	}
}

// schedInsert adds warp slot wi to its scheduler's issue list, keeping the
// list in ascending GlobalID (age) order.
func (s *SM) schedInsert(wi int) {
	sched := wi % s.cfg.Schedulers
	list := s.schedWarps[sched]
	gid := s.warps[wi].w.GlobalID
	pos := len(list)
	for pos > 0 && s.warps[list[pos-1]].w.GlobalID > gid {
		pos--
	}
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = wi
	s.schedWarps[sched] = list
}

// schedRemove drops warp slot wi from its scheduler's issue list.
func (s *SM) schedRemove(wi int) {
	sched := wi % s.cfg.Schedulers
	list := s.schedWarps[sched]
	for i, v := range list {
		if v == wi {
			s.schedWarps[sched] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// retireWarp marks a warp finished and releases its CTA when empty. Warp
// slots are only recycled once the whole CTA is done (so barrier accounting
// never sees a reused slot) and the slot's in-flight writebacks drained.
func (s *SM) retireWarp(wi int) {
	wc := &s.warps[wi]
	if wc.done {
		return
	}
	wc.done = true
	s.markUnready(wi)
	s.schedRemove(wi)
	s.liveWarps--
	cs := &s.ctas[wc.ctaSlot]
	cs.liveWarps--
	if cs.liveWarps == 0 {
		for _, slot := range cs.warpSlots {
			if s.hasInFlight(slot) {
				s.warps[slot].freeWhenDrained = true
			} else {
				s.regArena.Free(s.warps[slot].w.Storage())
				s.warps[slot].valid = false
			}
		}
		cs.active = false
		s.regBytesInUse -= s.ctaRegBytes()
	} else {
		// The remaining warps may all be at the barrier now.
		s.barrierCheck = true
	}
}

func (s *SM) hasInFlight(wi int) bool {
	for i := range s.events {
		if s.events[i].wi == wi {
			return true
		}
	}
	for i := range s.collectors {
		if s.collectors[i].valid && s.collectors[i].wi == wi {
			return true
		}
	}
	return false
}

// DebugState summarises the SM's occupancy for diagnostics.
func (s *SM) DebugState() string {
	validW, doneW, barrierW, drainW := 0, 0, 0, 0
	pend := 0
	for i := range s.warps {
		wc := &s.warps[i]
		if !wc.valid {
			continue
		}
		validW++
		if wc.done {
			doneW++
		} else if wc.w.Status() == warp.StatusBarrier {
			barrierW++
		}
		if wc.freeWhenDrained {
			drainW++
		}
		if wc.pendRegs != 0 || wc.pendPreds != 0 {
			pend++
		}
	}
	activeCTAs := 0
	for i := range s.ctas {
		if s.ctas[i].active {
			activeCTAs++
		}
	}
	coll := 0
	for i := range s.collectors {
		if s.collectors[i].valid {
			coll++
		}
	}
	return fmt.Sprintf("sm%d: live=%d valid=%d done=%d barrier=%d drain=%d pending=%d ctas=%d coll=%d events=%d mshr=%d",
		s.ID, s.liveWarps, validW, doneW, barrierW, drainW, pend, activeCTAs, coll, len(s.events), s.outstanding)
}

// Cycle advances the SM by one core clock at time now. Each stage runs only
// when its occupancy counter says it has work, so a fully stalled cycle
// costs four comparisons — which is also what lets the chip loop skip such
// cycles wholesale (see NextEventCycle): a cycle in which every stage is
// skipped mutates no state at all.
func (s *SM) Cycle(now uint64) {
	s.now = now
	if len(s.events) > 0 && now >= s.nextWb {
		s.processWritebacks()
	}
	if s.liveCollectors > 0 {
		s.serveCollectors()
	}
	if s.readyWarps > 0 {
		s.issue()
	}
	if s.barrierCheck {
		s.releaseBarriers()
	}
}

// releaseBarriers frees CTAs whose live warps have all arrived at bar.sync.
// It runs only on cycles flagged by a barrier arrival or a warp retirement —
// the only transitions that can complete a barrier.
func (s *SM) releaseBarriers() {
	s.barrierCheck = false
	for ci := range s.ctas {
		cs := &s.ctas[ci]
		if !cs.active || cs.liveWarps == 0 || cs.arrived != cs.liveWarps {
			continue
		}
		for _, wi := range cs.warpSlots {
			wc := &s.warps[wi]
			if !wc.done && wc.w.Status() == warp.StatusBarrier {
				wc.w.ClearBarrier()
				s.markReady(wi)
			}
		}
		cs.arrived = 0
	}
}
