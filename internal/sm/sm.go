package sm

import (
	"fmt"

	"gscalar/internal/asm"
	"gscalar/internal/baseline"
	"gscalar/internal/core"
	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/regfile"
	"gscalar/internal/stats"
	"gscalar/internal/warp"
)

// basePipeDepth is the issue-to-writeback overhead of the baseline pipeline
// in cycles, on top of the per-opcode execution latency.
const basePipeDepth = 6

// collectorEntry is one operand collector: an issued instruction gathering
// its source operands.
type collectorEntry struct {
	valid       bool
	wi          int
	out         warp.Outcome
	elig        core.Eligibility
	srfScalar   bool
	isMove      bool
	moveReg     uint8
	predUniform bool
	reads       []regfile.Access
}

// wbEvent is a scheduled completion (writeback) of a dispatched instruction.
type wbEvent struct {
	done        uint64
	wi          int
	out         warp.Outcome
	elig        core.Eligibility
	srfScalar   bool
	isMove      bool
	moveReg     uint8
	predUniform bool
	mshrs       int // outstanding-load transactions to release
}

// ctaSlot tracks one resident CTA.
type ctaSlot struct {
	active    bool
	ctaID     int
	shared    []uint32
	warpSlots []int
	liveWarps int
}

// warpCtx bundles a warp with its per-architecture register state.
type warpCtx struct {
	valid     bool
	done      bool
	w         *warp.Warp
	ctx       warp.Context
	meta      *core.WarpRegs
	srf       *baseline.ScalarRF
	bdi       *baseline.BDIRegFile
	pendRegs  uint64
	pendPreds uint8
	ctaSlot   int
	// freeWhenDrained marks a slot whose CTA finished while writebacks were
	// still in flight; the slot is recycled once they drain.
	freeWhenDrained bool
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	cfg  Config
	arch Arch
	en   power.Energies

	prog   *kernel.Program
	launch *kernel.LaunchConfig
	gmem   *kernel.Memory
	msys   *mem.System
	l1     *mem.Cache
	meter  *power.Meter
	st     stats.Sim

	warps      []warpCtx
	ctas       []ctaSlot
	collectors []collectorEntry
	// Unit indices: 0..ALUUnits-1 are ALU pipelines, then MEM, then SFU.
	unitBusy []uint64
	events   []wbEvent

	// Phased (parallel) mode: Cycle defers every access to shared chip
	// state — L2/DRAM transactions and global-memory stores — into pending
	// and storeBuf, and CommitShared drains them serially. phased is false
	// in the legacy serial mode, where Cycle touches msys and gmem directly.
	phased   bool
	pending  []pendingAccess
	storeBuf *kernel.StoreBuffer

	outstanding   int
	regBytesInUse int
	deadOnWrite   []bool // §3.3 compiler-assisted elision table
	// fills tracks in-flight L1 line fills so that a second access to a
	// line already being fetched merges into the outstanding fill (MSHR
	// merging) instead of observing an instant hit.
	fills            map[uint32]uint64
	scalarBankFreeAt uint64
	lastIssued       []int
	liveWarps        int
	now              uint64

	rf *regfile.File // per-cycle bank/port arbitration

	err error
}

// New constructs an SM.
func New(id int, cfg Config, arch Arch, en power.Energies, prog *kernel.Program,
	launch *kernel.LaunchConfig, gmem *kernel.Memory, msys *mem.System, meter *power.Meter) *SM {
	s := &SM{
		ID:     id,
		cfg:    cfg,
		arch:   arch,
		en:     en,
		prog:   prog,
		launch: launch,
		gmem:   gmem,
		msys:   msys,
		l1:     mem.NewCache(cfg.L1Bytes, cfg.L1Assoc),
		meter:  meter,
	}
	s.warps = make([]warpCtx, cfg.MaxWarps)
	s.ctas = make([]ctaSlot, cfg.MaxCTAs)
	s.collectors = make([]collectorEntry, cfg.NumCollectors)
	s.unitBusy = make([]uint64, cfg.ALUUnits+2)
	s.lastIssued = make([]int, cfg.Schedulers)
	for i := range s.lastIssued {
		s.lastIssued[i] = -1
	}
	s.rf = regfile.New(cfg.NumBanks)
	s.fills = make(map[uint32]uint64)
	if arch.CompilerMoveElision && arch.RVC == RVCByteWise {
		s.deadOnWrite = asm.DeadOnWrite(prog)
	}
	return s
}

// EnablePhased switches the SM into phased mode for parallel simulation:
// Cycle becomes a pure compute phase free of shared-state writes, and the
// caller must invoke CommitShared after each cycle (serially, in ascending
// SM-id order across the chip) to apply deferred L2/DRAM transactions and
// global stores. Must be called before the first LaunchCTA.
func (s *SM) EnablePhased() {
	s.phased = true
	s.storeBuf = &kernel.StoreBuffer{}
}

// Stats returns the SM's statistics accumulator.
func (s *SM) Stats() *stats.Sim { return &s.st }

// Err returns the first simulation error encountered, if any.
func (s *SM) Err() error { return s.err }

func (s *SM) unitMem() int { return s.cfg.ALUUnits }
func (s *SM) unitSFU() int { return s.cfg.ALUUnits + 1 }

// warpsPerCTA returns warps needed per CTA for the current launch.
func (s *SM) warpsPerCTA() int {
	return (s.launch.Block.Count() + s.cfg.WarpSize - 1) / s.cfg.WarpSize
}

// ctaRegBytes returns the register-file footprint of one CTA of the
// current launch.
func (s *SM) ctaRegBytes() int {
	return s.warpsPerCTA() * s.cfg.WarpSize * s.prog.NumRegs * 4
}

// CanTakeCTA reports whether a new CTA fits: a free CTA slot, enough warp
// slots, and enough register-file capacity.
func (s *SM) CanTakeCTA() bool {
	freeSlot := false
	for i := range s.ctas {
		if !s.ctas[i].active {
			freeSlot = true
			break
		}
	}
	if !freeSlot {
		return false
	}
	if s.cfg.RegFileBytes > 0 && s.regBytesInUse+s.ctaRegBytes() > s.cfg.RegFileBytes {
		return false
	}
	free := 0
	for i := range s.warps {
		if !s.warps[i].valid {
			free++
		}
	}
	return free >= s.warpsPerCTA()
}

// LaunchCTA instantiates CTA ctaLinear on this SM.
func (s *SM) LaunchCTA(ctaLinear int) {
	slot := -1
	for i := range s.ctas {
		if !s.ctas[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		s.fail(fmt.Errorf("sm%d: LaunchCTA with no free slot", s.ID))
		return
	}
	wpc := s.warpsPerCTA()
	ws := warp.BuildCTA(s.prog, s.launch, ctaLinear, s.cfg.WarpSize, ctaLinear*wpc)
	shared := make([]uint32, (s.launch.SharedBytes+3)/4)
	cs := &s.ctas[slot]
	*cs = ctaSlot{active: true, ctaID: ctaLinear, shared: shared, liveWarps: len(ws)}
	s.regBytesInUse += s.ctaRegBytes()
	for _, w := range ws {
		wi := -1
		for i := range s.warps {
			if !s.warps[i].valid {
				wi = i
				break
			}
		}
		if wi < 0 {
			s.fail(fmt.Errorf("sm%d: no free warp slot", s.ID))
			return
		}
		wc := &s.warps[wi]
		*wc = warpCtx{
			valid: true,
			w:     w,
			ctx: warp.Context{
				Prog:     s.prog,
				Launch:   s.launch,
				Global:   s.gmem,
				Shared:   shared,
				StoreBuf: s.storeBuf,
			},
			ctaSlot: slot,
		}
		wc.meta = core.NewWarpRegs(s.prog.NumRegs, 8, s.cfg.WarpSize, w.LiveMask)
		switch {
		case s.arch.Scalar == ScalarPriorRF:
			wc.srf = baseline.NewScalarRF(s.prog.NumRegs, s.cfg.WarpSize, w.LiveMask)
		case s.arch.RVC == RVCBDI:
			wc.bdi = baseline.NewBDIRegFile(s.prog.NumRegs, s.cfg.WarpSize)
		}
		cs.warpSlots = append(cs.warpSlots, wi)
		s.liveWarps++
	}
}

// Busy reports whether the SM still has work.
func (s *SM) Busy() bool {
	return s.liveWarps > 0 || len(s.events) > 0
}

func (s *SM) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// retireWarp marks a warp finished and releases its CTA when empty. Warp
// slots are only recycled once the whole CTA is done (so barrier accounting
// never sees a reused slot) and the slot's in-flight writebacks drained.
func (s *SM) retireWarp(wi int) {
	wc := &s.warps[wi]
	if wc.done {
		return
	}
	wc.done = true
	s.liveWarps--
	cs := &s.ctas[wc.ctaSlot]
	cs.liveWarps--
	if cs.liveWarps == 0 {
		for _, slot := range cs.warpSlots {
			if s.hasInFlight(slot) {
				s.warps[slot].freeWhenDrained = true
			} else {
				s.warps[slot].valid = false
			}
		}
		cs.active = false
		s.regBytesInUse -= s.ctaRegBytes()
	}
}

func (s *SM) hasInFlight(wi int) bool {
	for i := range s.events {
		if s.events[i].wi == wi {
			return true
		}
	}
	for i := range s.collectors {
		if s.collectors[i].valid && s.collectors[i].wi == wi {
			return true
		}
	}
	return false
}

// DebugState summarises the SM's occupancy for diagnostics.
func (s *SM) DebugState() string {
	validW, doneW, barrierW, drainW := 0, 0, 0, 0
	pend := 0
	for i := range s.warps {
		wc := &s.warps[i]
		if !wc.valid {
			continue
		}
		validW++
		if wc.done {
			doneW++
		} else if wc.w.Status() == warp.StatusBarrier {
			barrierW++
		}
		if wc.freeWhenDrained {
			drainW++
		}
		if wc.pendRegs != 0 || wc.pendPreds != 0 {
			pend++
		}
	}
	activeCTAs := 0
	for i := range s.ctas {
		if s.ctas[i].active {
			activeCTAs++
		}
	}
	coll := 0
	for i := range s.collectors {
		if s.collectors[i].valid {
			coll++
		}
	}
	return fmt.Sprintf("sm%d: live=%d valid=%d done=%d barrier=%d drain=%d pending=%d ctas=%d coll=%d events=%d mshr=%d",
		s.ID, s.liveWarps, validW, doneW, barrierW, drainW, pend, activeCTAs, coll, len(s.events), s.outstanding)
}

// Cycle advances the SM by one core clock at time now.
func (s *SM) Cycle(now uint64) {
	s.now = now
	s.processWritebacks()
	s.serveCollectors()
	s.issue()
	s.releaseBarriers()
}

// releaseBarriers frees CTAs whose live warps have all arrived at bar.sync.
func (s *SM) releaseBarriers() {
	for ci := range s.ctas {
		cs := &s.ctas[ci]
		if !cs.active || cs.liveWarps == 0 {
			continue
		}
		arrived := 0
		for _, wi := range cs.warpSlots {
			wc := &s.warps[wi]
			if wc.done {
				continue
			}
			if wc.w.Status() == warp.StatusBarrier {
				arrived++
			}
		}
		if arrived == cs.liveWarps {
			for _, wi := range cs.warpSlots {
				wc := &s.warps[wi]
				if !wc.done && wc.w.Status() == warp.StatusBarrier {
					wc.w.ClearBarrier()
				}
			}
		}
	}
}
