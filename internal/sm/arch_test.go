package sm

import (
	"testing"

	"gscalar/internal/power"
)

func TestArchPresets(t *testing.T) {
	b := Baseline()
	if b.RVC != RVCNone || b.Scalar != ScalarNone || b.ExtraLatency != 0 || b.HasCodec() {
		t.Errorf("baseline = %+v", b)
	}
	a := PriorScalarRF()
	if a.Scalar != ScalarPriorRF || a.RVC != RVCNone || a.ExtraLatency != 0 {
		t.Errorf("prior scalar RF = %+v", a)
	}
	w := WarpedCompression()
	if w.RVC != RVCBDI || w.Scalar != ScalarNone || !w.HasCodec() {
		t.Errorf("warped compression = %+v", w)
	}
	if w.ExtraLatency != power.ExtraPipelineCycles {
		t.Errorf("WC latency = %d", w.ExtraLatency)
	}
	r := RVCOnly()
	if r.RVC != RVCByteWise || r.Scalar != ScalarNone || !r.F.Compression || !r.F.HalfCompression {
		t.Errorf("rvc-only = %+v", r)
	}
	if r.F.ScalarALU || r.F.DivergentScalar {
		t.Error("rvc-only must not enable scalar execution")
	}
	g := GScalar()
	if g.RVC != RVCByteWise || g.Scalar != ScalarGS {
		t.Errorf("gscalar = %+v", g)
	}
	f := g.F
	if !(f.Compression && f.HalfCompression && f.ScalarALU && f.ScalarSFU &&
		f.ScalarMem && f.HalfScalar && f.DivergentScalar) {
		t.Errorf("gscalar features = %+v", f)
	}
	nd := GScalarNoDiv()
	if nd.F.DivergentScalar || nd.F.HalfScalar {
		t.Errorf("gscalar-nodiv features = %+v", nd.F)
	}
	if !nd.F.ScalarSFU || !nd.F.ScalarMem {
		t.Error("gscalar-nodiv must still cover SFU/mem")
	}
	ca := GScalarCompilerAssist()
	if !ca.CompilerMoveElision {
		t.Error("compiler-assist preset missing elision flag")
	}
	if ca.F != GScalar().F {
		t.Error("compiler-assist must otherwise match G-Scalar")
	}
}

func TestDefaultConfigTable1(t *testing.T) {
	c := DefaultConfig()
	if c.WarpSize != 32 || c.Schedulers != 2 || c.NumBanks != 16 ||
		c.NumCollectors != 16 || c.MaxCTAs != 8 || c.MaxWarps != 48 {
		t.Errorf("config = %+v", c)
	}
	if c.ALUUnits != 2 || c.ALUWidth != 16 || c.MemWidth != 16 || c.SFUWidth != 4 {
		t.Errorf("pipelines = %+v", c)
	}
	if c.RegFileBytes != 128<<10 || c.L1Bytes != 16<<10 {
		t.Errorf("capacities = %+v", c)
	}
	if c.Sched != SchedGTO {
		t.Errorf("default scheduler = %v, want GTO", c.Sched)
	}
}
