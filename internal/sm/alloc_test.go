package sm

import (
	"testing"

	"gscalar/internal/kernel"
)

// loopSrc keeps every warp alive for thousands of cycles: a dependent
// load-modify-store chain that exercises the issue path, operand
// collectors, the L1/writeback path, and the scoreboard each iteration.
const loopSrc = `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	mov r5, 0
A:
	ldg r6, [r4]
	iadd r6, r6, 1
	stg [r4], r6
	iadd r5, r5, 1
	isetp.lt p0, r5, 2000
	@p0 bra A
	exit
`

// TestCycleSteadyStateZeroAlloc pins down the hot-path property the
// event-driven rework relies on: once warm (scratch buffers grown, memory
// pages touched, collector ring populated), SM.Cycle performs zero heap
// allocations per cycle. A regression here silently turns the simulator's
// inner loop back into a GC benchmark.
func TestCycleSteadyStateZeroAlloc(t *testing.T) {
	gmem := kernel.NewMemory()
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
	lc.Params[0] = gmem.Alloc(4 * 128 * 4)
	s, _ := newTestSM(t, loopSrc, lc, gmem, GScalar())

	for cta := 0; cta < 4; cta++ {
		if !s.CanTakeCTA() {
			t.Fatalf("SM refused CTA %d", cta)
		}
		s.LaunchCTA(cta)
	}

	// Warm-up: let the reusable scratch slices (writeback, candidate,
	// coalesce buffers), the fill list, and the backing memory pages reach
	// their steady-state capacity.
	cycle := uint64(0)
	for ; cycle < 3000; cycle++ {
		s.Cycle(cycle)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !s.Busy() {
		t.Fatal("kernel drained during warm-up; lengthen the loop")
	}

	allocs := testing.AllocsPerRun(1000, func() {
		s.Cycle(cycle)
		cycle++
	})
	if allocs != 0 {
		t.Errorf("SM.Cycle allocates %.2f objects/cycle in steady state, want 0", allocs)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !s.Busy() {
		t.Fatal("kernel drained during measurement; lengthen the loop")
	}
}
