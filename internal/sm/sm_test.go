package sm

import (
	"strings"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
)

func newTestSM(t *testing.T, src string, lc *kernel.LaunchConfig, gmem *kernel.Memory, arch Arch) (*SM, *power.Meter) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var meter power.Meter
	msys := mem.NewSystem(mem.DefaultTiming(), 768<<10)
	s := New(0, DefaultConfig(), arch, power.DefaultEnergies(), prog, lc, gmem, msys, &meter)
	return s, &meter
}

const tinySrc = `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	stg [r4], r2
	exit
`

func drive(t *testing.T, s *SM, ctas int, maxCycles uint64) uint64 {
	t.Helper()
	next := 0
	for cycle := uint64(0); cycle < maxCycles; cycle++ {
		for next < ctas && s.CanTakeCTA() {
			s.LaunchCTA(next)
			next++
		}
		s.Cycle(cycle)
		if s.Err() != nil {
			t.Fatal(s.Err())
		}
		if !s.Busy() && next >= ctas {
			return cycle
		}
	}
	t.Fatalf("SM did not drain: %s", s.DebugState())
	return 0
}

func TestSMDirectDrive(t *testing.T) {
	gmem := kernel.NewMemory()
	out := gmem.Alloc(4 * 64 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 64, Y: 1}}
	lc.Params[0] = out
	s, meter := newTestSM(t, tinySrc, lc, gmem, GScalar())

	cycles := drive(t, s, 4, 100_000)
	if cycles == 0 {
		t.Fatal("zero cycles")
	}
	if got := s.Stats().WarpInsts; got != 4*2*6 {
		t.Errorf("warp insts = %d, want %d", got, 4*2*6)
	}
	for i, v := range gmem.ReadU32(out, 4*64) {
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if meter.TotalDynamic() <= 0 {
		t.Error("no dynamic energy recorded")
	}
}

func TestSMCanTakeCTALimits(t *testing.T) {
	gmem := kernel.NewMemory()
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 100, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
	lc.Params[0] = gmem.Alloc(1024)
	s, _ := newTestSM(t, tinySrc, lc, gmem, Baseline())

	launched := 0
	for s.CanTakeCTA() {
		s.LaunchCTA(launched)
		launched++
		if launched > 100 {
			t.Fatal("CanTakeCTA never saturates")
		}
	}
	// 256-thread CTAs: 8 warps each; 48 warp slots => 6 resident CTAs
	// (CTA slots would allow 8; register capacity allows more).
	if launched != 6 {
		t.Errorf("resident CTAs = %d, want 6 (warp-slot bound)", launched)
	}
}

func TestSMDebugState(t *testing.T) {
	gmem := kernel.NewMemory()
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	lc.Params[0] = gmem.Alloc(256)
	s, _ := newTestSM(t, tinySrc, lc, gmem, Baseline())
	s.LaunchCTA(0)
	st := s.DebugState()
	for _, want := range []string{"sm0", "live=1", "ctas=1"} {
		if !strings.Contains(st, want) {
			t.Errorf("DebugState missing %q: %s", want, st)
		}
	}
}

func TestSMStatsAccumulateAcrossCTAs(t *testing.T) {
	gmem := kernel.NewMemory()
	out := gmem.Alloc(64 * 32 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 64, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	lc.Params[0] = out
	s, _ := newTestSM(t, tinySrc, lc, gmem, GScalar())
	drive(t, s, 64, 500_000)
	if got := s.Stats().WarpInsts; got != 64*6 {
		t.Errorf("warp insts = %d, want %d", got, 64*6)
	}
}
