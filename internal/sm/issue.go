package sm

import (
	"fmt"
	"sort"

	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/power"
	"gscalar/internal/regfile"
	"gscalar/internal/warp"
)

// issue runs each warp scheduler: greedy-then-oldest (GTO) selection, one
// instruction per scheduler per cycle. The front end can therefore issue up
// to Schedulers instructions per cycle, matching §4.1's observation that it
// bounds the benefit of extra scalar pipelines.
func (s *SM) issue() {
	for sched := 0; sched < s.cfg.Schedulers; sched++ {
		s.issueFrom(sched)
	}
}

// issueFrom tries to issue one instruction from scheduler sched's warps.
func (s *SM) issueFrom(sched int) {
	last := s.lastIssued[sched]
	if s.cfg.Sched == SchedGTO && last >= 0 && s.tryIssueWarp(sched, last) {
		// Greedy: stick with the last warp while it can issue.
		return
	}
	type cand struct{ wi, key int }
	var cands []cand
	for wi := sched; wi < len(s.warps); wi += s.cfg.Schedulers {
		wc := &s.warps[wi]
		if !wc.valid || wc.done || (s.cfg.Sched == SchedGTO && wi == last) {
			continue
		}
		key := wc.w.GlobalID
		if s.cfg.Sched == SchedLRR {
			// Round-robin: order by distance from the warp after the last
			// issued one.
			key = (wi - last - 1 + len(s.warps)) % len(s.warps)
		}
		cands = append(cands, cand{wi, key})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	for _, c := range cands {
		if s.tryIssueWarp(sched, c.wi) {
			return
		}
	}
}

// tryIssueWarp attempts to issue the next instruction of warp slot wi.
func (s *SM) tryIssueWarp(sched, wi int) bool {
	wc := &s.warps[wi]
	if !wc.valid || wc.done {
		return false
	}
	if wc.w.Status() != warp.StatusReady {
		return false
	}
	pc, in, active, ok := wc.w.Peek(&wc.ctx)
	if !ok {
		s.retireWarp(wi)
		return false
	}

	// Scoreboard: no bypassing — sources, destination and guard must not be
	// pending (RAW/WAW).
	if s.hazard(wc, in) {
		s.st.IssueStallScoreboard++
		return false
	}

	isCtrl := in.Class() == isa.ClassCtrl || in.Op == isa.OpNop

	var free int
	if !isCtrl {
		free = s.freeCollector()
		if free < 0 {
			s.st.IssueStallOC++
			return false
		}
	}

	// §3.3: a divergent write to a compressed register must first be
	// decompressed by an injected special move — unless the compiler-
	// assisted analysis proved the register's previous value dead.
	if s.arch.RVC == RVCByteWise {
		if dst, writes := in.WritesReg(); writes && active != wc.w.LiveMask &&
			wc.meta.NeedsDecompressMove(int(dst), s.arch.F) {
			if s.deadOnWrite != nil && s.deadOnWrite[pc] {
				// Elided: the stale inactive-lane bytes are unobservable;
				// the divergent write lands uncompressed without a
				// read-modify-write.
				wc.meta.DecompressInPlace(int(dst))
				s.st.MovesElided++
			} else {
				s.injectMove(free, wi, dst)
				s.lastIssued[sched] = wi
				return true
			}
		}
	}

	// Figure 1 oracle: value-uniformity of divergent instructions' sources,
	// sampled before execution (sources may alias the destination).
	divergentOracle := false
	if active != wc.w.LiveMask && !isCtrl {
		divergentOracle = core.ValueScalarOracle(in, active, func(r uint8) []uint32 {
			return wc.w.RegVec(r)
		})
	}

	// Scalar-eligibility detection uses only EBR/BVR metadata, which is
	// updated at writeback, so detecting before execution matches hardware.
	elig := core.NotEligible
	srfScalar := false
	switch s.arch.Scalar {
	case ScalarGS:
		if !isCtrl {
			elig = wc.meta.Detect(in, active, s.arch.F)
		}
	case ScalarPriorRF:
		if !isCtrl {
			srfScalar = wc.srf.Detect(in, active)
		}
	}
	predUniform := false
	if _, wp := in.WritesPred(); wp && s.arch.RVC == RVCByteWise {
		predUniform = wc.meta.SourcesScalarForPred(in, active)
	}

	out, err := wc.w.Execute(&wc.ctx)
	if err != nil {
		s.fail(fmt.Errorf("sm%d warp %d: %w", s.ID, wc.w.GlobalID, err))
		s.retireWarp(wi)
		return false
	}

	// Statistics and front-end energy.
	s.meter.Add(power.CompFrontEnd, s.en.FrontEndPerInst)
	s.st.CountInst(in.Class(), warp.PopCount(out.Active), out.Divergent)
	if out.Divergent && !isCtrl && divergentOracle {
		s.st.DivergentValueScalar++
	}
	if s.arch.Scalar == ScalarGS {
		s.st.CountEligibility(elig, in.Class())
	} else if srfScalar {
		s.st.EligFullALU++
	}

	if out.Exited {
		s.retireWarp(wi)
	}
	if isCtrl {
		// Branches, barriers, exits complete in the front end.
		s.lastIssued[sched] = wi
		return true
	}

	// Allocate the operand collector with the source-read plan, and mark
	// the destination pending.
	ce := &s.collectors[free]
	*ce = collectorEntry{
		valid: true, wi: wi, out: out, elig: elig,
		srfScalar: srfScalar, predUniform: predUniform,
	}
	s.planReads(ce, wc, in, out)
	if dst, w := in.WritesReg(); w {
		wc.pendRegs |= 1 << dst
	}
	if p, w := in.WritesPred(); w {
		wc.pendPreds |= 1 << p
	}
	s.lastIssued[sched] = wi
	return true
}

// hazard reports whether the instruction has a scoreboard conflict.
func (s *SM) hazard(wc *warpCtx, in *isa.Instruction) bool {
	if in.Guard.On && wc.pendPreds&(1<<in.Guard.Reg) != 0 {
		return true
	}
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		switch src.Kind {
		case isa.OpdReg:
			if wc.pendRegs&(1<<src.Reg) != 0 {
				return true
			}
		case isa.OpdPred:
			if wc.pendPreds&(1<<src.Reg) != 0 {
				return true
			}
		}
	}
	if dst, w := in.WritesReg(); w && wc.pendRegs&(1<<dst) != 0 {
		return true
	}
	if p, w := in.WritesPred(); w && wc.pendPreds&(1<<p) != 0 {
		return true
	}
	return false
}

func (s *SM) freeCollector() int {
	for i := range s.collectors {
		if !s.collectors[i].valid {
			return i
		}
	}
	return -1
}

// injectMove issues the special decompressing register-to-register move of
// §3.3 into collector slot free: it reads the compressed register, expands
// it and writes it back uncompressed, ignoring the active mask.
func (s *SM) injectMove(free, wi int, reg uint8) {
	wc := &s.warps[wi]
	s.meter.Add(power.CompFrontEnd, s.en.FrontEndPerInst)
	s.st.InjectedMoves++

	ce := &s.collectors[free]
	*ce = collectorEntry{valid: true, wi: wi, isMove: true, moveReg: reg}
	ce.out.DstReg = int(reg)
	ce.out.Active = wc.w.LiveMask

	rc := wc.meta.OnRead(int(reg), wc.w.LiveMask, s.arch.F, false)
	ce.reads = append(ce.reads,
		regfile.ReadAccess(reg, wc.w.GlobalID, s.cfg.NumBanks, rc, s.en))
	wc.pendRegs |= 1 << reg
}

// planReads builds the source-read plan and records Figure 8 access
// classes.
func (s *SM) planReads(ce *collectorEntry, wc *warpCtx, in *isa.Instruction, out warp.Outcome) {
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		if src.Kind != isa.OpdReg {
			continue
		}
		s.meter.Add(power.CompOperandCollector, s.en.OCPerOperand)
		var r regfile.Access
		switch {
		case s.arch.RVC == RVCByteWise:
			rc := wc.meta.OnRead(int(src.Reg), out.Active, s.arch.F, out.Divergent)
			s.st.RFReads[rc.Class]++
			r = regfile.ReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks, rc, s.en)
		case s.arch.RVC == RVCBDI:
			r = regfile.BDIReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks,
				wc.bdi.ReadBytes(int(src.Reg)), s.en)
		case s.arch.Scalar == ScalarPriorRF && wc.srf.IsScalarReg(int(src.Reg)):
			r = regfile.ScalarBankAccess(s.en)
		default: // baseline register file
			r = regfile.BaselineReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks,
				s.cfg.WarpSize, s.en)
		}
		ce.reads = append(ce.reads, r)
	}
}
