package sm

import (
	"fmt"
	"math/bits"

	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/power"
	"gscalar/internal/regfile"
	"gscalar/internal/warp"
)

// issue runs each warp scheduler: greedy-then-oldest (GTO) selection, one
// instruction per scheduler per cycle. The front end can therefore issue up
// to Schedulers instructions per cycle, matching §4.1's observation that it
// bounds the benefit of extra scalar pipelines.
func (s *SM) issue() {
	for sched := 0; sched < s.cfg.Schedulers; sched++ {
		s.issueFrom(sched)
	}
}

// issueFrom tries to issue one instruction from scheduler sched's warps.
// GTO walks the scheduler's pre-sorted age list (schedWarps); LRR walks the
// warp slots in rotation order starting after the last issued one. Both
// visit candidates in exactly the order the previous sort-per-cycle
// implementation produced. The age list is snapshotted into a reusable
// scratch buffer first because tryIssueWarp can retire warps (Peek
// exhaustion), which edits the list mid-walk.
func (s *SM) issueFrom(sched int) {
	last := s.lastIssued[sched]
	if s.cfg.Sched == SchedGTO && last >= 0 && s.tryIssueWarp(sched, last) {
		// Greedy: stick with the last warp while it can issue.
		return
	}
	if s.cfg.Sched == SchedLRR {
		n := len(s.warps)
		for d := 0; d < n; d++ {
			wi := (last + 1 + d) % n
			if wi%s.cfg.Schedulers != sched {
				continue
			}
			if s.tryIssueWarp(sched, wi) {
				return
			}
		}
		return
	}
	cands := append(s.candScratch[:0], s.schedWarps[sched]...)
	s.candScratch = cands[:0]
	for _, wi := range cands {
		if wi == last {
			continue
		}
		if s.tryIssueWarp(sched, wi) {
			return
		}
	}
}

// tryIssueWarp attempts to issue the next instruction of warp slot wi.
func (s *SM) tryIssueWarp(sched, wi int) bool {
	wc := &s.warps[wi]
	if !wc.valid || wc.done || wc.scoreStalled {
		return false
	}
	if wc.w.Status() != warp.StatusReady {
		return false
	}
	pc, in, active, ok := wc.w.Peek(&wc.ctx)
	if !ok {
		s.retireWarp(wi)
		return false
	}

	// Scoreboard: no bypassing — sources, destination and guard must not be
	// pending (RAW/WAW). The stall state can only change when one of this
	// warp's own writebacks lands, so the warp leaves the ready set until
	// completeEvent clears the flag (IssueStallScoreboard therefore counts
	// stall episodes, not stalled warp-cycles).
	if s.hazard(wc, in) {
		s.st.IssueStallScoreboard++
		wc.scoreStalled = true
		s.markUnready(wi)
		return false
	}

	m := s.prog.Meta(pc)
	isCtrl := m.FrontEnd

	var free int
	if !isCtrl {
		free = s.freeCollector()
		if free < 0 {
			s.st.IssueStallOC++
			return false
		}
	}

	// §3.3: a divergent write to a compressed register must first be
	// decompressed by an injected special move — unless the compiler-
	// assisted analysis proved the register's previous value dead.
	if s.arch.RVC == RVCByteWise {
		if m.WritesReg && active != wc.w.LiveMask &&
			wc.meta.NeedsDecompressMove(int(m.DstReg), s.arch.F) {
			if s.deadOnWrite != nil && s.deadOnWrite[pc] {
				// Elided: the stale inactive-lane bytes are unobservable;
				// the divergent write lands uncompressed without a
				// read-modify-write.
				wc.meta.DecompressInPlace(int(m.DstReg))
				s.st.MovesElided++
			} else {
				s.injectMove(free, wi, m.DstReg)
				s.lastIssued[sched] = wi
				return true
			}
		}
	}

	// Figure 1 oracle: value-uniformity of divergent instructions' sources,
	// sampled before execution (sources may alias the destination).
	divergentOracle := false
	if active != wc.w.LiveMask && !isCtrl {
		divergentOracle = core.ValueScalarOracle(in, active, wc.regVec)
	}

	// Scalar-eligibility detection uses only EBR/BVR metadata, which is
	// updated at writeback, so detecting before execution matches hardware.
	elig := core.NotEligible
	srfScalar := false
	switch s.arch.Scalar {
	case ScalarGS:
		if !isCtrl {
			elig = wc.meta.Detect(in, active, s.arch.F)
		}
	case ScalarPriorRF:
		if !isCtrl {
			srfScalar = wc.srf.Detect(in, active)
		}
	}
	predUniform := false
	if m.WritesPred && s.arch.RVC == RVCByteWise {
		predUniform = wc.meta.SourcesScalarForPred(in, active)
	}

	if !isCtrl {
		// Address generation writes into the collector's resident scratch
		// so memory instructions allocate no per-access address vector.
		wc.ctx.AddrScratch = s.collectors[free].addrBuf
	}
	out, err := wc.w.Execute(&wc.ctx)
	if err != nil {
		s.fail(fmt.Errorf("sm%d warp %d: %w", s.ID, wc.w.GlobalID, err))
		s.retireWarp(wi)
		return false
	}
	if s.execTrace != nil {
		// Trace capture must copy out of the Outcome immediately: Addrs
		// aliases the collector scratch reused by the next issue.
		s.execTrace(s.ID, wc.w.GlobalID, &out)
	}

	// Statistics and front-end energy.
	s.meter.Add(power.CompFrontEnd, s.en.FrontEndPerInst)
	s.st.CountInst(m.Class, warp.PopCount(out.Active), out.Divergent)
	if out.Divergent && !isCtrl && divergentOracle {
		s.st.DivergentValueScalar++
	}
	if s.arch.Scalar == ScalarGS {
		s.st.CountEligibility(elig, m.Class)
	} else if srfScalar {
		s.st.EligFullALU++
	}

	if out.Exited {
		s.retireWarp(wi)
	} else if out.AtBarrier {
		s.ctas[wc.ctaSlot].arrived++
		s.markUnready(wi)
		s.barrierCheck = true
	}
	if isCtrl {
		// Branches, barriers, exits complete in the front end.
		s.lastIssued[sched] = wi
		return true
	}

	// Allocate the operand collector with the source-read plan, and mark
	// the destination pending.
	ce := &s.collectors[free]
	reads := ce.reads[:0]
	addrBuf := ce.addrBuf
	lines := ce.lines[:0]
	*ce = collectorEntry{
		valid: true, wi: wi, out: out, elig: elig,
		srfScalar: srfScalar, predUniform: predUniform,
		class: m.Class, latency: m.Latency, occMul: m.OccMul,
		reads: reads, addrBuf: addrBuf, lines: lines,
	}
	s.collClaim(free)
	s.liveCollectors++
	s.planReads(ce, wc, in, out)
	if m.WritesReg {
		wc.pendRegs |= 1 << m.DstReg
	}
	if m.WritesPred {
		wc.pendPreds |= 1 << m.DstPred
	}
	s.lastIssued[sched] = wi
	return true
}

// hazard reports whether the instruction has a scoreboard conflict.
func (s *SM) hazard(wc *warpCtx, in *isa.Instruction) bool {
	if in.Guard.On && wc.pendPreds&(1<<in.Guard.Reg) != 0 {
		return true
	}
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		switch src.Kind {
		case isa.OpdReg:
			if wc.pendRegs&(1<<src.Reg) != 0 {
				return true
			}
		case isa.OpdPred:
			if wc.pendPreds&(1<<src.Reg) != 0 {
				return true
			}
		}
	}
	if dst, w := in.WritesReg(); w && wc.pendRegs&(1<<dst) != 0 {
		return true
	}
	if p, w := in.WritesPred(); w && wc.pendPreds&(1<<p) != 0 {
		return true
	}
	return false
}

// freeCollector returns the lowest-index free operand collector, or -1. The
// first 64 entries are found by a trailing-zero count on the free bitmask;
// larger configurations fall back to scanning the tail, preserving the
// lowest-index-first allocation order bit-identity depends on.
func (s *SM) freeCollector() int {
	if s.collFree != 0 {
		return bits.TrailingZeros64(s.collFree)
	}
	for i := 64; i < len(s.collectors); i++ {
		if !s.collectors[i].valid {
			return i
		}
	}
	return -1
}

// collClaim/collRelease maintain the collector free bitmask as entries become
// valid and are dispatched.
func (s *SM) collClaim(i int) {
	if i < 64 {
		s.collFree &^= uint64(1) << i
	}
}

func (s *SM) collRelease(i int) {
	if i < 64 {
		s.collFree |= uint64(1) << i
	}
}

// injectMove issues the special decompressing register-to-register move of
// §3.3 into collector slot free: it reads the compressed register, expands
// it and writes it back uncompressed, ignoring the active mask.
func (s *SM) injectMove(free, wi int, reg uint8) {
	wc := &s.warps[wi]
	s.meter.Add(power.CompFrontEnd, s.en.FrontEndPerInst)
	s.st.InjectedMoves++

	ce := &s.collectors[free]
	reads := ce.reads[:0]
	addrBuf := ce.addrBuf
	lines := ce.lines[:0]
	*ce = collectorEntry{
		valid: true, wi: wi, isMove: true, moveReg: reg,
		occMul: 1, reads: reads, addrBuf: addrBuf, lines: lines,
	}
	ce.out.DstReg = int(reg)
	ce.out.Active = wc.w.LiveMask
	s.collClaim(free)
	s.liveCollectors++

	rc := wc.meta.OnRead(int(reg), wc.w.LiveMask, s.arch.F, false)
	ce.reads = append(ce.reads,
		regfile.ReadAccess(reg, wc.w.GlobalID, s.cfg.NumBanks, rc, s.en))
	wc.pendRegs |= 1 << reg
}

// planReads builds the source-read plan and records Figure 8 access
// classes.
func (s *SM) planReads(ce *collectorEntry, wc *warpCtx, in *isa.Instruction, out warp.Outcome) {
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		if src.Kind != isa.OpdReg {
			continue
		}
		s.meter.Add(power.CompOperandCollector, s.en.OCPerOperand)
		var r regfile.Access
		switch {
		case s.arch.RVC == RVCByteWise:
			rc := wc.meta.OnRead(int(src.Reg), out.Active, s.arch.F, out.Divergent)
			s.st.RFReads[rc.Class]++
			r = regfile.ReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks, rc, s.en)
		case s.arch.RVC == RVCBDI:
			r = regfile.BDIReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks,
				wc.bdi.ReadBytes(int(src.Reg)), s.en)
		case s.arch.Scalar == ScalarPriorRF && wc.srf.IsScalarReg(int(src.Reg)):
			r = regfile.ScalarBankAccess(s.en)
		default: // baseline register file
			r = regfile.BaselineReadAccess(src.Reg, wc.w.GlobalID, s.cfg.NumBanks,
				s.cfg.WarpSize, s.en)
		}
		ce.reads = append(ce.reads, r)
	}
}
