package sm

import (
	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/telemetry"
)

// LiveWarps returns the number of resident, unfinished warps. Like Retired,
// it is a plain counter read safe between cycles (serially, or after the
// phased loop's barrier) for progress and telemetry sampling.
func (s *SM) LiveWarps() int { return s.liveWarps }

// ReadyWarps returns the number of warps currently eligible to issue.
func (s *SM) ReadyWarps() int { return s.readyWarps }

// RegisterTelemetry registers this SM's counters and gauges, keyed by its id.
// Every source is a plain field the simulation already maintains — no
// telemetry work happens on the hot path; the registry reads the values at
// checkpoint samples and finalization only.
func (s *SM) RegisterTelemetry(reg *telemetry.Registry) {
	id := s.ID
	st := &s.st
	reg.Counter("sm.warp_insts", id, &st.WarpInsts)
	reg.Counter("sm.thread_insts", id, &st.ThreadInsts)
	reg.Counter("sm.injected_moves", id, &st.InjectedMoves)
	reg.Counter("sm.moves_elided", id, &st.MovesElided)
	reg.Counter("sm.divergent", id, &st.Divergent)
	reg.Counter("sm.class_alu", id, &st.ByClass[isa.ClassALU])
	reg.Counter("sm.class_sfu", id, &st.ByClass[isa.ClassSFU])
	reg.Counter("sm.class_mem", id, &st.ByClass[isa.ClassMem])
	reg.Counter("sm.class_ctrl", id, &st.ByClass[isa.ClassCtrl])
	reg.Counter("sm.elig_full_alu", id, &st.EligFullALU)
	reg.Counter("sm.elig_full_sfu", id, &st.EligFullSFU)
	reg.Counter("sm.elig_full_mem", id, &st.EligFullMem)
	reg.Counter("sm.elig_half", id, &st.EligHalf)
	reg.Counter("sm.elig_divergent", id, &st.EligDiv)
	reg.Counter("sm.l1_accesses", id, &st.L1Accesses)
	reg.Counter("sm.l1_misses", id, &st.L1Misses)
	reg.Counter("sm.l2_accesses", id, &st.L2Accesses)
	reg.Counter("sm.l2_misses", id, &st.L2Misses)
	reg.Counter("sm.dram_transactions", id, &st.DRAMTransactions)
	reg.Counter("sm.mshr_merges", id, &st.MSHRMerges)
	reg.Counter("sm.stall_scoreboard", id, &st.IssueStallScoreboard)
	reg.Counter("sm.stall_unit", id, &st.IssueStallUnit)
	reg.Counter("sm.stall_collector", id, &st.IssueStallOC)
	reg.Counter("sm.scalarbank_conflicts", id, &st.ScalarBankConflicts)
	for c := core.AccessClass(0); c < core.NumAccessClasses; c++ {
		reg.Counter("sm.rf_reads_"+c.String(), id, &st.RFReads[c])
	}
	reg.Gauge("sm.live_warps", id, func() float64 { return float64(s.liveWarps) })
	reg.Gauge("sm.ready_warps", id, func() float64 { return float64(s.readyWarps) })
	s.rf.RegisterTelemetry(reg, id)
}
