package sm

import (
	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/regfile"
	"gscalar/internal/warp"
)

// serveCollectors arbitrates register-bank ports among operand collectors
// and dispatches entries whose operands are complete to the execution
// units. Each bank serves one main-array access and one BVR/EBR access per
// cycle (§4.1: the BVR arrays effectively provide 16 banks for scalar
// values); the Gilani baseline's scalar bank serves a single access per
// cycle SM-wide (the burst bottleneck).
func (s *SM) serveCollectors() {
	s.rf.NewCycle()

	for ci := range s.collectors {
		ce := &s.collectors[ci]
		if !ce.valid {
			continue
		}
		remaining := ce.reads[:0]
		for _, r := range ce.reads {
			if s.serveRead(r) {
				continue
			}
			remaining = append(remaining, r)
		}
		ce.reads = remaining
		if len(ce.reads) == 0 {
			s.dispatch(ci)
		}
	}
}

// serveRead attempts one register read this cycle; it reports whether the
// read was served and deposits its energy if so.
func (s *SM) serveRead(r regfile.Access) bool {
	if !s.rf.TryServe(r.Bank, r.Port) {
		if r.Port == regfile.PortScalarBank {
			s.st.ScalarBankConflicts++
		}
		return false
	}
	if r.Port == regfile.PortScalarBank {
		s.meter.Add(power.CompRFScalarBank, r.ArrayPJ)
	} else {
		s.meter.Add(power.CompRFArray, r.ArrayPJ)
	}
	if r.BVRPJ > 0 {
		s.meter.Add(power.CompRFBVR, r.BVRPJ)
	}
	s.meter.AddN(power.CompRFCrossbar, r.XbarBytes, s.en.RFCrossbarByte)
	if r.Decompress {
		s.meter.Add(power.CompCodec, s.en.DecompressorUse)
	}
	return true
}

// scalarLanes returns how many execution lanes the instruction activates.
func (ce *collectorEntry) scalarLanes(width int) int {
	switch {
	case ce.isMove:
		return 0 // the move is a register-file operation, not a lane op
	case ce.srfScalar, ce.elig == core.EligibleFull, ce.elig == core.EligibleDivergent:
		return 1
	case ce.elig == core.EligibleHalf:
		return core.Groups(width)
	}
	return warp.PopCount(ce.out.Active)
}

// occupancy returns how many cycles the instruction holds its unit's
// dispatch port: a warp is fed over ceil(warpSize/width) cycles, and
// unpipelined iterative divides block longer (the multiplier is decoded
// once into the collector's occMul). Scalar execution does NOT shorten the
// occupancy: G-Scalar clock-gates all but one lane of the existing dispatch
// slots (§4.1), trading energy — not throughput — which is why the paper
// reports a small net IPC *loss* (the +3-cycle latency) rather than a
// speedup.
func (s *SM) occupancy(ce *collectorEntry, unitWidth int) uint64 {
	occ := uint64((s.cfg.WarpSize + unitWidth - 1) / unitWidth)
	return occ * uint64(ce.occMul)
}

// dispatch sends a completed collector entry to its execution unit.
func (s *SM) dispatch(ci int) {
	ce := &s.collectors[ci]

	class := ce.class
	var unit, width int
	switch {
	case ce.isMove:
		unit, width = s.freeALU(), s.cfg.ALUWidth
	case class == isa.ClassSFU:
		unit, width = s.unitSFU(), s.cfg.SFUWidth
	case class == isa.ClassMem:
		unit, width = s.unitMem(), s.cfg.MemWidth
	default:
		unit, width = s.freeALU(), s.cfg.ALUWidth
	}
	if unit < 0 || s.unitBusy[unit] > s.now {
		s.st.IssueStallUnit++
		return
	}

	occ := s.occupancy(ce, width)
	extra := uint64(s.arch.ExtraLatency)

	ev := wbEvent{
		wi: ce.wi, out: ce.out, elig: ce.elig, srfScalar: ce.srfScalar,
		isMove: ce.isMove, moveReg: ce.moveReg, predUniform: ce.predUniform,
	}

	txStart := len(s.txBuf)
	if class == isa.ClassMem && !ce.isMove {
		done, mshrs, ok := s.dispatchMem(ce, occ, extra)
		if !ok {
			s.st.IssueStallUnit++
			return // MSHRs full; retry next cycle
		}
		ev.done = done
		ev.mshrs = mshrs
	} else {
		ev.done = s.now + occ + uint64(basePipeDepth) + uint64(ce.latency) + extra
		s.execEnergy(ce, class)
	}

	s.unitBusy[unit] = s.now + occ
	s.events = append(s.events, ev)
	if ev.done < s.nextWb {
		s.nextWb = ev.done
	}
	if txEnd := len(s.txBuf); txEnd > txStart {
		s.pending = append(s.pending, pendingAccess{
			evIdx: len(s.events) - 1, extra: extra, txStart: txStart, txEnd: txEnd,
		})
	}
	ce.valid = false
	s.collRelease(ci)
	s.liveCollectors--
}

// freeALU returns a free ALU pipeline index, or -1.
func (s *SM) freeALU() int {
	for u := 0; u < s.cfg.ALUUnits; u++ {
		if s.unitBusy[u] <= s.now {
			return u
		}
	}
	return -1
}

// execEnergy deposits the execution-lane energy of a non-memory
// instruction. Per-lane clock gating means only active lanes consume; a
// scalar execution activates one lane (two for half-warp scalar).
func (s *SM) execEnergy(ce *collectorEntry, class isa.Class) {
	if ce.isMove || ce.out.Inst == nil {
		return
	}
	lanes := ce.scalarLanes(s.cfg.WarpSize)
	comp := power.CompExecALU
	e := s.en.LaneInt
	switch {
	case class == isa.ClassSFU:
		comp, e = power.CompExecSFU, s.en.LaneSFU
	case isFloatOp(ce.out.Inst.Op):
		e = s.en.LaneFP
	case ce.out.Inst.Op == isa.OpIDiv || ce.out.Inst.Op == isa.OpIRem:
		e = s.en.LaneDiv
	}
	s.meter.AddN(comp, lanes, e)
}

func isFloatOp(op isa.Opcode) bool {
	return op >= isa.OpFAdd && op <= isa.OpF2I
}

// pendingTx is one deferred L2/DRAM transaction of the phased mode.
type pendingTx struct {
	line  uint32
	write bool
}

// pendingAccess groups the deferred transactions of one dispatched memory
// instruction with the writeback event they must complete. evIdx indexes
// s.events and is valid until the next processWritebacks, which cannot run
// before CommitShared resolves the entry (commit ends the same cycle).
// txStart/txEnd index s.txBuf, the cycle's flat transaction buffer.
type pendingAccess struct {
	evIdx          int
	extra          uint64
	txStart, txEnd int
}

// fillGet looks up an in-flight fill of line.
func (s *SM) fillGet(line uint32) (uint64, bool) {
	for i := range s.fills {
		if s.fills[i].line == line {
			return s.fills[i].done, true
		}
	}
	return 0, false
}

// fillDelete removes the fill entry for line, if any.
func (s *SM) fillDelete(line uint32) {
	for i := range s.fills {
		if s.fills[i].line == line {
			last := len(s.fills) - 1
			s.fills[i] = s.fills[last]
			s.fills = s.fills[:last]
			return
		}
	}
}

// fillPut records (or refreshes) the fill completion time of line. Before
// growing the list it prunes fills that have already landed — a landed fill
// can never raise a later access's completion time (every new access
// completes strictly after now), so pruning is unobservable and bounds the
// list by the MSHR count.
func (s *SM) fillPut(line uint32, done uint64) {
	for i := range s.fills {
		if s.fills[i].line == line {
			s.fills[i].done = done
			return
		}
	}
	kept := s.fills[:0]
	for _, f := range s.fills {
		if f.done > s.now {
			kept = append(kept, f)
		}
	}
	s.fills = append(kept, lineFill{line: line, done: done})
}

// dispatchMem models the memory pipeline: address generation, coalescing,
// L1, and the shared L2/DRAM system. It returns the completion cycle and
// the number of MSHRs held (for loads). In phased mode, beyond-L1
// transactions are appended to s.txBuf for CommitShared to apply instead of
// touching the shared memory system here; the returned done is then a lower
// bound that commit raises once L2/DRAM timing is known.
func (s *SM) dispatchMem(ce *collectorEntry, occ, extra uint64) (done uint64, mshrs int, ok bool) {
	in := ce.out.Inst
	t := s.msys.Timing()

	// Address generation: one AGU lane per active lane; scalar memory
	// instructions compute a single address (§5.2).
	agus := ce.scalarLanes(s.cfg.WarpSize)
	s.meter.AddN(power.CompLSU, agus, s.en.AGUPerLane)

	if !in.IsGlobalMem() {
		s.meter.Add(power.CompSharedMem, s.en.SharedAccess)
		return s.now + occ + uint64(t.SharedLatency) + extra, 0, true
	}

	// The line list is computed once per instruction and cached in the
	// collector entry; dispatch retries (unit busy, MSHRs full) reuse it, so
	// a long stall does not re-coalesce the same addresses every cycle.
	if !ce.linesOK {
		ce.lines = mem.CoalesceInto(ce.lines, ce.out.Addrs, ce.out.Active)
		ce.linesOK = true
	}
	txs := ce.lines
	isLoad := in.IsLoad()
	// A request larger than the whole MSHR file (possible with wide warps
	// and fully-diverged gathers) must still make progress: it dispatches
	// once the file has drained.
	if isLoad && s.outstanding > 0 && s.outstanding+len(txs) > s.cfg.MaxMSHRs {
		return 0, 0, false
	}

	latest := s.now + occ
	for _, line := range txs {
		s.st.L1Accesses++
		s.meter.Add(power.CompL1, s.en.L1Access)
		var txDone uint64
		if isLoad {
			if s.l1.Lookup(line, true) {
				txDone = s.now + occ + uint64(t.L1HitLatency)
				// MSHR merging: the line may still be in flight from an
				// earlier miss; the merged access waits for the fill.
				if fill, ok := s.fillGet(line); ok {
					if fill > txDone {
						txDone = fill
						s.st.MSHRMerges++
					} else {
						s.fillDelete(line)
					}
				}
			} else {
				s.st.L1Misses++
				switch {
				case s.relaxed:
					// Epoch mode: the shared system is frozen until the
					// rendezvous, so take an estimated completion time now
					// and defer the real transaction. Stats/energy for the
					// beyond-L1 part are accounted at commit (commitTx).
					txDone = s.msys.EstimateAccess(s.now, line)
					s.epochTx.Defer(s.now, line, false)
					s.fillPut(line, txDone)
				case s.phased:
					s.txBuf = append(s.txBuf, pendingTx{line: line})
					continue
				default:
					txDone = s.memBeyondL1(line, false)
					s.fillPut(line, txDone)
				}
			}
		} else {
			// Write-through, write-evict: the store drains towards DRAM in
			// the background; the warp does not wait on it.
			s.l1.Invalidate(line)
			switch {
			case s.relaxed:
				s.epochTx.Defer(s.now, line, true)
			case s.phased:
				s.txBuf = append(s.txBuf, pendingTx{line: line, write: true})
			default:
				s.memBeyondL1(line, true)
			}
			txDone = s.now + occ + 1
		}
		if txDone > latest {
			latest = txDone
		}
	}
	if isLoad {
		s.outstanding += len(txs)
		mshrs = len(txs)
	}
	return latest + extra, mshrs, true
}

// CommitShared is the serial phase of a phased-mode cycle: it sends this
// SM's deferred transactions into the shared L2/DRAM system — fixing up the
// completion times of their writeback events — and flushes buffered global
// stores into device memory. The chip loop calls it for each SM in
// ascending SM-id order, which pins down L2 state transitions and DRAM
// channel arbitration regardless of how many workers ran the compute phase.
func (s *SM) CommitShared() {
	if len(s.pending) > 0 {
		for i := range s.pending {
			p := &s.pending[i]
			ev := &s.events[p.evIdx]
			for _, tx := range s.txBuf[p.txStart:p.txEnd] {
				done := s.memBeyondL1(tx.line, tx.write)
				if !tx.write {
					s.fillPut(tx.line, done)
					if d := done + p.extra; d > ev.done {
						ev.done = d
					}
				}
			}
		}
		s.pending = s.pending[:0]
		s.txBuf = s.txBuf[:0]
		s.recomputeNextWb()
	}
	if s.storeBuf != nil && s.storeBuf.Len() > 0 {
		s.storeBuf.Flush(s.gmem)
	}
}

// memBeyondL1 sends one transaction into the L2/DRAM system, accounting
// energy by how deep it went, and returns its completion cycle.
func (s *SM) memBeyondL1(line uint32, write bool) uint64 {
	done, kind := s.msys.AccessL2(s.now, line, write)
	s.st.L2Accesses++
	s.meter.AddN(power.CompNoC, mem.LineSize, s.en.NoCPerByte)
	s.meter.Add(power.CompL2, s.en.L2Access)
	if kind == mem.AccessDRAM {
		s.st.L2Misses++
		s.st.DRAMTransactions++
		s.meter.AddN(power.CompDRAM, mem.LineSize, s.en.DRAMPerByte)
	}
	return done
}

// recomputeNextWb re-derives the earliest pending writeback time after
// event completion times changed or events were removed.
func (s *SM) recomputeNextWb() {
	next := uint64(NoEvent)
	for i := range s.events {
		if s.events[i].done < next {
			next = s.events[i].done
		}
	}
	s.nextWb = next
}

// processWritebacks retires events whose completion cycle has arrived:
// scoreboard release, register-file write energy, and compression-metadata
// update (the hardware's compressor stage). The caller (Cycle) skips it
// entirely until nextWb, so the scan below runs only on cycles that
// actually retire something.
func (s *SM) processWritebacks() {
	// Remove completed events from the list BEFORE handling them:
	// completeEvent consults hasInFlight (via maybeRecycle), which must not
	// see the event that is currently being retired.
	done := s.wbScratch[:0]
	kept := s.events[:0]
	next := uint64(NoEvent)
	for _, ev := range s.events {
		if ev.done > s.now {
			if ev.done < next {
				next = ev.done
			}
			kept = append(kept, ev)
		} else {
			done = append(done, ev)
		}
	}
	s.events = kept
	s.nextWb = next
	s.wbScratch = done
	for _, ev := range done {
		s.completeEvent(ev)
	}
}

func (s *SM) completeEvent(ev wbEvent) {
	wc := &s.warps[ev.wi]

	if ev.mshrs > 0 {
		s.outstanding -= ev.mshrs
	}

	if ev.isMove {
		// The special move writes the register back uncompressed.
		full := core.Groups(s.cfg.WarpSize) * core.WordBytes
		s.meter.AddN(power.CompRFArray, full, s.en.RFArrayAccess)
		s.meter.AddN(power.CompRFCrossbar, full*16, s.en.RFCrossbarByte)
		s.meter.Add(power.CompRFBVR, s.en.RFBVRAccess)
		wc.meta.DecompressInPlace(int(ev.moveReg))
		wc.pendRegs &^= 1 << ev.moveReg
		s.unstall(ev.wi)
		s.maybeRecycle(ev.wi)
		return
	}

	in := ev.out.Inst
	if in != nil {
		if dst, w := in.WritesReg(); w {
			s.writebackReg(wc, ev, dst)
			wc.pendRegs &^= 1 << dst
		}
		if p, w := in.WritesPred(); w {
			if s.arch.RVC == RVCByteWise {
				wc.meta.OnPredWrite(int(p), ev.out.Active, ev.predUniform)
			}
			wc.pendPreds &^= 1 << p
		}
	}
	s.unstall(ev.wi)
	s.maybeRecycle(ev.wi)
}

// unstall clears a warp's scoreboard stall after one of its writebacks
// lands. The next issue attempt re-evaluates the hazard, so clearing
// conservatively (the stall may persist on another pending register) is
// exactly equivalent to the previous re-check-every-cycle behaviour.
func (s *SM) unstall(wi int) {
	wc := &s.warps[wi]
	if wc.scoreStalled {
		wc.scoreStalled = false
		s.markReady(wi)
	}
}

// writebackReg applies the architecture's register-write energy and
// metadata update.
func (s *SM) writebackReg(wc *warpCtx, ev wbEvent, dst uint8) {
	vec := ev.out.DstVec
	active := ev.out.Active
	switch {
	case s.arch.RVC == RVCByteWise:
		wb := wc.meta.OnWrite(int(dst), vec, active, s.arch.F, ev.elig == core.EligibleFull)
		s.meter.AddN(power.CompRFArray, wb.ArraysWritten, s.en.RFArrayAccess)
		s.meter.AddN(power.CompRFCrossbar, wb.ArraysWritten*16, s.en.RFCrossbarByte)
		if wb.BVREBRWritten {
			s.meter.Add(power.CompRFBVR, s.en.RFBVRAccess)
		}
		s.meter.Add(power.CompCodec, s.en.CompressorUse)
		s.st.CompressedBits += uint64(wb.CompressedBits)
		s.st.OriginalBits += uint64(wb.OriginalBits)

	case s.arch.RVC == RVCBDI:
		r := wc.bdi.OnWrite(int(dst), vec, active, wc.w.LiveMask)
		arrays := (r.SizeBytes + 15) / 16
		s.meter.AddN(power.CompRFArray, arrays, s.en.RFArrayAccess)
		s.meter.AddN(power.CompRFCrossbar, r.SizeBytes, s.en.RFCrossbarByte)
		s.meter.Add(power.CompCodec, s.en.BDICodecUse)
		s.st.CompressedBits += uint64(r.SizeBytes * 8)
		s.st.OriginalBits += uint64(s.cfg.WarpSize * core.WordBits)

	case s.arch.Scalar == ScalarPriorRF:
		wc.srf.OnWrite(int(dst), vec, active)
		if wc.srf.IsScalarReg(int(dst)) {
			s.meter.Add(power.CompRFScalarBank, s.en.RFScalarBankAccess)
		} else {
			s.baselineWrite(wc, int(dst), active)
		}

	default:
		s.baselineWrite(wc, int(dst), active)
	}
}

// baselineWrite accounts a write to the unmodified register file: the
// word-interleaved arrays containing active lanes are activated. The cost
// depends only on the active mask, not the values.
func (s *SM) baselineWrite(wc *warpCtx, dst int, active warp.Mask) {
	wb := wc.meta.OnWrite(dst, nil, active, core.Features{}, false)
	s.meter.AddN(power.CompRFArray, wb.ArraysWritten, s.en.RFArrayAccess)
	s.meter.AddN(power.CompRFCrossbar, wb.ArraysWritten*16, s.en.RFCrossbarByte)
}

// maybeRecycle frees a warp slot whose CTA finished while this event was in
// flight.
func (s *SM) maybeRecycle(wi int) {
	wc := &s.warps[wi]
	if wc.freeWhenDrained && !s.hasInFlight(wi) {
		s.regArena.Free(wc.w.Storage())
		wc.valid = false
		wc.freeWhenDrained = false
	}
}
