// Package telemetry is the simulator's run-observability layer: a typed
// counter/gauge registry that the microarchitectural layers (SM, register
// file, memory system, power meters) register into at construction, plus a
// time-series recorder that snapshots chip state at the deterministic
// lifecycle checkpoints of the chip loops.
//
// The design keeps the simulation hot path untouched: a counter is a plain
// uint64 field owned by the registering layer and incremented directly (no
// indirection, no allocation, no atomic), and the registry stores only a
// *pointer* to it. Gauges are closures over equally plain state. All reads
// happen off the hot path — at checkpoint sampling and at finalization — so
// collection never perturbs simulated results: a run with telemetry enabled
// is bit-identical to one without.
//
// The package deliberately imports nothing from the simulator so every
// internal layer can depend on it without cycles.
package telemetry

import "sort"

// InstanceChip is the instance id of chip-level (non-per-unit) metrics.
const InstanceChip = -1

// CounterValue is one finalized metric value: a name plus an instance
// discriminator (an SM id, a DRAM channel id, …; InstanceChip for
// chip-level metrics).
type CounterValue struct {
	Name     string
	Instance int
	Value    float64
}

type counterEntry struct {
	name string
	inst int
	v    *uint64
}

type gaugeEntry struct {
	name string
	inst int
	f    func() float64
}

// Registry collects the metric registrations of one launch. Layers register
// at construction time; the recorder reads the registered sources when a
// launch ends (or the next one begins).
type Registry struct {
	counters []counterEntry
	gauges   []gaugeEntry
}

// Counter registers a monotonic uint64 counter. The owner keeps incrementing
// *v directly; across the launches of a sequence, same-named registrations
// accumulate into one final value.
func (r *Registry) Counter(name string, instance int, v *uint64) {
	r.counters = append(r.counters, counterEntry{name, instance, v})
}

// Gauge registers a point-in-time value read through f. Across the launches
// of a sequence the final value is the last launch's reading (last-wins), so
// cumulative sources — like a power meter shared by every launch — report
// their end-of-run total.
func (r *Registry) Gauge(name string, instance int, f func() float64) {
	r.gauges = append(r.gauges, gaugeEntry{name, instance, f})
}

// Meta describes how a recorder's series was collected.
type Meta struct {
	ClockHz          float64  // core clock used to convert cycles to time
	SampleStride     uint64   // resolved simulated-cycle spacing of samples
	NumSMs           int      // SM count (length of Sample.PerSM)
	EnergyComponents []string // names indexing Sample.EnergyPJ
	RFAccessClasses  []string // names indexing Sample.RFReads
	ExecMode         string   // chip loop that ran: serial, phased, or relaxed
	Workers          int      // resolved compute-worker count of that loop
}

// SMSample is one SM's slice of a time-series sample.
type SMSample struct {
	Retired   uint64 // warp instructions committed by this SM so far
	LiveWarps int    // resident, unfinished warps
}

// Sample is one chip-wide time-series snapshot, taken at a lifecycle
// checkpoint. Cycle is sequence-global (launches of a sequence keep
// counting); the per-launch counters (WarpInsts, PerSM[i].Retired) restart
// with each launch's fresh SMs.
type Sample struct {
	Cycle     uint64
	WarpInsts uint64 // warp instructions committed chip-wide this launch
	LiveSMs   int
	PerSM     []SMSample
	EnergyPJ  []float64 // per-component energy so far, indexed by Meta.EnergyComponents
	RFReads   []uint64  // RF reads by access class, indexed by Meta.RFAccessClasses
}

type metricKey struct {
	name string
	inst int
}

// Recorder accumulates one run's telemetry: final counter values folded
// across every launch of the run, and the sampled time series. It is not
// safe for concurrent use; the chip loops drive it from the simulation
// goroutine only, at commit boundaries.
type Recorder struct {
	requested uint64 // sample stride asked for; 0 = ride the lifecycle stride
	meta      Meta
	reg       Registry
	samples   []Sample
	base      uint64 // cycle offset of the current launch within a sequence
	finals    map[metricKey]float64
}

// NewRecorder creates a recorder. requestedStride is the simulated-cycle
// spacing between series samples; 0 means sample at the run's lifecycle
// checkpoint stride.
func NewRecorder(requestedStride uint64) *Recorder {
	return &Recorder{
		requested: requestedStride,
		finals:    make(map[metricKey]float64),
	}
}

// RequestedStride returns the stride NewRecorder was asked for (0 = follow
// the lifecycle stride).
func (r *Recorder) RequestedStride() uint64 { return r.requested }

// Meta returns the collection metadata of the (last) launch.
func (r *Recorder) Meta() Meta { return r.meta }

// Registry returns the registry layers register into for the current launch.
func (r *Recorder) Registry() *Registry { return &r.reg }

// BeginLaunch starts a new launch: the previous launch's registrations are
// folded into the final values (counters add, gauges overwrite) and cleared,
// and meta is recorded. The chip loop calls this once per launch before
// constructing SMs.
func (r *Recorder) BeginLaunch(meta Meta) {
	r.fold()
	r.reg.counters = r.reg.counters[:0]
	r.reg.gauges = r.reg.gauges[:0]
	r.meta = meta
}

// SetCycleBase sets the sequence-global cycle offset of the current launch,
// so series samples of later launches continue the cycle axis instead of
// restarting at zero.
func (r *Recorder) SetCycleBase(base uint64) { r.base = base }

// NewSample appends a sample at the given launch-local cycle and returns it
// for the caller to fill. It returns nil when a sample at the same global
// cycle already exists (a final sample coinciding with a checkpoint sample).
func (r *Recorder) NewSample(cycle uint64) *Sample {
	abs := r.base + cycle
	if n := len(r.samples); n > 0 && r.samples[n-1].Cycle == abs {
		return nil
	}
	r.samples = append(r.samples, Sample{Cycle: abs})
	return &r.samples[len(r.samples)-1]
}

// Samples returns the recorded time series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Finalize folds the last launch's registrations into the final values. The
// run entry points call it once, after power finalization, so gauges over
// the power meter capture static energy too.
func (r *Recorder) Finalize() {
	r.fold()
	r.reg.counters = r.reg.counters[:0]
	r.reg.gauges = r.reg.gauges[:0]
}

func (r *Recorder) fold() {
	for _, c := range r.reg.counters {
		k := metricKey{c.name, c.inst}
		r.finals[k] += float64(*c.v)
	}
	for _, g := range r.reg.gauges {
		k := metricKey{g.name, g.inst}
		r.finals[k] = g.f()
	}
}

// Finals returns every finalized metric, sorted by name then instance, so
// exports are deterministic.
func (r *Recorder) Finals() []CounterValue {
	out := make([]CounterValue, 0, len(r.finals))
	for k, v := range r.finals {
		out = append(out, CounterValue{Name: k.name, Instance: k.inst, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}
