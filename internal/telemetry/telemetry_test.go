package telemetry

import (
	"reflect"
	"testing"
)

// TestCounterFoldAcrossLaunches checks the sequence semantics: counters
// registered per launch accumulate into one final value, while gauges are
// last-wins (a cumulative power meter registered by every launch must report
// the end-of-run reading, not a sum of cumulative readings).
func TestCounterFoldAcrossLaunches(t *testing.T) {
	r := NewRecorder(0)

	// Launch 1: fresh per-launch counter state.
	r.BeginLaunch(Meta{NumSMs: 1})
	c1 := uint64(10)
	g1 := 3.5
	r.Registry().Counter("sm.warp_insts", 0, &c1)
	r.Registry().Gauge("power.total_pj", InstanceChip, func() float64 { return g1 })

	// Launch 2: the previous launch folds; new registrations take over.
	r.BeginLaunch(Meta{NumSMs: 1})
	c2 := uint64(32)
	g2 := 9.25
	r.Registry().Counter("sm.warp_insts", 0, &c2)
	r.Registry().Gauge("power.total_pj", InstanceChip, func() float64 { return g2 })

	r.Finalize()

	want := []CounterValue{
		{Name: "power.total_pj", Instance: InstanceChip, Value: 9.25},
		{Name: "sm.warp_insts", Instance: 0, Value: 42},
	}
	if got := r.Finals(); !reflect.DeepEqual(got, want) {
		t.Errorf("Finals() = %+v, want %+v", got, want)
	}
}

// TestFinalizeReadsLateMutations checks that fold reads the counter through
// its pointer at fold time, not at registration time — the owner keeps
// incrementing the field for the whole launch.
func TestFinalizeReadsLateMutations(t *testing.T) {
	r := NewRecorder(0)
	r.BeginLaunch(Meta{})
	v := uint64(0)
	r.Registry().Counter("sm.thread_insts", 2, &v)
	v = 1 << 40 // simulated work after registration
	r.Finalize()
	got := r.Finals()
	if len(got) != 1 || got[0].Value != float64(uint64(1)<<40) {
		t.Errorf("Finals() = %+v, want single counter of 2^40", got)
	}
}

// TestNewSampleDedupe checks that a final sample coinciding with the last
// checkpoint sample is dropped, and that SetCycleBase keeps the cycle axis
// sequence-global.
func TestNewSampleDedupe(t *testing.T) {
	r := NewRecorder(256)
	if r.RequestedStride() != 256 {
		t.Fatalf("RequestedStride() = %d, want 256", r.RequestedStride())
	}
	r.BeginLaunch(Meta{})
	if s := r.NewSample(100); s == nil {
		t.Fatal("first sample at cycle 100 rejected")
	}
	if s := r.NewSample(100); s != nil {
		t.Fatal("duplicate sample at cycle 100 accepted")
	}

	// Second launch of a sequence: launch-local cycles restart, the base
	// keeps the global axis monotonic — including dedupe against the last
	// sample of the previous launch.
	r.SetCycleBase(100)
	if s := r.NewSample(0); s != nil {
		t.Fatal("sample at global cycle 100 (base 100 + local 0) not deduped")
	}
	s := r.NewSample(50)
	if s == nil {
		t.Fatal("sample at global cycle 150 rejected")
	}
	if s.Cycle != 150 {
		t.Errorf("sample cycle = %d, want 150 (base 100 + local 50)", s.Cycle)
	}
	if got := len(r.Samples()); got != 2 {
		t.Errorf("len(Samples()) = %d, want 2", got)
	}
}

// TestFinalsSorted checks the deterministic export order: by name, then by
// instance.
func TestFinalsSorted(t *testing.T) {
	r := NewRecorder(0)
	r.BeginLaunch(Meta{})
	vs := make([]uint64, 4)
	r.Registry().Counter("b.metric", 1, &vs[0])
	r.Registry().Counter("b.metric", 0, &vs[1])
	r.Registry().Counter("a.metric", 3, &vs[2])
	r.Registry().Counter("a.metric", InstanceChip, &vs[3])
	r.Finalize()
	got := r.Finals()
	order := make([]metricKey, len(got))
	for i, c := range got {
		order[i] = metricKey{c.Name, c.Instance}
	}
	want := []metricKey{
		{"a.metric", InstanceChip}, {"a.metric", 3},
		{"b.metric", 0}, {"b.metric", 1},
	}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("Finals order = %v, want %v", order, want)
	}
}
