package stats

import (
	"strings"
	"testing"

	"gscalar/internal/core"
	"gscalar/internal/isa"
)

func TestCountersAndFractions(t *testing.T) {
	var s Sim
	s.CountInst(isa.ClassALU, 32, false)
	s.CountInst(isa.ClassALU, 16, true)
	s.CountInst(isa.ClassSFU, 32, false)
	s.CountInst(isa.ClassMem, 8, true)
	if s.WarpInsts != 4 || s.ThreadInsts != 88 {
		t.Fatalf("counts = %d/%d", s.WarpInsts, s.ThreadInsts)
	}
	if got := s.FracDivergent(); got != 0.5 {
		t.Fatalf("divergent = %v", got)
	}
	s.Cycles = 2
	if got := s.IPC(); got != 2 {
		t.Fatalf("IPC = %v", got)
	}
}

func TestEligibilityCounting(t *testing.T) {
	var s Sim
	s.CountEligibility(core.EligibleFull, isa.ClassALU)
	s.CountEligibility(core.EligibleFull, isa.ClassSFU)
	s.CountEligibility(core.EligibleFull, isa.ClassMem)
	s.CountEligibility(core.EligibleHalf, isa.ClassALU)
	s.CountEligibility(core.EligibleDivergent, isa.ClassALU)
	s.CountEligibility(core.NotEligible, isa.ClassALU)
	if s.EligFullALU != 1 || s.EligFullSFU != 1 || s.EligFullMem != 1 ||
		s.EligHalf != 1 || s.EligDiv != 1 {
		t.Fatalf("elig = %+v", s)
	}
	if s.EligibleTotal() != 5 {
		t.Fatalf("total = %d", s.EligibleTotal())
	}
}

func TestAddMerges(t *testing.T) {
	var a, b Sim
	a.CountInst(isa.ClassALU, 32, false)
	a.RFReads[core.AccessScalar] = 3
	a.CompressedBits = 100
	a.OriginalBits = 400
	b.CountInst(isa.ClassSFU, 32, true)
	b.RFReads[core.AccessScalar] = 2
	b.CompressedBits = 100
	b.OriginalBits = 200
	a.Add(&b)
	if a.WarpInsts != 2 || a.RFReads[core.AccessScalar] != 5 {
		t.Fatalf("merged = %+v", a)
	}
	if got := a.CompressionRatio(); got != 3 {
		t.Fatalf("ratio = %v", got)
	}
}

func TestRFReadFrac(t *testing.T) {
	var s Sim
	s.RFReads[core.AccessScalar] = 30
	s.RFReads[core.Access3Byte] = 50
	s.RFReads[core.AccessNone] = 20
	if got := s.RFReadFrac(core.AccessScalar); got != 0.3 {
		t.Fatalf("scalar frac = %v", got)
	}
	if got := s.RFReadFrac(core.Access2Byte); got != 0 {
		t.Fatalf("empty frac = %v", got)
	}
}

func TestZeroDivision(t *testing.T) {
	var s Sim
	if s.IPC() != 0 || s.FracDivergent() != 0 || s.MoveOverhead() != 0 {
		t.Fatal("zero-value stats must not panic or NaN")
	}
	if s.CompressionRatio() != 1 {
		t.Fatalf("empty ratio = %v", s.CompressionRatio())
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 3.14159)
	tb.Row("b", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "3.142") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	// Columns align: all rows have the same prefix width for column 2.
	h := strings.Index(lines[0], "value")
	v := strings.Index(lines[2], "3.142")
	if h != v {
		t.Errorf("columns misaligned: %d vs %d\n%s", h, v, out)
	}
}
