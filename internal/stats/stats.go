// Package stats collects the simulator's instruction- and access-level
// statistics and formats the tables/figures of the paper's evaluation.
package stats

import (
	"fmt"
	"strings"

	"gscalar/internal/core"
	"gscalar/internal/isa"
)

// Sim aggregates the counters of one simulation run.
type Sim struct {
	Cycles        uint64
	WarpInsts     uint64 // committed warp instructions (excluding injected moves)
	ThreadInsts   uint64 // sum of active lanes over committed instructions
	InjectedMoves uint64 // decompress moves injected before divergent writes (§3.3)
	MovesElided   uint64 // moves avoided by compiler-assisted dead-value analysis (§3.3)

	// Instruction classification (Figure 1 / Figure 9 inputs).
	ByClass              [4]uint64 // per isa.Class
	Divergent            uint64    // active mask != live mask
	DivergentValueScalar uint64    // Fig 1 oracle: divergent with value-uniform sources

	// Scalar-execution eligibility as detected by the running architecture.
	EligFullALU uint64 // full-scalar, ALU class
	EligFullSFU uint64
	EligFullMem uint64
	EligHalf    uint64
	EligDiv     uint64

	// Register-file access classes (Figure 8), counted per source-register
	// read.
	RFReads [core.NumAccessClasses]uint64

	// Compression-ratio accounting (register writebacks).
	CompressedBits uint64
	OriginalBits   uint64

	// Memory system.
	L1Accesses, L1Misses uint64
	L2Accesses, L2Misses uint64
	DRAMTransactions     uint64
	MSHRMerges           uint64 // loads merged into an in-flight line fill

	// Scheduler behaviour. IssueStallScoreboard counts ready→stalled
	// transitions (a warp newly blocked on a scoreboard hazard), not
	// stalled cycles: the issue stage parks hazard-blocked warps off the
	// ready list and re-checks them only when a writeback clears the
	// hazard, so there is no per-cycle re-count to accumulate.
	IssueStallScoreboard uint64
	IssueStallUnit       uint64
	IssueStallOC         uint64
	ScalarBankConflicts  uint64 // Gilani-baseline single-bank serialization
}

// Add accumulates other into s (used to merge per-SM stats).
func (s *Sim) Add(o *Sim) {
	s.WarpInsts += o.WarpInsts
	s.ThreadInsts += o.ThreadInsts
	s.InjectedMoves += o.InjectedMoves
	s.MovesElided += o.MovesElided
	for i := range s.ByClass {
		s.ByClass[i] += o.ByClass[i]
	}
	s.Divergent += o.Divergent
	s.DivergentValueScalar += o.DivergentValueScalar
	s.EligFullALU += o.EligFullALU
	s.EligFullSFU += o.EligFullSFU
	s.EligFullMem += o.EligFullMem
	s.EligHalf += o.EligHalf
	s.EligDiv += o.EligDiv
	for i := range s.RFReads {
		s.RFReads[i] += o.RFReads[i]
	}
	s.CompressedBits += o.CompressedBits
	s.OriginalBits += o.OriginalBits
	s.L1Accesses += o.L1Accesses
	s.L1Misses += o.L1Misses
	s.L2Accesses += o.L2Accesses
	s.L2Misses += o.L2Misses
	s.DRAMTransactions += o.DRAMTransactions
	s.MSHRMerges += o.MSHRMerges
	s.IssueStallScoreboard += o.IssueStallScoreboard
	s.IssueStallUnit += o.IssueStallUnit
	s.IssueStallOC += o.IssueStallOC
	s.ScalarBankConflicts += o.ScalarBankConflicts
}

// CountInst records a committed instruction of the given class.
func (s *Sim) CountInst(class isa.Class, activeLanes int, divergent bool) {
	s.WarpInsts++
	s.ThreadInsts += uint64(activeLanes)
	s.ByClass[class]++
	if divergent {
		s.Divergent++
	}
}

// CountEligibility records the architecture's scalar classification.
func (s *Sim) CountEligibility(e core.Eligibility, class isa.Class) {
	switch e {
	case core.EligibleFull:
		switch class {
		case isa.ClassALU:
			s.EligFullALU++
		case isa.ClassSFU:
			s.EligFullSFU++
		case isa.ClassMem:
			s.EligFullMem++
		}
	case core.EligibleHalf:
		s.EligHalf++
	case core.EligibleDivergent:
		s.EligDiv++
	}
}

// IPC returns committed warp instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WarpInsts) / float64(s.Cycles)
}

// FracDivergent returns the Figure 1 divergent-instruction fraction.
func (s *Sim) FracDivergent() float64 { return frac(s.Divergent, s.WarpInsts) }

// FracDivergentScalar returns the Figure 1 divergent-scalar fraction (of
// total instructions).
func (s *Sim) FracDivergentScalar() float64 { return frac(s.DivergentValueScalar, s.WarpInsts) }

// EligibleTotal returns all instructions eligible for any scalar execution.
func (s *Sim) EligibleTotal() uint64 {
	return s.EligFullALU + s.EligFullSFU + s.EligFullMem + s.EligHalf + s.EligDiv
}

// CompressionRatio returns original/compressed bits over all writebacks.
func (s *Sim) CompressionRatio() float64 {
	if s.CompressedBits == 0 {
		return 1
	}
	return float64(s.OriginalBits) / float64(s.CompressedBits)
}

// RFReadFrac returns the Figure 8 share of access class c.
func (s *Sim) RFReadFrac(c core.AccessClass) float64 {
	var total uint64
	for _, n := range s.RFReads {
		total += n
	}
	return frac(s.RFReads[c], total)
}

// MoveOverhead returns injected moves as a fraction of committed
// instructions (§3.3: ~2 % expected).
func (s *Sim) MoveOverhead() float64 { return frac(s.InjectedMoves, s.WarpInsts) }

func frac(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Table is a simple aligned text table builder for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with %.3f.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
