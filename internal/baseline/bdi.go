// Package baseline implements the prior-work comparators the paper
// evaluates against: Base-Delta-Immediate register compression as used by
// Warped-Compression (Lee et al., ISCA'15 — Figure 12's "W-C" bars) and the
// scalar-register-file architecture (Gilani et al., HPCA'13 — the "ALU
// scalar" / "scalar only" bars).
package baseline

import (
	"encoding/binary"

	"gscalar/internal/warp"
)

// BDIResult describes the best BDI encoding found for a vector register.
type BDIResult struct {
	Compressed bool
	BaseBytes  int // 0 for the all-zero special case
	DeltaBytes int
	SizeBytes  int // total compressed size including metadata byte
}

// bdiConfigs are the (base size, delta size) pairs of the original BDI
// proposal, tried in order of decreasing benefit.
var bdiConfigs = []struct{ base, delta int }{
	{8, 1}, {8, 2}, {8, 4},
	{4, 1}, {4, 2},
	{2, 1},
}

// CompressBDI applies BDI to the byte image of a vector register (width
// lanes × 4 bytes, little-endian) and returns the best encoding. The
// uncompressed size is width*4 bytes.
func CompressBDI(vec []uint32) BDIResult {
	raw := make([]byte, len(vec)*4)
	for i, v := range vec {
		binary.LittleEndian.PutUint32(raw[i*4:], v)
	}
	full := len(raw)

	best := BDIResult{Compressed: false, SizeBytes: full}

	// Special case: all zero.
	allZero := true
	for _, b := range raw {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return BDIResult{Compressed: true, BaseBytes: 0, DeltaBytes: 0, SizeBytes: 1}
	}

	consider := func(r BDIResult) {
		if r.SizeBytes < best.SizeBytes {
			best = r
		}
	}

	// Special case: repeated 8-byte value.
	if repeats(raw, 8) {
		consider(BDIResult{Compressed: true, BaseBytes: 8, DeltaBytes: 0, SizeBytes: 9})
	}

	for _, c := range bdiConfigs {
		if full%c.base != 0 {
			continue
		}
		if ok := fitsBaseDelta(raw, c.base, c.delta); ok {
			n := c.base + (full/c.base)*c.delta + 1
			consider(BDIResult{Compressed: true, BaseBytes: c.base, DeltaBytes: c.delta, SizeBytes: n})
		}
	}
	return best
}

func repeats(raw []byte, unit int) bool {
	for i := unit; i < len(raw); i++ {
		if raw[i] != raw[i%unit] {
			return false
		}
	}
	return true
}

func fitsBaseDelta(raw []byte, baseSize, deltaSize int) bool {
	base := loadUint(raw[:baseSize])
	limit := int64(1) << uint(deltaSize*8-1)
	for off := 0; off < len(raw); off += baseSize {
		v := loadUint(raw[off : off+baseSize])
		d := int64(v) - int64(base)
		if d < -limit || d >= limit {
			return false
		}
	}
	return true
}

func loadUint(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// BDIRegFile tracks the BDI-compressed state of a warp's registers for the
// Warped-Compression comparator: per-register compressed size drives the
// energy model (arrays activated ∝ bytes that must be read).
type BDIRegFile struct {
	width int
	size  []int // compressed bytes per register
}

// NewBDIRegFile allocates state for numRegs registers of width lanes.
// Registers start uncompressed.
func NewBDIRegFile(numRegs, width int) *BDIRegFile {
	s := make([]int, numRegs)
	for i := range s {
		s[i] = width * 4
	}
	return &BDIRegFile{width: width, size: s}
}

// OnWrite records a write. Divergent (partial) writes store uncompressed,
// matching Warped-Compression's handling of partial updates.
func (rf *BDIRegFile) OnWrite(reg int, vec []uint32, active, live warp.Mask) BDIResult {
	if active != live {
		rf.size[reg] = rf.width * 4
		return BDIResult{Compressed: false, SizeBytes: rf.width * 4}
	}
	r := CompressBDI(vec)
	rf.size[reg] = r.SizeBytes
	return r
}

// ReadBytes returns the number of bytes that must be fetched to read the
// register (its compressed size, rounded up to whole 16-byte arrays by the
// caller's energy model).
func (rf *BDIRegFile) ReadBytes(reg int) int { return rf.size[reg] }

// CompressionRatio returns original/compressed for one register.
func (rf *BDIRegFile) CompressionRatio(reg int) float64 {
	return float64(rf.width*4) / float64(rf.size[reg])
}
