package baseline

import (
	"testing"

	"gscalar/internal/isa"
	"gscalar/internal/warp"
)

func uvec(v uint32) []uint32 {
	out := make([]uint32, 32)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestScalarRFDetection(t *testing.T) {
	full := warp.FullMask(32)
	s := NewScalarRF(16, 32, full)

	s.OnWrite(1, uvec(5), full)
	s.OnWrite(2, uvec(7), full)
	if !s.IsScalarReg(1) || !s.IsScalarReg(2) {
		t.Fatal("uniform writes not marked scalar")
	}

	add := &isa.Instruction{Op: isa.OpIAdd, Dst: isa.Reg(3), NSrc: 2}
	add.Srcs[0], add.Srcs[1] = isa.Reg(1), isa.Reg(2)
	if !s.Detect(add, full) {
		t.Fatal("scalar ALU op not detected")
	}
	if got := s.ScalarReads(add); got != 2 {
		t.Fatalf("scalar reads = %d, want 2", got)
	}

	// Divergent instructions are never eligible for this baseline.
	if s.Detect(add, 0xFF) {
		t.Fatal("divergent op detected")
	}
	// SFU and memory classes are never eligible.
	sin := &isa.Instruction{Op: isa.OpSin, Dst: isa.Reg(3), NSrc: 1}
	sin.Srcs[0] = isa.Reg(1)
	if s.Detect(sin, full) {
		t.Fatal("SFU op detected by ALU-only baseline")
	}
	ld := &isa.Instruction{Op: isa.OpLdGlobal, Dst: isa.Reg(3), NSrc: 1}
	ld.Srcs[0] = isa.Reg(1)
	if s.Detect(ld, full) {
		t.Fatal("load detected by ALU-only baseline")
	}

	// A vector write invalidates scalar status.
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = uint32(i)
	}
	s.OnWrite(1, vec, full)
	if s.IsScalarReg(1) {
		t.Fatal("vector write left register scalar")
	}
	if s.Detect(add, full) {
		t.Fatal("op with vector source detected")
	}

	// Partial writes invalidate too (the scalar bank holds stale data).
	s.OnWrite(2, uvec(7), 0xF)
	if s.IsScalarReg(2) {
		t.Fatal("partial write left register scalar")
	}
}

func TestScalarRFNonUniformSpecial(t *testing.T) {
	full := warp.FullMask(32)
	s := NewScalarRF(16, 32, full)
	mov := &isa.Instruction{Op: isa.OpMov, Dst: isa.Reg(1), NSrc: 1}
	mov.Srcs[0] = isa.Spec(isa.SpecTidX)
	if s.Detect(mov, full) {
		t.Fatal("mov tid.x detected as scalar")
	}
	mov.Srcs[0] = isa.Imm(3)
	if !s.Detect(mov, full) {
		t.Fatal("mov imm not detected as scalar")
	}
}
