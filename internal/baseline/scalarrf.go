package baseline

import (
	"gscalar/internal/core"
	"gscalar/internal/isa"
	"gscalar/internal/warp"
)

// ScalarRF models the prior scalar-register-file architecture (Gilani et
// al. [3]): scalar values detected on non-divergent arithmetic/logic
// writebacks are stored in a single dedicated scalar register file bank.
// Scalar reads are cheap but all warps' scalar operands contend for the one
// bank — the burst bottleneck §4.1 describes. Scalar execution covers only
// non-divergent ALU instructions.
type ScalarRF struct {
	width  int
	live   warp.Mask
	scalar []bool // register currently holds a detected scalar value
}

// NewScalarRF allocates per-warp scalar tracking state.
func NewScalarRF(numRegs, width int, live warp.Mask) *ScalarRF {
	return &ScalarRF{width: width, live: live, scalar: make([]bool, numRegs)}
}

// IsScalarReg reports whether reg currently holds a detected scalar value.
func (s *ScalarRF) IsScalarReg(reg int) bool { return s.scalar[reg] }

// OnWrite updates scalar tracking for a register write. Only full
// (non-divergent) writes can mark a register scalar; a partial write
// invalidates scalar status (the vector copy is updated, not the scalar
// bank).
func (s *ScalarRF) OnWrite(reg int, vec []uint32, active warp.Mask) {
	if active != s.live {
		s.scalar[reg] = false
		return
	}
	s.scalar[reg] = core.IsScalar(vec, s.live)
}

// Detect reports whether the instruction is scalar-eligible under this
// architecture: non-divergent, arithmetic/logic class only, with every
// register source scalar and no per-lane special source.
func (s *ScalarRF) Detect(in *isa.Instruction, active warp.Mask) bool {
	if active != s.live {
		return false
	}
	if in.Class() != isa.ClassALU {
		return false
	}
	if in.Dst.Kind == isa.OpdNone {
		return false
	}
	if in.HasNonUniformNonRegSource() {
		return false
	}
	if in.Op == isa.OpSelP {
		return false // predicate uniformity is not tracked by this baseline
	}
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		if src.Kind == isa.OpdReg && !s.scalar[src.Reg] {
			return false
		}
	}
	return true
}

// ScalarReads returns how many of the instruction's register sources hit
// the scalar bank (each costs one scalar-bank cycle — the single-bank
// serialization point).
func (s *ScalarRF) ScalarReads(in *isa.Instruction) int {
	n := 0
	for i := uint8(0); i < in.NSrc; i++ {
		src := in.Srcs[i]
		if src.Kind == isa.OpdReg && s.scalar[src.Reg] {
			n++
		}
	}
	return n
}
