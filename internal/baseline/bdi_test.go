package baseline

import (
	"testing"
	"testing/quick"

	"gscalar/internal/warp"
)

func TestBDIAllZero(t *testing.T) {
	vec := make([]uint32, 32)
	r := CompressBDI(vec)
	if !r.Compressed || r.SizeBytes != 1 {
		t.Fatalf("all-zero = %+v", r)
	}
}

func TestBDIRepeated(t *testing.T) {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = 0xDEADBEEF
	}
	r := CompressBDI(vec)
	if !r.Compressed {
		t.Fatal("repeated value not compressed")
	}
	// Either the repeated-8-byte special case (9 bytes) or base8+delta1
	// (8 + 16 + 1): the special case must win.
	if r.SizeBytes != 9 {
		t.Fatalf("repeated size = %d, want 9", r.SizeBytes)
	}
}

func TestBDIBase4Delta1(t *testing.T) {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = 0x10000000 + uint32(i)
	}
	r := CompressBDI(vec)
	if !r.Compressed {
		t.Fatal("near values not compressed")
	}
	// base4+delta1: 4 + 32 + 1 = 37 bytes.
	if r.SizeBytes != 37 {
		t.Fatalf("size = %d, want 37", r.SizeBytes)
	}
}

func TestBDIIncompressible(t *testing.T) {
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = uint32(i) * 0x9E3779B9
	}
	r := CompressBDI(vec)
	if r.Compressed {
		t.Fatalf("hash-spread values compressed: %+v", r)
	}
	if r.SizeBytes != 128 {
		t.Fatalf("size = %d, want 128", r.SizeBytes)
	}
}

// TestBDINeverExpands: the chosen encoding never exceeds the raw size.
func TestBDINeverExpands(t *testing.T) {
	f := func(raw [32]uint32) bool {
		r := CompressBDI(raw[:])
		return r.SizeBytes <= 128 && r.SizeBytes >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestBDIWidePair: the paper's observation that byte-wise compression can
// lose to BDI when similar values differ widely in hex — e.g. 0x00FF and
// 0x0100 are numerically adjacent (BDI base+delta catches them) but share
// only their top two bytes.
func TestBDIWidePair(t *testing.T) {
	vec := make([]uint32, 32)
	for i := range vec {
		if i%2 == 0 {
			vec[i] = 0x00FF
		} else {
			vec[i] = 0x0100
		}
	}
	r := CompressBDI(vec)
	if !r.Compressed {
		t.Fatalf("adjacent-value pattern = %+v", r)
	}
	// The alternating pair repeats every 8 bytes, so the repeated-value
	// special case captures it in 9 bytes — better than byte-wise
	// compression manages on this pattern (2 same MSBs -> 72 bytes).
	if r.SizeBytes != 9 {
		t.Fatalf("size = %d, want 9", r.SizeBytes)
	}
}

func TestBDIRegFile(t *testing.T) {
	rf := NewBDIRegFile(8, 32)
	if rf.ReadBytes(1) != 128 {
		t.Fatalf("initial size = %d", rf.ReadBytes(1))
	}
	vec := make([]uint32, 32)
	for i := range vec {
		vec[i] = 42
	}
	full := warp.FullMask(32)
	rf.OnWrite(1, vec, full, full)
	if rf.ReadBytes(1) != 9 {
		t.Fatalf("scalar size = %d, want 9", rf.ReadBytes(1))
	}
	if got := rf.CompressionRatio(1); got < 14 {
		t.Fatalf("ratio = %v", got)
	}
	// A divergent (partial) write stores uncompressed.
	rf.OnWrite(1, vec, 0xFF, full)
	if rf.ReadBytes(1) != 128 {
		t.Fatalf("post-divergent size = %d, want 128", rf.ReadBytes(1))
	}
}
