package gpu

import (
	"context"
	"fmt"

	"gscalar/internal/kernel"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
)

// Step is one kernel launch of a sequence.
type Step struct {
	Prog   *kernel.Program
	Launch *kernel.LaunchConfig
}

// RunSequence simulates a dependent sequence of kernel launches sharing one
// device memory. It is RunSequenceContext with a background context.
func RunSequence(cfg Config, arch sm.Arch, gmem *kernel.Memory, steps []Step) (Result, error) {
	return RunSequenceContext(context.Background(), cfg, arch, gmem, steps)
}

// RunSequenceContext simulates a dependent sequence of kernel launches
// sharing one device memory — the way real applications run (e.g. srad's two
// passes, or an iterative stencil). Launches are serialised by an implicit
// device-level barrier, cycles accumulate across launches, and energy is
// integrated over the whole sequence, so the returned Result is directly
// comparable to a single-launch Run. Cancelling ctx cuts the sequence at the
// in-flight launch's next lifecycle checkpoint; the Result then aggregates
// every completed launch plus the cancelled launch's partial prefix.
func RunSequenceContext(ctx context.Context, cfg Config, arch sm.Arch, gmem *kernel.Memory, steps []Step) (Result, error) {
	if len(steps) == 0 {
		return Result{}, fmt.Errorf("gpu: empty launch sequence")
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}

	var meter power.Meter
	var agg stats.Sim
	var totalCycles uint64
	anyCodec := arch.HasCodec()
	var runErr error

	for i, st := range steps {
		stepCfg := cfg
		stepCfg.MaxCycles = maxCycles - totalCycles
		if cfg.Telemetry != nil {
			// Each launch's internal cycle counter restarts at zero; the base
			// keeps the recorded series on the sequence-global cycle axis.
			cfg.Telemetry.SetCycleBase(totalCycles)
		}
		r, err := runWithMeter(ctx, stepCfg, arch, st.Prog, st.Launch, gmem, &meter)
		totalCycles += r.Cycles
		agg.Add(&r.Stats)
		if err != nil {
			if !isContextErr(err) {
				return Result{}, fmt.Errorf("gpu: launch %d (%s): %w", i, st.Prog.Name, err)
			}
			runErr = fmt.Errorf("gpu: launch %d (%s): %w", i, st.Prog.Name, err)
			break
		}
	}
	agg.Cycles = totalCycles

	staticW := cfg.Energies.StaticW(cfg.NumSMs, anyCodec)
	bd := meter.Finish(totalCycles, cfg.CoreClockHz, staticW)
	if cfg.Telemetry != nil {
		cfg.Telemetry.Finalize()
	}
	res := Result{
		Cycles:  totalCycles,
		Stats:   agg,
		Power:   bd,
		IPC:     agg.IPC(),
		EnergyJ: bd.EnergyJ,
	}
	if bd.AvgPowerW > 0 {
		res.IPCPerW = res.IPC / bd.AvgPowerW
	}
	return res, runErr
}
