package gpu

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gscalar/internal/sm"
)

func TestRunContextPreCancelled(t *testing.T) {
	prog, lc, mem, _ := buildSaxpy(t, 256)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, DefaultConfig(), sm.GScalar(), prog, lc, mem)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Cycles != 0 {
		t.Errorf("pre-cancelled run simulated %d cycles", res.Cycles)
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	prog, lc, mem, _ := buildSaxpy(t, 256)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, DefaultConfig(), sm.Baseline(), prog, lc, mem)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestObserverDoesNotChangeResults runs with and without a progress observer
// (serial and phased loops) and requires bit-identical results, plus sane
// snapshots: strictly increasing cycles, non-decreasing instruction counts,
// and a live-SM count within the chip size.
func TestObserverDoesNotChangeResults(t *testing.T) {
	for _, workers := range []int{0, 4} {
		prog, lc, mem, want := buildSaxpy(t, 4096)
		cfg := DefaultConfig()
		cfg.Workers = workers
		base, err := Run(cfg, sm.GScalar(), prog, lc, mem)
		if err != nil {
			t.Fatal(err)
		}
		checkSaxpy(t, mem, lc, want)

		prog, lc, mem, _ = buildSaxpy(t, 4096)
		var snaps []Progress
		cfg.ObserverStride = 64
		cfg.Observer = func(p Progress) { snaps = append(snaps, p) }
		res, err := Run(cfg, sm.GScalar(), prog, lc, mem)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("workers=%d: observed run differs from unobserved run", workers)
		}
		if len(snaps) == 0 {
			t.Fatalf("workers=%d: observer never called over %d cycles", workers, res.Cycles)
		}
		for i, p := range snaps {
			if i > 0 && p.Cycle <= snaps[i-1].Cycle {
				t.Errorf("workers=%d: snapshot cycles not increasing: %d then %d", workers, snaps[i-1].Cycle, p.Cycle)
			}
			if i > 0 && p.WarpInsts < snaps[i-1].WarpInsts {
				t.Errorf("workers=%d: retired instructions decreased", workers)
			}
			if p.LiveSMs < 0 || p.LiveSMs > cfg.NumSMs {
				t.Errorf("workers=%d: LiveSMs = %d with %d SMs", workers, p.LiveSMs, cfg.NumSMs)
			}
		}
	}
}

// TestCancelMidRunDeterministic cancels the same run at the same simulated
// cycle twice — via an observer, so the cut point is defined in simulated
// time, not wall-clock time — and requires the two partial results to be
// bit-identical, for both the serial and the phased loop.
func TestCancelMidRunDeterministic(t *testing.T) {
	for _, workers := range []int{0, 4} {
		prog, lc, mem, _ := buildSaxpy(t, 4096)
		cfg := DefaultConfig()
		cfg.Workers = workers
		full, err := Run(cfg, sm.GScalar(), prog, lc, mem)
		if err != nil {
			t.Fatal(err)
		}
		if full.Cycles < 128 {
			t.Fatalf("workload too short to cancel mid-run (%d cycles)", full.Cycles)
		}
		cancelAt := full.Cycles / 2

		partial := func() Result {
			prog, lc, mem, _ := buildSaxpy(t, 4096)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c := cfg
			c.ObserverStride = 16
			c.Observer = func(p Progress) {
				if p.Cycle >= cancelAt {
					cancel()
				}
			}
			res, err := RunContext(ctx, c, sm.GScalar(), prog, lc, mem)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
			return res
		}
		a := partial()
		b := partial()
		if a.Cycles == 0 || a.Cycles >= full.Cycles {
			t.Errorf("workers=%d: partial run spans %d cycles, full run %d", workers, a.Cycles, full.Cycles)
		}
		if a.Power.AvgPowerW <= 0 {
			t.Errorf("workers=%d: partial run has no finalized power", workers)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: cancelling at cycle %d twice gave different partial results:\n%+v\nvs\n%+v",
				workers, cancelAt, a, b)
		}
	}
}
