package gpu

import (
	"math"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/power"
	"gscalar/internal/sm"
)

// invariantKernels exercise different mixes: scalar-rich, divergent, and
// memory-heavy.
var invariantKernels = map[string]string{
	"scalar-rich": `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	mov r3, $0
	mov r4, 0
L:
	imul r5, r3, 3
	iadd r6, r5, 1
	iadd r4, r4, 1
	isetp.lt p0, r4, 16
	@p0 bra L
	shl r7, r2, 2
	iadd r8, $1, r7
	stg [r8], r6
	exit
`,
	"divergent": `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	and r3, r1, 3
	isetp.eq p0, r3, 0
	@p0 bra A
	imul r4, r1, 5
	bra J
A:
	mov r5, $0
	imul r4, r5, 7
J:
	shl r6, r2, 2
	iadd r7, $1, r6
	stg [r7], r4
	exit
`,
	"memory-heavy": `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	ldg r5, [r4]
	iadd r6, $1, r3
	ldg r7, [r6]
	iadd r8, r5, r7
	iadd r9, $2, r3
	stg [r9], r8
	exit
`,
}

func runInvariant(t *testing.T, src string, arch sm.Arch) Result {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	const n = 8 * 128
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i * 3)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
	lc.Params[0] = mem.AllocU32(vals)
	lc.Params[1] = mem.Alloc(n * 4)
	lc.Params[2] = mem.Alloc(n * 4)
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxCycles = 2_000_000
	res, err := Run(cfg, arch, prog, lc, mem)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEnergyInvariants pins the physical sanity conditions the paper's
// comparisons rest on.
func TestEnergyInvariants(t *testing.T) {
	for name, src := range invariantKernels {
		t.Run(name, func(t *testing.T) {
			base := runInvariant(t, src, sm.Baseline())
			gs := runInvariant(t, src, sm.GScalar())
			rvc := runInvariant(t, src, sm.RVCOnly())

			// Committed instruction counts are architecture-independent.
			if base.Stats.WarpInsts != gs.Stats.WarpInsts ||
				base.Stats.ThreadInsts != gs.Stats.ThreadInsts {
				t.Errorf("instruction counts differ: baseline %d/%d vs G-Scalar %d/%d",
					base.Stats.WarpInsts, base.Stats.ThreadInsts,
					gs.Stats.WarpInsts, gs.Stats.ThreadInsts)
			}

			// Energy bookkeeping is self-consistent.
			for _, r := range []Result{base, gs, rvc} {
				if math.Abs(r.Power.AvgPowerW*r.Power.Seconds-r.EnergyJ) > 1e-9*r.EnergyJ {
					t.Errorf("power × time != energy: %v", r.Power)
				}
				for c := power.Component(0); c < power.NumComponents; c++ {
					if r.Power.PerComp[c] < 0 {
						t.Errorf("negative power in %v", c)
					}
				}
			}

			// The compressing register file never costs more RF dynamic
			// power than the baseline RF.
			if rvc.Power.RFDynamicW() > base.Power.RFDynamicW()*1.02 {
				t.Errorf("RVC RF dynamic %.4f W exceeds baseline %.4f W",
					rvc.Power.RFDynamicW(), base.Power.RFDynamicW())
			}
			// Scalar execution never increases execution-unit energy.
			baseExec := base.Power.PerComp[power.CompExecALU] + base.Power.PerComp[power.CompExecSFU]
			gsExec := gs.Power.PerComp[power.CompExecALU] + gs.Power.PerComp[power.CompExecSFU]
			// Compare energies (power × time), not powers, since cycle
			// counts differ.
			if gsExec*gs.Power.Seconds > baseExec*base.Power.Seconds*1.001 {
				t.Errorf("G-Scalar exec energy exceeds baseline: %.4g vs %.4g J",
					gsExec*gs.Power.Seconds, baseExec*base.Power.Seconds)
			}
		})
	}
}

// TestIPCBound: chip IPC can never exceed schedulers × SMs.
func TestIPCBound(t *testing.T) {
	for name, src := range invariantKernels {
		res := runInvariant(t, src, sm.Baseline())
		limit := float64(2 * 2) // 2 schedulers × 2 SMs
		if res.IPC > limit {
			t.Errorf("%s: IPC %.2f exceeds issue bound %.0f", name, res.IPC, limit)
		}
	}
}
