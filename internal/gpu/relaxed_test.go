package gpu

import (
	"math/rand"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
	"gscalar/internal/warp"
)

// relaxedResult strips the execution metadata from a Result so runs that
// differ only in how they executed (worker count) compare equal.
func relaxedResult(r Result) Result {
	r.ExecMode = ""
	r.Workers = 0
	return r
}

// TestRelaxedFunctionalCorrectness cross-checks the relaxed epoch loop
// against the functional golden model on randomly generated kernels: global
// stores stay buffered for up to a whole epoch there, so this exercises the
// store-buffer overlay (same-SM read-after-write through global memory) that
// the per-cycle modes never need.
func TestRelaxedFunctionalCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		src := genKernel(rng)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		const threads = 4 * 96
		lc := func(m *kernel.Memory) *kernel.LaunchConfig {
			l := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 96, Y: 1}}
			l.Params[0] = m.Alloc(threads * 16)
			return l
		}

		mRef := kernel.NewMemory()
		lRef := lc(mRef)
		if _, err := warp.FuncRun(prog, lRef, mRef, 32, 2_000_000); err != nil {
			t.Fatalf("trial %d functional: %v\n%s", trial, err, src)
		}
		want := mRef.ReadU32(lRef.Params[0], threads*4)

		mT := kernel.NewMemory()
		lT := lc(mT)
		cfg := DefaultConfig()
		cfg.NumSMs = 2
		cfg.MaxCycles = 5_000_000
		cfg.Workers = 2
		cfg.EpochCycles = 64
		if _, err := Run(cfg, sm.GScalar(), prog, lT, mT); err != nil {
			t.Fatalf("trial %d relaxed: %v\n%s", trial, err, src)
		}
		got := mT.ReadU32(lT.Params[0], threads*4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mem[%d] = %d, want %d\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}

// relaxedRun runs one fixed kernel under the relaxed loop with the given
// worker count and epoch length, returning the Result and final memory.
func relaxedRun(t *testing.T, src string, workers, epochCycles int) (Result, []uint32) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 8 * 64
	m := kernel.NewMemory()
	l := &kernel.LaunchConfig{Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 64, Y: 1}}
	l.Params[0] = m.Alloc(threads * 16)
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxCycles = 5_000_000
	cfg.Workers = workers
	cfg.EpochCycles = epochCycles
	r, err := Run(cfg, sm.GScalar(), prog, l, m)
	if err != nil {
		t.Fatalf("relaxed run (workers=%d): %v", workers, err)
	}
	return r, m.ReadU32(l.Params[0], threads*4)
}

// TestRelaxedWorkerCountInvariance checks the core determinism promise of
// the relaxed mode: for a fixed EpochCycles, every worker count — and every
// worker-goroutine startup order — produces the identical Result, because
// commit order is a pure function of (SM index, issue cycle).
func TestRelaxedWorkerCountInvariance(t *testing.T) {
	src := genKernel(rand.New(rand.NewSource(11)))

	base, baseMem := relaxedRun(t, src, 1, 64)
	if base.ExecMode != "relaxed" {
		t.Fatalf("ExecMode = %q, want relaxed", base.ExecMode)
	}
	for _, workers := range []int{2, 3, 4} {
		r, mem := relaxedRun(t, src, workers, 64)
		if relaxedResult(r) != relaxedResult(base) {
			t.Errorf("workers=%d: Result differs from workers=1:\n got %+v\nwant %+v", workers, r, base)
		}
		if r.Workers != workers {
			t.Errorf("workers=%d: resolved Workers = %d", workers, r.Workers)
		}
		for i := range baseMem {
			if mem[i] != baseMem[i] {
				t.Fatalf("workers=%d: mem[%d] = %d, want %d", workers, i, mem[i], baseMem[i])
			}
		}
	}

	// Reversed worker startup order: SM ownership is keyed by worker index,
	// not launch order, so this must be invisible too.
	epochWorkerOrder = func(n int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i
		}
		return order
	}
	defer func() { epochWorkerOrder = nil }()
	r, _ := relaxedRun(t, src, 4, 64)
	if relaxedResult(r) != relaxedResult(base) {
		t.Errorf("reversed worker startup: Result differs:\n got %+v\nwant %+v", r, base)
	}
}

// TestRelaxedRepeatable checks run-to-run reproducibility of a fixed
// (Workers, EpochCycles) pair.
func TestRelaxedRepeatable(t *testing.T) {
	src := genKernel(rand.New(rand.NewSource(23)))
	first, firstMem := relaxedRun(t, src, 4, 256)
	for rep := 0; rep < 3; rep++ {
		r, mem := relaxedRun(t, src, 4, 256)
		if r != first {
			t.Fatalf("rep %d: Result differs:\n got %+v\nwant %+v", rep, r, first)
		}
		for i := range firstMem {
			if mem[i] != firstMem[i] {
				t.Fatalf("rep %d: mem[%d] differs", rep, i)
			}
		}
	}
}

// TestResolveWorkersRelaxedSmallLaunch pins the resolveWorkers fix: a
// multi-CTA launch smaller than the SM count must keep its requested
// workers in relaxed mode (the epoch barrier amortises), while the phased
// mode still clamps to 1 (its per-cycle barrier does not).
func TestResolveWorkersRelaxedSmallLaunch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 15
	cfg.Workers = 4

	if got := resolveWorkers(cfg, 8); got != 1 {
		t.Errorf("phased, 8 CTAs < 15 SMs: resolveWorkers = %d, want 1", got)
	}
	cfg.EpochCycles = 64
	if got := resolveWorkers(cfg, 8); got != 4 {
		t.Errorf("relaxed, 8 CTAs < 15 SMs: resolveWorkers = %d, want 4", got)
	}
	if got := resolveWorkers(cfg, 1); got != 1 {
		t.Errorf("relaxed, 1 CTA: resolveWorkers = %d, want 1", got)
	}
	cfg.NumSMs = 1
	if got := resolveWorkers(cfg, 8); got != 1 {
		t.Errorf("relaxed, 1 SM: resolveWorkers = %d, want 1", got)
	}
}
