package gpu

import (
	"context"
	"fmt"
	"sync"

	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
)

// epochWorkerOrder is a test hook: when non-nil it chooses the order in
// which the epoch pool launches its worker goroutines. An SM's owning
// worker is a pure function of the worker index — launch order cannot
// affect results — and the determinism suite uses the hook to prove it.
var epochWorkerOrder func(workers int) []int

// epochSpan is one epoch's cycle range [start, end).
type epochSpan struct {
	start, end uint64
}

// epochPool runs the compute phase of each epoch across a set of persistent
// workers, mirroring smPool: worker w owns the fixed SM stride w, w+workers,
// w+2*workers, …, so an SM is only ever stepped by one goroutine. The pool
// is a barrier: epoch() returns only after every SM has run its span, which
// establishes the happens-before edge for the serial rendezvous that
// follows.
type epochPool struct {
	sms     []*sm.SM
	workers int
	stops   []uint64 // per-SM stop cycle of the last epoch
	start   []chan epochSpan
	wg      sync.WaitGroup
}

func newEpochPool(sms []*sm.SM, workers int) *epochPool {
	p := &epochPool{sms: sms, workers: workers, stops: make([]uint64, len(sms))}
	p.start = make([]chan epochSpan, workers)
	for w := 0; w < workers; w++ {
		p.start[w] = make(chan epochSpan, 1)
	}
	order := make([]int, workers)
	for i := range order {
		order[i] = i
	}
	if epochWorkerOrder != nil {
		order = epochWorkerOrder(workers)
	}
	for _, w := range order {
		go p.run(w)
	}
	return p
}

func (p *epochPool) run(w int) {
	for sp := range p.start[w] {
		for i := w; i < len(p.sms); i += p.workers {
			p.stops[i] = p.sms[i].RunEpoch(sp.start, sp.end)
		}
		p.wg.Done()
	}
}

// epoch advances every SM through [start, end) and waits for all of them.
func (p *epochPool) epoch(start, end uint64) {
	p.wg.Add(p.workers)
	for _, ch := range p.start {
		ch <- epochSpan{start, end}
	}
	p.wg.Wait()
}

// close releases the worker goroutines.
func (p *epochPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// runRelaxed is the epoch-based relaxed-synchronization loop. Each epoch
// splits in two:
//
//  1. Compute (parallel): every SM advances up to EpochCycles cycles —
//     skipping its own idle stretches via the NextEventCycle contract —
//     against a frozen shared memory system. Beyond-L1 load misses take
//     estimated completion times (mem.System.EstimateAccess, a read-only
//     probe of L2 tags and DRAM-channel backlog), the actual transactions
//     are deferred per SM, and global stores buffer in a per-SM overlay
//     that the SM's own loads read through.
//  2. Rendezvous (serial, ascending SM id): each SM commits its deferred
//     transactions into the shared L2/DRAM model at their recorded issue
//     cycles and flushes buffered stores into device memory. CTA dispatch,
//     idle skipping, lifecycle checkpoints, and telemetry samples all run
//     here, between epochs.
//
// The commit order is fixed and the compute phase reads only state frozen
// at the last rendezvous, so the simulated result is a pure function of
// (config, program, launch, memory image, EpochCycles) — the worker count
// changes wall-clock time only. Unlike the phased loop the result is NOT
// bit-identical to the serial oracle: intra-epoch estimates ignore queueing
// behind same-epoch transactions, cross-SM store visibility is deferred to
// the epoch boundary, and CTA dispatch waves land on rendezvous cycles.
// The relaxed differential suite measures and bounds those deltas.
func runRelaxed(ctx context.Context, cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	maxCycles := cfg.effectiveMaxCycles()
	epoch := uint64(cfg.EpochCycles)
	msys := mem.NewSystem(cfg.MemTiming, cfg.L2Bytes)
	sms := make([]*sm.SM, cfg.NumSMs)
	meters := make([]*power.Meter, cfg.NumSMs)
	for i := range sms {
		meters[i] = new(power.Meter)
		sms[i] = sm.New(i, cfg.SM, arch, cfg.Energies, prog, lc, gmem, msys, meters[i])
		sms[i].EnableRelaxed()
	}
	workers := resolveWorkers(cfg, lc.Grid.Count())
	tel := bindTelemetry(cfg, sms, append(append([]*power.Meter{}, meters...), meter), meter, msys, modeRelaxed, workers)
	lf := newLifecycle(ctx, cfg, tel)
	// Merge the per-SM meters in ascending id order on every exit path so
	// launch sequences keep accumulating energy across launches.
	defer func() {
		for _, pm := range meters {
			meter.Merge(pm)
		}
	}()

	stops := make([]uint64, cfg.NumSMs)
	var pool *epochPool
	if workers > 1 {
		pool = newEpochPool(sms, workers)
		defer pool.close()
		stops = pool.stops
	}

	disp := ctaDispatcher{total: lc.Grid.Count()}
	var cycle uint64

	for {
		disp.dispatch(sms)

		// Chip-wide idle skipping at the rendezvous: when every SM is
		// quiescent the next epoch would start with nothing to do until the
		// earliest completion event, so jump straight there instead of
		// grinding through empty epochs. Intra-epoch idling is handled by
		// each SM's own skip inside RunEpoch.
		if !cfg.DisableIdleSkip {
			if target, ok := nextEventCycle(sms); ok && target > cycle {
				if target >= maxCycles {
					return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
				}
				cycle = target
			}
		}

		end := cycle + epoch
		if end > maxCycles {
			end = maxCycles
		}

		// Compute phase.
		if pool != nil {
			pool.epoch(cycle, end)
		} else {
			for i, s := range sms {
				stops[i] = s.RunEpoch(cycle, end)
			}
		}

		// Rendezvous: fixed ascending commit order over all shared state.
		busy := false
		last := cycle
		for i, s := range sms {
			s.CommitEpoch()
			if s.Err() != nil {
				return rawResult{}, fmt.Errorf("gpu: cycle %d: %w", stops[i], s.Err())
			}
			if s.Busy() {
				busy = true
			}
			if stops[i] > last {
				last = stops[i]
			}
		}
		if !busy {
			// Every SM drained mid-epoch: resume right after the last
			// activity instead of at the epoch grid, so the final cycle
			// count — and the dispatch cycle of any still-pending CTA
			// wave — does not inherit epoch rounding.
			cycle = last
			if disp.done() {
				break
			}
		} else {
			cycle = end
		}
		if cycle >= maxCycles {
			return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
		}
		if err := lf.checkpoint(sms, cycle); err != nil {
			lf.finalSample(cycle)
			return finishRun(sms, cycle, modeRelaxed, workers), err
		}
	}

	lf.finalSample(cycle)
	return finishRun(sms, cycle, modeRelaxed, workers), nil
}
