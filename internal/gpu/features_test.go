package gpu

import (
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
)

// TestMSHRMerging: many warps load the same line concurrently; some of the
// later accesses must merge into the in-flight fill rather than count as
// independent misses.
func TestMSHRMerging(t *testing.T) {
	src := `
	mov r1, %tid.x
	iadd r2, $0, 0
	ldg r3, [r2]          // every thread loads the same line
	imad r4, %ctaid.x, %ntid.x, r1
	shl r5, r4, 2
	iadd r6, $1, r5
	stg [r6], r3
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	vals := mem.AllocU32([]uint32{123})
	out := mem.Alloc(16 * 256 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 16, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
	lc.Params[0] = vals
	lc.Params[1] = out

	cfg := DefaultConfig()
	cfg.NumSMs = 1
	res, err := Run(cfg, sm.Baseline(), prog, lc, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MSHRMerges == 0 {
		t.Error("no MSHR merges on a same-line load burst")
	}
	// Only the first access per SM misses; the line stays resident.
	if res.Stats.L1Misses > 4 {
		t.Errorf("L1 misses = %d for a single shared line", res.Stats.L1Misses)
	}
	for i, v := range mem.ReadU32(out, 16*256) {
		if v != 123 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestLRRSchedulerRuns: the LRR policy must produce identical functional
// results and sane timing.
func TestLRRScheduler(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	imul r3, r2, 3
	iadd r3, r3, 7
	shl r4, r2, 2
	iadd r5, $0, r4
	stg [r5], r3
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol sm.SchedPolicy) ([]uint32, uint64) {
		mem := kernel.NewMemory()
		out := mem.Alloc(8 * 128 * 4)
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
		lc.Params[0] = out
		cfg := DefaultConfig()
		cfg.NumSMs = 2
		cfg.SM.Sched = pol
		res, err := Run(cfg, sm.GScalar(), prog, lc, mem)
		if err != nil {
			t.Fatal(err)
		}
		return mem.ReadU32(out, 8*128), res.Cycles
	}
	gto, cg := run(sm.SchedGTO)
	lrr, cl := run(sm.SchedLRR)
	for i := range gto {
		if gto[i] != lrr[i] {
			t.Fatalf("functional divergence between schedulers at %d", i)
		}
		if gto[i] != uint32(i*3+7) {
			t.Fatalf("out[%d] = %d", i, gto[i])
		}
	}
	if cg == 0 || cl == 0 {
		t.Fatal("zero cycles")
	}
}

// TestMoveElisionReducesMoves: a kernel with a dead-on-divergent-write
// temporary must inject fewer moves under the compiler-assisted
// architecture, with identical functional output.
func TestMoveElisionReducesMoves(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	mov r5, 7                // compressed scalar
	mov r7, 0
	mov r8, 0
LOOP:
	isetp.lt p0, r1, 16
	@p0 bra SKIP
	mov r5, 3                // divergent write; r5 used only below
	imul r6, r5, 2
	iadd r7, r7, r6
SKIP:
	iadd r8, r8, 1
	mov r5, 9                // convergent rewrite re-compresses r5
	isetp.lt p1, r8, 6
	@p1 bra LOOP
	shl r9, r2, 2
	iadd r10, $0, r9
	stg [r10], r7
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(arch sm.Arch) (Result, []uint32) {
		mem := kernel.NewMemory()
		out := mem.Alloc(4 * 128 * 4)
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
		lc.Params[0] = out
		cfg := DefaultConfig()
		cfg.NumSMs = 1
		res, err := Run(cfg, arch, prog, lc, mem)
		if err != nil {
			t.Fatal(err)
		}
		return res, mem.ReadU32(out, 4*128)
	}
	hw, outHW := run(sm.GScalar())
	ca, outCA := run(sm.GScalarCompilerAssist())
	if hw.Stats.InjectedMoves == 0 {
		t.Fatal("hardware architecture injected no moves (test kernel broken)")
	}
	if ca.Stats.InjectedMoves >= hw.Stats.InjectedMoves {
		t.Errorf("elision did not reduce moves: %d vs %d",
			ca.Stats.InjectedMoves, hw.Stats.InjectedMoves)
	}
	if ca.Stats.MovesElided == 0 {
		t.Error("no elisions recorded")
	}
	for i := range outHW {
		if outHW[i] != outCA[i] {
			t.Fatalf("elision changed results at %d", i)
		}
	}
}

// TestRegisterCapacityLimitsResidency: a register-hungry kernel must reduce
// concurrent CTAs but still complete correctly.
func TestRegisterCapacityLimitsResidency(t *testing.T) {
	// Use many registers so one CTA costs 256 threads × 60 regs × 4 B =
	// ~61 KB: only 2 CTAs fit in 128 KB even though 8 slots exist.
	src := "\tmov r1, %tid.x\n\timad r2, %ctaid.x, %ntid.x, r1\n"
	for r := 3; r <= 59; r++ {
		src += "\tiadd r" + itoa(r) + ", r2, " + itoa(r) + "\n"
	}
	src += "\tshl r60, r2, 2\n\tiadd r61, $0, r60\n\tstg [r61], r59\n\texit\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	out := mem.Alloc(12 * 256 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 12, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
	lc.Params[0] = out
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxCycles = 5_000_000
	if _, err := Run(cfg, sm.Baseline(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(out, 12*256)
	for i, v := range got {
		if v != uint32(i+59) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+59)
		}
	}
}

// TestOversizedGatherDispatches: a 64-wide warp whose gather touches more
// lines than the MSHR file holds must still complete (it dispatches when
// the file drains) rather than deadlock.
func TestOversizedGatherDispatches(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 7            // one 128-byte line per lane: 64 lines per warp
	iadd r4, $0, r3
	ldg r5, [r4]
	shl r6, r2, 2
	iadd r7, $1, r6
	stg [r7], r5
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 4 * 256
	mem := kernel.NewMemory()
	vals := make([]uint32, threads*32)
	for i := range vals {
		vals[i] = uint32(i)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
	lc.Params[0] = mem.AllocU32(vals)
	lc.Params[1] = mem.Alloc(threads * 4)

	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.SM.WarpSize = 64
	cfg.SM.MaxWarps = 24
	cfg.SM.MaxMSHRs = 48 // < 64 lines per gather
	cfg.MaxCycles = 2_000_000
	if _, err := Run(cfg, sm.GScalar(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(lc.Params[1], threads)
	for i, v := range got {
		if v != uint32(i*32) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*32)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
