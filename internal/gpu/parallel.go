package gpu

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
)

// resolveWorkers turns Config.Workers into a concrete compute-worker count
// for the phased loop, applying the crossover heuristic: launches too small
// to keep several SMs busy run the same phased algorithm inline on one
// goroutine, because the per-cycle barrier would cost more than it saves.
// Only the goroutine count varies here — never the algorithm — so every
// resolved value produces bit-identical simulation results.
func resolveWorkers(cfg Config, totalCTAs int) int {
	w := cfg.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cfg.NumSMs {
		w = cfg.NumSMs
	}
	// A single-SM chip — or a single CTA — has nothing to overlap in any
	// mode.
	if cfg.NumSMs < 2 || totalCTAs < 2 {
		return 1
	}
	// Crossover, phased mode only: fewer CTAs than SMs leaves cores idle
	// every cycle there, so the per-cycle barrier costs more than it saves.
	// The relaxed mode's barrier is per-epoch, not per-cycle, so even
	// launches that occupy only a few SMs amortise it — clamping those to
	// one worker would silently discard the parallelism the caller asked
	// for.
	if cfg.EpochCycles == 0 && totalCTAs < cfg.NumSMs {
		return 1
	}
	if w < 1 {
		w = 1
	}
	return w
}

// smPool runs the compute phase of each cycle across a set of persistent
// workers. Worker w owns the fixed SM stride w, w+workers, w+2*workers, …,
// so an SM is only ever stepped by one goroutine and per-SM state needs no
// locking. The pool is a barrier: cycle() returns only after every SM has
// finished its compute phase.
type smPool struct {
	sms     []*sm.SM
	workers int
	start   []chan uint64
	wg      sync.WaitGroup
}

func newSMPool(sms []*sm.SM, workers int) *smPool {
	p := &smPool{sms: sms, workers: workers}
	p.start = make([]chan uint64, workers)
	for w := 0; w < workers; w++ {
		p.start[w] = make(chan uint64, 1)
		go p.run(w)
	}
	return p
}

func (p *smPool) run(w int) {
	for cycle := range p.start[w] {
		for i := w; i < len(p.sms); i += p.workers {
			p.sms[i].Cycle(cycle)
		}
		p.wg.Done()
	}
}

// cycle steps every SM's compute phase for the given cycle and waits for
// all of them. The Wait establishes the happens-before edge that lets the
// caller read SM state and run the serial commit phase race-free.
func (p *smPool) cycle(cycle uint64) {
	p.wg.Add(p.workers)
	for _, ch := range p.start {
		ch <- cycle
	}
	p.wg.Wait()
}

// close releases the worker goroutines.
func (p *smPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// runPhased is the deterministic parallel loop. Each cycle splits in two:
//
//  1. Compute (parallel): every SM advances one cycle touching only its own
//     state — global-memory stores land in a per-SM buffer and L2/DRAM
//     transactions are queued, not sent. SMs also deposit energy into
//     private meters and keep private statistics, so the hot loop shares
//     nothing mutable.
//  2. Commit (serial, ascending SM id): each SM drains its queued
//     transactions into the shared L2/DRAM model and flushes its buffered
//     stores into device memory.
//
// Because the commit order is fixed and the compute phase reads only
// state frozen at the last commit, the simulated result is a pure function
// of (config, program, launch, memory image) — the worker count cannot
// change a single bit of it.
func runPhased(ctx context.Context, cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	maxCycles := cfg.effectiveMaxCycles()
	msys := mem.NewSystem(cfg.MemTiming, cfg.L2Bytes)
	sms := make([]*sm.SM, cfg.NumSMs)
	meters := make([]*power.Meter, cfg.NumSMs)
	for i := range sms {
		meters[i] = new(power.Meter)
		sms[i] = sm.New(i, cfg.SM, arch, cfg.Energies, prog, lc, gmem, msys, meters[i])
		sms[i].EnablePhased()
	}
	workers := resolveWorkers(cfg, lc.Grid.Count())
	// Final counter gauges register on the caller's meter (which the per-SM
	// meters merge into on exit); mid-run energy samples sum the live per-SM
	// meters plus the caller's, which carries earlier launches of a sequence.
	tel := bindTelemetry(cfg, sms, append(append([]*power.Meter{}, meters...), meter), meter, msys, modePhased, workers)
	lf := newLifecycle(ctx, cfg, tel)
	// Merge the per-SM meters in ascending id order on every exit path so
	// launch sequences keep accumulating energy across launches.
	defer func() {
		for _, pm := range meters {
			meter.Merge(pm)
		}
	}()

	var pool *smPool
	if workers > 1 {
		pool = newSMPool(sms, workers)
		defer pool.close()
	}

	disp := ctaDispatcher{total: lc.Grid.Count()}
	var cycle uint64

	for {
		disp.dispatch(sms)

		// Event-driven idle skipping, identical to the serial loop: the
		// check runs serially between commit and compute phases, so it
		// reads SM state race-free, and skipped cycles would have mutated
		// nothing (their CommitShared calls would have drained nothing).
		if !cfg.DisableIdleSkip {
			if target, ok := nextEventCycle(sms); ok && target > cycle {
				if target >= maxCycles {
					return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
				}
				cycle = target
			}
		}

		// Compute phase.
		if pool != nil {
			pool.cycle(cycle)
		} else {
			for _, s := range sms {
				s.Cycle(cycle)
			}
		}

		// Commit phase: fixed ascending order over all shared state.
		busy := false
		for _, s := range sms {
			s.CommitShared()
			if s.Err() != nil {
				return rawResult{}, fmt.Errorf("gpu: cycle %d: %w", cycle, s.Err())
			}
			if s.Busy() {
				busy = true
			}
		}
		cycle++
		if !busy && disp.done() {
			break
		}
		if cycle >= maxCycles {
			return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
		}
		// Lifecycle checkpoint: runs serially after the commit phase, so it
		// reads SM state race-free, exactly like the idle-skip probe above.
		if err := lf.checkpoint(sms, cycle); err != nil {
			lf.finalSample(cycle)
			return finishRun(sms, cycle, modePhased, workers), err
		}
	}

	lf.finalSample(cycle)
	return finishRun(sms, cycle, modePhased, workers), nil
}
