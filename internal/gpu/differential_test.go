package gpu

import (
	"fmt"
	"math/rand"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
	"gscalar/internal/warp"
)

// genKernel builds a random structured kernel: arithmetic on a handful of
// registers, data-dependent guarded branches (forward only, so termination
// is guaranteed), a bounded loop, and a final store of every live register
// so the differential comparison observes the full architectural state.
func genKernel(rng *rand.Rand) string {
	src := "\tmov r1, %tid.x\n\timad r2, %ctaid.x, %ntid.x, r1\n"
	src += "\tmov r3, 1\n\tmov r4, 2\n\tmov r5, 3\n"
	nBlocks := 2 + rng.Intn(4)
	for b := 0; b < nBlocks; b++ {
		// A few arithmetic ops mixing uniform and per-lane values.
		for i := 0; i < 2+rng.Intn(4); i++ {
			dst := 3 + rng.Intn(3)
			a := 1 + rng.Intn(5)
			c := 1 + rng.Intn(5)
			op := []string{"iadd", "isub", "imul", "and", "or", "xor", "imin", "imax"}[rng.Intn(8)]
			src += fmt.Sprintf("\t%s r%d, r%d, r%d\n", op, dst, a, c)
		}
		// A data-dependent forward branch over the next chunk.
		cc := []string{"lt", "ge", "eq", "ne"}[rng.Intn(4)]
		src += fmt.Sprintf("\tand r6, r%d, 7\n", 3+rng.Intn(3))
		src += fmt.Sprintf("\tisetp.%s p0, r6, %d\n", cc, rng.Intn(8))
		src += fmt.Sprintf("\t@p0 bra B%d\n", b)
		src += fmt.Sprintf("\tiadd r%d, r%d, %d\n", 3+rng.Intn(3), 3+rng.Intn(3), rng.Intn(100))
		src += fmt.Sprintf("B%d:\n", b)
	}
	// A small divergent loop: trip count depends on the lane.
	src += "\tand r7, r1, 3\n\tmov r8, 0\nLOOP:\n"
	src += "\tiadd r8, r8, 1\n\tiadd r3, r3, r8\n"
	src += "\tisetp.le p1, r8, r7\n\t@p1 bra LOOP\n"
	// Store r3..r5 to distinct slots.
	src += "\tshl r9, r2, 4\n"
	for i, r := range []int{3, 4, 5} {
		src += fmt.Sprintf("\tiadd r10, $0, r9\n\tstg [r10+%d], r%d\n", i*4, r)
	}
	src += "\texit\n"
	return src
}

// TestRandomKernelDifferential cross-checks the timed simulator against the
// functional golden model on randomly generated structured kernels, across
// all architectures (the architecture overlays must never change
// functional behaviour).
func TestRandomKernelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential run")
	}
	rng := rand.New(rand.NewSource(42))
	archs := []sm.Arch{sm.Baseline(), sm.PriorScalarRF(), sm.WarpedCompression(), sm.GScalar(), sm.GScalarCompilerAssist()}
	for trial := 0; trial < 25; trial++ {
		src := genKernel(rng)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		const threads = 4 * 96 // includes tail warps
		lc := func(m *kernel.Memory) *kernel.LaunchConfig {
			l := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 96, Y: 1}}
			l.Params[0] = m.Alloc(threads * 16)
			return l
		}

		mRef := kernel.NewMemory()
		lRef := lc(mRef)
		if _, err := warp.FuncRun(prog, lRef, mRef, 32, 2_000_000); err != nil {
			t.Fatalf("trial %d functional: %v\n%s", trial, err, src)
		}
		want := mRef.ReadU32(lRef.Params[0], threads*4)

		arch := archs[trial%len(archs)]
		mT := kernel.NewMemory()
		lT := lc(mT)
		cfg := DefaultConfig()
		cfg.NumSMs = 2
		cfg.MaxCycles = 5_000_000
		if _, err := Run(cfg, arch, prog, lT, mT); err != nil {
			t.Fatalf("trial %d timed (%+v): %v\n%s", trial, arch, err, src)
		}
		got := mT.ReadU32(lT.Params[0], threads*4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%+v): mem[%d] = %d, want %d\n%s",
					trial, arch, i, got[i], want[i], src)
			}
		}
	}
}
