package gpu

import (
	"math"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
)

// TestDivergentSaturateKernel reproduces the examples/divergence kernel at
// small scale with a cycle bound, guarding against scheduler deadlocks or
// pathological slowdowns with mixed-path warps.
func TestDivergentSaturateKernel(t *testing.T) {
	src := `
.kernel clamp_scale
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]
	mov   r6, $1
	mov   r7, $2
	fsetp.gt p0, r5, r6
	@p0 bra SATURATE
	fmul  r8, r5, r7
	ffma  r8, r5, 0.125, r8
	bra STORE
SATURATE:
	fmul  r8, r6, r7
	fadd  r8, r8, r6
	fmul  r9, r8, 0.5
	ffma  r8, r9, 0.25, r8
STORE:
	stg   [r4], r8
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2048
	for _, arch := range []sm.Arch{sm.Baseline(), sm.PriorScalarRF(), sm.GScalar()} {
		mem := kernel.NewMemory()
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(i%100) * 0.02
		}
		vb := mem.AllocF32(vals)
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: n / 256, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
		lc.Params[0] = vb
		lc.Params[1] = math.Float32bits(1.0)
		lc.Params[2] = math.Float32bits(3.0)

		cfg := DefaultConfig()
		cfg.NumSMs = 4
		cfg.MaxCycles = 200_000 // a hang shows up as exceeding this
		res, err := Run(cfg, arch, prog, lc, mem)
		if err != nil {
			t.Fatalf("arch %+v: %v", arch, err)
		}
		if res.Cycles > 50_000 {
			t.Errorf("suspiciously slow: %d cycles for %d warps", res.Cycles, n/32)
		}
	}
}

// TestWarpSize64 runs a small kernel with 64-wide warps (the Figure 10
// configuration) under a strict cycle bound.
func TestWarpSize64(t *testing.T) {
	src := `
	mov r1, %tid.x
	shl r2, r1, 2
	iadd r3, $0, r2
	ldg r4, [r3]
	iadd r4, r4, 7
	mov r5, 0
LOOP:
	imul r6, r4, 3
	iadd r5, r5, r6
	isetp.lt p0, r5, 1000
	@p0 bra LOOP
	stg [r3], r5
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	vals := make([]uint32, 1024)
	for i := range vals {
		vals[i] = uint32(i % 50)
	}
	vb := mem.AllocU32(vals)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 256, Y: 1}}
	lc.Params[0] = vb

	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.SM.WarpSize = 64
	cfg.SM.MaxWarps = 24
	cfg.MaxCycles = 500_000
	if _, err := Run(cfg, sm.GScalar(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
}
