package gpu

import (
	"gscalar/internal/core"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/telemetry"
)

// chipSampler bridges one launch's chip state to the telemetry recorder. It
// reads per-SM counters and the live power meters at lifecycle checkpoints —
// serially, between cycles — so sampling observes exactly the state a
// telemetry-free run would have had, and mutates none of it.
type chipSampler struct {
	rec    *telemetry.Recorder
	sms    []*sm.SM
	meters []*power.Meter // live meters: per-SM in phased mode, the shared one serially
	stride uint64         // resolved sampling stride in simulated cycles
}

// bindTelemetry wires cfg.Telemetry (when set) to a freshly built launch:
// it begins a recorder launch, registers every layer's counters and gauges,
// and returns the sampler the lifecycle drives. Returns nil when telemetry
// is disabled. finalMeter is the meter Finish will run on (the caller's
// cumulative meter); liveMeters are the ones energy accumulates into during
// the launch, for mid-run samples. mode and workers record the chip loop
// that is about to run and its resolved worker count, so exported metrics
// state what actually executed.
func bindTelemetry(cfg Config, sms []*sm.SM, liveMeters []*power.Meter, finalMeter *power.Meter, msys *mem.System, mode string, workers int) *chipSampler {
	rec := cfg.Telemetry
	if rec == nil {
		return nil
	}
	stride := rec.RequestedStride()
	if stride == 0 {
		stride = cfg.ObserverStride
	}
	if stride == 0 {
		stride = DefaultLifecycleStride
	}
	rfClasses := make([]string, core.NumAccessClasses)
	for c := core.AccessClass(0); c < core.NumAccessClasses; c++ {
		rfClasses[c] = c.String()
	}
	rec.BeginLaunch(telemetry.Meta{
		ClockHz:          cfg.CoreClockHz,
		SampleStride:     stride,
		NumSMs:           len(sms),
		EnergyComponents: power.ComponentNames(),
		RFAccessClasses:  rfClasses,
		ExecMode:         mode,
		Workers:          workers,
	})
	reg := rec.Registry()
	for _, s := range sms {
		s.RegisterTelemetry(reg)
	}
	msys.RegisterTelemetry(reg)
	finalMeter.RegisterTelemetry(reg, telemetry.InstanceChip)
	return &chipSampler{rec: rec, sms: sms, meters: liveMeters, stride: stride}
}

// sample records one time-series point at the given launch-local cycle. A
// cycle already sampled (a final sample landing on a checkpoint cycle) is
// skipped by the recorder.
func (cs *chipSampler) sample(cycle uint64) {
	sp := cs.rec.NewSample(cycle)
	if sp == nil {
		return
	}
	sp.PerSM = make([]telemetry.SMSample, len(cs.sms))
	rf := make([]uint64, core.NumAccessClasses)
	for i, s := range cs.sms {
		st := s.Stats()
		sp.WarpInsts += st.WarpInsts
		if s.Busy() {
			sp.LiveSMs++
		}
		sp.PerSM[i] = telemetry.SMSample{Retired: st.WarpInsts, LiveWarps: s.LiveWarps()}
		for c := range rf {
			rf[c] += st.RFReads[c]
		}
	}
	energy := make([]float64, power.NumComponents)
	for _, m := range cs.meters {
		for c := power.Component(0); c < power.NumComponents; c++ {
			energy[c] += m.Energy(c)
		}
	}
	sp.EnergyPJ = energy
	sp.RFReads = rf
}
