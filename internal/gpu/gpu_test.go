package gpu

import (
	"math"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
	"gscalar/internal/warp"
)

const saxpySrc = `
.kernel saxpy
	mov   r1, %tid.x
	mov   r2, %ctaid.x
	mov   r3, %ntid.x
	imad  r4, r2, r3, r1      // gid
	isetp.ge p0, r4, $3       // gid >= n?
	@p0 exit
	shl   r5, r4, 2
	iadd  r6, $0, r5          // &x[gid]
	iadd  r7, $1, r5          // &y[gid]
	ldg   r8, [r6]
	ldg   r9, [r7]
	ffma  r10, r8, $2, r9     // a*x + y
	stg   [r7], r10
	exit
`

func buildSaxpy(t *testing.T, n int) (*kernel.Program, *kernel.LaunchConfig, *kernel.Memory, []float32) {
	t.Helper()
	prog, err := asm.Assemble(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i) * 0.5
		ys[i] = float32(n - i)
	}
	xb := mem.AllocF32(xs)
	yb := mem.AllocF32(ys)
	const a = float32(2.5)
	lc := &kernel.LaunchConfig{
		Grid:  kernel.Dim{X: (n + 127) / 128, Y: 1},
		Block: kernel.Dim{X: 128, Y: 1},
	}
	lc.Params[0] = xb
	lc.Params[1] = yb
	lc.Params[2] = math.Float32bits(a)
	lc.Params[3] = uint32(n)

	want := make([]float32, n)
	for i := range want {
		want[i] = a*xs[i] + ys[i]
	}
	return prog, lc, mem, want
}

func checkSaxpy(t *testing.T, mem *kernel.Memory, lc *kernel.LaunchConfig, want []float32) {
	t.Helper()
	got := mem.ReadF32(lc.Params[1], len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSaxpyFunctional(t *testing.T) {
	prog, lc, mem, want := buildSaxpy(t, 1000)
	if _, err := warp.FuncRun(prog, lc, mem, 32, 0); err != nil {
		t.Fatal(err)
	}
	checkSaxpy(t, mem, lc, want)
}

// TestSaxpyTimedAllArchs runs the timed simulator under every architecture
// and checks both functional correctness and basic sanity of the results.
func TestSaxpyTimedAllArchs(t *testing.T) {
	archs := map[string]sm.Arch{
		"baseline":      sm.Baseline(),
		"scalarRF":      sm.PriorScalarRF(),
		"wc":            sm.WarpedCompression(),
		"rvc":           sm.RVCOnly(),
		"gscalar":       sm.GScalar(),
		"gscalar-nodiv": sm.GScalarNoDiv(),
	}
	for name, arch := range archs {
		t.Run(name, func(t *testing.T) {
			prog, lc, mem, want := buildSaxpy(t, 1000)
			cfg := DefaultConfig()
			cfg.NumSMs = 2
			res, err := Run(cfg, arch, prog, lc, mem)
			if err != nil {
				t.Fatal(err)
			}
			checkSaxpy(t, mem, lc, want)
			if res.Cycles == 0 || res.Stats.WarpInsts == 0 {
				t.Fatalf("empty result: %+v", res)
			}
			if res.IPC <= 0 {
				t.Fatalf("IPC = %v", res.IPC)
			}
			if res.Power.AvgPowerW <= 0 {
				t.Fatalf("power = %v", res.Power.AvgPowerW)
			}
			t.Logf("%s: cycles=%d warpinsts=%d IPC=%.3f P=%.1fW IPC/W=%.4f",
				name, res.Cycles, res.Stats.WarpInsts, res.IPC, res.Power.AvgPowerW, res.IPCPerW)
		})
	}
}

// TestTimedMatchesFunctional cross-checks the timed simulator against the
// functional golden model on a divergent kernel.
func TestTimedMatchesFunctional(t *testing.T) {
	src := `
.kernel divsum
	mov   r1, %tid.x
	mov   r2, %ctaid.x
	imad  r3, r2, %ntid.x, r1
	shl   r4, r3, 2
	iadd  r5, $0, r4
	ldg   r6, [r5]
	and   r7, r3, 1
	isetp.eq p0, r7, 0
	@p0 bra EVEN
	imul  r6, r6, 3
	bra JOIN
EVEN:
	iadd  r6, r6, 100
JOIN:
	stg   [r5], r6
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	build := func() (*kernel.Memory, *kernel.LaunchConfig) {
		m := kernel.NewMemory()
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i * 7)
		}
		base := m.AllocU32(vals)
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 4, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
		lc.Params[0] = base
		return m, lc
	}

	mf, lcf := build()
	if _, err := warp.FuncRun(prog, lcf, mf, 32, 0); err != nil {
		t.Fatal(err)
	}
	mt, lct := build()
	cfg := DefaultConfig()
	cfg.NumSMs = 3
	if _, err := Run(cfg, sm.GScalar(), prog, lct, mt); err != nil {
		t.Fatal(err)
	}
	got := mt.ReadU32(lct.Params[0], n)
	want := mf.ReadU32(lcf.Params[0], n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mem[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
