package gpu

import (
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
)

// runSrc assembles and runs src on a small chip, returning the result.
func runSrc(t *testing.T, arch sm.Arch, src string, setup func(m *kernel.Memory, lc *kernel.LaunchConfig)) Result {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
	if setup != nil {
		setup(mem, lc)
	}
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxCycles = 2_000_000
	res, err := Run(cfg, arch, prog, lc, mem)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// uniformChain is a kernel whose loop body is entirely warp-uniform.
const uniformChain = `
	mov r1, 0
	mov r2, $0
LOOP:
	imul r3, r1, 3
	iadd r4, r3, 7
	and  r5, r4, 255
	iadd r1, r1, 1
	isetp.lt p0, r1, r2
	@p0 bra LOOP
	exit
`

func TestEligibilityUniformChain(t *testing.T) {
	res := runSrc(t, sm.GScalar(), uniformChain, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 32
	})
	frac := float64(res.Stats.EligFullALU) / float64(res.Stats.WarpInsts)
	if frac < 0.7 {
		t.Fatalf("uniform chain ALU-scalar fraction = %.2f, want > 0.7", frac)
	}
	if res.Stats.InjectedMoves != 0 {
		t.Errorf("unexpected injected moves: %d", res.Stats.InjectedMoves)
	}
}

func TestMoveInjection(t *testing.T) {
	// r2 is written uniformly (compressed scalar), then partially updated
	// by a divergent instruction: G-Scalar must inject a decompress move.
	src := `
	mov r1, %tid.x
	mov r2, 7
	isetp.lt p0, r1, 16
	@p0 bra SKIP
	iadd r2, r2, r1
SKIP:
	shl r3, r1, 2
	iadd r4, $0, r3
	stg [r4], r2
	exit
`
	res := runSrc(t, sm.GScalar(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = m.Alloc(128 * 4)
	})
	if res.Stats.InjectedMoves == 0 {
		t.Fatal("no decompress moves injected")
	}
	// Only warp 0 of each CTA mixes both paths (lanes < 16 vs >= 16); the
	// other warps take the not-taken side uniformly and write r2 with a
	// full mask. So: one move per CTA.
	if res.Stats.InjectedMoves != 8 {
		t.Errorf("moves = %d, want 8", res.Stats.InjectedMoves)
	}

	base := runSrc(t, sm.Baseline(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = m.Alloc(128 * 4)
	})
	if base.Stats.InjectedMoves != 0 {
		t.Errorf("baseline injected %d moves", base.Stats.InjectedMoves)
	}
}

func TestScalarBankSerialisation(t *testing.T) {
	// The Gilani baseline funnels all scalar operands through one bank:
	// a scalar-heavy kernel must record conflicts (§4.1's burst problem).
	res := runSrc(t, sm.PriorScalarRF(), uniformChain, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 64
	})
	if res.Stats.ScalarBankConflicts == 0 {
		t.Fatal("no scalar-bank conflicts recorded on a scalar burst")
	}
	// G-Scalar serves scalars from 16 per-bank BVR arrays: no such choke.
	gs := runSrc(t, sm.GScalar(), uniformChain, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 64
	})
	if gs.Stats.ScalarBankConflicts != 0 {
		t.Fatalf("G-Scalar recorded %d scalar-bank conflicts", gs.Stats.ScalarBankConflicts)
	}
}

func TestExtraLatencyCostsCycles(t *testing.T) {
	// A dependency-chain kernel: the +3-cycle compressing pipeline must
	// take at least as many cycles as the baseline.
	src := `
	mov r1, 1
	mov r9, 0
LOOP:
	imul r2, r1, 3
	iadd r3, r2, 1
	imul r4, r3, 5
	iadd r1, r4, 2
	iadd r9, r9, 1
	isetp.lt p0, r9, 64
	@p0 bra LOOP
	exit
`
	base := runSrc(t, sm.Baseline(), src, nil)
	rvc := runSrc(t, sm.RVCOnly(), src, nil)
	if rvc.Cycles <= base.Cycles {
		t.Fatalf("compressing pipeline (%d cycles) not slower than baseline (%d)",
			rvc.Cycles, base.Cycles)
	}
}

func TestTimedBarrier(t *testing.T) {
	// CTA-wide reversal through shared memory: wrong barrier handling
	// produces wrong data or deadlock.
	src := `
	mov r1, %tid.x
	shl r2, r1, 2
	sts [r2], r1
	bar
	mov r3, %ntid.x
	isub r4, r3, r1
	iadd r4, r4, -1
	shl r5, r4, 2
	lds r6, [r5]
	imad r7, %ctaid.x, %ntid.x, r1
	shl r8, r7, 2
	iadd r9, $0, r8
	stg [r9], r6
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	out := mem.Alloc(8 * 128 * 4)
	lc := &kernel.LaunchConfig{
		Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 128, Y: 1},
		SharedBytes: 128 * 4,
	}
	lc.Params[0] = out
	cfg := DefaultConfig()
	cfg.NumSMs = 3
	cfg.MaxCycles = 2_000_000
	if _, err := Run(cfg, sm.GScalar(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(out, 8*128)
	for cta := 0; cta < 8; cta++ {
		for tid := 0; tid < 128; tid++ {
			if got[cta*128+tid] != uint32(127-tid) {
				t.Fatalf("cta %d tid %d = %d, want %d", cta, tid, got[cta*128+tid], 127-tid)
			}
		}
	}
}

func TestDivergentScalarDetectionTimed(t *testing.T) {
	// A divergent path operating on a uniform constant: G-Scalar records
	// divergent-scalar eligibility, G-Scalar-no-div records none.
	src := `
	mov r1, %tid.x
	mov r2, $0
	isetp.lt p0, r1, 20
	@p0 bra A
	imul r3, r1, 3
	bra J
A:
	imul r4, r2, 5
	iadd r4, r4, r2
	imul r5, r4, 2
J:
	exit
`
	gs := runSrc(t, sm.GScalar(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 9
	})
	if gs.Stats.EligDiv == 0 {
		t.Fatal("no divergent-scalar instructions detected")
	}
	nod := runSrc(t, sm.GScalarNoDiv(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 9
	})
	if nod.Stats.EligDiv != 0 {
		t.Fatalf("no-div arch detected %d divergent-scalar", nod.Stats.EligDiv)
	}
}

func TestGatherUnderMSHRPressure(t *testing.T) {
	// Every lane hits a different line: 32 transactions per load warp.
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 7            // 128-byte stride: one line per lane
	iadd r4, $0, r3
	ldg r5, [r4]
	shl r6, r2, 2
	iadd r7, $1, r6
	stg [r7], r5
	exit
`
	res := runSrc(t, sm.GScalar(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		vals := make([]uint32, 8*128*32)
		for i := range vals {
			vals[i] = uint32(i)
		}
		lc.Params[0] = m.AllocU32(vals)
		lc.Params[1] = m.Alloc(8 * 128 * 4)
	})
	if res.Stats.L1Accesses < 8*4*32 {
		t.Fatalf("L1 accesses = %d, want >= %d", res.Stats.L1Accesses, 8*4*32)
	}
}

func TestCompressionRatioOnSimilarValues(t *testing.T) {
	src := `
	mov r1, %tid.x
	iadd r2, r1, $0          // base + lane: 3-byte similar
	shl r3, r2, 2
	and r4, r3, 4095
	iadd r5, r4, 1
	exit
`
	res := runSrc(t, sm.RVCOnly(), src, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
		lc.Params[0] = 0x00300000
	})
	if res.Stats.CompressionRatio() < 1.5 {
		t.Fatalf("compression ratio = %.2f on similar values", res.Stats.CompressionRatio())
	}
}

func TestManyCTAsOnOneSM(t *testing.T) {
	// More CTAs than resident slots: the dispatcher must stream them.
	prog, err := asm.Assemble(`
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	stg [r4], r2
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	const ctas = 64
	out := mem.Alloc(ctas * 64 * 4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: ctas, Y: 1}, Block: kernel.Dim{X: 64, Y: 1}}
	lc.Params[0] = out
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxCycles = 5_000_000
	if _, err := Run(cfg, sm.GScalar(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadU32(out, ctas*64)
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return runSrc(t, sm.GScalar(), uniformChain, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
			lc.Params[0] = 16
		})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.EnergyJ != b.EnergyJ || a.Stats.WarpInsts != b.Stats.WarpInsts {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
