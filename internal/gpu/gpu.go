// Package gpu assembles the full chip: SMs, the CTA dispatcher, and the
// shared L2/DRAM memory system, and runs a kernel launch to completion
// under a chosen architecture, producing cycle counts, statistics, and a
// power breakdown.
package gpu

import (
	"fmt"

	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
)

// Config is the chip-level configuration (Table 1).
type Config struct {
	NumSMs      int
	CoreClockHz float64
	SM          sm.Config
	MemTiming   mem.Timing
	L2Bytes     int
	Energies    power.Energies
	// MaxCycles aborts runaway simulations (0 = a large default).
	MaxCycles uint64
}

// DefaultConfig returns the GTX-480-like configuration of Table 1.
func DefaultConfig() Config {
	return Config{
		NumSMs:      15,
		CoreClockHz: 1.4e9,
		SM:          sm.DefaultConfig(),
		MemTiming:   mem.DefaultTiming(),
		L2Bytes:     768 << 10,
		Energies:    power.DefaultEnergies(),
		MaxCycles:   0,
	}
}

// Result summarises one simulated launch.
type Result struct {
	Cycles  uint64
	Stats   stats.Sim
	Power   power.Breakdown
	IPC     float64 // committed warp instructions per cycle (chip-wide)
	IPCPerW float64 // the paper's power-efficiency metric
	EnergyJ float64
}

// Run simulates prog with launch lc on memory gmem under arch.
func Run(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory) (Result, error) {
	var meter power.Meter
	r, err := runWithMeter(cfg, arch, prog, lc, gmem, &meter)
	if err != nil {
		return Result{}, err
	}
	staticW := cfg.Energies.StaticW(cfg.NumSMs, arch.HasCodec())
	bd := meter.Finish(r.Cycles, cfg.CoreClockHz, staticW)
	res := Result{
		Cycles:  r.Cycles,
		Stats:   r.Stats,
		Power:   bd,
		IPC:     r.Stats.IPC(),
		EnergyJ: bd.EnergyJ,
	}
	if bd.AvgPowerW > 0 {
		res.IPCPerW = res.IPC / bd.AvgPowerW
	}
	return res, nil
}

// rawResult is a simulation outcome before power finalisation, so launch
// sequences can share one energy meter.
type rawResult struct {
	Cycles uint64
	Stats  stats.Sim
}

// runWithMeter is the shared simulation loop: it deposits energy into the
// caller's meter and returns cycle/statistics totals.
func runWithMeter(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	if err := lc.Validate(cfg.SM.MaxWarps * cfg.SM.WarpSize); err != nil {
		return rawResult{}, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}

	msys := mem.NewSystem(cfg.MemTiming, cfg.L2Bytes)
	sms := make([]*sm.SM, cfg.NumSMs)
	for i := range sms {
		sms[i] = sm.New(i, cfg.SM, arch, cfg.Energies, prog, lc, gmem, msys, meter)
	}

	nextCTA := 0
	totalCTAs := lc.Grid.Count()
	var cycle uint64

	for {
		// Dispatch pending CTAs round-robin to SMs with capacity.
		for nextCTA < totalCTAs {
			assigned := false
			for _, s := range sms {
				if nextCTA >= totalCTAs {
					break
				}
				if s.CanTakeCTA() {
					s.LaunchCTA(nextCTA)
					nextCTA++
					assigned = true
				}
			}
			if !assigned {
				break
			}
		}

		busy := false
		for _, s := range sms {
			s.Cycle(cycle)
			if s.Err() != nil {
				return rawResult{}, fmt.Errorf("gpu: cycle %d: %w", cycle, s.Err())
			}
			if s.Busy() {
				busy = true
			}
		}
		cycle++
		if !busy && nextCTA >= totalCTAs {
			break
		}
		if cycle >= maxCycles {
			return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
		}
	}

	var agg stats.Sim
	for _, s := range sms {
		agg.Add(s.Stats())
	}
	agg.Cycles = cycle
	return rawResult{Cycles: cycle, Stats: agg}, nil
}
