// Package gpu assembles the full chip: SMs, the CTA dispatcher, and the
// shared L2/DRAM memory system, and runs a kernel launch to completion
// under a chosen architecture, producing cycle counts, statistics, and a
// power breakdown.
package gpu

import (
	"context"
	"errors"
	"fmt"

	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
	"gscalar/internal/telemetry"
	"gscalar/internal/warp"
)

// Config is the chip-level configuration (Table 1).
type Config struct {
	NumSMs      int
	CoreClockHz float64
	SM          sm.Config
	MemTiming   mem.Timing
	L2Bytes     int
	Energies    power.Energies
	// MaxCycles aborts runaway simulations (0 = a large default).
	MaxCycles uint64
	// Workers selects the chip-loop execution mode. 0 (the default) runs
	// the legacy serial loop, preserved bit-for-bit. Any other value runs
	// the deterministic phased loop — per-cycle parallel SM compute, then a
	// serial commit of shared-state accesses in ascending SM-id order —
	// with that many compute workers (negative = one per host core). All
	// Workers != 0 values produce bit-identical results; the worker count
	// only changes wall-clock time.
	Workers int
	// EpochCycles, when positive, selects the relaxed epoch-parallel loop:
	// workers advance their SMs up to EpochCycles cycles between rendezvous
	// over the shared L2/DRAM system, committing deferred traffic in
	// ascending SM-id order at each epoch boundary. Unlike the phased loop
	// it is not bit-identical to the serial loop — beyond-L1 completion
	// times inside an epoch are estimates against the frozen shared state —
	// but a fixed EpochCycles value is deterministic for every worker count
	// and across repeated runs. 0 keeps the per-cycle modes above.
	EpochCycles int
	// DisableIdleSkip turns off event-driven idle skipping: by default both
	// loops fast-forward the cycle counter to the chip's next-event cycle
	// whenever every SM is quiescent (no ready warps, no live operand
	// collectors — only in-flight memory/pipeline completions). Skipped
	// cycles mutate no state whatsoever, so results are bit-identical with
	// skipping on or off; the flag exists for benchmarking the raw loop and
	// for validating exactly that property.
	DisableIdleSkip bool
	// Observer, when non-nil, is called at lifecycle checkpoints — the
	// cycle-commit boundaries every ObserverStride simulated cycles — with a
	// point-in-time progress snapshot. It runs on the simulation goroutine
	// between cycles, outside both loops' hot paths, and must not mutate
	// simulator state; calling it changes no simulated result.
	Observer func(Progress)
	// ObserverStride is the number of simulated cycles between lifecycle
	// checkpoints (observer calls and context-cancellation checks). 0 means
	// DefaultLifecycleStride. The stride is counted in simulated cycles, so
	// checkpoint placement — and therefore the partial result of a
	// cancellation triggered by the observer — is deterministic.
	ObserverStride uint64
	// Telemetry, when non-nil, collects this run's metrics: every layer
	// registers its counters/gauges at launch construction and the recorder
	// samples a time series at lifecycle checkpoints. All reads happen
	// serially between cycles and mutate no simulator state, so a run with
	// telemetry attached is bit-identical to one without.
	Telemetry *telemetry.Recorder
	// ExecTrace, when non-nil, observes every warp-instruction execution in
	// issue order (trace capture). It requires the serial loop (Workers == 0,
	// EpochCycles == 0): the parallel loops interleave SM compute across
	// goroutines, which would make the observation order nondeterministic —
	// runWithMeter rejects the combination. The hook costs the hot path one
	// nil check when unset; like Observer/Telemetry it must not mutate
	// simulator state, so an observed run is bit-identical to a bare one.
	ExecTrace func(smID, warpGlobalID int, out *warp.Outcome)
}

// DefaultLifecycleStride is the default spacing, in simulated cycles,
// between lifecycle checkpoints (context checks and observer calls).
const DefaultLifecycleStride = 4096

// Progress is the point-in-time snapshot passed to Config.Observer.
type Progress struct {
	Cycle     uint64 // current simulated cycle
	WarpInsts uint64 // warp instructions committed chip-wide so far
	LiveSMs   int    // SMs that still have resident work
}

// DefaultConfig returns the GTX-480-like configuration of Table 1.
func DefaultConfig() Config {
	return Config{
		NumSMs:      15,
		CoreClockHz: 1.4e9,
		SM:          sm.DefaultConfig(),
		MemTiming:   mem.DefaultTiming(),
		L2Bytes:     768 << 10,
		Energies:    power.DefaultEnergies(),
		MaxCycles:   0,
	}
}

// Result summarises one simulated launch.
type Result struct {
	Cycles  uint64
	Stats   stats.Sim
	Power   power.Breakdown
	IPC     float64 // committed warp instructions per cycle (chip-wide)
	IPCPerW float64 // the paper's power-efficiency metric
	EnergyJ float64
	// ExecMode and Workers record how the run actually executed — the chip
	// loop ("serial", "phased", or "relaxed") and the resolved compute-worker
	// count after the crossover heuristics — so benches and callers can
	// assert what ran rather than what was requested. They describe the
	// execution, not the simulated machine: serial, phased, and every phased
	// worker count produce bit-identical simulation outputs.
	ExecMode string
	Workers  int
}

// Run simulates prog with launch lc on memory gmem under arch. It is
// RunContext with a background context.
func Run(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory) (Result, error) {
	return RunContext(context.Background(), cfg, arch, prog, lc, gmem)
}

// RunContext simulates prog with launch lc on memory gmem under arch,
// honouring ctx cancellation and deadlines. Cancellation is observed only at
// lifecycle checkpoints (cycle-commit boundaries every ObserverStride
// cycles), so a run that completes is bit-identical to one executed without
// a context. A cancelled or deadline-exceeded run returns the partial Result
// accumulated up to the checkpoint that observed the cancellation — cycles,
// statistics, and power integrated over the simulated prefix — alongside an
// error satisfying errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory) (Result, error) {
	var meter power.Meter
	r, err := runWithMeter(ctx, cfg, arch, prog, lc, gmem, &meter)
	if err != nil && !isContextErr(err) {
		return Result{}, err
	}
	staticW := cfg.Energies.StaticW(cfg.NumSMs, arch.HasCodec())
	bd := meter.Finish(r.Cycles, cfg.CoreClockHz, staticW)
	// Finalize after Finish so the power gauges capture the static bucket.
	if cfg.Telemetry != nil {
		cfg.Telemetry.Finalize()
	}
	res := Result{
		Cycles:   r.Cycles,
		Stats:    r.Stats,
		Power:    bd,
		IPC:      r.Stats.IPC(),
		EnergyJ:  bd.EnergyJ,
		ExecMode: r.Mode,
		Workers:  r.Workers,
	}
	if bd.AvgPowerW > 0 {
		res.IPCPerW = res.IPC / bd.AvgPowerW
	}
	return res, err
}

// isContextErr reports whether err stems from context cancellation or an
// expired deadline — the errors that carry a well-defined partial Result.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// rawResult is a simulation outcome before power finalisation, so launch
// sequences can share one energy meter. Mode and Workers record the chip
// loop that ran and its resolved compute-worker count.
type rawResult struct {
	Cycles  uint64
	Stats   stats.Sim
	Mode    string
	Workers int
}

// Execution-mode names recorded in rawResult.Mode / Result.ExecMode.
const (
	modeSerial  = "serial"
	modePhased  = "phased"
	modeRelaxed = "relaxed"
)

// ctaDispatcher assigns pending CTAs to SMs with capacity, round-robin from
// a rotating start index: each assignment resumes the scan at the SM after
// the one just fed, so freed capacity is shared fairly across the chip
// instead of favouring low-numbered SMs. The rotation depends only on the
// assignment history, making placement deterministic for any worker count.
type ctaDispatcher struct {
	next  int // next CTA linear id to place
	total int
	start int // SM index to begin the next scan at
}

// dispatch places as many pending CTAs as currently fit.
func (d *ctaDispatcher) dispatch(sms []*sm.SM) {
	n := len(sms)
	for d.next < d.total {
		assigned := false
		for i := 0; i < n; i++ {
			idx := (d.start + i) % n
			if sms[idx].CanTakeCTA() {
				sms[idx].LaunchCTA(d.next)
				d.next++
				d.start = (idx + 1) % n
				assigned = true
				break
			}
		}
		if !assigned {
			return
		}
	}
}

// done reports whether every CTA has been placed.
func (d *ctaDispatcher) done() bool { return d.next >= d.total }

// effectiveMaxCycles resolves the runaway-simulation bound.
func (cfg Config) effectiveMaxCycles() uint64 {
	if cfg.MaxCycles == 0 {
		return 200_000_000
	}
	return cfg.MaxCycles
}

// runWithMeter is the shared simulation entry: it deposits energy into the
// caller's meter and returns cycle/statistics totals. Config.EpochCycles > 0
// selects the relaxed epoch loop; otherwise Config.Workers picks the
// per-cycle loop: 0 is the legacy serial loop; anything else is the phased
// loop, whose results are bit-identical for every worker count.
func runWithMeter(ctx context.Context, cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	if err := lc.Validate(cfg.SM.MaxWarps * cfg.SM.WarpSize); err != nil {
		return rawResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return rawResult{}, fmt.Errorf("gpu: cancelled before cycle 0: %w", err)
	}
	if cfg.ExecTrace != nil && (cfg.EpochCycles > 0 || cfg.Workers != 0) {
		return rawResult{}, fmt.Errorf("gpu: ExecTrace requires the serial loop (Workers=0, EpochCycles=0); got Workers=%d EpochCycles=%d", cfg.Workers, cfg.EpochCycles)
	}
	if cfg.EpochCycles > 0 {
		return runRelaxed(ctx, cfg, arch, prog, lc, gmem, meter)
	}
	if cfg.Workers != 0 {
		return runPhased(ctx, cfg, arch, prog, lc, gmem, meter)
	}
	return runSerial(ctx, cfg, arch, prog, lc, gmem, meter)
}

// lifecycle bundles the per-run checkpoint state: the cadence at which both
// chip loops surface cancellation and invoke the progress observer. All
// checkpoints land on cycle-commit boundaries at deterministic simulated
// cycles, so a cancellation triggered from the observer cuts the run at the
// same cycle on every execution, and a run that completes is untouched.
type lifecycle struct {
	ctx     context.Context
	observe func(Progress)
	stride  uint64
	next    uint64 // first cycle at or beyond which the next checkpoint fires

	// Telemetry sampling rides the same commit-boundary cadence on its own
	// deterministic stride grid, so sample placement is a pure function of
	// the simulated cycle sequence too.
	sampler      *chipSampler
	sampleStride uint64
	nextSample   uint64
}

func newLifecycle(ctx context.Context, cfg Config, cs *chipSampler) lifecycle {
	stride := cfg.ObserverStride
	if stride == 0 {
		stride = DefaultLifecycleStride
	}
	lf := lifecycle{ctx: ctx, observe: cfg.Observer, stride: stride, next: stride}
	if cs != nil {
		lf.sampler = cs
		lf.sampleStride = cs.stride
		lf.nextSample = cs.stride
	}
	return lf
}

// checkpoint fires when the commit boundary at cycle has reached the next
// stride mark: it samples progress for the observer and reports any context
// cancellation. Idle skipping may jump several marks at once; the checkpoint
// then fires once and realigns to the stride grid, keeping the firing cycles
// a pure function of the simulated cycle sequence.
func (lf *lifecycle) checkpoint(sms []*sm.SM, cycle uint64) error {
	if lf.sampler != nil && cycle >= lf.nextSample {
		lf.nextSample = cycle - cycle%lf.sampleStride + lf.sampleStride
		lf.sampler.sample(cycle)
	}
	if cycle < lf.next {
		return nil
	}
	lf.next = cycle - cycle%lf.stride + lf.stride
	if lf.observe != nil {
		lf.observe(progressOf(sms, cycle))
	}
	if err := lf.ctx.Err(); err != nil {
		return fmt.Errorf("gpu: cancelled at cycle %d: %w", cycle, err)
	}
	return nil
}

// finalSample records the closing time-series point of a launch (normal
// completion or cancellation cut). The recorder drops it if the last
// checkpoint already sampled this cycle.
func (lf *lifecycle) finalSample(cycle uint64) {
	if lf.sampler != nil {
		lf.sampler.sample(cycle)
	}
}

// progressOf samples chip-wide progress counters in ascending SM-id order.
func progressOf(sms []*sm.SM, cycle uint64) Progress {
	p := Progress{Cycle: cycle}
	for _, s := range sms {
		p.WarpInsts += s.Retired()
		if s.Busy() {
			p.LiveSMs++
		}
	}
	return p
}

// runSerial is the legacy single-goroutine loop: SMs step in ascending id
// order each cycle, touching the shared memory system and meter directly.
func runSerial(ctx context.Context, cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	maxCycles := cfg.effectiveMaxCycles()
	msys := mem.NewSystem(cfg.MemTiming, cfg.L2Bytes)
	sms := make([]*sm.SM, cfg.NumSMs)
	for i := range sms {
		sms[i] = sm.New(i, cfg.SM, arch, cfg.Energies, prog, lc, gmem, msys, meter)
		if cfg.ExecTrace != nil {
			sms[i].SetExecTrace(cfg.ExecTrace)
		}
	}
	tel := bindTelemetry(cfg, sms, []*power.Meter{meter}, meter, msys, modeSerial, 1)
	lf := newLifecycle(ctx, cfg, tel)

	disp := ctaDispatcher{total: lc.Grid.Count()}
	var cycle uint64

	for {
		disp.dispatch(sms)

		// Event-driven idle skipping: once CTA dispatch has run (a fresh
		// CTA makes its SM unskippable), a chip where every SM is
		// quiescent can jump straight to the earliest completion event.
		// The skipped cycles would not have mutated any state.
		if !cfg.DisableIdleSkip {
			if target, ok := nextEventCycle(sms); ok && target > cycle {
				if target >= maxCycles {
					return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
				}
				cycle = target
			}
		}

		busy := false
		for _, s := range sms {
			s.Cycle(cycle)
			if s.Err() != nil {
				return rawResult{}, fmt.Errorf("gpu: cycle %d: %w", cycle, s.Err())
			}
			if s.Busy() {
				busy = true
			}
		}
		cycle++
		if !busy && disp.done() {
			break
		}
		if cycle >= maxCycles {
			return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
		}
		if err := lf.checkpoint(sms, cycle); err != nil {
			lf.finalSample(cycle)
			return finishRun(sms, cycle, modeSerial, 1), err
		}
	}

	lf.finalSample(cycle)
	return finishRun(sms, cycle, modeSerial, 1), nil
}

// nextEventCycle folds the per-SM next-event reports into a chip-wide skip
// target. ok is false when any SM must be stepped cycle by cycle. A chip
// whose SMs are all idle (sm.NoEvent) reports ok=false too: either the run
// is about to terminate, or CTAs are unplaceable (a configuration error the
// cycle-by-cycle MaxCycles bound should surface, not a skip).
func nextEventCycle(sms []*sm.SM) (uint64, bool) {
	next := uint64(sm.NoEvent)
	for _, s := range sms {
		c, ok := s.NextEventCycle()
		if !ok {
			return 0, false
		}
		if c < next {
			next = c
		}
	}
	if next == sm.NoEvent {
		return 0, false
	}
	return next, true
}

// finishRun aggregates per-SM statistics in ascending id order and stamps
// the execution mode and resolved worker count the run used.
func finishRun(sms []*sm.SM, cycle uint64, mode string, workers int) rawResult {
	var agg stats.Sim
	for _, s := range sms {
		agg.Add(s.Stats())
	}
	agg.Cycles = cycle
	return rawResult{Cycles: cycle, Stats: agg, Mode: mode, Workers: workers}
}
