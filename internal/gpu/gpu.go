// Package gpu assembles the full chip: SMs, the CTA dispatcher, and the
// shared L2/DRAM memory system, and runs a kernel launch to completion
// under a chosen architecture, producing cycle counts, statistics, and a
// power breakdown.
package gpu

import (
	"fmt"

	"gscalar/internal/kernel"
	"gscalar/internal/mem"
	"gscalar/internal/power"
	"gscalar/internal/sm"
	"gscalar/internal/stats"
)

// Config is the chip-level configuration (Table 1).
type Config struct {
	NumSMs      int
	CoreClockHz float64
	SM          sm.Config
	MemTiming   mem.Timing
	L2Bytes     int
	Energies    power.Energies
	// MaxCycles aborts runaway simulations (0 = a large default).
	MaxCycles uint64
	// Workers selects the chip-loop execution mode. 0 (the default) runs
	// the legacy serial loop, preserved bit-for-bit. Any other value runs
	// the deterministic phased loop — per-cycle parallel SM compute, then a
	// serial commit of shared-state accesses in ascending SM-id order —
	// with that many compute workers (negative = one per host core). All
	// Workers != 0 values produce bit-identical results; the worker count
	// only changes wall-clock time.
	Workers int
	// DisableIdleSkip turns off event-driven idle skipping: by default both
	// loops fast-forward the cycle counter to the chip's next-event cycle
	// whenever every SM is quiescent (no ready warps, no live operand
	// collectors — only in-flight memory/pipeline completions). Skipped
	// cycles mutate no state whatsoever, so results are bit-identical with
	// skipping on or off; the flag exists for benchmarking the raw loop and
	// for validating exactly that property.
	DisableIdleSkip bool
}

// DefaultConfig returns the GTX-480-like configuration of Table 1.
func DefaultConfig() Config {
	return Config{
		NumSMs:      15,
		CoreClockHz: 1.4e9,
		SM:          sm.DefaultConfig(),
		MemTiming:   mem.DefaultTiming(),
		L2Bytes:     768 << 10,
		Energies:    power.DefaultEnergies(),
		MaxCycles:   0,
	}
}

// Result summarises one simulated launch.
type Result struct {
	Cycles  uint64
	Stats   stats.Sim
	Power   power.Breakdown
	IPC     float64 // committed warp instructions per cycle (chip-wide)
	IPCPerW float64 // the paper's power-efficiency metric
	EnergyJ float64
}

// Run simulates prog with launch lc on memory gmem under arch.
func Run(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory) (Result, error) {
	var meter power.Meter
	r, err := runWithMeter(cfg, arch, prog, lc, gmem, &meter)
	if err != nil {
		return Result{}, err
	}
	staticW := cfg.Energies.StaticW(cfg.NumSMs, arch.HasCodec())
	bd := meter.Finish(r.Cycles, cfg.CoreClockHz, staticW)
	res := Result{
		Cycles:  r.Cycles,
		Stats:   r.Stats,
		Power:   bd,
		IPC:     r.Stats.IPC(),
		EnergyJ: bd.EnergyJ,
	}
	if bd.AvgPowerW > 0 {
		res.IPCPerW = res.IPC / bd.AvgPowerW
	}
	return res, nil
}

// rawResult is a simulation outcome before power finalisation, so launch
// sequences can share one energy meter.
type rawResult struct {
	Cycles uint64
	Stats  stats.Sim
}

// ctaDispatcher assigns pending CTAs to SMs with capacity, round-robin from
// a rotating start index: each assignment resumes the scan at the SM after
// the one just fed, so freed capacity is shared fairly across the chip
// instead of favouring low-numbered SMs. The rotation depends only on the
// assignment history, making placement deterministic for any worker count.
type ctaDispatcher struct {
	next  int // next CTA linear id to place
	total int
	start int // SM index to begin the next scan at
}

// dispatch places as many pending CTAs as currently fit.
func (d *ctaDispatcher) dispatch(sms []*sm.SM) {
	n := len(sms)
	for d.next < d.total {
		assigned := false
		for i := 0; i < n; i++ {
			idx := (d.start + i) % n
			if sms[idx].CanTakeCTA() {
				sms[idx].LaunchCTA(d.next)
				d.next++
				d.start = (idx + 1) % n
				assigned = true
				break
			}
		}
		if !assigned {
			return
		}
	}
}

// done reports whether every CTA has been placed.
func (d *ctaDispatcher) done() bool { return d.next >= d.total }

// effectiveMaxCycles resolves the runaway-simulation bound.
func (cfg Config) effectiveMaxCycles() uint64 {
	if cfg.MaxCycles == 0 {
		return 200_000_000
	}
	return cfg.MaxCycles
}

// runWithMeter is the shared simulation entry: it deposits energy into the
// caller's meter and returns cycle/statistics totals. Config.Workers picks
// the loop: 0 is the legacy serial loop; anything else is the phased loop,
// whose results are bit-identical for every worker count.
func runWithMeter(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	if err := lc.Validate(cfg.SM.MaxWarps * cfg.SM.WarpSize); err != nil {
		return rawResult{}, err
	}
	if cfg.Workers != 0 {
		return runPhased(cfg, arch, prog, lc, gmem, meter)
	}
	return runSerial(cfg, arch, prog, lc, gmem, meter)
}

// runSerial is the legacy single-goroutine loop: SMs step in ascending id
// order each cycle, touching the shared memory system and meter directly.
func runSerial(cfg Config, arch sm.Arch, prog *kernel.Program, lc *kernel.LaunchConfig, gmem *kernel.Memory, meter *power.Meter) (rawResult, error) {
	maxCycles := cfg.effectiveMaxCycles()
	msys := mem.NewSystem(cfg.MemTiming, cfg.L2Bytes)
	sms := make([]*sm.SM, cfg.NumSMs)
	for i := range sms {
		sms[i] = sm.New(i, cfg.SM, arch, cfg.Energies, prog, lc, gmem, msys, meter)
	}

	disp := ctaDispatcher{total: lc.Grid.Count()}
	var cycle uint64

	for {
		disp.dispatch(sms)

		// Event-driven idle skipping: once CTA dispatch has run (a fresh
		// CTA makes its SM unskippable), a chip where every SM is
		// quiescent can jump straight to the earliest completion event.
		// The skipped cycles would not have mutated any state.
		if !cfg.DisableIdleSkip {
			if target, ok := nextEventCycle(sms); ok && target > cycle {
				if target >= maxCycles {
					return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
				}
				cycle = target
			}
		}

		busy := false
		for _, s := range sms {
			s.Cycle(cycle)
			if s.Err() != nil {
				return rawResult{}, fmt.Errorf("gpu: cycle %d: %w", cycle, s.Err())
			}
			if s.Busy() {
				busy = true
			}
		}
		cycle++
		if !busy && disp.done() {
			break
		}
		if cycle >= maxCycles {
			return rawResult{}, fmt.Errorf("gpu: exceeded %d cycles (deadlock or runaway kernel)", maxCycles)
		}
	}

	return finishRun(sms, cycle), nil
}

// nextEventCycle folds the per-SM next-event reports into a chip-wide skip
// target. ok is false when any SM must be stepped cycle by cycle. A chip
// whose SMs are all idle (sm.NoEvent) reports ok=false too: either the run
// is about to terminate, or CTAs are unplaceable (a configuration error the
// cycle-by-cycle MaxCycles bound should surface, not a skip).
func nextEventCycle(sms []*sm.SM) (uint64, bool) {
	next := uint64(sm.NoEvent)
	for _, s := range sms {
		c, ok := s.NextEventCycle()
		if !ok {
			return 0, false
		}
		if c < next {
			next = c
		}
	}
	if next == sm.NoEvent {
		return 0, false
	}
	return next, true
}

// finishRun aggregates per-SM statistics in ascending id order.
func finishRun(sms []*sm.SM, cycle uint64) rawResult {
	var agg stats.Sim
	for _, s := range sms {
		agg.Add(s.Stats())
	}
	agg.Cycles = cycle
	return rawResult{Cycles: cycle, Stats: agg}
}
