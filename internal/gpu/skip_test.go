package gpu

import (
	"reflect"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
)

// runSkipPair runs the same launch with idle skipping on and off and
// requires bit-identical Results (cycles, every statistic, exact energy).
// It returns the skip-enabled result. Workers selects the chip loop.
func runSkipPair(t *testing.T, src string, workers int, numSMs int,
	setup func(m *kernel.Memory, lc *kernel.LaunchConfig)) Result {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) (Result, []uint32) {
		mem := kernel.NewMemory()
		lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 8, Y: 1}, Block: kernel.Dim{X: 128, Y: 1}}
		if setup != nil {
			setup(mem, lc)
		}
		cfg := DefaultConfig()
		cfg.NumSMs = numSMs
		cfg.MaxCycles = 2_000_000
		cfg.Workers = workers
		cfg.DisableIdleSkip = disable
		res, err := Run(cfg, sm.GScalar(), prog, lc, mem)
		if err != nil {
			t.Fatalf("workers=%d noskip=%v: %v", workers, disable, err)
		}
		// Fingerprint device memory so functional output is compared too.
		return res, mem.ReadU32(256, 4096)
	}
	skip, skipMem := run(false)
	noskip, noskipMem := run(true)
	if skip.Cycles != noskip.Cycles {
		t.Errorf("cycles differ: skip=%d noskip=%d", skip.Cycles, noskip.Cycles)
	}
	if !reflect.DeepEqual(skip, noskip) {
		t.Errorf("results differ:\nskip:   %+v\nnoskip: %+v", skip, noskip)
	}
	if !reflect.DeepEqual(skipMem, noskipMem) {
		t.Error("device memory differs between skip and noskip runs")
	}
	return skip
}

// TestSkipBarrierOnlyStall covers the barrier boundary case: warps park at
// bar.sync while their pre-barrier loads are still in flight, so entire SMs
// sit with zero ready warps and only writeback events pending — exactly the
// state idle skipping fast-forwards over. The barrier release must still
// happen on the correct cycle (it is triggered by the last arrival or a
// writeback-unblocked issue, never by an idle cycle).
func TestSkipBarrierOnlyStall(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	shl r11, r1, 2
	iadd r4, $0, r3
	ldg r5, [r4]
	sts [r11], r5
	bar
	mov r6, %ntid.x
	isub r7, r6, r1
	isub r7, r7, 1
	shl r8, r7, 2
	lds r9, [r8]
	iadd r10, $1, r3
	stg [r10], r9
	exit
`
	for _, workers := range []int{0, 4} {
		runSkipPair(t, src, workers, 2, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
			lc.SharedBytes = 128 * 4
			vals := make([]uint32, 8*128)
			for i := range vals {
				vals[i] = uint32(i * 3)
			}
			lc.Params[0] = m.AllocU32(vals)
			lc.Params[1] = m.Alloc(8 * 128 * 4)
		})
	}
}

// TestSkipMixedDoneAndStalled covers a CTA whose warps finish at wildly
// different times: low warps exit almost immediately while high warps chase
// long dependent-load chains. The SM spends long stretches with done warps,
// no ready warps, and in-flight loads — skippable — but the done warps'
// retirement bookkeeping (CTA release, barrier accounting) must be
// unaffected by the jumps.
func TestSkipMixedDoneAndStalled(t *testing.T) {
	src := `
	mov r1, %tid.x
	isetp.lt p0, r1, 64
	@p0 exit
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 7
	iadd r4, $0, r3
	ldg r5, [r4]
	and r6, r5, 4095
	shl r6, r6, 2
	iadd r6, $0, r6
	ldg r7, [r6]
	iadd r8, r5, r7
	shl r9, r2, 2
	iadd r10, $1, r9
	stg [r10], r8
	exit
`
	for _, workers := range []int{0, 4} {
		runSkipPair(t, src, workers, 2, func(m *kernel.Memory, lc *kernel.LaunchConfig) {
			vals := make([]uint32, 8*128*32)
			for i := range vals {
				vals[i] = uint32(i * 7)
			}
			lc.Params[0] = m.AllocU32(vals)
			lc.Params[1] = m.Alloc(8 * 128 * 4)
		})
	}
}

// TestSkipIdleSMWithPendingCTAs covers the dispatcher boundary case: a
// one-SM chip with far more CTAs than residency, where the SM repeatedly
// drains to idle on the same cycle the dispatcher would refill it. The skip
// check runs after dispatch, so a refilled SM is unskippable; a bug that
// skipped over the refill would show up as a cycle-count difference.
func TestSkipIdleSMWithPendingCTAs(t *testing.T) {
	src := `
	mov r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl r3, r2, 2
	iadd r4, $0, r3
	ldg r5, [r4]
	iadd r5, r5, 1
	iadd r6, $1, r3
	stg [r6], r5
	exit
`
	for _, workers := range []int{0, 4} {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		run := func(disable bool) Result {
			mem := kernel.NewMemory()
			lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 24, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
			vals := make([]uint32, 24*32)
			for i := range vals {
				vals[i] = uint32(i)
			}
			lc.Params[0] = mem.AllocU32(vals)
			lc.Params[1] = mem.Alloc(24 * 32 * 4)
			cfg := DefaultConfig()
			cfg.NumSMs = 1
			cfg.MaxCycles = 2_000_000
			cfg.Workers = workers
			cfg.DisableIdleSkip = disable
			res, err := Run(cfg, sm.GScalar(), prog, lc, mem)
			if err != nil {
				t.Fatalf("workers=%d noskip=%v: %v", workers, disable, err)
			}
			return res
		}
		skip, noskip := run(false), run(true)
		if !reflect.DeepEqual(skip, noskip) {
			t.Errorf("workers=%d: results differ:\nskip:   %+v\nnoskip: %+v", workers, skip, noskip)
		}
	}
}

// TestSkipMaxCyclesMidSkip covers the abort boundary case: the bound
// expires while every SM is quiescent waiting on a DRAM access that
// completes after MaxCycles. The skip path must report the exact error the
// cycle-by-cycle loop reports, not jump past the bound.
func TestSkipMaxCyclesMidSkip(t *testing.T) {
	src := `
	mov r1, %tid.x
	shl r2, r1, 2
	iadd r3, $0, r2
	ldg r4, [r3]
	stg [r3], r4
	exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		errs := make([]string, 2)
		for i, disable := range []bool{false, true} {
			mem := kernel.NewMemory()
			lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
			lc.Params[0] = mem.Alloc(32 * 4)
			cfg := DefaultConfig()
			cfg.NumSMs = 1
			// A DRAM round trip costs hundreds of cycles; the load issues
			// within the first ~30, so the bound trips while the SM is
			// quiescent mid-flight.
			cfg.MaxCycles = 50
			cfg.Workers = workers
			cfg.DisableIdleSkip = disable
			_, err := Run(cfg, sm.GScalar(), prog, lc, mem)
			if err == nil {
				t.Fatalf("workers=%d noskip=%v: expected MaxCycles error, got success", workers, disable)
			}
			errs[i] = err.Error()
		}
		if errs[0] != errs[1] {
			t.Errorf("workers=%d: error text differs:\nskip:   %s\nnoskip: %s", workers, errs[0], errs[1])
		}
	}
}
