package gpu

import (
	"strings"
	"testing"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/sm"
)

func TestRunRejectsInvalidLaunch(t *testing.T) {
	prog, err := asm.Assemble("exit")
	if err != nil {
		t.Fatal(err)
	}
	cases := []kernel.LaunchConfig{
		{Grid: kernel.Dim{X: 0, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}},
		{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 0, Y: 1}},
		{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 4096, Y: 1}},
	}
	for i, lc := range cases {
		if _, err := Run(DefaultConfig(), sm.Baseline(), prog, &lc, kernel.NewMemory()); err == nil {
			t.Errorf("case %d: invalid launch accepted", i)
		}
	}
}

func TestRunSurfacesKernelErrors(t *testing.T) {
	// Shared-memory overflow is a runtime kernel error and must surface
	// through Run with context, not panic.
	prog, err := asm.Assemble(`
	mov r1, 99999
	lds r2, [r1]
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{
		Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1},
		SharedBytes: 64,
	}
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	_, err = Run(cfg, sm.GScalar(), prog, lc, kernel.NewMemory())
	if err == nil {
		t.Fatal("shared overflow not reported")
	}
	if !strings.Contains(err.Error(), "shared") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestRunMaxCyclesGuard(t *testing.T) {
	prog, err := asm.Assemble("L:\nbra L\n")
	if err != nil {
		t.Fatal(err)
	}
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 32, Y: 1}}
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxCycles = 10_000
	_, err = Run(cfg, sm.Baseline(), prog, lc, kernel.NewMemory())
	if err == nil || !strings.Contains(err.Error(), "cycles") {
		t.Fatalf("runaway kernel not caught: %v", err)
	}
}

func TestRunEmptyGridEdge(t *testing.T) {
	// Minimal 1-thread launch works.
	prog, err := asm.Assemble(`
	mov r1, 7
	iadd r2, $0, 0
	stg [r2], r1
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := kernel.NewMemory()
	out := mem.Alloc(4)
	lc := &kernel.LaunchConfig{Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 1, Y: 1}}
	lc.Params[0] = out
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	if _, err := Run(cfg, sm.GScalar(), prog, lc, mem); err != nil {
		t.Fatal(err)
	}
	if got := mem.ReadU32(out, 1)[0]; got != 7 {
		t.Fatalf("out = %d", got)
	}
}
