// Package mem models the GPU memory subsystem: per-warp address coalescing,
// a set-associative write-through L1 per SM, a shared banked L2, an
// interconnect, and a bandwidth-limited multi-channel DRAM. Timing is
// latency+queue based: an access returns the cycle its data arrives back at
// the SM, and DRAM channels serialise transactions at their burst rate.
package mem

import (
	"math/bits"

	"gscalar/internal/telemetry"
)

// LineSize is the memory transaction granularity in bytes (one L1/L2 line).
const LineSize = 128

// Coalesce reduces the per-lane byte addresses of a warp memory access to
// the set of distinct LineSize-aligned transactions, in ascending order.
// Only lanes selected by active are considered. The paper's baseline memory
// pipeline performs exactly this coalescing; a scalar-eligible memory
// instruction produces one transaction.
func Coalesce(addrs []uint32, active uint64) []uint32 {
	return CoalesceInto(nil, addrs, active)
}

// CoalesceInto is Coalesce writing into buf (reset to length zero first), so
// the per-access scratch can be reused across calls without allocating.
// Active lanes are bit-iterated (inactive lanes cost nothing), and the
// dominant access shapes — a warp touching one line, or lane addresses
// ascending — take a compare-and-append fast path; only genuinely unsorted
// gathers fall back to sorted insertion (at most one line per lane, so
// insertion still beats a map + sort there).
func CoalesceInto(buf []uint32, addrs []uint32, active uint64) []uint32 {
	lines := buf[:0]
	m := active
	if len(addrs) < 64 {
		m &= 1<<uint(len(addrs)) - 1
	}
	for ; m != 0; m &= m - 1 {
		line := addrs[bits.TrailingZeros64(m)] &^ (LineSize - 1)
		if n := len(lines); n > 0 {
			if last := lines[n-1]; line == last {
				continue
			} else if line > last {
				lines = append(lines, line)
				continue
			}
			// Out-of-order lane: insert into the sorted prefix, skipping
			// duplicates.
			i := n
			for i > 0 && lines[i-1] > line {
				i--
			}
			if i > 0 && lines[i-1] == line {
				continue
			}
			lines = append(lines, 0)
			copy(lines[i+1:], lines[i:])
			lines[i] = line
			continue
		}
		lines = append(lines, line)
	}
	return lines
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// tags only (data is functionally held by kernel.Memory). The LRU clock is
// per-cache (not global) so independent caches — e.g. the per-SM L1s of a
// parallel simulation — never share mutable state; victim selection only
// ever compares timestamps within one cache, so per-cache clocks produce
// bit-identical replacement decisions to a global clock.
type Cache struct {
	sets     [][]cacheLine
	assoc    int
	setShift uint
	setMask  uint32
	lruClock uint64
}

type cacheLine struct {
	tag   uint32
	valid bool
	lru   uint64
}

// NewCache builds a cache of capacity bytes with the given associativity
// and LineSize lines. capacity must be a multiple of assoc*LineSize.
func NewCache(capacity, assoc int) *Cache {
	nsets := capacity / (assoc * LineSize)
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two for cheap indexing.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	c := &Cache{
		sets:  make([][]cacheLine, nsets),
		assoc: assoc,
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, assoc)
	}
	shift := uint(7) // log2(LineSize)
	c.setShift = shift
	c.setMask = uint32(nsets - 1)
	return c
}

// Lookup probes for the line containing addr, allocating it on a miss when
// allocate is set. It reports whether the access hit.
func (c *Cache) Lookup(addr uint32, allocate bool) bool {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift
	c.lruClock++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.lruClock
			return true
		}
	}
	if allocate {
		victim := 0
		for i := 1; i < len(set); i++ {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		set[victim] = cacheLine{tag: tag, valid: true, lru: c.lruClock}
	}
	return false
}

// Probe reports whether the line containing addr is present, without
// touching LRU state or allocating. It is the read-only Lookup the relaxed
// epoch mode uses to estimate access latency from the compute phase: many
// goroutines may Probe one cache concurrently as long as nothing mutates it,
// which the epoch rendezvous guarantees (all Lookup/Invalidate calls happen
// in the serial commit phase).
func (c *Cache) Probe(addr uint32) bool {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if present (used by
// write-evict stores).
func (c *Cache) Invalidate(addr uint32) {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
		}
	}
}

// Timing holds the latency/bandwidth parameters of the memory system, in
// core cycles. The NoC runs at half the core clock (Table 1); its cost is
// folded into the latencies.
type Timing struct {
	L1HitLatency  int
	SharedLatency int
	NoCLatency    int // SM <-> L2 one-way
	L2Latency     int
	DRAMLatency   int
	DRAMBurst     int // channel occupancy per 128-byte transaction
	NumChannels   int
}

// DefaultTiming returns GTX-480-like parameters.
func DefaultTiming() Timing {
	return Timing{
		L1HitLatency:  30,
		SharedLatency: 24,
		NoCLatency:    40,
		L2Latency:     80,
		DRAMLatency:   220,
		DRAMBurst:     6,
		NumChannels:   6,
	}
}

// AccessKind discriminates the outcome of a global access for statistics
// and energy accounting.
type AccessKind uint8

// Access outcomes.
const (
	AccessL1Hit AccessKind = iota
	AccessL2Hit
	AccessDRAM
)

// System is the shared (chip-level) part of the memory hierarchy: L2 and
// DRAM channels. SMs own their L1s and call into System on misses.
type System struct {
	timing   Timing
	l2       *Cache
	chanFree []uint64
	// chanTx counts DRAM transactions per channel for telemetry. drainToDRAM
	// runs serially in both chip loops (directly in the serial loop, from the
	// commit phase in the phased loop), so plain increments are race-free.
	chanTx []uint64
}

// NewSystem builds the chip memory system with an l2Bytes L2.
func NewSystem(timing Timing, l2Bytes int) *System {
	return &System{
		timing:   timing,
		l2:       NewCache(l2Bytes, 16),
		chanFree: make([]uint64, timing.NumChannels),
		chanTx:   make([]uint64, timing.NumChannels),
	}
}

// RegisterTelemetry registers the per-channel DRAM transaction counters.
func (s *System) RegisterTelemetry(reg *telemetry.Registry) {
	for ch := range s.chanTx {
		reg.Counter("mem.dram_chan_tx", ch, &s.chanTx[ch])
	}
}

// channelOf statically maps a line address to a DRAM channel.
func (s *System) channelOf(line uint32) int {
	return int(line/LineSize) % s.timing.NumChannels
}

// AccessL2 performs the post-L1 part of a global access starting at core
// cycle now, returning the cycle the data is available back at the SM and
// how deep the access went. Writes are write-through to DRAM (no L2
// allocate on store miss), loads allocate in L2.
func (s *System) AccessL2(now uint64, line uint32, write bool) (done uint64, kind AccessKind) {
	t := s.timing
	arriveL2 := now + uint64(t.NoCLatency)
	if s.l2.Lookup(line, !write) {
		if write {
			// Write hit updates L2 and drains to DRAM in the background;
			// the SM does not wait for DRAM.
			s.drainToDRAM(arriveL2, line)
		}
		return arriveL2 + uint64(t.L2Latency) + uint64(t.NoCLatency), AccessL2Hit
	}
	// L2 miss: go to the line's DRAM channel, serialised at burst rate.
	ready := s.drainToDRAM(arriveL2+uint64(t.L2Latency), line)
	return ready + uint64(t.NoCLatency), AccessDRAM
}

// drainToDRAM occupies the line's channel and returns when the transaction
// completes (including DRAM latency).
func (s *System) drainToDRAM(at uint64, line uint32) uint64 {
	t := s.timing
	ch := s.channelOf(line)
	s.chanTx[ch]++
	start := at
	if s.chanFree[ch] > start {
		start = s.chanFree[ch]
	}
	s.chanFree[ch] = start + uint64(t.DRAMBurst)
	return start + uint64(t.DRAMBurst) + uint64(t.DRAMLatency)
}

// Timing returns the system's timing parameters.
func (s *System) Timing() Timing { return s.timing }

// EstimateAccess predicts what AccessL2 would return for a load issued at
// core cycle now, without mutating any shared state: the L2 probe skips the
// LRU update and never allocates, and the DRAM-channel backlog is read but
// not advanced. The relaxed epoch mode calls it from the concurrent compute
// phase — it is safe exactly because the shared memory system is frozen
// between epoch rendezvous — and feeds the estimate to the SM as the load's
// completion time. The estimate ignores queueing behind transactions
// deferred in the same epoch (they have not committed yet), which is the
// timing slack the relaxed mode's accuracy bound covers; backlog committed
// in earlier epochs is fully visible through chanFree.
func (s *System) EstimateAccess(now uint64, line uint32) uint64 {
	t := s.timing
	arriveL2 := now + uint64(t.NoCLatency)
	if s.l2.Probe(line) {
		return arriveL2 + uint64(t.L2Latency) + uint64(t.NoCLatency)
	}
	at := arriveL2 + uint64(t.L2Latency)
	start := at
	if free := s.chanFree[s.channelOf(line)]; free > start {
		start = free
	}
	return start + uint64(t.DRAMBurst) + uint64(t.DRAMLatency) + uint64(t.NoCLatency)
}

// DeferredTx is one beyond-L1 transaction buffered by the relaxed epoch
// mode: the issuing core cycle, the 128-byte line, and the direction.
type DeferredTx struct {
	Cycle uint64
	Line  uint32
	Write bool
}

// TxBuffer accumulates an SM's deferred transactions over one epoch, in
// issue order (ascending cycle), so committing buffers SM by SM yields the
// deterministic (SM-index, cycle) commit order the relaxed mode promises.
// The backing slice is reused across epochs, so steady-state deferral
// allocates nothing.
type TxBuffer struct {
	txs []DeferredTx
}

// Defer appends one transaction issued at the given core cycle.
func (b *TxBuffer) Defer(cycle uint64, line uint32, write bool) {
	b.txs = append(b.txs, DeferredTx{Cycle: cycle, Line: line, Write: write})
}

// Len returns the number of buffered transactions.
func (b *TxBuffer) Len() int { return len(b.txs) }

// CommitDeferred applies a buffer's transactions to the shared L2/DRAM
// system in buffer order, each at its recorded issue cycle, and empties the
// buffer. onTx (when non-nil) receives each transaction's depth outcome for
// statistics and energy accounting. It must only run serially — the relaxed
// chip loop calls it for each SM in ascending SM-id order at the epoch
// rendezvous. Completion times are deliberately not returned: the issuing
// SMs already ran ahead on EstimateAccess values, and the commit's job is
// solely to evolve shared state (L2 contents, channel backlog)
// deterministically for the next epoch's estimates.
func (s *System) CommitDeferred(b *TxBuffer, onTx func(AccessKind)) {
	for i := range b.txs {
		tx := &b.txs[i]
		_, kind := s.AccessL2(tx.Cycle, tx.Line, tx.Write)
		if onTx != nil {
			onTx(kind)
		}
	}
	b.txs = b.txs[:0]
}
