package mem

import (
	"testing"
	"testing/quick"
)

func TestCoalesceSingleLine(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint32(i)*4
	}
	lines := Coalesce(addrs, 0xFFFFFFFF)
	if len(lines) != 1 || lines[0] != 0x1000 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestCoalesceStrided(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i) * 256 // one line each
	}
	lines := Coalesce(addrs, 0xFFFFFFFF)
	if len(lines) != 32 {
		t.Fatalf("lines = %d, want 32", len(lines))
	}
}

func TestCoalesceMasked(t *testing.T) {
	addrs := []uint32{0, 4, 1000, 2000}
	lines := Coalesce(addrs, 0b0011)
	if len(lines) != 1 || lines[0] != 0 {
		t.Fatalf("lines = %v", lines)
	}
	if got := Coalesce(addrs, 0); len(got) != 0 {
		t.Fatalf("empty mask lines = %v", got)
	}
}

// TestCoalesceProperties: every active address is covered by exactly one
// returned line; lines are sorted and unique.
func TestCoalesceProperties(t *testing.T) {
	f := func(raw [16]uint32, mask uint16) bool {
		addrs := raw[:]
		lines := Coalesce(addrs, uint64(mask))
		seen := map[uint32]bool{}
		for i, l := range lines {
			if l%LineSize != 0 {
				return false
			}
			if seen[l] {
				return false
			}
			seen[l] = true
			if i > 0 && lines[i-1] >= l {
				return false
			}
		}
		for lane := 0; lane < 16; lane++ {
			if mask&(1<<lane) == 0 {
				continue
			}
			if !seen[addrs[lane]&^uint32(LineSize-1)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(16<<10, 4)
	if c.Lookup(0x1000, true) {
		t.Fatal("cold hit")
	}
	if !c.Lookup(0x1000, true) {
		t.Fatal("warm miss")
	}
	if !c.Lookup(0x1040, true) {
		t.Fatal("same-line offset miss")
	}
	if c.Lookup(0x1080, true) {
		t.Fatal("adjacent-line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4-way cache: fill one set with 5 distinct tags; the first must be
	// evicted.
	c := NewCache(4*LineSize, 4) // 1 set
	for i := 0; i < 5; i++ {
		c.Lookup(uint32(i)*LineSize, true)
	}
	if c.Lookup(0, true) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Lookup(4*LineSize, true) {
		t.Fatal("MRU line evicted")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(16<<10, 4)
	c.Lookup(0x2000, true)
	c.Invalidate(0x2000)
	if c.Lookup(0x2000, false) {
		t.Fatal("invalidated line hit")
	}
}

func TestSystemLatencyOrdering(t *testing.T) {
	s := NewSystem(DefaultTiming(), 768<<10)
	// Cold: DRAM. Warm: L2 hit, strictly faster.
	cold, kind := s.AccessL2(100, 0x4000, false)
	if kind != AccessDRAM {
		t.Fatalf("cold kind = %v", kind)
	}
	warm, kind := s.AccessL2(100, 0x4000, false)
	if kind != AccessL2Hit {
		t.Fatalf("warm kind = %v", kind)
	}
	if warm >= cold {
		t.Fatalf("L2 hit (%d) not faster than DRAM (%d)", warm, cold)
	}
}

func TestDRAMChannelSerialisation(t *testing.T) {
	tm := DefaultTiming()
	s := NewSystem(tm, 1<<10) // tiny L2 so everything misses
	// Two lines mapping to the same channel, issued at the same cycle,
	// must serialise by the burst time.
	lineA := uint32(0)
	lineB := uint32(LineSize * uint32(tm.NumChannels))
	if s.channelOf(lineA) != s.channelOf(lineB) {
		t.Fatal("test lines not on same channel")
	}
	a, _ := s.AccessL2(0, lineA, false)
	b, _ := s.AccessL2(0, lineB, false)
	if b-a != uint64(tm.DRAMBurst) {
		t.Fatalf("serialisation gap = %d, want %d", b-a, tm.DRAMBurst)
	}
	// A line on a different channel does not queue behind them.
	lineC := uint32(LineSize)
	c, _ := s.AccessL2(0, lineC, false)
	if c != a {
		t.Fatalf("other channel delayed: %d vs %d", c, a)
	}
}

func TestWriteDrainsInBackground(t *testing.T) {
	s := NewSystem(DefaultTiming(), 768<<10)
	// Prime the line so the write hits L2.
	s.AccessL2(0, 0x8000, false)
	done, kind := s.AccessL2(1000, 0x8000, true)
	if kind != AccessL2Hit {
		t.Fatalf("write kind = %v", kind)
	}
	t2 := s.Timing()
	want := 1000 + uint64(t2.NoCLatency)*2 + uint64(t2.L2Latency)
	if done != want {
		t.Fatalf("write-hit done = %d, want %d (no DRAM wait)", done, want)
	}
}
