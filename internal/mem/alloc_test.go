package mem

import "testing"

// TestAccessPathZeroAlloc checks the per-transaction memory hot path: line
// coalescing into a caller-owned buffer, L1 lookups, and L2/DRAM accesses
// must not allocate once warm.
func TestAccessPathZeroAlloc(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i) * 4
	}
	// Strided second half so coalescing covers the append and dedup paths.
	for i := 16; i < 32; i++ {
		addrs[i] = uint32(i) * 512
	}
	buf := CoalesceInto(nil, addrs, ^uint64(0)) // warm the buffer

	c := NewCache(16<<10, 4)
	sys := NewSystem(DefaultTiming(), 128<<10)
	now := uint64(0)

	allocs := testing.AllocsPerRun(1000, func() {
		buf = CoalesceInto(buf, addrs, ^uint64(0))
		for _, line := range buf {
			c.Lookup(line, true)
			sys.AccessL2(now, line, false)
		}
		now++
	})
	if allocs != 0 {
		t.Errorf("memory access path allocates %.2f objects/access, want 0", allocs)
	}
}
