// Package gen is the calibrated synthetic-kernel generator: it turns a
// dial vector (divergence fraction, Fig 8 register value-class mix, SFU
// share, memory intensity and coalescing, CTA occupancy) into a .gasm
// program plus deterministic input memory whose *measured* dynamic
// properties land on the request. It is the scenario-diversity counterpart
// to the 17 hand-written Table 2 kernels: where those reproduce specific
// benchmarks, gen sweeps the whole space the paper's figures are driven by.
//
// The emitted kernel is a fixed-shape loop of 32 iterations. A per-warp
// schedule word (one bit per iteration, baked in as an immediate) decides
// which iterations split the warp: a set bit routes the first `split` lanes
// through a taken arm while the rest fall through, so both arms execute
// under partial masks — the classic if/else divergence shape of Figure 1.
// Each arm carries the same list of "slots": ALU, SFU, and memory
// instructions whose operand registers are drawn from a bank of class
// registers engineered (from %laneid) to hold values with exactly 4, 3, 2,
// 1 or 0 shared most-significant bytes across the warp. A small solver
// picks the schedule-bit count, the slot composition, and the operand
// assignment so the committed-instruction shares and the RF read-class
// distribution match the dials, accounting for the loop's structural
// instructions and the forced reads (address registers) of the memory
// slots.
//
// Everything is a pure function of (Params, scale): same dials, same seed
// ⇒ byte-identical program text and memory image, so a gen workload has a
// stable content key and caches exactly like a builtin.
package gen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
)

// Fixed shape of the generated kernel. The solver's granularity (how
// finely a dial can be hit) is one slot out of ~armSlots+9 instructions
// per iteration, well inside the property-suite tolerances.
const (
	iters      = 32 // loop iterations = schedule bits
	armSlots   = 24 // instruction slots per branch arm
	fullCTAs   = 60 // CTA count at occ=1 (4 CTAs per SM x 15 SMs)
	ctaThreads = 256
	dataWords  = 1 << 16 // 256 KiB load-target buffer
)

// Params is the parsed dial vector. Zero value is NOT the default — use
// Defaults() or ParseDials.
type Params struct {
	Div  float64 // target divergent-instruction fraction (Fig 1)
	SFU  float64 // target SFU share of committed instructions
	Mem  float64 // target memory-instruction share
	Coal float64 // fraction of generated loads with coalesced addresses

	// Target RF read-class fractions (Fig 8). The remainder becomes
	// no-similarity and divergent reads.
	Scalar float64
	B3     float64
	B2     float64
	B1     float64

	Occ  float64 // CTA occupancy: fraction of the full 60-CTA grid
	Seed uint64  // PRNG seed for schedule, operand shuffle, scatter map
}

// Defaults returns the dial vector encoded by "gen:" with no dials set.
func Defaults() Params {
	return Params{
		Div: 0, SFU: 0.05, Mem: 0.1, Coal: 1,
		Scalar: 0.3, B3: 0.15, B2: 0.05, B1: 0.05,
		Occ: 1, Seed: 1,
	}
}

// Dial describes one generator parameter for the machine-readable schema
// (served by GET /api/v1/workloads so clients can build sweeps without
// hardcoding names or ranges).
type Dial struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"` // "float" or "int"
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Default float64 `json:"default"`
	Desc    string  `json:"description"`
}

// Schema returns the dial table in canonical (name-sorted) order.
func Schema() []Dial {
	d := Defaults()
	return []Dial{
		{Name: "coal", Type: "float", Min: 0, Max: 1, Default: d.Coal,
			Desc: "fraction of generated loads using coalesced (unit-stride) addresses; the rest scatter across the data buffer"},
		{Name: "div", Type: "float", Min: 0, Max: 0.6, Default: d.Div,
			Desc: "target divergent-instruction fraction (Figure 1)"},
		{Name: "mem", Type: "float", Min: 0, Max: 0.45, Default: d.Mem,
			Desc: "target memory-instruction share (mem+sfu must stay <= 0.7)"},
		{Name: "occ", Type: "float", Min: 0.05, Max: 1, Default: d.Occ,
			Desc: "CTA occupancy: fraction of the full 60-CTA grid (256 threads per CTA)"},
		{Name: "r1", Type: "float", Min: 0, Max: 0.6, Default: d.B1,
			Desc: "target fraction of RF reads with 1 shared MSB (Figure 8)"},
		{Name: "r2", Type: "float", Min: 0, Max: 0.6, Default: d.B2,
			Desc: "target fraction of RF reads with 2 shared MSBs (Figure 8)"},
		{Name: "r3", Type: "float", Min: 0, Max: 0.6, Default: d.B3,
			Desc: "target fraction of RF reads with 3 shared MSBs (Figure 8)"},
		{Name: "rs", Type: "float", Min: 0, Max: 0.6, Default: d.Scalar,
			Desc: "target fraction of fully scalar RF reads (rs+r3+r2+r1 must stay <= 0.9)"},
		{Name: "seed", Type: "int", Min: 0, Max: math.MaxUint32, Default: float64(d.Seed),
			Desc: "PRNG seed for the divergence schedule, operand shuffle and scatter map"},
		{Name: "sfu", Type: "float", Min: 0, Max: 0.4, Default: d.SFU,
			Desc: "target special-function-unit share of committed instructions"},
	}
}

// DialError is the typed per-parameter parse/validation error. Dial names
// a schema entry (or a cross-dial constraint like "sfu+mem"), Value is the
// offending input.
type DialError struct {
	Dial   string
	Value  string
	Reason string
}

func (e *DialError) Error() string {
	return fmt.Sprintf("gen dial %s=%q: %s", e.Dial, e.Value, e.Reason)
}

func dialByName(name string) (Dial, bool) {
	for _, d := range Schema() {
		if d.Name == name {
			return d, true
		}
	}
	return Dial{}, false
}

// ParseDials parses the comma-separated dial list of a "gen:" spec (the
// part after the prefix; empty means all defaults). Unknown names,
// malformed values, duplicates, out-of-range values and cross-dial
// constraint violations all fail with a *DialError.
func ParseDials(s string) (Params, error) {
	p := Defaults()
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, val, ok := strings.Cut(part, "=")
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		if !ok || name == "" || val == "" {
			return Params{}, &DialError{Dial: name, Value: part, Reason: "want name=value"}
		}
		d, known := dialByName(name)
		if !known {
			return Params{}, &DialError{Dial: name, Value: val, Reason: "unknown dial (see the generator schema)"}
		}
		if seen[name] {
			return Params{}, &DialError{Dial: name, Value: val, Reason: "duplicate dial"}
		}
		seen[name] = true
		if name == "seed" {
			u, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Params{}, &DialError{Dial: name, Value: val, Reason: "not a 32-bit unsigned integer"}
			}
			p.Seed = u
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Params{}, &DialError{Dial: name, Value: val, Reason: "not a number"}
		}
		if !(f >= d.Min && f <= d.Max) { // NaN fails too
			return Params{}, &DialError{Dial: name, Value: val,
				Reason: fmt.Sprintf("out of range [%g, %g]", d.Min, d.Max)}
		}
		switch name {
		case "div":
			p.Div = f
		case "sfu":
			p.SFU = f
		case "mem":
			p.Mem = f
		case "coal":
			p.Coal = f
		case "rs":
			p.Scalar = f
		case "r3":
			p.B3 = f
		case "r2":
			p.B2 = f
		case "r1":
			p.B1 = f
		case "occ":
			p.Occ = f
		}
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Validate checks per-dial ranges and the cross-dial feasibility
// constraints (the kernel template cannot fill more than ~70 % of its
// instruction slots with SFU+memory work, and the read-class mix must
// leave room for structural and divergent reads).
func (p Params) Validate() error {
	check := func(name string, v float64) *DialError {
		d, _ := dialByName(name)
		if !(v >= d.Min && v <= d.Max) {
			return &DialError{Dial: name, Value: strconv.FormatFloat(v, 'g', -1, 64),
				Reason: fmt.Sprintf("out of range [%g, %g]", d.Min, d.Max)}
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"div", p.Div}, {"sfu", p.SFU}, {"mem", p.Mem}, {"coal", p.Coal},
		{"rs", p.Scalar}, {"r3", p.B3}, {"r2", p.B2}, {"r1", p.B1}, {"occ", p.Occ},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.Seed > math.MaxUint32 {
		return &DialError{Dial: "seed", Value: strconv.FormatUint(p.Seed, 10),
			Reason: "out of range [0, 4294967295]"}
	}
	if s := p.SFU + p.Mem; s > 0.7 {
		return &DialError{Dial: "sfu+mem", Value: strconv.FormatFloat(s, 'g', -1, 64),
			Reason: "combined SFU+memory share above 0.7 exceeds the kernel template's slot budget"}
	}
	if s := p.Scalar + p.B3 + p.B2 + p.B1; s > 0.9 {
		return &DialError{Dial: "rs+r3+r2+r1", Value: strconv.FormatFloat(s, 'g', -1, 64),
			Reason: "read-class mix above 0.9 leaves no room for structural reads"}
	}
	return nil
}

// Canonical renders the dial list in canonical form: dials at their
// default are omitted, the rest appear name-sorted with shortest-round-trip
// number formatting. ParseDials(p.Canonical()) == p, and canonicalizing is
// idempotent — the "gen:"+Canonical() string is the workload's content key.
func (p Params) Canonical() string {
	d := Defaults()
	var parts []string
	add := func(name string, v, def float64) {
		if v != def {
			parts = append(parts, name+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("coal", p.Coal, d.Coal)
	add("div", p.Div, d.Div)
	add("mem", p.Mem, d.Mem)
	add("occ", p.Occ, d.Occ)
	add("r1", p.B1, d.B1)
	add("r2", p.B2, d.B2)
	add("r3", p.B3, d.B3)
	add("rs", p.Scalar, d.Scalar)
	if p.Seed != d.Seed {
		parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	}
	add("sfu", p.SFU, d.SFU)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Describe is the one-line human description used by workload listings.
func (p Params) Describe() string {
	return fmt.Sprintf("synthetic kernel (div=%.2f sfu=%.2f mem=%.2f coal=%.2f mix=%.2f/%.2f/%.2f/%.2f occ=%.2f seed=%d)",
		p.Div, p.SFU, p.Mem, p.Coal, p.Scalar, p.B3, p.B2, p.B1, p.Occ, p.Seed)
}

// rng is the same xorshift PRNG the builtin workloads use for inputs —
// deterministic across Go versions and GOMAXPROCS.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*2685821657736338717 + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// ---------------------------------------------------------------------------
// Calibration solver
// ---------------------------------------------------------------------------

type slotKind uint8

const (
	slotALU slotKind = iota
	slotSFU
	slotLoadCoal
	slotLoadScat
	slotStore
)

// slot is one generated arm instruction; a and b index the class-register
// bank for the freely assignable operand reads (-1 = unused).
type slot struct {
	kind slotKind
	op   string
	a, b int
}

// Class-register bank indices (order matches classRegs below).
const (
	clsScalar = iota
	clsB3
	clsB2
	clsB1
	clsNone
	numClasses
)

var classRegs = [numClasses]string{"r9", "r10", "r11", "r12", "r13"}

// Per-warp instruction accounting of the fixed template (kept in sync with
// render below; the gendet property suite holds the truth of these
// numbers against live telemetry):
//
//	prologue+epilogue: 20 instructions, 15 register reads
//	  (11 b3, 1 b2, 1 b1, 1 none, 1 scalar)
//	loop structure, per iteration: 8 instructions, 8 reads (7 scalar, 1 b3)
//	convergent iteration: 8 + armSlots instructions (the whole warp takes
//	  the branch to the main arm — a guarded bra with a full mask is not
//	  divergent); a divergent iteration adds the fall-through arm and its
//	  join bra (armSlots+1 instructions) and commits 2*armSlots+2
//	  instructions under partial masks (both arms, the split bra, the
//	  join bra). The loop-exit bra commits once per warp with an empty
//	  active mask, counting as one more divergent instruction.
const (
	proInsts       = 20
	proReads       = 15
	proReadsB3     = 11
	proReadsB2     = 1
	proReadsB1     = 1
	proReadsNone   = 1
	proReadsScalar = 1
	proMemInsts    = 2 // scatter-base ldg + epilogue stg
	iterInsts      = 8
	iterReadsScal  = 7
	iterReadsB3    = 1
)

// plan is the solved static shape of one generated kernel.
type plan struct {
	p        Params
	k        int    // divergent iterations
	schedule uint32 // one bit per iteration
	split    int    // lanes taking the taken arm when a bit is set
	slots    []slot

	// seeded class-register constants (low bits masked so the lane
	// pattern lands in the intended byte)
	constS, const3, const2, const1, const0 uint32
}

// solve turns the dial vector into a concrete kernel plan. Everything is
// closed-form: totals as a function of the divergent-iteration count k,
// then slot counts from the share targets, then operand classes from the
// read-mix targets with the structural/forced reads subtracted out.
func solve(p Params) plan {
	r := newRNG(p.Seed)
	pl := plan{p: p}

	// Divergent iterations: solve div = D(k)/T(k) with
	// T(k) = base + (armSlots+1)*k and D(k) = (2*armSlots+2)*k + 1
	// (see the accounting above).
	base := float64(proInsts + iters*(iterInsts+armSlots))
	dpi := float64(2*armSlots + 2)
	k := 0
	if p.Div > 0 {
		k = int(math.Round((p.Div*base - 1) / (dpi - float64(armSlots+1)*p.Div)))
		k = max(0, min(k, iters))
	}
	pl.k = k
	total := base + float64((armSlots+1)*k)
	armExecs := float64(iters + k)

	// Slot composition from the share targets.
	memSlots := int(math.Round((p.Mem*total - proMemInsts) / armExecs))
	memSlots = max(0, min(memSlots, armSlots))
	sfuSlots := int(math.Round(p.SFU * total / armExecs))
	sfuSlots = max(0, min(sfuSlots, armSlots-memSlots))
	aluSlots := armSlots - memSlots - sfuSlots
	stores := memSlots / 4
	loads := memSlots - stores
	coalLoads := int(math.Round(p.Coal * float64(loads)))
	scatLoads := loads - coalLoads

	// RF read-class assignment. Free read positions: 2 per ALU slot, 1
	// per SFU slot, 1 per store (the stored value); each executes
	// iters-k times with its true class (the 2k divergent arm executions
	// classify as divergent reads regardless of operand). Forced reads:
	// load/store address registers and the loop's structural reads.
	freePos := 2*aluSlots + sfuSlots + stores
	armReads := 2*aluSlots + sfuSlots + loads + 2*stores
	totalReads := float64(proReads+iters*(iterReadsScal+iterReadsB3)) + armExecs*float64(armReads)
	conv := float64(iters - k) // executions of a slot at its true class
	fixed := [numClasses]float64{
		clsScalar: float64(iters*iterReadsScal + proReadsScalar),
		clsB3:     float64(iters*iterReadsB3+proReadsB3) + conv*float64(coalLoads+stores),
		clsB2:     proReadsB2,
		clsB1:     float64(proReadsB1) + conv*float64(scatLoads),
		clsNone:   proReadsNone,
	}
	counts := [numClasses]int{}
	if conv > 0 {
		remaining := freePos
		for _, c := range []struct {
			cls    int
			target float64
		}{
			{clsScalar, p.Scalar}, {clsB3, p.B3}, {clsB2, p.B2}, {clsB1, p.B1},
		} {
			need := (c.target*totalReads - fixed[c.cls]) / conv
			n := max(0, min(int(math.Round(need)), remaining))
			counts[c.cls] = n
			remaining -= n
		}
		counts[clsNone] = remaining
	} else {
		counts[clsNone] = freePos
	}

	// Build the operand pool and the slot list, then shuffle both with
	// the seeded PRNG so the schedule interleaves units.
	pool := make([]int, 0, freePos)
	for cls, n := range counts {
		for i := 0; i < n; i++ {
			pool = append(pool, cls)
		}
	}
	for i := len(pool) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}
	take := func() int {
		if len(pool) == 0 {
			return clsNone
		}
		c := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return c
	}
	aluOps := []string{"iadd", "xor", "and", "or"}
	sfuOps := []string{"rcp", "rsqrt", "ex2", "lg2", "sin", "cos", "sqrt"}
	slots := make([]slot, 0, armSlots)
	for i := 0; i < aluSlots; i++ {
		slots = append(slots, slot{kind: slotALU, op: aluOps[i%len(aluOps)], a: take(), b: take()})
	}
	for i := 0; i < sfuSlots; i++ {
		slots = append(slots, slot{kind: slotSFU, op: sfuOps[i%len(sfuOps)], a: take(), b: -1})
	}
	for i := 0; i < stores; i++ {
		slots = append(slots, slot{kind: slotStore, op: "stg", a: take(), b: -1})
	}
	for i := 0; i < coalLoads; i++ {
		slots = append(slots, slot{kind: slotLoadCoal, op: "ldg", a: -1, b: -1})
	}
	for i := 0; i < scatLoads; i++ {
		slots = append(slots, slot{kind: slotLoadScat, op: "ldg", a: -1, b: -1})
	}
	for i := len(slots) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		slots[i], slots[j] = slots[j], slots[i]
	}
	pl.slots = slots

	// Divergence schedule: k of 32 bits, seeded placement; split point
	// away from the warp edges so both sides keep multiple lanes.
	perm := make([]int, iters)
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, bit := range perm[:k] {
		pl.schedule |= 1 << bit
	}
	pl.split = 8 + r.intn(17) // 8..24 of 32 lanes take the branch

	// Class-register constants: seeded, with the bytes the lane pattern
	// occupies forced clear so the shared-MSB count is exact.
	pl.constS = 0x40000000 | uint32(r.next())&0x00ffffff
	pl.const3 = 0x3f800000 | uint32(r.next())&0x007fff00
	pl.const2 = 0x3ea00000 | uint32(r.next())&0x000001ff
	pl.const1 = 0x3e000000 | uint32(r.next())&0x0001ffff
	pl.const0 = uint32(r.next()) & 0x01ffffff
	return pl
}

// ---------------------------------------------------------------------------
// Rendering and building
// ---------------------------------------------------------------------------

// Render emits the .gasm program for the dial vector. Pure and
// deterministic: equal Params yield byte-identical text.
func Render(p Params) string {
	return render(solve(p))
}

func render(pl plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// gen:%s\n", pl.p.Canonical())
	b.WriteString(".kernel gensyn\n")
	b.WriteString("	mov   r1, %tid.x\n")
	b.WriteString("	imad  r2, %ctaid.x, %ntid.x, r1   // gid\n")
	b.WriteString("	shl   r3, r2, 2\n")
	b.WriteString("	mov   r4, %laneid\n")
	b.WriteString("	iadd  r5, $0, r3                  // coalesced load base\n")
	b.WriteString("	iadd  r6, $1, r3\n")
	b.WriteString("	ldg   r7, [r6]                    // scattered load base (precomputed)\n")
	b.WriteString("	iadd  r8, $2, r3                  // store base\n")
	fmt.Fprintf(&b, "	mov   r9, 0x%08x              // class reg: scalar\n", pl.constS)
	fmt.Fprintf(&b, "	or    r10, r4, 0x%08x         // class reg: 3-byte\n", pl.const3)
	b.WriteString("	shl   r16, r4, 9\n")
	fmt.Fprintf(&b, "	or    r11, r16, 0x%08x        // class reg: 2-byte\n", pl.const2)
	b.WriteString("	shl   r16, r4, 17\n")
	fmt.Fprintf(&b, "	or    r12, r16, 0x%08x        // class reg: 1-byte\n", pl.const1)
	b.WriteString("	shl   r16, r4, 25\n")
	fmt.Fprintf(&b, "	or    r13, r16, 0x%08x        // class reg: no similarity\n", pl.const0)
	b.WriteString("	mov   r14, 0                      // iteration counter\n")
	fmt.Fprintf(&b, "	mov   r15, 0x%08x             // divergence schedule\n", pl.schedule)
	b.WriteString("LOOP:\n")
	b.WriteString("	shr   r17, r15, r14\n")
	b.WriteString("	and   r17, r17, 1\n")
	fmt.Fprintf(&b, "	imul  r18, r17, %d                // split point, 0 when convergent\n", pl.split)
	b.WriteString("	isetp.ge p0, r4, r18              // whole warp on convergent iterations\n")
	b.WriteString("	@p0 bra MAIN\n")
	renderArm(&b, pl.slots) // fall-through arm: divergent iterations only
	b.WriteString("	bra JOIN\n")
	b.WriteString("MAIN:\n")
	renderArm(&b, pl.slots)
	b.WriteString("JOIN:\n")
	b.WriteString("	iadd  r14, r14, 1\n")
	fmt.Fprintf(&b, "	isetp.lt p0, r14, %d\n", iters)
	b.WriteString("	@p0 bra LOOP\n")
	b.WriteString("	stg   [r8], r9\n")
	b.WriteString("	exit\n")
	return b.String()
}

// renderArm writes the slot list; destination registers rotate through
// r20..r27 to keep writeback hazards from serializing the arm.
func renderArm(b *strings.Builder, slots []slot) {
	for i, s := range slots {
		dst := fmt.Sprintf("r%d", 20+i%8)
		switch s.kind {
		case slotALU:
			fmt.Fprintf(b, "	%-5s %s, %s, %s\n", s.op, dst, classRegs[s.a], classRegs[s.b])
		case slotSFU:
			fmt.Fprintf(b, "	%-5s %s, %s\n", s.op, dst, classRegs[s.a])
		case slotLoadCoal:
			fmt.Fprintf(b, "	ldg   %s, [r5+%d]\n", dst, 4*i)
		case slotLoadScat:
			fmt.Fprintf(b, "	ldg   %s, [r7+%d]\n", dst, 4*i)
		case slotStore:
			fmt.Fprintf(b, "	stg   [r8], %s\n", classRegs[s.a])
		}
	}
}

// Build materialises the generated workload: assembled program, launch
// configuration and input memory. scale >= 1 multiplies the grid like it
// does for builtins. Same (Params, scale) ⇒ byte-identical program and
// memory snapshot.
func Build(p Params, scale int) (*kernel.Program, *kernel.LaunchConfig, *kernel.Memory, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if scale < 1 {
		scale = 1
	}
	pl := solve(p)
	prog, err := asm.Assemble(render(pl))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("gen: assembling synthetic kernel: %w", err)
	}

	ctas := max(1, int(math.Round(p.Occ*fullCTAs))) * scale
	threads := ctas * ctaThreads
	r := newRNG(p.Seed ^ 0xdeadbeefcafe)

	m := kernel.NewMemory()
	dataBase := m.Alloc(4 * dataWords)
	data := make([]uint32, dataWords)
	for i := range data {
		data[i] = uint32(r.next())
	}
	m.WriteU32(dataBase, data)

	// Scattered-load base addresses, one per thread. Constructed so every
	// warp's 32 addresses share exactly one MSB (Fig 8's 1-byte class):
	// the buffer is far below 16 MiB (byte 3 constant) and the fix-up
	// loop forces a byte-2 spread inside any pathological window.
	scat := make([]uint32, threads)
	lim := dataWords - 2*armSlots
	for i := range scat {
		scat[i] = dataBase + 4*uint32(r.intn(lim))
	}
	for w := 0; w+32 <= len(scat); w += 32 {
		win := scat[w : w+32]
		for try := 0; sharedMSBs(win) != 1 && try < 64; try++ {
			idx := (int(win[0]-dataBase)/4 + 0x4321) % lim
			win[0] = dataBase + 4*uint32(idx)
		}
	}
	scatBase := m.Alloc(4 * threads)
	m.WriteU32(scatBase, scat)
	outBase := m.Alloc(4 * threads)

	lc := &kernel.LaunchConfig{
		Grid:  kernel.Dim{X: ctas, Y: 1},
		Block: kernel.Dim{X: ctaThreads, Y: 1},
	}
	lc.Params[0] = dataBase
	lc.Params[1] = scatBase
	lc.Params[2] = outBase
	return prog, lc, m, nil
}

// sharedMSBs counts how many leading bytes all values share — the same
// classification core.SameMSBBytes applies at register writeback.
func sharedMSBs(vals []uint32) int {
	var diff uint32
	for _, v := range vals {
		diff |= v ^ vals[0]
	}
	switch {
	case diff == 0:
		return 4
	case diff <= 0xff:
		return 3
	case diff <= 0xffff:
		return 2
	case diff <= 0xffffff:
		return 1
	}
	return 0
}
