package gen

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"
)

// TestParseDialsErrors pins the typed per-parameter errors: every bad spec
// fails with a *DialError naming the offending dial (or cross-dial
// constraint), so callers can echo the schema entry back to the user.
func TestParseDialsErrors(t *testing.T) {
	cases := []struct {
		in   string
		dial string
	}{
		{"foo=1", "foo"},                 // unknown dial
		{"div=0.1,div=0.2", "div"},       // duplicate
		{"div", "div"},                   // missing value
		{"div=", "div"},                  // empty value
		{"=0.3", ""},                     // empty name
		{"div=abc", "div"},               // not a number
		{"div=NaN", "div"},               // NaN is out of every range
		{"div=0.7", "div"},               // above max
		{"occ=0", "occ"},                 // below min
		{"occ=-1", "occ"},                // negative
		{"seed=-1", "seed"},              // seed must be unsigned
		{"seed=5000000000", "seed"},      // above 32 bits
		{"seed=1.5", "seed"},             // seed must be an integer
		{"sfu=0.4,mem=0.4", "sfu+mem"},   // cross-dial: slot budget
		{"rs=0.6,r3=0.4", "rs+r3+r2+r1"}, // cross-dial: read-mix headroom
	}
	for _, c := range cases {
		_, err := ParseDials(c.in)
		if err == nil {
			t.Errorf("ParseDials(%q): expected error", c.in)
			continue
		}
		var de *DialError
		if !errors.As(err, &de) {
			t.Errorf("ParseDials(%q): error %T is not *DialError", c.in, err)
			continue
		}
		if de.Dial != c.dial {
			t.Errorf("ParseDials(%q): DialError.Dial = %q, want %q", c.in, de.Dial, c.dial)
		}
	}
}

func TestParseDialsDefaults(t *testing.T) {
	for _, in := range []string{"", "   "} {
		p, err := ParseDials(in)
		if err != nil {
			t.Fatalf("ParseDials(%q): %v", in, err)
		}
		if p != Defaults() {
			t.Errorf("ParseDials(%q) = %+v, want Defaults()", in, p)
		}
	}
	if got := Defaults().Canonical(); got != "" {
		t.Errorf("Defaults().Canonical() = %q, want empty", got)
	}
}

// TestCanonicalRoundTrip holds Canonical's contract: parsing the canonical
// form reproduces the params, canonicalizing is idempotent, and dials
// spelled at their default value vanish from the canonical string.
func TestCanonicalRoundTrip(t *testing.T) {
	specs := []string{
		"div=0.3,sfu=0.2,mem=0.3,coal=0.5",
		"seed=42",
		"rs=0.1,r3=0.05,r2=0.2,r1=0.1,occ=0.25",
		"div=0,sfu=0.05,mem=0.1,coal=1", // all-default spelling
		"mem=0.30,  sfu = 0.10",         // whitespace + trailing zeros
		"occ=0.125,seed=4294967295,div=0.6",
	}
	for _, s := range specs {
		p, err := ParseDials(s)
		if err != nil {
			t.Fatalf("ParseDials(%q): %v", s, err)
		}
		canon := p.Canonical()
		p2, err := ParseDials(canon)
		if err != nil {
			t.Fatalf("ParseDials(Canonical(%q) = %q): %v", s, canon, err)
		}
		if p2 != p {
			t.Errorf("round trip of %q via %q: %+v != %+v", s, canon, p2, p)
		}
		if c2 := p2.Canonical(); c2 != canon {
			t.Errorf("Canonical not idempotent for %q: %q then %q", s, canon, c2)
		}
	}
	if p, _ := ParseDials("div=0,sfu=0.05,mem=0.1,coal=1"); p.Canonical() != "" {
		t.Errorf("explicit defaults canonicalize to %q, want empty", p.Canonical())
	}
}

// TestSchemaSanity holds the machine-readable dial schema together: sorted
// unique names, sane ranges, and defaults that agree with Defaults().
func TestSchemaSanity(t *testing.T) {
	sch := Schema()
	names := make([]string, len(sch))
	for i, d := range sch {
		names[i] = d.Name
		if d.Type != "float" && d.Type != "int" {
			t.Errorf("dial %s: type %q", d.Name, d.Type)
		}
		if !(d.Min <= d.Default && d.Default <= d.Max) {
			t.Errorf("dial %s: default %g outside [%g, %g]", d.Name, d.Default, d.Min, d.Max)
		}
		if d.Desc == "" {
			t.Errorf("dial %s: empty description", d.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("schema not name-sorted: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Errorf("duplicate dial %q", names[i])
		}
	}
	// Every schema dial must parse.
	for _, d := range sch {
		if _, err := ParseDials(d.Name + "=" + "0.05"); d.Name != "seed" && err != nil {
			t.Errorf("dial %s rejects an in-range value: %v", d.Name, err)
		}
	}
}

// TestRenderDeterminism: Render is a pure function of Params — equal dials
// yield byte-identical text; a different seed yields a different kernel.
func TestRenderDeterminism(t *testing.T) {
	p, err := ParseDials("div=0.3,sfu=0.2,mem=0.25,coal=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a, b := Render(p), Render(p)
	if a != b {
		t.Fatal("Render not deterministic for equal Params")
	}
	p2 := p
	p2.Seed = 8
	if Render(p2) == a {
		t.Error("different seeds rendered identical kernels")
	}
	if !strings.Contains(a, ".kernel gensyn") {
		t.Errorf("render missing kernel header:\n%s", a)
	}
}

// TestBuildDeterminism: Build is pure in (Params, scale) — repeated builds
// produce byte-identical memory snapshots and equal launch shapes.
func TestBuildDeterminism(t *testing.T) {
	p, err := ParseDials("div=0.2,mem=0.3,coal=0.25,occ=0.2,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	_, lc1, m1, err := Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, lc2, m2, err := Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *lc1 != *lc2 {
		t.Fatalf("launch configs differ: %+v vs %+v", lc1, lc2)
	}
	n1, pg1 := m1.Snapshot()
	n2, pg2 := m2.Snapshot()
	if n1 != n2 || len(pg1) != len(pg2) {
		t.Fatalf("snapshots differ in shape: next %d/%d, pages %d/%d", n1, n2, len(pg1), len(pg2))
	}
	for i := range pg1 {
		if pg1[i].ID != pg2[i].ID || !bytes.Equal(pg1[i].Data, pg2[i].Data) {
			t.Fatalf("memory page %d differs between builds", pg1[i].ID)
		}
	}
}

// TestBuildScaleAndOcc: occupancy scales the grid, scale multiplies it.
func TestBuildScaleAndOcc(t *testing.T) {
	p := Defaults()
	p.Occ = 0.5
	_, lc, _, err := Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Grid.X != 30 {
		t.Errorf("occ=0.5 grid = %d CTAs, want 30", lc.Grid.X)
	}
	_, lc2, _, err := Build(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lc2.Grid.X != 90 {
		t.Errorf("occ=0.5 scale=3 grid = %d CTAs, want 90", lc2.Grid.X)
	}
	if lc.Block.X != ctaThreads {
		t.Errorf("block = %d, want %d", lc.Block.X, ctaThreads)
	}
}

// TestBuildRejectsInvalid: Build revalidates, so a hand-constructed
// out-of-range Params cannot reach the solver.
func TestBuildRejectsInvalid(t *testing.T) {
	p := Defaults()
	p.Div = 0.9
	if _, _, _, err := Build(p, 1); err == nil {
		t.Fatal("expected validation error")
	}
	var de *DialError
	p2 := Defaults()
	p2.SFU, p2.Mem = 0.4, 0.4
	_, _, _, err := Build(p2, 1)
	if !errors.As(err, &de) || de.Dial != "sfu+mem" {
		t.Fatalf("err = %v, want sfu+mem DialError", err)
	}
}

// TestScatterWindows: every warp-sized window of the scattered address map
// lands in the 1-shared-MSB class the r1 dial models.
func TestScatterWindows(t *testing.T) {
	p := Defaults()
	p.Coal, p.Occ, p.Seed = 0, 0.2, 99
	_, lc, m, err := Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	threads := lc.Grid.X * lc.Block.X
	scat := m.ReadU32(lc.Params[1], threads)
	for w := 0; w+32 <= len(scat); w += 32 {
		if got := sharedMSBs(scat[w : w+32]); got != 1 {
			t.Fatalf("warp window at %d shares %d MSBs, want 1", w, got)
		}
	}
}
