//go:build !race

package gscalar_test

// raceMultiplier scales perf-smoke ceilings; 1 without the race detector.
const raceMultiplier = 1
