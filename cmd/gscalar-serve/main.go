// Command gscalar-serve runs the gscalar sweep server: an HTTP daemon that
// accepts simulation points (config x arch x workload x scale), runs them
// on a bounded worker pool, and memoizes every completed Result in a
// disk-backed content-addressed store. Restarting the server over the same
// store directory never re-simulates a completed point, and a graceful
// shutdown (SIGINT/SIGTERM) persists unfinished points for the next life.
//
// Usage:
//
//	gscalar-serve [-addr :8370] [-store DIR] [-workers N] [-queue N]
//
// See docs/architecture.md ("Serving & result store") for the API and the
// store layout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gscalar/internal/serve"
	"gscalar/internal/store"
)

func main() {
	addr := flag.String("addr", ":8370", "HTTP listen address")
	dir := flag.String("store", "gscalar-store", "result store directory (created if absent)")
	workers := flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth in points (0 = 1024)")
	telemetry := flag.Bool("telemetry", true, "collect per-run metrics and persist them with each result")
	flag.Parse()

	if err := run(*addr, *dir, *workers, *queue, *telemetry); err != nil {
		fmt.Fprintln(os.Stderr, "gscalar-serve:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, queue int, telemetry bool) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		Store:      st,
		Workers:    workers,
		QueueDepth: queue,
		Telemetry:  telemetry,
	})
	if err != nil {
		return err
	}
	stats := srv.Stats()
	log.Printf("store %s: %d completed points", st.Dir(), stats.StoreEntries)
	log.Printf("listening on %s (%d workers, queue depth %d)", addr, stats.Workers, stats.QueueCap)

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
	}

	log.Printf("shutting down: draining in-flight simulations")
	pending, derr := srv.Drain()
	if derr != nil {
		log.Printf("drain: %v", derr)
	} else if pending > 0 {
		log.Printf("drain: %d pending points persisted; restart to resume", pending)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return derr
}
