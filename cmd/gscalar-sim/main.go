// Command gscalar-sim runs one Table 2 benchmark under one architecture and
// prints the detailed simulation result: cycles, IPC, power and its
// component shares, scalar-eligibility decomposition, RF access classes,
// and compression statistics.
//
// Usage:
//
//	gscalar-sim -bench BP [-arch gscalar] [-scale 1] [-sms 15] [-workers N]
//	            [-noskip] [-cpuprofile sim.pprof] [-memprofile sim.mprof] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gscalar"
	"gscalar/internal/hostprof"
)

var archByName = map[string]gscalar.Arch{
	"baseline":           gscalar.Baseline,
	"alu-scalar":         gscalar.ALUScalar,
	"warped-compression": gscalar.WarpedCompression,
	"rvc-only":           gscalar.RVCOnly,
	"gscalar-nodiv":      gscalar.GScalarNoDiv,
	"gscalar":            gscalar.GScalar,
}

func main() {
	bench := flag.String("bench", "", "benchmark abbreviation (see -list)")
	archName := flag.String("arch", "gscalar", "architecture: baseline, alu-scalar, warped-compression, rvc-only, gscalar-nodiv, gscalar")
	scale := flag.Int("scale", 1, "workload scale factor")
	sms := flag.Int("sms", 0, "override number of SMs")
	list := flag.Bool("list", false, "list benchmarks and exit")
	breakdown := flag.Bool("breakdown", false, "print the per-component power breakdown")
	all := flag.Bool("all", false, "run every Table 2 benchmark and print a summary table")
	workers := flag.Int("workers", 0, "phased-loop compute workers (0 = legacy serial loop, -1 = one per host core)")
	noskip := flag.Bool("noskip", false, "disable event-driven idle-cycle skipping (results are identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the simulator to this file")
	flag.Parse()

	var err error
	prof, err = hostprof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if *list {
		for _, abbr := range gscalar.Workloads() {
			w, _ := gscalar.WorkloadByAbbr(abbr)
			fmt.Printf("%-4s %-11s %-8s %s\n", w.Abbr, w.Name, w.Suite, w.Desc)
		}
		return
	}
	arch, ok := archByName[*archName]
	if !ok {
		fatal(fmt.Errorf("unknown architecture %q", *archName))
	}
	if *all {
		runAll(arch, *scale, *sms, *workers, *noskip)
		return
	}
	if *bench == "" {
		fatal(fmt.Errorf("missing -bench (use -list to see options)"))
	}
	cfg := gscalar.DefaultConfig()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	cfg.Workers = *workers
	cfg.DisableIdleSkip = *noskip
	res, err := gscalar.RunWorkload(cfg, arch, *bench, *scale)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s (scale %d, %d SMs)\n", *bench, arch, *scale, cfg.NumSMs)
	fmt.Printf("  cycles           %d\n", res.Cycles)
	fmt.Printf("  warp insts       %d (+%d injected moves, %.2f%%)\n",
		res.WarpInsts, uint64(res.MoveOverhead*float64(res.WarpInsts)), 100*res.MoveOverhead)
	fmt.Printf("  IPC              %.3f\n", res.IPC)
	fmt.Printf("  power            %.1f W (exec %.1f%%, RF %.1f%%)\n",
		res.PowerW, 100*res.ExecPowerShare, 100*res.RFPowerShare)
	fmt.Printf("  IPC/W            %.4f\n", res.IPCPerW)
	fmt.Printf("  energy           %.4f J (RF dynamic %.4f J)\n", res.EnergyJ, res.RFDynamicJ)
	fmt.Printf("  divergent        %.1f%% (value-scalar %.1f%%)\n",
		100*res.FracDivergent, 100*res.FracDivergentScalar)
	e := res.Eligibility
	fmt.Printf("  scalar eligible  %.1f%% (ALU %.1f%%, SFU %.1f%%, mem %.1f%%, half %.1f%%, divergent %.1f%%)\n",
		100*e.Total(), 100*e.ALU, 100*e.SFU, 100*e.Mem, 100*e.Half, 100*e.Divergent)
	d := res.RFAccess
	fmt.Printf("  RF reads         scalar %.1f%%, 3B %.1f%%, 2B %.1f%%, 1B %.1f%%, none %.1f%%, divergent %.1f%%\n",
		100*d.Scalar, 100*d.B3, 100*d.B2, 100*d.B1, 100*d.None, 100*d.Divergent)
	fmt.Printf("  compression      %.2fx\n", res.CompressionRatio)
	fmt.Printf("  L1 miss rate     %.1f%%; DRAM transactions %d\n", 100*res.L1MissRate, res.DRAMTransactions)
	if *breakdown {
		fmt.Println("  power by component:")
		type kv struct {
			name string
			w    float64
		}
		var comps []kv
		for name, w := range res.PowerByComponent {
			comps = append(comps, kv{name, w})
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i].w > comps[j].w })
		for _, c := range comps {
			if c.w < 0.005 {
				continue
			}
			fmt.Printf("    %-14s %7.2f W (%4.1f%%)\n", c.name, c.w, 100*c.w/res.PowerW)
		}
	}
}

// runAll prints a one-line summary per benchmark.
func runAll(arch gscalar.Arch, scale, sms, workers int, noskip bool) {
	cfg := gscalar.DefaultConfig()
	if sms > 0 {
		cfg.NumSMs = sms
	}
	cfg.Workers = workers
	cfg.DisableIdleSkip = noskip
	fmt.Printf("%-4s %8s %10s %7s %8s %9s %8s %7s\n",
		"sim", "cycles", "warpinsts", "IPC", "power(W)", "IPC/W", "eligible", "diverg")
	for _, abbr := range gscalar.Workloads() {
		res, err := gscalar.RunWorkload(cfg, arch, abbr, scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-4s %8d %10d %7.2f %8.1f %9.5f %7.1f%% %6.1f%%\n",
			abbr, res.Cycles, res.WarpInsts, res.IPC, res.PowerW, res.IPCPerW,
			100*res.Eligibility.Total(), 100*res.FracDivergent)
	}
}

// prof is stopped on every exit path; fatal must flush it because os.Exit
// skips main's defer.
var prof *hostprof.Profiles

func fatal(err error) {
	prof.Stop()
	fmt.Fprintln(os.Stderr, "gscalar-sim:", err)
	os.Exit(1)
}
