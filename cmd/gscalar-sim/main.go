// Command gscalar-sim runs one workload under one architecture and prints
// the detailed simulation result: cycles, IPC, power and its component
// shares, scalar-eligibility decomposition, RF access classes, and
// compression statistics. A workload is either a Table 2 benchmark
// abbreviation, a captured execution trace ("trace:<path>"), or a calibrated
// synthetic kernel ("gen:div=0.3,sfu=0.2,..."; -list-workloads prints the
// dial schema).
//
// The chip configuration can be loaded from a JSON file (-config); flags
// given explicitly on the command line override the file. -dump-config
// prints the effective configuration as canonical JSON (suitable to feed
// back via -config) with its content hash. A SIGINT — or an expired
// -timeout — stops the simulation at its next lifecycle checkpoint and the
// partial statistics accumulated so far are still printed.
//
// Usage:
//
//	gscalar-sim -workload BP [-arch gscalar] [-scale 1] [-sms 15] [-workers N]
//	            [-config chip.json] [-dump-config] [-timeout 30s] [-progress N]
//	            [-metrics-out m.json] [-metrics-format json|csv] [-chrome-trace t.json]
//	            [-trace-out w.gstr] [-sample-stride N] [-noskip]
//	            [-cpuprofile sim.pprof] [-memprofile sim.mprof] [-list-workloads]
//
// With -metrics-out the run's final counters and sampled time series are
// written as JSON (or CSV with -metrics-format csv); -chrome-trace emits a
// Chrome trace-event file of per-SM activity, loadable in Perfetto. Both
// compose with -all, which bundles every benchmark into one file.
//
// -trace-out captures the run as a replayable execution trace (written
// atomically after a successful run): replay it anywhere with
// -workload trace:<file>, under any architecture or chip loop, and the
// replayed result is byte-identical to the live run. Capture requires the
// serial loop and a single workload (not -all).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"gscalar"
	"gscalar/internal/gen"
	"gscalar/internal/hostprof"
	"gscalar/internal/store"
)

func main() {
	var workload string
	flag.StringVar(&workload, "workload", "", "workload spec: a benchmark abbreviation, trace:<path>, or gen:<dials> (see -list-workloads)")
	flag.StringVar(&workload, "bench", "", "deprecated alias of -workload")
	archName := flag.String("arch", "gscalar", "architecture: "+strings.Join(gscalar.ArchNames(), ", "))
	scale := flag.Int("scale", 1, "workload scale factor")
	sms := flag.Int("sms", 0, "override number of SMs")
	var list bool
	flag.BoolVar(&list, "list", false, "list builtin workloads and exit")
	flag.BoolVar(&list, "list-workloads", false, "alias of -list")
	breakdown := flag.Bool("breakdown", false, "print the per-component power breakdown")
	all := flag.Bool("all", false, "run every Table 2 benchmark and print a summary table")
	workers := flag.Int("workers", 0, "phased-loop compute workers (0 = legacy serial loop, -1 = one per host core)")
	relaxed := flag.Bool("relaxed", false, "use the epoch-based relaxed-sync parallel loop (deterministic, not bit-identical to serial; scales with -workers)")
	epoch := flag.Int("epoch", 0, "relaxed-loop epoch length in simulated cycles (implies -relaxed; 0 with -relaxed = default 64)")
	noskip := flag.Bool("noskip", false, "disable event-driven idle-cycle skipping (results are identical either way)")
	configPath := flag.String("config", "", "load the chip configuration from this JSON file (explicit flags override it)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective configuration as canonical JSON (stdout) and its content hash (stderr), then exit")
	timeout := flag.Duration("timeout", 0, "stop simulating after this wall-clock duration; partial statistics are printed")
	progress := flag.Uint64("progress", 0, "report progress to stderr every N simulated cycles (0 = off)")
	metricsOut := flag.String("metrics-out", "", "write final counters and the sampled time series to this file")
	metricsFormat := flag.String("metrics-format", "json", "metrics file format: json or csv")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event file (Perfetto-loadable) to this file")
	traceOut := flag.String("trace-out", "", "capture the run as a replayable execution trace at this path (serial loop only; replay with -workload trace:<path>)")
	sampleStride := flag.Uint64("sample-stride", 0, "simulated cycles between telemetry samples (0 = lifecycle checkpoint stride)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the simulator to this file")
	flag.Parse()

	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bench" {
			fmt.Fprintln(os.Stderr, "gscalar-sim: -bench is deprecated, use -workload")
		}
	})

	if *metricsFormat != "json" && *metricsFormat != "csv" {
		fmt.Fprintf(os.Stderr, "gscalar-sim: unknown -metrics-format %q (want json or csv)\n", *metricsFormat)
		os.Exit(1)
	}
	telemetry := gscalar.TelemetryOptions{
		Enabled:      *metricsOut != "" || *chromeTrace != "",
		SampleStride: *sampleStride,
	}

	var err error
	prof, err = hostprof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if list {
		for _, abbr := range gscalar.Workloads() {
			w, _ := gscalar.WorkloadByAbbr(abbr)
			fmt.Printf("%-4s %-11s %-8s %s\n", w.Abbr, w.Name, w.Suite, w.Desc)
		}
		fmt.Println("\ntrace:<path>  replay an execution trace captured with -trace-out")
		fmt.Println("gen:<dials>   calibrated synthetic kernel; dials (name=value, comma-separated):")
		for _, d := range gen.Schema() {
			ff := func(v float64) string {
				if d.Type == "int" {
					return strconv.FormatFloat(v, 'f', -1, 64)
				}
				return strconv.FormatFloat(v, 'g', -1, 64)
			}
			fmt.Printf("  %-5s %-6s [%s, %s] default %-4s %s\n",
				d.Name, d.Type, ff(d.Min), ff(d.Max), ff(d.Default), d.Desc)
		}
		return
	}

	cfg, err := loadConfig(*configPath)
	if err != nil {
		fatal(err)
	}
	// Apply only the flags the user actually set, so a -config file's values
	// are not clobbered by flag defaults.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sms":
			if *sms > 0 {
				cfg.NumSMs = *sms
			}
		case "workers":
			cfg.Workers = *workers
		case "relaxed":
			cfg.Relaxed = *relaxed
		case "epoch":
			cfg.EpochCycles = *epoch
		case "noskip":
			cfg.DisableIdleSkip = *noskip
		}
	})
	if *dumpConfig {
		cfg.Normalize()
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		b, err := cfg.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		fmt.Fprintln(os.Stderr, "config hash:", cfg.Hash())
		return
	}

	arch, ok := gscalar.ArchByName(*archName)
	if !ok {
		fatal(fmt.Errorf("unknown architecture %q (want one of %s)", *archName, strings.Join(gscalar.ArchNames(), ", ")))
	}

	// SIGINT (and -timeout) cancel the run at its next lifecycle checkpoint;
	// the partial result accumulated up to that cycle is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *all {
		if *traceOut != "" {
			fatal(fmt.Errorf("-trace-out captures a single run; it cannot be combined with -all"))
		}
		runAll(ctx, cfg, arch, *scale, telemetry, *metricsOut, *metricsFormat, *chromeTrace)
		return
	}
	if workload == "" {
		fatal(fmt.Errorf("missing -workload (use -list-workloads to see options)"))
	}

	s, err := gscalar.NewSession(cfg, arch)
	if err != nil {
		fatal(err)
	}
	s.Telemetry = telemetry
	s.Capture.Path = *traceOut
	if *progress > 0 {
		s.ObserverStride = *progress
		start := time.Now()
		s.Observer = func(p gscalar.Progress) {
			fmt.Fprintf(os.Stderr, "  cycle %12d  insts %12d  live SMs %2d  (%.1fs)\n",
				p.Cycle, p.WarpInsts, p.LiveSMs, time.Since(start).Seconds())
		}
	}
	res, err := s.RunWorkload(ctx, workload, *scale)
	if err != nil && !isCancel(err) {
		fatal(err)
	}
	if isCancel(err) {
		fmt.Fprintf(os.Stderr, "gscalar-sim: %v — printing partial statistics\n", err)
	}
	printResult(workload, arch, *scale, cfg, res, *breakdown)
	// A cancelled run still flushes the partial series collected so far.
	if m := s.Metrics(); m != nil {
		if werr := writeTelemetry(gscalar.MetricsSet{m}, *metricsOut, *metricsFormat, *chromeTrace); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		prof.Stop()
		os.Exit(1)
	}
}

// writeTelemetry writes the collected metrics and trace artifacts for the
// flags that were given. A single-run set exports as one JSON object; a
// multi-run set (from -all) as {"runs": [...]}. Files land atomically
// (store.AtomicWrite: temp file + rename), so an export that fails
// mid-render leaves no truncated artifact behind — and never clobbers a
// previous good one.
func writeTelemetry(set gscalar.MetricsSet, metricsOut, format, chromeTrace string) error {
	if len(set) == 0 {
		return nil
	}
	write := func(path string, emit func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		return store.AtomicWrite(path, emit)
	}
	if err := write(metricsOut, func(w io.Writer) error {
		if format == "csv" {
			return set.WriteCSV(w)
		}
		if len(set) == 1 {
			return set[0].WriteJSON(w)
		}
		return set.WriteJSON(w)
	}); err != nil {
		return err
	}
	return write(chromeTrace, set.WriteTrace)
}

// loadConfig returns the default configuration, or the one decoded from the
// JSON file at path (unknown fields rejected, invariants validated).
func loadConfig(path string) (gscalar.Config, error) {
	if path == "" {
		return gscalar.DefaultConfig(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return gscalar.Config{}, err
	}
	cfg, err := gscalar.ConfigFromJSON(data)
	if err != nil {
		return gscalar.Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func printResult(bench string, arch gscalar.Arch, scale int, cfg gscalar.Config, res gscalar.Result, breakdown bool) {
	fmt.Printf("%s on %s (scale %d, %d SMs)\n", bench, arch, scale, cfg.NumSMs)
	fmt.Printf("  cycles           %d\n", res.Cycles)
	fmt.Printf("  warp insts       %d (+%d injected moves, %.2f%%)\n",
		res.WarpInsts, uint64(res.MoveOverhead*float64(res.WarpInsts)), 100*res.MoveOverhead)
	fmt.Printf("  IPC              %.3f\n", res.IPC)
	fmt.Printf("  power            %.1f W (exec %.1f%%, RF %.1f%%)\n",
		res.PowerW, 100*res.ExecPowerShare, 100*res.RFPowerShare)
	fmt.Printf("  IPC/W            %.4f\n", res.IPCPerW)
	fmt.Printf("  energy           %.4f J (RF dynamic %.4f J)\n", res.EnergyJ, res.RFDynamicJ)
	fmt.Printf("  divergent        %.1f%% (value-scalar %.1f%%)\n",
		100*res.FracDivergent, 100*res.FracDivergentScalar)
	e := res.Eligibility
	fmt.Printf("  scalar eligible  %.1f%% (ALU %.1f%%, SFU %.1f%%, mem %.1f%%, half %.1f%%, divergent %.1f%%)\n",
		100*e.Total(), 100*e.ALU, 100*e.SFU, 100*e.Mem, 100*e.Half, 100*e.Divergent)
	d := res.RFAccess
	fmt.Printf("  RF reads         scalar %.1f%%, 3B %.1f%%, 2B %.1f%%, 1B %.1f%%, none %.1f%%, divergent %.1f%%\n",
		100*d.Scalar, 100*d.B3, 100*d.B2, 100*d.B1, 100*d.None, 100*d.Divergent)
	fmt.Printf("  compression      %.2fx\n", res.CompressionRatio)
	fmt.Printf("  L1 miss rate     %.1f%%; DRAM transactions %d\n", 100*res.L1MissRate, res.DRAMTransactions)
	if breakdown {
		fmt.Println("  power by component:")
		type kv struct {
			name string
			w    float64
		}
		var comps []kv
		for name, w := range res.PowerByComponent {
			comps = append(comps, kv{name, w})
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i].w > comps[j].w })
		for _, c := range comps {
			if c.w < 0.005 {
				continue
			}
			fmt.Printf("    %-14s %7.2f W (%4.1f%%)\n", c.name, c.w, 100*c.w/res.PowerW)
		}
	}
}

// runAll prints a one-line summary per benchmark, running every workload
// through one shared Session so telemetry accumulates into a single set. A
// cancellation still flushes the in-flight benchmark's partial row — and the
// partial telemetry — before exiting.
func runAll(ctx context.Context, cfg gscalar.Config, arch gscalar.Arch, scale int,
	tel gscalar.TelemetryOptions, metricsOut, metricsFormat, chromeTrace string) {
	s, err := gscalar.NewSession(cfg, arch)
	if err != nil {
		fatal(err)
	}
	s.Telemetry = tel
	var set gscalar.MetricsSet
	flush := func() {
		if werr := writeTelemetry(set, metricsOut, metricsFormat, chromeTrace); werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("%-4s %8s %10s %7s %8s %9s %8s %7s\n",
		"sim", "cycles", "warpinsts", "IPC", "power(W)", "IPC/W", "eligible", "diverg")
	for _, abbr := range gscalar.Workloads() {
		res, err := s.RunWorkload(ctx, abbr, scale)
		if err != nil && !isCancel(err) {
			fatal(err)
		}
		if m := s.Metrics(); m != nil {
			set = append(set, m)
		}
		fmt.Printf("%-4s %8d %10d %7.2f %8.1f %9.5f %7.1f%% %6.1f%%\n",
			abbr, res.Cycles, res.WarpInsts, res.IPC, res.PowerW, res.IPCPerW,
			100*res.Eligibility.Total(), 100*res.FracDivergent)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gscalar-sim: %v — last row is partial\n", err)
			flush()
			prof.Stop()
			os.Exit(1)
		}
	}
	flush()
}

// prof is stopped on every exit path; fatal must flush it because os.Exit
// skips main's defer.
var prof *hostprof.Profiles

func fatal(err error) {
	prof.Stop()
	fmt.Fprintln(os.Stderr, "gscalar-sim:", err)
	os.Exit(1)
}
