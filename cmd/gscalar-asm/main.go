// Command gscalar-asm assembles a .gasm file, reporting errors, statistics
// and (optionally) the disassembly with resolved reconvergence points, or
// runs the kernel on the functional interpreter.
//
// Usage:
//
//	gscalar-asm [-d] [-run|-profile|-trace N] [-grid N -block N -shared N] file.gasm
//	gscalar-asm -d -           (read from stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gscalar"
)

func main() {
	dis := flag.Bool("d", false, "print disassembly with reconvergence points")
	run := flag.Bool("run", false, "run the kernel on the functional interpreter")
	prof := flag.Bool("profile", false, "profile the kernel: annotated listing with per-PC counts")
	trace := flag.Int("trace", 0, "print an instruction trace of up to N events")
	grid := flag.Int("grid", 1, "grid size (CTAs) for -run")
	block := flag.Int("block", 32, "CTA size (threads) for -run")
	shared := flag.Int("shared", 0, "shared memory bytes per CTA for -run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gscalar-asm [-d] [-run] file.gasm")
		os.Exit(2)
	}
	path := flag.Arg(0)
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}

	prog, err := gscalar.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions\n", prog.Name(), prog.Len())
	if *dis {
		fmt.Print(prog.Disassemble())
	}
	if *run {
		mem := gscalar.NewMemory()
		launch := gscalar.Launch{GridX: *grid, BlockX: *block, SharedBytes: *shared}
		if err := gscalar.RunFunctional(prog, launch, mem); err != nil {
			fatal(err)
		}
		fmt.Printf("functional run ok: %d threads\n", *grid**block)
	}
	if *prof {
		launch := gscalar.Launch{GridX: *grid, BlockX: *block, SharedBytes: *shared}
		out, err := gscalar.ProfileKernel(prog, launch, gscalar.NewMemory())
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	}
	if *trace > 0 {
		launch := gscalar.Launch{GridX: *grid, BlockX: *block, SharedBytes: *shared}
		if err := gscalar.TraceKernel(os.Stdout, prog, launch, gscalar.NewMemory(), *trace); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gscalar-asm:", err)
	os.Exit(1)
}
