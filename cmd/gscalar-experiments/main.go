// Command gscalar-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// The chip configuration can be loaded from a JSON file (-config); flags
// given explicitly on the command line override the file, and -dump-config
// prints the effective configuration with its content hash. A SIGINT — or
// an expired -timeout — cancels the in-flight simulations at their next
// lifecycle checkpoint (with -parallel, the whole fan-out stops).
//
// Usage:
//
//	gscalar-experiments [-exp all|fig1|fig8|fig9|fig10|fig11|fig12|table1|table2|table3|moves]
//	                    [-scale N] [-sms N] [-bench BP,LBM,...] [-parallel N] [-workers N]
//	                    [-config chip.json] [-dump-config] [-timeout 10m]
//	                    [-metrics-out DIR] [-metrics-format json|csv] [-chrome-trace DIR]
//	                    [-trace-out DIR] [-cpuprofile exp.pprof] [-memprofile exp.mprof]
//
// With -metrics-out (and/or -chrome-trace) every freshly simulated
// (architecture, workload) point additionally writes its telemetry — final
// counters plus the sampled time series, and a Perfetto-loadable Chrome
// trace — into the given directory as <arch>_<workload> files. Memoized
// cache hits produce no new telemetry and therefore no files.
//
// -trace-out DIR captures every freshly simulated point as a replayable
// execution trace (<arch>_<workload>.gstr, written atomically on success;
// serial loop only). A captured trace replays through gscalar-sim
// -workload trace:<file> — or back through this command, since -bench
// accepts trace:<path> and gen:<dials> specs alongside benchmark
// abbreviations (a gen spec's own commas are kept with it).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"

	"gscalar"
	"gscalar/internal/experiments"
	"gscalar/internal/hostprof"
	"gscalar/internal/store"
	"gscalar/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig1, fig8, fig9, fig10, fig11, fig12, table1, table2, table3, moves, compiler, half, scalarbank, width, sched)")
	scale := flag.Int("scale", 1, "workload scale factor")
	sms := flag.Int("sms", 0, "override number of SMs (0 = Table 1 value)")
	bench := flag.String("bench", "", "comma-separated workload subset: abbreviations, trace:<path> and/or gen:<dials> specs (default: all)")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files into this directory")
	metricsOut := flag.String("metrics-out", "", "write per-point telemetry (counters + time series) into this directory")
	metricsFormat := flag.String("metrics-format", "json", "telemetry file format: json or csv")
	chromeTrace := flag.String("chrome-trace", "", "write per-point Chrome trace-event files into this directory")
	traceOut := flag.String("trace-out", "", "capture every freshly simulated point as a replayable execution trace (.gstr) in this directory (serial loop only)")
	parallel := flag.Int("parallel", 1, "simulate up to N (arch, workload) points concurrently; output is identical to -parallel 1")
	workers := flag.Int("workers", 0, "phased-loop compute workers per simulation (0 = legacy serial loop, -1 = one per host core)")
	relaxed := flag.Bool("relaxed", false, "use the epoch-based relaxed-sync parallel loop (deterministic, not bit-identical to serial; scales with -workers)")
	epoch := flag.Int("epoch", 0, "relaxed-loop epoch length in simulated cycles (implies -relaxed; 0 with -relaxed = default 64)")
	configPath := flag.String("config", "", "load the chip configuration from this JSON file (explicit flags override it)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective configuration as canonical JSON (stdout) and its content hash (stderr), then exit")
	timeout := flag.Duration("timeout", 0, "stop simulating after this wall-clock duration")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the simulator to this file")
	flag.Parse()

	prof, err := hostprof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscalar-experiments:", err)
		os.Exit(1)
	}
	defer prof.Stop()

	fail := func(err error) {
		prof.Stop() // os.Exit skips the defer
		fmt.Fprintln(os.Stderr, "gscalar-experiments:", err)
		os.Exit(1)
	}

	cfg := gscalar.DefaultConfig()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fail(err)
		}
		cfg, err = gscalar.ConfigFromJSON(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", *configPath, err))
		}
	}
	// Apply only the flags the user actually set, so a -config file's values
	// are not clobbered by flag defaults.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sms":
			if *sms > 0 {
				cfg.NumSMs = *sms
			}
		case "workers":
			cfg.Workers = *workers
		case "relaxed":
			cfg.Relaxed = *relaxed
		case "epoch":
			cfg.EpochCycles = *epoch
		}
	})
	if *dumpConfig {
		cfg.Normalize()
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		b, err := cfg.JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(b))
		fmt.Fprintln(os.Stderr, "config hash:", cfg.Hash())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *metricsFormat != "json" && *metricsFormat != "csv" {
		fail(fmt.Errorf("unknown -metrics-format %q (want json or csv)", *metricsFormat))
	}

	opts := experiments.Options{Config: cfg, Scale: *scale, CaptureDir: *traceOut}
	if *bench != "" {
		opts.Workloads = workloads.SplitList(*bench)
	}
	if *metricsOut != "" || *chromeTrace != "" {
		sink, err := newMetricsSink(*metricsOut, *metricsFormat, *chromeTrace)
		if err != nil {
			fail(err)
		}
		opts.Telemetry = gscalar.TelemetryOptions{Enabled: true}
		opts.OnMetrics = sink.write
		defer func() {
			if err := sink.err(); err != nil {
				fail(err)
			}
		}()
	}
	suite := experiments.NewSuiteContext(ctx, opts)
	name := strings.ToLower(*exp)

	// Points doubles as the -exp validator: a typo'd name fails here with
	// the list of valid experiments, in the serial path too — it must never
	// silently prewarm (and render) nothing.
	points, err := suite.Points([]string{name})
	if err != nil {
		fail(err)
	}

	// With -parallel N the suite's simulation points run concurrently up
	// front, filling the memoization cache; the figures below then render
	// serially from the cache, so the printed output is byte-identical to a
	// serial run. The fan-out is fail-fast: the first failure (or SIGINT)
	// cancels the sibling simulations.
	if *parallel > 1 {
		if err := suite.PrewarmContext(ctx, points, *parallel); err != nil {
			fail(err)
		}
	}

	if err := run(suite, cfg, name, *csvDir); err != nil {
		fail(err)
	}
}

// metricsSink persists one telemetry file (and/or one trace file) per
// freshly simulated experiment point. Under -parallel the suite calls
// OnMetrics concurrently, so writes are serialised by a mutex; the first
// write error is surfaced once the suite finishes rather than aborting the
// sweep mid-flight.
type metricsSink struct {
	metricsDir, format, traceDir string

	mu       sync.Mutex
	firstErr error
}

func newMetricsSink(metricsDir, format, traceDir string) (*metricsSink, error) {
	for _, dir := range []string{metricsDir, traceDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
	}
	return &metricsSink{metricsDir: metricsDir, format: format, traceDir: traceDir}, nil
}

// write is the experiments.Options.OnMetrics hook.
func (s *metricsSink) write(arch gscalar.Arch, abbr string, m *gscalar.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	point := arch.String() + "_" + abbr
	record := func(err error) {
		if err != nil && s.firstErr == nil {
			s.firstErr = err
		}
	}
	if s.metricsDir != "" {
		record(writeVia(filepath.Join(s.metricsDir, point+"."+s.format), func(w io.Writer) error {
			if s.format == "csv" {
				return m.WriteCSV(w)
			}
			return m.WriteJSON(w)
		}))
	}
	if s.traceDir != "" {
		record(writeVia(filepath.Join(s.traceDir, point+".trace.json"), m.WriteTrace))
	}
}

// err returns the first write failure, if any.
func (s *metricsSink) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// writeVia streams emit into path atomically (temp file + rename, via
// store.AtomicWrite): a per-point telemetry export that fails mid-render
// leaves no truncated file behind.
func writeVia(path string, emit func(io.Writer) error) error {
	return store.AtomicWrite(path, emit)
}

// writeCSV writes one CSV artifact if -csv was given.
func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func run(s *experiments.Suite, cfg gscalar.Config, exp, csvDir string) error {
	wants := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if wants("table1") {
		fmt.Println(experiments.FormatTable1(cfg))
		ran = true
	}
	if wants("table2") {
		fmt.Println(experiments.FormatTable2())
		ran = true
	}
	if wants("table3") {
		fmt.Println(experiments.FormatTable3())
		ran = true
	}
	if wants("fig1") {
		rows, err := s.Fig1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig1(rows))
		if err := writeCSV(csvDir, "fig1.csv", experiments.Fig1CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig8") {
		rows, err := s.Fig8()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig8(rows))
		if err := writeCSV(csvDir, "fig8.csv", experiments.Fig8CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig9") {
		rows, err := s.Fig9()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig9(rows))
		if err := writeCSV(csvDir, "fig9.csv", experiments.Fig9CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig10") {
		rows, err := s.Fig10()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig10(rows))
		if err := writeCSV(csvDir, "fig10.csv", experiments.Fig10CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig11") {
		rows, err := s.Fig11()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig11(rows))
		if err := writeCSV(csvDir, "fig11.csv", experiments.Fig11CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig12") {
		rows, err := s.Fig12()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig12(rows))
		if err := writeCSV(csvDir, "fig12.csv", experiments.Fig12CSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("moves") {
		rows, err := s.MoveOverhead()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatMoveOverhead(rows))
		if err := writeCSV(csvDir, "moves.csv", experiments.MovesCSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("compiler") {
		rows, err := s.CompilerScalar()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCompilerScalar(rows))
		ran = true
	}
	if wants("half") {
		rows, err := s.HalfAblation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatHalfAblation(rows))
		ran = true
	}
	if wants("width") {
		rows, err := s.WidthSweep([]int{8, 16, 24, 32})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatWidthSweep(rows))
		if err := writeCSV(csvDir, "width.csv", experiments.WidthCSV(rows)); err != nil {
			return err
		}
		ran = true
	}
	if wants("sched") {
		rows, err := s.SchedAblation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSched(rows))
		ran = true
	}
	if wants("scalarbank") {
		rows, err := s.ScalarBankAblation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScalarBank(rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
