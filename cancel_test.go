package gscalar_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"gscalar"
)

// cancelledRun executes workload abbr with an observer that cancels the
// context at the first lifecycle checkpoint at or past cancelAt simulated
// cycles, returning the partial result.
func cancelledRun(t *testing.T, workers int, abbr string, cancelAt uint64) gscalar.Result {
	t.Helper()
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	s, err := gscalar.NewSession(cfg, gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.ObserverStride = 64
	s.Observer = func(p gscalar.Progress) {
		if p.Cycle >= cancelAt {
			cancel()
		}
	}
	res, err := s.RunWorkload(ctx, abbr, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
	}
	if !strings.Contains(err.Error(), abbr) || !strings.Contains(err.Error(), "gscalar") {
		t.Errorf("workers=%d: error %q lacks workload/architecture context", workers, err)
	}
	return res
}

// TestCancellationDeterminism cancels the same run at the same simulated
// cycle twice — under both the serial loop (Workers=0) and the phased loop
// (Workers=8) — and requires bit-identical partial results. The cut point is
// defined by an observer in simulated time, so it does not depend on host
// timing.
func TestCancellationDeterminism(t *testing.T) {
	const abbr = "HS"
	for _, workers := range []int{0, 8} {
		cfg := gscalar.DefaultConfig()
		cfg.Workers = workers
		full, err := runWorkloadVia(t, cfg, gscalar.GScalar, abbr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if full.Cycles < 256 {
			t.Fatalf("%s too short to cancel mid-run (%d cycles)", abbr, full.Cycles)
		}
		cancelAt := full.Cycles / 2

		a := cancelledRun(t, workers, abbr, cancelAt)
		b := cancelledRun(t, workers, abbr, cancelAt)
		if a.Cycles == 0 || a.Cycles >= full.Cycles {
			t.Errorf("workers=%d: partial run spans %d cycles, full run %d", workers, a.Cycles, full.Cycles)
		}
		if a.PowerW <= 0 || a.EnergyJ <= 0 {
			t.Errorf("workers=%d: partial power not finalized: %f W, %f J", workers, a.PowerW, a.EnergyJ)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: cancelling at cycle %d twice gave different partial results:\n%+v\nvs\n%+v",
				workers, cancelAt, a, b)
		}
	}
}

// TestDeadlinePropagates checks that a context deadline aborts a run with
// DeadlineExceeded visible through the session's error wrapping.
func TestDeadlinePropagates(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s, err := gscalar.NewSession(gscalar.DefaultConfig(), gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(ctx, "HS", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Cycles != 0 {
		t.Errorf("expired-deadline run simulated %d cycles", res.Cycles)
	}
}

// TestCancelledSweep checks that cancellation propagates out of the
// warp-size sweep with its point context attached.
func TestCancelledSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := gscalar.NewSession(gscalar.DefaultConfig(), gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.WarpSizeSweep(ctx, "HS", []int{32, 64}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "warp-size sweep") {
		t.Errorf("error %q lacks sweep context", err)
	}
}
