package gscalar_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"gscalar"
	"gscalar/internal/trace"
)

// captureWorkload runs abbr under arch with trace capture enabled and
// returns the capture run's Result plus the trace path.
func captureWorkload(t *testing.T, arch gscalar.Arch, abbr string, scale int) (gscalar.Result, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), abbr+".gstr")
	s, err := gscalar.NewSession(gscalar.DefaultConfig(), arch)
	if err != nil {
		t.Fatal(err)
	}
	s.Capture.Path = path
	res, err := s.RunWorkload(context.Background(), abbr, scale)
	if err != nil {
		t.Fatalf("capture %s on %s: %v", abbr, arch, err)
	}
	return res, path
}

// resultJSON marshals a Result with execution metadata stripped, so runs
// from different chip loops compare on what they simulated.
func resultJSON(t *testing.T, r gscalar.Result) string {
	t.Helper()
	b, err := json.Marshal(stripExecMeta(r))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricsJSON renders a telemetry blob with the identity fields that
// legitimately differ between a live and a replayed run blanked: the
// workload label (abbr vs trace:<path>) and the execution metadata. All
// counters and the full time series must still match byte for byte.
func metricsJSON(t *testing.T, m *gscalar.Metrics) string {
	t.Helper()
	if m == nil {
		t.Fatal("metrics: telemetry was enabled but Metrics() is nil")
	}
	mm := *m
	mm.Workload = ""
	mm.ExecMode = ""
	mm.Workers = 0
	b, err := mm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runSpec simulates one workload spec with telemetry on, under the given
// worker count, returning the Result and the telemetry blob.
func runSpec(t *testing.T, arch gscalar.Arch, spec string, scale, workers int) (gscalar.Result, *gscalar.Metrics) {
	t.Helper()
	cfg := gscalar.DefaultConfig()
	cfg.Workers = workers
	s, err := gscalar.NewSession(cfg, arch)
	if err != nil {
		t.Fatal(err)
	}
	s.Telemetry = gscalar.TelemetryOptions{Enabled: true}
	res, err := s.RunWorkload(context.Background(), spec, scale)
	if err != nil {
		t.Fatalf("%s on %s (workers=%d): %v", spec, arch, workers, err)
	}
	return res, s.Metrics()
}

// TestTraceCaptureReplay is the tracedet gate: every builtin workload is
// captured once, then replayed from the trace file — under both
// architectures and under both the serial and the phased chip loop — and
// each replay must be byte-identical (Result and telemetry, execution
// metadata stripped) to the corresponding live run. It also asserts the
// capture hook itself perturbs nothing: the capturing run's Result equals
// the plain live run's.
func TestTraceCaptureReplay(t *testing.T) {
	workloadSet := gscalar.Workloads()
	archs := []gscalar.Arch{gscalar.Baseline, gscalar.GScalar}
	if testing.Short() {
		workloadSet = []string{"HS", "MQ", "SAD"}
		archs = archs[1:]
	}
	for _, abbr := range workloadSet {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			capRes, path := captureWorkload(t, gscalar.GScalar, abbr, 1)
			spec := "trace:" + path
			for _, arch := range archs {
				liveRes, liveMet := runSpec(t, arch, abbr, 1, 0)
				if arch == gscalar.GScalar {
					if got, want := resultJSON(t, capRes), resultJSON(t, liveRes); got != want {
						t.Errorf("%s/%s: capturing run differs from plain live run:\n%s\nvs\n%s", abbr, arch, got, want)
					}
				}

				repRes, repMet := runSpec(t, arch, spec, 1, 0)
				if got, want := resultJSON(t, repRes), resultJSON(t, liveRes); got != want {
					t.Errorf("%s/%s: serial replay differs from live:\n%s\nvs\n%s", abbr, arch, got, want)
				}
				if got, want := metricsJSON(t, repMet), metricsJSON(t, liveMet); got != want {
					t.Errorf("%s/%s: serial replay telemetry differs from live", abbr, arch)
				}

				// The phased loop compares like-for-like: its sharded power
				// meters legitimately sum floats in a different order than
				// the serial loop, so the oracle for a phased replay is a
				// phased live run.
				livePhased, _ := runSpec(t, arch, abbr, 1, 4)
				phasedRes, _ := runSpec(t, arch, spec, 1, 4)
				if phasedRes.ExecMode != "phased" {
					t.Errorf("%s/%s: workers=4 replay ran %q, want phased", abbr, arch, phasedRes.ExecMode)
				}
				if got, want := resultJSON(t, phasedRes), resultJSON(t, livePhased); got != want {
					t.Errorf("%s/%s: phased replay differs from phased live:\n%s\nvs\n%s", abbr, arch, got, want)
				}
				if phasedRes.WarpInsts != liveRes.WarpInsts || phasedRes.Cycles != liveRes.Cycles {
					t.Errorf("%s/%s: phased replay cycles/insts (%d, %d) differ from serial live (%d, %d)",
						abbr, arch, phasedRes.Cycles, phasedRes.WarpInsts, liveRes.Cycles, liveRes.WarpInsts)
				}
			}
		})
	}
}

// TestTraceContentIntegrity checks the trace file itself: it decodes, its
// static sections materialise, the record stream decodes fully, and the
// recorded instruction count equals the capture run's retired-warp-
// instruction total.
func TestTraceContentIntegrity(t *testing.T) {
	capRes, path := captureWorkload(t, gscalar.GScalar, "HS", 1)
	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Workload != "HS" || tr.Meta.WarpSize != gscalar.DefaultConfig().WarpSize {
		t.Errorf("meta = %+v", tr.Meta)
	}
	if tr.Meta.ConfigHash != gscalar.DefaultConfig().Hash() {
		t.Errorf("meta config hash %q, want the capturing config's", tr.Meta.ConfigHash)
	}
	if len(tr.Hash) != 64 {
		t.Errorf("content hash %q, want sha256 hex", tr.Hash)
	}
	if _, err := tr.Program(); err != nil {
		t.Fatalf("program: %v", err)
	}
	recs, err := tr.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if uint64(len(recs)) != capRes.WarpInsts {
		t.Errorf("recorded %d warp instructions, capture run retired %d", len(recs), capRes.WarpInsts)
	}
	sawMem, sawDst := false, false
	for _, r := range recs {
		if r.IsMem && len(r.Addrs) > 0 {
			sawMem = true
		}
		if r.DstReg >= 0 {
			sawDst = true
		}
	}
	if !sawMem || !sawDst {
		t.Errorf("record stream lacks expected variety: sawMem=%v sawDst=%v", sawMem, sawDst)
	}
}

// TestTraceCaptureRejectsParallelLoops pins the capture precondition: the
// recorded order is only deterministic under the serial loop.
func TestTraceCaptureRejectsParallelLoops(t *testing.T) {
	for _, mod := range []func(*gscalar.Config){
		func(c *gscalar.Config) { c.Workers = 4 },
		func(c *gscalar.Config) { c.EpochCycles = 64 },
	} {
		cfg := gscalar.DefaultConfig()
		mod(&cfg)
		s, err := gscalar.NewSession(cfg, gscalar.GScalar)
		if err != nil {
			t.Fatal(err)
		}
		s.Capture.Path = filepath.Join(t.TempDir(), "x.gstr")
		if _, err := s.RunWorkload(context.Background(), "HS", 1); err == nil {
			t.Errorf("capture with Workers=%d EpochCycles=%d succeeded, want error", cfg.Workers, cfg.EpochCycles)
		}
	}
}

// TestUnknownWorkloadSpec pins the error contract: an unknown spec names
// the valid workloads, and a trace spec pointing at a missing or truncated
// file surfaces the trace package's typed errors.
func TestUnknownWorkloadSpec(t *testing.T) {
	s, err := gscalar.NewSession(gscalar.DefaultConfig(), gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunWorkload(context.Background(), "NOPE", 1)
	var unk *gscalar.UnknownWorkloadError
	if !errors.As(err, &unk) {
		t.Fatalf("unknown workload error = %v, want *UnknownWorkloadError", err)
	}
	for _, want := range []string{"NOPE", "HS", "trace:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	if _, err := s.RunWorkload(context.Background(), "trace:"+filepath.Join(t.TempDir(), "missing.gstr"), 1); err == nil {
		t.Error("missing trace file: want error")
	}

	if _, err := gscalar.CanonicalWorkloadKey("NOPE"); !errors.As(err, &unk) {
		t.Errorf("CanonicalWorkloadKey unknown spec error = %v", err)
	}
	key, err := gscalar.CanonicalWorkloadKey("HS")
	if err != nil || key != "HS" {
		t.Errorf("CanonicalWorkloadKey(HS) = %q, %v", key, err)
	}
}

// TestTraceContentKeyStable pins the content-addressing property: capturing
// the same run twice produces byte-identical files, hence equal canonical
// keys, regardless of path.
func TestTraceContentKeyStable(t *testing.T) {
	_, p1 := captureWorkload(t, gscalar.GScalar, "MQ", 1)
	_, p2 := captureWorkload(t, gscalar.GScalar, "MQ", 1)
	k1, err := gscalar.CanonicalWorkloadKey("trace:" + p1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := gscalar.CanonicalWorkloadKey("trace:" + p2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same capture, different keys:\n%s\n%s", k1, k2)
	}
	if len(k1) != len("trace:")+64 {
		t.Errorf("key %q, want trace:<sha256hex>", k1)
	}
}
