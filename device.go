package gscalar

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"gscalar/internal/asm"
	"gscalar/internal/kernel"
	"gscalar/internal/profile"
	"gscalar/internal/warp"
	"gscalar/internal/workloads"
)

// Program is an assembled .gasm kernel.
type Program struct {
	p *kernel.Program
}

// Assemble parses .gasm source into a Program. The grammar is documented in
// the README ("Writing kernels").
func Assemble(src string) (*Program, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Name returns the kernel name (.kernel directive).
func (p *Program) Name() string { return p.p.Name }

// Len returns the number of static instructions.
func (p *Program) Len() int { return p.p.Len() }

// Disassemble renders the program back to .gasm text with resolved
// reconvergence points.
func (p *Program) Disassemble() string { return asm.Disassemble(p.p) }

// Launch describes a kernel launch: the grid of CTAs, CTA shape, shared
// memory per CTA, and up to 16 uniform 32-bit parameters ($0..$15).
type Launch struct {
	GridX, GridY   int
	BlockX, BlockY int
	SharedBytes    int
	Params         []uint32
}

// Memory is the simulated device global memory.
type Memory struct {
	m *kernel.Memory
}

// NewMemory creates an empty device memory with a bump allocator.
func NewMemory() *Memory { return &Memory{m: kernel.NewMemory()} }

// AddrSpaceError is the typed panic value raised when an allocation or a
// bulk read/write would exceed the 32-bit device address space (it used to
// wrap around silently).
type AddrSpaceError = kernel.AddrSpaceError

// Alloc reserves n bytes and returns the device address. It panics with a
// *AddrSpaceError when the 32-bit address space is exhausted.
func (m *Memory) Alloc(n int) uint32 { return m.m.Alloc(n) }

// AllocU32 allocates and fills a word buffer.
func (m *Memory) AllocU32(vals []uint32) uint32 { return m.m.AllocU32(vals) }

// AllocF32 allocates and fills a float buffer.
func (m *Memory) AllocF32(vals []float32) uint32 { return m.m.AllocF32(vals) }

// ReadU32 copies n words out of device memory.
func (m *Memory) ReadU32(addr uint32, n int) []uint32 { return m.m.ReadU32(addr, n) }

// ReadF32 copies n floats out of device memory.
func (m *Memory) ReadF32(addr uint32, n int) []float32 { return m.m.ReadF32(addr, n) }

// WriteU32 copies words into device memory.
func (m *Memory) WriteU32(addr uint32, vals []uint32) { m.m.WriteU32(addr, vals) }

// WriteF32 copies floats into device memory.
func (m *Memory) WriteF32(addr uint32, vals []float32) { m.m.WriteF32(addr, vals) }

// RunFunctional executes a launch on the untimed golden-model interpreter
// (useful to validate kernels before timed runs).
func RunFunctional(prog *Program, launch Launch, mem *Memory) error {
	lc, err := launch.toKernel()
	if err != nil {
		return err
	}
	_, err = warp.FuncRun(prog.p, lc, mem.m, 32, 0)
	return err
}

// KernelLaunch pairs a program with its launch configuration, for
// multi-kernel sequences.
type KernelLaunch struct {
	Prog   *Program
	Launch Launch
}

// ProfileKernel runs the launch on the functional profiler and returns an
// annotated listing: per-instruction execution counts, average active
// lanes, divergence and value-uniformity fractions, and the compile-time
// analysis verdict.
func ProfileKernel(prog *Program, launch Launch, mem *Memory) (string, error) {
	lc, err := launch.toKernel()
	if err != nil {
		return "", err
	}
	p, err := profile.Run(prog.p, lc, mem.m, 0)
	if err != nil {
		return "", err
	}
	return p.Listing(), nil
}

// TraceKernel writes an instruction-level execution trace of the launch to
// w (functional interpreter; up to maxEvents lines).
func TraceKernel(w io.Writer, prog *Program, launch Launch, mem *Memory, maxEvents int) error {
	lc, err := launch.toKernel()
	if err != nil {
		return err
	}
	return profile.Trace(w, prog.p, lc, mem.m, profile.TraceOptions{
		MaxEvents: maxEvents, OnlyCTA: -1, OnlyWarp: -1,
	})
}

// Workloads returns the Table 2 benchmark abbreviations in table order.
func Workloads() []string { return workloads.Abbrs() }

// WorkloadInfo describes one Table 2 benchmark.
type WorkloadInfo struct {
	Abbr, Name, Suite, Desc string
}

// WorkloadByAbbr returns metadata for one benchmark.
func WorkloadByAbbr(abbr string) (WorkloadInfo, bool) {
	w, ok := workloads.ByAbbr(abbr)
	if !ok {
		return WorkloadInfo{}, false
	}
	return WorkloadInfo{Abbr: w.Abbr, Name: w.Name, Suite: w.Suite, Desc: w.Desc}, true
}

func errUnknownWorkload(abbr string) error {
	return &UnknownWorkloadError{Abbr: abbr}
}

// UnknownWorkloadError is returned for a workload spec that names neither a
// Table 2 benchmark nor a trace file nor a generated kernel.
type UnknownWorkloadError struct{ Abbr string }

func (e *UnknownWorkloadError) Error() string {
	return fmt.Sprintf("gscalar: unknown workload %q (valid: %s; or %s<path> to replay a captured trace; or %s<dials> for a synthetic kernel)",
		e.Abbr, strings.Join(workloads.Abbrs(), " "), workloads.TracePrefix, workloads.GenPrefix)
}

// CanonicalWorkloadKey resolves a workload spec — a Table 2 abbreviation or
// "trace:<path>" — to its canonical cache identity: the abbreviation itself
// for builtins, "trace:" + the trace file's sha256 content hash for trace
// replays. Two specs with equal keys simulate identically, which is what
// lets the experiment cache and the sweep server's result store key
// trace-backed points on trace *content* rather than on a file path that
// may be moved, copied or overwritten.
func CanonicalWorkloadKey(spec string) (string, error) {
	src, err := workloads.Resolve(spec)
	if err != nil {
		var unk *workloads.UnknownError
		if errors.As(err, &unk) {
			return "", errUnknownWorkload(spec)
		}
		return "", fmt.Errorf("gscalar: workload %s: %w", spec, err)
	}
	return src.Key(), nil
}

// DescribeWorkload returns a one-line human description of a workload spec
// (builtin benchmark or trace replay).
func DescribeWorkload(spec string) (string, error) {
	src, err := workloads.Resolve(spec)
	if err != nil {
		var unk *workloads.UnknownError
		if errors.As(err, &unk) {
			return "", errUnknownWorkload(spec)
		}
		return "", fmt.Errorf("gscalar: workload %s: %w", spec, err)
	}
	return src.Describe(), nil
}
