module gscalar

go 1.22
