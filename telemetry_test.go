package gscalar_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"gscalar"
)

// metricsFixture builds a small hand-crafted Metrics value with a stable
// shape, so the exporter golden tests are independent of the simulator.
func metricsFixture() *gscalar.Metrics {
	return &gscalar.Metrics{
		Workload:   "HS",
		Arch:       "gscalar",
		ConfigHash: "deadbeef",
		ClockHz:    1e6, // 1 cycle = 1 µs, so trace timestamps are readable
		NumSMs:     2,
		Counters: []gscalar.CounterValue{
			{Name: "mem.dram_chan_tx", Instance: 0, Value: 7},
			{Name: "sm.warp_insts", Instance: 0, Value: 100},
			{Name: "sm.warp_insts", Instance: 1, Value: 50},
		},
		Series: gscalar.Series{
			SampleStride:     64,
			EnergyComponents: []string{"exec", "rf"},
			RFAccessClasses:  []string{"scalar", "none"},
			Samples: []gscalar.Sample{
				{Cycle: 64, WarpInsts: 60, IPC: 0.9375, LiveSMs: 2,
					PerSM:    []gscalar.SMSample{{Retired: 40, LiveWarps: 3}, {Retired: 20, LiveWarps: 2}},
					EnergyPJ: []float64{10, 5}, RFReads: []uint64{30, 6}},
				{Cycle: 128, WarpInsts: 150, IPC: 1.171875, LiveSMs: 1,
					PerSM:    []gscalar.SMSample{{Retired: 100, LiveWarps: 1}, {Retired: 50, LiveWarps: 0}},
					EnergyPJ: []float64{22, 11}, RFReads: []uint64{70, 12}},
			},
		},
	}
}

// TestMetricsWriteJSONGolden pins the JSON export shape: the field names are
// a stable machine-readable contract.
func TestMetricsWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := metricsFixture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, key := range []string{"workload", "arch", "config_hash", "clock_hz", "num_sms", "counters", "series"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON export lacks top-level key %q", key)
		}
	}
	series, ok := decoded["series"].(map[string]any)
	if !ok {
		t.Fatal("series is not an object")
	}
	samples, ok := series["samples"].([]any)
	if !ok || len(samples) != 2 {
		t.Fatalf("series.samples = %v, want 2 entries", series["samples"])
	}
	first, ok := samples[0].(map[string]any)
	if !ok {
		t.Fatal("sample is not an object")
	}
	for _, key := range []string{"cycle", "warp_insts", "ipc", "live_sms", "per_sm", "energy_pj", "rf_reads"} {
		if _, ok := first[key]; !ok {
			t.Errorf("sample lacks key %q", key)
		}
	}

	// A set exports under a "runs" wrapper.
	buf.Reset()
	if err := (gscalar.MetricsSet{metricsFixture(), metricsFixture()}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var set struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &set); err != nil || len(set.Runs) != 2 {
		t.Fatalf("set export: err=%v runs=%d, want 2", err, len(set.Runs))
	}
}

// TestMetricsWriteCSVGolden pins the CSV export byte-for-byte.
func TestMetricsWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := metricsFixture().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"workload,arch,name,instance,value",
		"HS,gscalar,mem.dram_chan_tx,0,7",
		"HS,gscalar,sm.warp_insts,0,100",
		"HS,gscalar,sm.warp_insts,1,50",
		"",
		"workload,arch,cycle,warp_insts,ipc,live_sms,energy_exec_pj,energy_rf_pj,rf_reads_scalar,rf_reads_none,sm0_retired,sm0_live_warps,sm1_retired,sm1_live_warps",
		"HS,gscalar,64,60,0.9375,2,10,5,30,6,40,3,20,2",
		"HS,gscalar,128,150,1.171875,1,22,11,70,12,100,1,50,0",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("CSV export:\n%s\nwant:\n%s", got, want)
	}

	// Heterogeneous sets must be rejected rather than silently misaligned.
	other := metricsFixture()
	other.NumSMs = 3
	err := gscalar.MetricsSet{metricsFixture(), other}.WriteCSV(&buf)
	if err == nil || !strings.Contains(err.Error(), "homogeneous") {
		t.Errorf("heterogeneous CSV export: err = %v, want homogeneity error", err)
	}
}

// TestMetricsWriteTraceGolden checks the Chrome trace-event export: valid
// JSON with the expected event mix and microsecond timestamps.
func TestMetricsWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := metricsFixture().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	counts := map[string]int{}
	var activeInsts float64
	for _, ev := range trace.TraceEvents {
		counts[ev.Ph+"/"+ev.Name]++
		if ev.Ph == "X" && ev.Name == "active" {
			activeInsts += ev.Args["insts"].(float64)
		}
	}
	// 1 process_name + 2 thread_name metadata, one active interval per SM
	// (both SMs commit in both samples, so the intervals merge), 2 samples
	// of each counter track.
	for key, want := range map[string]int{
		"M/process_name": 1,
		"M/thread_name":  2,
		"X/active":       2,
		"C/ipc":          2,
		"C/live_sms":     2,
	} {
		if counts[key] != want {
			t.Errorf("event count %s = %d, want %d", key, counts[key], want)
		}
	}
	// Every retired instruction of the fixture shows up in exactly one
	// active interval: 100 + 50 across both SMs.
	if activeInsts != 150 {
		t.Errorf("active intervals carry %v insts, want 150", activeInsts)
	}
}

// TestTelemetrySmoke runs a real workload with telemetry on and checks the
// collected metrics are consistent with the Result.
func TestTelemetrySmoke(t *testing.T) {
	cfg := gscalar.DefaultConfig()
	s, err := gscalar.NewSession(cfg, gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	s.Telemetry = gscalar.TelemetryOptions{Enabled: true, SampleStride: 64}
	res, err := s.RunWorkload(context.Background(), "HS", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m == nil {
		t.Fatal("Metrics() = nil after a telemetry-enabled run")
	}
	if m.Workload != "HS" || m.Arch != "gscalar" || m.ConfigHash != s.Config().Hash() {
		t.Errorf("metrics identity = (%q, %q, %q), want (HS, gscalar, %q)",
			m.Workload, m.Arch, m.ConfigHash, s.Config().Hash())
	}
	if m.NumSMs != cfg.NumSMs {
		t.Errorf("NumSMs = %d, want %d", m.NumSMs, cfg.NumSMs)
	}
	if m.Series.SampleStride != 64 {
		t.Errorf("SampleStride = %d, want 64", m.Series.SampleStride)
	}

	// The per-SM warp_insts counters must sum exactly to the Result's total.
	var warpInsts float64
	var sawRF, sawMem, sawPower bool
	for _, c := range m.Counters {
		switch {
		case c.Name == "sm.warp_insts":
			warpInsts += c.Value
		case strings.HasPrefix(c.Name, "rf."):
			sawRF = true
		case strings.HasPrefix(c.Name, "mem."):
			sawMem = true
		case strings.HasPrefix(c.Name, "power."):
			sawPower = true
		}
	}
	if warpInsts != float64(res.WarpInsts) {
		t.Errorf("sum(sm.warp_insts) = %v, Result.WarpInsts = %d", warpInsts, res.WarpInsts)
	}
	if !sawRF || !sawMem || !sawPower {
		t.Errorf("counter families missing: rf=%v mem=%v power=%v", sawRF, sawMem, sawPower)
	}

	// The series ends exactly at the run's final cycle, and the final sample
	// accounts for every committed instruction.
	n := len(m.Series.Samples)
	if n == 0 {
		t.Fatal("empty series despite 64-cycle stride")
	}
	last := m.Series.Samples[n-1]
	if last.Cycle != res.Cycles {
		t.Errorf("last sample at cycle %d, run ended at %d", last.Cycle, res.Cycles)
	}
	if last.WarpInsts != res.WarpInsts {
		t.Errorf("last sample WarpInsts = %d, Result %d", last.WarpInsts, res.WarpInsts)
	}
	for i := 1; i < n; i++ {
		if m.Series.Samples[i].Cycle <= m.Series.Samples[i-1].Cycle {
			t.Fatalf("series cycles not strictly increasing at %d: %d then %d",
				i, m.Series.Samples[i-1].Cycle, m.Series.Samples[i].Cycle)
		}
	}

	// All three exporters must succeed on real data.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Errorf("WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteJSON produced invalid JSON")
	}
	buf.Reset()
	if err := m.WriteCSV(&buf); err != nil {
		t.Errorf("WriteCSV: %v", err)
	}
	buf.Reset()
	if err := m.WriteTrace(&buf); err != nil {
		t.Errorf("WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteTrace produced invalid JSON")
	}
}

// TestTelemetryDoesNotPerturbResults is the bit-identity acceptance bar:
// enabling telemetry must change neither the Result (exact floating point
// included) nor the config hash, under both the serial and the phased loop.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	for _, workers := range []int{0, 8} {
		cfg := gscalar.DefaultConfig()
		cfg.Workers = workers
		plain, err := runWorkloadVia(t, cfg, gscalar.GScalar, "HS", 1)
		if err != nil {
			t.Fatal(err)
		}

		s, err := gscalar.NewSession(cfg, gscalar.GScalar)
		if err != nil {
			t.Fatal(err)
		}
		s.Telemetry = gscalar.TelemetryOptions{Enabled: true, SampleStride: 128}
		instrumented, err := s.RunWorkload(context.Background(), "HS", 1)
		if err != nil {
			t.Fatal(err)
		}

		assertIdentical(t, "HS", gscalar.GScalar, plain, instrumented)
		if s.Config().Hash() != cfg.Hash() {
			t.Errorf("workers=%d: telemetry changed the config hash", workers)
		}
	}
}

// TestTelemetrySequence checks sequence runs: the cycle axis stays global
// across launches and counters fold across both kernels.
func TestTelemetrySequence(t *testing.T) {
	prog, err := gscalar.Assemble(`
.kernel double
	mov  r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl  r3, r2, 2
	iadd r4, $0, r3
	ldg  r5, [r4]
	iadd r5, r5, r5
	stg  [r4], r5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	cfg := gscalar.DefaultConfig()
	cfg.NumSMs = 2
	mem := gscalar.NewMemory()
	base := mem.AllocU32(make([]uint32, n))
	launch := gscalar.Launch{GridX: n / 128, BlockX: 128, Params: []uint32{base}}
	seq := []gscalar.KernelLaunch{{Prog: prog, Launch: launch}, {Prog: prog, Launch: launch}}

	s, err := gscalar.NewSession(cfg, gscalar.GScalar)
	if err != nil {
		t.Fatal(err)
	}
	s.Telemetry = gscalar.TelemetryOptions{Enabled: true, SampleStride: 16}
	res, err := s.RunSequence(context.Background(), mem, seq)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m == nil {
		t.Fatal("Metrics() = nil after a telemetry-enabled sequence")
	}
	samples := m.Series.Samples
	if len(samples) < 2 {
		t.Fatalf("only %d samples across a two-kernel sequence", len(samples))
	}
	if last := samples[len(samples)-1]; last.Cycle != res.Cycles {
		t.Errorf("last sample at cycle %d, sequence ended at %d", last.Cycle, res.Cycles)
	}
	var warpInsts float64
	for _, c := range m.Counters {
		if c.Name == "sm.warp_insts" {
			warpInsts += c.Value
		}
	}
	if warpInsts != float64(res.WarpInsts) {
		t.Errorf("sum(sm.warp_insts) = %v over the sequence, Result.WarpInsts = %d",
			warpInsts, res.WarpInsts)
	}
}
