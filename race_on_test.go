//go:build race

package gscalar_test

// raceMultiplier scales perf-smoke ceilings: the race detector slows
// simulation roughly an order of magnitude.
const raceMultiplier = 20
