# Verification targets. `make check` is the tier-1 gate (see ROADMAP.md):
# gofmt cleanliness, build + full tests, vet, explicit short-mode passes
# over the idle-skip determinism suite and the config-validation /
# cancellation-determinism suites (fast, and the properties the event-driven
# core rework and the run-session lifecycle depend on), and a race-detector
# pass over the packages that run goroutines (the phased parallel simulation
# loop and the experiment prewarm fan-out). The race pass uses -short
# because the detector slows simulation ~10x; the short subset still drives
# the full phased loop.

GO ?= go

.PHONY: check build test vet race skipdet valcancel relaxdet tracedet telemetry gendet perfsmoke serve fmt fmtcheck bench bench-parallel bench-serve profile

check: fmtcheck build test vet skipdet valcancel relaxdet tracedet telemetry gendet perfsmoke serve race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

skipdet:
	$(GO) test -short -run 'TestIdleSkipDeterminism' .

valcancel:
	$(GO) test -run 'TestConfig|TestValidate|TestNormalize|TestNewSession|TestCancel|TestDeadline' . ./internal/gpu

# The -short root pass also drives the relaxed epoch loop (accuracy-envelope
# subset + determinism), and internal/gpu's relaxed worker-invariance and
# startup-order tests all run in short mode, so the detector covers the
# epoch-parallel commit path.
race:
	$(GO) test -race -short . ./internal/gpu ./internal/experiments

# Relaxed-loop differential oracle: the full 17-workload x 2-architecture
# accuracy envelope against the serial loop plus the (Workers, EpochCycles)
# determinism contract — root-level over real workloads, internal/gpu-level
# for worker-startup-order and functional-correctness properties.
relaxdet:
	$(GO) test -run 'TestRelaxed|TestResolveWorkers' . ./internal/gpu

# Trace capture/replay gate: the internal/trace codec unit tests (round-trip,
# truncation/version/CRC rejection, unknown-section skip) plus the root-level
# capture→replay determinism suite — every builtin workload captured and
# replayed byte-identically (Result + telemetry) under serial and phased
# loops, content-hash key stability, and parallel-loop capture rejection.
# Runs the full 17-workload x 2-architecture sweep (~20 s).
tracedet:
	$(GO) test ./internal/trace
	$(GO) test -run 'TestTrace|TestUnknownWorkloadSpec' .

# Telemetry gate: the registry/recorder unit tests, the exporter goldens
# (JSON/CSV/Chrome-trace shape), and the telemetry-on-vs-off bit-identity
# check. Kept as its own target so exporter-format changes are easy to
# re-verify in isolation.
telemetry:
	$(GO) vet ./internal/telemetry
	$(GO) test ./internal/telemetry
	$(GO) test -run 'Telemetry|Metrics|ResultJSON' .

# Serving gate: the result store (atomic writes, index rebuild, singleflight)
# and the sweep-server HTTP handlers (submit/dedup/cancel/drain-resume),
# under the race detector — the store is shared by the server's worker pool
# and the experiment prewarm fan-out, so these paths must be detector-clean.
serve:
	$(GO) vet ./internal/store ./internal/serve ./cmd/gscalar-serve
	$(GO) test ./internal/store ./internal/serve
	$(GO) test -race -short ./internal/store ./internal/serve

# Regenerates BENCH_serve.json: gscalar-serve sweep throughput over the HTTP
# API, cold (every point simulates) vs warm (every point a store hit).
bench-serve:
	$(GO) test -bench ServeThroughput -benchtime 1x -run '^$$' .

# Regenerates the simulator-performance snapshots: BENCH_core.json
# (event-driven core loop: serial-noskip baseline vs skip vs skip+workers)
# and BENCH_parallel.json (serial vs phased-loop speedup at several worker
# counts).
bench:
	$(GO) test -bench 'ParallelSpeedup|CoreSpeedup' -benchtime 1x -run '^$$' .

# Regenerates BENCH_parallel.json only.
bench-parallel:
	$(GO) test -bench ParallelSpeedup -benchtime 1x -run '^$$' .

# Synthetic-generator gate: the gen-package unit tests (dial parsing and
# typed errors, canonicalization round-trip, schema sanity, byte-identical
# builds), the workload-spec grammar tests (ParseSpec + the FuzzParseSpec
# seed corpus), and the root-level calibration suite — dial accuracy over
# the ≥20-vector grid on both architectures, serial/phased agreement, and
# the GOMAXPROCS determinism gate. The race pass is scaled down to the
# cheap unit layers; the root race coverage comes from the `race` target's
# -short pass.
gendet:
	$(GO) test ./internal/gen ./internal/workloads
	$(GO) test -run 'TestGen' .
	$(GO) test -race -short ./internal/gen ./internal/workloads

# Perf smoke: fail fast when a workload blows a generous wall-clock ceiling
# (order-of-magnitude simulator regressions, not benchmarking).
perfsmoke:
	$(GO) test -short -run 'TestPerfSmoke' .

# End-to-end CPU/heap profiling via internal/hostprof: run the LBM stressor
# under -cpuprofile/-memprofile and print the top-10 hot functions of each.
PROFILE_BENCH ?= LBM
profile:
	$(GO) build -o gscalar-sim.prof.bin ./cmd/gscalar-sim
	./gscalar-sim.prof.bin -workload $(PROFILE_BENCH) \
		-cpuprofile $(PROFILE_BENCH).cpu.pprof -memprofile $(PROFILE_BENCH).mem.pprof
	$(GO) tool pprof -top -nodecount=10 gscalar-sim.prof.bin $(PROFILE_BENCH).cpu.pprof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space \
		gscalar-sim.prof.bin $(PROFILE_BENCH).mem.pprof
