# Verification targets. `make check` is the tier-1 gate (see ROADMAP.md):
# build + full tests, vet, an explicit short-mode pass over the idle-skip
# determinism suite (fast, and the property the event-driven core rework
# depends on), and a race-detector pass over the packages that run
# goroutines (the phased parallel simulation loop and the experiment
# prewarm fan-out). The race pass uses -short because the detector slows
# simulation ~10x; the short subset still drives the full phased loop.

GO ?= go

.PHONY: check build test vet race skipdet bench bench-parallel

check: build test vet skipdet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

skipdet:
	$(GO) test -short -run 'TestIdleSkipDeterminism' .

race:
	$(GO) test -race -short . ./internal/gpu ./internal/experiments

# Regenerates the simulator-performance snapshots: BENCH_core.json
# (event-driven core loop: serial-noskip baseline vs skip vs skip+workers)
# and BENCH_parallel.json (serial vs phased-loop speedup at several worker
# counts).
bench:
	$(GO) test -bench 'ParallelSpeedup|CoreSpeedup' -benchtime 1x -run '^$$' .

# Regenerates BENCH_parallel.json only.
bench-parallel:
	$(GO) test -bench ParallelSpeedup -benchtime 1x -run '^$$' .
