# Verification targets. `make check` is the tier-1 gate (see ROADMAP.md):
# build + full tests, vet, and a race-detector pass over the packages that
# run goroutines (the phased parallel simulation loop and the experiment
# prewarm fan-out). The race pass uses -short because the detector slows
# simulation ~10x; the short subset still drives the full phased loop.

GO ?= go

.PHONY: check build test vet race bench-parallel

check: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short . ./internal/gpu ./internal/experiments

# Regenerates BENCH_parallel.json (serial vs phased-loop speedup snapshot).
bench-parallel:
	$(GO) test -bench ParallelSpeedup -benchtime 1x -run '^$$' .
