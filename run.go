package gscalar

// WarpSizeSweepResult is one point of the Figure 10 warp-size sweep.
type WarpSizeSweepResult struct {
	WarpSize  int
	HalfFrac  float64 // instructions eligible only at the 16-thread granularity
	TotalFrac float64 // all scalar-eligible instructions
}
