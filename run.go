package gscalar

import (
	"gscalar/internal/gpu"
	"gscalar/internal/workloads"
)

// gpuRun executes a built workload instance on the timed simulator.
func gpuRun(cfg Config, arch Arch, inst *workloads.Instance) (Result, error) {
	r, err := gpu.Run(cfg.toGPU(), arch.model(), inst.Prog, inst.Launch, inst.Mem)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(r), nil
}

// WarpSizeSweepResult is one point of the Figure 10 warp-size sweep.
type WarpSizeSweepResult struct {
	WarpSize  int
	HalfFrac  float64 // instructions eligible only at the 16-thread granularity
	TotalFrac float64 // all scalar-eligible instructions
}

// RunWarpSizeSweep reproduces Figure 10: the fraction of instructions
// eligible for 16-thread-granularity ("half-scalar"; "quarter-scalar" at
// warp size 64) scalar execution, for each warp size. The same workload is
// rebuilt per point so thread counts stay constant while warps widen.
func RunWarpSizeSweep(cfg Config, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	w, ok := workloads.ByAbbr(abbr)
	if !ok {
		return nil, errUnknownWorkload(abbr)
	}
	if scale < 1 {
		scale = 1
	}
	out := make([]WarpSizeSweepResult, 0, len(warpSizes))
	for _, ws := range warpSizes {
		inst, err := w.Build(scale)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.WarpSize = ws
		// Keep resident-thread capacity constant as warps widen.
		c.MaxWarpsPerSM = DefaultConfig().MaxWarpsPerSM * DefaultConfig().WarpSize / ws
		r, err := gpuRun(c, GScalar, inst)
		if err != nil {
			return nil, err
		}
		out = append(out, WarpSizeSweepResult{
			WarpSize:  ws,
			HalfFrac:  r.Eligibility.Half,
			TotalFrac: r.Eligibility.Total(),
		})
	}
	return out, nil
}
