package gscalar

import (
	"context"
	"fmt"

	"gscalar/internal/workloads"
)

// WarpSizeSweepResult is one point of the Figure 10 warp-size sweep.
type WarpSizeSweepResult struct {
	WarpSize  int
	HalfFrac  float64 // instructions eligible only at the 16-thread granularity
	TotalFrac float64 // all scalar-eligible instructions
}

// RunWarpSizeSweep reproduces Figure 10 with a background context; see
// RunWarpSizeSweepContext.
func RunWarpSizeSweep(cfg Config, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	return RunWarpSizeSweepContext(context.Background(), cfg, abbr, warpSizes, scale)
}

// RunWarpSizeSweepContext reproduces Figure 10: the fraction of instructions
// eligible for 16-thread-granularity ("half-scalar"; "quarter-scalar" at
// warp size 64) scalar execution, for each warp size. The same workload is
// rebuilt per point so thread counts stay constant while warps widen.
// Cancelling ctx aborts the sweep at the in-flight point's next lifecycle
// checkpoint.
func RunWarpSizeSweepContext(ctx context.Context, cfg Config, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	w, ok := workloads.ByAbbr(abbr)
	if !ok {
		return nil, errUnknownWorkload(abbr)
	}
	if scale < 1 {
		scale = 1
	}
	out := make([]WarpSizeSweepResult, 0, len(warpSizes))
	for _, ws := range warpSizes {
		inst, err := w.Build(scale)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Normalize()
		c.WarpSize = ws
		// Keep resident-thread capacity constant as warps widen.
		c.MaxWarpsPerSM = DefaultConfig().MaxWarpsPerSM * DefaultConfig().WarpSize / ws
		s, err := NewSession(c, GScalar)
		if err != nil {
			return nil, fmt.Errorf("gscalar: warp-size sweep at %d: %w", ws, err)
		}
		r, err := s.runInstance(ctx, abbr, inst)
		if err != nil {
			return nil, fmt.Errorf("gscalar: warp-size sweep at %d: %w", ws, err)
		}
		out = append(out, WarpSizeSweepResult{
			WarpSize:  ws,
			HalfFrac:  r.Eligibility.Half,
			TotalFrac: r.Eligibility.Total(),
		})
	}
	return out, nil
}
