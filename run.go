package gscalar

import "context"

// WarpSizeSweepResult is one point of the Figure 10 warp-size sweep.
type WarpSizeSweepResult struct {
	WarpSize  int
	HalfFrac  float64 // instructions eligible only at the 16-thread granularity
	TotalFrac float64 // all scalar-eligible instructions
}

// RunWarpSizeSweep reproduces Figure 10 with a background context.
//
// Deprecated: construct a Session with NewSession(cfg, GScalar) and call
// Session.WarpSizeSweep, which adds cancellation, progress observation, and
// telemetry. This shim remains for compatibility.
func RunWarpSizeSweep(cfg Config, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	return RunWarpSizeSweepContext(context.Background(), cfg, abbr, warpSizes, scale)
}

// RunWarpSizeSweepContext reproduces Figure 10 on the G-Scalar architecture.
//
// Deprecated: use Session.WarpSizeSweep, which this shim wraps (it pins the
// architecture to GScalar, as the original free function did).
func RunWarpSizeSweepContext(ctx context.Context, cfg Config, abbr string, warpSizes []int, scale int) ([]WarpSizeSweepResult, error) {
	s, err := NewSession(cfg, GScalar)
	if err != nil {
		return nil, err
	}
	return s.WarpSizeSweep(ctx, abbr, warpSizes, scale)
}
