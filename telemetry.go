package gscalar

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"gscalar/internal/telemetry"
)

// TelemetryOptions configures per-run metric collection on a Session. Like
// Observer, it lives off-Config so Config stays a plain serializable value:
// enabling telemetry never changes a config hash, and — because all
// collection happens at commit boundaries off the hot path — never changes a
// simulated Result either.
type TelemetryOptions struct {
	// Enabled turns on counter registration and time-series sampling for
	// every run started from the session; the collected data of the most
	// recent run is available from Session.Metrics.
	Enabled bool
	// SampleStride is the simulated-cycle spacing between time-series
	// samples. 0 rides the session's lifecycle checkpoint stride
	// (ObserverStride, or the gpu package default of 4096 cycles).
	SampleStride uint64
}

// CounterValue is one finalized metric: a name plus an instance
// discriminator (an SM id or DRAM channel id; -1 for chip-level metrics).
type CounterValue struct {
	Name     string  `json:"name"`
	Instance int     `json:"instance"`
	Value    float64 `json:"value"`
}

// SMSample is one SM's slice of a time-series sample.
type SMSample struct {
	Retired   uint64 `json:"retired"`    // warp instructions committed so far
	LiveWarps int    `json:"live_warps"` // resident, unfinished warps
}

// Sample is one chip-wide time-series snapshot.
type Sample struct {
	Cycle     uint64     `json:"cycle"`
	WarpInsts uint64     `json:"warp_insts"` // committed chip-wide this launch
	IPC       float64    `json:"ipc"`        // cumulative chip IPC at this sample
	LiveSMs   int        `json:"live_sms"`
	PerSM     []SMSample `json:"per_sm"`
	EnergyPJ  []float64  `json:"energy_pj"` // indexed by Series.EnergyComponents
	RFReads   []uint64   `json:"rf_reads"`  // indexed by Series.RFAccessClasses
}

// Series is the sampled time series of one run.
type Series struct {
	SampleStride     uint64   `json:"sample_stride"`
	EnergyComponents []string `json:"energy_components"`
	RFAccessClasses  []string `json:"rf_access_classes"`
	Samples          []Sample `json:"samples"`
}

// Metrics is the stable exported telemetry of one run: final counter values
// plus the sampled series, with enough context (arch, config hash, clock) to
// interpret them. Export it with WriteJSON, WriteCSV, or WriteTrace.
type Metrics struct {
	Workload   string         `json:"workload,omitempty"`
	Arch       string         `json:"arch"`
	ConfigHash string         `json:"config_hash"`
	ClockHz    float64        `json:"clock_hz"`
	NumSMs     int            `json:"num_sms"`
	ExecMode   string         `json:"exec_mode,omitempty"` // chip loop that ran: serial, phased, relaxed
	Workers    int            `json:"workers,omitempty"`   // resolved compute-worker count of that loop
	Counters   []CounterValue `json:"counters"`
	Series     Series         `json:"series"`
}

// newMetrics converts a finalized internal recorder into the public type.
func newMetrics(rec *telemetry.Recorder, s *Session, workload string) *Metrics {
	meta := rec.Meta()
	m := &Metrics{
		Workload:   workload,
		Arch:       s.arch.String(),
		ConfigHash: s.cfg.Hash(),
		ClockHz:    meta.ClockHz,
		NumSMs:     meta.NumSMs,
		ExecMode:   meta.ExecMode,
		Workers:    meta.Workers,
		Series: Series{
			SampleStride:     meta.SampleStride,
			EnergyComponents: meta.EnergyComponents,
			RFAccessClasses:  meta.RFAccessClasses,
		},
	}
	for _, c := range rec.Finals() {
		m.Counters = append(m.Counters, CounterValue(c))
	}
	for _, sp := range rec.Samples() {
		out := Sample{
			Cycle:     sp.Cycle,
			WarpInsts: sp.WarpInsts,
			LiveSMs:   sp.LiveSMs,
			EnergyPJ:  sp.EnergyPJ,
			RFReads:   sp.RFReads,
		}
		if sp.Cycle > 0 {
			out.IPC = float64(sp.WarpInsts) / float64(sp.Cycle)
		}
		for _, ps := range sp.PerSM {
			out.PerSM = append(out.PerSM, SMSample(ps))
		}
		m.Series.Samples = append(m.Series.Samples, out)
	}
	return m
}

// MetricsSet bundles the telemetry of several runs (e.g. gscalar-sim -all)
// into one export.
type MetricsSet []*Metrics

// WriteJSON writes the metrics as one indented JSON object.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// JSON returns the metrics as one compact JSON object — the blob shape the
// result store persists alongside each simulation point.
func (m *Metrics) JSON() ([]byte, error) {
	return json.Marshal(m)
}

// WriteJSON writes the set as {"runs": [...]}.
func (ms MetricsSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Runs []*Metrics `json:"runs"`
	}{Runs: ms})
}

// WriteCSV writes the metrics as CSV; see MetricsSet.WriteCSV for the
// format.
func (m *Metrics) WriteCSV(w io.Writer) error { return MetricsSet{m}.WriteCSV(w) }

// WriteCSV writes two sections separated by a blank line: final counters
// (workload,arch,name,instance,value — one row per counter per run) and the
// time series (one row per sample per run; energy, RF-class, and per-SM
// columns widen with the configuration). Every run of the set must share
// one configuration shape, which holds for any set produced by one Session.
func (ms MetricsSet) WriteCSV(w io.Writer) error {
	if len(ms) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "arch", "name", "instance", "value"}); err != nil {
		return err
	}
	for _, m := range ms {
		for _, c := range m.Counters {
			rec := []string{m.Workload, m.Arch, c.Name, strconv.Itoa(c.Instance), fmtFloat(c.Value)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}

	first := ms[0].Series
	header := []string{"workload", "arch", "cycle", "warp_insts", "ipc", "live_sms"}
	for _, c := range first.EnergyComponents {
		header = append(header, "energy_"+c+"_pj")
	}
	for _, c := range first.RFAccessClasses {
		header = append(header, "rf_reads_"+c)
	}
	for i := 0; i < ms[0].NumSMs; i++ {
		header = append(header, fmt.Sprintf("sm%d_retired", i), fmt.Sprintf("sm%d_live_warps", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range ms {
		if len(m.Series.EnergyComponents) != len(first.EnergyComponents) ||
			len(m.Series.RFAccessClasses) != len(first.RFAccessClasses) ||
			m.NumSMs != ms[0].NumSMs {
			return fmt.Errorf("gscalar: CSV export needs a homogeneous metrics set (run %q differs)", m.Workload)
		}
		for _, sp := range m.Series.Samples {
			rec := []string{m.Workload, m.Arch,
				strconv.FormatUint(sp.Cycle, 10),
				strconv.FormatUint(sp.WarpInsts, 10),
				fmtFloat(sp.IPC),
				strconv.Itoa(sp.LiveSMs)}
			for _, v := range sp.EnergyPJ {
				rec = append(rec, fmtFloat(v))
			}
			for _, v := range sp.RFReads {
				rec = append(rec, strconv.FormatUint(v, 10))
			}
			for _, ps := range sp.PerSM {
				rec = append(rec, strconv.FormatUint(ps.Retired, 10), strconv.Itoa(ps.LiveWarps))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTrace writes the run as a Chrome trace-event file (trace.json),
// loadable in Perfetto or chrome://tracing; see MetricsSet.WriteTrace.
func (m *Metrics) WriteTrace(w io.Writer) error { return MetricsSet{m}.WriteTrace(w) }

// WriteTrace writes the set as one Chrome trace-event file: each run is a
// process (named "<workload> on <arch>"), each SM a thread carrying "active"
// intervals — spans of consecutive samples in which the SM committed
// instructions, with the committed count in args — plus chip-wide "ipc" and
// "live_sms" counter tracks. Timestamps convert simulated cycles to
// microseconds at the run's core clock.
func (ms MetricsSet) WriteTrace(w io.Writer) error {
	type event map[string]any
	events := []event{}
	for pid, m := range ms {
		toUS := func(cycle uint64) float64 {
			if m.ClockHz <= 0 {
				return float64(cycle)
			}
			return float64(cycle) / m.ClockHz * 1e6
		}
		name := m.Workload
		if name == "" {
			name = "run"
		}
		events = append(events, event{
			"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
			"args": map[string]any{"name": name + " on " + m.Arch},
		})
		for i := 0; i < m.NumSMs; i++ {
			events = append(events, event{
				"ph": "M", "name": "thread_name", "pid": pid, "tid": i,
				"args": map[string]any{"name": fmt.Sprintf("SM %d", i)},
			})
		}
		// Per-SM activity intervals: walk the samples per SM, merging
		// consecutive active sampling intervals. A retired count smaller
		// than the previous sample's marks a launch boundary within a
		// sequence (fresh SMs); the delta restarts from zero there.
		for i := 0; i < m.NumSMs; i++ {
			var prevCycle, prevRetired uint64
			var openStart uint64
			var openInsts uint64
			open := false
			flush := func(end uint64) {
				if open {
					events = append(events, event{
						"ph": "X", "name": "active", "cat": "sm",
						"pid": pid, "tid": i,
						"ts": toUS(openStart), "dur": toUS(end) - toUS(openStart),
						"args": map[string]any{"insts": openInsts},
					})
					open = false
				}
			}
			for _, sp := range m.Series.Samples {
				if i >= len(sp.PerSM) {
					continue
				}
				cur := sp.PerSM[i].Retired
				prev := prevRetired
				if cur < prev {
					prev = 0 // new launch in a sequence
				}
				if cur > prev {
					if !open {
						open = true
						openStart = prevCycle
						openInsts = 0
					}
					openInsts += cur - prev
				} else {
					flush(prevCycle)
				}
				prevCycle = sp.Cycle
				prevRetired = cur
			}
			flush(prevCycle)
		}
		for _, sp := range m.Series.Samples {
			events = append(events, event{
				"ph": "C", "name": "ipc", "pid": pid, "tid": 0,
				"ts": toUS(sp.Cycle), "args": map[string]any{"ipc": sp.IPC},
			})
			events = append(events, event{
				"ph": "C", "name": "live_sms", "pid": pid, "tid": 0,
				"ts": toUS(sp.Cycle), "args": map[string]any{"sms": sp.LiveSMs},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}
