package gscalar_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"gscalar"
)

// ExampleSession_RunWorkload compares the baseline and G-Scalar
// architectures on a Table 2 benchmark. (Unverified output: absolute
// numbers depend on the power calibration.)
func ExampleSession_RunWorkload() {
	cfg := gscalar.DefaultConfig()
	run := func(arch gscalar.Arch) gscalar.Result {
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunWorkload(context.Background(), "HS", 1)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base, gs := run(gscalar.Baseline), run(gscalar.GScalar)
	fmt.Printf("power efficiency: %.2fx\n", gs.IPCPerW/base.IPCPerW)
	fmt.Printf("scalar-eligible:  %.0f%%\n", 100*gs.Eligibility.Total())
}

// ExampleAssemble runs a custom kernel end to end.
func ExampleAssemble() {
	prog, err := gscalar.Assemble(`
.kernel triple
	mov  r1, %tid.x
	imad r2, %ctaid.x, %ntid.x, r1
	shl  r3, r2, 2
	iadd r4, $0, r3
	ldg  r5, [r4]
	imul r5, r5, 3
	stg  [r4], r5
	exit
`)
	if err != nil {
		log.Fatal(err)
	}
	mem := gscalar.NewMemory()
	base := mem.AllocU32([]uint32{1, 2, 3, 4})
	launch := gscalar.Launch{GridX: 1, BlockX: 4, Params: []uint32{base}}
	if err := gscalar.RunFunctional(prog, launch, mem); err != nil {
		log.Fatal(err)
	}
	fmt.Println(mem.ReadU32(base, 4))
	// Output: [3 6 9 12]
}

// ExampleTraceKernel prints the first few dynamic instructions of a
// divergent kernel, showing the PDOM execution order.
func ExampleTraceKernel() {
	prog, err := gscalar.Assemble(`
.kernel demo
	mov r1, %laneid
	isetp.lt p0, r1, 2
	@p0 bra A
	mov r2, 5
	bra J
A:
	mov r2, 9
J:
	exit
`)
	if err != nil {
		log.Fatal(err)
	}
	launch := gscalar.Launch{GridX: 1, BlockX: 4}
	if err := gscalar.TraceKernel(os.Stdout, prog, launch, gscalar.NewMemory(), 3); err != nil {
		log.Fatal(err)
	}
}
