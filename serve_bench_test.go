package gscalar_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"gscalar"
	"gscalar/internal/serve"
	"gscalar/internal/store"
)

// serveSnapshot is one row of BENCH_serve.json: one sweep submission driven
// end-to-end through the HTTP API. The cold row pays one fresh simulation
// per point; the warm row resubmits the identical sweep and must report
// zero additional simulations — every point resolves from the
// content-addressed store — which is the load-test's correctness check as
// much as its throughput number.
type serveSnapshot struct {
	Phase        string  `json:"phase"` // cold, warm
	Points       int     `json:"points"`
	Seconds      float64 `json:"seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	Simulations  uint64  `json:"simulations"` // fresh sims this phase
	StoreHits    uint64  `json:"store_hits"`  // points served from disk this phase
	Speedup      float64 `json:"speedup_vs_cold,omitempty"`
}

// serveBench is the BENCH_serve.json document.
type serveBench struct {
	Note       string          `json:"note"`
	ConfigHash string          `json:"config_hash"`
	HostCores  int             `json:"host_cores"`
	Workers    int             `json:"workers"`
	Archs      []string        `json:"archs"`
	Workloads  []string        `json:"workloads"`
	Rows       []serveSnapshot `json:"rows"`
}

// BenchmarkServeThroughput load-tests gscalar-serve's full path — HTTP
// submit, worker pool, singleflight, content-addressed store — with one
// cold sweep (every point simulates) and one warm repeat of the identical
// sweep (every point must be a store hit), and writes both rows to
// BENCH_serve.json:
//
//	go test -bench ServeThroughput -benchtime 1x -run '^$'
func BenchmarkServeThroughput(b *testing.B) {
	cfg := gscalar.DefaultConfig()
	archs := []string{"baseline", "gscalar"}
	wls := []string{"HW", "HS", "PF", "BP"}

	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Options{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"config": json.RawMessage(cfgJSON), "archs": archs, "workloads": wls,
	})
	if err != nil {
		b.Fatal(err)
	}

	sweep := func(phase string) serveSnapshot {
		before := srv.Stats()
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sub struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("%s sweep: submit status %d", phase, resp.StatusCode)
		}
		deadline := time.Now().Add(5 * time.Minute)
		for {
			var v struct {
				State string `json:"state"`
			}
			resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sub.ID)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if v.State == "done" {
				break
			}
			if v.State == "failed" || v.State == "cancelled" || time.Now().After(deadline) {
				b.Fatalf("%s sweep: job %s state %q", phase, sub.ID, v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		secs := time.Since(t0).Seconds()
		after := srv.Stats()
		return serveSnapshot{
			Phase:        phase,
			Points:       sub.Points,
			Seconds:      secs,
			PointsPerSec: float64(sub.Points) / secs,
			Simulations:  after.Simulations - before.Simulations,
			StoreHits:    after.StoreHits - before.StoreHits,
		}
	}

	b.ResetTimer()
	cold := sweep("cold")
	warm := sweep("warm")
	b.StopTimer()

	points := len(archs) * len(wls)
	if cold.Simulations != uint64(points) {
		b.Fatalf("cold sweep ran %d simulations, want %d", cold.Simulations, points)
	}
	if warm.Simulations != 0 || warm.StoreHits != uint64(points) {
		b.Fatalf("warm sweep must be pure store hits: %+v", warm)
	}
	warm.Speedup = cold.Seconds / warm.Seconds

	stats := srv.Stats()
	doc := serveBench{
		Note: fmt.Sprintf("gscalar-serve sweep throughput over the HTTP API: one cold sweep "+
			"(every point simulates) vs an identical warm resubmission (every point a store "+
			"hit, zero simulations — asserted). %d workers on a %d-core host; wall-clock "+
			"includes HTTP, queueing, and store I/O.", stats.Workers, runtime.NumCPU()),
		ConfigHash: cfg.Hash(),
		HostCores:  runtime.NumCPU(),
		Workers:    stats.Workers,
		Archs:      archs,
		Workloads:  wls,
		Rows:       []serveSnapshot{cold, warm},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("cold %.2fs (%.1f pts/s), warm %.4fs (%.0f pts/s), speedup %.0fx",
		cold.Seconds, cold.PointsPerSec, warm.Seconds, warm.PointsPerSec, warm.Speedup)
}
