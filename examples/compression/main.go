// Compression: inspects the byte-wise register value compression scheme
// (§3.1) directly through the core codec, then compares the register-file
// dynamic energy of the baseline, BDI (Warped-Compression) and byte-wise
// register files on a value-similarity-rich kernel — Figure 12 in
// miniature.
package main

import (
	"context"
	"fmt"
	"log"

	"gscalar"
	"gscalar/internal/baseline"
	"gscalar/internal/core"
)

func main() {
	// Part 1: the codec itself, on the paper's §2.2/§3.1 example values.
	vec := make([]uint32, 32)
	for i := range vec {
		// The §2.2/§3.1 example values: C04039C0, C04039C8, ... — here
		// extended to 32 lanes with a stride that keeps byte[3:1] shared.
		vec[i] = 0xC04039C0 + uint32(i)*2
	}
	full := ^uint64(0) >> 32 // 32 active lanes

	same := core.SameMSBBytes(vec, uint64(full))
	c := core.Compress(vec, uint64(full))
	fmt.Printf("values C04039C0,C04039C2,...: enc[3:0]=%04b (top %d bytes equal)\n",
		core.EncBits(same), same)
	fmt.Printf("  base value: %08X, stored bits: %d of %d (ratio %.2fx)\n",
		c.Base, c.StoredBits(), 32*32, float64(32*32)/float64(c.StoredBits()))

	// Round-trip.
	back := c.Decompress(uint64(full))
	for i := range vec {
		if back[i] != vec[i] {
			log.Fatalf("roundtrip mismatch at lane %d: %08x != %08x", i, back[i], vec[i])
		}
	}
	fmt.Println("  decompression round-trip: ok")

	// Compare with BDI on the same vector.
	b := baseline.CompressBDI(vec)
	fmt.Printf("  BDI on the same vector: %d bytes (ratio %.2fx)\n\n",
		b.SizeBytes, float64(128)/float64(b.SizeBytes))

	// Part 2: whole-kernel RF energy across register-file techniques.
	const kernel = `
.kernel addr_stream
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2                   // addresses: 3-byte similar across a warp
	iadd  r4, $0, r3
	ldg   r5, [r4]
	mov   r6, $1                      // uniform scale: scalar register
	mov   r7, 0
	mov   r8, 0
LOOP:
	imad  r9, r5, r6, r8              // mixed similarity
	and   r9, r9, 65535               // 2-byte similar
	iadd  r7, r7, r9
	iadd  r8, r8, 1
	isetp.lt p0, r8, 8
	@p0 bra LOOP
	iadd  r10, $2, r3
	stg   [r10], r7
	exit
`
	prog, err := gscalar.Assemble(kernel)
	if err != nil {
		log.Fatal(err)
	}
	const n = 65536
	cfg := gscalar.DefaultConfig()

	fmt.Println("register file            RF dynamic energy   compression")
	var base float64
	for _, arch := range []gscalar.Arch{gscalar.Baseline, gscalar.WarpedCompression, gscalar.RVCOnly} {
		mem := gscalar.NewMemory()
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i % 4096)
		}
		vb := mem.AllocU32(vals)
		out := mem.Alloc(n * 4)
		launch := gscalar.Launch{
			GridX: n / 256, BlockX: 256,
			Params: []uint32{vb, 3, out},
		}
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background(), prog, launch, mem)
		if err != nil {
			log.Fatal(err)
		}
		if arch == gscalar.Baseline {
			base = res.RFDynamicJ
		}
		fmt.Printf("%-22s   %.4f J (%.2fx)      %.2fx\n",
			arch, res.RFDynamicJ, res.RFDynamicJ/base, res.CompressionRatio)
	}
	fmt.Println("\nByte-wise compression reads/writes only the differing byte")
	fmt.Println("planes and serves scalar registers from the BVR small array.")
}
