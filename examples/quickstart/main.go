// Quickstart: assemble a custom SAXPY kernel, run it functionally and on
// the timed simulator under the baseline and G-Scalar architectures, and
// compare power efficiency.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gscalar"
)

// saxpy with a small uniform coefficient schedule (computing the effective
// alpha per step), so the kernel carries both vector work and the
// warp-uniform bookkeeping G-Scalar scalarises.
const saxpy = `
.kernel saxpy
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1   // global thread id
	isetp.ge p0, r2, $3               // beyond n?
	@p0 exit
	shl   r3, r2, 2
	iadd  r4, $0, r3                  // &x[i]
	iadd  r5, $1, r3                  // &y[i]
	ldg   r6, [r4]
	ldg   r7, [r5]
	mov   r9, $2                      // alpha (uniform)
	mov   r10, 0                      // step (uniform)
STEP:
	i2f   r11, r10                    // uniform schedule: scalar-eligible
	ffma  r9, r11, 0.25, r9
	iadd  r10, r10, 1
	isetp.lt p0, r10, 4
	@p0 bra STEP
	ffma  r8, r6, r9, r7              // alpha'*x + y
	stg   [r5], r8
	exit
`

func main() {
	prog, err := gscalar.Assemble(saxpy)
	if err != nil {
		log.Fatal(err)
	}

	const n = 65536
	const a = float32(2.5)
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i) * 0.25
		ys[i] = float32(n - i)
	}

	build := func() (*gscalar.Memory, gscalar.Launch) {
		mem := gscalar.NewMemory()
		xb := mem.AllocF32(xs)
		yb := mem.AllocF32(ys)
		launch := gscalar.Launch{
			GridX: (n + 255) / 256, BlockX: 256,
			Params: []uint32{xb, yb, math.Float32bits(a), n},
		}
		return mem, launch
	}

	// 1. Functional run + verification against the host.
	mem, launch := build()
	if err := gscalar.RunFunctional(prog, launch, mem); err != nil {
		log.Fatal(err)
	}
	got := mem.ReadF32(launch.Params[1], n)
	// Host golden model, mirroring the kernel's fused-multiply-add
	// semantics exactly (float64 intermediate).
	ffma := func(x, y, z float32) float32 { return float32(float64(x)*float64(y) + float64(z)) }
	for i := range got {
		alpha := a
		for s := 0; s < 4; s++ {
			alpha = ffma(float32(s), 0.25, alpha)
		}
		want := ffma(xs[i], alpha, ys[i])
		if got[i] != want {
			log.Fatalf("y[%d] = %v, want %v", i, got[i], want)
		}
	}
	fmt.Printf("functional: %d elements verified\n\n", n)

	// 2. Timed runs: baseline vs G-Scalar.
	cfg := gscalar.DefaultConfig()
	var base gscalar.Result
	for _, arch := range []gscalar.Arch{gscalar.Baseline, gscalar.GScalar} {
		mem, launch := build()
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background(), prog, launch, mem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s cycles=%-8d IPC=%-6.2f power=%5.1f W  IPC/W=%.4f\n",
			arch, res.Cycles, res.IPC, res.PowerW, res.IPCPerW)
		if arch == gscalar.Baseline {
			base = res
		} else {
			fmt.Printf("\nG-Scalar power efficiency vs baseline: %.2fx\n", res.IPCPerW/base.IPCPerW)
			fmt.Printf("scalar-eligible instructions: %.1f%%\n", 100*res.Eligibility.Total())
			fmt.Printf("register compression ratio:   %.2fx\n", res.CompressionRatio)
		}
	}
}
