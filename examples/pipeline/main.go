// Pipeline: a two-pass application (the shape of SRAD's coefficient +
// update kernels) run as a dependent kernel sequence over shared device
// memory with Session.RunSequence — cycles and energy accumulate across
// launches, so architectures are compared on the whole application.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gscalar"
)

// Pass 1: compute a diffusion coefficient per cell.
const coeffSrc = `
.kernel coeff
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                 // J
	ldg   r6, [r4+4]               // east
	fsub  r7, r6, r5               // gradient
	fmul  r8, r7, r7
	fadd  r8, r8, 0.0001
	rsqrt r9, r8                   // vector SFU
	mov   r10, $2                  // lambda (uniform)
	fmul  r11, r10, 0.5            // uniform schedule: scalar-eligible
	fadd  r11, r11, 1.0
	fmul  r12, r9, r11
	iadd  r13, $1, r3
	stg   [r13], r12
	exit
`

// Pass 2: apply the update using the coefficients from pass 1.
const updateSrc = `
.kernel update
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                 // J
	iadd  r6, $1, r3
	ldg   r7, [r6]                 // coefficient from pass 1
	mov   r8, $2                   // lambda (uniform)
	fmul  r9, r7, r8
	ffma  r10, r9, r5, r5
	stg   [r4], r10
	exit
`

func main() {
	coeff, err := gscalar.Assemble(coeffSrc)
	if err != nil {
		log.Fatal(err)
	}
	update, err := gscalar.Assemble(updateSrc)
	if err != nil {
		log.Fatal(err)
	}

	const n = 32768
	const lambda = float32(0.25)
	img := make([]float32, n+1)
	for i := range img {
		img[i] = 1 + float32(i%97)*0.01
	}

	build := func() (*gscalar.Memory, []gscalar.KernelLaunch) {
		mem := gscalar.NewMemory()
		jB := mem.AllocF32(img) // +1 pad for the east neighbour
		cB := mem.Alloc(n * 4)
		params := []uint32{jB, cB, math.Float32bits(lambda)}
		launch := gscalar.Launch{GridX: n / 256, BlockX: 256, Params: params}
		return mem, []gscalar.KernelLaunch{{Prog: coeff, Launch: launch}, {Prog: update, Launch: launch}}
	}

	cfg := gscalar.DefaultConfig()
	fmt.Println("two-pass pipeline (coeff -> update), whole-application totals:")
	fmt.Println("architecture        cycles    IPC     power(W)  IPC/W     eligible")
	var base float64
	for _, arch := range []gscalar.Arch{gscalar.Baseline, gscalar.ALUScalar, gscalar.GScalar} {
		mem, seq := build()
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunSequence(context.Background(), mem, seq)
		if err != nil {
			log.Fatal(err)
		}
		if arch == gscalar.Baseline {
			base = res.IPCPerW
		}
		fmt.Printf("%-18s  %-8d  %-6.2f  %-8.1f  %-8.5f  %5.1f%%\n",
			arch, res.Cycles, res.IPC, res.PowerW, res.IPCPerW,
			100*res.Eligibility.Total())
		_ = base
	}
	fmt.Printf("\nG-Scalar vs baseline on the full pipeline: see IPC/W column (base %.5f)\n", base)
}
