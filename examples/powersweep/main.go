// Powersweep: runs a Table 2 benchmark across every architecture and warp
// size, printing the full efficiency picture — a one-benchmark slice of
// Figures 9, 10 and 11.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gscalar"
)

func main() {
	bench := flag.String("bench", "BP", "Table 2 benchmark abbreviation")
	flag.Parse()

	info, ok := gscalar.WorkloadByAbbr(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (options: %v)", *bench, gscalar.Workloads())
	}
	fmt.Printf("%s — %s (%s): %s\n\n", info.Abbr, info.Name, info.Suite, info.Desc)

	cfg := gscalar.DefaultConfig()
	fmt.Println("architecture        IPC     power(W)  IPC/W    vs base  eligible")
	var base float64
	for _, arch := range gscalar.AllArchs() {
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunWorkload(context.Background(), *bench, 1)
		if err != nil {
			log.Fatal(err)
		}
		if arch == gscalar.Baseline {
			base = res.IPCPerW
		}
		fmt.Printf("%-18s  %-6.2f  %-8.1f  %-7.4f  %-7.3f  %5.1f%%\n",
			arch, res.IPC, res.PowerW, res.IPCPerW, res.IPCPerW/base,
			100*res.Eligibility.Total())
	}

	fmt.Println("\nwarp-size sweep (16-thread checking granularity, Figure 10):")
	gs, err := gscalar.NewSession(cfg, gscalar.GScalar)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := gs.WarpSizeSweep(context.Background(), *bench, []int{32, 64}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range sweep {
		fmt.Printf("  warp=%2d: half/quarter-scalar %.1f%%, total scalar-eligible %.1f%%\n",
			pt.WarpSize, 100*pt.HalfFrac, 100*pt.TotalFrac)
	}
}
