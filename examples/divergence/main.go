// Divergence: demonstrates scalar execution of *divergent* instructions —
// the paper's headline generalisation (§4.2). A kernel with a
// data-dependent branch runs a uniform-constant chain on one side; the
// example shows how much of the dynamic instruction stream each
// architecture can scalarise, and the resulting efficiency.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gscalar"
)

// The saturate path operates entirely on uniform constants: every one of
// its instructions is a "divergent scalar" instruction — uniform across
// the active lanes — which only G-Scalar can execute on a single lane.
const kernel = `
.kernel clamp_scale
	mov   r1, %tid.x
	imad  r2, %ctaid.x, %ntid.x, r1
	shl   r3, r2, 2
	iadd  r4, $0, r3
	ldg   r5, [r4]                 // v (per thread)
	mov   r6, $1                   // limit (uniform)
	mov   r7, $2                   // gain  (uniform)
	fsetp.gt p0, r5, r6            // over the limit?
	@p0 bra SATURATE
	fmul  r8, r5, r7               // in-range: per-thread scaling
	ffma  r8, r5, 0.125, r8
	bra STORE
SATURATE:
	fmul  r8, r6, r7               // uniform chain: divergent scalar
	fadd  r8, r8, r6
	fmul  r9, r8, 0.5
	ffma  r8, r9, 0.25, r8
STORE:
	stg   [r4], r8
	exit
`

func main() {
	prog, err := gscalar.Assemble(kernel)
	if err != nil {
		log.Fatal(err)
	}
	const n = 131072
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i%100) * 0.02 // ~half the lanes saturate
	}

	cfg := gscalar.DefaultConfig()
	fmt.Println("architecture        divergent  div-scalar  eligible   IPC/W")
	var base float64
	for _, arch := range []gscalar.Arch{gscalar.Baseline, gscalar.ALUScalar, gscalar.GScalarNoDiv, gscalar.GScalar} {
		mem := gscalar.NewMemory()
		vb := mem.AllocF32(vals)
		launch := gscalar.Launch{
			GridX: n / 256, BlockX: 256,
			Params: []uint32{vb, math.Float32bits(1.0), math.Float32bits(3.0)},
		}
		s, err := gscalar.NewSession(cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background(), prog, launch, mem)
		if err != nil {
			log.Fatal(err)
		}
		if arch == gscalar.Baseline {
			base = res.IPCPerW
		}
		fmt.Printf("%-18s  %8.1f%%  %9.1f%%  %7.1f%%   %.4f (%.2fx)\n",
			arch, 100*res.FracDivergent, 100*res.Eligibility.Divergent,
			100*res.Eligibility.Total(), res.IPCPerW, res.IPCPerW/base)
	}
	fmt.Println("\nOnly G-Scalar scalarises the divergent saturate path: prior")
	fmt.Println("architectures leave every divergent instruction on all lanes.")
}
